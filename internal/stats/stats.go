// Package stats provides the small timing statistics used by the
// benchmark harness: repeated measurements summarized by min, mean and
// standard deviation. The harness reports the minimum of several runs,
// the conventional estimator for cold-noise-dominated wall-clock
// measurements.
package stats

import (
	"math"
	"time"
)

// Sample is a set of repeated duration measurements.
type Sample struct {
	Runs []time.Duration
}

// Add records one measurement.
func (s *Sample) Add(d time.Duration) { s.Runs = append(s.Runs, d) }

// Min returns the smallest measurement, or 0 for an empty sample.
func (s *Sample) Min() time.Duration {
	if len(s.Runs) == 0 {
		return 0
	}
	m := s.Runs[0]
	for _, d := range s.Runs[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Mean returns the average measurement, or 0 for an empty sample.
func (s *Sample) Mean() time.Duration {
	if len(s.Runs) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.Runs {
		total += d
	}
	return total / time.Duration(len(s.Runs))
}

// Stddev returns the population standard deviation in seconds.
func (s *Sample) Stddev() float64 {
	n := len(s.Runs)
	if n < 2 {
		return 0
	}
	mean := s.Mean().Seconds()
	var acc float64
	for _, d := range s.Runs {
		diff := d.Seconds() - mean
		acc += diff * diff
	}
	return math.Sqrt(acc / float64(n))
}

// Time runs fn reps times (at least once) and returns the sample.
func Time(reps int, fn func()) *Sample {
	if reps < 1 {
		reps = 1
	}
	s := &Sample{}
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		s.Add(time.Since(start))
	}
	return s
}

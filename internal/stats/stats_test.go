package stats

import (
	"testing"
	"time"
)

func TestSampleSummary(t *testing.T) {
	s := &Sample{}
	for _, ms := range []int{30, 10, 20} {
		s.Add(time.Duration(ms) * time.Millisecond)
	}
	if s.Min() != 10*time.Millisecond {
		t.Errorf("Min = %v", s.Min())
	}
	if s.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", s.Mean())
	}
	if sd := s.Stddev(); sd < 0.008 || sd > 0.009 {
		t.Errorf("Stddev = %v, want ~0.00816", sd)
	}
}

func TestEmptySample(t *testing.T) {
	s := &Sample{}
	if s.Min() != 0 || s.Mean() != 0 || s.Stddev() != 0 {
		t.Error("empty sample should summarize to zero")
	}
}

func TestTimeRuns(t *testing.T) {
	count := 0
	s := Time(3, func() { count++ })
	if count != 3 || len(s.Runs) != 3 {
		t.Errorf("ran %d times, recorded %d", count, len(s.Runs))
	}
	s = Time(0, func() { count++ })
	if count != 4 || len(s.Runs) != 1 {
		t.Error("reps<1 should clamp to a single run")
	}
}

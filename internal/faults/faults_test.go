package faults

import (
	"errors"
	"testing"
	"time"
)

// TestRuleOccurrenceSemantics pins the After/Every/Count arithmetic:
// skip the first After occurrences, fire every Every-th one after
// that, at most Count times.
func TestRuleOccurrenceSemantics(t *testing.T) {
	in := New(1, Rule{Point: FailReduction, Key: 7, After: 2, Every: 3, Count: 2})
	defer Activate(in)()
	var fired []int
	for i := 0; i < 12; i++ {
		if ErrOn(FailReduction, 7) != nil {
			fired = append(fired, i)
		}
	}
	// Occurrences 0,1 skipped; then 2, 5, 8, ... are every-3rd; Count
	// caps it at two fires.
	want := []int{2, 5}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("fired at %v, want %v", fired, want)
	}
	if got := in.RuleFires(0); got != 2 {
		t.Errorf("RuleFires(0) = %d, want 2", got)
	}
	if got := in.Fired(); got != 2 {
		t.Errorf("Fired() = %d, want 2", got)
	}
}

// TestRuleKeyMatching: a keyed rule ignores other keys; KeyAny matches
// all of them. Occurrence counters are per (point, key) pair.
func TestRuleKeyMatching(t *testing.T) {
	in := New(1, Rule{Point: PanicInKernel, Key: 3, Count: 1})
	defer Activate(in)()
	if Panics(PanicInKernel, 1) {
		t.Error("key 1 fired a rule keyed to 3")
	}
	if Panics(SlowReduction, 3) {
		t.Error("SlowReduction fired a PanicInKernel rule")
	}
	if !Panics(PanicInKernel, 3) {
		t.Error("key 3 did not fire its own rule")
	}
	if Panics(PanicInKernel, 3) {
		t.Error("Count=1 rule fired twice")
	}

	any := New(1, Rule{Point: FailedPush, Key: KeyAny})
	defer Activate(any)()
	for _, k := range []int64{0, 1, 99} {
		if ErrOn(FailedPush, k) == nil {
			t.Errorf("KeyAny rule did not fire for key %d", k)
		}
	}
}

// TestProbDeterminism: probabilistic decisions are a pure function of
// (seed, point, key, occurrence) — two injectors with the same seed
// produce identical fire sequences, a different seed a different one.
func TestProbDeterminism(t *testing.T) {
	trace := func(seed uint64) []bool {
		in := New(seed, Rule{Point: FailReduction, Key: KeyAny, Prob: 0.4})
		defer Activate(in)()
		out := make([]bool, 64)
		for i := range out {
			out[i] = ErrOn(FailReduction, int64(i%4)) != nil
		}
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at occurrence %d", i)
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-fire traces (vanishingly unlikely)")
	}
	// The hit rate should be in the right ballpark for Prob=0.4.
	hits := 0
	for _, h := range a {
		if h {
			hits++
		}
	}
	if hits < 10 || hits > 42 {
		t.Errorf("Prob=0.4 fired %d/64 times, far from expectation", hits)
	}
}

// TestSiteHelpers covers the three site shapes: PanicOn's panic value,
// SleepOn's delay, ErrOn's default and custom errors.
func TestSiteHelpers(t *testing.T) {
	sentinel := errors.New("custom")
	in := New(1,
		Rule{Point: PanicInKernel, Key: 5},
		Rule{Point: SlowReduction, Key: 5, Delay: time.Millisecond},
		Rule{Point: FailReduction, Key: 5, Err: sentinel},
		Rule{Point: FailedPush, Key: 5},
	)
	defer Activate(in)()

	func() {
		defer func() {
			r := recover()
			ip, ok := r.(InjectedPanic)
			if !ok || ip.Point != PanicInKernel || ip.Key != 5 {
				t.Errorf("PanicOn panicked with %v, want InjectedPanic{PanicInKernel, 5}", r)
			}
		}()
		PanicOn(PanicInKernel, 5)
	}()

	start := time.Now()
	if !SleepOn(SlowReduction, 5) {
		t.Error("SleepOn did not fire")
	}
	if time.Since(start) < time.Millisecond {
		t.Error("SleepOn returned before the rule's delay")
	}

	if err := ErrOn(FailReduction, 5); !errors.Is(err, sentinel) {
		t.Errorf("ErrOn = %v, want the rule's custom error", err)
	}
	if err := ErrOn(FailedPush, 5); !errors.Is(err, ErrInjected) {
		t.Errorf("ErrOn with no rule error = %v, want ErrInjected", err)
	}
}

// TestDisabledSites: with no active injector every site is inert and
// allocation-free (the public benchmark gate measures the full adder
// path; this is the direct check on the helpers).
func TestDisabledSites(t *testing.T) {
	if Active() != nil {
		t.Fatal("an injector is active at test start")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if Panics(PanicInKernel, 1) {
			t.Fatal("disabled site fired")
		}
		if SleepOn(SlowReduction, 1) {
			t.Fatal("disabled site fired")
		}
		if ErrOn(FailReduction, 1) != nil {
			t.Fatal("disabled site fired")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled sites allocate %.1f per op, want 0", allocs)
	}
}

// TestActivateReplaceAndDeactivate: the deactivator only clears its own
// injector, so a stale deactivator cannot tear down a newer schedule.
func TestActivateReplaceAndDeactivate(t *testing.T) {
	a := New(1, Rule{Point: FailedPush, Key: KeyAny})
	deactivateA := Activate(a)
	b := New(2, Rule{Point: FailedPush, Key: KeyAny})
	deactivateB := Activate(b)
	deactivateA() // stale: must not remove b
	if Active() != b {
		t.Error("stale deactivator removed the newer injector")
	}
	deactivateB()
	if Active() != nil {
		t.Error("deactivator left its injector active")
	}
}

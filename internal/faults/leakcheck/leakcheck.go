// Package leakcheck fails tests that leak goroutines: a pool whose
// Close drops a reducer, an executor whose workers outlive it, an
// accumulator misuse path that strands a waiter. It is a minimal
// baseline-diff checker: Begin snapshots the goroutines alive at test
// start, and the registered cleanup fails the test if goroutines
// created since are still alive once the test ends — after a grace
// period with GC cycles, so resident executors reclaimed by
// runtime.AddCleanup (a dropped Adder's worker pool) are not false
// positives.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxStack bounds one snapshot of all goroutine stacks.
const maxStack = 1 << 20

// Begin snapshots the currently-live goroutines and registers a
// cleanup that fails t if goroutines created during the test are still
// running when it ends. Call it first thing in a test (not a
// subtest's parent) that creates pools, executors or accumulators.
func Begin(t testing.TB) {
	t.Helper()
	base := ids(snapshot())
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			// Let runtime.AddCleanup-based teardown (dropped executors'
			// worker shutdown) fire before judging.
			runtime.GC()
			leaked = leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n"))
	})
}

// leakedSince returns the stacks of goroutines alive now that were not
// in the baseline and are not runtime/testing infrastructure.
func leakedSince(base map[string]bool) []string {
	var leaked []string
	for _, g := range snapshot() {
		id := goroutineID(g)
		if id == "" || base[id] {
			continue
		}
		if ignorable(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// ignorable reports goroutines the checker never charges to the test:
// runtime helpers and the testing framework's own machinery.
func ignorable(stack string) bool {
	for _, frame := range []string{
		"testing.(*T).Run(",
		"testing.(*M).",
		"testing.runTests(",
		"testing.tRunner(",
		"runtime.goexit",
		"runtime.gc",
		"runtime.MutexProfile",
		"runtime/trace",
		"created by runtime",
		"signal.signal_recv",
		"go.opencensus.io",
	} {
		if strings.Contains(stack, frame) && !strings.Contains(stack, "spkadd/") {
			return true
		}
	}
	return false
}

// snapshot returns one entry per live goroutine (header + stack).
func snapshot() []string {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		if len(buf) >= maxStack {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	gs := strings.Split(string(buf), "\n\n")
	out := gs[:0]
	for _, g := range gs {
		if strings.HasPrefix(g, "goroutine ") {
			out = append(out, g)
		}
	}
	return out
}

// ids maps each goroutine entry to its "goroutine N" identity.
func ids(gs []string) map[string]bool {
	m := make(map[string]bool, len(gs))
	for _, g := range gs {
		if id := goroutineID(g); id != "" {
			m[id] = true
		}
	}
	return m
}

func goroutineID(g string) string {
	var n uint64
	var state string
	if _, err := fmt.Sscanf(g, "goroutine %d [%s", &n, &state); err != nil {
		return ""
	}
	return fmt.Sprintf("goroutine %d", n)
}

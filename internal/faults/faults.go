// Package faults is a deterministic fault-injection harness for the
// streaming stack. Injection points are compiled into the production
// code paths permanently — a panic site in the numeric kernels, sleep
// and error sites in the pool's reducers, a stall site in the
// executor's workers — but each site is a single atomic pointer load
// when no injector is active, so the disabled paths cost no
// allocations and no measurable time (BenchmarkAdderReuseFaultsOff
// gates this in CI).
//
// Determinism: every site is identified by a (Point, Key) pair and
// keeps a per-pair occurrence counter while an injector is active.
// Rules fire on occurrence indices (After/Every/Count) or on a
// probability decided by hashing (seed, point, key, occurrence) — not
// by a shared RNG stream — so whether the 3rd reduction of shard 2
// faults does not depend on how goroutines interleaved. Re-running a
// chaos schedule with the same seed injects the same faults at the
// same logical places.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point identifies one class of injection site.
type Point uint8

const (
	// PanicInKernel panics inside a numeric kernel body — on whatever
	// goroutine runs it: an executor worker for multi-threaded
	// reductions, the reducer or caller itself for inline ones.
	PanicInKernel Point = iota
	// SlowReduction delays a pool shard's reduction by Rule.Delay.
	SlowReduction
	// FailedPush fails a Pool push with an injected error.
	FailedPush
	// WorkerStall delays an executor worker at region entry.
	WorkerStall
	// FailReduction fails a pool shard's reduction with a transient
	// error — the input of the bounded-retry machinery.
	FailReduction
	numPoints
)

var pointNames = [numPoints]string{
	"PanicInKernel", "SlowReduction", "FailedPush", "WorkerStall", "FailReduction",
}

// String returns the point's name.
func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "Unknown"
}

// KeyAny in a Rule matches every site key of the rule's point.
const KeyAny int64 = -1

// ErrInjected is the default error of error-producing rules. Injected
// transient failures wrap it, so tests (and the retry machinery's
// tests) can tell injected faults from real ones.
var ErrInjected = errors.New("spkadd: injected transient fault")

// InjectedPanic is the value PanicOn panics with, so recovery layers
// and tests can assert a recovered panic's provenance.
type InjectedPanic struct {
	Point Point
	Key   int64
}

func (ip InjectedPanic) String() string {
	return fmt.Sprintf("injected panic (%v, key %d)", ip.Point, ip.Key)
}

// Rule is one line of a fault schedule: at the sites of Point whose
// key matches Key, skip the first After occurrences, then fire every
// Every-th one (0 or 1 means every one), at most Count times total
// (0 means unlimited), each time with probability Prob (0 means
// always). Delay is the sleep for the sleep points; Err the error for
// the error points (nil means ErrInjected).
type Rule struct {
	Point Point
	Key   int64
	After uint64
	Every uint64
	Count uint64
	Prob  float64
	Delay time.Duration
	Err   error
}

type pairKey struct {
	point Point
	key   int64
}

// Injector is a seeded, schedule-driven fault source. Activate exactly
// one at a time; sites consult the active injector through one atomic
// load.
type Injector struct {
	seed  uint64
	rules []Rule

	mu    sync.Mutex
	occ   map[pairKey]uint64 // occurrence counters per (point, key)
	fires []uint64           // fire counters per rule
	total atomic.Int64
}

// New returns an injector for the given seed and schedule.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{
		seed:  seed,
		rules: rules,
		occ:   make(map[pairKey]uint64),
		fires: make([]uint64, len(rules)),
	}
}

// Fired returns how many faults this injector has injected in total.
func (in *Injector) Fired() int64 { return in.total.Load() }

// RuleFires returns how often rule i has fired.
func (in *Injector) RuleFires(i int) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[i]
}

// active is the process-wide injector; nil means every site is
// disabled and costs one atomic load.
var active atomic.Pointer[Injector]

// Activate installs in as the process-wide injector and returns the
// deactivator. Tests `defer faults.Activate(inj)()`. Activating over
// an already-active injector replaces it.
func Activate(in *Injector) (deactivate func()) {
	active.Store(in)
	return func() { active.CompareAndSwap(in, nil) }
}

// Active returns the installed injector, or nil.
func Active() *Injector { return active.Load() }

// decide evaluates the schedule at one site occurrence and returns the
// rule that fires, if any. One occurrence is counted per call whether
// or not anything fires.
func (in *Injector) decide(p Point, key int64) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	k := pairKey{p, key}
	idx := in.occ[k]
	in.occ[k] = idx + 1
	for i := range in.rules {
		r := &in.rules[i]
		if r.Point != p || (r.Key != KeyAny && r.Key != key) {
			continue
		}
		if idx < r.After {
			continue
		}
		if every := r.Every; every > 1 && (idx-r.After)%every != 0 {
			continue
		}
		if r.Count > 0 && in.fires[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && !probHit(in.seed, p, key, idx, r.Prob) {
			continue
		}
		in.fires[i]++
		in.total.Add(1)
		return r
	}
	return nil
}

// probHit makes the probabilistic fire decision by hashing the
// occurrence's identity with the seed (splitmix64), not by drawing
// from a shared RNG: the decision for a given (point, key, occurrence)
// is a pure function of the seed, immune to goroutine interleaving.
func probHit(seed uint64, p Point, key int64, idx uint64, prob float64) bool {
	x := seed ^ uint64(p)<<56 ^ uint64(key)*0x9E3779B97F4A7C15 ^ idx*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < prob
}

// Panics reports whether the (p, key) site should panic now. The
// caller panics with InjectedPanic itself (after counting the fault in
// its stats) so the panic originates from the instrumented frame.
func Panics(p Point, key int64) bool {
	in := active.Load()
	if in == nil {
		return false
	}
	return in.decide(p, key) != nil
}

// PanicOn panics with InjectedPanic when the (p, key) site fires.
func PanicOn(p Point, key int64) {
	if Panics(p, key) {
		panic(InjectedPanic{Point: p, Key: key})
	}
}

// SleepOn sleeps the firing rule's Delay at the (p, key) site and
// reports whether it fired.
func SleepOn(p Point, key int64) bool {
	in := active.Load()
	if in == nil {
		return false
	}
	r := in.decide(p, key)
	if r == nil {
		return false
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	return true
}

// ErrOn returns the firing rule's error (ErrInjected when the rule
// names none) at the (p, key) site, or nil.
func ErrOn(p Point, key int64) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	r := in.decide(p, key)
	if r == nil {
		return nil
	}
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Package kheap implements the k-way merge min-heap of the paper's
// HeapSpKAdd (Algorithm 3): a binary heap over (row, matrix, value)
// tuples, keyed by row index, holding at most one tuple per input
// matrix. Extract-min and insert cost O(lg k).
//
// The heap is specialised rather than built on container/heap: the
// interface-based stdlib heap costs an indirect call per comparison,
// which is measurable in this hot loop, and a fixed-capacity slice heap
// matches the paper's O(k) memory claim exactly. The value axis is
// generic over matrix.Number — the heap never combines values, only
// carries them, so every element type (including bool) uses the same
// code; Heap/Tuple alias the float64 instantiation.
package kheap

import "spkadd/internal/matrix"

// TupleOf is one heap element: value v = A_mat(row, j).
type TupleOf[T matrix.Number] struct {
	Row matrix.Index
	Mat int32
	Val T
}

// Tuple is the float64 heap element.
type Tuple = TupleOf[matrix.Value]

// HeapOf is a binary min-heap of tuples ordered by Row. Ties on Row
// are broken by Mat, so equal-row tuples always surface in input
// order. That determinism is load-bearing for the monoid-generic
// merge: the driver folds colliding values in the order the heap
// yields them, and the Mat tie-break makes that order — hence the bit
// pattern of any floating-point combine — identical across runs and
// engines.
type HeapOf[T matrix.Number] struct {
	a []TupleOf[T]

	// Ops counts sift operations for the Table I work tests.
	Ops int64
}

// Heap is the float64 k-way merge heap.
type Heap = HeapOf[matrix.Value]

// New returns a float64 heap with capacity k.
func New(k int) *Heap {
	return NewOf[matrix.Value](k)
}

// NewOf returns a heap over T with capacity k.
func NewOf[T matrix.Number](k int) *HeapOf[T] {
	return &HeapOf[T]{a: make([]TupleOf[T], 0, k)}
}

// Len returns the number of elements.
func (h *HeapOf[T]) Len() int { return len(h.a) }

// Reset empties the heap, keeping capacity. The Ops counter survives
// Reset so workers can accumulate across columns; callers zero it when
// flushing stats.
func (h *HeapOf[T]) Reset() { h.a = h.a[:0] }

// Grow ensures capacity for k tuples, preserving contents and the Ops
// counter, so a heap resident in a reused workspace adapts to a larger
// input collection without churning allocations inside the merge loop.
func (h *HeapOf[T]) Grow(k int) {
	if cap(h.a) >= k {
		return
	}
	a := make([]TupleOf[T], len(h.a), k)
	copy(a, h.a)
	h.a = a
}

func (h *HeapOf[T]) less(i, j int) bool {
	if h.a[i].Row != h.a[j].Row {
		return h.a[i].Row < h.a[j].Row
	}
	return h.a[i].Mat < h.a[j].Mat
}

// Push inserts t in O(lg k).
func (h *HeapOf[T]) Push(t TupleOf[T]) {
	h.a = append(h.a, t)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.Ops++
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

// Min returns the minimum tuple without removing it. It panics on an
// empty heap, matching slice-bounds semantics.
func (h *HeapOf[T]) Min() TupleOf[T] { return h.a[0] }

// Pop removes and returns the minimum tuple in O(lg k).
func (h *HeapOf[T]) Pop() TupleOf[T] {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	h.siftDown(0)
	return top
}

// ReplaceMin replaces the minimum with t and restores heap order.
// This is the common HeapAdd step (extract min, insert successor from
// the same matrix) fused into one O(lg k) sift instead of two.
func (h *HeapOf[T]) ReplaceMin(t TupleOf[T]) {
	h.a[0] = t
	h.siftDown(0)
}

func (h *HeapOf[T]) siftDown(i int) {
	n := len(h.a)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.Ops++
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
}

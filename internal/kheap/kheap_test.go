package kheap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spkadd/internal/matrix"
)

func TestPopOrdering(t *testing.T) {
	h := New(8)
	rows := []matrix.Index{5, 1, 9, 3, 3, 0, 7}
	for i, r := range rows {
		h.Push(Tuple{Row: r, Mat: int32(i), Val: float64(i)})
	}
	var got []matrix.Index
	for h.Len() > 0 {
		got = append(got, h.Pop().Row)
	}
	want := []matrix.Index{0, 1, 3, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestTieBreakByMatrix(t *testing.T) {
	h := New(4)
	h.Push(Tuple{Row: 2, Mat: 3})
	h.Push(Tuple{Row: 2, Mat: 1})
	h.Push(Tuple{Row: 2, Mat: 2})
	if m := h.Pop().Mat; m != 1 {
		t.Errorf("first pop Mat = %d, want 1", m)
	}
	if m := h.Pop().Mat; m != 2 {
		t.Errorf("second pop Mat = %d, want 2", m)
	}
}

func TestReplaceMin(t *testing.T) {
	h := New(4)
	h.Push(Tuple{Row: 1, Val: 10})
	h.Push(Tuple{Row: 5, Val: 50})
	h.Push(Tuple{Row: 3, Val: 30})
	h.ReplaceMin(Tuple{Row: 7, Val: 70})
	var got []matrix.Index
	for h.Len() > 0 {
		got = append(got, h.Pop().Row)
	}
	want := []matrix.Index{3, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after ReplaceMin pops = %v, want %v", got, want)
		}
	}
}

func TestResetReuse(t *testing.T) {
	h := New(2)
	h.Push(Tuple{Row: 1})
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(Tuple{Row: 9})
	if h.Min().Row != 9 {
		t.Error("heap broken after Reset")
	}
}

func TestQuickHeapSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		h := New(n)
		for i := 0; i < n; i++ {
			h.Push(Tuple{Row: matrix.Index(rng.Intn(50)), Mat: int32(i)})
		}
		prev := Tuple{Row: -1, Mat: -1}
		for h.Len() > 0 {
			cur := h.Pop()
			if cur.Row < prev.Row || (cur.Row == prev.Row && cur.Mat < prev.Mat) {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickReplaceMinEquivalence(t *testing.T) {
	// ReplaceMin must behave exactly like Pop-then-Push.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		h1, h2 := New(n), New(n)
		for i := 0; i < n; i++ {
			tup := Tuple{Row: matrix.Index(rng.Intn(20)), Mat: int32(i)}
			h1.Push(tup)
			h2.Push(tup)
		}
		for step := 0; step < 20 && h1.Len() > 0; step++ {
			tup := Tuple{Row: matrix.Index(rng.Intn(20)), Mat: int32(step + 100)}
			h1.ReplaceMin(tup)
			h2.Pop()
			h2.Push(tup)
			if h1.Min() != h2.Min() || h1.Len() != h2.Len() {
				return false
			}
		}
		// Drain both; sequences must match.
		for h1.Len() > 0 {
			if h1.Pop() != h2.Pop() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Package spa implements the sparse accumulator (SPA) of Gilbert,
// Moler and Schreiber, as used by the paper's SPAAdd (Algorithm 4):
// a dense value array of length m plus a list of the indices that hold
// valid entries. Validity is a per-slot generation stamp, so Clear is
// O(1) — bump the generation — and the SPA can be reused across all
// columns a worker processes (and across calls, resident in a
// Workspace) without O(m) re-initialization.
//
// The value axis is generic over matrix.Number: the "+" fast path is
// the Arith-constrained free function Accum (inlined += per
// instantiation), the monoid-generic path is the AddWith method, and
// SPA aliases the float64 instantiation.
package spa

import "spkadd/internal/matrix"

// SPAOf is a sparse accumulator over row indices [0, m) with values of
// element type T. It is not safe for concurrent use; the parallel
// driver allocates one per worker (the paper's O(T*m) aggregate memory
// cost, §III-A).
type SPAOf[T matrix.Number] struct {
	vals   []T
	stamps []uint32 // slot is valid iff stamps[r] == gen
	gen    uint32
	idx    []matrix.Index // valid indices, insertion order

	// Touches counts accumulate operations for the Table I work tests.
	Touches int64
}

// SPA is the float64 sparse accumulator.
type SPA = SPAOf[matrix.Value]

// New returns a float64 SPA for matrices with m rows.
func New(m int) *SPA {
	return NewOf[matrix.Value](m)
}

// NewOf returns a SPA over T for matrices with m rows.
func NewOf[T matrix.Number](m int) *SPAOf[T] {
	return &SPAOf[T]{
		vals:   make([]T, m),
		stamps: make([]uint32, m),
		gen:    1,
	}
}

// Rows returns the row capacity m.
func (s *SPAOf[T]) Rows() int { return len(s.vals) }

// Len returns the number of valid entries accumulated so far.
func (s *SPAOf[T]) Len() int { return len(s.idx) }

// Grow enlarges the accumulator to m rows, keeping the Touches
// counter. It must only be called on a cleared SPA (between columns);
// smaller or equal m is a no-op.
func (s *SPAOf[T]) Grow(m int) {
	if m <= len(s.vals) {
		return
	}
	s.vals = make([]T, m)
	s.stamps = make([]uint32, m)
	s.gen = 1
	s.idx = s.idx[:0]
}

// Accum accumulates v at row r with += (lines 5-7 of Algorithm 4).
// It is the "+" fast path, a free function constrained to the
// arithmetic types so each instantiation inlines to a stamped
// scatter-add with no per-entry dispatch.
//
//spkadd:noalloc per-entry hot path of the SPA kernels
func Accum[T matrix.Arith](s *SPAOf[T], r matrix.Index, v T) {
	s.Touches++
	if s.stamps[r] == s.gen {
		s.vals[r] += v
		return
	}
	s.stamps[r] = s.gen
	s.vals[r] = v
	s.idx = append(s.idx, r)
}

// AddWith is Accum under an arbitrary combine operation: the first
// touch of r in the current generation stores v, later touches
// replace the slot with combine(stored, v). The generation stamps do
// for the generic path exactly what they do for "+": Clear stays
// O(1) and no identity element is ever materialized in the dense
// array. Accum is AddWith with "+" inlined; callers pick once per
// column.
//
//spkadd:noalloc per-entry hot path of the SPA kernels
func (s *SPAOf[T]) AddWith(r matrix.Index, v T, combine func(a, b T) T) {
	s.Touches++
	if s.stamps[r] == s.gen {
		s.vals[r] = combine(s.vals[r], v)
		return
	}
	s.stamps[r] = s.gen
	s.vals[r] = v
	s.idx = append(s.idx, r)
}

// Get returns the accumulated value at r (the zero of T if absent).
func (s *SPAOf[T]) Get(r matrix.Index) T {
	if s.stamps[r] != s.gen {
		var z T
		return z
	}
	return s.vals[r]
}

// Indices returns the valid indices in insertion order (shared slice;
// callers must not retain it across Clear).
func (s *SPAOf[T]) Indices() []matrix.Index { return s.idx }

// AppendSorted appends the accumulated entries in ascending row order
// to rows/vals and returns the extended slices (lines 8-10 of
// Algorithm 4, sorted-output variant). It sorts the index list in
// place.
func (s *SPAOf[T]) AppendSorted(rows []matrix.Index, vals []T) ([]matrix.Index, []T) {
	sortIndices(s.idx)
	for _, r := range s.idx {
		rows = append(rows, r)
		vals = append(vals, s.vals[r])
	}
	return rows, vals
}

// AppendUnsorted appends entries in insertion order.
func (s *SPAOf[T]) AppendUnsorted(rows []matrix.Index, vals []T) ([]matrix.Index, []T) {
	for _, r := range s.idx {
		rows = append(rows, r)
		vals = append(vals, s.vals[r])
	}
	return rows, vals
}

// Clear invalidates every entry in O(1) by bumping the generation;
// values need no zeroing because Accum overwrites a slot on first
// sight within a generation. Stamp wraparound (once per 2^32 clears)
// restores the invariant with one O(m) sweep.
func (s *SPAOf[T]) Clear() {
	s.idx = s.idx[:0]
	s.gen++
	if s.gen == 0 {
		for i := range s.stamps {
			s.stamps[i] = 0
		}
		s.gen = 1
	}
}

// sortIndices is an insertion-friendly pdq-free sort for Index slices.
// Columns are typically short; a quicksort specialised to Index avoids
// sort.Slice's reflection-based swaps in this hot path, and recursing
// through a top-level function (not a self-referencing closure) keeps
// the sorted-output path allocation-free.
func sortIndices(a []matrix.Index) {
	if len(a) > 1 {
		quickSortIndices(a, 0, len(a)-1)
	}
}

func quickSortIndices(a []matrix.Index, lo, hi int) {
	for hi-lo > 12 {
		p := partition(a, lo, hi)
		if p-lo < hi-p {
			quickSortIndices(a, lo, p)
			lo = p + 1
		} else {
			quickSortIndices(a, p+1, hi)
			hi = p
		}
	}
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func partition(a []matrix.Index, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot.
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	pivot := a[mid]
	a[mid], a[hi-1] = a[hi-1], a[mid]
	i, j := lo, hi-1
	for {
		for i++; a[i] < pivot; i++ {
		}
		for j--; a[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		a[i], a[j] = a[j], a[i]
	}
	a[i], a[hi-1] = a[hi-1], a[i]
	return i
}

package spa

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spkadd/internal/matrix"
)

func TestAddAndGet(t *testing.T) {
	s := New(10)
	Accum(s, 3, 1)
	Accum(s, 7, 2)
	Accum(s, 3, 4)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if v := s.Get(3); v != 5 {
		t.Errorf("Get(3) = %v, want 5", v)
	}
	if v := s.Get(0); v != 0 {
		t.Errorf("Get(0) = %v, want 0", v)
	}
}

func TestAppendSorted(t *testing.T) {
	s := New(100)
	for _, r := range []matrix.Index{42, 7, 99, 7, 0} {
		Accum(s, r, 1)
	}
	rows, vals := s.AppendSorted(nil, nil)
	want := []matrix.Index{0, 7, 42, 99}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows = %v, want %v", rows, want)
		}
	}
	if vals[1] != 2 { // row 7 accumulated twice
		t.Errorf("vals = %v, want vals[1]=2", vals)
	}
}

func TestClearIsSparse(t *testing.T) {
	s := New(1000)
	Accum(s, 5, 1)
	Accum(s, 500, 2)
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear did not empty the SPA")
	}
	if s.Get(5) != 0 || s.Get(500) != 0 {
		t.Error("values survived Clear")
	}
	// Reuse after clear.
	Accum(s, 5, 7)
	if s.Get(5) != 7 {
		t.Error("SPA broken after Clear")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after reuse", s.Len())
	}
}

func TestQuickMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(200) + 1
		s := New(m)
		want := map[matrix.Index]matrix.Value{}
		for i := 0; i < rng.Intn(400); i++ {
			r := matrix.Index(rng.Intn(m))
			v := float64(rng.Intn(9) - 4)
			Accum(s, r, v)
			want[r] += v
		}
		if s.Len() != len(want) {
			return false
		}
		rows, vals := s.AppendSorted(nil, nil)
		if !sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i] < rows[j] }) {
			return false
		}
		for i, r := range rows {
			if want[r] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSortIndicesLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]matrix.Index, 5000)
	for i := range a {
		a[i] = matrix.Index(rng.Intn(1 << 20))
	}
	sortIndices(a)
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("sortIndices produced unsorted output")
		}
	}
	// Edge cases.
	sortIndices(nil)
	one := []matrix.Index{5}
	sortIndices(one)
	rev := []matrix.Index{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	sortIndices(rev)
	for i := range rev {
		if rev[i] != matrix.Index(i) {
			t.Fatal("reverse sort failed")
		}
	}
}

// TestAddWithCombine checks the generic accumulate: first touch
// stores, later touches fold through the combine, and Clear keeps
// O(1) generation semantics for the generic path too.
func TestAddWithCombine(t *testing.T) {
	maxC := func(a, b matrix.Value) matrix.Value { return max(a, b) }
	s := New(16)
	s.AddWith(4, -3, maxC)
	s.AddWith(4, 7, maxC)
	s.AddWith(4, 5, maxC)
	s.AddWith(9, 1, maxC)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if v := s.Get(4); v != 7 {
		t.Errorf("Get(4) = %v, want 7", v)
	}
	s.Clear()
	s.AddWith(4, -8, maxC)
	if v := s.Get(4); v != -8 {
		t.Errorf("after Clear, Get(4) = %v, want -8 (stale value combined)", v)
	}
	if s.Len() != 1 {
		t.Errorf("after Clear, Len = %d, want 1", s.Len())
	}
}

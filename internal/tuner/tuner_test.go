package tuner

import (
	"bytes"
	"errors"
	"io/fs"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"spkadd/internal/faults/leakcheck"
)

// sig returns a representative signature for tests.
func sig() Signature {
	return Signature{K: 8, MeanColNNZ: 64, MaxColNNZ: 128, DupRate: 0.1, Sorted: true, Threads: 4}
}

func allArms() uint32 { return 1<<NumArms - 1 }

func TestSignatureKeyQuantization(t *testing.T) {
	base := sig()
	key := base.Key()
	if key == 0 {
		t.Fatal("key must never be 0 (the empty-slot marker)")
	}
	// Same bucket: small perturbations within a quantization bucket
	// share the key — that is what lets one cell accumulate samples
	// across calls of similar shape.
	near := base
	near.MeanColNNZ = 65
	near.MaxColNNZ = 130
	if near.Key() != key {
		t.Errorf("near-identical shapes should share a key: %#x != %#x", near.Key(), key)
	}
	// Different buckets: each signature dimension must move the key.
	for name, mut := range map[string]func(*Signature){
		"k":       func(s *Signature) { s.K = 64 },
		"density": func(s *Signature) { s.MeanColNNZ = 2048 },
		"dup":     func(s *Signature) { s.DupRate = 0.6 },
		"skew":    func(s *Signature) { s.MaxColNNZ = 4096 },
		"sorted":  func(s *Signature) { s.Sorted = false },
		"generic": func(s *Signature) { s.Generic = true },
		"wide":    func(s *Signature) { s.Wide = true },
		"threads": func(s *Signature) { s.Threads = 1 },
	} {
		m := base
		mut(&m)
		if m.Key() == key {
			t.Errorf("%s change did not move the key", name)
		}
	}
	// Extremes saturate instead of wrapping into other fields' bits.
	huge := Signature{K: 1 << 20, MeanColNNZ: 1e12, MaxColNNZ: 1 << 40, DupRate: 5, Threads: 1 << 20}
	if huge.Key() == 0 || huge.Key()&(1<<31) == 0 {
		t.Error("saturated key lost its marker bit")
	}
}

func TestLookupColdFallsBack(t *testing.T) {
	tn := New(1)
	arm, dec := tn.Lookup(sig().Key(), allArms(), 3)
	if dec != Fallback || arm != 3 {
		t.Fatalf("cold lookup = (%d, %v), want (3, Fallback)", arm, dec)
	}
	if arm, dec := tn.Lookup(sig().Key(), 0, 5); dec != Fallback || arm != 5 {
		t.Fatalf("empty mask = (%d, %v), want (5, Fallback)", arm, dec)
	}
}

func TestLookupExploitsCheapestArm(t *testing.T) {
	tn := New(1)
	tn.SetEpsilon(0)
	key := sig().Key()
	// Arm 2 is 10x cheaper than arms 0 and 1.
	for i := 0; i < 5; i++ {
		tn.Record(key, 0, 100*time.Microsecond, 1000)
		tn.Record(key, 1, 150*time.Microsecond, 1000)
		tn.Record(key, 2, 10*time.Microsecond, 1000)
	}
	if arm, dec := tn.Lookup(key, allArms(), 0); dec != Exploit || arm != 2 {
		t.Fatalf("lookup = (%d, %v), want (2, Exploit)", arm, dec)
	}
	// Masking out the winner promotes the runner-up.
	mask := allArms() &^ (1 << 2)
	if arm, dec := tn.Lookup(key, mask, 0); dec != Exploit || arm != 0 {
		t.Fatalf("masked lookup = (%d, %v), want (0, Exploit)", arm, dec)
	}
	// A mask with no sampled arm falls back.
	if arm, dec := tn.Lookup(key, 1<<5, 5); dec != Fallback || arm != 5 {
		t.Fatalf("unsampled mask = (%d, %v), want (5, Fallback)", arm, dec)
	}
}

func TestExplorationDeterministicUnderSeed(t *testing.T) {
	run := func(seed uint64) ([]int8, []Decision) {
		tn := New(seed)
		tn.SetEpsilon(1) // always explore
		key := sig().Key()
		tn.Record(key, 0, time.Microsecond, 1000)
		arms := make([]int8, 64)
		decs := make([]Decision, 64)
		for i := range arms {
			arms[i], decs[i] = tn.Lookup(key, allArms(), 0)
		}
		return arms, decs
	}
	a1, d1 := run(42)
	a2, d2 := run(42)
	for i := range a1 {
		if d1[i] != Explore {
			t.Fatalf("lookup %d: decision %v with epsilon 1, want Explore", i, d1[i])
		}
		if a1[i] != a2[i] || d1[i] != d2[i] {
			t.Fatalf("same seed diverged at lookup %d: (%d,%v) != (%d,%v)", i, a1[i], d1[i], a2[i], d2[i])
		}
	}
	// The explored arms must cover more than one arm over 64 draws.
	seen := map[int8]bool{}
	for _, a := range a1 {
		seen[a] = true
	}
	if len(seen) < 2 {
		t.Errorf("64 exploration draws covered %d arm(s)", len(seen))
	}
	if a3, _ := run(7); func() bool {
		for i := range a1 {
			if a1[i] != a3[i] {
				return false
			}
		}
		return true
	}() {
		t.Error("different seeds produced identical exploration sequences")
	}
}

func TestDecayRelearnsDriftedWorkload(t *testing.T) {
	tn := New(1)
	tn.SetEpsilon(0)
	key := sig().Key()
	// Arm 0 starts cheap, arm 1 expensive.
	for i := 0; i < 10; i++ {
		tn.Record(key, 0, 10*time.Microsecond, 1000)
		tn.Record(key, 1, 100*time.Microsecond, 1000)
	}
	if arm, _ := tn.Lookup(key, 0b11, 0); arm != 0 {
		t.Fatalf("pre-drift winner = %d, want 0", arm)
	}
	// The workload drifts: arm 0 becomes 20x more expensive. The EWMA
	// (alpha=0.25) must cross over within a handful of samples.
	for i := 0; i < 20; i++ {
		tn.Record(key, 0, 200*time.Microsecond, 1000)
		tn.Record(key, 1, 100*time.Microsecond, 1000)
	}
	if arm, dec := tn.Lookup(key, 0b11, 0); dec != Exploit || arm != 1 {
		t.Fatalf("post-drift lookup = (%d, %v), want (1, Exploit)", arm, dec)
	}
}

func TestCostNormalizedPerEntry(t *testing.T) {
	tn := New(1)
	key := sig().Key()
	tn.Record(key, 0, time.Millisecond, 1_000_000)
	cost, count, ok := tn.Cost(key, 0)
	if !ok || count != 1 {
		t.Fatalf("Cost = (_, %d, %v), want 1 sample", count, ok)
	}
	if cost < 0.9 || cost > 1.1 { // 1e6 ns / 1e6 entries = 1 ns/entry
		t.Errorf("cost = %g ns/entry, want ~1", cost)
	}
	// Invalid records are dropped, not misfiled.
	tn.Record(key, -1, time.Millisecond, 1000)
	tn.Record(key, int8(NumArms), time.Millisecond, 1000)
	tn.Record(key, 0, time.Millisecond, 0)
	tn.Record(0, 0, time.Millisecond, 1000)
	if _, count, _ := tn.Cost(key, 0); count != 1 {
		t.Errorf("invalid records changed the table: count = %d, want 1", count)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tn := New(1)
	keys := []uint32{sig().Key(), Signature{K: 32, MeanColNNZ: 512, MaxColNNZ: 1 << 14, Threads: 2}.Key()}
	for _, k := range keys {
		tn.Record(k, 0, 50*time.Microsecond, 1000)
		tn.Record(k, 3, 20*time.Microsecond, 1000)
	}
	var buf bytes.Buffer
	if err := tn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := New(99)
	if err := fresh.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != tn.Len() {
		t.Fatalf("loaded %d signatures, want %d", fresh.Len(), tn.Len())
	}
	for _, k := range keys {
		for _, arm := range []int8{0, 3} {
			want, wn, _ := tn.Cost(k, arm)
			got, gn, ok := fresh.Cost(k, arm)
			if !ok || got != want || gn != wn {
				t.Errorf("key %#x arm %d: loaded (%g, %d, %v), want (%g, %d)", k, arm, got, gn, ok, want, wn)
			}
		}
	}
	// And the loaded table plans like the original.
	fresh.SetEpsilon(0)
	if arm, dec := fresh.Lookup(keys[0], allArms(), 0); dec != Exploit || arm != 3 {
		t.Errorf("loaded lookup = (%d, %v), want (3, Exploit)", arm, dec)
	}
}

func TestSnapshotRejected(t *testing.T) {
	tn := New(1)
	tn.Record(sig().Key(), 0, time.Microsecond, 1000)
	var buf bytes.Buffer
	if err := tn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mut func([]byte) []byte) {
		data := mut(append([]byte(nil), good...))
		fresh := New(1)
		err := fresh.Load(bytes.NewReader(data))
		if !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", name, err)
		}
		if fresh.Len() != 0 {
			t.Errorf("%s: rejected snapshot mutated the table (%d entries)", name, fresh.Len())
		}
	}
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("wrong version", func(b []byte) []byte { b[4] = 99; return b })
	corrupt("wrong arm count", func(b []byte) []byte { b[8] = byte(NumArms + 1); return b })
	corrupt("flipped payload bit", func(b []byte) []byte { b[len(b)-10] ^= 1; return b })
	corrupt("bad checksum", func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0xAA) })
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuner.state")
	tn := New(1)
	tn.Record(sig().Key(), 2, time.Microsecond, 1000)
	if err := tn.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fresh := New(1)
	if err := fresh.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 1 {
		t.Fatalf("loaded %d signatures, want 1", fresh.Len())
	}
	// A missing file is the normal cold start, distinguishable from a
	// bad snapshot.
	err := New(1).LoadFile(filepath.Join(t.TempDir(), "absent"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file: err = %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrBadSnapshot) {
		t.Error("missing file misreported as a bad snapshot")
	}
}

// TestConcurrentRecordLookup hammers one shared tuner from concurrent
// recorders, lookers and snapshotters — the Pool-shards/server-tenants
// sharing pattern — under the race detector, with goroutine leak
// checking.
func TestConcurrentRecordLookup(t *testing.T) {
	leakcheck.Begin(t)
	tn := New(42)
	const (
		workers = 8
		iters   = 2000
	)
	sigs := make([]uint32, 16)
	for i := range sigs {
		sigs[i] = Signature{K: 1 << (i % 5), MeanColNNZ: float64(int(1) << (i % 8)), MaxColNNZ: 64, Threads: 1 + i%4}.Key()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := sigs[(w*31+i)%len(sigs)]
				arm := int8((w + i) % NumArms)
				tn.Record(key, arm, time.Duration(1+i%100)*time.Microsecond, 1000)
				if got, dec := tn.Lookup(key, allArms(), 0); dec != Fallback && (got < 0 || int(got) >= NumArms) {
					t.Errorf("lookup returned arm %d out of range", got)
					return
				}
				if i%500 == 0 {
					var buf bytes.Buffer
					if err := tn.Save(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if tn.Len() != len(sigs) {
		t.Errorf("table holds %d signatures, want %d", tn.Len(), len(sigs))
	}
}

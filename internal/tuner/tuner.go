// Package tuner implements the self-tuning planner behind
// Options.Tuner: an online learned cost model that replaces the static
// algorithm/engine/schedule heuristics with observed per-call costs.
//
// The paper's O(knd) analysis says the winning kernel depends on the
// workload shape — k, per-column density d, duplicate rate, skew,
// sortedness — yet the static planner (autoSelect, pickPhases) guesses
// from constants tuned once on one host. The tuner closes the loop: it
// quantizes each call's shape into a compact Signature, keeps an
// exponentially decayed cost estimate per (signature, plan arm) pair,
// and answers lookups with the cheapest arm observed so far,
// epsilon-greedy exploring so a cold table converges and a drifting
// workload re-learns.
//
// Design constraints, in order:
//
//   - Lookup is allocation-free and lock-free (//spkadd:noalloc): it
//     runs inside plan resolution, on the warmed Adder's zero-alloc
//     steady state. The table is a fixed-capacity open-addressing
//     array of atomics allocated at construction; a full table stops
//     learning new signatures instead of growing.
//   - Record is cheap and concurrent: a Pool's shards and a serving
//     daemon's tenants share one table, so updates are CAS loops on
//     packed (EWMA cost, sample count) cells — the same atomic
//     discipline as OpStats.
//   - Exploration is deterministic under a seeded source (splitmix64
//     advanced by atomic add), so tests replay decisions exactly.
//   - The table persists across runs as a versioned, checksummed
//     binary snapshot (Save/Load); corrupt or mismatched snapshots are
//     rejected with ErrBadSnapshot and cost only the learned state.
//
// The package is deliberately ignorant of internal/core's types: an
// arm is an index into Arms, a fixed table of (algorithm, engine,
// schedule) codes, and core maps codes to its enums. That keeps the
// dependency one-way (core imports tuner) and the bandit logic
// testable in isolation.
package tuner

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Alg codes the tunable algorithms. Only the hash family is ever
// chosen by the static Auto heuristic, and only it is tuned: the 2-way
// baselines exist to be measured against, and Heap/SPA are pinned by
// callers who want them.
type Alg uint8

const (
	// AlgHash is the flat hash-table algorithm (core.Hash).
	AlgHash Alg = iota
	// AlgSliding is the cache-capped sliding variant (core.SlidingHash).
	AlgSliding
)

// Engine codes the execution engines (core.Phases).
type Engine uint8

const (
	// EngineTwoPass is the classic symbolic+numeric driver.
	EngineTwoPass Engine = iota
	// EngineFused is the single-pass arena engine.
	EngineFused
	// EngineUpperBound is the single-pass staging engine.
	EngineUpperBound
)

// Sched codes the tunable schedules. Static and Dynamic are explicit
// opt-ins and never tuned.
type Sched uint8

const (
	// SchedWeighted is weighted contiguous partitioning (the default).
	SchedWeighted Sched = iota
	// SchedStealing is weighted partitioning with work stealing.
	SchedStealing
)

// Choice is one concrete plan the tuner can select: an algorithm, the
// engine it runs on, and the column schedule.
type Choice struct {
	Alg    Alg
	Engine Engine
	Sched  Sched
}

// Arms is the fixed candidate-plan table. An arm index is the unit of
// learning: each signature bucket holds one cost cell per arm. The
// sliding-hash arms carry EngineTwoPass because SlidingHash has no
// single-pass engine — its native driver is what the cell measures.
var Arms = [...]Choice{
	{AlgHash, EngineFused, SchedWeighted},
	{AlgHash, EngineUpperBound, SchedWeighted},
	{AlgHash, EngineTwoPass, SchedWeighted},
	{AlgSliding, EngineTwoPass, SchedWeighted},
	{AlgHash, EngineFused, SchedStealing},
	{AlgHash, EngineUpperBound, SchedStealing},
	{AlgHash, EngineTwoPass, SchedStealing},
	{AlgSliding, EngineTwoPass, SchedStealing},
}

// NumArms is the arm count; masks passed to Lookup are bitsets over
// [0, NumArms).
const NumArms = len(Arms)

// Decision classifies how Lookup arrived at its arm.
type Decision uint8

const (
	// Fallback: the table had nothing usable (unseen signature, or no
	// valid arm with samples) and the static heuristic's arm was
	// returned unchanged.
	Fallback Decision = iota
	// Exploit: the cheapest observed valid arm was returned.
	Exploit
	// Explore: an epsilon-greedy coin flip picked a uniformly random
	// valid arm to keep the estimates fresh.
	Explore
)

const (
	// tableSlots is the fixed open-addressing capacity (power of two).
	// A slot is ~70 bytes; 4096 slots keep the whole table well inside
	// a last-level cache slice while holding far more distinct
	// quantized signatures than any realistic workload produces.
	tableSlots = 4096
	// maxProbe bounds the linear probe; past it a lookup misses and an
	// insert is dropped (the table is nearly full around that point
	// anyway).
	maxProbe = 16
	// alpha is the EWMA step: each new sample contributes a quarter,
	// so old observations decay exponentially with a ~2.4-sample
	// half-life — fast enough to re-learn a drifted workload, slow
	// enough to ride out scheduling noise.
	alpha = 0.25
	// defaultEpsilon is the exploration rate: 1 in 16 lookups tries a
	// random valid arm instead of the incumbent.
	defaultEpsilon = 1.0 / 16
)

// slot is one signature bucket: the quantized key (0 = empty) and one
// packed cost cell per arm — float32 EWMA cost bits in the high word,
// a saturating sample count in the low word, updated by CAS so
// concurrent recorders never lose each other's samples.
type slot struct {
	key  atomic.Uint32 //spkadd:atomic
	arms [NumArms]atomic.Uint64
}

// Tuner is the learned cost table plus its exploration state. Safe
// for concurrent use by any number of lookers and recorders.
type Tuner struct {
	slots    []slot
	occupied atomic.Int64  //spkadd:atomic
	eps      atomic.Uint64 //spkadd:atomic float64 bits of the exploration rate
	rng      atomic.Uint64 //spkadd:atomic splitmix64 state
}

// New returns an empty tuner whose exploration draws from the given
// seed. The same seed replays the same explore/exploit sequence for a
// fixed call order, which is what the deterministic planner tests pin.
func New(seed uint64) *Tuner {
	t := &Tuner{slots: make([]slot, tableSlots)}
	t.rng.Store(seed)
	t.eps.Store(math.Float64bits(defaultEpsilon))
	return t
}

// SetEpsilon sets the exploration rate in [0, 1]. Zero freezes the
// tuner into pure exploitation — what the A/B benchmark uses after its
// warmup phase, and what a latency-critical deployment can pin once
// the table has converged.
func (t *Tuner) SetEpsilon(e float64) {
	if e < 0 {
		e = 0
	}
	if e > 1 {
		e = 1
	}
	t.eps.Store(math.Float64bits(e))
}

// Epsilon returns the current exploration rate.
func (t *Tuner) Epsilon() float64 { return math.Float64frombits(t.eps.Load()) }

// Len returns the number of distinct signatures the table holds.
func (t *Tuner) Len() int { return int(t.occupied.Load()) }

// Signature is one call's workload shape, pre-quantization. Key folds
// it into the table's bucket space; raw values outside the quantized
// ranges saturate into the edge buckets.
type Signature struct {
	// K is the input count.
	K int
	// MeanColNNZ is the mean combined input nnz per output column
	// (Σ_i nnz(A_i) / cols) — the paper's d.
	MeanColNNZ float64
	// MaxColNNZ upper-bounds the heaviest combined column
	// (Σ_i max_j nnz(A_i(:,j))); its ratio to the mean is the skew
	// bucket separating ER-like from RMAT-like inputs.
	MaxColNNZ int64
	// DupRate is the estimated duplicate fraction (the balls-into-bins
	// estimate the static engine heuristic uses).
	DupRate float64
	// Sorted reports whether every input column is row-sorted.
	Sorted bool
	// Generic reports the generic-combine (non-Plus monoid) path.
	Generic bool
	// Threads is the resolved worker count.
	Threads int
	// Wide reports an element type wider than 4 bytes (float64/int64).
	// Narrow types halve the value-array bandwidth and fit twice the
	// entries per cache line, which shifts the hash-vs-sliding and
	// engine crossovers — so wide and narrow calls must not share cost
	// cells.
	Wide bool
}

// Key quantizes the signature into its table key: log2 buckets for k,
// d and threads, coarse threshold buckets for duplicate rate and skew,
// and the three path bits (sortedness, generic combine, element
// width). Bit 31 is always set so a valid key is never 0 (the
// empty-slot marker).
//
//spkadd:noalloc
func (s Signature) Key() uint32 {
	k := log2Bucket(s.K, 7)
	d := log2Bucket(int(s.MeanColNNZ), 15)
	th := log2Bucket(s.Threads, 7)
	dup := thresholdBucket(s.DupRate, 0.05, 0.25, 0.5)
	mean := s.MeanColNNZ
	if mean < 1 {
		mean = 1
	}
	skew := thresholdBucket(float64(s.MaxColNNZ)/mean, 2, 4, 16)
	key := k | d<<3 | dup<<7 | skew<<9 | th<<11
	if s.Sorted {
		key |= 1 << 14
	}
	if s.Generic {
		key |= 1 << 15
	}
	if s.Wide {
		key |= 1 << 16
	}
	return key | 1<<31
}

// log2Bucket buckets v by bit length, clamped to [0, max].
//
//spkadd:noalloc
func log2Bucket(v, max int) uint32 {
	if v < 1 {
		return 0
	}
	b := bits.Len(uint(v)) - 1
	if b > max {
		b = max
	}
	return uint32(b)
}

// thresholdBucket buckets v into 0..3 by three ascending cutoffs.
//
//spkadd:noalloc
func thresholdBucket(v, t0, t1, t2 float64) uint32 {
	switch {
	case v < t0:
		return 0
	case v < t1:
		return 1
	case v < t2:
		return 2
	default:
		return 3
	}
}

// next advances the shared splitmix64 stream. The atomic add makes
// concurrent draws race-free (each caller gets a distinct state), and
// a single-goroutine caller sees the exact seeded sequence.
//
//spkadd:noalloc
func (t *Tuner) next() uint64 {
	x := t.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hash spreads a quantized key over the slot space.
//
//spkadd:noalloc
func hash(key uint32) uint32 {
	h := key * 2654435761
	return h ^ h>>16
}

// find returns the slot holding key, or nil on a miss. Read-only:
// never inserts (inserts happen in Record, outside any measured
// region).
//
//spkadd:noalloc
func (t *Tuner) find(key uint32) *slot {
	h := hash(key)
	for i := uint32(0); i < maxProbe; i++ {
		s := &t.slots[(h+i)&(tableSlots-1)]
		switch s.key.Load() {
		case key:
			return s
		case 0:
			return nil
		}
	}
	return nil
}

// cell unpacks one arm cell into its EWMA cost and sample count.
//
//spkadd:noalloc
func cell(v uint64) (cost float32, count uint32) {
	return math.Float32frombits(uint32(v >> 32)), uint32(v)
}

// Lookup consults the table for one call: key is the quantized
// signature, mask the bitset of arms valid for the call (constraints
// the caller already enforced: sortedness, a pinned algorithm or
// engine, monoid rules), staticArm the arm the static heuristics
// resolved to (-1 when the static plan is not representable as an
// arm). It returns the arm to run and how it was chosen; on Fallback
// the returned arm is staticArm.
//
// The path is allocation- and lock-free: one probe sequence, one
// epsilon draw, at most NumArms atomic loads. Table updates never
// happen here.
//
//spkadd:noalloc
func (t *Tuner) Lookup(key uint32, mask uint32, staticArm int8) (int8, Decision) {
	if mask == 0 {
		return staticArm, Fallback
	}
	s := t.find(key)
	if s == nil {
		return staticArm, Fallback
	}
	if eps := math.Float64frombits(t.eps.Load()); eps > 0 {
		// 53 uniform bits → [0, 1); compare against the rate.
		if float64(t.next()>>11)*(1.0/(1<<53)) < eps {
			n := bits.OnesCount32(mask)
			pick := int(t.next() % uint64(n))
			for a := 0; a < NumArms; a++ {
				if mask&(1<<a) == 0 {
					continue
				}
				if pick == 0 {
					return int8(a), Explore
				}
				pick--
			}
		}
	}
	best := int8(-1)
	var bestCost float32
	for a := 0; a < NumArms; a++ {
		if mask&(1<<a) == 0 {
			continue
		}
		cost, count := cell(s.arms[a].Load())
		if count == 0 {
			continue
		}
		if best < 0 || cost < bestCost {
			best, bestCost = int8(a), cost
		}
	}
	if best < 0 {
		return staticArm, Fallback
	}
	return best, Exploit
}

// Record folds one completed call's measurement into the table:
// elapsed wall time over entries total input nonzeros, normalized to
// nanoseconds per entry so costs compare across calls that share a
// signature bucket but not an exact shape. Unknown signatures are
// inserted here — never on the lookup path — so learning a new
// workload costs one CAS outside the measured region. A full table
// (or an exhausted probe window) drops the sample.
func (t *Tuner) Record(key uint32, arm int8, elapsed time.Duration, entries int64) {
	if arm < 0 || int(arm) >= NumArms || entries <= 0 || key == 0 {
		return
	}
	s := t.findOrInsert(key)
	if s == nil {
		return
	}
	cost := float32(float64(elapsed.Nanoseconds()) / float64(entries))
	c := &s.arms[arm]
	for {
		old := c.Load()
		ewma, count := cell(old)
		if count == 0 {
			ewma = cost
		} else {
			ewma = (1-alpha)*ewma + alpha*cost
		}
		if count != ^uint32(0) {
			count++
		}
		if c.CompareAndSwap(old, uint64(math.Float32bits(ewma))<<32|uint64(count)) {
			return
		}
	}
}

// findOrInsert returns key's slot, claiming an empty one if needed;
// nil when the probe window is exhausted.
func (t *Tuner) findOrInsert(key uint32) *slot {
	h := hash(key)
	for i := uint32(0); i < maxProbe; i++ {
		s := &t.slots[(h+i)&(tableSlots-1)]
		k := s.key.Load()
		if k == key {
			return s
		}
		if k == 0 {
			if s.key.CompareAndSwap(0, key) {
				t.occupied.Add(1)
				return s
			}
			if s.key.Load() == key { // lost the race to ourselves
				return s
			}
		}
	}
	return nil
}

// Cost returns one arm's current estimate (nanoseconds per input
// entry) and sample count for a signature key; ok is false for unseen
// signatures. Observability and test surface, not a planning API.
func (t *Tuner) Cost(key uint32, arm int8) (cost float64, count uint32, ok bool) {
	if arm < 0 || int(arm) >= NumArms {
		return 0, 0, false
	}
	s := t.find(key)
	if s == nil {
		return 0, 0, false
	}
	c, n := cell(s.arms[arm].Load())
	return float64(c), n, true
}

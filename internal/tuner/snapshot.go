package tuner

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// ErrBadSnapshot is returned by Load for any snapshot the tuner will
// not trust: short reads, a wrong magic, an unknown version, an arm
// count from a different build, or a checksum mismatch. Callers are
// expected to treat it as "start cold", never as fatal — a snapshot is
// only learned state.
var ErrBadSnapshot = errors.New("tuner: bad snapshot")

const (
	snapshotMagic   = 0x53504B54 // "SPKT"
	snapshotVersion = 1
	// snapshotHeader is magic+version+numArms+entryCount, each uint32.
	snapshotHeader = 16
	// snapshotEntry is key + one packed cell per arm.
	snapshotEntry = 4 + 8*NumArms
)

// Save writes the table as a versioned binary snapshot: a fixed
// header, one record per occupied signature, and a trailing CRC32 over
// everything before it. Concurrent Records during a Save are safe; the
// snapshot is a consistent-enough point-in-time read of each atomic
// cell (cells are independent, so no cross-cell invariant can tear).
func (t *Tuner) Save(w io.Writer) error {
	n := 0
	for i := range t.slots {
		if t.slots[i].key.Load() != 0 {
			n++
		}
	}
	buf := make([]byte, snapshotHeader+n*snapshotEntry+4)
	binary.LittleEndian.PutUint32(buf[0:], snapshotMagic)
	binary.LittleEndian.PutUint32(buf[4:], snapshotVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(NumArms))
	binary.LittleEndian.PutUint32(buf[12:], uint32(n))
	off := snapshotHeader
	for i := range t.slots {
		s := &t.slots[i]
		key := s.key.Load()
		if key == 0 {
			continue
		}
		if off+snapshotEntry > len(buf)-4 {
			break // a slot filled between the count pass and here
		}
		binary.LittleEndian.PutUint32(buf[off:], key)
		for a := range s.arms {
			binary.LittleEndian.PutUint64(buf[off+4+8*a:], s.arms[a].Load())
		}
		off += snapshotEntry
	}
	// Late-arriving slots shrink the real entry count; rewrite it so
	// the header matches what was actually serialized.
	binary.LittleEndian.PutUint32(buf[12:], uint32((off-snapshotHeader)/snapshotEntry))
	buf = buf[:off+4]
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("tuner: writing snapshot: %w", err)
	}
	return nil
}

// Load merges a snapshot produced by Save into the table. Every
// validation failure — truncation, magic, version, arm count, CRC —
// reports ErrBadSnapshot (wrapped with detail), leaving the table
// exactly as it was: a rejected snapshot costs only its learned state.
func (t *Tuner) Load(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("tuner: reading snapshot: %w", err)
	}
	if len(buf) < snapshotHeader+4 {
		return fmt.Errorf("%w: truncated (%d bytes)", ErrBadSnapshot, len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf[0:]); m != snapshotMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrBadSnapshot, m)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != snapshotVersion {
		return fmt.Errorf("%w: unknown version %d", ErrBadSnapshot, v)
	}
	if a := binary.LittleEndian.Uint32(buf[8:]); a != uint32(NumArms) {
		return fmt.Errorf("%w: arm count %d, built with %d", ErrBadSnapshot, a, NumArms)
	}
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	want := snapshotHeader + n*snapshotEntry + 4
	if len(buf) != want {
		return fmt.Errorf("%w: %d bytes for %d entries, want %d", ErrBadSnapshot, len(buf), n, want)
	}
	body := buf[:len(buf)-4]
	if got, wantCRC := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(buf[len(buf)-4:]); got != wantCRC {
		return fmt.Errorf("%w: checksum %#x, want %#x", ErrBadSnapshot, got, wantCRC)
	}
	for i := 0; i < n; i++ {
		off := snapshotHeader + i*snapshotEntry
		key := binary.LittleEndian.Uint32(buf[off:])
		if key == 0 {
			continue
		}
		s := t.findOrInsert(key)
		if s == nil {
			continue // table full: drop the remainder silently
		}
		for a := 0; a < NumArms; a++ {
			s.arms[a].Store(binary.LittleEndian.Uint64(buf[off+4+8*a:]))
		}
	}
	return nil
}

// SaveFile atomically persists the table to path (temp file + rename,
// the same discipline the bench baseline writer uses).
func (t *Tuner) SaveFile(path string) error {
	tmp := fmt.Sprintf("%s.tmp.%d", path, time.Now().UnixNano())
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("tuner: creating snapshot file: %w", err)
	}
	if err := t.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tuner: closing snapshot file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tuner: renaming snapshot file: %w", err)
	}
	return nil
}

// LoadFile merges the snapshot at path. A missing file is the normal
// cold start and reports os.ErrNotExist (wrapped); a present-but-bad
// file reports ErrBadSnapshot.
func (t *Tuner) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tuner: opening snapshot file: %w", err)
	}
	defer f.Close()
	return t.Load(f)
}

// Package spgemm implements the local sparse matrix-matrix
// multiplication kernel used inside the simulated distributed sparse
// SUMMA (§IV-E): a hash-accumulator Gustavson algorithm on CSC with a
// symbolic phase for exact output sizing, parallel over output columns.
//
// The kernel can emit sorted or unsorted output columns. The unsorted
// mode is the point of the paper's Fig 6: because hash-based SpKAdd
// accepts unsorted inputs, the local multiplications feeding it can
// skip sorting their intermediate products, making the multiply phase
// about 20% faster.
package spgemm

import (
	"errors"
	"fmt"

	"spkadd/internal/hashtab"
	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

// Options configure a multiplication.
type Options struct {
	// Threads is the worker count; <1 means GOMAXPROCS.
	Threads int
	// SortOutput requests ascending row order within output columns.
	SortOutput bool
	// LoadFactor bounds accumulator occupancy. Valid range (0, 1];
	// <=0 means 0.5, values above 1 clamp to 1.0.
	LoadFactor float64
	// Executor, when non-nil, runs both parallel phases on the given
	// resident worker pool instead of spawning goroutines per phase —
	// the same sharing contract as the SpKAdd Options.Executor, used
	// by the SUMMA simulation to keep one worker set across every
	// process's multiply and reduction.
	Executor *sched.Executor
}

func (o Options) loadFactor() float64 {
	return hashtab.ClampLoadFactor(o.LoadFactor)
}

// ErrDimMismatch reports operands whose inner dimensions disagree.
var ErrDimMismatch = errors.New("spgemm: dimension mismatch")

// Mul computes C = A*B. A is m x k, B is k x n, C is m x n.
func Mul(a, b *matrix.CSC, opt Options) (*matrix.CSC, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrDimMismatch, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	t := sched.Threads(opt.Threads)
	n := b.Cols
	lf := opt.loadFactor()

	// flops[j] = Σ_{(k,·) ∈ B(:,j)} nnz(A(:,k)): the classic upper
	// bound on nnz(C(:,j)) and the load-balancing weight.
	flops := make([]int64, n)
	for j := 0; j < n; j++ {
		var f int64
		for _, kcol := range b.ColRows(j) {
			f += int64(a.ColNNZ(int(kcol)))
		}
		flops[j] = f
	}

	// Symbolic phase: exact nnz(C(:,j)) via index-only hash tables.
	counts := make([]int64, n)
	type worker struct {
		sym *hashtab.Symbolic
		tab *hashtab.Table
	}
	workers := make([]*worker, t)
	getWorker := func(w int) *worker {
		if workers[w] == nil {
			workers[w] = &worker{}
		}
		return workers[w]
	}
	// Both phases run weighted — flops bound the symbolic work, exact
	// counts the numeric work — on the caller's resident executor when
	// one is provided.
	// A panic in a body on a shared executor comes back as an error
	// (the executor's workers recover and survive); propagate it
	// instead of publishing a half-filled product.
	runWeighted := func(weights []int64, body func(w, lo, hi int)) error {
		if opt.Executor != nil {
			_, err := opt.Executor.Weighted(weights, t, body)
			return err
		}
		sched.Weighted(weights, t, body)
		return nil
	}
	err := runWeighted(flops, func(w, lo, hi int) {
		ws := getWorker(w)
		for j := lo; j < hi; j++ {
			if flops[j] == 0 {
				continue
			}
			if ws.sym == nil {
				ws.sym = hashtab.NewSymbolic(int(flops[j]), lf)
			} else {
				ws.sym.Grow(int(flops[j]), lf)
			}
			brows := b.ColRows(j)
			for _, kcol := range brows {
				for _, r := range a.ColRows(int(kcol)) {
					ws.sym.Insert(r)
				}
			}
			counts[j] = int64(ws.sym.Len())
		}
	})
	if err != nil {
		return nil, err
	}

	c := &matrix.CSC{Rows: a.Rows, Cols: n, ColPtr: make([]int64, n+1)}
	for j := 0; j < n; j++ {
		c.ColPtr[j+1] = c.ColPtr[j] + counts[j]
	}
	nnz := c.ColPtr[n]
	c.RowIdx = make([]matrix.Index, nnz)
	c.Val = make([]matrix.Value, nnz)

	// Numeric phase: accumulate a(:,k)*b(k,j) into hash tables.
	err = runWeighted(counts, func(w, lo, hi int) {
		ws := getWorker(w)
		for j := lo; j < hi; j++ {
			need := int(counts[j])
			if need == 0 {
				continue
			}
			if ws.tab == nil {
				ws.tab = hashtab.NewTable(need, lf)
			} else {
				ws.tab.Grow(need, lf)
			}
			brows, bvals := b.ColRows(j), b.ColVals(j)
			for p := range brows {
				kcol := int(brows[p])
				bv := bvals[p]
				arows, avals := a.ColRows(kcol), a.ColVals(kcol)
				for q := range arows {
					hashtab.Accum(ws.tab, arows[q], avals[q]*bv)
				}
			}
			outRows := c.RowIdx[c.ColPtr[j]:c.ColPtr[j+1]]
			outVals := c.Val[c.ColPtr[j]:c.ColPtr[j+1]]
			r, v := ws.tab.AppendEntries(outRows[:0:need], outVals[:0:need])
			if len(r) != need || &r[0] != &outRows[0] {
				panic("spgemm: symbolic nnz disagrees with numeric nnz")
			}
			if opt.SortOutput {
				sortPairs(r, v)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// sortPairs sorts (rows, vals) jointly by ascending row index.
func sortPairs(rows []matrix.Index, vals []matrix.Value) {
	// Insertion sort is sufficient here: SUMMA intermediate columns
	// are short on average; fall back to heapsort-free quicksort for
	// longer runs.
	if len(rows) < 24 {
		for i := 1; i < len(rows); i++ {
			for j := i; j > 0 && rows[j] < rows[j-1]; j-- {
				rows[j], rows[j-1] = rows[j-1], rows[j]
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		return
	}
	mid := len(rows) / 2
	pivot := rows[mid]
	// Three-way partition.
	lt, i, gt := 0, 0, len(rows)
	for i < gt {
		switch {
		case rows[i] < pivot:
			rows[i], rows[lt] = rows[lt], rows[i]
			vals[i], vals[lt] = vals[lt], vals[i]
			lt++
			i++
		case rows[i] > pivot:
			gt--
			rows[i], rows[gt] = rows[gt], rows[i]
			vals[i], vals[gt] = vals[gt], vals[i]
		default:
			i++
		}
	}
	sortPairs(rows[:lt], vals[:lt])
	sortPairs(rows[gt:], vals[gt:])
}

package spgemm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

func randomCSC(rng *rand.Rand, rows, cols, nnz int) *matrix.CSC {
	coo := matrix.NewCOO(rows, cols)
	for i := 0; i < nnz; i++ {
		coo.Append(matrix.Index(rng.Intn(rows)), matrix.Index(rng.Intn(cols)), float64(rng.Intn(5)+1))
	}
	return coo.ToCSC()
}

func TestMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCSC(rng, 30, 20, 100)
	b := randomCSC(rng, 20, 25, 90)
	want := matrix.ReferenceMul(a, b)
	for _, sorted := range []bool{true, false} {
		got, err := Mul(a, b, Options{SortOutput: sorted, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		if !got.EqualTol(want, 1e-9) {
			t.Errorf("sorted=%v: product differs from dense reference", sorted)
		}
		if sorted && !got.IsColumnSorted() {
			t.Error("SortOutput violated")
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := matrix.NewCSC(3, 4, 0)
	b := matrix.NewCSC(5, 2, 0)
	if _, err := Mul(a, b, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCSC(rng, 15, 15, 60)
	var ts []matrix.Triple
	for i := 0; i < 15; i++ {
		ts = append(ts, matrix.Triple{Row: matrix.Index(i), Col: matrix.Index(i), Val: 1})
	}
	id := matrix.FromTriples(15, 15, ts)
	got, err := Mul(a, id, Options{SortOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Error("A*I != A")
	}
	got2, err := Mul(id, a, Options{SortOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(a) {
		t.Error("I*A != A")
	}
}

func TestMulEmptyOperands(t *testing.T) {
	a := matrix.NewCSC(4, 3, 0)
	b := matrix.NewCSC(3, 5, 0)
	got, err := Mul(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 4 || got.Cols != 5 || got.NNZ() != 0 {
		t.Errorf("empty product = %v", got)
	}
}

func TestMulRMAT(t *testing.T) {
	a := generate.RMAT(generate.Opts{Rows: 200, Cols: 150, NNZPerCol: 6, Seed: 3}, generate.Graph500)
	b := generate.RMAT(generate.Opts{Rows: 150, Cols: 100, NNZPerCol: 5, Seed: 4}, generate.Graph500)
	want := matrix.ReferenceMul(a, b)
	got, err := Mul(a, b, Options{SortOutput: true, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualTol(want, 1e-9) {
		t.Error("RMAT product differs from dense reference")
	}
}

func TestQuickMulAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := rng.Intn(20)+1, rng.Intn(20)+1, rng.Intn(20)+1
		a := randomCSC(rng, m, k, rng.Intn(60))
		b := randomCSC(rng, k, n, rng.Intn(60))
		got, err := Mul(a, b, Options{SortOutput: rng.Intn(2) == 0, Threads: rng.Intn(3) + 1})
		if err != nil {
			return false
		}
		return got.EqualTol(matrix.ReferenceMul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortPairsLongColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 3000
	rows := make([]matrix.Index, n)
	vals := make([]matrix.Value, n)
	seen := map[matrix.Index]matrix.Value{}
	for i := range rows {
		// Unique keys: three-way partition handles dups, but the CSC
		// contract here is distinct rows.
		r := matrix.Index(i * 7 % (n * 3))
		for seen[r] != 0 {
			r++
		}
		rows[i] = r
		vals[i] = float64(r) * 2
		seen[r] = 1
	}
	rng.Shuffle(n, func(i, j int) {
		rows[i], rows[j] = rows[j], rows[i]
		vals[i], vals[j] = vals[j], vals[i]
	})
	sortPairs(rows, vals)
	for i := 1; i < n; i++ {
		if rows[i] <= rows[i-1] {
			t.Fatal("not sorted")
		}
	}
	for i := range rows {
		if vals[i] != float64(rows[i])*2 {
			t.Fatal("values detached from rows during sort")
		}
	}
}

package matrix

import "errors"

// ErrInvalid is the sentinel wrapped by every structural-invariant
// failure reported by the Validate methods; errors.Is(err, ErrInvalid)
// distinguishes malformed matrices from I/O or parse failures.
var ErrInvalid = errors.New("matrix: invalid structure")

// ErrFormat is the sentinel wrapped by MatrixMarket parse failures in
// ReadMatrixMarket.
var ErrFormat = errors.New("matrix: bad MatrixMarket input")

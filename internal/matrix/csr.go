package matrix

// CSROf is a sparse matrix in compressed sparse row format over element
// type T. The paper's algorithms are described on CSC but apply
// symmetrically to CSR (§II-A); the library provides CSR and
// transpose-style conversions so row-major callers can use the same
// kernels.
type CSROf[T Number] struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []Index
	Val        []T
}

// CSR is the float64 CSR matrix.
type CSR = CSROf[Value]

// NNZ returns the number of stored entries.
func (a *CSROf[T]) NNZ() int { return len(a.ColIdx) }

// RowCols returns the column-index slice of row i (shared storage).
func (a *CSROf[T]) RowCols(i int) []Index { return a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]] }

// RowVals returns the value slice of row i (shared storage).
func (a *CSROf[T]) RowVals(i int) []T { return a.Val[a.RowPtr[i]:a.RowPtr[i+1]] }

// ToCSC converts to CSC; the result has sorted columns because rows are
// visited in ascending order.
func (a *CSROf[T]) ToCSC() *CSCOf[T] {
	out := &CSCOf[T]{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: make([]int64, a.Cols+1),
		RowIdx: make([]Index, a.NNZ()),
		Val:    make([]T, a.NNZ()),
	}
	for _, c := range a.ColIdx {
		out.ColPtr[c+1]++
	}
	for j := 0; j < a.Cols; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	next := append([]int64(nil), out.ColPtr[:a.Cols]...)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.RowCols(i), a.RowVals(i)
		for p := range cols {
			q := next[cols[p]]
			next[cols[p]]++
			out.RowIdx[q] = Index(i)
			out.Val[q] = vals[p]
		}
	}
	return out
}

// ToCSR converts a CSC matrix to CSR; the result has sorted rows when
// the CSC columns are visited in ascending order (always true here).
func (a *CSCOf[T]) ToCSR() *CSROf[T] {
	out := &CSROf[T]{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int64, a.Rows+1),
		ColIdx: make([]Index, a.NNZ()),
		Val:    make([]T, a.NNZ()),
	}
	for _, r := range a.RowIdx {
		out.RowPtr[r+1]++
	}
	for i := 0; i < a.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := append([]int64(nil), out.RowPtr[:a.Rows]...)
	for j := 0; j < a.Cols; j++ {
		rows, vals := a.ColRows(j), a.ColVals(j)
		for p := range rows {
			q := next[rows[p]]
			next[rows[p]]++
			out.ColIdx[q] = Index(j)
			out.Val[q] = vals[p]
		}
	}
	return out
}

// Transpose returns the transpose of a as a new CSC matrix with sorted
// columns.
func (a *CSCOf[T]) Transpose() *CSCOf[T] {
	t := a.ToCSR()
	return &CSCOf[T]{
		Rows:   t.Cols,
		Cols:   t.Rows,
		ColPtr: t.RowPtr,
		RowIdx: t.ColIdx,
		Val:    t.Val,
	}
}

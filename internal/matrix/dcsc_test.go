package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDCSCRoundTrip(t *testing.T) {
	// Hypersparse: 5 entries over 1000 columns.
	a := FromTriples(100, 1000, []Triple{
		{3, 10, 1}, {7, 10, 2}, {0, 500, 3}, {99, 999, 4}, {50, 0, 5},
	})
	d := a.ToDCSC()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NZC() != 4 {
		t.Errorf("NZC = %d, want 4 non-empty columns", d.NZC())
	}
	if d.NNZ() != 5 {
		t.Errorf("NNZ = %d, want 5", d.NNZ())
	}
	// DCSC index memory is O(NZC), not O(Cols).
	if len(d.ColPtr) != 5 {
		t.Errorf("ColPtr length %d, want NZC+1=5", len(d.ColPtr))
	}
	back := d.ToCSC()
	if !a.Equal(back) {
		t.Error("DCSC round trip changed the matrix")
	}
}

func TestDCSCEmptyAndDense(t *testing.T) {
	empty := NewCSC(10, 10, 0).ToDCSC()
	if err := empty.Validate(); err != nil {
		t.Fatal(err)
	}
	if empty.NZC() != 0 || empty.NNZ() != 0 {
		t.Error("empty DCSC not empty")
	}
	if got := empty.ToCSC(); got.NNZ() != 0 || got.Cols != 10 {
		t.Error("empty DCSC expansion wrong")
	}

	// All columns populated: DCSC degenerates to CSC-with-ids.
	var ts []Triple
	for j := 0; j < 8; j++ {
		ts = append(ts, Triple{Row: Index(j), Col: Index(j), Val: 1})
	}
	dense := FromTriples(8, 8, ts).ToDCSC()
	if dense.NZC() != 8 {
		t.Errorf("NZC = %d, want 8", dense.NZC())
	}
}

func TestDCSCValidateRejects(t *testing.T) {
	good := FromTriples(4, 8, []Triple{{1, 2, 1}, {3, 5, 2}}).ToDCSC()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := FromTriples(4, 8, []Triple{{1, 2, 1}, {3, 5, 2}}).ToDCSC()
	bad.ColID[1] = bad.ColID[0] // duplicate column id
	if bad.Validate() == nil {
		t.Error("non-ascending ColID accepted")
	}
	bad2 := FromTriples(4, 8, []Triple{{1, 2, 1}}).ToDCSC()
	bad2.ColID[0] = 99
	if bad2.Validate() == nil {
		t.Error("out-of-range column id accepted")
	}
	bad3 := FromTriples(4, 8, []Triple{{1, 2, 1}, {2, 3, 1}}).ToDCSC()
	bad3.ColPtr[1] = bad3.ColPtr[0] // empty stored column
	if bad3.Validate() == nil {
		t.Error("empty stored column accepted")
	}
}

func TestQuickDCSCRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := rng.Intn(40)+1, rng.Intn(200)+1
		a := randomCOO(rng, rows, cols, rng.Intn(30)).ToCSC()
		d := a.ToDCSC()
		if d.Validate() != nil {
			return false
		}
		return a.Equal(d.ToCSC())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package matrix

import (
	"fmt"
	"math"
	"sort"
)

// CSCOf is a sparse matrix in compressed sparse column format over
// element type T.
//
// Column j occupies positions ColPtr[j]..ColPtr[j+1] of RowIdx and Val.
// Columns may be sorted by row index or not; algorithms that require
// sorted columns (2-way merge, heap) state so and can be checked with
// IsColumnSorted. The zero value is an empty 0x0 matrix.
type CSCOf[T Number] struct {
	Rows, Cols int
	ColPtr     []int64 // length Cols+1, monotone non-decreasing
	RowIdx     []Index // length NNZ
	Val        []T     // length NNZ
}

// CSC is the float64 CSC matrix, the paper's element type.
type CSC = CSCOf[Value]

// NewCSC returns an empty float64 rows x cols matrix with capacity for
// nnzCap nonzeros.
func NewCSC(rows, cols, nnzCap int) *CSC {
	return NewCSCOf[Value](rows, cols, nnzCap)
}

// NewCSCOf returns an empty rows x cols matrix over T with capacity
// for nnzCap nonzeros.
func NewCSCOf[T Number](rows, cols, nnzCap int) *CSCOf[T] {
	return &CSCOf[T]{
		Rows:   rows,
		Cols:   cols,
		ColPtr: make([]int64, cols+1),
		RowIdx: make([]Index, 0, nnzCap),
		Val:    make([]T, 0, nnzCap),
	}
}

// NNZ returns the number of stored entries.
func (a *CSCOf[T]) NNZ() int { return len(a.RowIdx) }

// ColNNZ returns the number of stored entries in column j.
func (a *CSCOf[T]) ColNNZ(j int) int { return int(a.ColPtr[j+1] - a.ColPtr[j]) }

// ColRows returns the row-index slice of column j (shared storage).
func (a *CSCOf[T]) ColRows(j int) []Index { return a.RowIdx[a.ColPtr[j]:a.ColPtr[j+1]] }

// ColVals returns the value slice of column j (shared storage).
func (a *CSCOf[T]) ColVals(j int) []T { return a.Val[a.ColPtr[j]:a.ColPtr[j+1]] }

// At returns the value at (i, j), or the zero of T if no entry is
// stored there, summing duplicates (bool: OR). Columns need not be
// sorted; lookup is linear in the column length.
func (a *CSCOf[T]) At(i, j int) T {
	rows, vals := a.ColRows(j), a.ColVals(j)
	var s T
	for p, r := range rows {
		if int(r) == i {
			s = AddVal(s, vals[p])
		}
	}
	return s
}

// Validate checks structural invariants: dimensions non-negative,
// ColPtr monotone covering RowIdx/Val, and all row indices in range.
func (a *CSCOf[T]) Validate() error {
	if a.Rows < 0 || a.Cols < 0 {
		return fmt.Errorf("%w: negative dimensions %dx%d", ErrInvalid, a.Rows, a.Cols)
	}
	if len(a.ColPtr) != a.Cols+1 {
		return fmt.Errorf("%w: len(ColPtr)=%d, want Cols+1=%d", ErrInvalid, len(a.ColPtr), a.Cols+1)
	}
	if len(a.RowIdx) != len(a.Val) {
		return fmt.Errorf("%w: len(RowIdx)=%d != len(Val)=%d", ErrInvalid, len(a.RowIdx), len(a.Val))
	}
	if a.ColPtr[0] != 0 {
		return fmt.Errorf("%w: ColPtr[0] != 0", ErrInvalid)
	}
	for j := 0; j < a.Cols; j++ {
		if a.ColPtr[j+1] < a.ColPtr[j] {
			return fmt.Errorf("%w: ColPtr not monotone at column %d", ErrInvalid, j)
		}
	}
	if a.ColPtr[a.Cols] != int64(len(a.RowIdx)) {
		return fmt.Errorf("%w: ColPtr[Cols]=%d != nnz=%d", ErrInvalid, a.ColPtr[a.Cols], len(a.RowIdx))
	}
	for p, r := range a.RowIdx {
		if r < 0 || int(r) >= a.Rows {
			return fmt.Errorf("%w: row index %d out of range [0,%d) at position %d", ErrInvalid, r, a.Rows, p)
		}
	}
	return nil
}

// IsColumnSorted reports whether every column's row indices are in
// strictly ascending order (i.e. sorted and duplicate-free).
func (a *CSCOf[T]) IsColumnSorted() bool {
	for j := 0; j < a.Cols; j++ {
		rows := a.ColRows(j)
		for p := 1; p < len(rows); p++ {
			if rows[p] <= rows[p-1] {
				return false
			}
		}
	}
	return true
}

// SortColumns sorts each column in place by ascending row index,
// summing duplicate row indices into a single entry (bool: OR). It
// returns the receiver for chaining.
func (a *CSCOf[T]) SortColumns() *CSCOf[T] {
	out := 0
	newPtr := make([]int64, a.Cols+1)
	for j := 0; j < a.Cols; j++ {
		lo, hi := int(a.ColPtr[j]), int(a.ColPtr[j+1])
		col := colSorter[T]{rows: a.RowIdx[lo:hi], vals: a.Val[lo:hi]}
		sort.Sort(col)
		// Compact duplicates, writing to position out (out <= lo always).
		for p := lo; p < hi; {
			r := a.RowIdx[p]
			v := a.Val[p]
			p++
			for p < hi && a.RowIdx[p] == r {
				v = AddVal(v, a.Val[p])
				p++
			}
			a.RowIdx[out] = r
			a.Val[out] = v
			out++
		}
		newPtr[j+1] = int64(out)
	}
	a.ColPtr = newPtr
	a.RowIdx = a.RowIdx[:out]
	a.Val = a.Val[:out]
	return a
}

type colSorter[T Number] struct {
	rows []Index
	vals []T
}

func (c colSorter[T]) Len() int           { return len(c.rows) }
func (c colSorter[T]) Less(i, j int) bool { return c.rows[i] < c.rows[j] }
func (c colSorter[T]) Swap(i, j int) {
	c.rows[i], c.rows[j] = c.rows[j], c.rows[i]
	c.vals[i], c.vals[j] = c.vals[j], c.vals[i]
}

// Clone returns a deep copy.
func (a *CSCOf[T]) Clone() *CSCOf[T] {
	b := &CSCOf[T]{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: append([]int64(nil), a.ColPtr...),
		RowIdx: append([]Index(nil), a.RowIdx...),
		Val:    append([]T(nil), a.Val...),
	}
	return b
}

// Equal reports whether a and b represent the same matrix, comparing
// entries exactly. Columns are compared as sets, so entry order within
// a column does not matter; duplicates must already be merged.
func (a *CSCOf[T]) Equal(b *CSCOf[T]) bool {
	return a.EqualTol(b, 0)
}

// EqualTol is Equal with an absolute tolerance on values, compared in
// float64 (ToFloat64; exact for every T narrower than 53 bits of
// mantissa demand, and tol 0 degenerates to exact comparison).
func (a *CSCOf[T]) EqualTol(b *CSCOf[T], tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	// Compare column by column through sorted copies.
	for j := 0; j < a.Cols; j++ {
		if a.ColNNZ(j) != b.ColNNZ(j) {
			return false
		}
		ar, av := sortedCol(a, j)
		br, bv := sortedCol(b, j)
		for p := range ar {
			if ar[p] != br[p] {
				return false
			}
			if av[p] != bv[p] && math.Abs(ToFloat64(av[p])-ToFloat64(bv[p])) > tol {
				return false
			}
		}
	}
	return true
}

func sortedCol[T Number](a *CSCOf[T], j int) ([]Index, []T) {
	rows, vals := a.ColRows(j), a.ColVals(j)
	if sort.SliceIsSorted(rows, func(i, k int) bool { return rows[i] < rows[k] }) {
		return rows, vals
	}
	r := append([]Index(nil), rows...)
	v := append([]T(nil), vals...)
	sort.Sort(colSorter[T]{rows: r, vals: v})
	return r, v
}

// ColRangeNNZ returns the number of entries of column j whose row index
// lies in [r1, r2). The column must be sorted by row index; the count is
// located with two binary searches as in the sliding-hash algorithm.
func (a *CSCOf[T]) ColRangeNNZ(j int, r1, r2 Index) int {
	lo, hi := a.colRange(j, r1, r2)
	return hi - lo
}

// ColRange returns the (rows, vals) sub-slices of sorted column j
// restricted to row indices in [r1, r2).
func (a *CSCOf[T]) ColRange(j int, r1, r2 Index) ([]Index, []T) {
	lo, hi := a.colRange(j, r1, r2)
	base := int(a.ColPtr[j])
	return a.RowIdx[base+lo : base+hi], a.Val[base+lo : base+hi]
}

func (a *CSCOf[T]) colRange(j int, r1, r2 Index) (lo, hi int) {
	rows := a.ColRows(j)
	lo = sort.Search(len(rows), func(p int) bool { return rows[p] >= r1 })
	hi = sort.Search(len(rows), func(p int) bool { return rows[p] >= r2 })
	return lo, hi
}

// Scale multiplies every stored value by s, in place (bool: AND).
func (a *CSCOf[T]) Scale(s T) *CSCOf[T] {
	for p := range a.Val {
		a.Val[p] = MulVal(a.Val[p], s)
	}
	return a
}

// DropZeros removes explicitly stored zeros (bool: stored false),
// preserving entry order.
func (a *CSCOf[T]) DropZeros() *CSCOf[T] {
	out := 0
	newPtr := make([]int64, a.Cols+1)
	for j := 0; j < a.Cols; j++ {
		for p := int(a.ColPtr[j]); p < int(a.ColPtr[j+1]); p++ {
			if !IsZero(a.Val[p]) {
				a.RowIdx[out] = a.RowIdx[p]
				a.Val[out] = a.Val[p]
				out++
			}
		}
		newPtr[j+1] = int64(out)
	}
	a.ColPtr = newPtr
	a.RowIdx = a.RowIdx[:out]
	a.Val = a.Val[:out]
	return a
}

// Triples returns all stored entries in column-major order.
func (a *CSCOf[T]) Triples() []TripleOf[T] {
	ts := make([]TripleOf[T], 0, a.NNZ())
	for j := 0; j < a.Cols; j++ {
		rows, vals := a.ColRows(j), a.ColVals(j)
		for p := range rows {
			ts = append(ts, TripleOf[T]{Row: rows[p], Col: Index(j), Val: vals[p]})
		}
	}
	return ts
}

// ColSplit splits a into k column blocks of near-equal width (the
// paper's construction of k SpKAdd inputs from one m x n matrix: each
// piece keeps the full row dimension and n/k of the columns, re-indexed
// from 0). When widen is true each piece is returned as an m x ceil(n/k)
// matrix; the last piece may have fewer populated columns.
func (a *CSCOf[T]) ColSplit(k int) []*CSCOf[T] {
	if k <= 0 {
		return nil
	}
	width := (a.Cols + k - 1) / k
	if width == 0 {
		width = 1
	}
	pieces := make([]*CSCOf[T], 0, k)
	for start := 0; start < a.Cols; start += width {
		end := start + width
		if end > a.Cols {
			end = a.Cols
		}
		lo, hi := a.ColPtr[start], a.ColPtr[end]
		p := &CSCOf[T]{
			Rows:   a.Rows,
			Cols:   width,
			ColPtr: make([]int64, width+1),
			RowIdx: append([]Index(nil), a.RowIdx[lo:hi]...),
			Val:    append([]T(nil), a.Val[lo:hi]...),
		}
		for j := start; j < end; j++ {
			p.ColPtr[j-start+1] = a.ColPtr[j+1] - lo
		}
		for j := end - start; j < width; j++ {
			p.ColPtr[j+1] = p.ColPtr[j]
		}
		pieces = append(pieces, p)
	}
	for len(pieces) < k {
		pieces = append(pieces, NewCSCOf[T](a.Rows, width, 0))
	}
	return pieces
}

// ColView returns the columns [c0, c1) of a as a Rows x (c1-c0) matrix
// sharing a's entry storage: RowIdx and Val are capacity-clipped
// sub-slices of a's arrays, so no nonzeros are copied — only the
// (c1-c0)+1 rebased ColPtr is allocated. Mutating the view's entries
// mutates a, and vice versa; callers that need isolation use ColSplit
// or Block instead. ColView is the slicing primitive of the sharded
// accumulation pool: Push carves each incoming matrix into per-shard
// views without touching the nnz payload.
func (a *CSCOf[T]) ColView(c0, c1 int) *CSCOf[T] {
	if c0 < 0 || c1 > a.Cols || c0 > c1 {
		panic("matrix: ColView range out of bounds")
	}
	lo, hi := a.ColPtr[c0], a.ColPtr[c1]
	ptr := make([]int64, c1-c0+1)
	for j := range ptr {
		ptr[j] = a.ColPtr[c0+j] - lo
	}
	return &CSCOf[T]{
		Rows:   a.Rows,
		Cols:   c1 - c0,
		ColPtr: ptr,
		RowIdx: a.RowIdx[lo:hi:hi],
		Val:    a.Val[lo:hi:hi],
	}
}

// String returns a short human-readable summary, not the full contents.
func (a *CSCOf[T]) String() string {
	return fmt.Sprintf("CSC{%dx%d, nnz=%d}", a.Rows, a.Cols, a.NNZ())
}

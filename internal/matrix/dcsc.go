package matrix

import "fmt"

// DCSCOf is a doubly compressed sparse column matrix (Buluç & Gilbert)
// over element type T: only non-empty columns are stored, making the
// format suitable for hypersparse matrices (nnz < number of columns),
// which arise naturally as the per-process blocks of 2D-distributed
// matrices — the very blocks the SUMMA experiments shard. The paper
// lists DCSC among the formats its algorithms apply to (§II-A).
//
// ColID holds the ids of non-empty columns in ascending order; column
// ColID[c] occupies positions ColPtr[c]..ColPtr[c+1] of RowIdx/Val.
type DCSCOf[T Number] struct {
	Rows, Cols int
	ColID      []Index // non-empty column ids, strictly ascending
	ColPtr     []int64 // len(ColID)+1
	RowIdx     []Index
	Val        []T
}

// DCSC is the float64 doubly compressed matrix.
type DCSC = DCSCOf[Value]

// NNZ returns the number of stored entries.
func (d *DCSCOf[T]) NNZ() int { return len(d.RowIdx) }

// NZC returns the number of non-empty columns.
func (d *DCSCOf[T]) NZC() int { return len(d.ColID) }

// Validate checks the structural invariants.
func (d *DCSCOf[T]) Validate() error {
	if d.Rows < 0 || d.Cols < 0 {
		return fmt.Errorf("%w: negative dimensions %dx%d", ErrInvalid, d.Rows, d.Cols)
	}
	if len(d.ColPtr) != len(d.ColID)+1 {
		return fmt.Errorf("%w: len(ColPtr)=%d, want len(ColID)+1=%d", ErrInvalid, len(d.ColPtr), len(d.ColID)+1)
	}
	if len(d.RowIdx) != len(d.Val) {
		return fmt.Errorf("%w: len(RowIdx)=%d != len(Val)=%d", ErrInvalid, len(d.RowIdx), len(d.Val))
	}
	if len(d.ColPtr) > 0 {
		if d.ColPtr[0] != 0 {
			return fmt.Errorf("%w: ColPtr[0] != 0", ErrInvalid)
		}
		if d.ColPtr[len(d.ColPtr)-1] != int64(len(d.RowIdx)) {
			return fmt.Errorf("%w: ColPtr end %d != nnz %d", ErrInvalid, d.ColPtr[len(d.ColPtr)-1], len(d.RowIdx))
		}
	}
	for c := range d.ColID {
		if d.ColID[c] < 0 || int(d.ColID[c]) >= d.Cols {
			return fmt.Errorf("%w: column id %d out of range", ErrInvalid, d.ColID[c])
		}
		if c > 0 && d.ColID[c] <= d.ColID[c-1] {
			return fmt.Errorf("%w: ColID not strictly ascending at %d", ErrInvalid, c)
		}
		if d.ColPtr[c+1] < d.ColPtr[c] {
			return fmt.Errorf("%w: ColPtr not monotone at %d", ErrInvalid, c)
		}
		if d.ColPtr[c+1] == d.ColPtr[c] {
			return fmt.Errorf("%w: stored column %d is empty (must be compressed away)", ErrInvalid, d.ColID[c])
		}
	}
	for _, r := range d.RowIdx {
		if r < 0 || int(r) >= d.Rows {
			return fmt.Errorf("%w: row index %d out of range", ErrInvalid, r)
		}
	}
	return nil
}

// ToDCSC compresses a CSC matrix, dropping empty columns from the
// column index.
func (a *CSCOf[T]) ToDCSC() *DCSCOf[T] {
	d := &DCSCOf[T]{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowIdx: append([]Index(nil), a.RowIdx...),
		Val:    append([]T(nil), a.Val...),
	}
	d.ColPtr = append(d.ColPtr, 0)
	for j := 0; j < a.Cols; j++ {
		if a.ColNNZ(j) == 0 {
			continue
		}
		d.ColID = append(d.ColID, Index(j))
		d.ColPtr = append(d.ColPtr, a.ColPtr[j+1])
	}
	return d
}

// ToCSC expands back to CSC (O(Cols) column pointers).
func (d *DCSCOf[T]) ToCSC() *CSCOf[T] {
	a := &CSCOf[T]{
		Rows:   d.Rows,
		Cols:   d.Cols,
		ColPtr: make([]int64, d.Cols+1),
		RowIdx: append([]Index(nil), d.RowIdx...),
		Val:    append([]T(nil), d.Val...),
	}
	c := 0
	for j := 0; j < d.Cols; j++ {
		a.ColPtr[j+1] = a.ColPtr[j]
		if c < len(d.ColID) && int(d.ColID[c]) == j {
			a.ColPtr[j+1] = d.ColPtr[c+1]
			c++
		}
	}
	return a
}

package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCOO(rng *rand.Rand, rows, cols, nnz int) *COO {
	c := NewCOO(rows, cols)
	for i := 0; i < nnz; i++ {
		c.Append(Index(rng.Intn(rows)), Index(rng.Intn(cols)), float64(rng.Intn(9)+1))
	}
	return c
}

func TestCOOToCSCBasic(t *testing.T) {
	c := NewCOO(4, 3)
	c.Append(2, 0, 1)
	c.Append(0, 0, 2)
	c.Append(2, 0, 3) // duplicate of (2,0): must merge to 4
	c.Append(3, 2, 5)
	a := c.ToCSC()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", a.NNZ())
	}
	if got := a.At(2, 0); got != 4 {
		t.Errorf("At(2,0) = %v, want 4", got)
	}
	if got := a.At(0, 0); got != 2 {
		t.Errorf("At(0,0) = %v, want 2", got)
	}
	if got := a.At(3, 2); got != 5 {
		t.Errorf("At(3,2) = %v, want 5", got)
	}
	if got := a.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %v, want 0", got)
	}
	if !a.IsColumnSorted() {
		t.Error("ToCSC output should be column sorted")
	}
}

func TestCSCValidateRejectsMalformed(t *testing.T) {
	good := FromTriples(3, 3, []Triple{{0, 0, 1}, {2, 1, 2}})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}

	bad := good.Clone()
	bad.ColPtr[1] = 99
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone/overflowing ColPtr accepted")
	}

	bad = good.Clone()
	bad.RowIdx[0] = 7
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range row index accepted")
	}

	bad = good.Clone()
	bad.ColPtr = bad.ColPtr[:2]
	if err := bad.Validate(); err == nil {
		t.Error("short ColPtr accepted")
	}

	bad = good.Clone()
	bad.Val = bad.Val[:1]
	if err := bad.Validate(); err == nil {
		t.Error("mismatched Val length accepted")
	}

	bad = good.Clone()
	bad.ColPtr[0] = 1
	if err := bad.Validate(); err == nil {
		t.Error("ColPtr[0] != 0 accepted")
	}
}

func TestSortColumnsMergesDuplicates(t *testing.T) {
	a := &CSC{
		Rows:   5,
		Cols:   2,
		ColPtr: []int64{0, 4, 6},
		RowIdx: []Index{3, 1, 3, 0, 4, 4},
		Val:    []Value{1, 2, 10, 3, 5, 6},
	}
	a.SortColumns()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsColumnSorted() {
		t.Fatal("columns not sorted")
	}
	if a.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", a.NNZ())
	}
	if got := a.At(3, 0); got != 11 {
		t.Errorf("At(3,0) = %v, want 11", got)
	}
	if got := a.At(4, 1); got != 11 {
		t.Errorf("At(4,1) = %v, want 11", got)
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCOO(rng, 17, 9, 60).ToCSC()
	tt := a.Transpose().Transpose()
	if !a.Equal(tt) {
		t.Error("double transpose differs from original")
	}
	tr := a.Transpose()
	for _, tri := range a.Triples() {
		if got := tr.At(int(tri.Col), int(tri.Row)); got != tri.Val {
			t.Fatalf("transpose At(%d,%d) = %v, want %v", tri.Col, tri.Row, got, tri.Val)
		}
	}
}

func TestCSRConversionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCOO(rng, 23, 11, 80).ToCSC()
	back := a.ToCSR().ToCSC()
	if !a.Equal(back) {
		t.Error("CSC -> CSR -> CSC changed the matrix")
	}
}

func TestColRange(t *testing.T) {
	a := FromTriples(10, 1, []Triple{{1, 0, 1}, {3, 0, 2}, {5, 0, 3}, {9, 0, 4}})
	rows, vals := a.ColRange(0, 3, 9)
	if len(rows) != 2 || rows[0] != 3 || rows[1] != 5 {
		t.Fatalf("ColRange rows = %v, want [3 5]", rows)
	}
	if vals[0] != 2 || vals[1] != 3 {
		t.Fatalf("ColRange vals = %v, want [2 3]", vals)
	}
	if n := a.ColRangeNNZ(0, 0, 2); n != 1 {
		t.Errorf("ColRangeNNZ(0,2) = %d, want 1", n)
	}
	if n := a.ColRangeNNZ(0, 0, 10); n != 4 {
		t.Errorf("ColRangeNNZ full = %d, want 4", n)
	}
	if n := a.ColRangeNNZ(0, 6, 9); n != 0 {
		t.Errorf("ColRangeNNZ empty = %d, want 0", n)
	}
}

func TestColSplitCoversAllEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCOO(rng, 20, 12, 100).ToCSC()
	for _, k := range []int{1, 2, 3, 4, 5, 12, 20} {
		pieces := a.ColSplit(k)
		if len(pieces) != k {
			t.Fatalf("k=%d: got %d pieces", k, len(pieces))
		}
		total := 0
		for _, p := range pieces {
			if err := p.Validate(); err != nil {
				t.Fatalf("k=%d: invalid piece: %v", k, err)
			}
			if p.Rows != a.Rows {
				t.Fatalf("k=%d: piece rows %d != %d", k, p.Rows, a.Rows)
			}
			total += p.NNZ()
		}
		if total != a.NNZ() {
			t.Fatalf("k=%d: pieces hold %d entries, want %d", k, total, a.NNZ())
		}
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := FromTriples(4, 4, []Triple{{0, 0, 1}, {2, 3, 2}})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Val[0] = 99
	if a.Equal(b) {
		t.Error("value change not detected")
	}
	c := FromTriples(4, 4, []Triple{{0, 0, 1}, {3, 3, 2}})
	if a.Equal(c) {
		t.Error("position change not detected")
	}
	d := FromTriples(5, 4, []Triple{{0, 0, 1}, {2, 3, 2}})
	if a.Equal(d) {
		t.Error("dimension change not detected")
	}
}

func TestEqualIgnoresColumnOrder(t *testing.T) {
	sorted := FromTriples(5, 1, []Triple{{1, 0, 1}, {4, 0, 2}})
	unsorted := &CSC{Rows: 5, Cols: 1, ColPtr: []int64{0, 2}, RowIdx: []Index{4, 1}, Val: []Value{2, 1}}
	if !sorted.Equal(unsorted) {
		t.Error("Equal should compare columns as sets")
	}
}

func TestDropZerosAndScale(t *testing.T) {
	a := FromTriples(3, 2, []Triple{{0, 0, 2}, {1, 0, 0}, {2, 1, -4}})
	a.DropZeros()
	if a.NNZ() != 2 {
		t.Fatalf("nnz after DropZeros = %d, want 2", a.NNZ())
	}
	a.Scale(0.5)
	if got := a.At(0, 0); got != 1 {
		t.Errorf("At(0,0) after scale = %v, want 1", got)
	}
	if got := a.At(2, 1); got != -2 {
		t.Errorf("At(2,1) after scale = %v, want -2", got)
	}
}

func TestQuickCOOToCSCPreservesSums(t *testing.T) {
	// Property: for random COO inputs, the CSC conversion preserves the
	// per-position sum of duplicates.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := rng.Intn(16)+1, rng.Intn(16)+1
		coo := randomCOO(rng, rows, cols, rng.Intn(100))
		a := coo.ToCSC()
		if err := a.Validate(); err != nil {
			return false
		}
		want := NewDense(rows, cols)
		for _, e := range coo.Entries {
			want.Data[int(e.Row)*cols+int(e.Col)] += e.Val
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if a.At(i, j) != want.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := rng.Intn(20)+1, rng.Intn(20)+1
		a := randomCOO(rng, rows, cols, rng.Intn(150)).ToCSC()
		return a.Equal(a.Transpose().Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyMatrices(t *testing.T) {
	e := NewCSC(0, 0, 0)
	if err := e.Validate(); err != nil {
		t.Errorf("empty matrix invalid: %v", err)
	}
	e2 := NewCSC(5, 3, 0)
	if err := e2.Validate(); err != nil {
		t.Errorf("zero-nnz matrix invalid: %v", err)
	}
	if !e2.IsColumnSorted() {
		t.Error("empty columns should count as sorted")
	}
	tr := e2.Transpose()
	if tr.Rows != 3 || tr.Cols != 5 || tr.NNZ() != 0 {
		t.Errorf("transpose of empty = %v", tr)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestColViewMatchesBlock(t *testing.T) {
	a := FromTriples(6, 8, []Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 3, Col: 0, Val: 2},
		{Row: 1, Col: 2, Val: 3}, {Row: 5, Col: 2, Val: 4},
		{Row: 2, Col: 5, Val: 5}, {Row: 4, Col: 7, Val: 6},
	})
	for _, r := range [][2]int{{0, 8}, {0, 3}, {2, 6}, {5, 5}, {8, 8}, {0, 0}} {
		c0, c1 := r[0], r[1]
		got := a.ColView(c0, c1)
		if err := got.Validate(); err != nil {
			t.Fatalf("ColView(%d,%d) invalid: %v", c0, c1, err)
		}
		want := a.Block(0, a.Rows, c0, c1)
		if !got.Equal(want) {
			t.Errorf("ColView(%d,%d) differs from Block", c0, c1)
		}
	}
}

func TestColViewSharesStorage(t *testing.T) {
	a := FromTriples(4, 4, []Triple{{Row: 1, Col: 2, Val: 7}})
	v := a.ColView(2, 4)
	if v.NNZ() != 1 || v.At(1, 0) != 7 {
		t.Fatalf("view contents wrong: %v", v)
	}
	// Zero-copy means shared entries: mutating the view mutates a.
	v.Val[0] = 9
	if a.At(1, 2) != 9 {
		t.Error("view does not share value storage with its parent")
	}
	// The view's slices are capacity-clipped: appending to the view
	// must not scribble past its column range into the parent.
	v2 := a.ColView(0, 3)
	v2.RowIdx = append(v2.RowIdx, 0)
	v2.Val = append(v2.Val, 1)
	if a.At(1, 2) != 9 {
		t.Error("append to view leaked into parent storage")
	}
}

func TestColViewBounds(t *testing.T) {
	a := NewCSC(3, 3, 0)
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ColView(%d,%d) did not panic", r[0], r[1])
				}
			}()
			a.ColView(r[0], r[1])
		}()
	}
}

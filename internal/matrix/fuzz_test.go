package matrix

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket checks the parser never panics and that
// anything it accepts is a structurally valid matrix that round-trips.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n3 3\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n\n1 1 0\n")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("accepted invalid matrix: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteMatrixMarket(&buf, a); werr != nil {
			t.Fatalf("cannot re-serialize accepted matrix: %v", werr)
		}
		back, rerr := ReadMatrixMarket(&buf)
		if rerr != nil {
			t.Fatalf("cannot re-parse own output: %v", rerr)
		}
		if back.Rows != a.Rows || back.Cols != a.Cols || back.NNZ() != a.NNZ() {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzSortColumns checks column sorting/merging on arbitrary raw CSC
// payloads: for any structurally valid input, the result must be
// sorted, valid and preserve per-position sums.
func FuzzSortColumns(f *testing.F) {
	f.Add(uint16(4), uint16(2), []byte{0, 1, 2, 3, 1, 1})
	f.Fuzz(func(t *testing.T, rows16, cols16 uint16, data []byte) {
		rows := int(rows16%64) + 1
		cols := int(cols16%8) + 1
		coo := NewCOO(rows, cols)
		for i := 0; i+1 < len(data); i += 2 {
			coo.Append(Index(int(data[i])%rows), Index(int(data[i+1])%cols), float64(i+1))
		}
		// Build an unsorted CSC by skipping the sort step of ToCSC.
		n := cols
		colCount := make([]int64, n+1)
		for _, tr := range coo.Entries {
			colCount[tr.Col+1]++
		}
		for j := 0; j < n; j++ {
			colCount[j+1] += colCount[j]
		}
		a := &CSC{Rows: rows, Cols: cols, ColPtr: colCount,
			RowIdx: make([]Index, len(coo.Entries)), Val: make([]Value, len(coo.Entries))}
		next := append([]int64(nil), a.ColPtr[:n]...)
		for _, tr := range coo.Entries {
			p := next[tr.Col]
			next[tr.Col]++
			a.RowIdx[p] = tr.Row
			a.Val[p] = tr.Val
		}
		want := NewDense(rows, cols).AddCSC(a)

		a.SortColumns()
		if err := a.Validate(); err != nil {
			t.Fatalf("SortColumns produced invalid matrix: %v", err)
		}
		if !a.IsColumnSorted() {
			t.Fatal("SortColumns left unsorted columns")
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if a.At(i, j) != want.At(i, j) {
					t.Fatalf("value changed at (%d,%d)", i, j)
				}
			}
		}
	})
}

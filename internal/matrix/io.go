package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes a in MatrixMarket coordinate format
// (1-based indices), the interchange format of the SuiteSparse
// collection and of the protein-similarity matrices the paper uses.
func WriteMatrixMarket(w io.Writer, a *CSC) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for j := 0; j < a.Cols; j++ {
		rows, vals := a.ColRows(j), a.ColVals(j)
		for p := range rows {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", rows[p]+1, j+1, vals[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file into CSC.
// Only the "matrix coordinate real general" and "pattern" headers are
// supported; pattern entries get value 1.
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pattern := false
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty MatrixMarket stream", ErrFormat)
	}
	header := strings.ToLower(sc.Text())
	if !strings.HasPrefix(header, "%%matrixmarket") {
		return nil, fmt.Errorf("%w: missing MatrixMarket banner", ErrFormat)
	}
	if !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("%w: only coordinate format supported", ErrFormat)
	}
	if strings.Contains(header, "pattern") {
		pattern = true
	}
	if strings.Contains(header, "complex") || strings.Contains(header, "symmetric") {
		return nil, fmt.Errorf("%w: unsupported MatrixMarket qualifier in %q", ErrFormat, header)
	}
	// Skip comments, read size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("%w: bad size line %q: %v", ErrFormat, line, err)
		}
		break
	}
	coo := &COO{Rows: rows, Cols: cols, Entries: make([]Triple, 0, nnz)}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if pattern {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("%w: short entry line %q", ErrFormat, line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: bad row index in %q: %v", ErrFormat, line, err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%w: bad column index in %q: %v", ErrFormat, line, err)
		}
		v := 1.0
		if !pattern {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad value in %q: %v", ErrFormat, line, err)
			}
		}
		coo.Append(Index(i-1), Index(j-1), v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := coo.Validate(); err != nil {
		return nil, err
	}
	if coo.NNZ() != nnz {
		return nil, fmt.Errorf("%w: header promised %d entries, got %d", ErrFormat, nnz, coo.NNZ())
	}
	return coo.ToCSC(), nil
}

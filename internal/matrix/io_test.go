package matrix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCOO(rng, 30, 18, 120).ToCSC()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("MatrixMarket round trip changed the matrix")
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 2 2
1 1
3 2
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 3 || a.Cols != 2 || a.NNZ() != 2 {
		t.Fatalf("got %v", a)
	}
	if a.At(0, 0) != 1 || a.At(2, 1) != 1 {
		t.Error("pattern entries should have value 1")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"not a banner\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n1 1\n1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n", // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", // count mismatch
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",     // short line
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

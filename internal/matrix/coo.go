package matrix

import (
	"fmt"
	"sort"
)

// COO is a sparse matrix in coordinate (triple) format. Entries may be
// unordered and may contain duplicates; ToCSC merges duplicates by
// summation, matching the usual assembly semantics (e.g. finite-element
// assembly accumulates overlapping local contributions).
type COO struct {
	Rows, Cols int
	Entries    []Triple
}

// NewCOO returns an empty rows x cols coordinate matrix.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Append adds one entry. It does not check ranges; Validate does.
func (c *COO) Append(i, j Index, v Value) {
	c.Entries = append(c.Entries, Triple{Row: i, Col: j, Val: v})
}

// NNZ returns the number of stored triples (duplicates counted).
func (c *COO) NNZ() int { return len(c.Entries) }

// Validate checks that all coordinates are in range.
func (c *COO) Validate() error {
	for p, t := range c.Entries {
		if t.Row < 0 || int(t.Row) >= c.Rows || t.Col < 0 || int(t.Col) >= c.Cols {
			return fmt.Errorf("%w: entry %d (%d,%d) out of range %dx%d", ErrInvalid, p, t.Row, t.Col, c.Rows, c.Cols)
		}
	}
	return nil
}

// ToCSC converts to CSC with sorted columns, summing duplicates.
func (c *COO) ToCSC() *CSC {
	n := c.Cols
	colCount := make([]int64, n+1)
	for _, t := range c.Entries {
		colCount[t.Col+1]++
	}
	for j := 0; j < n; j++ {
		colCount[j+1] += colCount[j]
	}
	a := &CSC{
		Rows:   c.Rows,
		Cols:   n,
		ColPtr: colCount,
		RowIdx: make([]Index, len(c.Entries)),
		Val:    make([]Value, len(c.Entries)),
	}
	next := append([]int64(nil), a.ColPtr[:n]...)
	for _, t := range c.Entries {
		p := next[t.Col]
		next[t.Col]++
		a.RowIdx[p] = t.Row
		a.Val[p] = t.Val
	}
	return a.SortColumns()
}

// FromTriples builds a sorted, duplicate-merged CSC directly.
func FromTriples(rows, cols int, ts []Triple) *CSC {
	c := &COO{Rows: rows, Cols: cols, Entries: ts}
	return c.ToCSC()
}

// SortRowMajor sorts entries by (row, col); useful for deterministic
// output and tests.
func (c *COO) SortRowMajor() {
	sort.Slice(c.Entries, func(i, j int) bool {
		a, b := c.Entries[i], c.Entries[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
}

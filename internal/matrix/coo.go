package matrix

import (
	"fmt"
	"sort"
)

// COOOf is a sparse matrix in coordinate (triple) format over element
// type T. Entries may be unordered and may contain duplicates; ToCSC
// merges duplicates by summation (bool: OR), matching the usual
// assembly semantics (e.g. finite-element assembly accumulates
// overlapping local contributions).
type COOOf[T Number] struct {
	Rows, Cols int
	Entries    []TripleOf[T]
}

// COO is the float64 coordinate matrix.
type COO = COOOf[Value]

// NewCOO returns an empty float64 rows x cols coordinate matrix.
func NewCOO(rows, cols int) *COO {
	return NewCOOOf[Value](rows, cols)
}

// NewCOOOf returns an empty rows x cols coordinate matrix over T.
func NewCOOOf[T Number](rows, cols int) *COOOf[T] {
	return &COOOf[T]{Rows: rows, Cols: cols}
}

// Append adds one entry. It does not check ranges; Validate does.
func (c *COOOf[T]) Append(i, j Index, v T) {
	c.Entries = append(c.Entries, TripleOf[T]{Row: i, Col: j, Val: v})
}

// NNZ returns the number of stored triples (duplicates counted).
func (c *COOOf[T]) NNZ() int { return len(c.Entries) }

// Validate checks that all coordinates are in range.
func (c *COOOf[T]) Validate() error {
	for p, t := range c.Entries {
		if t.Row < 0 || int(t.Row) >= c.Rows || t.Col < 0 || int(t.Col) >= c.Cols {
			return fmt.Errorf("%w: entry %d (%d,%d) out of range %dx%d", ErrInvalid, p, t.Row, t.Col, c.Rows, c.Cols)
		}
	}
	return nil
}

// ToCSC converts to CSC with sorted columns, summing duplicates.
func (c *COOOf[T]) ToCSC() *CSCOf[T] {
	n := c.Cols
	colCount := make([]int64, n+1)
	for _, t := range c.Entries {
		colCount[t.Col+1]++
	}
	for j := 0; j < n; j++ {
		colCount[j+1] += colCount[j]
	}
	a := &CSCOf[T]{
		Rows:   c.Rows,
		Cols:   n,
		ColPtr: colCount,
		RowIdx: make([]Index, len(c.Entries)),
		Val:    make([]T, len(c.Entries)),
	}
	next := append([]int64(nil), a.ColPtr[:n]...)
	for _, t := range c.Entries {
		p := next[t.Col]
		next[t.Col]++
		a.RowIdx[p] = t.Row
		a.Val[p] = t.Val
	}
	return a.SortColumns()
}

// FromTriples builds a sorted, duplicate-merged float64 CSC directly.
// A plain function (not FromTriplesOf[Value]) so a nil triple slice
// still resolves the element type.
func FromTriples(rows, cols int, ts []Triple) *CSC {
	return FromTriplesOf(rows, cols, ts)
}

// FromTriplesOf builds a sorted, duplicate-merged CSC directly.
func FromTriplesOf[T Number](rows, cols int, ts []TripleOf[T]) *CSCOf[T] {
	c := &COOOf[T]{Rows: rows, Cols: cols, Entries: ts}
	return c.ToCSC()
}

// SortRowMajor sorts entries by (row, col); useful for deterministic
// output and tests.
func (c *COOOf[T]) SortRowMajor() {
	sort.Slice(c.Entries, func(i, j int) bool {
		a, b := c.Entries[i], c.Entries[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
}

package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockBasic(t *testing.T) {
	a := FromTriples(6, 4, []Triple{
		{0, 0, 1}, {2, 1, 2}, {3, 1, 3}, {5, 3, 4}, {2, 3, 5},
	})
	b := a.Block(2, 4, 1, 4)
	if b.Rows != 2 || b.Cols != 3 {
		t.Fatalf("block shape %dx%d, want 2x3", b.Rows, b.Cols)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.At(0, 0) != 2 { // was (2,1)
		t.Errorf("At(0,0) = %v, want 2", b.At(0, 0))
	}
	if b.At(1, 0) != 3 { // was (3,1)
		t.Errorf("At(1,0) = %v, want 3", b.At(1, 0))
	}
	if b.At(0, 2) != 5 { // was (2,3)
		t.Errorf("At(0,2) = %v, want 5", b.At(0, 2))
	}
	if b.NNZ() != 3 {
		t.Errorf("nnz = %d, want 3", b.NNZ())
	}
}

func TestBlockEmptyAndFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCOO(rng, 10, 8, 40).ToCSC()
	full := a.Block(0, a.Rows, 0, a.Cols)
	if !a.Equal(full) {
		t.Error("full-range block differs from original")
	}
	empty := a.Block(3, 3, 2, 2)
	if empty.NNZ() != 0 || empty.Rows != 0 || empty.Cols != 0 {
		t.Errorf("empty block = %v", empty)
	}
}

func TestBlockOutOfRangePanics(t *testing.T) {
	a := NewCSC(4, 4, 0)
	for _, r := range [][4]int{{-1, 2, 0, 2}, {0, 5, 0, 2}, {2, 1, 0, 2}, {0, 2, 3, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v accepted", r)
				}
			}()
			a.Block(r[0], r[1], r[2], r[3])
		}()
	}
}

func TestQuickBlockTilingCoversMatrix(t *testing.T) {
	// Property: tiling a matrix into g x g blocks and re-summing all
	// block entries preserves total nnz and every value.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := rng.Intn(30)+1, rng.Intn(30)+1
		a := randomCOO(rng, rows, cols, rng.Intn(120)).ToCSC()
		g := rng.Intn(4) + 1
		total := 0
		for i := 0; i < g; i++ {
			r0, r1 := i*rows/g, (i+1)*rows/g
			for j := 0; j < g; j++ {
				c0, c1 := j*cols/g, (j+1)*cols/g
				blk := a.Block(r0, r1, c0, c1)
				if blk.Validate() != nil {
					return false
				}
				total += blk.NNZ()
				for _, tr := range blk.Triples() {
					if a.At(int(tr.Row)+r0, int(tr.Col)+c0) != tr.Val {
						return false
					}
				}
			}
		}
		return total == a.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Package matrix provides the sparse matrix formats used throughout the
// SpKAdd library: compressed sparse column (CSC, the primary format of
// the paper), compressed sparse row (CSR), coordinate (COO), and a small
// dense matrix used as a trivially-correct reference in tests.
//
// All matrices store 32-bit row/column indices and 64-bit values, so one
// (rowid, value) pair occupies 12 bytes — the entry size the paper uses
// when relating hash-table sizes to cache sizes.
package matrix

// Index is the row/column index type. The paper assumes 32-bit indices.
type Index = int32

// Value is the numeric value type of matrix entries.
type Value = float64

// Triple is a single (row, col, value) coordinate entry.
type Triple struct {
	Row, Col Index
	Val      Value
}

// Entry is a (row, value) pair within one column (or (col, value) within
// one row for CSR). Columns of CSC matrices are logically lists of
// entries, matching the (rowid, val) tuples of the paper's Figure 1.
type Entry struct {
	Row Index
	Val Value
}

// nextPow2 returns the smallest power of two >= n, with a minimum of 1.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Package matrix provides the sparse matrix formats used throughout the
// SpKAdd library: compressed sparse column (CSC, the primary format of
// the paper), compressed sparse row (CSR), coordinate (COO), and a small
// dense matrix used as a trivially-correct reference in tests.
//
// All matrices store 32-bit row/column indices. The value axis is a
// type parameter constrained by Number (float32, float64, int32,
// int64, bool); the float64 instantiation — the paper's element type —
// keeps the original unsuffixed names (CSC, Triple, Entry, ...) as
// aliases, so float64 code reads exactly as it did before the value
// axis became generic. With float64 values one (rowid, value) pair
// occupies 12 bytes — the entry size the paper uses when relating
// hash-table sizes to cache sizes; float32 halves the value traffic to
// 8 bytes per entry.
package matrix

// Index is the row/column index type. The paper assumes 32-bit indices.
type Index = int32

// Value is the default numeric value type of matrix entries — the
// float64 the paper's experiments use. The unsuffixed type names
// (CSC, COO, Triple, ...) alias the Value instantiations of their
// generic forms.
type Value = float64

// Number constrains the value axis: the element types every matrix
// format, kernel and monoid instantiation supports. bool is the
// structural / reachability element type; it supports storage,
// comparison and monoid combines (Any) but not the Plus fast path.
type Number interface {
	float32 | float64 | int32 | int64 | bool
}

// Arith is the arithmetic subset of Number: the element types with
// +, * and ordering — everything Plus, AddScaled coefficients and the
// inlined += fast-path kernels need. bool is deliberately excluded:
// boolean matrices must select an explicit monoid (Any).
type Arith interface {
	float32 | float64 | int32 | int64
}

// TripleOf is a single (row, col, value) coordinate entry.
type TripleOf[T Number] struct {
	Row, Col Index
	Val      T
}

// Triple is the float64 coordinate entry.
type Triple = TripleOf[Value]

// EntryOf is a (row, value) pair within one column (or (col, value)
// within one row for CSR). Columns of CSC matrices are logically lists
// of entries, matching the (rowid, val) tuples of the paper's Figure 1.
type EntryOf[T Number] struct {
	Row Index
	Val T
}

// Entry is the float64 column entry.
type Entry = EntryOf[Value]

// nextPow2 returns the smallest power of two >= n, with a minimum of 1.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// The scalar helpers below give the non-hot generic code (reference
// implementations, duplicate folding in SortColumns, Scale, tolerance
// comparison) one place that knows how "+", "*", zero and float
// conversion behave per element type. bool treats + as OR, * as AND
// and zero as false — the semiring convention of boolean matrix
// algebra. The hot kernels never call these: the Plus fast path runs
// Arith-constrained inlined loops and the generic path runs monoid
// combine functions.

// AddVal returns a+b (bool: a OR b).
func AddVal[T Number](a, b T) T {
	switch x := any(&a).(type) {
	case *float32:
		*x += any(b).(float32)
	case *float64:
		*x += any(b).(float64)
	case *int32:
		*x += any(b).(int32)
	case *int64:
		*x += any(b).(int64)
	case *bool:
		*x = *x || any(b).(bool)
	}
	return a
}

// MulVal returns a*b (bool: a AND b).
func MulVal[T Number](a, b T) T {
	switch x := any(&a).(type) {
	case *float32:
		*x *= any(b).(float32)
	case *float64:
		*x *= any(b).(float64)
	case *int32:
		*x *= any(b).(int32)
	case *int64:
		*x *= any(b).(int64)
	case *bool:
		*x = *x && any(b).(bool)
	}
	return a
}

// IsZero reports whether v is the additive zero of T (bool: false).
func IsZero[T Number](v T) bool {
	var z T
	return v == z
}

// ToFloat64 converts v to float64 (bool: false→0, true→1).
func ToFloat64[T Number](v T) float64 {
	switch x := any(v).(type) {
	case float32:
		return float64(x)
	case float64:
		return x
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	case bool:
		if x {
			return 1
		}
	}
	return 0
}

// FromFloat64 converts v to T (bool: v != 0), truncating toward zero
// for the integer types exactly like a Go conversion.
func FromFloat64[T Number](v float64) T {
	var z T
	switch x := any(&z).(type) {
	case *float32:
		*x = float32(v)
	case *float64:
		*x = v
	case *int32:
		*x = int32(v)
	case *int64:
		*x = int64(v)
	case *bool:
		*x = v != 0
	}
	return z
}

// Convert re-types a float64 matrix's values to T, element by element
// via FromFloat64 (bool: nonzero→true). The structure (dimensions,
// ColPtr, RowIdx) is deep-copied, so the result shares nothing with a.
// This is the bridge from the float64-only generators and MatrixMarket
// reader into the other instantiations — benchmarks and examples
// convert generated inputs rather than duplicating the generators per
// type.
func Convert[T Number](a *CSC) *CSCOf[T] {
	out := &CSCOf[T]{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: append([]int64(nil), a.ColPtr...),
		RowIdx: append([]Index(nil), a.RowIdx...),
		Val:    make([]T, len(a.Val)),
	}
	for p, v := range a.Val {
		out.Val[p] = FromFloat64[T](v)
	}
	return out
}

package matrix

// Block extracts the submatrix with rows in [r0, r1) and columns in
// [c0, c1), re-indexed to start at zero. Columns must be sorted by row
// index (row ranges are located by binary search); the result has
// sorted columns. Block is the distribution primitive of the simulated
// sparse SUMMA: each process owns one block of each operand.
func (a *CSCOf[T]) Block(r0, r1, c0, c1 int) *CSCOf[T] {
	if r0 < 0 || c0 < 0 || r1 > a.Rows || c1 > a.Cols || r0 > r1 || c0 > c1 {
		panic("matrix: Block range out of bounds")
	}
	out := NewCSCOf[T](r1-r0, c1-c0, 0)
	for j := c0; j < c1; j++ {
		rows, vals := a.ColRange(j, Index(r0), Index(r1))
		for p := range rows {
			out.RowIdx = append(out.RowIdx, rows[p]-Index(r0))
			out.Val = append(out.Val, vals[p])
		}
		out.ColPtr[j-c0+1] = int64(len(out.RowIdx))
	}
	return out
}

package matrix

// DenseOf is a small dense matrix over element type T used as a
// trivially-correct reference implementation in tests and as the
// accumulator for reference addition and multiplication. It is not
// intended for large inputs.
type DenseOf[T Number] struct {
	Rows, Cols int
	Data       []T // row-major
}

// Dense is the float64 dense matrix.
type Dense = DenseOf[Value]

// NewDense returns a zeroed float64 rows x cols dense matrix.
func NewDense(rows, cols int) *Dense {
	return NewDenseOf[Value](rows, cols)
}

// NewDenseOf returns a zeroed rows x cols dense matrix over T.
func NewDenseOf[T Number](rows, cols int) *DenseOf[T] {
	return &DenseOf[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// At returns the value at (i, j).
func (d *DenseOf[T]) At(i, j int) T { return d.Data[i*d.Cols+j] }

// Set assigns the value at (i, j).
func (d *DenseOf[T]) Set(i, j int, v T) { d.Data[i*d.Cols+j] = v }

// AddCSC accumulates a sparse matrix into d (bool: OR).
func (d *DenseOf[T]) AddCSC(a *CSCOf[T]) *DenseOf[T] {
	for j := 0; j < a.Cols; j++ {
		rows, vals := a.ColRows(j), a.ColVals(j)
		for p := range rows {
			q := int(rows[p])*d.Cols + j
			d.Data[q] = AddVal(d.Data[q], vals[p])
		}
	}
	return d
}

// ToCSC converts d to CSC, dropping zeros; columns come out sorted.
func (d *DenseOf[T]) ToCSC() *CSCOf[T] {
	out := NewCSCOf[T](d.Rows, d.Cols, 0)
	for j := 0; j < d.Cols; j++ {
		for i := 0; i < d.Rows; i++ {
			if v := d.Data[i*d.Cols+j]; !IsZero(v) {
				out.RowIdx = append(out.RowIdx, Index(i))
				out.Val = append(out.Val, v)
			}
		}
		out.ColPtr[j+1] = int64(len(out.RowIdx))
	}
	return out
}

// ReferenceAdd computes the sum of the given CSC matrices through a
// dense accumulator. All inputs must share dimensions; it panics
// otherwise (it is a test helper, not production API).
func ReferenceAdd[T Number](as []*CSCOf[T]) *CSCOf[T] {
	if len(as) == 0 {
		return NewCSCOf[T](0, 0, 0)
	}
	d := NewDenseOf[T](as[0].Rows, as[0].Cols)
	for _, a := range as {
		if a.Rows != d.Rows || a.Cols != d.Cols {
			panic("matrix: ReferenceAdd dimension mismatch")
		}
		d.AddCSC(a)
	}
	return d.ToCSC()
}

// ReferenceMul computes a*b through dense accumulation (test helper;
// bool multiplies as AND and accumulates as OR — the boolean semiring).
func ReferenceMul[T Number](a, b *CSCOf[T]) *CSCOf[T] {
	if a.Cols != b.Rows {
		panic("matrix: ReferenceMul dimension mismatch")
	}
	d := NewDenseOf[T](a.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		brows, bvals := b.ColRows(j), b.ColVals(j)
		for p := range brows {
			kcol := int(brows[p])
			bv := bvals[p]
			arows, avals := a.ColRows(kcol), a.ColVals(kcol)
			for q := range arows {
				at := int(arows[q])*d.Cols + j
				d.Data[at] = AddVal(d.Data[at], MulVal(avals[q], bv))
			}
		}
	}
	return d.ToCSC()
}

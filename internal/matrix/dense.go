package matrix

// Dense is a small dense matrix used as a trivially-correct reference
// implementation in tests and as the accumulator for reference addition
// and multiplication. It is not intended for large inputs.
type Dense struct {
	Rows, Cols int
	Data       []Value // row-major
}

// NewDense returns a zeroed rows x cols dense matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]Value, rows*cols)}
}

// At returns the value at (i, j).
func (d *Dense) At(i, j int) Value { return d.Data[i*d.Cols+j] }

// Set assigns the value at (i, j).
func (d *Dense) Set(i, j int, v Value) { d.Data[i*d.Cols+j] = v }

// AddCSC accumulates a sparse matrix into d.
func (d *Dense) AddCSC(a *CSC) *Dense {
	for j := 0; j < a.Cols; j++ {
		rows, vals := a.ColRows(j), a.ColVals(j)
		for p := range rows {
			d.Data[int(rows[p])*d.Cols+j] += vals[p]
		}
	}
	return d
}

// ToCSC converts d to CSC, dropping zeros; columns come out sorted.
func (d *Dense) ToCSC() *CSC {
	out := NewCSC(d.Rows, d.Cols, 0)
	for j := 0; j < d.Cols; j++ {
		for i := 0; i < d.Rows; i++ {
			if v := d.Data[i*d.Cols+j]; v != 0 {
				out.RowIdx = append(out.RowIdx, Index(i))
				out.Val = append(out.Val, v)
			}
		}
		out.ColPtr[j+1] = int64(len(out.RowIdx))
	}
	return out
}

// ReferenceAdd computes the sum of the given CSC matrices through a
// dense accumulator. All inputs must share dimensions; it panics
// otherwise (it is a test helper, not production API).
func ReferenceAdd(as []*CSC) *CSC {
	if len(as) == 0 {
		return NewCSC(0, 0, 0)
	}
	d := NewDense(as[0].Rows, as[0].Cols)
	for _, a := range as {
		if a.Rows != d.Rows || a.Cols != d.Cols {
			panic("matrix: ReferenceAdd dimension mismatch")
		}
		d.AddCSC(a)
	}
	return d.ToCSC()
}

// ReferenceMul computes a*b through dense accumulation (test helper).
func ReferenceMul(a, b *CSC) *CSC {
	if a.Cols != b.Rows {
		panic("matrix: ReferenceMul dimension mismatch")
	}
	d := NewDense(a.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		brows, bvals := b.ColRows(j), b.ColVals(j)
		for p := range brows {
			kcol := int(brows[p])
			bv := bvals[p]
			arows, avals := a.ColRows(kcol), a.ColVals(kcol)
			for q := range arows {
				d.Data[int(arows[q])*d.Cols+j] += avals[q] * bv
			}
		}
	}
	return d.ToCSC()
}

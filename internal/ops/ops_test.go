package ops

import (
	"math"
	"testing"

	"spkadd/internal/matrix"
)

func TestBuiltinsValid(t *testing.T) {
	for _, m := range Builtins {
		if !m.Valid() {
			t.Errorf("%s: not Valid", m.Name)
		}
	}
	var nilM *Monoid
	if nilM.Valid() {
		t.Error("nil monoid reported Valid")
	}
	if (&Monoid{Name: "noCombine"}).Valid() {
		t.Error("monoid without Combine reported Valid")
	}
}

// TestIdentityLaw checks Combine(Identity, v) == v for values each
// monoid can encounter (for Any/Count that is the post-MapInput
// domain, where every input is 1).
func TestIdentityLaw(t *testing.T) {
	for _, m := range Builtins {
		vals := []matrix.Value{-3.5, -1, 0.25, 2, 7}
		if m.MapInput != nil {
			mapped := vals[:0]
			for _, v := range vals {
				mapped = append(mapped, m.MapInput(v))
			}
			vals = mapped
		}
		for _, v := range vals {
			if got := m.Combine(m.Identity, v); got != v {
				t.Errorf("%s: Combine(identity, %v) = %v, want %v", m.Name, v, got, v)
			}
			if got := m.Combine(v, m.Identity); got != v {
				t.Errorf("%s: Combine(%v, identity) = %v, want %v", m.Name, v, got, v)
			}
		}
	}
}

// TestAssociativeCommutative spot-checks the algebraic laws the
// engines rely on over a small value grid.
func TestAssociativeCommutative(t *testing.T) {
	grid := []matrix.Value{-2, -0.5, 0, 1, 3}
	for _, m := range Builtins {
		for _, a := range grid {
			for _, b := range grid {
				if m.Combine(a, b) != m.Combine(b, a) {
					t.Fatalf("%s: not commutative at (%v, %v)", m.Name, a, b)
				}
				for _, c := range grid {
					if m.Combine(m.Combine(a, b), c) != m.Combine(a, m.Combine(b, c)) {
						t.Fatalf("%s: not associative at (%v, %v, %v)", m.Name, a, b, c)
					}
				}
			}
		}
	}
}

func TestAbsorbingHint(t *testing.T) {
	grid := []matrix.Value{-4, 0, 1, 9}
	for _, m := range Builtins {
		if !m.HasAbsorbing {
			continue
		}
		for _, v := range grid {
			if m.MapInput != nil {
				v = m.MapInput(v)
			}
			if got := m.Combine(m.Absorbing, v); got != m.Absorbing {
				t.Errorf("%s: Combine(absorbing, %v) = %v, want %v", m.Name, v, got, m.Absorbing)
			}
		}
	}
}

func TestMapInput(t *testing.T) {
	for _, m := range []*Monoid{Any, Count} {
		for _, v := range []matrix.Value{-7, 0.001, 42, math.Inf(1)} {
			if m.MapInput(v) != 1 {
				t.Errorf("%s: MapInput(%v) = %v, want 1", m.Name, v, m.MapInput(v))
			}
		}
	}
	if Plus.MapInput != nil || Min.MapInput != nil || Max.MapInput != nil {
		t.Error("numeric monoids must not map input values")
	}
}

func TestString(t *testing.T) {
	if Plus.String() != "Plus" || Count.String() != "Count" {
		t.Error("String does not report the name")
	}
	var nilM *Monoid
	if nilM.String() != "Plus" {
		t.Errorf("nil monoid String = %q, want Plus (the default)", nilM.String())
	}
}

// Package ops defines the combine operations SpKAdd accumulates
// under. The paper's kernels are really k-way merge-and-combine
// kernels: every algorithm (heap, SPA, hash, sliding hash) visits the
// union of the inputs' nonzero positions and folds colliding entries
// with a binary operation. The paper — and this library's default —
// fix that operation to float64 addition, but nothing in the
// algorithms depends on "+": any commutative, associative operation
// with an identity (a commutative monoid, GraphBLAS's eWiseAdd
// operand) merges the same way and inherits the same complexity and
// memory-traffic bounds.
//
// A MonoidOf[T] generalizes the element-wise semantics only. Sparsity
// semantics are unchanged: the output structure is the union of the
// input structures, combine applies where entries collide, and a
// position absent from every input stays absent — the identity is
// never materialized (see DESIGN.md §8 on identity versus stored-zero
// semantics).
//
// Built-ins cover the workloads the ROADMAP names: Plus (numeric
// accumulation, the paper's operation and the only one that admits
// per-matrix coefficients), Min and Max (min-plus/tropical
// ensembling, max-pooling), Any (structural union of graph
// snapshots), and Count (edge/occurrence frequency). The float64
// canonical instances keep their PR 4 names (Plus, Min, ...); every
// other instantiation reaches its canonical instances through the
// *For functions (PlusFor, AnyFor, ...), which return one shared
// singleton per (monoid, T) pair so the engines' pointer-identity
// fast-path checks generalize unchanged.
package ops

import (
	"math"

	"spkadd/internal/matrix"
)

// MonoidOf is a commutative monoid over values of element type T: the
// pluggable combine operation of an SpKAdd call. Combine must be
// associative and commutative — the engines traverse entries in
// engine- and schedule-dependent orders, and only
// associativity+commutativity make every order produce the same result
// (for floating-point non-associativity the engines compensate by
// combining in a deterministic per-column order, so results are still
// bit-identical across engines; see the parity suite).
type MonoidOf[T matrix.Number] struct {
	// Name identifies the monoid in stats, benches and errors.
	Name string

	// Identity is the combine identity: Combine(Identity, v) == v.
	// It is never stored in outputs — absent positions stay absent —
	// but defines DropIdentity and the dense reference semantics.
	Identity T

	// Combine folds two values. Required; must be associative and
	// commutative.
	Combine func(a, b T) T

	// MapInput, when non-nil, transforms every stored input entry
	// before it participates in combining: Any and Count map values
	// to 1 so presence, not magnitude, is accumulated. Streaming
	// accumulators (Accumulator, Pool) apply it to fresh inputs only
	// — a running sum is already in the monoid's result domain and is
	// folded back in unmapped.
	MapInput func(v T) T

	// Absorbing is an absorbing-element hint: when HasAbsorbing,
	// Combine(Absorbing, v) == Absorbing for every v. Engines and
	// user code may exploit it (an accumulated cell that has reached
	// the absorbing element can skip further combines); none of the
	// built-in kernels currently require it.
	Absorbing    T
	HasAbsorbing bool

	// DropIdentity selects the drop-identity output policy: entries
	// whose combined value equals Identity are removed from the
	// output instead of stored. Only the single-pass engines can
	// honor it (the two-pass driver sizes the output structurally,
	// before values exist), so requesting it with PhasesTwoPass or an
	// algorithm without a single-pass engine is a validation error.
	DropIdentity bool
}

// Monoid is the float64 monoid, the paper's value domain.
type Monoid = MonoidOf[matrix.Value]

// Valid reports whether the monoid is usable: a non-empty name and a
// combine function.
func (m *MonoidOf[T]) Valid() bool {
	return m != nil && m.Name != "" && m.Combine != nil
}

// String returns the monoid's display name.
func (m *MonoidOf[T]) String() string {
	if m == nil {
		return Plus.Name
	}
	return m.Name
}

// one is the MapInput of the structural monoids: every stored entry
// participates as 1, whatever its value.
func one(matrix.Value) matrix.Value { return 1 }

// oneOf is the generic MapInput of the structural monoids (bool: true).
func oneOf[T matrix.Number](T) T { return matrix.FromFloat64[T](1) }

// Built-in monoids. These are canonical instances: the engines
// recognize Plus by identity (pointer equality) and run their
// specialized inlined "+" path; every other monoid — built-in or
// user-defined — goes through the generic combine path.
var (
	// Plus is numeric addition, the paper's operation and the
	// default (a nil Options.Monoid means Plus). It is the only
	// monoid that supports per-matrix coefficients: coeffs·A
	// distributes over + but not over min, max or counting.
	Plus = &Monoid{
		Name:     "Plus",
		Identity: 0,
		Combine:  func(a, b matrix.Value) matrix.Value { return a + b },
	}

	// Min keeps the smallest colliding value (tropical/min-plus
	// ensembling). The identity is +Inf; -Inf absorbs. NaNs
	// propagate, matching Go's built-in min.
	Min = &Monoid{
		Name:         "Min",
		Identity:     math.Inf(1),
		Combine:      func(a, b matrix.Value) matrix.Value { return min(a, b) },
		Absorbing:    math.Inf(-1),
		HasAbsorbing: true,
	}

	// Max keeps the largest colliding value (max-pooling). The
	// identity is -Inf; +Inf absorbs.
	Max = &Monoid{
		Name:         "Max",
		Identity:     math.Inf(-1),
		Combine:      func(a, b matrix.Value) matrix.Value { return max(a, b) },
		Absorbing:    math.Inf(1),
		HasAbsorbing: true,
	}

	// Any is the structural (boolean) union: a position present in
	// any input holds 1 in the output. Input values are ignored —
	// MapInput sends every stored entry to 1 — so unions of weighted
	// snapshots are well-defined.
	Any = &Monoid{
		Name:     "Any",
		Identity: 0,
		Combine: func(a, b matrix.Value) matrix.Value {
			if a != 0 || b != 0 {
				return 1
			}
			return 0
		},
		MapInput:     one,
		Absorbing:    1,
		HasAbsorbing: true,
	}

	// Count is occurrence frequency: a position's output value is
	// the number of inputs storing an entry there. MapInput sends
	// every stored entry to 1 and Combine adds, so counts stay exact
	// integers up to 2^53 inputs (exact without bound on the integer
	// instantiations).
	Count = &Monoid{
		Name:     "Count",
		Identity: 0,
		Combine:  func(a, b matrix.Value) matrix.Value { return a + b },
		MapInput: one,
	}
)

// Builtins lists the built-in float64 monoids, Plus first.
var Builtins = []*Monoid{Plus, Min, Max, Any, Count}

// Canonical non-float64 instantiations. One singleton per (monoid, T)
// pair, reached through the *For functions; sharing one instance per
// pair is what lets the planner's "is this Plus?" pointer check — and
// user code comparing against the canonical instances — work for every
// T exactly as it does for float64.
var (
	plusF32 = &MonoidOf[float32]{Name: "Plus", Combine: func(a, b float32) float32 { return a + b }}
	plusI32 = &MonoidOf[int32]{Name: "Plus", Combine: func(a, b int32) int32 { return a + b }}
	plusI64 = &MonoidOf[int64]{Name: "Plus", Combine: func(a, b int64) int64 { return a + b }}

	minF32 = &MonoidOf[float32]{Name: "Min", Identity: float32(math.Inf(1)),
		Combine: func(a, b float32) float32 { return min(a, b) }, Absorbing: float32(math.Inf(-1)), HasAbsorbing: true}
	minI32 = &MonoidOf[int32]{Name: "Min", Identity: math.MaxInt32,
		Combine: func(a, b int32) int32 { return min(a, b) }, Absorbing: math.MinInt32, HasAbsorbing: true}
	minI64 = &MonoidOf[int64]{Name: "Min", Identity: math.MaxInt64,
		Combine: func(a, b int64) int64 { return min(a, b) }, Absorbing: math.MinInt64, HasAbsorbing: true}

	maxF32 = &MonoidOf[float32]{Name: "Max", Identity: float32(math.Inf(-1)),
		Combine: func(a, b float32) float32 { return max(a, b) }, Absorbing: float32(math.Inf(1)), HasAbsorbing: true}
	maxI32 = &MonoidOf[int32]{Name: "Max", Identity: math.MinInt32,
		Combine: func(a, b int32) int32 { return max(a, b) }, Absorbing: math.MaxInt32, HasAbsorbing: true}
	maxI64 = &MonoidOf[int64]{Name: "Max", Identity: math.MinInt64,
		Combine: func(a, b int64) int64 { return max(a, b) }, Absorbing: math.MaxInt64, HasAbsorbing: true}

	anyF32 = &MonoidOf[float32]{Name: "Any",
		Combine:  func(a, b float32) float32 { return anyCombine(a, b) },
		MapInput: oneOf[float32], Absorbing: 1, HasAbsorbing: true}
	anyI32 = &MonoidOf[int32]{Name: "Any",
		Combine:  func(a, b int32) int32 { return anyCombine(a, b) },
		MapInput: oneOf[int32], Absorbing: 1, HasAbsorbing: true}
	anyI64 = &MonoidOf[int64]{Name: "Any",
		Combine:  func(a, b int64) int64 { return anyCombine(a, b) },
		MapInput: oneOf[int64], Absorbing: 1, HasAbsorbing: true}
	anyB = &MonoidOf[bool]{Name: "Any",
		Combine:  func(a, b bool) bool { return a || b },
		MapInput: func(bool) bool { return true }, Absorbing: true, HasAbsorbing: true}

	countF32 = &MonoidOf[float32]{Name: "Count",
		Combine: func(a, b float32) float32 { return a + b }, MapInput: oneOf[float32]}
	countI32 = &MonoidOf[int32]{Name: "Count",
		Combine: func(a, b int32) int32 { return a + b }, MapInput: oneOf[int32]}
	countI64 = &MonoidOf[int64]{Name: "Count",
		Combine: func(a, b int64) int64 { return a + b }, MapInput: oneOf[int64]}
)

func anyCombine[T matrix.Arith](a, b T) T {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}

// PlusFor returns the canonical Plus monoid over T, or nil for bool:
// boolean matrices have no "+" and must select an explicit monoid
// (AnyFor[bool]). PlusFor[float64]() is Plus itself — same pointer —
// so identity checks written against the float64 built-ins hold for
// values obtained either way.
func PlusFor[T matrix.Number]() *MonoidOf[T] {
	var z T
	switch any(z).(type) {
	case float64:
		return any(Plus).(*MonoidOf[T])
	case float32:
		return any(plusF32).(*MonoidOf[T])
	case int32:
		return any(plusI32).(*MonoidOf[T])
	case int64:
		return any(plusI64).(*MonoidOf[T])
	}
	return nil
}

// MinFor returns the canonical Min monoid over T (nil for bool).
func MinFor[T matrix.Number]() *MonoidOf[T] {
	var z T
	switch any(z).(type) {
	case float64:
		return any(Min).(*MonoidOf[T])
	case float32:
		return any(minF32).(*MonoidOf[T])
	case int32:
		return any(minI32).(*MonoidOf[T])
	case int64:
		return any(minI64).(*MonoidOf[T])
	}
	return nil
}

// MaxFor returns the canonical Max monoid over T (nil for bool).
func MaxFor[T matrix.Number]() *MonoidOf[T] {
	var z T
	switch any(z).(type) {
	case float64:
		return any(Max).(*MonoidOf[T])
	case float32:
		return any(maxF32).(*MonoidOf[T])
	case int32:
		return any(maxI32).(*MonoidOf[T])
	case int64:
		return any(maxI64).(*MonoidOf[T])
	}
	return nil
}

// AnyFor returns the canonical Any monoid over T — the only built-in
// defined for every T including bool, where it is the boolean OR of
// reachability overlays.
func AnyFor[T matrix.Number]() *MonoidOf[T] {
	var z T
	switch any(z).(type) {
	case float64:
		return any(Any).(*MonoidOf[T])
	case float32:
		return any(anyF32).(*MonoidOf[T])
	case int32:
		return any(anyI32).(*MonoidOf[T])
	case int64:
		return any(anyI64).(*MonoidOf[T])
	case bool:
		return any(anyB).(*MonoidOf[T])
	}
	return nil
}

// CountFor returns the canonical Count monoid over T (nil for bool,
// whose only arithmetic is OR — counts need a numeric T).
func CountFor[T matrix.Number]() *MonoidOf[T] {
	var z T
	switch any(z).(type) {
	case float64:
		return any(Count).(*MonoidOf[T])
	case float32:
		return any(countF32).(*MonoidOf[T])
	case int32:
		return any(countI32).(*MonoidOf[T])
	case int64:
		return any(countI64).(*MonoidOf[T])
	}
	return nil
}

// Describe maps a monoid over any T to its float64 counterpart for
// reporting surfaces (OpStats.MonoidUsed predates the generic value
// axis and stays *Monoid). The float64 instantiation passes through
// unchanged — pointer identity preserved — and canonical instances of
// other instantiations map to the float64 built-in of the same name.
// A user-defined monoid over a non-float64 T has no float64
// counterpart; it reports as a name-only descriptor.
func Describe[T matrix.Number](m *MonoidOf[T]) *Monoid {
	if m == nil {
		return nil
	}
	if f, ok := any(m).(*Monoid); ok {
		return f
	}
	for _, b := range Builtins {
		if b.Name == m.Name {
			return b
		}
	}
	return &Monoid{Name: m.Name, Combine: func(a, b matrix.Value) matrix.Value { return a }}
}

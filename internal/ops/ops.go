// Package ops defines the combine operations SpKAdd accumulates
// under. The paper's kernels are really k-way merge-and-combine
// kernels: every algorithm (heap, SPA, hash, sliding hash) visits the
// union of the inputs' nonzero positions and folds colliding entries
// with a binary operation. The paper — and this library's default —
// fix that operation to float64 addition, but nothing in the
// algorithms depends on "+": any commutative, associative operation
// with an identity (a commutative monoid, GraphBLAS's eWiseAdd
// operand) merges the same way and inherits the same complexity and
// memory-traffic bounds.
//
// A Monoid generalizes the element-wise semantics only. Sparsity
// semantics are unchanged: the output structure is the union of the
// input structures, combine applies where entries collide, and a
// position absent from every input stays absent — the identity is
// never materialized (see DESIGN.md §8 on identity versus stored-zero
// semantics).
//
// Built-ins cover the workloads the ROADMAP names: Plus (numeric
// accumulation, the paper's operation and the only one that admits
// per-matrix coefficients), Min and Max (min-plus/tropical
// ensembling, max-pooling), Any (structural union of graph
// snapshots), and Count (edge/occurrence frequency).
package ops

import (
	"math"

	"spkadd/internal/matrix"
)

// Monoid is a commutative monoid over matrix values: the pluggable
// combine operation of an SpKAdd call. Combine must be associative
// and commutative — the engines traverse entries in engine- and
// schedule-dependent orders, and only associativity+commutativity
// make every order produce the same result (for floating-point
// non-associativity the engines compensate by combining in a
// deterministic per-column order, so results are still bit-identical
// across engines; see the parity suite).
type Monoid struct {
	// Name identifies the monoid in stats, benches and errors.
	Name string

	// Identity is the combine identity: Combine(Identity, v) == v.
	// It is never stored in outputs — absent positions stay absent —
	// but defines DropIdentity and the dense reference semantics.
	Identity matrix.Value

	// Combine folds two values. Required; must be associative and
	// commutative.
	Combine func(a, b matrix.Value) matrix.Value

	// MapInput, when non-nil, transforms every stored input entry
	// before it participates in combining: Any and Count map values
	// to 1 so presence, not magnitude, is accumulated. Streaming
	// accumulators (Accumulator, Pool) apply it to fresh inputs only
	// — a running sum is already in the monoid's result domain and is
	// folded back in unmapped.
	MapInput func(v matrix.Value) matrix.Value

	// Absorbing is an absorbing-element hint: when HasAbsorbing,
	// Combine(Absorbing, v) == Absorbing for every v. Engines and
	// user code may exploit it (an accumulated cell that has reached
	// the absorbing element can skip further combines); none of the
	// built-in kernels currently require it.
	Absorbing    matrix.Value
	HasAbsorbing bool

	// DropIdentity selects the drop-identity output policy: entries
	// whose combined value equals Identity are removed from the
	// output instead of stored. Only the single-pass engines can
	// honor it (the two-pass driver sizes the output structurally,
	// before values exist), so requesting it with PhasesTwoPass or an
	// algorithm without a single-pass engine is a validation error.
	DropIdentity bool
}

// Valid reports whether the monoid is usable: a non-empty name and a
// combine function.
func (m *Monoid) Valid() bool {
	return m != nil && m.Name != "" && m.Combine != nil
}

// String returns the monoid's display name.
func (m *Monoid) String() string {
	if m == nil {
		return Plus.Name
	}
	return m.Name
}

// one is the MapInput of the structural monoids: every stored entry
// participates as 1, whatever its value.
func one(matrix.Value) matrix.Value { return 1 }

// Built-in monoids. These are canonical instances: the engines
// recognize Plus by identity (pointer equality) and run their
// specialized inlined float64-"+" path; every other monoid — built-in
// or user-defined — goes through the generic combine path.
var (
	// Plus is numeric addition, the paper's operation and the
	// default (a nil Options.Monoid means Plus). It is the only
	// monoid that supports per-matrix coefficients: coeffs·A
	// distributes over + but not over min, max or counting.
	Plus = &Monoid{
		Name:     "Plus",
		Identity: 0,
		Combine:  func(a, b matrix.Value) matrix.Value { return a + b },
	}

	// Min keeps the smallest colliding value (tropical/min-plus
	// ensembling). The identity is +Inf; -Inf absorbs. NaNs
	// propagate, matching Go's built-in min.
	Min = &Monoid{
		Name:         "Min",
		Identity:     math.Inf(1),
		Combine:      func(a, b matrix.Value) matrix.Value { return min(a, b) },
		Absorbing:    math.Inf(-1),
		HasAbsorbing: true,
	}

	// Max keeps the largest colliding value (max-pooling). The
	// identity is -Inf; +Inf absorbs.
	Max = &Monoid{
		Name:         "Max",
		Identity:     math.Inf(-1),
		Combine:      func(a, b matrix.Value) matrix.Value { return max(a, b) },
		Absorbing:    math.Inf(1),
		HasAbsorbing: true,
	}

	// Any is the structural (boolean) union: a position present in
	// any input holds 1 in the output. Input values are ignored —
	// MapInput sends every stored entry to 1 — so unions of weighted
	// snapshots are well-defined.
	Any = &Monoid{
		Name:     "Any",
		Identity: 0,
		Combine: func(a, b matrix.Value) matrix.Value {
			if a != 0 || b != 0 {
				return 1
			}
			return 0
		},
		MapInput:     one,
		Absorbing:    1,
		HasAbsorbing: true,
	}

	// Count is occurrence frequency: a position's output value is
	// the number of inputs storing an entry there. MapInput sends
	// every stored entry to 1 and Combine adds, so counts stay exact
	// integers up to 2^53 inputs.
	Count = &Monoid{
		Name:     "Count",
		Identity: 0,
		Combine:  func(a, b matrix.Value) matrix.Value { return a + b },
		MapInput: one,
	}
)

// Builtins lists the built-in monoids, Plus first.
var Builtins = []*Monoid{Plus, Min, Max, Any, Count}

package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"spkadd/internal/faults"
)

// This file implements the resident executor: a pool of persistent
// worker goroutines, created once and parked on per-worker channels
// between parallel regions, with reusable partitioning scratch. The
// free functions in sched.go spawn fresh goroutines and allocate
// prefix/boundary arrays on every call — fine for one-shot figure
// reproduction, hostile to the steady state of repeated small and
// medium additions, where goroutine creation and partitioning
// allocations dominate the actual merge work.
//
// The executor offers the same three strategies plus WeightedStealing:
// contiguous weighted ranges exactly as in the paper's load balancing,
// but an idle worker steals the suffix half of the most-loaded peer's
// remaining range. Weighted partitioning balances *predicted* work; on
// RMAT-skewed columns the prediction error concentrates in a few
// workers and the region waits for the slowest of them. Dynamic
// closes that gap with fixed chunks but gives up locality and pays a
// shared-counter CAS per chunk from the start; WeightedStealing starts
// from the paper's contiguous partitions (no coordination at all while
// the prediction holds) and pays for coordination only when a worker
// actually runs dry.

// LoadStats describes how one parallel region's work spread over its
// workers: Max and Mean are the largest and average per-worker
// executed weight (the region's makespan is governed by Max/Mean), and
// Steals counts range suffixes WeightedStealing moved from a busy
// worker to an idle one. Weight is the caller's weights for the
// weighted strategies and plain index counts otherwise.
type LoadStats struct {
	Workers int
	Max     int64
	Mean    int64
	Steals  int64
}

// solo is the LoadStats of a region that ran inline on the caller.
func solo(weight int64) LoadStats {
	return LoadStats{Workers: 1, Max: weight, Mean: weight}
}

const (
	// modeRange runs each worker on its precomputed bounds range
	// (Static and Weighted).
	modeRange = iota
	// modeDynamic claims fixed chunks from a shared atomic counter.
	modeDynamic
	// modeSteal chunk-claims from per-worker ranges with suffix
	// stealing (WeightedStealing).
	modeSteal
)

// ownerChunkDenom sets how much of its remaining range a steal-mode
// worker claims per chunk (remaining/8, at least 1): geometric decay
// keeps the claim overhead at O(log) CAS operations per worker while
// leaving most of the range visible to thieves until late.
const ownerChunkDenom = 8

// stealMaxIndex bounds the index space of the stealing mode: a
// worker's remaining range is packed as two halves of one atomic
// int64, so indices must fit in 32 bits. Larger ranges (never seen in
// practice — matrix row indices are themselves 32-bit) fall back to
// plain Weighted.
const stealMaxIndex = 1<<31 - 1

// cacheLinePad separates per-worker hot words so a worker claiming
// chunks does not false-share a cache line with its neighbours.
type cacheLinePad [56]byte

type stealRange struct {
	v atomic.Int64 // packed (lo, hi) of the unclaimed remainder
	_ cacheLinePad
}

type workerLoad struct {
	v int64 // executed weight; written only by the owning worker
	_ cacheLinePad
}

func packRange(lo, hi int) int64     { return int64(lo)<<32 | int64(hi) }
func unpackRange(v int64) (int, int) { return int(v >> 32), int(v & 0xffffffff) }

// Executor is a resident worker pool for parallel regions. Workers are
// spawned lazily on first use and then parked on per-worker channels
// between regions, so a region costs channel wakes instead of
// goroutine creation, and the partitioning scratch (weight prefix
// sums, range boundaries, steal ranges) is owned by the executor and
// reused — a warmed executor runs every strategy without allocating.
//
// Run methods are safe for concurrent use: regions serialize on an
// internal mutex, so an executor shared by several Adders (or handed
// to a Pool's reductions) acts as one global concurrency budget —
// concurrent callers take turns on the same workers rather than
// oversubscribing the machine. A region's body must not start another
// region on the same executor (it would self-deadlock on the region
// lock); the engines never nest regions.
//
// The caller of a Run method participates as worker 0, so an executor
// with budget t keeps t-1 goroutines parked. Close releases them;
// an executor that becomes unreachable without Close is cleaned up by
// the runtime, so dropping one cannot leak its workers.
type Executor struct {
	s *execState
}

// execState is the executor's worker-visible state, split from the
// handle so parked workers do not keep an abandoned Executor
// reachable: workers reference only the state, and a runtime cleanup
// on the handle shuts the workers down once the handle is collected.
type execState struct {
	budget int // max workers per region; 0 = grow to each request

	mu     sync.Mutex // serializes regions; held for a region's full duration
	wg     sync.WaitGroup
	wake   []chan struct{} // resident workers; entry i is region worker i+1
	closed bool

	// Region descriptor, written under mu before workers wake.
	mode     int
	parts    int
	n        int
	chunk    int64
	body     func(worker, lo, hi int)
	weighted bool // prefix holds real weights (vs unit index counts)
	next     atomic.Int64
	steals   atomic.Int64
	prefix   []int64
	bounds   []int
	ranges   []stealRange
	loads    []workerLoad

	// panicErr holds the first panic a region's worker recovered,
	// cleared at region start and reported as the region's error. A
	// panicking worker survives (its loop recovers), so the executor
	// needs no restart — only the abandoned range is lost, and the
	// caller learns about it through the returned *PanicError.
	panicErr atomic.Pointer[PanicError]
}

// NewExecutor returns a resident executor with a fixed worker budget:
// no region runs more than t workers, whatever thread count its caller
// asks for (t < 1 means GOMAXPROCS). This is the sharing form — one
// budgeted pool handed to many Adders via Options.Executor caps their
// combined parallelism.
func NewExecutor(t int) *Executor { return newExecutor(Threads(t)) }

// NewElasticExecutor returns a resident executor whose worker count
// grows to each region's requested thread count. This is the
// workspace-default form: it preserves the exact parallelism the
// caller's Threads option always produced, only with resident workers
// instead of per-phase spawns.
func NewElasticExecutor() *Executor { return newExecutor(0) }

func newExecutor(budget int) *Executor {
	s := &execState{budget: budget}
	ex := &Executor{s: s}
	// Workers hold only s; when the handle is dropped without Close,
	// this cleanup closes the wake channels so the parked goroutines
	// exit instead of leaking.
	runtime.AddCleanup(ex, (*execState).shutdown, s)
	return ex
}

// Budget returns the executor's worker budget (0 for elastic).
func (ex *Executor) Budget() int { return ex.s.budget }

// Close parks the executor permanently: resident workers exit, and
// later Run calls execute their region inline on the calling
// goroutine alone. Close is idempotent and safe to call concurrently
// with Run (it waits for a region in flight).
func (ex *Executor) Close() { ex.s.shutdown() }

func (s *execState) shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.wake {
		close(ch)
	}
	s.wake = nil
}

// Static divides [0, n) into near-equal contiguous ranges, like the
// free Static, on resident workers. A panic in the body — on any
// worker, or on the caller's inline share — is recovered and returned
// as a *PanicError; the region's remaining work on the panicking
// worker is abandoned, but the executor and its workers stay usable.
// The same contract holds for Dynamic, Weighted and WeightedStealing.
func (ex *Executor) Static(n, t int, body func(worker, lo, hi int)) (LoadStats, error) {
	t = Threads(t)
	if t > n {
		t = n
	}
	if n == 0 {
		return LoadStats{}, nil
	}
	if t <= 1 {
		return solo(int64(n)), RunInline(n, body)
	}
	s := ex.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if t = s.clampLocked(t); t <= 1 {
		return solo(int64(n)), RunInline(n, body)
	}
	s.mode, s.n, s.body, s.weighted = modeRange, n, body, false
	s.bounds = grow(s.bounds, t+1)
	for w := 0; w <= t; w++ {
		s.bounds[w] = w * n / t
	}
	return s.runLocked(t)
}

// RunInline executes body(0, 0, n) on the calling goroutine —
// the single-worker fast path of every region form — converting a
// panic into the same *PanicError a resident worker's panic produces,
// so callers see one failure contract whatever the worker count.
func RunInline(n int, body func(worker, lo, hi int)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPanicError(r, 0)
		}
	}()
	body(0, 0, n)
	return nil
}

// Dynamic runs body over [0, n) with workers claiming fixed-size
// chunks from a shared atomic counter, like the free Dynamic, on
// resident workers.
func (ex *Executor) Dynamic(n, t, chunk int, body func(worker, lo, hi int)) (LoadStats, error) {
	t = Threads(t)
	if t > n {
		t = n
	}
	if n == 0 {
		return LoadStats{}, nil
	}
	if t <= 1 {
		return solo(int64(n)), RunInline(n, body)
	}
	s := ex.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if t = s.clampLocked(t); t <= 1 {
		return solo(int64(n)), RunInline(n, body)
	}
	if chunk <= 0 {
		// Heuristic from the worker count actually running (after the
		// budget clamp): a budget-capped region should not pay the CAS
		// traffic of chunks sized for the caller's larger request.
		chunk = n / (8 * t)
		if chunk < 1 {
			chunk = 1
		}
	}
	s.mode, s.n, s.body, s.weighted = modeDynamic, n, body, false
	s.chunk = int64(chunk)
	s.next.Store(0)
	return s.runLocked(t)
}

// Weighted divides [0, len(weights)) into contiguous ranges of
// near-equal total weight, like the free Weighted, on resident
// workers and with the partition scratch reused across regions.
func (ex *Executor) Weighted(weights []int64, t int, body func(worker, lo, hi int)) (LoadStats, error) {
	return ex.s.weightedRun(weights, t, body, false)
}

// WeightedStealing starts from the same contiguous weighted ranges as
// Weighted, but workers claim their range in geometrically shrinking
// chunks and, once idle, steal the suffix half of the remaining range
// of the most-loaded (by remaining weight) peer. On skewed inputs this
// closes the tail-latency gap a mispredicted weighted partition
// leaves, without Dynamic's per-chunk shared-counter traffic on the
// balanced majority of regions.
func (ex *Executor) WeightedStealing(weights []int64, t int, body func(worker, lo, hi int)) (LoadStats, error) {
	return ex.s.weightedRun(weights, t, body, true)
}

func (s *execState) weightedRun(weights []int64, t int, body func(worker, lo, hi int), steal bool) (LoadStats, error) {
	n := len(weights)
	t = Threads(t)
	if t > n {
		t = n
	}
	if n == 0 {
		return LoadStats{}, nil
	}
	if t <= 1 {
		return solo(sumWeights(weights)), RunInline(n, body)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t = s.clampLocked(t); t <= 1 {
		return solo(sumWeights(weights)), RunInline(n, body)
	}
	s.n, s.body, s.weighted = n, body, true
	s.prefix, s.bounds = PartitionByWeightInto(weights, t, s.prefix, s.bounds)
	if steal && n <= stealMaxIndex {
		s.mode = modeSteal
		s.ranges = grow(s.ranges, t)
		for w := 0; w < t; w++ {
			s.ranges[w].v.Store(packRange(s.bounds[w], s.bounds[w+1]))
		}
	} else {
		s.mode = modeRange
	}
	return s.runLocked(t)
}

func sumWeights(weights []int64) int64 {
	var total int64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	return total
}

// clampLocked applies the worker budget and the closed state to a
// region's requested worker count. Callers hold mu.
func (s *execState) clampLocked(t int) int {
	if s.closed {
		return 1
	}
	if s.budget > 0 && t > s.budget {
		t = s.budget
	}
	return t
}

// runLocked executes the prepared region descriptor on parts workers:
// the caller as worker 0, resident goroutines (spawned on first need,
// woken by channel send) as 1..parts-1. Callers hold mu, so one
// region at a time owns the workers and the scratch. Returns the
// region's load statistics from the per-worker executed-weight
// counters, and the first panic any worker recovered (as a
// *PanicError) — the barrier always completes first, so the scratch
// is never reused while a surviving worker still runs.
//
//spkadd:allow(ctxblock) region barrier: workers always finish their share; a ctx-abandoned barrier would strand the shared scratch
func (s *execState) runLocked(parts int) (LoadStats, error) {
	for len(s.wake) < parts-1 {
		ch := make(chan struct{}, 1)
		s.wake = append(s.wake, ch)
		go s.workerLoop(ch, len(s.wake))
	}
	s.loads = grow(s.loads, parts)
	for i := 0; i < parts; i++ {
		s.loads[i].v = 0
	}
	s.parts = parts
	s.steals.Store(0)
	s.panicErr.Store(nil)
	s.wg.Add(parts - 1)
	for i := 0; i < parts-1; i++ {
		s.wake[i] <- struct{}{}
	}
	s.runWorkerRecover(0)
	s.wg.Wait()
	var total, max int64
	for i := 0; i < parts; i++ {
		v := s.loads[i].v
		total += v
		if v > max {
			max = v
		}
	}
	ls := LoadStats{Workers: parts, Max: max, Mean: total / int64(parts), Steals: s.steals.Load()}
	if pe := s.panicErr.Load(); pe != nil {
		return ls, pe
	}
	return ls, nil
}

// workerLoop parks resident worker id on its wake channel; each token
// is one region to run. The channel closing (Close, or the handle's
// runtime cleanup) ends the loop. Panics in the region body are
// recovered inside runWorkerRecover, so a panicking body can never
// kill a resident worker (which would strand the region barrier and,
// goroutine panics being fatal, the whole process).
//
//spkadd:allow(ctxblock) resident worker: parked for the executor's lifetime, released by channel close
func (s *execState) workerLoop(wake chan struct{}, id int) {
	for range wake {
		s.runWorkerRecover(id)
		s.wg.Done()
	}
}

// runWorkerRecover executes worker w's share of the current region,
// converting a body panic into the region's sticky panicErr. Only the
// first panic is kept; later ones (other workers tripping over the
// same bug) add nothing.
func (s *execState) runWorkerRecover(w int) {
	defer func() {
		if r := recover(); r != nil {
			s.panicErr.CompareAndSwap(nil, NewPanicError(r, w))
		}
	}()
	s.runWorker(w)
}

// runWorker executes worker w's share of the current region.
func (s *execState) runWorker(w int) {
	faults.SleepOn(faults.WorkerStall, int64(w))
	switch s.mode {
	case modeRange:
		lo, hi := s.bounds[w], s.bounds[w+1]
		if lo < hi {
			s.body(w, lo, hi)
			s.loads[w].v += s.rangeWeight(lo, hi)
		}
	case modeDynamic:
		chunk := s.chunk
		n := int64(s.n)
		for {
			lo := s.next.Add(chunk) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			s.body(w, int(lo), int(hi))
			s.loads[w].v += hi - lo
		}
	case modeSteal:
		s.stealLoop(w)
	}
}

// rangeWeight is the executed weight of [lo, hi): real weight under a
// weighted strategy, index count otherwise.
func (s *execState) rangeWeight(lo, hi int) int64 {
	if !s.weighted {
		return int64(hi - lo)
	}
	return s.prefix[hi] - s.prefix[lo]
}

// stealLoop is one worker of the WeightedStealing mode: drain the own
// range in geometrically shrinking chunks, then steal the suffix half
// of the most-loaded peer's remainder, installing it as the own range
// (so it can in turn be stolen from), until every range is empty.
// Ranges only ever shrink or split through CAS transitions, so every
// index is claimed by exactly one worker.
func (s *execState) stealLoop(w int) {
	for {
		for {
			lo, hi, ok := s.claimChunk(w)
			if !ok {
				break
			}
			s.body(w, lo, hi)
			s.loads[w].v += s.rangeWeight(lo, hi)
		}
		victim, best := -1, int64(0)
		for p := 0; p < s.parts; p++ {
			if p == w {
				continue
			}
			lo, hi := unpackRange(s.ranges[p].v.Load())
			if lo >= hi {
				continue
			}
			if rem := s.rangeWeight(lo, hi); rem > best {
				victim, best = p, rem
			}
		}
		if victim < 0 {
			// Every range is empty (chunks already claimed may still be
			// executing on their claimants; the region barrier waits).
			return
		}
		if s.stealFrom(w, victim) {
			s.steals.Add(1)
		}
		// On a failed CAS (the victim drained or another thief won),
		// rescan: total unclaimed work shrank either way.
	}
}

// claimChunk takes the next chunk — remaining/ownerChunkDenom, at
// least one index — off the front of worker w's own range.
func (s *execState) claimChunk(w int) (lo, hi int, ok bool) {
	for {
		cur := s.ranges[w].v.Load()
		clo, chi := unpackRange(cur)
		if clo >= chi {
			return 0, 0, false
		}
		c := (chi - clo) / ownerChunkDenom
		if c < 1 {
			c = 1
		}
		if s.ranges[w].v.CompareAndSwap(cur, packRange(clo+c, chi)) {
			return clo, clo + c, true
		}
	}
}

// stealFrom moves the suffix half [mid, hi) of the victim's remaining
// range into worker w's own (empty) range slot. The victim keeps the
// front half — it is closer to what the victim's cache just touched —
// and a remainder of one index moves whole, so a worker stuck on one
// expensive column cannot strand the indices queued behind it.
func (s *execState) stealFrom(w, victim int) bool {
	cur := s.ranges[victim].v.Load()
	lo, hi := unpackRange(cur)
	if lo >= hi {
		return false
	}
	mid := lo + (hi-lo)/2
	if !s.ranges[victim].v.CompareAndSwap(cur, packRange(lo, mid)) {
		return false
	}
	s.ranges[w].v.Store(packRange(mid, hi))
	return true
}

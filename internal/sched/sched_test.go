package sched

import (
	"sync"
	"testing"
	"testing/quick"
)

// cover runs a strategy and asserts every index in [0, n) is visited
// exactly once.
func cover(t *testing.T, n int, run func(body func(worker, lo, hi int))) {
	t.Helper()
	var mu sync.Mutex
	seen := make([]int, n)
	run(func(_, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestStaticCovers(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, th := range []int{1, 2, 3, 8, 200} {
			cover(t, n, func(b func(int, int, int)) { Static(n, th, b) })
		}
	}
}

func TestDynamicCovers(t *testing.T) {
	for _, n := range []int{0, 1, 13, 257} {
		for _, th := range []int{1, 2, 5, 16} {
			for _, chunk := range []int{0, 1, 7, 1000} {
				cover(t, n, func(b func(int, int, int)) { Dynamic(n, th, chunk, b) })
			}
		}
	}
}

func TestWeightedCovers(t *testing.T) {
	for _, n := range []int{0, 1, 9, 64} {
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(i * i)
		}
		for _, th := range []int{1, 2, 4, 9} {
			cover(t, n, func(b func(int, int, int)) { Weighted(weights, th, b) })
		}
	}
}

func TestSpanCoversExactly(t *testing.T) {
	f := func(nRaw, tRaw uint8) bool {
		n, tt := int(nRaw), int(tRaw)%16+1
		prevHi := 0
		for w := 0; w < tt; w++ {
			lo, hi := Span(n, tt, w)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
		}
		return prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionByWeightBalance(t *testing.T) {
	// One giant column followed by many small ones: the giant column
	// should get (nearly) its own partition.
	weights := make([]int64, 101)
	weights[0] = 1_000_000
	for i := 1; i <= 100; i++ {
		weights[i] = 10
	}
	b := PartitionByWeight(weights, 4)
	if b[0] != 0 || b[4] != 101 {
		t.Fatalf("bounds %v must span the range", b)
	}
	if b[1] == 0 {
		t.Errorf("first boundary %v leaves part 0 empty despite giant weight", b)
	}
	// The first part must contain the giant column and little else.
	if b[1] > 2 {
		t.Errorf("giant column not isolated: bounds %v", b)
	}
}

func TestPartitionByWeightMonotone(t *testing.T) {
	f := func(seed int64) bool {
		weights := make([]int64, 50)
		s := uint64(seed)
		for i := range weights {
			s = s*6364136223846793005 + 1442695040888963407
			weights[i] = int64(s % 100)
		}
		b := PartitionByWeight(weights, 7)
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				return false
			}
		}
		return b[0] == 0 && b[len(b)-1] == len(weights)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDynamicClampsWorkersToN(t *testing.T) {
	// More workers than indices: only worker ids below n may run (the
	// old code spawned all t goroutines and let any of them win the
	// single chunk).
	for _, n := range []int{1, 2, 3} {
		var mu sync.Mutex
		maxW := -1
		Dynamic(n, 8, 0, func(w, lo, hi int) {
			mu.Lock()
			if w > maxW {
				maxW = w
			}
			mu.Unlock()
		})
		if maxW >= n {
			t.Errorf("n=%d: worker id %d ran, want ids < n", n, maxW)
		}
	}
}

func TestWeightedZeroWeightsFallsBackToSpan(t *testing.T) {
	// All-zero weights used to degenerate to one worker owning [0, n);
	// they must fall back to Span partitioning instead.
	const n, th = 12, 4
	weights := make([]int64, n)
	var mu sync.Mutex
	got := map[int][2]int{}
	Weighted(weights, th, func(w, lo, hi int) {
		mu.Lock()
		got[w] = [2]int{lo, hi}
		mu.Unlock()
	})
	if len(got) != th {
		t.Fatalf("%d workers ran, want %d (Span partitioning)", len(got), th)
	}
	for w, r := range got {
		lo, hi := Span(n, th, w)
		if r != [2]int{lo, hi} {
			t.Errorf("worker %d got [%d, %d), want Span [%d, %d)", w, r[0], r[1], lo, hi)
		}
	}
}

func TestPartitionByWeightIntoReusesScratch(t *testing.T) {
	weights := []int64{5, 1, 1, 1, 8, 1, 1, 1}
	prefix, bounds := PartitionByWeightInto(weights, 4, nil, nil)
	want := PartitionByWeight(weights, 4)
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("Into bounds %v differ from wrapper %v", bounds[:len(want)], want)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		prefix, bounds = PartitionByWeightInto(weights, 4, prefix, bounds)
	})
	if allocs != 0 {
		t.Errorf("PartitionByWeightInto with adequate scratch allocates %.1f times, want 0", allocs)
	}
}

func TestWorkerIDsDistinct(t *testing.T) {
	// Each concurrent worker must receive a distinct id so callers can
	// index per-worker state safely.
	var mu sync.Mutex
	inUse := map[int]bool{}
	ok := true
	Static(64, 8, func(w, lo, hi int) {
		mu.Lock()
		if inUse[w] {
			ok = false
		}
		inUse[w] = true
		mu.Unlock()
		defer func() {
			mu.Lock()
			inUse[w] = false
			mu.Unlock()
		}()
		for i := lo; i < hi; i++ {
			_ = i
		}
	})
	if !ok {
		t.Error("worker id reused concurrently")
	}
}

func TestThreads(t *testing.T) {
	if Threads(0) < 1 || Threads(-3) < 1 {
		t.Error("Threads must be at least 1")
	}
	if Threads(5) != 5 {
		t.Error("explicit thread count not honored")
	}
}

package sched

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered inside a parallel region, converted
// to an error at the region boundary. A panic in a worker goroutine
// would otherwise kill the whole process — unacceptable for a resident
// executor shared by many callers — so workers recover, the region
// completes (the panicking worker's remaining range is abandoned), and
// the region call reports the first recovered panic as an error. The
// executor itself stays healthy: its workers survive the recover and
// serve later regions.
//
// Value is the original panic value and Stack the panicking
// goroutine's stack at recovery time; Worker identifies which region
// worker panicked (0 is the calling goroutine).
type PanicError struct {
	Value  any
	Stack  []byte
	Worker int
}

// NewPanicError wraps a recovered panic value. A value that is already
// a *PanicError is returned unchanged, so a panic crossing several
// recovery layers keeps its original stack.
func NewPanicError(value any, worker int) *PanicError {
	if pe, ok := value.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: value, Stack: debug.Stack(), Worker: worker}
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("spkadd: recovered panic in parallel region (worker %d): %v", e.Worker, e.Value)
}

// Unwrap exposes a panic value that was itself an error (for example a
// runtime error) to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Package sched provides the column-scheduling strategies of the
// paper's parallel SpKAdd (§III-A): static contiguous blocks, dynamic
// chunk claiming (OpenMP dynamic-style, used for skewed matrices), and
// weighted partitioning by per-column nonzero counts (the paper
// balances the symbolic phase by input nnz per column and the addition
// phase by output nnz per column).
//
// All strategies invoke the body with a worker id so callers can keep
// per-worker (thread-private) data structures, and never run the body
// for the same index twice.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Threads normalizes a requested thread count: values < 1 mean
// GOMAXPROCS.
func Threads(t int) int {
	if t < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return t
}

// Static divides [0, n) into t near-equal contiguous ranges and runs
// body(worker, lo, hi) on each concurrently.
//
//spkadd:allow(ctxblock) fork-join barrier: the wait is bounded by body completion; cancellation belongs in the body
func Static(n, t int, body func(worker, lo, hi int)) {
	t = Threads(t)
	if t > n {
		t = n
	}
	if n == 0 {
		return
	}
	if t <= 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		lo, hi := Span(n, t, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Span returns the w-th of t near-equal subranges of [0, n), the
// same arithmetic as the paper's sliding-hash row partitioning
// (r1 = i*m/parts, r2 = (i+1)*m/parts).
func Span(n, t, w int) (lo, hi int) {
	return w * n / t, (w + 1) * n / t
}

// Dynamic runs body over [0, n) with t workers claiming fixed-size
// chunks from an atomic counter. chunk <= 0 selects a heuristic
// (n/(8t), at least 1). This is the load-balancing mode for skewed
// (RMAT-like) column distributions.
//
//spkadd:allow(ctxblock) fork-join barrier: the wait is bounded by body completion; cancellation belongs in the body
func Dynamic(n, t, chunk int, body func(worker, lo, hi int)) {
	t = Threads(t)
	if t > n {
		// Like Static: more workers than indices would spawn goroutines
		// that claim nothing (t of them for n=1), so clamp.
		t = n
	}
	if n == 0 {
		return
	}
	if chunk <= 0 {
		chunk = n / (8 * t)
		if chunk < 1 {
			chunk = 1
		}
	}
	if t <= 1 {
		body(0, 0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// Weighted divides [0, n) into t contiguous ranges of near-equal total
// weight and runs them concurrently. weights must have length n; zero
// and negative weights are treated as zero.
//
//spkadd:allow(ctxblock) fork-join barrier: the wait is bounded by body completion; cancellation belongs in the body
func Weighted(weights []int64, t int, body func(worker, lo, hi int)) {
	n := len(weights)
	t = Threads(t)
	if n == 0 {
		return
	}
	if t <= 1 {
		body(0, 0, n)
		return
	}
	bounds := PartitionByWeight(weights, t)
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// PartitionByWeight returns t+1 boundaries over [0, len(weights)) such
// that each part carries roughly total/t weight. Boundaries are found
// by binary search on the prefix-sum array, mirroring the paper's
// binary-search row partitioning. When every weight is zero (or
// negative) the prefix sum carries no balance information and the
// boundaries fall back to the Span arithmetic — previously every
// binary search landed on index 0 and the last worker owned all of
// [0, n) alone.
func PartitionByWeight(weights []int64, t int) []int {
	_, bounds := PartitionByWeightInto(weights, t, nil, nil)
	return bounds
}

// PartitionByWeightInto is PartitionByWeight with caller-provided
// scratch: prefix and bounds are reused when large enough (pass the
// returned slices back in to make repeated partitioning
// allocation-free) and reallocated otherwise. The returned bounds
// slice has length t+1; the returned prefix slice holds the
// weight prefix sums the boundaries were derived from.
func PartitionByWeightInto(weights []int64, t int, prefix []int64, bounds []int) ([]int64, []int) {
	n := len(weights)
	prefix = grow(prefix, n+1)
	bounds = grow(bounds, t+1)
	prefix[0] = 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		prefix[i+1] = prefix[i] + w
	}
	total := prefix[n]
	bounds[0] = 0
	bounds[t] = n
	if total == 0 {
		for w := 1; w < t; w++ {
			bounds[w], _ = Span(n, t, w)
		}
		return prefix, bounds
	}
	for w := 1; w < t; w++ {
		target := total * int64(w) / int64(t)
		b := searchPrefix(prefix[:n+1], target)
		if b < bounds[w-1] {
			b = bounds[w-1]
		}
		bounds[w] = b
	}
	return prefix, bounds
}

// grow returns s with length n, reusing its storage when large enough.
// Contents are unspecified; callers overwrite what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// searchPrefix returns the smallest i with prefix[i] >= target.
func searchPrefix(prefix []int64, target int64) int {
	lo, hi := 0, len(prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if prefix[mid] >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

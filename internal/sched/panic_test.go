package sched

import (
	"errors"
	"sync/atomic"
	"testing"

	"spkadd/internal/faults"
	"spkadd/internal/faults/leakcheck"
)

// TestExecutorPanicRecovered is the executor half of the failure
// model: a panic in a region body — on any worker — comes back from
// the region call as a *PanicError; the workers survive and the very
// next region runs normally.
func TestExecutorPanicRecovered(t *testing.T) {
	leakcheck.Begin(t)
	ex := NewExecutor(4)
	defer ex.Close()

	boom := errors.New("boom")
	_, err := ex.Static(64, 4, func(w, lo, hi int) {
		if lo <= 17 && 17 < hi { // exactly one worker's range panics
			panic(boom)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("region error = %v, want *PanicError", err)
	}
	if pe.Value != boom {
		t.Errorf("PanicError.Value = %v, want the panic value", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	// Error panic values unwrap, so callers can errors.Is through them.
	if !errors.Is(err, boom) {
		t.Error("errors.Is does not reach an error panic value")
	}

	// The executor is fully usable afterwards, in every region form.
	var n atomic.Int64
	count := func(w, lo, hi int) { n.Add(int64(hi - lo)) }
	weights := make([]int64, 64)
	for i := range weights {
		weights[i] = 1
	}
	for name, run := range map[string]func() (LoadStats, error){
		"Static":           func() (LoadStats, error) { return ex.Static(64, 4, count) },
		"Dynamic":          func() (LoadStats, error) { return ex.Dynamic(64, 4, 8, count) },
		"Weighted":         func() (LoadStats, error) { return ex.Weighted(weights, 4, count) },
		"WeightedStealing": func() (LoadStats, error) { return ex.WeightedStealing(weights, 4, count) },
	} {
		n.Store(0)
		if _, err := run(); err != nil {
			t.Fatalf("%s after recovered panic: %v", name, err)
		}
		if n.Load() != 64 {
			t.Errorf("%s after recovered panic covered %d of 64 items", name, n.Load())
		}
	}
}

// TestExecutorPanicAllWorkers: every worker panicking at once still
// yields one error and a live executor (first panic wins, the rest are
// recovered and dropped).
func TestExecutorPanicAllWorkers(t *testing.T) {
	leakcheck.Begin(t)
	ex := NewExecutor(4)
	defer ex.Close()
	_, err := ex.Static(64, 4, func(w, lo, hi int) { panic(w) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("region error = %v, want *PanicError", err)
	}
	if _, err := ex.Static(64, 4, func(w, lo, hi int) {}); err != nil {
		t.Fatalf("region after all-worker panic: %v", err)
	}
}

// TestRunInlinePanic: the single-worker fast path converts panics to
// the same *PanicError as resident workers.
func TestRunInlinePanic(t *testing.T) {
	err := RunInline(8, func(w, lo, hi int) { panic("inline") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunInline error = %v, want *PanicError", err)
	}
	if pe.Value != "inline" {
		t.Errorf("PanicError.Value = %v, want the panic value", pe.Value)
	}
	if err := RunInline(8, func(w, lo, hi int) {}); err != nil {
		t.Errorf("RunInline after panic: %v", err)
	}
}

// TestExecutorWorkerStallFault: the WorkerStall injection point delays
// workers without changing results, and the injector counts the fires.
func TestExecutorWorkerStallFault(t *testing.T) {
	leakcheck.Begin(t)
	in := faults.New(7, faults.Rule{Point: faults.WorkerStall, Key: faults.KeyAny, Count: 2})
	defer faults.Activate(in)()
	ex := NewExecutor(4)
	defer ex.Close()
	var n atomic.Int64
	if _, err := ex.Static(64, 4, func(w, lo, hi int) { n.Add(int64(hi - lo)) }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 64 {
		t.Errorf("stalled region covered %d of 64 items", n.Load())
	}
	if in.Fired() == 0 {
		t.Error("WorkerStall rule never fired")
	}
}

// TestExecutorCloseIdempotentLeakFree: double Close releases every
// worker exactly once and leaks nothing.
func TestExecutorCloseIdempotentLeakFree(t *testing.T) {
	leakcheck.Begin(t)
	ex := NewExecutor(4)
	if _, err := ex.Static(16, 4, func(w, lo, hi int) {}); err != nil {
		t.Fatal(err)
	}
	ex.Close()
	ex.Close() // second Close is a no-op
}

package sched

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// chunkRecorder collects every (worker, lo, hi) chunk a region
// executed, for exactly-once and disjointness checks.
type chunkRecorder struct {
	mu     sync.Mutex
	chunks []chunk
}

type chunk struct{ w, lo, hi int }

func (r *chunkRecorder) body(w, lo, hi int) {
	r.mu.Lock()
	r.chunks = append(r.chunks, chunk{w, lo, hi})
	r.mu.Unlock()
}

// verifyChunks asserts the recorded chunks are well-formed, mutually
// disjoint and cover [0, n) exactly once, with worker ids in
// [0, maxWorkers).
func verifyChunks(t *testing.T, chunks []chunk, n, maxWorkers int) {
	t.Helper()
	seen := make([]int, n)
	for _, c := range chunks {
		if c.lo >= c.hi {
			t.Fatalf("empty or inverted chunk [%d, %d)", c.lo, c.hi)
		}
		if c.lo < 0 || c.hi > n {
			t.Fatalf("chunk [%d, %d) outside [0, %d)", c.lo, c.hi, n)
		}
		if c.w < 0 || c.w >= maxWorkers {
			t.Fatalf("worker id %d outside [0, %d)", c.w, maxWorkers)
		}
		for i := c.lo; i < c.hi; i++ {
			seen[i]++
		}
	}
	for i, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("index %d executed %d times, want exactly once", i, cnt)
		}
	}
	// Sorted by lo, consecutive chunks must tile the range: monotone,
	// non-overlapping half-open ranges (this also holds on steal paths,
	// where a range is only ever split, never duplicated).
	sorted := append([]chunk(nil), chunks...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].lo < sorted[b].lo })
	next := 0
	for _, c := range sorted {
		if c.lo != next {
			t.Fatalf("chunk starts at %d, want %d (gap or overlap)", c.lo, next)
		}
		next = c.hi
	}
	if next != n {
		t.Fatalf("chunks end at %d, want %d", next, n)
	}
}

func skewedWeights(n int, seed uint64) []int64 {
	w := make([]int64, n)
	s := seed
	for i := range w {
		s = s*6364136223846793005 + 1442695040888963407
		w[i] = int64(s % 7)
		if s%31 == 0 {
			w[i] = 10_000 // occasional giant column, RMAT-style
		}
	}
	return w
}

// TestExecutorModesCover runs every executor mode over a grid of
// shapes and asserts exactly-once coverage with disjoint ranges.
func TestExecutorModesCover(t *testing.T) {
	ex := NewElasticExecutor()
	defer ex.Close()
	for _, n := range []int{0, 1, 2, 7, 64, 257} {
		weights := skewedWeights(n, uint64(n)+3)
		zero := make([]int64, n)
		for _, th := range []int{1, 2, 3, 8} {
			modes := map[string]func(*chunkRecorder) (LoadStats, error){
				"static":  func(r *chunkRecorder) (LoadStats, error) { return ex.Static(n, th, r.body) },
				"dynamic": func(r *chunkRecorder) (LoadStats, error) { return ex.Dynamic(n, th, 0, r.body) },
				"dynamic-chunk3": func(r *chunkRecorder) (LoadStats, error) {
					return ex.Dynamic(n, th, 3, r.body)
				},
				"weighted": func(r *chunkRecorder) (LoadStats, error) { return ex.Weighted(weights, th, r.body) },
				"stealing": func(r *chunkRecorder) (LoadStats, error) { return ex.WeightedStealing(weights, th, r.body) },
				"weighted-zero": func(r *chunkRecorder) (LoadStats, error) {
					return ex.Weighted(zero, th, r.body)
				},
				"stealing-zero": func(r *chunkRecorder) (LoadStats, error) {
					return ex.WeightedStealing(zero, th, r.body)
				},
			}
			for name, run := range modes {
				var rec chunkRecorder
				ls, err := run(&rec)
				if err != nil {
					t.Fatalf("%s n=%d t=%d: region error: %v", name, n, th, err)
				}
				verifyChunks(t, rec.chunks, n, max(th, 1))
				if n > 0 && ls.Workers < 1 {
					t.Errorf("%s n=%d t=%d: LoadStats.Workers = %d, want >= 1", name, n, th, ls.Workers)
				}
				if ls.Max < ls.Mean {
					t.Errorf("%s n=%d t=%d: Max %d < Mean %d", name, n, th, ls.Max, ls.Mean)
				}
			}
		}
	}
}

// TestExecutorReuseNoAlloc proves a warmed executor runs its regions
// without allocating, for every mode — the point of keeping workers
// and partition scratch resident.
func TestExecutorReuseNoAlloc(t *testing.T) {
	ex := NewElasticExecutor()
	defer ex.Close()
	const n, th = 256, 4
	weights := skewedWeights(n, 11)
	body := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			_ = i
		}
	}
	runs := map[string]func(){
		"static":   func() { ex.Static(n, th, body) },
		"dynamic":  func() { ex.Dynamic(n, th, 0, body) },
		"weighted": func() { ex.Weighted(weights, th, body) },
		"stealing": func() { ex.WeightedStealing(weights, th, body) },
	}
	for name, run := range runs {
		for warm := 0; warm < 3; warm++ {
			run()
		}
		if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
			t.Errorf("%s: warmed executor allocates %.1f times per region, want 0", name, allocs)
		}
	}
}

// TestExecutorBudget verifies a fixed-budget executor caps region
// parallelism at its budget whatever the caller requests.
func TestExecutorBudget(t *testing.T) {
	ex := NewExecutor(2)
	defer ex.Close()
	if ex.Budget() != 2 {
		t.Fatalf("Budget() = %d, want 2", ex.Budget())
	}
	var rec chunkRecorder
	ls, err := ex.Static(64, 8, rec.body)
	if err != nil {
		t.Fatalf("region error: %v", err)
	}
	verifyChunks(t, rec.chunks, 64, 2)
	if ls.Workers > 2 {
		t.Errorf("region ran %d workers, budget is 2", ls.Workers)
	}
}

// TestExecutorCloseRunsInline verifies a closed executor still
// executes regions — inline, single-worker — rather than hanging or
// panicking.
func TestExecutorCloseRunsInline(t *testing.T) {
	ex := NewExecutor(4)
	var rec chunkRecorder
	ex.Weighted(skewedWeights(32, 5), 4, rec.body)
	ex.Close()
	ex.Close() // idempotent
	rec.chunks = rec.chunks[:0]
	ls, err := ex.WeightedStealing(skewedWeights(32, 5), 4, rec.body)
	if err != nil {
		t.Fatalf("region error: %v", err)
	}
	verifyChunks(t, rec.chunks, 32, 1)
	if ls.Workers != 1 {
		t.Errorf("closed executor ran %d workers, want 1 (inline)", ls.Workers)
	}
}

// TestExecutorStealOccurs forces the steal path: worker 0 stalls on
// its first chunk while worker 1 drains its own range, so worker 1
// must steal worker 0's remainder for the region to finish promptly.
func TestExecutorStealOccurs(t *testing.T) {
	ex := NewElasticExecutor()
	defer ex.Close()
	const n = 200
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = 1
	}
	var rec chunkRecorder
	stalled := false
	ls, err := ex.WeightedStealing(weights, 2, func(w, lo, hi int) {
		if w == 0 && !stalled {
			stalled = true
			time.Sleep(20 * time.Millisecond)
		}
		rec.body(w, lo, hi)
	})
	if err != nil {
		t.Fatalf("region error: %v", err)
	}
	verifyChunks(t, rec.chunks, n, 2)
	if ls.Steals == 0 {
		t.Error("no steals recorded despite a stalled worker; LoadStats:", ls)
	}
	if ls.Max < ls.Mean || ls.Workers != 2 {
		t.Errorf("implausible LoadStats %+v", ls)
	}
}

// TestExecutorSharedConcurrent hammers one executor from many
// goroutines mixing every mode; regions must serialize internally and
// each must still cover its range exactly once. Run under -race by
// the CI race job.
func TestExecutorSharedConcurrent(t *testing.T) {
	ex := NewExecutor(3)
	defer ex.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 50 + 30*g
			weights := skewedWeights(n, uint64(g))
			for iter := 0; iter < 20; iter++ {
				var rec chunkRecorder
				switch (g + iter) % 4 {
				case 0:
					ex.Static(n, 3, rec.body)
				case 1:
					ex.Dynamic(n, 3, 0, rec.body)
				case 2:
					ex.Weighted(weights, 3, rec.body)
				default:
					ex.WeightedStealing(weights, 3, rec.body)
				}
				verifyChunks(t, rec.chunks, n, 3)
			}
		}(g)
	}
	wg.Wait()
}

// FuzzExecutorCover fuzzes shape, thread count and weight seed across
// all modes, asserting the exactly-once/disjointness invariant.
func FuzzExecutorCover(f *testing.F) {
	f.Add(uint16(64), uint8(4), uint64(1), uint8(0))
	f.Add(uint16(257), uint8(7), uint64(9), uint8(1))
	f.Add(uint16(33), uint8(2), uint64(3), uint8(2))
	f.Add(uint16(128), uint8(16), uint64(7), uint8(3))
	ex := NewElasticExecutor()
	f.Cleanup(ex.Close)
	f.Fuzz(func(t *testing.T, nRaw uint16, thRaw uint8, seed uint64, mode uint8) {
		n := int(nRaw) % 512
		th := int(thRaw)%16 + 1
		weights := skewedWeights(n, seed)
		var rec chunkRecorder
		switch mode % 4 {
		case 0:
			ex.Static(n, th, rec.body)
		case 1:
			ex.Dynamic(n, th, int(seed%5), rec.body)
		case 2:
			ex.Weighted(weights, th, rec.body)
		default:
			ex.WeightedStealing(weights, th, rec.body)
		}
		verifyChunks(t, rec.chunks, n, max(th, 1))
	})
}

// FuzzPartitionByWeight fuzzes the weighted partitioner: boundaries
// must be monotone, span [0, n], and fall back to Span partitioning
// when the total weight is zero.
func FuzzPartitionByWeight(f *testing.F) {
	f.Add(uint16(50), uint8(7), uint64(1))
	f.Add(uint16(0), uint8(1), uint64(2))
	f.Add(uint16(9), uint8(16), uint64(0))
	f.Fuzz(func(t *testing.T, nRaw uint16, tRaw uint8, seed uint64) {
		n := int(nRaw) % 300
		parts := int(tRaw)%12 + 1
		weights := make([]int64, n)
		total := int64(0)
		s := seed
		for i := range weights {
			s = s*6364136223846793005 + 1
			weights[i] = int64(s % 5)
			if seed == 0 {
				weights[i] = 0
			}
			total += weights[i]
		}
		bounds := PartitionByWeight(weights, parts)
		if len(bounds) != parts+1 {
			t.Fatalf("got %d bounds, want %d", len(bounds), parts+1)
		}
		if bounds[0] != 0 || bounds[parts] != n {
			t.Fatalf("bounds %v do not span [0, %d]", bounds, n)
		}
		for i := 1; i <= parts; i++ {
			if bounds[i] < bounds[i-1] {
				t.Fatalf("bounds %v not monotone", bounds)
			}
		}
		if total == 0 {
			for w := 0; w <= parts; w++ {
				if want, _ := Span(n, parts, w); w < parts && bounds[w] != want {
					t.Fatalf("zero-weight bounds %v, want Span partitioning", bounds)
				}
			}
		}
	})
}

// Package analysistest runs an analyzer over a golden fixture package
// and compares its diagnostics against `// want "regexp"` comments, in
// the style of golang.org/x/tools/go/analysis/analysistest. Fixtures
// live under testdata/src/<path> and may import the standard library;
// their imports are satisfied from compiled export data produced by
// `go list -export`.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"spkadd/internal/analysis"
	"spkadd/internal/analysis/load"
)

// stdExports is built once per test binary: export data for the
// standard-library packages fixtures are allowed to import.
var (
	stdOnce    sync.Once
	stdIndex   load.ExportIndex
	stdIndexOK error
)

// FixtureImports is the closed set of packages fixtures may import.
var FixtureImports = []string{
	"context", "errors", "fmt", "strings", "sync", "sync/atomic", "time",
}

func exports(t *testing.T) load.ExportIndex {
	t.Helper()
	stdOnce.Do(func() {
		stdIndex, stdIndexOK = load.StdExports(".", FixtureImports...)
	})
	if stdIndexOK != nil {
		t.Fatalf("building stdlib export index: %v", stdIndexOK)
	}
	return stdIndex
}

// Run loads testdata/src/<pkgpath> relative to dir, applies the
// analyzer, and checks the diagnostics against the fixture's want
// comments. The fixture's import path is pkgpath itself, so analyzers
// with package scopes can be exercised by encoding the scope into the
// fixture's directory name.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	fixture := filepath.Join(dir, "src", filepath.FromSlash(pkgpath))
	target, err := load.Dir(fixture, pkgpath, exports(t))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := analysis.Run(target, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}

	wants, err := collectWants(fixture)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := target.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if w.file == filepath.Base(pos.Filename) && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s:%d:%d: unexpected diagnostic: [%s] %s",
				pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Join(fixture, w.file), w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE extracts the quoted patterns of a want comment — double- or
// back-quoted, possibly several: // want "a" `b`.
var (
	quoted   = `(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `)`
	wantRE   = regexp.MustCompile(`// want ((?:` + quoted + `\s*)+)`)
	quotedRE = regexp.MustCompile(quoted)
)

func collectWants(dir string) ([]want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", e.Name(), i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}

// Package noalloc checks the repo's hottest functions — those
// annotated `//spkadd:noalloc` — for constructs that allocate on every
// execution: make/new, appends outside the self-extend form, capturing
// closures, interface boxing, defer/go statements, slice and map
// literals, string building. The annotation is a contract: the
// function may run inside a warmed Adder's steady state, where
// BenchmarkAdderReuse* pins 0 allocs/op at runtime; this analyzer
// rejects the obvious violations at CI time, before a benchmark runs,
// and the escape audit (internal/analysis/escape) closes the gap on
// compiler-decided heap escapes.
//
// The self-extend append `x = append(x, ...)` is permitted: under the
// workspace capacity discipline (DESIGN.md §3) the backing array is
// pre-grown, so the append only writes. Appends whose result lands
// anywhere else are flagged — they either allocate or silently alias.
package noalloc

import (
	"go/ast"
	"go/types"

	"spkadd/internal/analysis"
	"spkadd/internal/analysis/typeutil"
)

// Directive marks a function allocation-free by contract.
const Directive = "//spkadd:noalloc"

// Analyzer is the noalloc invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flags allocating constructs inside //spkadd:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !analysis.HasDirective(fd.Doc, Directive) {
				continue
			}
			sig, _ := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
			w := &walker{pass: pass, fn: fd.Name.Name}
			w.stmts(fd.Body.List, sig)
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
	fn   string
}

func (w *walker) stmts(list []ast.Stmt, sig *types.Signature) {
	for _, s := range list {
		w.stmt(s, sig)
	}
}

func (w *walker) stmt(s ast.Stmt, sig *types.Signature) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		w.pass.Reportf(s.Pos(), "defer in noalloc function %s", w.fn)
		w.expr(s.Call, sig)
	case *ast.GoStmt:
		w.pass.Reportf(s.Pos(), "go statement in noalloc function %s", w.fn)
		w.expr(s.Call, sig)
	case *ast.AssignStmt:
		w.assign(s, sig)
	case *ast.ReturnStmt:
		if sig != nil {
			res := sig.Results()
			for i, e := range s.Results {
				if len(s.Results) == res.Len() {
					w.checkBox(e, res.At(i).Type(), "returned")
				}
				w.expr(e, sig)
			}
		} else {
			for _, e := range s.Results {
				w.expr(e, sig)
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, sig)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if len(vs.Names) == len(vs.Values) {
						if t, ok := w.pass.TypesInfo.Defs[vs.Names[i]]; ok {
							w.checkBox(v, t.Type(), "assigned")
						}
					}
					w.expr(v, sig)
				}
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, sig)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, sig)
		}
		w.expr(s.Cond, sig)
		w.stmt(s.Body, sig)
		if s.Else != nil {
			w.stmt(s.Else, sig)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, sig)
		}
		if s.Cond != nil {
			w.expr(s.Cond, sig)
		}
		if s.Post != nil {
			w.stmt(s.Post, sig)
		}
		w.stmt(s.Body, sig)
	case *ast.RangeStmt:
		w.expr(s.X, sig)
		w.stmt(s.Body, sig)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, sig)
		}
		if s.Tag != nil {
			w.expr(s.Tag, sig)
		}
		w.stmt(s.Body, sig)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, sig)
		}
		w.stmt(s.Assign, sig)
		w.stmt(s.Body, sig)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, sig)
		}
		w.stmts(s.Body, sig)
	case *ast.SelectStmt:
		w.stmt(s.Body, sig)
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm, sig)
		}
		w.stmts(s.Body, sig)
	case *ast.SendStmt:
		w.expr(s.Chan, sig)
		w.expr(s.Value, sig)
	case *ast.IncDecStmt:
		w.expr(s.X, sig)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, sig)
	}
}

func (w *walker) assign(s *ast.AssignStmt, sig *types.Signature) {
	// The self-extend append form is the one permitted append.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok &&
			typeutil.IsBuiltin(w.pass.TypesInfo, call, "append") &&
			len(call.Args) > 0 &&
			types.ExprString(s.Lhs[0]) == types.ExprString(call.Args[0]) {
			for _, a := range call.Args[1:] {
				w.expr(a, sig)
			}
			return
		}
	}
	for i, rhs := range s.Rhs {
		if len(s.Lhs) == len(s.Rhs) {
			if t := w.pass.TypesInfo.Types[s.Lhs[i]].Type; t != nil {
				w.checkBox(rhs, t, "assigned")
			}
		}
		w.expr(rhs, sig)
	}
	for _, lhs := range s.Lhs {
		w.expr(lhs, sig)
	}
}

func (w *walker) expr(e ast.Expr, sig *types.Signature) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(e, sig)
	case *ast.FuncLit:
		w.funcLit(e)
		// The literal's body is checked against its own signature.
		if t, ok := w.pass.TypesInfo.Types[e].Type.(*types.Signature); ok {
			w.stmts(e.Body.List, t)
		}
	case *ast.CompositeLit:
		switch w.pass.TypesInfo.Types[e].Type.Underlying().(type) {
		case *types.Slice:
			w.pass.Reportf(e.Pos(), "slice literal allocates in noalloc function %s", w.fn)
		case *types.Map:
			w.pass.Reportf(e.Pos(), "map literal allocates in noalloc function %s", w.fn)
		}
		for _, el := range e.Elts {
			w.expr(el, sig)
		}
	case *ast.BinaryExpr:
		if e.Op.String() == "+" {
			if t := w.pass.TypesInfo.Types[e].Type; t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.pass.Reportf(e.Pos(), "string concatenation allocates in noalloc function %s", w.fn)
				}
			}
		}
		w.expr(e.X, sig)
		w.expr(e.Y, sig)
	case *ast.UnaryExpr:
		w.expr(e.X, sig)
	case *ast.ParenExpr:
		w.expr(e.X, sig)
	case *ast.StarExpr:
		w.expr(e.X, sig)
	case *ast.IndexExpr:
		w.expr(e.X, sig)
		w.expr(e.Index, sig)
	case *ast.SliceExpr:
		w.expr(e.X, sig)
		w.expr(e.Low, sig)
		w.expr(e.High, sig)
		w.expr(e.Max, sig)
	case *ast.SelectorExpr:
		w.expr(e.X, sig)
	case *ast.TypeAssertExpr:
		w.expr(e.X, sig)
	case *ast.KeyValueExpr:
		w.expr(e.Value, sig)
	}
}

func (w *walker) call(call *ast.CallExpr, sig *types.Signature) {
	info := w.pass.TypesInfo

	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		if src != nil {
			if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) && !isNil(info, call.Args[0]) {
				w.pass.Reportf(call.Pos(), "conversion boxes %s into interface in noalloc function %s", src, w.fn)
			}
			if allocatingConversion(dst, src) {
				w.pass.Reportf(call.Pos(), "conversion to %s allocates in noalloc function %s", dst, w.fn)
			}
		}
		w.expr(call.Args[0], sig)
		return
	}

	switch {
	case typeutil.IsBuiltin(info, call, "make"):
		w.pass.Reportf(call.Pos(), "make allocates in noalloc function %s", w.fn)
	case typeutil.IsBuiltin(info, call, "new"):
		w.pass.Reportf(call.Pos(), "new allocates in noalloc function %s", w.fn)
	case typeutil.IsBuiltin(info, call, "append"):
		w.pass.Reportf(call.Pos(), "append outside the self-extend form x = append(x, ...) in noalloc function %s", w.fn)
	case typeutil.IsBuiltin(info, call, "panic"):
		// Failure path: the allocation happens only on the way to a
		// crash, which the 0-allocs contract does not cover.
		for _, a := range call.Args {
			w.expr(a, sig)
		}
		return
	default:
		// Interface boxing at call boundaries, variadic included.
		if fsig, ok := info.Types[call.Fun].Type.Underlying().(*types.Signature); ok && call.Ellipsis == 0 {
			params := fsig.Params()
			for i, arg := range call.Args {
				var pt types.Type
				switch {
				case fsig.Variadic() && i >= params.Len()-1:
					pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
				case i < params.Len():
					pt = params.At(i).Type()
				}
				if pt != nil {
					w.checkBox(arg, pt, "passed")
				}
			}
		}
	}
	w.expr(call.Fun, sig)
	for _, a := range call.Args {
		w.expr(a, sig)
	}
}

// checkBox reports e if assigning/passing/returning it to destination
// type dst boxes a concrete value into an interface.
func (w *walker) checkBox(e ast.Expr, dst types.Type, how string) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	src := w.pass.TypesInfo.Types[e].Type
	if src == nil || types.IsInterface(src.Underlying()) || isNil(w.pass.TypesInfo, e) {
		return
	}
	w.pass.Reportf(e.Pos(), "%s boxes %s into interface in noalloc function %s", how, src, w.fn)
}

func (w *walker) funcLit(lit *ast.FuncLit) {
	info := w.pass.TypesInfo
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		scope := v.Parent()
		if scope == nil || scope == types.Universe || v.Pkg() == nil || scope == v.Pkg().Scope() {
			return true // package-level or universe: no capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			w.pass.Reportf(lit.Pos(), "closure captures %s in noalloc function %s", v.Name(), w.fn)
			reported = true
			return false
		}
		return true
	})
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// allocatingConversion reports conversions that copy storage:
// string <-> []byte / []rune.
func allocatingConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

package noalloc_test

import (
	"testing"

	"spkadd/internal/analysis/analysistest"
	"spkadd/internal/analysis/passes/noalloc"
)

func TestNoallocPositive(t *testing.T) {
	analysistest.Run(t, "../../testdata", noalloc.Analyzer, "noalloc/pos")
}

func TestNoallocNegative(t *testing.T) {
	analysistest.Run(t, "../../testdata", noalloc.Analyzer, "noalloc/neg")
}

package statsatomic_test

import (
	"testing"

	"spkadd/internal/analysis/analysistest"
	"spkadd/internal/analysis/passes/statsatomic"
)

func TestStatsatomicPositive(t *testing.T) {
	analysistest.Run(t, "../../testdata", statsatomic.Analyzer, "statsatomic/pos")
}

func TestStatsatomicNegative(t *testing.T) {
	analysistest.Run(t, "../../testdata", statsatomic.Analyzer, "statsatomic/neg")
}

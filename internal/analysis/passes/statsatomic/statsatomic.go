// Package statsatomic guards the observability counters. A struct
// field annotated `//spkadd:atomic` (OpStats and friends) is part of a
// concurrently-updated statistics block; the annotation is satisfied
// structurally when the field's type already comes from sync/atomic
// (atomic.Int64 and kin — the only way to touch it is Load/Add/Store),
// and otherwise every access to the field must be either the
// `&x.field` operand of a sync/atomic call or confined to the
// declaring type's Record* helper methods. A bare read or write of an
// annotated plain counter is exactly the probabilistic -race finding
// this analyzer makes deterministic.
package statsatomic

import (
	"go/ast"
	"go/types"
	"strings"

	"spkadd/internal/analysis"
	"spkadd/internal/analysis/typeutil"
)

// Directive marks a struct field as an atomically-accessed counter.
const Directive = "//spkadd:atomic"

// Analyzer is the statsatomic invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "statsatomic",
	Doc:  "//spkadd:atomic counter fields may only be touched via sync/atomic or Record* helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	annotated := annotatedFields(pass)
	if len(annotated) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recordHelper(pass, fd, annotated) {
				continue
			}
			checkBody(pass, fd.Body, annotated)
		}
	}
	return nil
}

// annotatedFields collects the //spkadd:atomic fields declared in this
// package that need access checking — plain-typed counters. Fields
// whose type is from sync/atomic are safe by construction and are
// only validated, not tracked.
func annotatedFields(pass *analysis.Pass) map[*types.Var]bool {
	fields := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasAtomicDirective(field) {
					continue
				}
				for _, name := range field.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if fromSyncAtomic(v.Type()) {
						continue // atomic.Int64 etc.: type-safe already
					}
					if !plainCounter(v.Type()) {
						pass.Reportf(name.Pos(),
							"field %s is annotated %s but its type %s is neither a sync/atomic type nor an integer",
							v.Name(), Directive, v.Type())
						continue
					}
					fields[v] = true
				}
			}
			return true
		})
	}
	return fields
}

func hasAtomicDirective(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
				return true
			}
		}
	}
	return false
}

func fromSyncAtomic(t types.Type) bool {
	n := typeutil.BaseNamed(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

func plainCounter(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsUnsigned) != 0
}

// recordHelper reports whether fd is a Record*/Load*-style method on a
// type that declares one of the annotated fields — the blessed
// accessors.
func recordHelper(pass *analysis.Pass, fd *ast.FuncDecl, annotated map[*types.Var]bool) bool {
	if fd.Recv == nil || !strings.HasPrefix(fd.Name.Name, "Record") {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := typeutil.BaseNamed(recv.Type())
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if annotated[st.Field(i)] {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, annotated map[*types.Var]bool) {
	// Collect the selector expressions that are blessed: `&x.f` as an
	// argument to a sync/atomic function.
	blessed := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := typeutil.Callee(pass.TypesInfo, call)
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
				blessed[ast.Unparen(u.X)] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f := typeutil.SelectedField(pass.TypesInfo, sel)
		if f == nil || !annotated[f] {
			return true
		}
		if blessed[sel] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"raw access to atomic counter field %s: use sync/atomic or the type's Record* helpers", f.Name())
		return true
	})
}

// Package passes registers the repo-specific invariant analyzers in
// the order spkadd-vet runs them.
package passes

import (
	"spkadd/internal/analysis"
	"spkadd/internal/analysis/passes/ctxblock"
	"spkadd/internal/analysis/passes/lockorder"
	"spkadd/internal/analysis/passes/noalloc"
	"spkadd/internal/analysis/passes/statsatomic"
	"spkadd/internal/analysis/passes/typederr"
)

// All returns every invariant analyzer, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		noalloc.Analyzer,
		ctxblock.Analyzer,
		typederr.Analyzer,
		statsatomic.Analyzer,
		lockorder.Analyzer,
	}
}

package typederr_test

import (
	"testing"

	"spkadd/internal/analysis/analysistest"
	"spkadd/internal/analysis/passes/typederr"
)

func TestTypederrPositive(t *testing.T) {
	analysistest.Run(t, "../../testdata", typederr.Analyzer, "typederr/pos")
}

func TestTypederrNegative(t *testing.T) {
	analysistest.Run(t, "../../testdata", typederr.Analyzer, "typederr/neg")
}

// Package typederr enforces the repo's error taxonomy at API
// boundaries: an error returned from an exported function or method
// (or from a package main's functions — the CLI surface) must be a
// declared sentinel/typed error or wrap one with %w, never an ad-hoc
// `errors.New(...)` or a `fmt.Errorf` without a %w verb. Ad-hoc errors
// are unmatchable by errors.Is/As, so callers — the serving daemon's
// HTTP status mapping above all — cannot classify them.
//
// The check is a return-site check: it flags `return fmt.Errorf(...)`
// with no %w in a constant format, and `return errors.New(...)`, when
// the returned expression's static type is error. Package-level `var
// ErrFoo = errors.New(...)` declarations are the encouraged form and
// are untouched.
package typederr

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"spkadd/internal/analysis"
	"spkadd/internal/analysis/typeutil"
)

// Analyzer is the typederr invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc:  "errors crossing exported API boundaries must be or wrap declared sentinels",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isMain && !exportedBoundary(fd) {
				continue
			}
			checkReturns(pass, fd)
		}
	}
	return nil
}

// exportedBoundary reports whether fd is callable from outside the
// package: an exported function, or an exported method on an exported
// receiver type.
func exportedBoundary(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func checkReturns(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			info := pass.TypesInfo
			switch {
			case typeutil.IsPkgFunc(info, call, "errors", "New"):
				pass.Reportf(call.Pos(),
					"errors.New at a return of %s: declare an Err* sentinel or typed error instead", fd.Name.Name)
			case typeutil.IsPkgFunc(info, call, "fmt", "Errorf"):
				if format, ok := constFormat(info, call); ok && !strings.Contains(format, "%w") {
					pass.Reportf(call.Pos(),
						"fmt.Errorf without %%w at a return of %s: wrap a declared Err* sentinel or typed error", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// constFormat extracts fmt.Errorf's format string when it is constant.
func constFormat(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// Package lockorder enforces the pool→shard lock hierarchy. Mutex
// fields annotated `//spkadd:lockorder(N)` belong to a total order:
// lower levels are outer locks (the pool's RWMutex is level 1), higher
// levels are inner (a shard's mutex is level 2). Acquiring a
// lower-level lock while a higher-level one is still held inverts the
// hierarchy — the deadlock shape the pool's Push/Sum linearization
// depends on never creating. The check is lexical and per-function:
// it tracks Lock/RLock/Unlock/RUnlock calls on annotated fields in
// source order through each function body, which is exactly how the
// pool code is written (no lock is passed across function boundaries
// while held, except via methods annotated as running under a lock —
// suppress those with //spkadd:allow(lockorder)).
package lockorder

import (
	"go/ast"
	"go/types"
	"strconv"

	"spkadd/internal/analysis"
	"spkadd/internal/analysis/typeutil"
)

// Directive, with an integer level argument, places a mutex field in
// the lock hierarchy.
const Directive = "//spkadd:lockorder"

// Analyzer is the lockorder invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "locks annotated //spkadd:lockorder(N) must be acquired outermost-first",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	levels := annotatedLocks(pass)
	if len(levels) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, levels)
		}
	}
	return nil
}

// annotatedLocks maps annotated mutex field objects to their levels.
func annotatedLocks(pass *analysis.Pass) map[*types.Var]int {
	levels := map[*types.Var]int{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				arg, ok := analysis.FieldDirective(field, Directive)
				if !ok {
					continue
				}
				level, err := strconv.Atoi(arg)
				if err != nil {
					for _, name := range field.Names {
						pass.Reportf(name.Pos(), "bad %s(%s): level must be an integer", Directive, arg)
					}
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						levels[v] = level
					}
				}
			}
			return true
		})
	}
	return levels
}

// lockCall matches x.f.M() where f is an annotated lock field and M a
// (un)lock method; it returns the field and whether M acquires.
func lockCall(pass *analysis.Pass, call *ast.CallExpr, levels map[*types.Var]int) (f *types.Var, acquire bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	var acquiring bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquiring = true
	case "Unlock", "RUnlock":
		acquiring = false
	default:
		return nil, false, false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	field := typeutil.SelectedField(pass.TypesInfo, inner)
	if field == nil {
		return nil, false, false
	}
	if _, tracked := levels[field]; !tracked {
		return nil, false, false
	}
	return field, acquiring, true
}

// checkFunc walks fd's body in source order, maintaining the multiset
// of held annotated locks, and reports acquisitions that invert the
// hierarchy. Function literals are walked in place (they execute where
// they are defined or are the lock-holding region itself).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, levels map[*types.Var]int) {
	held := map[*types.Var]int{} // field -> acquisition count
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if deferred[call] {
			// A deferred unlock releases at function exit; for the
			// lexical order of the body, the lock stays held.
			return true
		}
		field, acquire, ok := lockCall(pass, call, levels)
		if !ok {
			return true
		}
		if !acquire {
			if held[field] > 0 {
				held[field]--
			}
			return true
		}
		for heldField, count := range held {
			if count > 0 && levels[heldField] > levels[field] {
				pass.Reportf(call.Pos(),
					"lock order inversion: acquiring level-%d lock %s while holding level-%d lock %s (outermost-first order is violated)",
					levels[field], field.Name(), levels[heldField], heldField.Name())
			}
		}
		held[field]++
		return true
	})
}

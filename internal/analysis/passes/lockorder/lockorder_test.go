package lockorder_test

import (
	"testing"

	"spkadd/internal/analysis/analysistest"
	"spkadd/internal/analysis/passes/lockorder"
)

func TestLockorderPositive(t *testing.T) {
	analysistest.Run(t, "../../testdata", lockorder.Analyzer, "lockorder/pos")
}

func TestLockorderNegative(t *testing.T) {
	analysistest.Run(t, "../../testdata", lockorder.Analyzer, "lockorder/neg")
}

// Package ctxblock enforces the PR 6 cancellation discipline: inside
// the concurrency-bearing packages (internal/core, internal/sched,
// internal/server), any function that can block — a cond-var or
// wait-group wait, a channel send/receive, a default-less select, or a
// mutex acquired under a loop — must accept a context.Context and
// actually use it, so every wait in the stack is reachable by a
// cancel. Functions that block by design without a context (dedicated
// reducer goroutines aborted through quit channels) carry an explicit
// reviewed `//spkadd:allow(ctxblock)` instead.
//
// Function literals launched by a `go` statement are skipped: they
// block on their own goroutine, and their lifecycle is the spawning
// function's responsibility.
package ctxblock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spkadd/internal/analysis"
	"spkadd/internal/analysis/typeutil"
)

// Scope lists the import-path substrings the discipline applies to.
var Scope = []string{"internal/core", "internal/sched", "internal/server"}

// Analyzer is the ctxblock invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxblock",
	Doc:  "blocking functions in concurrency packages must accept and use a context.Context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range Scope {
		if strings.Contains(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.HasDirective(fd.Doc, "//spkadd:allow(ctxblock)") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type blockOp struct {
	pos  token.Pos
	what string
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	blocks := blockingOps(pass, fd.Body)
	if len(blocks) == 0 {
		return
	}
	ctxParam := contextParam(pass, fd)
	if ctxParam == nil {
		for _, b := range blocks {
			pass.Reportf(b.pos, "%s in %s, which has no context.Context parameter", b.what, fd.Name.Name)
		}
		return
	}
	if ctxParam.Name() == "_" || !objUsed(pass, fd.Body, ctxParam) {
		pass.Reportf(fd.Pos(), "%s blocks but never uses its context.Context parameter", fd.Name.Name)
	}
}

// contextParam returns the first parameter of type context.Context.
func contextParam(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if typeutil.IsContext(params.At(i).Type()) {
			return params.At(i)
		}
	}
	return nil
}

// objUsed reports whether obj is referenced anywhere in body.
func objUsed(pass *analysis.Pass, body *ast.BlockStmt, obj *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}

// blockingOps collects the blocking constructs lexically inside body,
// descending into function literals except those launched with `go`.
func blockingOps(pass *analysis.Pass, body *ast.BlockStmt) []blockOp {
	var (
		ops      []blockOp
		loop     int
		goBodies = map[*ast.FuncLit]bool{}
	)
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				goBodies[lit] = true
			}
		}
		return true
	})
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if goBodies[n] {
				return
			}
		case *ast.ForStmt:
			loop++
			defer func() { loop-- }()
		case *ast.RangeStmt:
			if t := pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ops = append(ops, blockOp{n.Pos(), "range over channel"})
				}
			}
			loop++
			defer func() { loop-- }()
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ops = append(ops, blockOp{n.Pos(), "channel receive"})
			}
		case *ast.SendStmt:
			ops = append(ops, blockOp{n.Pos(), "channel send"})
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				ops = append(ops, blockOp{n.Pos(), "blocking select"})
			}
		case *ast.CommClause:
			// The channel ops in a comm clause's guard are implied by
			// the select itself; only the case bodies can block anew.
			for _, s := range n.Body {
				walk(s)
			}
			return
		case *ast.CallExpr:
			info := pass.TypesInfo
			switch {
			case typeutil.MethodOn(info, n, "sync", "Cond", "Wait"):
				ops = append(ops, blockOp{n.Pos(), "sync.Cond.Wait"})
			case typeutil.MethodOn(info, n, "sync", "WaitGroup", "Wait"):
				ops = append(ops, blockOp{n.Pos(), "sync.WaitGroup.Wait"})
			case loop > 0 && (typeutil.MethodOn(info, n, "sync", "Mutex", "Lock") ||
				typeutil.MethodOn(info, n, "sync", "RWMutex", "Lock") ||
				typeutil.MethodOn(info, n, "sync", "RWMutex", "RLock")):
				ops = append(ops, blockOp{n.Pos(), "mutex acquired under a loop"})
			}
		}
		walkChildren(n, walk)
	}
	walk(body)
	return ops
}

// walkChildren applies walk to n's immediate children, mirroring
// ast.Inspect's traversal but under caller control (so FuncLit
// subtrees can be pruned and loop depth tracked).
func walkChildren(n ast.Node, walk func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		walk(c)
		return false
	})
}

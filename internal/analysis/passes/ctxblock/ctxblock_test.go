package ctxblock_test

import (
	"testing"

	"spkadd/internal/analysis/analysistest"
	"spkadd/internal/analysis/passes/ctxblock"
)

// The fixture paths embed "internal/core" so they fall inside the
// analyzer's package scope.

func TestCtxblockPositive(t *testing.T) {
	analysistest.Run(t, "../../testdata", ctxblock.Analyzer, "ctxblock/internal/core/pos")
}

func TestCtxblockNegative(t *testing.T) {
	analysistest.Run(t, "../../testdata", ctxblock.Analyzer, "ctxblock/internal/core/neg")
}

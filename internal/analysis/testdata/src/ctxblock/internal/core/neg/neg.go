// Package neg holds the blocking shapes ctxblock must accept: waits
// guarded by a used context, non-blocking selects, goroutine bodies
// (their lifecycle belongs to the spawner), and explicitly allowed
// reducer loops.
package neg

import (
	"context"
	"sync"
)

type queue struct {
	mu sync.Mutex
	ch chan int
}

func recv(ctx context.Context, q *queue) (int, error) {
	select {
	case v := <-q.ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func send(ctx context.Context, q *queue, v int) error {
	select {
	case q.ch <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func tryRecv(q *queue) (int, bool) {
	select {
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

//spkadd:allow(ctxblock) dedicated reducer goroutine, aborted by closing ch
func (q *queue) drain() int {
	total := 0
	for v := range q.ch {
		total += v
	}
	return total
}

func spawn(q *queue) {
	go func() {
		<-q.ch // the goroutine's own wait, not spawn's
	}()
}

func lockOnce(q *queue) {
	q.mu.Lock() // a single uncontended acquisition is not a wait point
	q.mu.Unlock()
}

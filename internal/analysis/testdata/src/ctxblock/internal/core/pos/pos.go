// Package pos seeds ctxblock violations: blocking constructs in
// functions with no (or an unused) context.Context parameter.
package pos

import (
	"context"
	"sync"
)

type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	wg   sync.WaitGroup
}

func (q *queue) waitNoCtx() {
	q.mu.Lock()
	q.cond.Wait() // want `sync.Cond.Wait in waitNoCtx, which has no context.Context parameter`
	q.mu.Unlock()
}

func (q *queue) recvNoCtx() int {
	return <-q.ch // want `channel receive in recvNoCtx`
}

func (q *queue) sendNoCtx(v int) {
	q.ch <- v // want `channel send in sendNoCtx`
}

func (q *queue) joinNoCtx() {
	q.wg.Wait() // want `sync.WaitGroup.Wait in joinNoCtx`
}

func lockUnderLoop(q *queue, n int) {
	for i := 0; i < n; i++ {
		q.mu.Lock() // want `mutex acquired under a loop in lockUnderLoop`
		q.mu.Unlock()
	}
}

func drainNoCtx(q *queue) int {
	total := 0
	for v := range q.ch { // want `range over channel in drainNoCtx`
		total += v
	}
	return total
}

func selectNoCtx(a, b chan int) int {
	select { // want `blocking select in selectNoCtx`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func unusedCtx(ctx context.Context, q *queue) int { // want `unusedCtx blocks but never uses its context.Context parameter`
	return <-q.ch
}

// Package pos seeds typederr violations: ad-hoc errors returned
// across exported boundaries.
package pos

import (
	"errors"
	"fmt"
)

func Exported(fail bool) error {
	if fail {
		return errors.New("boom") // want `errors.New at a return of Exported`
	}
	return fmt.Errorf("op failed with code %d", 3) // want `fmt.Errorf without %w at a return of Exported`
}

type Widget struct{}

func (Widget) Do(n int) error {
	return fmt.Errorf("do(%d) failed", n) // want `fmt.Errorf without %w at a return of Do`
}

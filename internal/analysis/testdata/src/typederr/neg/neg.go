// Package neg holds the error shapes typederr must accept: declared
// sentinels, %w wrapping, unexported helpers, and reviewed
// suppressions.
package neg

import (
	"errors"
	"fmt"
)

// ErrBad is the declared sentinel form.
var ErrBad = errors.New("neg: bad input")

func Exported(fail bool) error {
	if fail {
		return fmt.Errorf("while validating: %w", ErrBad)
	}
	return nil
}

func Passthrough() error {
	return ErrBad
}

func internalHelper(n int) error { // unexported: not an API boundary
	return fmt.Errorf("transient %d", n)
}

func AllowedLeaf() error {
	return errors.New("one-shot diagnostic") //spkadd:allow(typederr) CLI-only leaf, never matched
}

// Package pos seeds statsatomic violations: raw reads and writes of
// annotated counter fields.
package pos

import "sync/atomic"

type Stats struct {
	// Ops counts operations.
	//spkadd:atomic
	Ops int64
	// Hits is typed atomically and needs no access checking.
	Hits atomic.Int64 //spkadd:atomic
	Name string
}

type Mislabeled struct {
	//spkadd:atomic
	Label string // want `annotated //spkadd:atomic but its type string is neither`
}

// RecordOp is a blessed helper.
func (s *Stats) RecordOp() { atomic.AddInt64(&s.Ops, 1) }

func Bump(s *Stats) {
	s.Ops++ // want `raw access to atomic counter field Ops`
}

func Read(s *Stats) int64 {
	return s.Ops // want `raw access to atomic counter field Ops`
}

func Reset(s *Stats) {
	s.Ops = 0 // want `raw access to atomic counter field Ops`
}

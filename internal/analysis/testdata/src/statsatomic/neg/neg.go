// Package neg holds the counter-access shapes statsatomic must
// accept: sync/atomic calls, Record* helpers, atomic-typed fields,
// and unannotated fields.
package neg

import "sync/atomic"

type Stats struct {
	//spkadd:atomic
	Ops int64
	// Total is safe by type.
	Total atomic.Int64 //spkadd:atomic
	// scratch is unannotated: plain access is fine.
	scratch int64
}

func Add(s *Stats, n int64) { atomic.AddInt64(&s.Ops, n) }

func Load(s *Stats) int64 { return atomic.LoadInt64(&s.Ops) }

// RecordBatch is a blessed helper and may touch the field directly
// (it serializes externally).
func (s *Stats) RecordBatch(n int64) { s.Ops += n }

func Touch(s *Stats) { s.Total.Add(1) }

func Scratch(s *Stats) int64 {
	s.scratch++
	return s.scratch
}

// Package neg holds allocation-free shapes the noalloc analyzer must
// accept: the self-extend append under the workspace capacity
// discipline, non-capturing closures, plain arithmetic loops, panics
// on the failure path, and unannotated functions doing whatever they
// like.
package neg

//spkadd:noalloc
func SelfAppend(dst []int, src []int) []int {
	for _, x := range src {
		dst = append(dst, x+1)
	}
	return dst
}

//spkadd:noalloc
func Accumulate(idx []int32, vals []float64, combine func(a, b float64) float64) float64 {
	var acc float64
	for i, r := range idx {
		if r < 0 {
			panic("negative row index") // failure path: exempt
		}
		if combine != nil {
			acc = combine(acc, vals[i])
		} else {
			acc += vals[i]
		}
	}
	return acc
}

//spkadd:noalloc
func WithStaticClosure(xs []int) int {
	double := func(v int) int { return v * 2 } // captures nothing
	total := 0
	for _, x := range xs {
		total += double(x)
	}
	return total
}

//spkadd:noalloc
func ArrayLiteral() int {
	weights := [4]int{1, 2, 3, 4} // array value: stack
	return weights[0] + weights[3]
}

// Unannotated: allocations are not this analyzer's business.
func Scratch(n int) []int {
	return make([]int, n)
}

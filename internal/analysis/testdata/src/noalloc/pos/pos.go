// Package pos seeds one violation per noalloc check.
package pos

func sink(v any) { _ = v }

func spin() {}

//spkadd:noalloc
func BadMake(n int) int {
	tmp := make([]int, n) // want `make allocates in noalloc function BadMake`
	return len(tmp)
}

//spkadd:noalloc
func BadNew() *int {
	return new(int) // want `new allocates in noalloc function BadNew`
}

//spkadd:noalloc
func BadAppend(dst, src []int) []int {
	out := append(dst, src...) // want `append outside the self-extend form`
	return out
}

//spkadd:noalloc
func BadDefer(release func()) {
	defer release() // want `defer in noalloc function BadDefer`
}

//spkadd:noalloc
func BadGo() {
	go spin() // want `go statement in noalloc function BadGo`
}

//spkadd:noalloc
func BadClosure(xs []int) int {
	total := 0
	add := func(x int) { total += x } // want `closure captures total`
	for _, x := range xs {
		add(x)
	}
	return total
}

//spkadd:noalloc
func BadBoxReturn(v int) any {
	return v // want `returned boxes int into interface`
}

//spkadd:noalloc
func BadBoxArg(x int) {
	sink(x) // want `passed boxes int into interface`
}

//spkadd:noalloc
func BadSliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

//spkadd:noalloc
func BadMapLit() map[int]int {
	return map[int]int{1: 1} // want `map literal allocates`
}

//spkadd:noalloc
func BadConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//spkadd:noalloc
func BadBytes(s string) []byte {
	return []byte(s) // want `conversion to \[\]byte allocates`
}

// Package pos seeds a lock hierarchy inversion: a level-1 (outer)
// lock acquired while a level-2 (inner) lock is held.
package pos

import "sync"

type pool struct {
	mu sync.RWMutex //spkadd:lockorder(1)
}

type shard struct {
	mu sync.Mutex //spkadd:lockorder(2)
}

func inverted(p *pool, s *shard) {
	s.mu.Lock()
	p.mu.RLock() // want `lock order inversion: acquiring level-1 lock mu while holding level-2 lock mu`
	p.mu.RUnlock()
	s.mu.Unlock()
}

func invertedWrite(p *pool, s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p.mu.Lock() // want `lock order inversion`
	p.mu.Unlock()
}

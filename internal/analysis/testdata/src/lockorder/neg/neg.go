// Package neg holds the lock sequences lockorder must accept:
// outermost-first nesting, disjoint critical sections, and re-acquiring
// the outer lock after fully releasing the inner one.
package neg

import "sync"

type pool struct {
	mu sync.RWMutex //spkadd:lockorder(1)
}

type shard struct {
	mu sync.Mutex //spkadd:lockorder(2)
}

func nested(p *pool, s *shard) {
	p.mu.RLock()
	s.mu.Lock()
	s.mu.Unlock()
	p.mu.RUnlock()
}

func sequential(p *pool, s *shard) {
	s.mu.Lock()
	s.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}

func releaseThenOuter(p *pool, s *shard) {
	p.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	p.mu.Unlock()
	p.mu.RLock()
	p.mu.RUnlock()
}

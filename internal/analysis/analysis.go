// Package analysis is a dependency-free skeleton of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package and reports Diagnostics through its Pass. The
// build environment is offline and the main spkadd module is
// stdlib-only by policy, so rather than vendoring x/tools this package
// reimplements the small slice of the model the repo's invariant suite
// needs — per-package syntax+types analysis with positional
// diagnostics — on top of go/ast, go/types and `go list -export`.
//
// The analyzers themselves live under passes/ and are driven either by
// cmd/spkadd-vet (multichecker over package patterns, plus the go vet
// -vettool unit protocol) or by analysistest in their own tests.
//
// Suppression: a finding whose position carries a
// `//spkadd:allow(check)` comment — trailing on the same line or alone
// on the line above — is dropped by the driver. Every suppression is a
// reviewed, greppable exemption; the checks' names are the Analyzer
// names.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //spkadd:allow(...) suppressions.
	Name string
	// Doc is the one-paragraph description printed by spkadd-vet -list.
	Doc string
	// Run inspects the package held by pass and reports findings via
	// pass.Report/Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver installs a wrapper that
	// applies //spkadd:allow suppression before recording.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, attributed to its analyzer by the
// driver.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Target bundles the loaded artifacts of one package. Both the
// go-list loader and the unitchecker config path produce Targets.
type Target struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Run applies every analyzer to the target and returns the surviving
// diagnostics in file/position order. Findings at positions covered by
// a //spkadd:allow(name) comment are dropped, as are findings inside
// _test.go files: the invariants guard production code paths (test
// helpers may block on WaitGroups or loop over locks freely — the
// race detector covers them).
func Run(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := buildAllows(t.Fset, t.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			if strings.HasSuffix(t.Fset.Position(d.Pos).Filename, "_test.go") {
				return
			}
			if allows.allowed(name, t.Fset, d.Pos) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, t.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := t.Fset.Position(diags[i].Pos), t.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowIndex maps file → line → set of allowed check names.
type allowIndex map[string]map[int]map[string]bool

func buildAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return idx
}

// parseAllow recognizes `//spkadd:allow(a)` and `//spkadd:allow(a,b)`,
// optionally followed by a free-text justification.
func parseAllow(comment string) ([]string, bool) {
	const prefix = "//spkadd:allow("
	if !strings.HasPrefix(comment, prefix) {
		return nil, false
	}
	rest := comment[len(prefix):]
	end := strings.IndexByte(rest, ')')
	if end < 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(rest[:end], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// allowed reports whether check is suppressed at pos: an allow comment
// on the same line, or alone on the line directly above.
func (idx allowIndex) allowed(check string, fset *token.FileSet, pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	lines := idx[p.Filename]
	if lines == nil {
		return false
	}
	return lines[p.Line][check] || lines[p.Line-1][check]
}

// HasDirective reports whether the comment group contains the exact
// directive comment (e.g. "//spkadd:noalloc"), optionally followed by
// a space-separated justification.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// FieldDirective scans a struct field's doc and trailing comments for
// a directive of the form prefix + "(arg)" and returns arg.
func FieldDirective(field *ast.Field, prefix string) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix+"(") {
				continue
			}
			rest := c.Text[len(prefix)+1:]
			if end := strings.IndexByte(rest, ')'); end >= 0 {
				return strings.TrimSpace(rest[:end]), true
			}
		}
	}
	return "", false
}

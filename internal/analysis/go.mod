module spkadd/internal/analysis

go 1.24

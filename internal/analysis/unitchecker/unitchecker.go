// Package unitchecker lets spkadd-vet run under `go vet
// -vettool=$(which spkadd-vet)`: the go command analyzes one package
// per invocation, handing the tool a JSON config file (*.cfg) naming
// the source files and the compiled export data of every dependency.
// This mirrors x/tools' go/analysis/unitchecker with the fact system
// omitted — none of the repo's analyzers exchange facts — so the vetx
// output the go command expects is written as an empty placeholder.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"spkadd/internal/analysis"
	"spkadd/internal/analysis/load"
)

// Config is the JSON schema of the file the go command passes to
// -vettool tools, one per package. Field set and meaning follow
// cmd/go/internal/work's vetConfig.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run processes one vet config file: type-check the unit, run the
// analyzers, print findings to stderr in file:line:col form, and
// return the exit code (0 clean, 1 operational error, 2 findings).
// The vetx output file is always written so the go command sees the
// action complete.
func Run(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spkadd-vet: %v\n", err)
		return 1
	}
	// Facts are not used; the output file's existence is the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "spkadd-vet: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, fset, err := Analyze(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "spkadd-vet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}

// Analyze type-checks the unit described by cfg against its compiled
// dependencies and applies the analyzers, returning the diagnostics
// and the fileset that renders their positions.
func Analyze(cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp, Sizes: load.Sizes()}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	diags, err := analysis.Run(&analysis.Target{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, analyzers)
	return diags, fset, err
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

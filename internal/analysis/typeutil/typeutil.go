// Package typeutil holds the small go/types helpers shared by the
// invariant analyzers.
package typeutil

import (
	"go/ast"
	"go/types"
)

// Callee resolves the object a call expression invokes: a *types.Func
// for functions and methods, a *types.Builtin for builtins, nil for
// indirect calls through function values and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.F.
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether the call invokes the named function from
// the package with the given import path (e.g. "sync/atomic",
// "AddInt64").
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := Callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// IsBuiltin reports whether the call invokes the named builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// MethodOn reports whether the call is a method call named name whose
// receiver's base type is the named type typeName from package
// pkgPath. Pointer receivers are unwrapped.
func MethodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	named := BaseNamed(selection.Recv())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// BaseNamed unwraps pointers and aliases down to the *types.Named
// beneath t, or nil.
func BaseNamed(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamedType reports whether t (through pointers and aliases) is the
// named type pkgPath.typeName.
func IsNamedType(t types.Type, pkgPath, typeName string) bool {
	n := BaseNamed(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	return IsNamedType(t, "context", "Context")
}

// SelectedField resolves a selector expression to the struct field it
// reads, or nil when it is not a field selection.
func SelectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	f, _ := selection.Obj().(*types.Var)
	return f
}

// Package load turns package patterns into type-checked analysis
// targets using only the go command and the standard library: `go list
// -export -deps -json` supplies the file lists and compiled export
// data, the targets themselves are parsed from source, and their
// imports — stdlib and intra-module alike — are satisfied from the
// export files through go/importer's gc lookup hook. This is the same
// shape as x/tools' go/packages LoadAllSyntax for the one-module,
// no-cgo, no-vendor case the spkadd repo is.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"spkadd/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	Name       string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// golist runs the go command in dir and decodes its JSON stream.
func golist(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Dir,Export,Standard,DepOnly,Name,GoFiles,ImportMap,Error"

// ExportIndex maps import paths to compiled export data files, as
// reported by `go list -export`. It satisfies the lookup contract of
// importer.ForCompiler("gc", ...).
type ExportIndex map[string]string

// Lookup opens the export data for path.
func (x ExportIndex) Lookup(path string) (io.ReadCloser, error) {
	f, ok := x[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// StdExports builds an ExportIndex covering the named packages and
// their dependencies — used by tests that type-check fixture sources
// importing only the standard library. dir must lie inside some module
// so the go command has a build context.
func StdExports(dir string, pkgs ...string) (ExportIndex, error) {
	args := append([]string{"list", "-export", "-deps", listFields}, pkgs...)
	listed, err := golist(dir, args...)
	if err != nil {
		return nil, err
	}
	idx := ExportIndex{}
	for _, p := range listed {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
	}
	return idx, nil
}

// Sizes returns the gc sizes for the host, matching what the compiler
// itself would use.
func Sizes() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// Packages loads, parses and type-checks the packages matching
// patterns, resolving their imports from compiled export data. dir is
// the directory the go command runs in (the module root or below).
// Packages that are only dependencies of the matched set are loaded as
// export data, never as syntax.
func Packages(dir string, patterns []string) ([]*analysis.Target, error) {
	args := append([]string{"list", "-export", "-deps", listFields}, patterns...)
	listed, err := golist(dir, args...)
	if err != nil {
		return nil, err
	}

	exports := ExportIndex{}
	importMap := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			if p.Error != nil {
				return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		return exports.Lookup(path)
	})

	var out []*analysis.Target
	for _, p := range targets {
		t, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*analysis.Target, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    Sizes(),
	}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	return &analysis.Target{
		ImportPath: p.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// Dir loads a single directory of Go files as one package with the
// given import path, type-checking against the provided export index
// plus intra-fixture imports are not supported — fixtures are single
// packages. Used by analysistest.
func Dir(dir, importPath string, exports ExportIndex) (*analysis.Target, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		return exports.Lookup(path)
	})
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp, Sizes: Sizes()}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &analysis.Target{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// Package escape turns the compiler's escape-analysis diagnostics
// (`go build -gcflags=-m`) into a pass/fail gate for the
// //spkadd:noalloc hot paths: inside an annotated function, nothing
// may escape to the heap unless a committed allowlist entry vouches
// for it. This is the compile-time twin of the CI allocation gate —
// BenchmarkAdderReuse* proves a warmed Adder does 0 allocs/op at
// runtime; the audit proves the compiler didn't quietly move a
// hot-path local to the heap, before any benchmark runs and for every
// annotated function, not just the ones a benchmark exercises.
//
// The audit is line-based and Go-version-pinned (CI runs the same
// toolchain as go.mod): it keeps only hard escape messages ("escapes
// to heap", "moved to heap"), attributes them to annotated function
// ranges by position, and subtracts allowlist entries of the form
//
//	file.go:FuncName: message substring   # justification
//
// matched by file basename, enclosing function, and substring.
package escape

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Diag is one compiler diagnostic with a position.
type Diag struct {
	File    string // as printed by the compiler, relative to the build dir
	Line    int
	Col     int
	Message string
}

// String formats the diagnostic the way the compiler printed it.
func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", d.File, d.Line, d.Col, d.Message)
}

var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeMessage reports whether msg is a hard heap escape (as opposed
// to inlining chatter or parameter leak notes, which do not by
// themselves allocate at the annotated site).
func escapeMessage(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// ParseM reads `go build -gcflags=-m` output and returns the heap
// escape diagnostics, dropping inline/leak chatter and the
// `# package` section headers.
func ParseM(r io.Reader) ([]Diag, error) {
	var out []Diag
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if !escapeMessage(m[4]) {
			continue
		}
		ln, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("bad line number in %q: %w", line, err)
		}
		col, err := strconv.Atoi(m[3])
		if err != nil {
			return nil, fmt.Errorf("bad column in %q: %w", line, err)
		}
		out = append(out, Diag{File: m[1], Line: ln, Col: col, Message: m[4]})
	}
	return out, sc.Err()
}

// Func is one annotated noalloc function and its source extent.
type Func struct {
	File      string // path relative to root, forward slashes
	Name      string // receiver-qualified when a method, e.g. (*Table).AddWith
	StartLine int
	EndLine   int
}

// Directive is the annotation the audit gates on; it must match
// passes/noalloc.
const Directive = "//spkadd:noalloc"

// AnnotatedFuncs walks every non-test .go file under root (skipping
// testdata and hidden directories, and any directory with its own
// go.mod — nested modules are not part of this build) and returns the
// functions carrying the noalloc directive.
func AnnotatedFuncs(root string) ([]Func, error) {
	var funcs []Func
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil
			}
			name := d.Name()
			if strings.HasPrefix(name, ".") || name == "testdata" {
				return filepath.SkipDir
			}
			if _, statErr := os.Stat(filepath.Join(path, "go.mod")); statErr == nil {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			if !hasDirective(fd.Doc) {
				continue
			}
			funcs = append(funcs, Func{
				File:      filepath.ToSlash(rel),
				Name:      funcName(fd),
				StartLine: fset.Position(fd.Pos()).Line,
				EndLine:   fset.Position(fd.End()).Line,
			})
		}
		return nil
	})
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].File != funcs[j].File {
			return funcs[i].File < funcs[j].File
		}
		return funcs[i].StartLine < funcs[j].StartLine
	})
	return funcs, err
}

func hasDirective(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	var recv string
	switch x := t.(type) {
	case *ast.StarExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			recv = "(*" + id.Name + ")"
		}
	case *ast.Ident:
		recv = x.Name
	}
	if recv == "" {
		return fd.Name.Name
	}
	return recv + "." + fd.Name.Name
}

// AllowEntry vouches for one known-benign escape inside an annotated
// function.
type AllowEntry struct {
	File   string // basename or relative path of the source file
	Func   string // function name as produced by funcName
	Substr string // substring of the compiler message
	Line   int    // allowlist line, for reporting stale entries
}

// ParseAllowlist reads entries of the form
//
//	file.go:FuncName: message substring
//
// ignoring blank lines and #-comments (inline #-comments are stripped).
func ParseAllowlist(r io.Reader) ([]AllowEntry, error) {
	var entries []AllowEntry
	sc := bufio.NewScanner(r)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("allowlist line %d: want \"file.go:Func: message substring\", got %q", n, line)
		}
		e := AllowEntry{
			File:   strings.TrimSpace(parts[0]),
			Func:   strings.TrimSpace(parts[1]),
			Substr: strings.TrimSpace(parts[2]),
			Line:   n,
		}
		if e.File == "" || e.Func == "" || e.Substr == "" {
			return nil, fmt.Errorf("allowlist line %d: empty field in %q", n, line)
		}
		entries = append(entries, e)
	}
	return entries, sc.Err()
}

// Result is the audit outcome.
type Result struct {
	// Violations are escapes inside annotated functions not covered by
	// the allowlist, formatted for display.
	Violations []string
	// Stale are allowlist entries that matched nothing — candidates
	// for deletion, reported so the list cannot rot.
	Stale []string
	// Audited counts the annotated functions examined.
	Audited int
}

// Audit attributes escape diagnostics to annotated functions and
// subtracts the allowlist.
func Audit(diags []Diag, funcs []Func, allow []AllowEntry) Result {
	used := make([]bool, len(allow))
	var violations []string
	for _, d := range diags {
		fn, ok := enclosing(funcs, d)
		if !ok {
			continue
		}
		allowed := false
		for i, a := range allow {
			if matchFile(a.File, d.File) && a.Func == fn.Name && strings.Contains(d.Message, a.Substr) {
				used[i] = true
				allowed = true
			}
		}
		if !allowed {
			violations = append(violations, fmt.Sprintf("%s (in noalloc function %s)", d, fn.Name))
		}
	}
	var stale []string
	for i, a := range allow {
		if !used[i] {
			stale = append(stale, fmt.Sprintf("line %d: %s:%s: %s", a.Line, a.File, a.Func, a.Substr))
		}
	}
	return Result{Violations: violations, Stale: stale, Audited: len(funcs)}
}

// enclosing finds the annotated function containing the diagnostic,
// matching by file suffix so compiler-relative and root-relative paths
// agree.
func enclosing(funcs []Func, d Diag) (Func, bool) {
	for _, f := range funcs {
		if d.Line < f.StartLine || d.Line > f.EndLine {
			continue
		}
		if matchFile(f.File, d.File) {
			return f, true
		}
	}
	return Func{}, false
}

// matchFile compares a recorded path against a compiler-printed path:
// equal, or one is a path suffix of the other at a component boundary.
func matchFile(recorded, printed string) bool {
	recorded = filepath.ToSlash(recorded)
	printed = filepath.ToSlash(printed)
	if recorded == printed {
		return true
	}
	return strings.HasSuffix(printed, "/"+recorded) ||
		strings.HasSuffix(recorded, "/"+printed) ||
		filepath.Base(recorded) == printed ||
		filepath.Base(printed) == recorded
}

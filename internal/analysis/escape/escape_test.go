package escape

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capturedM is verbatim-shaped `go build -gcflags=-m` output: section
// headers, inlining chatter, parameter leak notes, and the two hard
// escape forms the audit keeps.
const capturedM = `# spkadd/internal/kheap
internal/kheap/kheap.go:35:6: can inline New
internal/kheap/kheap.go:36:13: make([]Entry, 0, k) escapes to heap
# spkadd/internal/core
internal/core/fused.go:101:6: can inline (*Workspace).resetArena
internal/core/fused.go:120:15: leaking param: ws
internal/core/fused.go:133:12: new(arenaChunk) escapes to heap
internal/core/fused.go:140:9: moved to heap: colBound
internal/core/kernels.go:77:21: combine does not escape
not a diagnostic line
`

func TestParseM(t *testing.T) {
	diags, err := ParseM(strings.NewReader(capturedM))
	if err != nil {
		t.Fatal(err)
	}
	want := []Diag{
		{File: "internal/kheap/kheap.go", Line: 36, Col: 13, Message: "make([]Entry, 0, k) escapes to heap"},
		{File: "internal/core/fused.go", Line: 133, Col: 12, Message: "new(arenaChunk) escapes to heap"},
		{File: "internal/core/fused.go", Line: 140, Col: 9, Message: "moved to heap: colBound"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, len(want))
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Errorf("diag %d: got %+v, want %+v", i, diags[i], want[i])
		}
	}
}

func TestAuditAttributionAndAllowlist(t *testing.T) {
	funcs := []Func{
		{File: "internal/core/fused.go", Name: "(*Workspace).emitFused", StartLine: 130, EndLine: 150},
		{File: "internal/kheap/kheap.go", Name: "New", StartLine: 35, EndLine: 40},
	}
	diags := []Diag{
		// Inside emitFused, allowlisted.
		{File: "internal/core/fused.go", Line: 133, Col: 12, Message: "new(arenaChunk) escapes to heap"},
		// Inside emitFused, not allowlisted: violation.
		{File: "internal/core/fused.go", Line: 140, Col: 9, Message: "moved to heap: colBound"},
		// Inside New's range but a different file: ignored.
		{File: "internal/core/other.go", Line: 36, Col: 1, Message: "x escapes to heap"},
		// Outside any annotated range: ignored.
		{File: "internal/core/fused.go", Line: 200, Col: 1, Message: "y escapes to heap"},
	}
	allow, err := ParseAllowlist(strings.NewReader(`
# arena growth path, amortized by chunk reuse
fused.go:(*Workspace).emitFused: new(arenaChunk) escapes to heap
kheap.go:New: never happens   # stale entry
`))
	if err != nil {
		t.Fatal(err)
	}
	res := Audit(diags, funcs, allow)
	if res.Audited != 2 {
		t.Errorf("Audited = %d, want 2", res.Audited)
	}
	if len(res.Violations) != 1 || !strings.Contains(res.Violations[0], "moved to heap: colBound") {
		t.Errorf("violations = %v, want exactly the colBound escape", res.Violations)
	}
	if !strings.Contains(res.Violations[0], "(*Workspace).emitFused") {
		t.Errorf("violation not attributed to its function: %v", res.Violations[0])
	}
	if len(res.Stale) != 1 || !strings.Contains(res.Stale[0], "never happens") {
		t.Errorf("stale = %v, want exactly the unused kheap entry", res.Stale)
	}
}

func TestParseAllowlistRejectsMalformed(t *testing.T) {
	if _, err := ParseAllowlist(strings.NewReader("justonefield\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ParseAllowlist(strings.NewReader("a.go: : msg\n")); err == nil {
		t.Error("empty func field accepted")
	}
}

func TestAnnotatedFuncs(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, filepath.Join(root, "a.go"), `package a

//spkadd:noalloc
func Hot(x int) int {
	return x * 2
}

type T struct{}

// AddWith is the kernel.
//
//spkadd:noalloc hot accumulate loop
func (t *T) AddWith(v float64) float64 {
	return v + 1
}

func cold() {}
`)
	mustWrite(t, filepath.Join(root, "a_test.go"), `package a

//spkadd:noalloc
func TestishNotScanned() {}
`)
	nested := filepath.Join(root, "tool")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, filepath.Join(nested, "go.mod"), "module tool\n")
	mustWrite(t, filepath.Join(nested, "b.go"), `package b

//spkadd:noalloc
func OtherModule() {}
`)

	funcs, err := AnnotatedFuncs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 2 {
		t.Fatalf("got %d funcs %v, want 2", len(funcs), funcs)
	}
	if funcs[0].Name != "Hot" || funcs[0].File != "a.go" || funcs[0].StartLine >= funcs[0].EndLine {
		t.Errorf("funcs[0] = %+v", funcs[0])
	}
	if funcs[1].Name != "(*T).AddWith" {
		t.Errorf("funcs[1].Name = %q, want (*T).AddWith", funcs[1].Name)
	}
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"spkadd/internal/matrix"
)

func sampleCOO() *matrix.COO {
	c := &matrix.COO{Rows: 8, Cols: 5}
	c.Append(0, 0, 1.5)
	c.Append(7, 4, -2.25)
	c.Append(3, 2, 0.125)
	c.Append(3, 2, 1) // duplicate: legal, sums on ToCSC
	c.Append(1, 4, math.Inf(1))
	return c
}

// TestWireRoundTrip: encode → decode is the identity on entries,
// including duplicates and non-finite values, and the decoded COO
// assembles to the same CSC as the original.
func TestWireRoundTrip(t *testing.T) {
	c := sampleCOO()
	frame := EncodeDelta(c)
	if len(frame) != wireHeaderLen+len(c.Entries)*wireEntryLen {
		t.Fatalf("frame length = %d, want %d", len(frame), wireHeaderLen+len(c.Entries)*wireEntryLen)
	}
	got, err := DecodeDelta(frame, 0)
	if err != nil {
		t.Fatalf("DecodeDelta: %v", err)
	}
	if got.Rows != c.Rows || got.Cols != c.Cols || len(got.Entries) != len(c.Entries) {
		t.Fatalf("decoded %dx%d/%d entries, want %dx%d/%d",
			got.Rows, got.Cols, len(got.Entries), c.Rows, c.Cols, len(c.Entries))
	}
	for i := range c.Entries {
		if got.Entries[i] != c.Entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got.Entries[i], c.Entries[i])
		}
	}
	if !got.ToCSC().Equal(c.ToCSC()) {
		t.Error("decoded delta assembles to a different CSC")
	}
}

// TestWireEncodeCSC: a CSC snapshot encodes to a frame that decodes
// back to the same matrix.
func TestWireEncodeCSC(t *testing.T) {
	a := sampleCOO().ToCSC()
	got, err := DecodeDelta(EncodeCSC(a), 0)
	if err != nil {
		t.Fatalf("DecodeDelta(EncodeCSC): %v", err)
	}
	if !got.ToCSC().Equal(a) {
		t.Error("EncodeCSC round trip changed the matrix")
	}
}

// TestWireEmptyDelta: zero entries is a legal frame.
func TestWireEmptyDelta(t *testing.T) {
	c := &matrix.COO{Rows: 3, Cols: 3}
	got, err := DecodeDelta(EncodeDelta(c), 0)
	if err != nil {
		t.Fatalf("empty delta: %v", err)
	}
	if got.NNZ() != 0 || got.Rows != 3 || got.Cols != 3 {
		t.Fatalf("empty delta decoded as %dx%d/%d", got.Rows, got.Cols, got.NNZ())
	}
}

// corrupt returns a copy of frame with buf[off:off+4] overwritten.
func corrupt(frame []byte, off int, v uint32) []byte {
	out := bytes.Clone(frame)
	binary.LittleEndian.PutUint32(out[off:], v)
	return out
}

// corruptByte returns a copy of frame with the single byte at off
// overwritten — for the one-byte dtype field.
func corruptByte(frame []byte, off int, v byte) []byte {
	out := bytes.Clone(frame)
	out[off] = v
	return out
}

// TestWireDecodeErrors: every malformed-frame class returns its typed
// error, and all of them wrap ErrWire.
func TestWireDecodeErrors(t *testing.T) {
	good := EncodeDelta(sampleCOO())
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrWireTruncated},
		{"short header", good[:wireHeaderLen-1], ErrWireTruncated},
		{"bad magic", corrupt(good, 0, 0xDEADBEEF), ErrWireMagic},
		{"bad version", corrupt(good, 4, 2), ErrWireVersion},
		{"zero rows", corrupt(good, 8, 0), ErrWireDims},
		{"zero cols", corrupt(good, 12, 0), ErrWireDims},
		{"bad dtype", corruptByte(good, 20, 1), ErrWireDtype},
		{"dtype high bit", corruptByte(good, 20, 0xFF), ErrWireDtype},
		{"rows over int32", corrupt(good, 8, 1<<31), ErrWireDims},
		{"truncated body", good[:len(good)-1], ErrWireTruncated},
		{"trailing bytes", append(bytes.Clone(good), 0), ErrWireTrailing},
		{"nnz lies high", corrupt(good, 16, 1<<30), ErrWireTruncated},
		{"row out of range", corrupt(good, wireHeaderLen, 99), ErrWireRange},
		{"col out of range", corrupt(good, wireHeaderLen+4, 99), ErrWireRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := DecodeDelta(tc.frame, 0)
			if c != nil {
				t.Fatal("malformed frame returned a matrix")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrWire) {
				t.Fatalf("err = %v does not wrap ErrWire", err)
			}
		})
	}
}

// TestWireEntryCap: the maxNNZ cap classifies as ErrWireTooLarge (the
// 413, not a 400) and is checked before the body-length arithmetic so
// a capped decoder refuses early.
func TestWireEntryCap(t *testing.T) {
	good := EncodeDelta(sampleCOO())
	if _, err := DecodeDelta(good, len(sampleCOO().Entries)); err != nil {
		t.Fatalf("frame at the cap: %v", err)
	}
	_, err := DecodeDelta(good, len(sampleCOO().Entries)-1)
	if !errors.Is(err, ErrWireTooLarge) {
		t.Fatalf("over-cap err = %v, want ErrWireTooLarge", err)
	}
	// A tiny frame whose header claims 2^28 entries must fail without
	// allocating them: truncation is detected by arithmetic first.
	lie := corrupt(good[:wireHeaderLen], 16, 1<<28)
	if _, err := DecodeDelta(lie, 0); !errors.Is(err, ErrWireTruncated) {
		t.Fatalf("lying header err = %v, want ErrWireTruncated", err)
	}
}

// FuzzDecodeDelta: the decoder must return a typed ErrWire error or a
// valid COO — never panic, and never allocate entries beyond what the
// actual frame length supports (enforced structurally: the entry
// slice is sized from nnz only after nnz*16 == len(body) holds).
func FuzzDecodeDelta(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeDelta(sampleCOO()))
	f.Add(EncodeDelta(&matrix.COO{Rows: 1, Cols: 1}))
	f.Add(corrupt(EncodeDelta(sampleCOO()), 16, 1<<30))
	f.Add(corruptByte(EncodeDelta(sampleCOO()), 20, 1))
	f.Add(corruptByte(EncodeDelta(sampleCOO()), 20, 0xFF))
	f.Add(bytes.Repeat([]byte{0x53}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeDelta(data, 1<<16)
		if err != nil {
			if c != nil {
				t.Fatal("error return carries a matrix")
			}
			if !errors.Is(err, ErrWire) {
				t.Fatalf("err = %v does not wrap ErrWire", err)
			}
			return
		}
		// Success: the COO must be internally consistent and bounded
		// by the frame that produced it.
		if c.Rows <= 0 || c.Cols <= 0 {
			t.Fatalf("accepted dims %dx%d", c.Rows, c.Cols)
		}
		if want := (len(data) - wireHeaderLen) / wireEntryLen; c.NNZ() != want {
			t.Fatalf("accepted %d entries from a frame holding %d", c.NNZ(), want)
		}
		for i, e := range c.Entries {
			if int(e.Row) >= c.Rows || int(e.Col) >= c.Cols || e.Row < 0 || e.Col < 0 {
				t.Fatalf("entry %d (%d,%d) outside %dx%d", i, e.Row, e.Col, c.Rows, c.Cols)
			}
		}
		// And it must re-encode to the identical frame (canonical form).
		if !bytes.Equal(EncodeDelta(c), data) {
			t.Fatal("decode → encode is not the identity on accepted frames")
		}
	})
}

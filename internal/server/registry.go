package server

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spkadd/internal/core"
)

// The tenant registry is lazy: a tenant springs into existence on its
// first delta (with that delta's dimensions) and is evicted after
// sitting idle past the TTL, so the daemon's footprint tracks the
// working set instead of the historical tenant population. A hard
// tenant-count cap bounds the worst case; when the cap is hit the
// registry first tries to evict an expired tenant and only then
// refuses.
//
// Each tenant owns one core.Pool and one OpStats, plus the serving
// counters the metrics endpoint exports. Tenants are numbered in
// creation order; the ordinal, scaled by faultZoneStride, becomes the
// pool's FaultZone, so a chaos schedule can target exactly one
// tenant's shards in a multi-tenant process (see internal/faults).

// faultZoneStride separates tenants' fault-injection key ranges. It
// only needs to exceed the per-pool shard count; 2^20 leaves room for
// any plausible configuration.
const faultZoneStride = 1 << 20

// tenantNameRE validates tenant names: short, path- and label-safe.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// Registry errors, mapped to status codes by the handler layer.
var (
	// ErrTenantName: the name fails tenantNameRE.
	ErrTenantName = errors.New("spkadd/server: invalid tenant name")
	// ErrTenantCap: the registry is full and nothing was evictable.
	ErrTenantCap = errors.New("spkadd/server: tenant capacity reached")
	// ErrTenantDims: a delta's dimensions disagree with the tenant's.
	ErrTenantDims = errors.New("spkadd/server: delta dimensions disagree with tenant")
	// ErrTenantUnknown: a read-only endpoint named a tenant that does
	// not exist (reads never create tenants).
	ErrTenantUnknown = errors.New("spkadd/server: unknown tenant")
	// ErrDraining: the server is draining and accepts no new work.
	ErrDraining = errors.New("spkadd/server: draining")
)

// tenant is one name's aggregation state plus serving counters.
type tenant struct {
	name       string
	id         int64
	rows, cols int
	pool       *core.Pool
	stats      *core.OpStats
	created    time.Time

	lastUsed atomic.Int64 //spkadd:atomic unix nanos of the last push or sum

	// Serving counters for /metrics.
	pushes      atomic.Int64 //spkadd:atomic
	pushEntries atomic.Int64 //spkadd:atomic
	sums        atomic.Int64 //spkadd:atomic
	rejected    atomic.Int64 //spkadd:atomic pushes refused: backpressure, poisoned, draining
}

func (t *tenant) touch() { t.lastUsed.Store(time.Now().UnixNano()) }

func (t *tenant) idleSince() time.Time { return time.Unix(0, t.lastUsed.Load()) }

// health summarizes the tenant's pool: the worst shard state and the
// full per-shard detail.
func (t *tenant) health() (core.HealthState, []core.ShardHealth) {
	hs := t.pool.Health()
	worst := core.HealthOK
	for _, h := range hs {
		if h.State > worst {
			worst = h.State
		}
	}
	return worst, hs
}

// registry is the lazy tenant map.
type registry struct {
	cfg Config

	mu      sync.RWMutex
	tenants map[string]*tenant
	nextID  int64
	closed  bool

	evictions atomic.Int64 //spkadd:atomic
}

func newRegistry(cfg Config) *registry {
	return &registry{cfg: cfg, tenants: make(map[string]*tenant)}
}

// get returns an existing tenant, or nil.
func (r *registry) get(name string) *tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants[name]
}

// getOrCreate returns the named tenant, creating it with the given
// dimensions on first contact. Existing tenants' dimensions must
// match. When the registry is at its cap, one expired tenant is
// evicted to make room; with nothing expired the create fails with
// ErrTenantCap.
func (r *registry) getOrCreate(name string, rows, cols int) (*tenant, error) {
	if t := r.get(name); t != nil {
		if t.rows != rows || t.cols != cols {
			return nil, fmt.Errorf("%w: %s is %dx%d, delta is %dx%d",
				ErrTenantDims, name, t.rows, t.cols, rows, cols)
		}
		return t, nil
	}
	if !tenantNameRE.MatchString(name) {
		return nil, fmt.Errorf("%w: %q", ErrTenantName, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrDraining
	}
	if t := r.tenants[name]; t != nil {
		if t.rows != rows || t.cols != cols {
			return nil, fmt.Errorf("%w: %s is %dx%d, delta is %dx%d",
				ErrTenantDims, name, t.rows, t.cols, rows, cols)
		}
		return t, nil
	}
	if len(r.tenants) >= r.cfg.MaxTenants && !r.evictOneLocked() {
		return nil, fmt.Errorf("%w: %d live tenants", ErrTenantCap, len(r.tenants))
	}
	t := &tenant{
		name: name, id: r.nextID, rows: rows, cols: cols,
		stats:   &core.OpStats{},
		created: time.Now(),
	}
	r.nextID++
	popt := r.cfg.Pool
	popt.FaultZone = t.id * faultZoneStride
	popt.Add.Stats = t.stats
	if r.cfg.Tuner != nil {
		// Every tenant feeds the one process-wide cost table: the
		// planner's workload signature keys by shape, not tenant, so
		// tenants producing similar deltas share what each learns.
		popt.Add.Tuner = r.cfg.Tuner
	}
	t.pool = core.NewPool(rows, cols, popt)
	t.touch()
	r.tenants[name] = t
	return t, nil
}

// list returns the tenants sorted by name (a stable order for
// metrics, health reports and tests).
func (r *registry) list() []*tenant {
	r.mu.RLock()
	ts := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.RUnlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	return ts
}

// evictOneLocked removes the longest-idle expired tenant, closing its
// pool in the background (eviction must not block a push on a drain).
// Returns whether a slot was freed. Callers hold mu.
func (r *registry) evictOneLocked() bool {
	if r.cfg.IdleTTL <= 0 {
		return false
	}
	cutoff := time.Now().Add(-r.cfg.IdleTTL)
	var victim *tenant
	for _, t := range r.tenants {
		if t.idleSince().Before(cutoff) && (victim == nil || t.idleSince().Before(victim.idleSince())) {
			victim = t
		}
	}
	if victim == nil {
		return false
	}
	delete(r.tenants, victim.name)
	r.evictions.Add(1)
	go victim.pool.Close()
	return true
}

// sweep evicts every tenant idle past the TTL; the janitor calls it
// periodically. Returns how many were evicted.
func (r *registry) sweep() int {
	if r.cfg.IdleTTL <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-r.cfg.IdleTTL)
	r.mu.Lock()
	var victims []*tenant
	for name, t := range r.tenants {
		if t.idleSince().Before(cutoff) {
			delete(r.tenants, name)
			victims = append(victims, t)
		}
	}
	r.mu.Unlock()
	for _, t := range victims {
		r.evictions.Add(1)
		t.pool.Close()
	}
	return len(victims)
}

// remove detaches the named tenant so its pool can be drained by the
// caller; nil if absent.
func (r *registry) remove(name string) *tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[name]
	delete(r.tenants, name)
	return t
}

// close marks the registry closed (no new tenants) and returns the
// remaining tenants, leaving the map intact so health and metrics
// endpoints keep answering during the drain.
func (r *registry) close() []*tenant {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.list()
}

// drainTenant closes one tenant's pool under ctx and classifies the
// outcome for the drain report.
func drainTenant(ctx context.Context, t *tenant) tenantDrain {
	d := tenantDrain{Tenant: t.name}
	err := t.pool.CloseContext(ctx)
	if err != nil && (errors.Is(err, core.ErrCanceled) || errors.Is(err, core.ErrDeadline)) {
		// The deadline fired before the reducers finished: report the
		// shards still holding queued work.
		d.Abandoned = true
		for _, h := range t.pool.Health() {
			if h.Pending > 0 {
				d.Stragglers = append(d.Stragglers, h)
			}
		}
		return d
	}
	d.Err = err // sticky shard errors (degraded/poisoned), or nil
	return d
}

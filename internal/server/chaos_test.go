package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/faults"
	"spkadd/internal/faults/leakcheck"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// The server chaos suite: internal/faults schedules armed inside a
// live HTTP server, asserting the daemon-level degradation contracts
// that DESIGN.md §12 promises — poisoning one tenant's shard leaves
// every other tenant bit-exact and serving, backpressure turns floods
// into 429s rather than wedged connections, and drain terminates under
// its deadline whether or not the pool cooperates. All tests run under
// leakcheck: whatever the chaos schedule does, no goroutine survives
// the drain.

// httpPush POSTs one frame over a real connection; returns the status
// and body.
func httpPush(t *testing.T, client *http.Client, base, tenant string, frame []byte) (int, string) {
	t.Helper()
	resp, err := client.Post(base+pushURL(tenant), "application/x-spkadd-delta", bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("push %s: %v", tenant, err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, body.String()
}

// httpGet GETs a path over a real connection.
func httpGet(t *testing.T, client *http.Client, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, body.Bytes()
}

// liveServer starts a Server on a real listener and tears everything
// down in an order leakcheck accepts: drain the tenants, close the
// listener, drop idle client connections.
func liveServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *http.Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	client := ts.Client()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
		client.CloseIdleConnections()
	})
	return s, ts, client
}

// TestChaosServerPoisonedTenantIsolation: a PanicInKernel schedule
// keyed to ONE tenant's shard zone poisons exactly that tenant.
// Readiness flips and the tenant refuses ingest, while every other
// tenant keeps absorbing deltas and serves bit-exact sums, and the
// drain still completes cleanly.
func TestChaosServerPoisonedTenantIsolation(t *testing.T) {
	leakcheck.Begin(t)
	s, ts, client := liveServer(t, Config{
		QueueWait: 2 * time.Second,
		SumWait:   5 * time.Second,
		Pool:      core.PoolOptions{Shards: 2},
		Logf:      t.Logf,
	})
	const rows, cols, d = 128, 16, 4
	tenants := []string{"alpha", "beta", "gamma"} // creation order fixes ids 0,1,2
	accepted := map[string][]*matrix.CSC{}
	push := func(name string, seed uint64) {
		t.Helper()
		a := generate.ER(generate.Opts{Rows: rows, Cols: cols, NNZPerCol: d, Seed: seed})
		code, body := httpPush(t, client, ts.URL, name, EncodeCSC(a))
		if code != http.StatusAccepted {
			t.Fatalf("push %s = %d: %s", name, code, body)
		}
		accepted[name] = append(accepted[name], a)
	}
	for i, name := range tenants {
		push(name, uint64(i+1))
	}

	// Poison beta (tenant id 1): its shard 0 reduction sites report
	// key id*faultZoneStride + 1. One kernel panic, then the schedule
	// is spent — the blast radius test is that ONLY beta notices.
	defer faults.Activate(faults.New(31, faults.Rule{
		Point: faults.PanicInKernel, Key: faultZoneStride + 1, Count: 1,
	}))()
	for i, name := range tenants {
		push(name, uint64(10+i))
	}
	// Beta's snapshot forces the reduction that trips the panic; the
	// response still serves (stitched last-good sums) with a Warning.
	code, hdr, _ := httpGet(t, client, ts.URL+"/v1/tenants/beta/sum?entries=false")
	if code != http.StatusOK {
		t.Fatalf("beta sum = %d, want 200 (poisoned tenants still serve snapshots)", code)
	}
	if len(hdr.Values("Warning")) == 0 {
		t.Error("poisoned beta snapshot carries no Warning header")
	}

	// Readiness flips: a poisoned tenant means this instance should
	// stop receiving routed floods.
	code, _, body := httpGet(t, client, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), `"beta"`) {
		t.Errorf("readyz = %d %s, want 503 naming beta", code, body)
	}
	// Liveness does not: the process is healthy, one tenant is not.
	if code, _, body := httpGet(t, client, ts.URL+"/healthz"); code != http.StatusOK ||
		!strings.Contains(string(body), `"status": "poisoned"`) {
		t.Errorf("healthz = %d %s, want 200 with poisoned status", code, body)
	}

	// Beta refuses further ingest with 503 and per-shard detail.
	a := generate.ER(generate.Opts{Rows: rows, Cols: cols, NNZPerCol: d, Seed: 99})
	code, body2 := httpPush(t, client, ts.URL, "beta", EncodeCSC(a))
	if code != http.StatusServiceUnavailable || !strings.Contains(body2, "poisoned") {
		t.Errorf("push to poisoned beta = %d %s, want 503 naming the poison", code, body2)
	}

	// The blast radius: alpha and gamma absorb more work and stay
	// bit-exact against the in-process reference of everything they
	// accepted (generator values are all 1, so addition is exact).
	push("alpha", 20)
	push("gamma", 21)
	for _, name := range []string{"alpha", "gamma"} {
		code, _, wire := httpGet(t, client, ts.URL+"/v1/tenants/"+name+"/sum?format=wire")
		if code != http.StatusOK {
			t.Fatalf("%s sum = %d", name, code)
		}
		got, err := DecodeDelta(wire, 0)
		if err != nil {
			t.Fatalf("%s snapshot decode: %v", name, err)
		}
		if !got.ToCSC().Equal(matrix.ReferenceAdd(accepted[name])) {
			t.Errorf("%s snapshot is not bit-exact after beta's poisoning", name)
		}
	}

	// Metrics carry the story, labeled per tenant.
	_, _, metrics := httpGet(t, client, ts.URL+"/metrics")
	for _, want := range []string{
		`spkadd_tenant_shards_poisoned_total{tenant="beta"} 1`,
		`spkadd_tenant_health{tenant="beta"} 2`,
		`spkadd_tenant_health{tenant="alpha"} 0`,
		`spkadd_tenant_rejected_total{tenant="beta"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Drain completes despite the poisoned tenant: beta drains as
	// unhealthy (its sticky error reported), nothing is abandoned.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep := s.Drain(ctx)
	if !rep.Clean() {
		t.Errorf("drain abandoned %d tenant(s)", rep.Abandoned)
	}
	if rep.Unhealthy == 0 {
		t.Error("drain did not report beta as unhealthy")
	}
	for _, d := range rep.Tenants {
		if d.Tenant == "beta" && d.Err == nil {
			t.Error("beta drained without reporting its poison")
		}
		if d.Tenant != "beta" && d.Err != nil {
			t.Errorf("%s drained with error %v", d.Tenant, d.Err)
		}
	}
}

// TestChaosServerBackpressure429: a SlowReduction schedule wedges the
// single reducer so pushes pile into the shard queue; once the
// high-water mark holds a push past QueueWait, the server answers 429
// with Retry-After instead of hanging the connection — and everything
// it DID accept is in the final sum.
func TestChaosServerBackpressure429(t *testing.T) {
	leakcheck.Begin(t)
	s := newTestServer(t, Config{
		QueueWait: 10 * time.Millisecond,
		SumWait:   30 * time.Second,
		Pool:      core.PoolOptions{Shards: 1, BudgetBytes: 1 << 10},
	})
	deactivate := faults.Activate(faults.New(33, faults.Rule{
		Point: faults.SlowReduction, Key: 1, Delay: 30 * time.Millisecond,
	}))
	var accepted []*matrix.CSC
	var got429, got202 int
	for i := 0; i < 200 && (got429 == 0 || got202 == 0); i++ {
		a := generate.ER(generate.Opts{Rows: 256, Cols: 4, NNZPerCol: 16, Seed: uint64(i + 1)})
		w := do(s, "POST", pushURL("flood"), EncodeCSC(a))
		switch w.Code {
		case http.StatusAccepted:
			accepted = append(accepted, a)
			got202++
		case http.StatusTooManyRequests:
			got429++
			if w.Header().Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("flood push = %d: %s", w.Code, w.Body)
		}
	}
	deactivate()
	if got202 == 0 || got429 == 0 {
		t.Fatalf("flood saw %d accepts and %d rejections; the test needs both", got202, got429)
	}
	t.Logf("flood: %d accepted, %d refused with 429", got202, got429)
	// Every accepted delta — and nothing else — is in the sum.
	if got := fetchSum(t, s, "flood"); !got.Equal(matrix.ReferenceAdd(accepted)) {
		t.Error("sum after the flood is not the exact fold of the accepted deltas")
	}
	if k := s.Tenant("flood").K(); k != got202 {
		t.Errorf("pool absorbed %d deltas, accepted %d", k, got202)
	}
}

// TestChaosServerDrainDuringFlood: concurrent producers hammer a live
// server while it drains. Admission cuts over to 503 atomically (no
// request hangs or errors at the transport level), the producers'
// accepted prefixes survive into pre-close snapshots bit-exactly, and
// the drain report is clean.
func TestChaosServerDrainDuringFlood(t *testing.T) {
	leakcheck.Begin(t)
	s, ts, client := liveServer(t, Config{
		QueueWait: 100 * time.Millisecond,
		SumWait:   10 * time.Second,
		Pool:      core.PoolOptions{Shards: 2},
		Logf:      t.Logf,
	})
	const producers = 4
	const rows, cols, d = 128, 8, 4
	var wg sync.WaitGroup
	acceptedBy := make([][]*matrix.CSC, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tenant := fmt.Sprintf("flood-%d", p)
			for i := 0; ; i++ {
				a := generate.ER(generate.Opts{Rows: rows, Cols: cols, NNZPerCol: d, Seed: uint64(p*1000 + i + 1)})
				resp, err := client.Post(ts.URL+pushURL(tenant), "application/x-spkadd-delta",
					bytes.NewReader(EncodeCSC(a)))
				if err != nil {
					t.Errorf("producer %d transport error: %v", p, err)
					return
				}
				code := resp.StatusCode
				resp.Body.Close()
				switch code {
				case http.StatusAccepted:
					acceptedBy[p] = append(acceptedBy[p], a)
				case http.StatusServiceUnavailable:
					return // drain reached us; stop producing
				default:
					t.Errorf("producer %d push = %d", p, code)
					return
				}
			}
		}(p)
	}
	time.Sleep(50 * time.Millisecond) // let the flood establish
	s.BeginDrain()
	wg.Wait() // every producer saw its 503 and stopped

	// Pre-close snapshots: the accepted prefix of each producer's
	// stream is exactly the tenant's sum.
	for p := 0; p < producers; p++ {
		if len(acceptedBy[p]) == 0 {
			t.Fatalf("producer %d had nothing accepted before the drain", p)
		}
		tenant := fmt.Sprintf("flood-%d", p)
		code, _, wire := httpGet(t, client, ts.URL+"/v1/tenants/"+tenant+"/sum?format=wire")
		if code != http.StatusOK {
			t.Fatalf("%s snapshot during drain = %d", tenant, code)
		}
		got, err := DecodeDelta(wire, 0)
		if err != nil {
			t.Fatalf("%s snapshot decode: %v", tenant, err)
		}
		if !got.ToCSC().Equal(matrix.ReferenceAdd(acceptedBy[p])) {
			t.Errorf("%s snapshot does not equal its accepted prefix", tenant)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep := s.Drain(ctx)
	if !rep.Clean() {
		t.Errorf("drain under flood abandoned %d tenant(s)", rep.Abandoned)
	}
	for _, d := range rep.Tenants {
		if d.Err != nil {
			t.Errorf("tenant %s drained with error %v", d.Tenant, d.Err)
		}
	}
}

// TestChaosServerDrainAbandoned: when the drain deadline cannot be
// met (a stalling chaos schedule pins the reducer), Drain reports the
// tenant abandoned WITH its straggler shards instead of hanging — the
// operator's signal for what a hard kill would lose.
func TestChaosServerDrainAbandoned(t *testing.T) {
	leakcheck.Begin(t)
	s := newTestServer(t, Config{
		QueueWait: time.Second,
		Pool:      core.PoolOptions{Shards: 1, BudgetBytes: 1 << 20},
	})
	deactivate := faults.Activate(faults.New(35, faults.Rule{
		Point: faults.SlowReduction, Key: 1, Delay: 200 * time.Millisecond,
	}))
	defer deactivate()
	for i := 0; i < 4; i++ {
		a := generate.ER(generate.Opts{Rows: 256, Cols: 4, NNZPerCol: 16, Seed: uint64(i + 1)})
		if w := do(s, "POST", pushURL("stuck"), EncodeCSC(a)); w.Code != http.StatusAccepted {
			t.Fatalf("push = %d", w.Code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	rep := s.Drain(ctx)
	if rep.Clean() || rep.Abandoned != 1 {
		t.Fatalf("drain report = %+v, want exactly one abandoned tenant", rep)
	}
	found := false
	for _, d := range rep.Tenants {
		if d.Tenant == "stuck" && d.Abandoned {
			found = true
			if len(d.Stragglers) == 0 {
				t.Error("abandoned tenant reports no straggler shards")
			}
			for _, h := range d.Stragglers {
				if h.Pending == 0 {
					t.Errorf("straggler shard %d has empty queue", h.Shard)
				}
			}
		}
	}
	if !found {
		t.Fatal("tenant stuck not reported abandoned")
	}
	// Deactivate and let the cleanup drain finish the shutdown; the
	// leakcheck cleanup then proves the abandoned pool still wound
	// down (abandonment is about the deadline, not a leak).
	deactivate()
}

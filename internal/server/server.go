// Package server implements spkadd-serve: an HTTP daemon that
// ingests COO delta frames into per-tenant spkadd Pools and serves
// snapshot sums, built as a robustness layer over the streaming core.
//
// Every failure mode the core makes injectable (internal/faults) or
// reportable (Pool.Health, ShardError, typed context errors) becomes
// an externally observable, gracefully degraded behavior here:
//
//   - Admission control: a push that would block on Pool backpressure
//     past Config.QueueWait is refused with 429 + Retry-After instead
//     of wedging the connection; client disconnects propagate through
//     PushContext/SumContext, so a gone client can never pin a shard.
//   - Health taxonomy: degraded tenants (a shard dropped a batch and
//     is retrying its way back) KEEP serving — responses carry a
//     Warning header and per-shard detail. Poisoned tenants (a shard's
//     workspace was quarantined by a panic) flip /readyz and refuse
//     ingest with 503 while snapshots still serve the last good sums.
//   - Graceful drain: BeginDrain stops admission, Drain closes every
//     tenant pool under the caller's deadline and reports stragglers
//     (shards whose queues did not empty in time) so the operator
//     knows exactly what a hard kill would abandon.
//
// See DESIGN.md §12 for the protocol; cmd/spkadd-serve for the
// daemon shell (flags, signals, exit codes).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/tuner"
)

// Config configures a Server. The zero value is ready to use.
type Config struct {
	// MaxTenants caps the live tenant count; at the cap a new tenant
	// is admitted only by evicting an expired one. <=0 means 64.
	MaxTenants int
	// IdleTTL evicts tenants idle past it (their unqueried sums are
	// discarded). 0 means 15 minutes; negative disables eviction.
	IdleTTL time.Duration
	// QueueWait bounds how long a push may block on a shard's
	// high-water backpressure before the server refuses it with 429 +
	// Retry-After. 0 means 100ms; this is the admission-control knob.
	QueueWait time.Duration
	// SumWait bounds a snapshot's drain barrier (and a DELETE's
	// per-tenant drain). 0 means 10s.
	SumWait time.Duration
	// MaxDeltaNNZ caps one delta frame's entry count (the request
	// body is capped to the matching byte size). 0 means 1<<22 — a
	// 64MB frame; negative means uncapped.
	MaxDeltaNNZ int
	// Pool configures each tenant's core.Pool. FaultZone and
	// Add.Stats are owned by the registry and overwritten.
	Pool core.PoolOptions
	// Tuner, when non-nil, is the process-wide self-tuning planner
	// cost table: every tenant's pool consults and feeds the same
	// table, so a workload shape learned under one tenant speeds up
	// every other tenant that produces it. Nil leaves the static
	// heuristics in charge.
	Tuner *tuner.Tuner
	// Logf, when set, receives one line per notable server event
	// (evictions, rejected pushes, drain progress). Nil discards.
	Logf func(format string, args ...any)
}

func (c Config) maxTenants() int {
	if c.MaxTenants <= 0 {
		return 64
	}
	return c.MaxTenants
}

func (c Config) idleTTL() time.Duration {
	if c.IdleTTL == 0 {
		return 15 * time.Minute
	}
	return c.IdleTTL
}

func (c Config) queueWait() time.Duration {
	if c.QueueWait <= 0 {
		return 100 * time.Millisecond
	}
	return c.QueueWait
}

func (c Config) sumWait() time.Duration {
	if c.SumWait <= 0 {
		return 10 * time.Second
	}
	return c.SumWait
}

func (c Config) maxDeltaNNZ() int {
	if c.MaxDeltaNNZ == 0 {
		return 1 << 22
	}
	return c.MaxDeltaNNZ
}

// Server is the spkadd-serve HTTP handler plus its tenant registry
// and drain machinery. Create with New, mount as an http.Handler,
// and call BeginDrain/Drain on shutdown.
type Server struct {
	cfg Config
	reg *registry
	mux *http.ServeMux

	draining atomic.Bool
	started  time.Time

	janitorStop chan struct{}
	janitorDone chan struct{}

	// HTTP metrics: requests by status class, admission rejections.
	req2xx, req4xx, req5xx atomic.Int64 //spkadd:atomic
	rejected               atomic.Int64 //spkadd:atomic
}

// New returns a Server and starts its eviction janitor (stopped by
// Drain). The zero Config is ready to use.
func New(cfg Config) *Server {
	norm := cfg
	norm.MaxTenants = cfg.maxTenants()
	norm.IdleTTL = cfg.idleTTL()
	norm.QueueWait = cfg.queueWait()
	norm.SumWait = cfg.sumWait()
	norm.MaxDeltaNNZ = cfg.maxDeltaNNZ()
	s := &Server{
		cfg:         norm,
		reg:         newRegistry(norm),
		mux:         http.NewServeMux(),
		started:     time.Now(),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/deltas", s.handlePush)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/sum", s.handleSum)
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go s.janitor()
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// janitor periodically evicts idle tenants until drain begins.
//
//spkadd:allow(ctxblock) background sweeper: lives until drain, released by janitorStop
func (s *Server) janitor() {
	defer close(s.janitorDone)
	ttl := s.cfg.IdleTTL
	if ttl <= 0 {
		<-s.janitorStop
		return
	}
	period := ttl / 2
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if n := s.reg.sweep(); n > 0 {
				s.logf("evicted %d idle tenant(s)", n)
			}
		case <-s.janitorStop:
			return
		}
	}
}

// ServeHTTP implements http.Handler, counting status classes for
// /metrics on the way through.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cw := &codeWriter{ResponseWriter: w}
	s.mux.ServeHTTP(cw, r)
	switch c := cw.code(); {
	case c >= 500:
		s.req5xx.Add(1)
	case c >= 400:
		s.req4xx.Add(1)
	default:
		s.req2xx.Add(1)
	}
}

// codeWriter records the response status for the metrics counters.
type codeWriter struct {
	http.ResponseWriter
	status int
}

func (w *codeWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// shardHealthJSON is the wire shape of one shard's health detail,
// attached to snapshot responses, health endpoints and drain reports.
type shardHealthJSON struct {
	Shard        int    `json:"shard"`
	Col0         int    `json:"col0"`
	Col1         int    `json:"col1"`
	State        string `json:"state"`
	Error        string `json:"error,omitempty"`
	Pending      int    `json:"pending,omitempty"`
	PendingBytes int64  `json:"pending_bytes,omitempty"`
	Dropped      int64  `json:"dropped,omitempty"`
}

func healthJSON(hs []core.ShardHealth) []shardHealthJSON {
	out := make([]shardHealthJSON, len(hs))
	for i, h := range hs {
		out[i] = shardHealthJSON{
			Shard: h.Shard, Col0: h.Col0, Col1: h.Col1,
			State:   h.State.String(),
			Pending: h.Pending, PendingBytes: h.PendingBytes,
			Dropped: h.Dropped,
		}
		if h.Err != nil {
			out[i].Error = h.Err.Error()
		}
	}
	return out
}

// warnHeader attaches an RFC 7234 Warning header describing the
// tenant's non-OK shards: code 110 ("response is stale") because the
// affected column ranges serve their last good sum.
func warnHeader(w http.ResponseWriter, t *tenant, hs []core.ShardHealth) {
	for _, h := range hs {
		if h.State != core.HealthOK {
			w.Header().Add("Warning", fmt.Sprintf(`110 spkadd "tenant %s shard %d [%d,%d) %s"`,
				t.name, h.Shard, h.Col0, h.Col1, h.State))
		}
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

// retryAfter sets Retry-After from the wait that was exhausted,
// rounded up to a whole second (the header's resolution).
func retryAfter(w http.ResponseWriter, wait time.Duration) {
	secs := int(wait.Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// handlePush is the ingest path: decode, admit, push with a bounded
// backpressure wait.
//
//	202 Accepted       absorbed (Warning header while degraded)
//	400 / 409 / 413    malformed frame / wrong dims / too large
//	408                client went away while we waited
//	429 + Retry-After  backpressure outlasted Config.QueueWait
//	503 + Retry-After  poisoned tenant, tenant cap, or draining
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	name := r.PathValue("tenant")
	cap := s.cfg.MaxDeltaNNZ
	if cap > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, wireHeaderLen+int64(cap)*wireEntryLen)
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%w: body exceeds %d bytes", ErrWireTooLarge, mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	delta, err := DecodeDelta(data, cap)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrWireTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	t, err := s.reg.getOrCreate(name, delta.Rows, delta.Cols)
	if err != nil {
		switch {
		case errors.Is(err, ErrTenantDims):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, ErrTenantName):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrTenantCap):
			retryAfter(w, s.cfg.IdleTTL)
			writeError(w, http.StatusServiceUnavailable, err)
		default: // ErrDraining
			writeError(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	worst, hs := t.health()
	if worst == core.HealthPoisoned {
		// Ingesting into a poisoned tenant would silently discard the
		// poisoned shards' slices; refuse instead so the client knows.
		t.rejected.Add(1)
		s.rejected.Add(1)
		warnHeader(w, t, hs)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":  "tenant poisoned: ingest refused; snapshots still serve the last good sums",
			"tenant": t.name,
			"shards": healthJSON(hs),
		})
		return
	}

	// The admission wait: the pool may block the push at a shard's
	// high-water mark. The client's own disconnect/deadline propagates
	// through r.Context(); the server adds QueueWait on top so a flood
	// turns into fast 429s instead of a convoy of wedged connections.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueueWait)
	defer cancel()
	err = t.pool.PushContext(ctx, delta.ToCSC())
	switch {
	case err == nil:
		t.pushes.Add(1)
		t.pushEntries.Add(int64(delta.NNZ()))
		t.touch()
		if worst != core.HealthOK {
			warnHeader(w, t, hs)
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"tenant": t.name, "k": t.pool.K(),
		})
	case errors.Is(err, core.ErrCanceled) || errors.Is(err, core.ErrDeadline):
		t.rejected.Add(1)
		s.rejected.Add(1)
		if r.Context().Err() != nil {
			// The client gave up first; it likely won't read this.
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
		retryAfter(w, s.cfg.QueueWait)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("backpressure: push queued longer than %v: %w", s.cfg.QueueWait, err))
	case errors.Is(err, core.ErrPoolClosed):
		// Evicted or drained between lookup and push.
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// handleSum is the snapshot path: barrier the tenant's reducers and
// return the stitched sum. Degraded/poisoned tenants still serve —
// their stale column ranges are flagged by a Warning header and the
// per-shard health detail.
//
//	200                  the snapshot (JSON envelope, or raw frame
//	                     with ?format=wire)
//	404                  unknown tenant (reads never create tenants)
//	408                  client went away while the barrier drained
//	503 + Retry-After    the barrier outlasted Config.SumWait
func (s *Server) handleSum(w http.ResponseWriter, r *http.Request) {
	t := s.reg.get(r.PathValue("tenant"))
	if t == nil {
		writeError(w, http.StatusNotFound, ErrTenantUnknown)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SumWait)
	defer cancel()
	sum, err := t.pool.SumContext(ctx)
	if sum == nil && err != nil {
		if r.Context().Err() != nil {
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
		retryAfter(w, s.cfg.SumWait)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("snapshot barrier outlasted %v: %w", s.cfg.SumWait, err))
		return
	}
	t.sums.Add(1)
	t.touch()
	_, hs := t.health()
	warnHeader(w, t, hs)
	if r.URL.Query().Get("format") == "wire" {
		w.Header().Set("Content-Type", "application/x-spkadd-delta")
		w.Header().Set("X-Spkadd-K", strconv.Itoa(t.pool.K()))
		if detail, jerr := json.Marshal(healthJSON(hs)); jerr == nil {
			w.Header().Set("X-Spkadd-Health", string(detail))
		}
		w.Write(EncodeCSC(sum))
		return
	}
	resp := map[string]any{
		"tenant": t.name,
		"rows":   sum.Rows,
		"cols":   sum.Cols,
		"nnz":    sum.NNZ(),
		"k":      t.pool.K(),
		"shards": healthJSON(hs),
	}
	if r.URL.Query().Get("entries") != "false" {
		entries := make([][3]float64, 0, sum.NNZ())
		for j := 0; j < sum.Cols; j++ {
			rows, vals := sum.ColRows(j), sum.ColVals(j)
			for i := range rows {
				entries = append(entries, [3]float64{float64(rows[i]), float64(j), float64(vals[i])})
			}
		}
		resp["entries"] = entries
	}
	if err != nil {
		resp["degraded"] = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDelete drains and removes one tenant: its pool is closed
// under the SumWait deadline and the outcome reported, so an operator
// can retire a tenant without a full-process drain.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	t := s.reg.remove(r.PathValue("tenant"))
	if t == nil {
		writeError(w, http.StatusNotFound, ErrTenantUnknown)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SumWait)
	defer cancel()
	d := drainTenant(ctx, t)
	status := http.StatusOK
	if d.Abandoned {
		status = http.StatusAccepted // shutdown continues in the background
	}
	writeJSON(w, status, map[string]any{
		"tenant":     t.name,
		"abandoned":  d.Abandoned,
		"stragglers": healthJSON(d.Stragglers),
		"error":      errString(d.Err),
	})
}

// handleTenants lists every live tenant with its health summary.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	type row struct {
		Tenant string `json:"tenant"`
		Rows   int    `json:"rows"`
		Cols   int    `json:"cols"`
		K      int    `json:"k"`
		State  string `json:"state"`
		Pushes int64  `json:"pushes"`
		Sums   int64  `json:"sums"`
	}
	ts := s.reg.list()
	rows := make([]row, len(ts))
	for i, t := range ts {
		worst, _ := t.health()
		rows[i] = row{
			Tenant: t.name, Rows: t.rows, Cols: t.cols, K: t.pool.K(),
			State: worst.String(), Pushes: t.pushes.Load(), Sums: t.sums.Load(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": rows})
}

// handleHealthz is liveness plus the full health inventory: always
// 200 while the process serves, with per-tenant, per-shard states in
// the body and Warning headers for every non-OK shard.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	worst := core.HealthOK
	type entry struct {
		State  string            `json:"state"`
		Shards []shardHealthJSON `json:"shards"`
	}
	tenants := map[string]entry{}
	for _, t := range s.reg.list() {
		tw, hs := t.health()
		if tw > worst {
			worst = tw
		}
		warnHeader(w, t, hs)
		tenants[t.name] = entry{State: tw.String(), Shards: healthJSON(hs)}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   worst.String(),
		"draining": s.draining.Load(),
		"uptime":   time.Since(s.started).String(),
		"tenants":  tenants,
	})
}

// handleReadyz is readiness: 503 while draining or while any tenant
// is poisoned (a poisoned tenant refuses ingest, so a load balancer
// should stop routing floods here), 200 otherwise. Degraded tenants
// do not flip readiness — they are still doing useful work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var poisoned []string
	for _, t := range s.reg.list() {
		if worst, _ := t.health(); worst == core.HealthPoisoned {
			poisoned = append(poisoned, t.name)
		}
	}
	ready := !s.draining.Load() && len(poisoned) == 0
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":    ready,
		"draining": s.draining.Load(),
		"poisoned": poisoned,
	})
}

// TenantDrain is one tenant's drain outcome.
type TenantDrain struct {
	Tenant string
	// Abandoned: the drain deadline fired before the tenant's
	// reducers emptied their queues; Stragglers lists the shards
	// still holding work (the pool keeps shutting down behind us).
	Abandoned  bool
	Stragglers []core.ShardHealth
	// Err carries the pool's shard errors (degraded/poisoned) for a
	// drain that did complete; nil for a clean tenant.
	Err error
}

type tenantDrain = TenantDrain

// DrainReport summarizes a Drain: every tenant's outcome plus the
// rolled-up verdict the daemon turns into its exit code.
type DrainReport struct {
	Tenants   []TenantDrain
	Abandoned int // tenants whose queues did not empty in time
	Unhealthy int // tenants that drained but carried shard errors
}

// Clean reports whether nothing was abandoned: every pushed delta
// either reached its running sum or was already accounted for by a
// reported shard failure.
func (r DrainReport) Clean() bool { return r.Abandoned == 0 }

// BeginDrain flips the server into draining: /readyz goes 503 and
// every subsequent push is refused with 503, while snapshots, health
// and metrics keep serving. Idempotent; safe before or after the
// listener stops.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.logf("drain: admission stopped")
		close(s.janitorStop)
	}
}

// Drain closes every tenant pool under ctx and reports per-tenant
// outcomes. Call after the HTTP listener has stopped accepting (or at
// least after BeginDrain, which fails new pushes): a pool close
// linearizes with pushes, so in-flight requests either complete
// before their tenant's cut or fail with 503. Tenants drain
// concurrently — the deadline bounds the whole drain, not each
// tenant in turn.
func (s *Server) Drain(ctx context.Context) DrainReport {
	s.BeginDrain()
	<-s.janitorDone
	tenants := s.reg.close()
	results := make([]TenantDrain, len(tenants))
	var wg sync.WaitGroup
	for i, t := range tenants {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = drainTenant(ctx, t)
		}()
	}
	wg.Wait()
	rep := DrainReport{Tenants: results}
	for _, d := range results {
		switch {
		case d.Abandoned:
			rep.Abandoned++
			s.logf("drain: tenant %s ABANDONED with %d straggler shard(s)", d.Tenant, len(d.Stragglers))
		case d.Err != nil:
			rep.Unhealthy++
			s.logf("drain: tenant %s drained with shard errors: %v", d.Tenant, d.Err)
		default:
			s.logf("drain: tenant %s clean", d.Tenant)
		}
	}
	return rep
}

// Tenant returns the named tenant's pool for in-process verification
// (tests and the firehose example's self-check); nil if absent.
func (s *Server) Tenant(name string) *core.Pool {
	if t := s.reg.get(name); t != nil {
		return t.pool
	}
	return nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

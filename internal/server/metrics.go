package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"spkadd/internal/core"
)

// Hand-rolled Prometheus text exposition (format 0.0.4). The daemon
// must stay stdlib-only, and the format is simple enough that a
// client library buys nothing: `# HELP`/`# TYPE` preambles, one
// `name{labels} value` line per sample, label values escaped per the
// spec (backslash, double-quote, newline).

// promEscape escapes a label value for the text exposition format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// metricFamily accumulates one metric's samples so families emit
// contiguously (the format requires it).
type metricFamily struct {
	name, help, typ string
	samples         []string
}

type promWriter struct {
	order    []string
	families map[string]*metricFamily
}

func newPromWriter() *promWriter {
	return &promWriter{families: make(map[string]*metricFamily)}
}

func (p *promWriter) family(name, typ, help string) *metricFamily {
	f, ok := p.families[name]
	if !ok {
		f = &metricFamily{name: name, help: help, typ: typ}
		p.families[name] = f
		p.order = append(p.order, name)
	}
	return f
}

// add records one sample; labels alternate key, value.
func (p *promWriter) add(name, typ, help string, value float64, labels ...string) {
	f := p.family(name, typ, help)
	var lb strings.Builder
	if len(labels) > 0 {
		lb.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				lb.WriteByte(',')
			}
			fmt.Fprintf(&lb, `%s="%s"`, labels[i], promEscape(labels[i+1]))
		}
		lb.WriteByte('}')
	}
	f.samples = append(f.samples, fmt.Sprintf("%s%s %g", name, lb.String(), value))
}

func (p *promWriter) writeTo(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	for _, name := range p.order {
		f := p.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.samples {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	w.Write([]byte(b.String()))
}

// handleMetrics exports server-level request counters plus, per
// tenant, the serving counters and the pool's OpStats and health
// gauges — the same numbers the CLI tools print, labeled by tenant so
// one scrape covers the whole registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := newPromWriter()
	const g, c = "gauge", "counter"

	p.add("spkadd_server_uptime_seconds", g, "Seconds since the server started.",
		time.Since(s.started).Seconds())
	draining := 0.0
	if s.draining.Load() {
		draining = 1
	}
	p.add("spkadd_server_draining", g, "1 while the server is draining (refusing ingest).", draining)
	p.add("spkadd_http_requests_total", c, "HTTP responses by status class.",
		float64(s.req2xx.Load()), "class", "2xx")
	p.add("spkadd_http_requests_total", c, "HTTP responses by status class.",
		float64(s.req4xx.Load()), "class", "4xx")
	p.add("spkadd_http_requests_total", c, "HTTP responses by status class.",
		float64(s.req5xx.Load()), "class", "5xx")
	p.add("spkadd_pushes_rejected_total", c,
		"Pushes refused across all tenants: backpressure 429s, poisoned-tenant and draining 503s.",
		float64(s.rejected.Load()))
	p.add("spkadd_tenant_evictions_total", c, "Tenants evicted after sitting idle past the TTL.",
		float64(s.reg.evictions.Load()))

	if s.cfg.Tuner != nil {
		p.add("spkadd_tuner_entries", g,
			"Workload signatures resident in the process-wide planner cost table.",
			float64(s.cfg.Tuner.Len()))
		p.add("spkadd_tuner_epsilon", g,
			"Exploration rate of the process-wide planner.",
			s.cfg.Tuner.Epsilon())
	}

	tenants := s.reg.list()
	p.add("spkadd_tenants", g, "Live tenants in the registry.", float64(len(tenants)))

	for _, t := range tenants {
		lt := []string{"tenant", t.name}
		p.add("spkadd_tenant_pushes_total", c, "Deltas absorbed per tenant.",
			float64(t.pushes.Load()), lt...)
		p.add("spkadd_tenant_push_entries_total", c, "Nonzero entries absorbed per tenant.",
			float64(t.pushEntries.Load()), lt...)
		p.add("spkadd_tenant_sums_total", c, "Snapshot sums served per tenant.",
			float64(t.sums.Load()), lt...)
		p.add("spkadd_tenant_rejected_total", c, "Pushes refused per tenant.",
			float64(t.rejected.Load()), lt...)
		p.add("spkadd_tenant_k", g, "Deltas currently folded into the tenant's running sum.",
			float64(t.pool.K()), lt...)

		worst, hs := t.health()
		p.add("spkadd_tenant_health", g,
			"Tenant health: 0 ok, 1 degraded (serving, some columns stale), 2 poisoned (ingest refused).",
			float64(worst), lt...)
		var pending, pendingBytes, dropped float64
		shardStates := map[core.HealthState]int{}
		for _, h := range hs {
			pending += float64(h.Pending)
			pendingBytes += float64(h.PendingBytes)
			dropped += float64(h.Dropped)
			shardStates[h.State]++
		}
		p.add("spkadd_tenant_pending_pieces", g, "Queued column pieces awaiting reduction.",
			pending, lt...)
		p.add("spkadd_tenant_pending_bytes", g, "Bytes of queued pieces awaiting reduction.",
			pendingBytes, lt...)
		p.add("spkadd_tenant_dropped_pieces_total", c,
			"Pieces permanently dropped by shards after retry exhaustion or poisoning.",
			dropped, lt...)
		for _, st := range []core.HealthState{core.HealthOK, core.HealthDegraded, core.HealthPoisoned} {
			p.add("spkadd_tenant_shards", g, "Shards by health state.",
				float64(shardStates[st]), "tenant", t.name, "state", st.String())
		}

		// The pool's OpStats, verbatim: the same counters the library's
		// observability layer exposes in-process.
		st := t.stats
		p.add("spkadd_tenant_reductions_total", c, "Shard reductions completed.",
			float64(t.pool.Reductions()), lt...)
		p.add("spkadd_tenant_steals_total", c, "Work-stealing events inside reductions.",
			float64(st.Steals.Load()), lt...)
		p.add("spkadd_tenant_sched_regions_total", c, "Parallel regions executed.",
			float64(st.SchedRegions.Load()), lt...)
		p.add("spkadd_tenant_retries_total", c, "Reduction retries after transient failures.",
			float64(st.Retries.Load()), lt...)
		p.add("spkadd_tenant_panics_recovered_total", c, "Reduction panics recovered (each poisons a shard).",
			float64(st.PanicsRecovered.Load()), lt...)
		p.add("spkadd_tenant_faults_injected_total", c, "Faults injected by the active chaos schedule.",
			float64(st.FaultsInjected.Load()), lt...)
		p.add("spkadd_tenant_shards_degraded_total", c, "OK-to-degraded shard transitions.",
			float64(st.ShardsDegraded.Load()), lt...)
		p.add("spkadd_tenant_shards_recovered_total", c, "Degraded-to-OK shard transitions.",
			float64(st.ShardsRecovered.Load()), lt...)
		p.add("spkadd_tenant_shards_poisoned_total", c, "Shards permanently poisoned by panics.",
			float64(st.ShardsPoisoned.Load()), lt...)
		p.add("spkadd_tenant_planner_lookups_total", c,
			"Self-tuning planner consultations during plan resolution.",
			float64(st.PlannerLookups.Load()), lt...)
		p.add("spkadd_tenant_planner_explores_total", c,
			"Planner lookups answered by epsilon-greedy exploration.",
			float64(st.PlannerExplores.Load()), lt...)
		p.add("spkadd_tenant_planner_fallbacks_total", c,
			"Planner lookups that fell back to the static heuristics (cold signature or pinned plan).",
			float64(st.PlannerFallbacks.Load()), lt...)
	}
	p.writeTo(w)
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// newTestServer builds a Server with test-friendly defaults and
// registers a generous drain as cleanup, so every test stops the
// janitor and the tenant reducers it spawned.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Pool.Shards == 0 {
		cfg.Pool.Shards = 2
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// delta builds one ER delta (values all 1) and its wire frame.
func delta(rows, cols, d int, seed uint64) (*matrix.CSC, []byte) {
	a := generate.ER(generate.Opts{Rows: rows, Cols: cols, NNZPerCol: d, Seed: seed})
	return a, EncodeCSC(a)
}

// do runs one request through the handler and returns the recorder.
func do(s *Server, method, target string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func pushURL(tenant string) string { return "/v1/tenants/" + tenant + "/deltas" }

// fetchSum GETs a tenant's snapshot in wire format and decodes it.
func fetchSum(t *testing.T, s *Server, tenant string) *matrix.CSC {
	t.Helper()
	w := do(s, "GET", "/v1/tenants/"+tenant+"/sum?format=wire", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET sum(%s) = %d: %s", tenant, w.Code, w.Body)
	}
	c, err := DecodeDelta(w.Body.Bytes(), 0)
	if err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	return c.ToCSC()
}

// TestServerPushSum: the happy path. Deltas stream in over the wire
// format, the snapshot equals the in-process reference sum, and the
// JSON envelope carries k and per-shard health.
func TestServerPushSum(t *testing.T) {
	s := newTestServer(t, Config{})
	const rows, cols, d = 64, 16, 4
	var as []*matrix.CSC
	for i := 0; i < 5; i++ {
		a, frame := delta(rows, cols, d, uint64(i+1))
		as = append(as, a)
		w := do(s, "POST", pushURL("alpha"), frame)
		if w.Code != http.StatusAccepted {
			t.Fatalf("push %d = %d: %s", i, w.Code, w.Body)
		}
	}
	if got, want := fetchSum(t, s, "alpha"), matrix.ReferenceAdd(as); !got.Equal(want) {
		t.Error("wire snapshot disagrees with ReferenceAdd")
	}
	// JSON envelope.
	w := do(s, "GET", "/v1/tenants/alpha/sum?entries=false", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET sum json = %d", w.Code)
	}
	var resp struct {
		Tenant string            `json:"tenant"`
		K      int               `json:"k"`
		NNZ    int               `json:"nnz"`
		Shards []shardHealthJSON `json:"shards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("sum envelope: %v", err)
	}
	if resp.Tenant != "alpha" || resp.K != 5 || resp.NNZ != matrix.ReferenceAdd(as).NNZ() {
		t.Errorf("envelope = %+v, want tenant alpha, k 5", resp)
	}
	if len(resp.Shards) != 2 {
		t.Fatalf("envelope carries %d shards, want 2", len(resp.Shards))
	}
	for _, h := range resp.Shards {
		if h.State != "ok" {
			t.Errorf("shard %d state %q, want ok", h.Shard, h.State)
		}
	}
	// Tenant listing.
	w = do(s, "GET", "/v1/tenants", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"alpha"`) {
		t.Errorf("GET /v1/tenants = %d: %s", w.Code, w.Body)
	}
}

// TestServerStatusMapping: each refusal class maps to its status.
func TestServerStatusMapping(t *testing.T) {
	s := newTestServer(t, Config{MaxDeltaNNZ: 8})
	_, frame := delta(64, 16, 4, 1)

	if w := do(s, "POST", pushURL("t0"), []byte("junk frame")); w.Code != http.StatusBadRequest {
		t.Errorf("malformed frame = %d, want 400", w.Code)
	}
	if w := do(s, "POST", pushURL("_bad"), frameFor(t, 4, 4, 1)); w.Code != http.StatusBadRequest {
		t.Errorf("invalid tenant name = %d, want 400", w.Code)
	}
	if w := do(s, "POST", pushURL("t0"), frame); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized frame = %d, want 413", w.Code)
	}
	if w := do(s, "POST", pushURL("t0"), frameFor(t, 4, 4, 2)); w.Code != http.StatusAccepted {
		t.Fatalf("small push = %d, want 202", w.Code)
	}
	if w := do(s, "POST", pushURL("t0"), frameFor(t, 8, 4, 2)); w.Code != http.StatusConflict {
		t.Errorf("dims mismatch = %d, want 409", w.Code)
	}
	if w := do(s, "GET", "/v1/tenants/ghost/sum", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown tenant sum = %d, want 404", w.Code)
	}
	if w := do(s, "DELETE", "/v1/tenants/ghost", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown tenant delete = %d, want 404", w.Code)
	}
}

// frameFor encodes a 2-entry delta with the given dims.
func frameFor(t *testing.T, rows, cols, d int) []byte {
	t.Helper()
	_, frame := delta(rows, cols, d, 7)
	return frame
}

// TestServerTenantCap: at MaxTenants with nothing expired, a new
// tenant is refused with 503 + Retry-After; once a tenant goes idle
// past the TTL the next create evicts it and succeeds.
func TestServerTenantCap(t *testing.T) {
	s := newTestServer(t, Config{MaxTenants: 2, IdleTTL: 50 * time.Millisecond})
	for _, name := range []string{"a", "b"} {
		if w := do(s, "POST", pushURL(name), frameFor(t, 4, 4, 2)); w.Code != http.StatusAccepted {
			t.Fatalf("push %s = %d", name, w.Code)
		}
	}
	w := do(s, "POST", pushURL("c"), frameFor(t, 4, 4, 2))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap push = %d, want 503: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("over-cap 503 lacks Retry-After")
	}
	time.Sleep(80 * time.Millisecond) // let a and b expire
	if w := do(s, "POST", pushURL("c"), frameFor(t, 4, 4, 2)); w.Code != http.StatusAccepted {
		t.Fatalf("push after expiry = %d, want 202 via eviction: %s", w.Code, w.Body)
	}
	if s.reg.evictions.Load() == 0 {
		t.Error("eviction counter did not move")
	}
}

// TestServerDelete: DELETE drains the tenant and frees its name.
func TestServerDelete(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := do(s, "POST", pushURL("doomed"), frameFor(t, 4, 4, 2)); w.Code != http.StatusAccepted {
		t.Fatalf("push = %d", w.Code)
	}
	w := do(s, "DELETE", "/v1/tenants/doomed", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("delete = %d: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), `"abandoned": false`) {
		t.Errorf("delete report: %s", w.Body)
	}
	if w := do(s, "GET", "/v1/tenants/doomed/sum", nil); w.Code != http.StatusNotFound {
		t.Errorf("sum after delete = %d, want 404", w.Code)
	}
	// The name is reusable with fresh dimensions.
	if w := do(s, "POST", pushURL("doomed"), frameFor(t, 8, 8, 2)); w.Code != http.StatusAccepted {
		t.Errorf("recreate after delete = %d, want 202", w.Code)
	}
}

// TestServerHealthEndpoints: healthz is always 200 and readyz tracks
// draining; both carry the tenant inventory.
func TestServerHealthEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := do(s, "POST", pushURL("h"), frameFor(t, 4, 4, 2)); w.Code != http.StatusAccepted {
		t.Fatalf("push = %d", w.Code)
	}
	w := do(s, "GET", "/healthz", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"status": "ok"`) {
		t.Errorf("healthz = %d: %s", w.Code, w.Body)
	}
	if w := do(s, "GET", "/readyz", nil); w.Code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", w.Code)
	}
	s.BeginDrain()
	if w := do(s, "GET", "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", w.Code)
	}
	if w := do(s, "POST", pushURL("h"), frameFor(t, 4, 4, 2)); w.Code != http.StatusServiceUnavailable {
		t.Errorf("push while draining = %d, want 503", w.Code)
	}
	// healthz stays 200 through the drain (liveness, not readiness).
	if w := do(s, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", w.Code)
	}
}

// TestServerMetrics: the exposition parses as prometheus text far
// enough to carry the tenant counters with escaped labels.
func TestServerMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		if w := do(s, "POST", pushURL("m1"), frameFor(t, 4, 4, 2)); w.Code != http.StatusAccepted {
			t.Fatalf("push = %d", w.Code)
		}
	}
	fetchSum(t, s, "m1")
	w := do(s, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		`spkadd_tenant_pushes_total{tenant="m1"} 3`,
		`spkadd_tenant_sums_total{tenant="m1"} 1`,
		`spkadd_tenant_k{tenant="m1"} 3`,
		`spkadd_tenant_shards{tenant="m1",state="ok"} 2`,
		"# TYPE spkadd_http_requests_total counter",
		"spkadd_tenants 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Count(body, "# TYPE spkadd_tenant_pushes_total") != 1 {
		t.Error("metric family emitted non-contiguously")
	}
}

// TestServerPromEscape: label values escape per the exposition spec.
func TestServerPromEscape(t *testing.T) {
	if got := promEscape("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("promEscape = %q", got)
	}
}

// TestServerClientCancel: a push whose client has already gone away
// reports 408, not 429 — the server distinguishes "the client gave
// up" from "we refused".
func TestServerClientCancel(t *testing.T) {
	// A stalled single shard with a tiny budget wedges admission.
	s := newTestServer(t, Config{
		QueueWait: 30 * time.Millisecond,
		Pool:      core.PoolOptions{Shards: 1, BudgetBytes: 1 << 10},
	})
	// Fill past the high-water mark so the next push must wait.
	for i := 0; i < 64; i++ {
		w := do(s, "POST", pushURL("cc"), frameFor(t, 64, 4, 16))
		if w.Code != http.StatusAccepted && w.Code != http.StatusTooManyRequests {
			t.Fatalf("fill push = %d: %s", w.Code, w.Body)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", pushURL("cc"), bytes.NewReader(frameFor(t, 64, 4, 16))).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusRequestTimeout && w.Code != http.StatusAccepted {
		t.Errorf("canceled-client push = %d, want 408 (or 202 if it slipped in)", w.Code)
	}
}

// TestServerPprof: the profiling mux is mounted.
func TestServerPprof(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(s, "GET", "/debug/pprof/cmdline", nil)
	if w.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d", w.Code)
	}
	if b, _ := io.ReadAll(w.Body); len(b) == 0 {
		t.Error("pprof cmdline empty")
	}
}

package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spkadd/internal/matrix"
)

// The COO delta wire format: the ingest body of the daemon and the
// binary snapshot encoding of its sum endpoint. It is deliberately
// dumb — a fixed little-endian header followed by packed triples — so
// a client in any language is a dozen lines, and the decoder can
// validate the whole frame with arithmetic before allocating
// anything:
//
//	offset  size  field
//	0       4     magic   "SPKD" (0x444B5053 LE)
//	4       4     version (1)
//	8       4     rows
//	12      4     cols
//	16      4     nnz
//	20      1     dtype   (0 = float64)
//	21      16*nnz  entries: row uint32, col uint32, val float64
//
// Duplicate (row, col) entries are legal and sum on ingest, matching
// COO assembly semantics everywhere else in the repo.
//
// Every decode failure is a typed error wrapping ErrWire, so the
// handler layer maps classes (malformed vs too-large) to status codes
// without string matching, and the fuzz harness can assert "typed
// error, never a panic".

// wireMagic spells "SPKD" when written little-endian.
const wireMagic uint32 = 'S' | 'P'<<8 | 'K'<<16 | 'D'<<24

// wireVersion is the only frame version this build speaks.
const wireVersion = 1

// wireHeaderLen and wireEntryLen are the fixed frame dimensions.
const (
	wireHeaderLen = 21
	wireEntryLen  = 16
)

// wireDtypeF64 is the only value dtype this build encodes or decodes:
// packed float64, the original frame layout. The byte exists so future
// builds can negotiate narrower element types (float32, int32, bool —
// the in-memory kernels already support them) without a version bump;
// a decoder that does not speak a dtype rejects it with ErrWireDtype
// instead of misreading the entry bytes.
const wireDtypeF64 = 0

// MaxWireDim bounds rows and cols: indices travel as uint32 but the
// in-memory matrix.Index is int32.
const MaxWireDim = 1<<31 - 1

// Wire decode errors. All wrap ErrWire; ErrWireTooLarge additionally
// classifies frames that exceed a configured size cap rather than
// being malformed.
var (
	// ErrWire is the class of every delta-decoding failure.
	ErrWire = errors.New("spkadd/server: bad delta frame")
	// ErrWireMagic: the frame does not start with "SPKD".
	ErrWireMagic = fmt.Errorf("%w: bad magic", ErrWire)
	// ErrWireVersion: the frame's version is not 1.
	ErrWireVersion = fmt.Errorf("%w: unsupported version", ErrWire)
	// ErrWireTruncated: the frame is shorter than its header, or than
	// the nnz its header declares.
	ErrWireTruncated = fmt.Errorf("%w: truncated", ErrWire)
	// ErrWireTrailing: the frame carries bytes past its declared
	// entries.
	ErrWireTrailing = fmt.Errorf("%w: trailing bytes", ErrWire)
	// ErrWireDims: rows or cols is zero or exceeds MaxWireDim.
	ErrWireDims = fmt.Errorf("%w: bad dimensions", ErrWire)
	// ErrWireRange: an entry's coordinates fall outside the declared
	// dimensions.
	ErrWireRange = fmt.Errorf("%w: entry out of range", ErrWire)
	// ErrWireDtype: the frame declares a value dtype this build does
	// not decode (only float64, dtype 0, is spoken today).
	ErrWireDtype = fmt.Errorf("%w: unsupported value dtype", ErrWire)
	// ErrWireTooLarge: the frame declares more entries than the
	// decoder's cap. Not malformed — the admission layer's 413.
	ErrWireTooLarge = fmt.Errorf("%w: frame exceeds the entry cap", ErrWire)
)

// DecodeDelta parses one COO delta frame. maxNNZ caps the declared
// entry count (<= 0 means no cap beyond the frame's own length). The
// returned COO owns freshly allocated entries sized by the actual
// frame length — a header lying about nnz fails the length check
// before anything is allocated, so a 20-byte frame can never make the
// decoder reserve gigabytes.
func DecodeDelta(data []byte, maxNNZ int) (*matrix.COO, error) {
	if len(data) < wireHeaderLen {
		return nil, fmt.Errorf("%w: %d-byte frame, want at least %d", ErrWireTruncated, len(data), wireHeaderLen)
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != wireMagic {
		return nil, fmt.Errorf("%w: %#08x", ErrWireMagic, m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrWireVersion, v)
	}
	rows := binary.LittleEndian.Uint32(data[8:])
	cols := binary.LittleEndian.Uint32(data[12:])
	if rows == 0 || cols == 0 || rows > MaxWireDim || cols > MaxWireDim {
		return nil, fmt.Errorf("%w: %dx%d", ErrWireDims, rows, cols)
	}
	nnz := binary.LittleEndian.Uint32(data[16:])
	if dt := data[20]; dt != wireDtypeF64 {
		return nil, fmt.Errorf("%w: %d", ErrWireDtype, dt)
	}
	if maxNNZ > 0 && uint64(nnz) > uint64(maxNNZ) {
		return nil, fmt.Errorf("%w: %d entries, cap %d", ErrWireTooLarge, nnz, maxNNZ)
	}
	body := data[wireHeaderLen:]
	want := uint64(nnz) * wireEntryLen
	switch {
	case uint64(len(body)) < want:
		return nil, fmt.Errorf("%w: %d entries declared, body holds %d bytes", ErrWireTruncated, nnz, len(body))
	case uint64(len(body)) > want:
		return nil, fmt.Errorf("%w: %d bytes past the %d declared entries", ErrWireTrailing, uint64(len(body))-want, nnz)
	}
	c := &matrix.COO{
		Rows:    int(rows),
		Cols:    int(cols),
		Entries: make([]matrix.Triple, nnz),
	}
	for i := range c.Entries {
		e := body[i*wireEntryLen:]
		r := binary.LittleEndian.Uint32(e[0:])
		j := binary.LittleEndian.Uint32(e[4:])
		if r >= rows || j >= cols {
			return nil, fmt.Errorf("%w: entry %d at (%d,%d), frame is %dx%d", ErrWireRange, i, r, j, rows, cols)
		}
		c.Entries[i] = matrix.Triple{
			Row: matrix.Index(r),
			Col: matrix.Index(j),
			Val: matrix.Value(math.Float64frombits(binary.LittleEndian.Uint64(e[8:]))),
		}
	}
	return c, nil
}

// EncodeDelta serializes a COO delta into one wire frame.
func EncodeDelta(c *matrix.COO) []byte {
	buf := make([]byte, wireHeaderLen+len(c.Entries)*wireEntryLen)
	putHeader(buf, c.Rows, c.Cols, len(c.Entries))
	for i, t := range c.Entries {
		putEntry(buf[wireHeaderLen+i*wireEntryLen:], t.Row, t.Col, t.Val)
	}
	return buf
}

// EncodeCSC serializes a CSC matrix as a wire frame of its triples in
// column-major order — the snapshot encoding of the sum endpoint.
func EncodeCSC(a *matrix.CSC) []byte {
	buf := make([]byte, wireHeaderLen+a.NNZ()*wireEntryLen)
	putHeader(buf, a.Rows, a.Cols, a.NNZ())
	off := wireHeaderLen
	for j := 0; j < a.Cols; j++ {
		rows, vals := a.ColRows(j), a.ColVals(j)
		for i := range rows {
			putEntry(buf[off:], rows[i], matrix.Index(j), vals[i])
			off += wireEntryLen
		}
	}
	return buf
}

func putHeader(buf []byte, rows, cols, nnz int) {
	binary.LittleEndian.PutUint32(buf[0:], wireMagic)
	binary.LittleEndian.PutUint32(buf[4:], wireVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(rows))
	binary.LittleEndian.PutUint32(buf[12:], uint32(cols))
	binary.LittleEndian.PutUint32(buf[16:], uint32(nnz))
	buf[20] = wireDtypeF64
}

func putEntry(e []byte, r, c matrix.Index, v matrix.Value) {
	binary.LittleEndian.PutUint32(e[0:], uint32(r))
	binary.LittleEndian.PutUint32(e[4:], uint32(c))
	binary.LittleEndian.PutUint64(e[8:], math.Float64bits(float64(v)))
}

package generate

import (
	"testing"

	"spkadd/internal/matrix"
)

func TestERShapeAndLoad(t *testing.T) {
	o := Opts{Rows: 1000, Cols: 32, NNZPerCol: 50, Seed: 1}
	a := ER(o)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Rows != 1000 || a.Cols != 32 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	// Duplicate merging can only lose a few entries at this density.
	if a.NNZ() < 32*45 || a.NNZ() > 32*50 {
		t.Errorf("nnz = %d, want close to %d", a.NNZ(), 32*50)
	}
	// Per-column load should be nearly uniform.
	for j := 0; j < a.Cols; j++ {
		if c := a.ColNNZ(j); c < 40 || c > 50 {
			t.Errorf("column %d has %d entries, want ~50", j, c)
		}
	}
	if !a.IsColumnSorted() {
		t.Error("generator output should be sorted")
	}
}

func TestERDeterministic(t *testing.T) {
	o := Opts{Rows: 500, Cols: 8, NNZPerCol: 20, Seed: 42}
	a, b := ER(o), ER(o)
	if !a.Equal(b) {
		t.Error("same seed should reproduce the same matrix")
	}
	o2 := o
	o2.Seed = 43
	c := ER(o2)
	if a.Equal(c) {
		t.Error("different seeds should differ")
	}
}

func TestRMATSkew(t *testing.T) {
	o := Opts{Rows: 1 << 12, Cols: 1 << 8, NNZPerCol: 64, Seed: 3}
	a := RMAT(o, Graph500)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	er := ER(o)
	// Skew check: the heaviest RMAT column should be far heavier than
	// the heaviest ER column.
	maxCol := func(m *matrix.CSC) int {
		best := 0
		for j := 0; j < m.Cols; j++ {
			if c := m.ColNNZ(j); c > best {
				best = c
			}
		}
		return best
	}
	if rm, em := maxCol(a), maxCol(er); rm <= em {
		t.Errorf("RMAT max column %d not heavier than ER max column %d", rm, em)
	}
	// Row skew: max row degree should far exceed the mean.
	rowDeg := make([]int, a.Rows)
	for _, r := range a.RowIdx {
		rowDeg[r]++
	}
	maxRow := 0
	for _, d := range rowDeg {
		if d > maxRow {
			maxRow = d
		}
	}
	mean := float64(a.NNZ()) / float64(a.Rows)
	if float64(maxRow) < 10*mean {
		t.Errorf("RMAT max row degree %d not skewed vs mean %.1f", maxRow, mean)
	}
}

func TestRMATRespectsDimensions(t *testing.T) {
	// Non-power-of-two dimensions must be honored via rejection.
	o := Opts{Rows: 1000, Cols: 37, NNZPerCol: 11, Seed: 9}
	a := RMAT(o, Graph500)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Rows != 1000 || a.Cols != 37 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
}

func TestERCollection(t *testing.T) {
	mats := ERCollection(5, Opts{Rows: 200, Cols: 10, NNZPerCol: 8, Seed: 7})
	if len(mats) != 5 {
		t.Fatalf("got %d matrices", len(mats))
	}
	for i, m := range mats {
		if err := m.Validate(); err != nil {
			t.Fatalf("matrix %d: %v", i, err)
		}
		if m.Rows != 200 || m.Cols != 10 {
			t.Fatalf("matrix %d shape %dx%d", i, m.Rows, m.Cols)
		}
	}
	if mats[0].Equal(mats[1]) {
		t.Error("collection members should be independent")
	}
}

func TestRMATCollection(t *testing.T) {
	k := 4
	mats := RMATCollection(k, Opts{Rows: 512, Cols: 64, NNZPerCol: 16, Seed: 5}, Graph500)
	if len(mats) != k {
		t.Fatalf("got %d matrices, want %d", len(mats), k)
	}
	total := 0
	for _, m := range mats {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if m.Cols != 64 || m.Rows != 512 {
			t.Fatalf("piece shape %dx%d", m.Rows, m.Cols)
		}
		total += m.NNZ()
	}
	if total == 0 {
		t.Fatal("empty collection")
	}
}

func TestClusteredCompressionFactor(t *testing.T) {
	k, d := 16, 32
	o := Opts{Rows: 1 << 16, Cols: 32, NNZPerCol: d, Seed: 11}
	for _, wantCF := range []float64{1, 4, 12} {
		mats := ClusteredCollection(k, o, wantCF)
		sum := matrix.ReferenceAdd(mats)
		in := 0
		for _, m := range mats {
			in += m.NNZ()
		}
		got := float64(in) / float64(sum.NNZ())
		// Duplicate merging and pool collisions blur cf; accept 40%.
		if got < wantCF*0.6 || got > wantCF*1.8 {
			t.Errorf("cf target %.1f: measured %.2f", wantCF, got)
		}
	}
}

func TestProteinLike(t *testing.T) {
	a := ProteinLike(2000, 50, 12, 13)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Rows != 2000 || a.Cols != 2000 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	if a.NNZ() < 2000*6 {
		t.Errorf("too sparse: nnz=%d", a.NNZ())
	}
	// Clustered structure: a healthy majority of edges stay in-cluster.
	in := 0
	for j := 0; j < a.Cols; j++ {
		cl := j / 50
		for _, r := range a.ColRows(j) {
			if int(r)/50 == cl {
				in++
			}
		}
	}
	if frac := float64(in) / float64(a.NNZ()); frac < 0.5 {
		t.Errorf("in-cluster fraction %.2f, want > 0.5", frac)
	}
}

func TestERCollectionIndependence(t *testing.T) {
	// Regression test for a stream-correlation bug: matrices generated
	// from adjacent seeds must be statistically independent, so the
	// compression factor of their sum stays near 1 when d << rows.
	k := 16
	mats := ERCollection(k, Opts{Rows: 1 << 16, Cols: 16, NNZPerCol: 64, Seed: 100})
	sum := matrix.ReferenceAdd(mats)
	in := 0
	for _, m := range mats {
		in += m.NNZ()
	}
	cf := float64(in) / float64(sum.NNZ())
	if cf > 1.05 {
		t.Errorf("compression factor %.3f for independent sparse ER inputs, want ~1.01 (correlated streams?)", cf)
	}
}

func TestAdjacentSeedsUncorrelated(t *testing.T) {
	o := Opts{Rows: 1 << 14, Cols: 8, NNZPerCol: 32, Seed: 7}
	a := ER(o)
	o.Seed = 8
	b := ER(o)
	shared := 0
	for j := 0; j < a.Cols; j++ {
		set := map[matrix.Index]bool{}
		for _, r := range a.ColRows(j) {
			set[r] = true
		}
		for _, r := range b.ColRows(j) {
			if set[r] {
				shared++
			}
		}
	}
	// Expected collisions per column: 32*32/16384 ≈ 0.0625; across 8
	// columns well under 10 even with slack.
	if shared > 10 {
		t.Errorf("%d shared positions between adjacent-seed matrices, want ~0", shared)
	}
}

// Package generate produces the synthetic matrices used by the paper's
// evaluation: Erdős–Rényi (ER) uniform random matrices, R-MAT power-law
// matrices (Graph500 parameters), the column-split construction that
// turns one wide matrix into a collection of k SpKAdd inputs, clustered
// collections with a controllable compression factor (standing in for
// the SpGEMM intermediate matrices of the protein networks), and a
// protein-similarity-like generator for the SUMMA experiments.
package generate

// rng is a small splitmix64 PRNG. Each column or chunk of generated
// entries gets its own stream derived from (seed, stream id), so
// generation is deterministic regardless of how work is divided among
// goroutines.
type rng struct{ state uint64 }

func newRNG(seed, stream uint64) *rng {
	// Avalanche-mix seed and stream together (murmur3 finalizer) so
	// that nearby (seed, stream) pairs start at unrelated states.
	// Deriving the state linearly (seed*φ + stream) is a trap: seeds
	// differing by 1 would yield sequences shifted by exactly one
	// step, making "independent" matrices near-copies of each other.
	z := seed ^ (stream * 0xD2B74407B1CE6E93)
	z ^= z >> 33
	z *= 0xFF51AFD7ED558CCD
	z ^= z >> 33
	z *= 0xC4CEB9FE1A85EC53
	z ^= z >> 33
	return &rng{state: z}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float64 returns a uniform float in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

package generate

import (
	"spkadd/internal/matrix"
)

// RMATParams are the recursive quadrant probabilities of the R-MAT
// generator. They must be non-negative and sum to 1.
type RMATParams struct {
	A, B, C, D float64
}

// Graph500 is the seed parameter set the paper uses for skewed (RMAT)
// matrices: a=0.57, b=c=0.19, d=0.05.
var Graph500 = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// Uniform is the parameter set for Erdős–Rényi matrices
// (a=b=c=d=0.25); ER uses a direct uniform sampler for speed, but the
// distribution is the same.
var Uniform = RMATParams{A: 0.25, B: 0.25, C: 0.25, D: 0.25}

// Opts describe one synthetic matrix.
type Opts struct {
	Rows, Cols int
	// NNZPerCol is the average number of nonzeros per column (the
	// paper's d); the generator draws Cols*NNZPerCol entries before
	// duplicate merging.
	NNZPerCol int
	Seed      uint64
}

func (o Opts) totalDraws() int { return o.Cols * o.NNZPerCol }

// ER generates an Erdős–Rényi matrix: entries uniformly distributed
// over the m x n index space, values 1. Duplicates are merged, so the
// final nnz can be slightly below Cols*NNZPerCol.
func ER(o Opts) *matrix.CSC {
	coo := matrix.NewCOO(o.Rows, o.Cols)
	coo.Entries = make([]matrix.Triple, 0, o.totalDraws())
	// Draw exactly NNZPerCol entries per column so the per-column load
	// is uniform, matching the paper's "d nonzeros per column" model.
	for j := 0; j < o.Cols; j++ {
		r := newRNG(o.Seed, uint64(j))
		for t := 0; t < o.NNZPerCol; t++ {
			coo.Append(matrix.Index(r.intn(o.Rows)), matrix.Index(j), 1)
		}
	}
	return coo.ToCSC()
}

// RMAT generates a power-law matrix with the given quadrant parameters.
// The index space is padded to powers of two internally; out-of-range
// draws are retried, so the requested dimensions are honored exactly.
func RMAT(o Opts, p RMATParams) *matrix.CSC {
	rbits := bitsFor(o.Rows)
	cbits := bitsFor(o.Cols)
	coo := matrix.NewCOO(o.Rows, o.Cols)
	coo.Entries = make([]matrix.Triple, 0, o.totalDraws())
	total := o.totalDraws()
	const chunk = 1 << 14
	for start := 0; start < total; start += chunk {
		n := chunk
		if start+n > total {
			n = total - start
		}
		r := newRNG(o.Seed, uint64(start/chunk)+0x100000)
		for t := 0; t < n; t++ {
			row, col := rmatDraw(r, rbits, cbits, o.Rows, o.Cols, p)
			coo.Append(matrix.Index(row), matrix.Index(col), 1)
		}
	}
	return coo.ToCSC()
}

// rmatDraw samples one (row, col) pair by recursive quadrant descent,
// rejecting coordinates outside the requested (possibly non-power-of-
// two) dimensions.
func rmatDraw(r *rng, rbits, cbits, rows, cols int, p RMATParams) (int, int) {
	for {
		row, col := 0, 0
		levels := rbits
		if cbits > levels {
			levels = cbits
		}
		for l := 0; l < levels; l++ {
			u := r.float64()
			var rbit, cbit int
			switch {
			case u < p.A:
				rbit, cbit = 0, 0
			case u < p.A+p.B:
				rbit, cbit = 0, 1
			case u < p.A+p.B+p.C:
				rbit, cbit = 1, 0
			default:
				rbit, cbit = 1, 1
			}
			if l < rbits {
				row = row<<1 | rbit
			}
			if l < cbits {
				col = col<<1 | cbit
			}
		}
		if row < rows && col < cols {
			return row, col
		}
	}
}

func bitsFor(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}

// ERCollection generates k independent ER matrices of identical shape,
// the input collections of Tables III and Fig 2 (left).
func ERCollection(k int, o Opts) []*matrix.CSC {
	out := make([]*matrix.CSC, k)
	for i := range out {
		oi := o
		oi.Seed = o.Seed + uint64(i)*0x51_7C_C1B7_2722_0A95
		out[i] = ER(oi)
	}
	return out
}

// RMATCollection generates k RMAT inputs using the paper's
// construction: one wide m x (k*Cols) matrix is generated and split
// along columns into k m x Cols pieces, so the pieces share the skewed
// column structure (§IV-A).
func RMATCollection(k int, o Opts, p RMATParams) []*matrix.CSC {
	wide := o
	wide.Cols = o.Cols * k
	m := RMAT(wide, p)
	return m.ColSplit(k)
}

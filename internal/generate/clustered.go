package generate

import (
	"spkadd/internal/matrix"
)

// ClusteredCollection generates k matrices whose columns draw row
// indices from a shared per-column pool, giving the collection a
// controllable compression factor cf ≈ k*d/poolSize. This is the
// stand-in for the intermediate matrices a distributed SpGEMM produces
// (e.g. the Eukarya intermediates of Fig 3(c)/Fig 4(d), which have
// cf ≈ 22.6): the k intermediate products of one output block overlap
// heavily in their row support.
//
// cf is clamped to [1, k]; cf=1 reproduces independent ER-like inputs,
// cf=k makes all k inputs share exactly the same support.
func ClusteredCollection(k int, o Opts, cf float64) []*matrix.CSC {
	if cf < 1 {
		cf = 1
	}
	if cf > float64(k) {
		cf = float64(k)
	}
	poolSize := int(float64(k*o.NNZPerCol) / cf)
	if poolSize < o.NNZPerCol {
		poolSize = o.NNZPerCol
	}
	if poolSize > o.Rows {
		poolSize = o.Rows
	}
	return clustered(k, o, poolSize)
}

func clustered(k int, o Opts, poolSize int) []*matrix.CSC {
	coos := make([]*matrix.COO, k)
	for i := range coos {
		coos[i] = matrix.NewCOO(o.Rows, o.Cols)
		coos[i].Entries = make([]matrix.Triple, 0, o.totalDraws())
	}
	pool := make([]matrix.Index, poolSize)
	for j := 0; j < o.Cols; j++ {
		pr := newRNG(o.Seed, uint64(j)+0x200000)
		for t := range pool {
			pool[t] = matrix.Index(pr.intn(o.Rows))
		}
		for i := 0; i < k; i++ {
			r := newRNG(o.Seed, uint64(j)*uint64(k)+uint64(i)+0x300000)
			for t := 0; t < o.NNZPerCol; t++ {
				coos[i].Append(pool[r.intn(poolSize)], matrix.Index(j), 1)
			}
		}
	}
	out := make([]*matrix.CSC, k)
	for i := range out {
		out[i] = coos[i].ToCSC()
	}
	return out
}

// ProteinLike generates a square similarity-network-like matrix:
// vertices are grouped into clusters with dense in-cluster similarity
// edges plus sparse power-law cross-cluster noise. It stands in for the
// Eukarya/Isolates/Metaclust50 protein networks in the SUMMA
// experiments; what matters there is a symmetric-ish, clustered,
// skewed square matrix.
func ProteinLike(n, clusterSize, avgDeg int, seed uint64) *matrix.CSC {
	if clusterSize < 2 {
		clusterSize = 2
	}
	coo := matrix.NewCOO(n, n)
	inCluster := avgDeg * 3 / 4
	if inCluster < 1 {
		inCluster = 1
	}
	cross := avgDeg - inCluster
	for v := 0; v < n; v++ {
		r := newRNG(seed, uint64(v)+0x400000)
		base := (v / clusterSize) * clusterSize
		span := clusterSize
		if base+span > n {
			span = n - base
		}
		for t := 0; t < inCluster; t++ {
			u := base + r.intn(span)
			coo.Append(matrix.Index(v), matrix.Index(u), 1+r.float64())
		}
		for t := 0; t < cross; t++ {
			// Skewed cross edges: square the uniform draw to bias
			// toward low vertex ids (hub-like structure).
			f := r.float64()
			u := int(f * f * float64(n))
			if u >= n {
				u = n - 1
			}
			coo.Append(matrix.Index(v), matrix.Index(u), r.float64())
		}
	}
	return coo.ToCSC()
}

package hashtab

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spkadd/internal/matrix"
)

func TestSizeFor(t *testing.T) {
	cases := []struct {
		n    int
		lf   float64
		want int
	}{
		{0, 0.5, 1},
		{1, 0.5, 4},
		{3, 0.5, 8},
		{100, 0.5, 256},
		{100, 1.0, 128},
		{100, 0, 256},  // default load factor
		{100, 9, 128},  // above the valid range: clamp to 1.0, not the default
		{100, -1, 256}, // nonsense: default
	}
	for _, c := range cases {
		if got := SizeFor(c.n, c.lf); got != c.want {
			t.Errorf("SizeFor(%d, %v) = %d, want %d", c.n, c.lf, got, c.want)
		}
		if got := SizeFor(c.n, c.lf); got&(got-1) != 0 {
			t.Errorf("SizeFor(%d, %v) = %d not a power of two", c.n, c.lf, got)
		}
	}
}

func TestTableAccumulates(t *testing.T) {
	tab := NewTable(10, 0.5)
	Accum(tab, 5, 1.5)
	Accum(tab, 7, 2)
	Accum(tab, 5, 3)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if v, ok := tab.Get(5); !ok || v != 4.5 {
		t.Errorf("Get(5) = %v,%v want 4.5,true", v, ok)
	}
	if v, ok := tab.Get(7); !ok || v != 2 {
		t.Errorf("Get(7) = %v,%v want 2,true", v, ok)
	}
	if _, ok := tab.Get(6); ok {
		t.Error("Get(6) should miss")
	}
}

func TestTableCollisionsResolve(t *testing.T) {
	// Force collisions with a tiny table at load factor 1.
	tab := NewTable(4, 1.0)
	keys := []matrix.Index{0, 4, 8, 12} // likely collide under mask
	for i, k := range keys {
		Accum(tab, k, float64(i+1))
	}
	for i, k := range keys {
		if v, ok := tab.Get(k); !ok || v != float64(i+1) {
			t.Errorf("Get(%d) = %v,%v want %d,true", k, v, ok, i+1)
		}
	}
}

func TestAppendEntriesRoundTrip(t *testing.T) {
	tab := NewTable(64, 0.5)
	want := map[matrix.Index]matrix.Value{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		r := matrix.Index(rng.Intn(50))
		v := float64(rng.Intn(10))
		Accum(tab, r, v)
		want[r] += v
	}
	rows, vals := tab.AppendEntries(nil, nil)
	if len(rows) != len(want) || tab.Len() != len(want) {
		t.Fatalf("got %d entries, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if vals[i] != want[r] {
			t.Errorf("row %d: got %v want %v", r, vals[i], want[r])
		}
	}
	// Entries must be extractable in sorted order after an explicit sort.
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for i := 1; i < len(rows); i++ {
		if rows[i] == rows[i-1] {
			t.Error("duplicate key extracted")
		}
	}
}

func TestTableResetAndGrow(t *testing.T) {
	tab := NewTable(8, 0.5)
	Accum(tab, 1, 1)
	tab.Reset()
	if tab.Len() != 0 {
		t.Error("Reset did not clear")
	}
	if _, ok := tab.Get(1); ok {
		t.Error("entry survived Reset")
	}
	tab.Grow(4, 0.5)
	if tab.Cap() != SizeFor(4, 0.5) {
		t.Errorf("Grow must narrow the active window: cap=%d want %d", tab.Cap(), SizeFor(4, 0.5))
	}
	tab.Grow(10_000, 0.5)
	if tab.Cap() < 20_000 {
		t.Errorf("Grow(10000) cap = %d", tab.Cap())
	}
	Accum(tab, 9999, 3)
	if v, _ := tab.Get(9999); v != 3 {
		t.Error("table broken after Grow")
	}
}

func TestSymbolicCountsDistinct(t *testing.T) {
	s := NewSymbolic(100, 0.5)
	seen := map[matrix.Index]bool{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		r := matrix.Index(rng.Intn(80))
		isNew := s.Insert(r)
		if isNew == seen[r] {
			t.Fatalf("Insert(%d) new=%v but seen=%v", r, isNew, seen[r])
		}
		seen[r] = true
	}
	if s.Len() != len(seen) {
		t.Errorf("Len = %d, want %d", s.Len(), len(seen))
	}
}

func TestQuickTableMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		tab := NewTable(n/4+1, 0.5) // deliberately small: exercise Grow? no, collision paths
		want := map[matrix.Index]matrix.Value{}
		for i := 0; i < n; i++ {
			r := matrix.Index(rng.Intn(64))
			v := float64(rng.Intn(20) - 10)
			tab.Grow(len(want)+1+i, 0) // keep capacity ahead of inserts
			// Grow clears; rebuild from the map to mimic steady state.
			tab.Reset()
			for kr, kv := range want {
				Accum(tab, kr, kv)
			}
			Accum(tab, r, v)
			want[r] += v
		}
		if tab.Len() != len(want) {
			return false
		}
		for kr, kv := range want {
			if v, ok := tab.Get(kr); !ok || v != kv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestProbeCounterMonotone(t *testing.T) {
	tab := NewTable(16, 0.5)
	Accum(tab, 1, 1)
	if tab.Probes < 1 {
		t.Error("probe counter not advancing")
	}
	p := tab.Probes
	Accum(tab, 2, 1)
	if tab.Probes <= p {
		t.Error("probe counter not monotone")
	}
}

// TestAddWithMatchesAdd checks the generic-combine insert against the
// specialized "+" path, and that a non-Plus combine actually applies.
func TestAddWithMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	plus := func(a, b matrix.Value) matrix.Value { return a + b }
	tab, ref := NewTable(64, 0.5), NewTable(64, 0.5)
	for i := 0; i < 500; i++ {
		r := matrix.Index(rng.Intn(100))
		v := matrix.Value(rng.NormFloat64())
		tab.AddWith(r, v, plus)
		Accum(ref, r, v)
	}
	if tab.Len() != ref.Len() {
		t.Fatalf("Len = %d, want %d", tab.Len(), ref.Len())
	}
	for r := matrix.Index(0); r < 100; r++ {
		got, ok1 := tab.Get(r)
		want, ok2 := ref.Get(r)
		if ok1 != ok2 || got != want {
			t.Fatalf("Get(%d) = %v,%v want %v,%v", r, got, ok1, want, ok2)
		}
	}

	mn := NewTable(8, 0.5)
	mn.AddWith(3, 5, func(a, b matrix.Value) matrix.Value { return min(a, b) })
	mn.AddWith(3, 2, func(a, b matrix.Value) matrix.Value { return min(a, b) })
	mn.AddWith(3, 9, func(a, b matrix.Value) matrix.Value { return min(a, b) })
	if v, _ := mn.Get(3); v != 2 {
		t.Errorf("min-combine Get(3) = %v, want 2", v)
	}
}

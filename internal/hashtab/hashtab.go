// Package hashtab implements the open-addressing hash tables at the
// heart of the paper's HashSpKAdd (Algorithm 5) and its symbolic phase
// (Algorithm 6): power-of-two sized tables with the multiplicative
// masking hash HASH(r) = (a*r) & (2^q - 1) and linear probing.
//
// Two variants are provided: TableOf stores (row, value) pairs and
// accumulates values on duplicate insert (the numeric addition phase);
// Symbolic stores row indices only and counts distinct keys (the
// symbolic phase, 4 bytes per entry regardless of value type).
//
// The value axis is generic over matrix.Number. The "+" fast path is
// the free function Accum, constrained to matrix.Arith so its `+=` is
// a single machine instruction per instantiation (a method cannot
// carry a tighter constraint than its receiver type); the monoid-
// generic path is the AddWith method, available for every T including
// bool. Table aliases the float64 instantiation.
//
// A worker reuses one table across every column it processes, so Reset
// must not cost O(capacity): slots carry an epoch stamp and Reset just
// bumps the epoch. Grow additionally narrows the probe mask to the
// size the current column needs, so a huge column early on does not
// condemn every later small column to probing (and wiping) a huge
// table — that would silently destroy the cache behaviour the sliding
// hash algorithm is built around.
//
// Tables are not safe for concurrent use; the parallel SpKAdd driver
// gives each worker its own table, exactly as the paper's
// thread-private data structures (§III-A).
package hashtab

import "spkadd/internal/matrix"

// hashMul is the multiplicative constant `a` of the paper's
// HASH(r) = (a*r) & (2^q - 1). Knuth's golden-ratio prime spreads
// consecutive row indices well under the power-of-two mask.
const hashMul uint32 = 2654435761

// DefaultLoadFactor bounds table occupancy. The paper sizes tables as
// "a power of two greater than nnz"; we keep the power-of-two sizing
// but reserve headroom so linear probing stays O(1) in expectation.
const DefaultLoadFactor = 0.5

// ClampLoadFactor normalizes a caller-given load factor to the valid
// range (0, 1]: non-positive values (unset) become DefaultLoadFactor,
// values above 1 clamp to 1.0 — a caller asking for 0.9 and one
// typo'ing 9.0 should get adjacent tables, not wildly different ones.
// Every load-factor knob in the library (core, spgemm, cachesim)
// normalizes through this one function so table sizing never diverges
// between the real kernels and the simulator.
func ClampLoadFactor(lf float64) float64 {
	switch {
	case lf <= 0:
		return DefaultLoadFactor
	case lf > 1:
		return 1
	default:
		return lf
	}
}

// SizeFor returns the table capacity (a power of two) used for n keys
// at the given load factor (normalized by ClampLoadFactor; at 1.0 the
// +1 below keeps at least one empty slot, so probing still terminates
// at a fully packed table).
func SizeFor(n int, loadFactor float64) int {
	loadFactor = ClampLoadFactor(loadFactor)
	need := int(float64(n)/loadFactor) + 1
	p := 1
	for p < need {
		p <<= 1
	}
	return p
}

// TableOf is the numeric-phase hash table holding (row, value) entries
// of element type T.
type TableOf[T matrix.Number] struct {
	keys   []matrix.Index
	vals   []T
	stamps []uint32
	epoch  uint32
	mask   uint32 // active window size - 1 (window may be smaller than storage)
	n      int

	// Probes counts total probe steps, for the work-complexity tests
	// backing Table I. It survives Reset/Grow so a worker can
	// accumulate across the many columns it processes; callers zero it
	// explicitly when flushing.
	Probes int64
}

// Table is the float64 numeric-phase table.
type Table = TableOf[matrix.Value]

// NewTable returns a float64 table with capacity for at least n keys.
func NewTable(n int, loadFactor float64) *Table {
	return NewTableOf[matrix.Value](n, loadFactor)
}

// NewTableOf returns a table over T with capacity for at least n keys.
func NewTableOf[T matrix.Number](n int, loadFactor float64) *TableOf[T] {
	t := &TableOf[T]{}
	t.Grow(n, loadFactor)
	return t
}

// Cap returns the active window size (a power of two).
func (t *TableOf[T]) Cap() int { return int(t.mask) + 1 }

// Len returns the number of distinct keys stored.
func (t *TableOf[T]) Len() int { return t.n }

// Reset clears the table for reuse in O(1) by bumping the epoch.
func (t *TableOf[T]) Reset() {
	t.n = 0
	t.epoch++
	if t.epoch == 0 { // stamp wraparound: restore the invariant
		for i := range t.stamps {
			t.stamps[i] = 0
		}
		t.epoch = 1
	}
}

// Grow clears the table and sets the active probe window to hold at
// least n keys, enlarging storage only when needed.
func (t *TableOf[T]) Grow(n int, loadFactor float64) {
	size := SizeFor(n, loadFactor)
	if size > len(t.keys) {
		t.keys = make([]matrix.Index, size)
		t.vals = make([]T, size)
		t.stamps = make([]uint32, size)
		t.epoch = 0
	}
	t.mask = uint32(size - 1)
	t.Reset()
}

// Accum inserts (r, v) into t, accumulating v with += if r is already
// present (lines 5-12 of Algorithm 5). It is the "+" fast path of
// every hash kernel, a free function constrained to the arithmetic
// types so each instantiation compiles to a branch-once inlined probe
// loop — no dispatch per entry, no boolean case to branch around.
//
//spkadd:noalloc per-entry hot path of every hash kernel
func Accum[T matrix.Arith](t *TableOf[T], r matrix.Index, v T) {
	h := (hashMul * uint32(r)) & t.mask
	for {
		t.Probes++
		if t.stamps[h] != t.epoch { // empty slot
			t.stamps[h] = t.epoch
			t.keys[h] = r
			t.vals[h] = v
			t.n++
			return
		}
		if t.keys[h] == r {
			t.vals[h] += v
			return
		}
		h = (h + 1) & t.mask // linear probing
	}
}

// AddWith is Accum under an arbitrary combine operation: it inserts
// (r, v) and, when r is already present, replaces the stored value
// with combine(stored, v). Accum is exactly AddWith with "+" inlined;
// the kernels select between them once per column, so the generic
// path's indirect call is paid only by non-Plus monoids.
//
//spkadd:noalloc per-entry hot path of every hash kernel
func (t *TableOf[T]) AddWith(r matrix.Index, v T, combine func(a, b T) T) {
	h := (hashMul * uint32(r)) & t.mask
	for {
		t.Probes++
		if t.stamps[h] != t.epoch { // empty slot
			t.stamps[h] = t.epoch
			t.keys[h] = r
			t.vals[h] = v
			t.n++
			return
		}
		if t.keys[h] == r {
			t.vals[h] = combine(t.vals[h], v)
			return
		}
		h = (h + 1) & t.mask // linear probing
	}
}

// Get returns the accumulated value for r and whether r is present.
func (t *TableOf[T]) Get(r matrix.Index) (T, bool) {
	h := (hashMul * uint32(r)) & t.mask
	for {
		if t.stamps[h] != t.epoch {
			var z T
			return z, false
		}
		if t.keys[h] == r {
			return t.vals[h], true
		}
		h = (h + 1) & t.mask
	}
}

// AppendEntries appends all valid (row, value) pairs to rows/vals in
// table order (lines 13-14 of Algorithm 5) and returns the extended
// slices. Table order is not sorted; callers sort afterwards if needed.
func (t *TableOf[T]) AppendEntries(rows []matrix.Index, vals []T) ([]matrix.Index, []T) {
	for h := 0; h <= int(t.mask); h++ {
		if t.stamps[h] == t.epoch {
			rows = append(rows, t.keys[h])
			vals = append(vals, t.vals[h])
		}
	}
	return rows, vals
}

// Symbolic is the index-only table of Algorithm 6, used to count the
// distinct row indices of an output column before allocation. It holds
// no values at all, so it needs no type parameter: one symbolic table
// serves every instantiation of the numeric kernels.
type Symbolic struct {
	keys   []matrix.Index
	stamps []uint32
	epoch  uint32
	mask   uint32
	n      int

	Probes int64
}

// NewSymbolic returns a symbolic table with capacity for n keys.
func NewSymbolic(n int, loadFactor float64) *Symbolic {
	s := &Symbolic{}
	s.Grow(n, loadFactor)
	return s
}

// Cap returns the active window size.
func (s *Symbolic) Cap() int { return int(s.mask) + 1 }

// Len returns the number of distinct keys inserted.
func (s *Symbolic) Len() int { return s.n }

// Reset clears the table for reuse in O(1).
func (s *Symbolic) Reset() {
	s.n = 0
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamps {
			s.stamps[i] = 0
		}
		s.epoch = 1
	}
}

// Grow clears the table and sets the active window for n keys.
func (s *Symbolic) Grow(n int, loadFactor float64) {
	size := SizeFor(n, loadFactor)
	if size > len(s.keys) {
		s.keys = make([]matrix.Index, size)
		s.stamps = make([]uint32, size)
		s.epoch = 0
	}
	s.mask = uint32(size - 1)
	s.Reset()
}

// Insert records r; it returns true when r was new (lines 7-12 of
// Algorithm 6: the nonzero counter increments on first sight only).
func (s *Symbolic) Insert(r matrix.Index) bool {
	h := (hashMul * uint32(r)) & s.mask
	for {
		s.Probes++
		if s.stamps[h] != s.epoch {
			s.stamps[h] = s.epoch
			s.keys[h] = r
			s.n++
			return true
		}
		if s.keys[h] == r {
			return false
		}
		h = (h + 1) & s.mask
	}
}

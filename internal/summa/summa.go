// Package summa simulates the distributed-memory sparse SUMMA
// algorithm of §IV-E (Fig 5) in-process: a g x g grid of "processes"
// (goroutines) each owning one block of the two operands, g broadcast
// stages delivering operand blocks along grid rows and columns, a
// local hash SpGEMM per stage, and a final SpKAdd over the g
// intermediate products per process — the exact computation whose two
// kernels (Local Multiply and SpKAdd) Fig 6 reports.
//
// The paper runs on 4096-16384 MPI processes on Cori; this simulation
// preserves the computational structure (who multiplies what, how many
// intermediates the SpKAdd reduces, sorted vs unsorted intermediates)
// while communication is modelled by channels and excluded from the
// timings, matching Fig 6's computation-only accounting.
package summa

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/matrix"
	"spkadd/internal/sched"
	"spkadd/internal/spgemm"
)

// Config describes one simulated SUMMA run.
type Config struct {
	// Grid is g: the process grid is g x g and each process reduces
	// k = g intermediate products.
	Grid int
	// SpKAdd is the reduction algorithm (the paper compares Heap
	// against Hash).
	SpKAdd core.Algorithm
	// Phases selects the reduction's execution engine; the zero value
	// (PhasesAuto) picks one per workload. The Fig 6 harness pins
	// PhasesTwoPass to measure the paper's two-phase formulation.
	Phases core.Phases
	// SortIntermediates makes the local multiplications emit sorted
	// columns. Heap SpKAdd requires it; hash SpKAdd does not, which
	// lets the multiply phase skip sorting (the "Unsorted Hash" bars
	// of Fig 6, about 20% faster local multiply).
	SortIntermediates bool
	// Threads is the thread count inside each process (the paper uses
	// 8 threads per process); <1 means GOMAXPROCS.
	Threads int
	// Sequential runs processes one after another instead of as
	// concurrent goroutines. Concurrent mode exercises the real
	// dataflow; sequential mode gives undistorted per-phase timings
	// on oversubscribed hosts and is what the benchmark harness uses.
	Sequential bool
}

// Report aggregates per-process phase timings. Sum adds the phase
// time of every process (total work); Max is the slowest process
// (the makespan a real distributed run would observe).
type Report struct {
	LocalMultiplySum time.Duration
	LocalMultiplyMax time.Duration
	SpKAddSum        time.Duration
	SpKAddMax        time.Duration
	// IntermediateNNZ is the total nnz across all intermediate
	// products; CompressionFactor is IntermediateNNZ / nnz(C).
	IntermediateNNZ   int64
	CompressionFactor float64
	// CommVolumeBytes is the broadcast traffic the run would generate
	// on a real network: every operand block is delivered to the g-1
	// remote peers of its grid row or column each stage (12 bytes per
	// entry plus column pointers). Fig 6 excludes communication from
	// its timings; the volume is reported for completeness.
	CommVolumeBytes int64
}

// Sentinels for the argument checks; callers select on these with
// errors.Is.
var (
	ErrDimMismatch = errors.New("summa: dimension mismatch")
	ErrBadGrid     = errors.New("summa: grid must be >= 1")
	ErrUnsorted    = errors.New("summa: operands must have sorted columns for block distribution")
)

// Run multiplies a (m x l) by b (l x n) on a Grid x Grid simulated
// process grid and returns the assembled product with the phase
// report.
func Run(a, b *matrix.CSC, cfg Config) (*matrix.CSC, Report, error) {
	var rep Report
	if a.Cols != b.Rows {
		return nil, rep, fmt.Errorf("%w: %dx%d * %dx%d", ErrDimMismatch, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	g := cfg.Grid
	if g < 1 {
		return nil, rep, fmt.Errorf("%w: got %d", ErrBadGrid, g)
	}
	if !a.IsColumnSorted() || !b.IsColumnSorted() {
		return nil, rep, ErrUnsorted
	}

	// Distribute: A on the grid as g x g row/column blocks (the
	// owner of A block (i,s) is process (i,s)); likewise B block
	// (s,j) lives at (s,j). Stage s broadcasts A(:,s) blocks along
	// grid rows and B(s,:) blocks along grid columns (Fig 5).
	aBlocks := make([][]*matrix.CSC, g)
	bBlocks := make([][]*matrix.CSC, g)
	for i := 0; i < g; i++ {
		aBlocks[i] = make([]*matrix.CSC, g)
		bBlocks[i] = make([]*matrix.CSC, g)
		r0, r1 := span(a.Rows, g, i)
		for s := 0; s < g; s++ {
			c0, c1 := span(a.Cols, g, s)
			aBlocks[i][s] = a.Block(r0, r1, c0, c1)
		}
		k0, k1 := span(b.Rows, g, i)
		for j := 0; j < g; j++ {
			c0, c1 := span(b.Cols, g, j)
			bBlocks[i][j] = b.Block(k0, k1, c0, c1)
		}
	}

	type result struct {
		block   *matrix.CSC
		mulTime time.Duration
		addTime time.Duration
		interNZ int64
		err     error
	}
	results := make([][]result, g)
	for i := range results {
		results[i] = make([]result, g)
	}

	// Broadcast volume: block (i,s) of A travels to the g-1 other
	// processes in grid row i; block (s,j) of B to grid column j.
	var commVolume int64
	for i := 0; i < g; i++ {
		for s := 0; s < g; s++ {
			commVolume += int64(g-1) * blockBytes(aBlocks[i][s])
			commVolume += int64(g-1) * blockBytes(bBlocks[i][s])
		}
	}
	rep.CommVolumeBytes = commVolume

	mulOpt := spgemm.Options{Threads: cfg.Threads, SortOutput: cfg.SortIntermediates}
	addOpt := core.Options{Algorithm: cfg.SpKAdd, Threads: cfg.Threads, SortedOutput: true, Phases: cfg.Phases}

	// In sequential mode one workspace serves every process's
	// reduction in turn, so the g*g SpKAdds share their scratch
	// structures across stages (a real rank would likewise keep its
	// scratch resident across SUMMA iterations), and one resident
	// executor serves every process's multiply and reduction phases —
	// the whole process loop spawns no per-phase goroutines. Output
	// recycling stays off: each reduced block is retained for
	// assembly. In concurrent mode the processes draw pooled
	// workspaces (each with its own resident executor) through
	// core.Add instead; sharing one executor there would serialize the
	// concurrent processes' phases.
	var addWS *core.Workspace
	if cfg.Sequential {
		addWS = core.NewWorkspace(false)
		ex := sched.NewExecutor(cfg.Threads)
		defer ex.Close()
		mulOpt.Executor = ex
		addOpt.Executor = ex
	}

	process := func(i, j int, recvA <-chan *matrix.CSC, recvB <-chan *matrix.CSC) result {
		var res result
		partials := make([]*matrix.CSC, 0, g)
		for s := 0; s < g; s++ {
			// "Receive" the stage-s operand blocks. In concurrent
			// mode these arrive over channels from the owners; the
			// transfer is communication and stays outside the timers.
			blkA := <-recvA
			blkB := <-recvB
			start := time.Now()
			p, err := spgemm.Mul(blkA, blkB, mulOpt)
			res.mulTime += time.Since(start)
			if err != nil {
				res.err = err
				return res
			}
			partials = append(partials, p)
			res.interNZ += int64(p.NNZ())
		}
		start := time.Now()
		var sum *matrix.CSC
		var err error
		if addWS != nil {
			sum, err = addWS.Add(partials, addOpt)
		} else {
			sum, err = core.Add(partials, addOpt)
		}
		res.addTime = time.Since(start)
		if err != nil {
			res.err = err
			return res
		}
		res.block = sum
		return res
	}

	// Broadcast channels: one per (process, operand). Owners feed
	// every stage in order.
	feed := func(i, j int) (<-chan *matrix.CSC, <-chan *matrix.CSC) {
		ca := make(chan *matrix.CSC, g)
		cb := make(chan *matrix.CSC, g)
		for s := 0; s < g; s++ {
			ca <- aBlocks[i][s] // broadcast along grid row i
			cb <- bBlocks[s][j] // broadcast along grid column j
		}
		close(ca)
		close(cb)
		return ca, cb
	}

	if cfg.Sequential {
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				ca, cb := feed(i, j)
				results[i][j] = process(i, j, ca, cb)
			}
		}
	} else {
		var wg sync.WaitGroup
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				wg.Add(1)
				go func(i, j int) {
					defer wg.Done()
					ca, cb := feed(i, j)
					results[i][j] = process(i, j, ca, cb)
				}(i, j)
			}
		}
		wg.Wait()
	}

	blocks := make([][]*matrix.CSC, g)
	for i := 0; i < g; i++ {
		blocks[i] = make([]*matrix.CSC, g)
		for j := 0; j < g; j++ {
			res := &results[i][j]
			if res.err != nil {
				return nil, rep, fmt.Errorf("summa: process (%d,%d): %w", i, j, res.err)
			}
			blocks[i][j] = res.block
			rep.LocalMultiplySum += res.mulTime
			rep.SpKAddSum += res.addTime
			if res.mulTime > rep.LocalMultiplyMax {
				rep.LocalMultiplyMax = res.mulTime
			}
			if res.addTime > rep.SpKAddMax {
				rep.SpKAddMax = res.addTime
			}
			rep.IntermediateNNZ += res.interNZ
		}
	}

	c := assemble(blocks, a.Rows, b.Cols)
	if c.NNZ() > 0 {
		rep.CompressionFactor = float64(rep.IntermediateNNZ) / float64(c.NNZ())
	}
	return c, rep, nil
}

// blockBytes is the serialized size of one operand block: 12 bytes
// per entry plus 8 per column pointer.
func blockBytes(b *matrix.CSC) int64 {
	return int64(b.NNZ())*12 + int64(len(b.ColPtr))*8
}

// span returns the w-th of g near-equal subranges of [0, n).
func span(n, g, w int) (int, int) { return w * n / g, (w + 1) * n / g }

// assemble pastes the g x g output blocks back into one global CSC.
func assemble(blocks [][]*matrix.CSC, rows, cols int) *matrix.CSC {
	g := len(blocks)
	out := matrix.NewCSC(rows, cols, 0)
	for gj := 0; gj < g; gj++ {
		c0, c1 := span(cols, g, gj)
		for j := c0; j < c1; j++ {
			for gi := 0; gi < g; gi++ {
				r0, _ := span(rows, g, gi)
				blk := blocks[gi][gj]
				lj := j - c0
				brows, bvals := blk.ColRows(lj), blk.ColVals(lj)
				for p := range brows {
					out.RowIdx = append(out.RowIdx, brows[p]+matrix.Index(r0))
					out.Val = append(out.Val, bvals[p])
				}
			}
			out.ColPtr[j+1] = int64(len(out.RowIdx))
		}
	}
	return out
}

package summa

import (
	"testing"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

func TestSummaMatchesSerial(t *testing.T) {
	a := generate.ProteinLike(120, 10, 6, 1)
	b := generate.ProteinLike(120, 10, 6, 2)
	want := matrix.ReferenceMul(a, b)
	for _, g := range []int{1, 2, 3, 4} {
		for _, seq := range []bool{true, false} {
			got, rep, err := Run(a, b, Config{
				Grid: g, SpKAdd: core.Hash, SortIntermediates: false, Sequential: seq,
			})
			if err != nil {
				t.Fatalf("g=%d seq=%v: %v", g, seq, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("g=%d: invalid output: %v", g, err)
			}
			if !got.EqualTol(want, 1e-9) {
				t.Errorf("g=%d seq=%v: SUMMA product differs from serial reference", g, seq)
			}
			if g > 1 && rep.IntermediateNNZ < int64(got.NNZ()) {
				t.Errorf("g=%d: intermediate nnz %d below output nnz %d", g, rep.IntermediateNNZ, got.NNZ())
			}
		}
	}
}

func TestSummaHeapNeedsSortedIntermediates(t *testing.T) {
	a := generate.ProteinLike(80, 8, 5, 3)
	b := generate.ProteinLike(80, 8, 5, 4)
	want := matrix.ReferenceMul(a, b)

	got, _, err := Run(a, b, Config{Grid: 2, SpKAdd: core.Heap, SortIntermediates: true, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualTol(want, 1e-9) {
		t.Error("heap SUMMA wrong result")
	}

	// Heap on unsorted intermediates must surface the sorted-input error.
	if _, _, err := Run(a, b, Config{Grid: 2, SpKAdd: core.Heap, SortIntermediates: false, Sequential: true}); err == nil {
		t.Error("heap SpKAdd accepted unsorted intermediates")
	}
}

func TestSummaAllVariants(t *testing.T) {
	// The three Fig 6 configurations must all produce the same product.
	a := generate.ProteinLike(100, 10, 6, 5)
	b := generate.ProteinLike(100, 10, 6, 6)
	want := matrix.ReferenceMul(a, b)
	cases := []Config{
		{Grid: 2, SpKAdd: core.Heap, SortIntermediates: true},
		{Grid: 2, SpKAdd: core.Hash, SortIntermediates: true},
		{Grid: 2, SpKAdd: core.Hash, SortIntermediates: false},
	}
	for _, cfg := range cases {
		cfg.Sequential = true
		got, rep, err := Run(a, b, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if !got.EqualTol(want, 1e-9) {
			t.Errorf("%+v: wrong product", cfg)
		}
		if rep.LocalMultiplySum <= 0 || rep.SpKAddSum <= 0 {
			t.Errorf("%+v: phases not timed: %+v", cfg, rep)
		}
		if rep.LocalMultiplyMax > rep.LocalMultiplySum || rep.SpKAddMax > rep.SpKAddSum {
			t.Errorf("%+v: max exceeds sum", cfg)
		}
	}
}

func TestSummaErrors(t *testing.T) {
	a := matrix.NewCSC(4, 5, 0)
	b := matrix.NewCSC(6, 3, 0)
	if _, _, err := Run(a, b, Config{Grid: 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	sq := matrix.NewCSC(4, 4, 0)
	if _, _, err := Run(sq, sq, Config{Grid: 0}); err == nil {
		t.Error("zero grid accepted")
	}
}

func TestSummaRectangular(t *testing.T) {
	// Non-square operands with dimensions not divisible by the grid.
	a := generate.ER(generate.Opts{Rows: 53, Cols: 37, NNZPerCol: 5, Seed: 7})
	b := generate.ER(generate.Opts{Rows: 37, Cols: 41, NNZPerCol: 4, Seed: 8})
	want := matrix.ReferenceMul(a, b)
	got, _, err := Run(a, b, Config{Grid: 3, SpKAdd: core.Hash, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualTol(want, 1e-9) {
		t.Error("rectangular SUMMA differs from reference")
	}
}

func TestCommVolumeAccounting(t *testing.T) {
	a := generate.ER(generate.Opts{Rows: 64, Cols: 64, NNZPerCol: 4, Seed: 9})
	b := generate.ER(generate.Opts{Rows: 64, Cols: 64, NNZPerCol: 4, Seed: 10})
	_, rep1, err := Run(a, b, Config{Grid: 1, SpKAdd: core.Hash, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CommVolumeBytes != 0 {
		t.Errorf("single process should broadcast nothing, got %d bytes", rep1.CommVolumeBytes)
	}
	_, rep2, err := Run(a, b, Config{Grid: 2, SpKAdd: core.Hash, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	_, rep4, err := Run(a, b, Config{Grid: 4, SpKAdd: core.Hash, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// Volume grows with the grid: each block reaches g-1 peers.
	if !(rep4.CommVolumeBytes > rep2.CommVolumeBytes && rep2.CommVolumeBytes > 0) {
		t.Errorf("comm volume not increasing with grid: g2=%d g4=%d",
			rep2.CommVolumeBytes, rep4.CommVolumeBytes)
	}
	// Lower bound: at g=2 every entry of A and B crosses the wire once.
	if min := int64(a.NNZ()+b.NNZ()) * 12; rep2.CommVolumeBytes < min {
		t.Errorf("g=2 volume %d below entry lower bound %d", rep2.CommVolumeBytes, min)
	}
}

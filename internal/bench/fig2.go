package bench

import (
	"fmt"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// fig2Algorithms are the contenders of the Fig 2 winner grids. The
// paper's grid includes the MKL baselines; they never win a cell, so
// the harness omits them (their runtimes appear in Tables III-IV).
var fig2Algorithms = []core.Algorithm{
	core.TwoWayIncremental, core.TwoWayTree, core.Heap, core.SPA,
	core.Hash, core.SlidingHash,
}

// Fig2ER prints the best-performing algorithm for each (k, d) cell on
// ER matrices — the left panel of Fig 2. The paper sweeps d up to 128K
// on 4M-row matrices; the harness sweeps to 4096 on scaled rows, which
// covers the hash-to-sliding-hash crossover at the scaled cache size.
func Fig2ER(cfg Config) error {
	m := 1 << 18 / cfg.scale()
	n := 64 / cfg.scale()
	if n < 8 {
		n = 8
	}
	ks := []int{4, 8, 16, 32, 64, 128}
	ds := []int{16, 64, 256, 1024, 4096}
	fmt.Fprintf(cfg.Out, "Fig 2 (left): best algorithm per (k, d), ER, m=%d n=%d\n", m, n)
	gen := func(k, d int) []*matrix.CSC {
		return generate.ERCollection(k, generate.Opts{Rows: m, Cols: n, NNZPerCol: d, Seed: 7})
	}
	return winnerGrid(cfg, ks, ds, gen)
}

// Fig2RMAT prints the winner grid for RMAT matrices — the right panel
// of Fig 2.
func Fig2RMAT(cfg Config) error {
	m := 1 << 18 / cfg.scale()
	n := 64 / cfg.scale()
	if n < 8 {
		n = 8
	}
	ks := []int{4, 8, 16, 32, 64, 128}
	ds := []int{16, 64, 256, 1024}
	fmt.Fprintf(cfg.Out, "Fig 2 (right): best algorithm per (k, d), RMAT, m=%d n=%d\n", m, n)
	gen := func(k, d int) []*matrix.CSC {
		return generate.RMATCollection(k, generate.Opts{Rows: m, Cols: n, NNZPerCol: d, Seed: 8}, generate.Graph500)
	}
	return winnerGrid(cfg, ks, ds, gen)
}

func winnerGrid(cfg Config, ks, ds []int, gen func(k, d int) []*matrix.CSC) error {
	fmt.Fprintf(cfg.Out, "%-8s", "k\\d")
	for _, d := range ds {
		fmt.Fprintf(cfg.Out, " %-18d", d)
	}
	fmt.Fprintln(cfg.Out)
	for _, k := range ks {
		fmt.Fprintf(cfg.Out, "%-8d", k)
		for _, d := range ds {
			as := gen(k, d)
			winner, err := bestAlgorithm(cfg, as, d, k)
			if err != nil {
				return fmt.Errorf("k=%d d=%d: %w", k, d, err)
			}
			fmt.Fprintf(cfg.Out, " %-18v", winner)
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

func bestAlgorithm(cfg Config, as []*matrix.CSC, d, k int) (core.Algorithm, error) {
	bestAlg := core.Hash
	var bestDur = -1
	for _, alg := range fig2Algorithms {
		if skipEstimate(alg, k, as[0].Cols, d) {
			continue
		}
		opt := core.Options{Algorithm: alg, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes(), Phases: core.PhasesTwoPass}
		dur, _, err := timeAdd(as, opt, cfg.reps())
		if err != nil {
			return bestAlg, err
		}
		if bestDur < 0 || int(dur) < bestDur {
			bestDur = int(dur)
			bestAlg = alg
		}
	}
	return bestAlg, nil
}

package bench

import (
	"fmt"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/ops"
)

// Monoid measures the generic combine path against the specialized
// Plus fast path: every built-in monoid across the k-way algorithms
// and engines on one medium workload, reported as runtime with the
// overhead factor relative to the same cell under Plus. Plus itself
// is the control row — it must be within noise of the pre-monoid
// kernels, because the fast path is the same inlined "+=" loop,
// selected once per call.
func Monoid(cfg Config) error {
	m := 1 << 17 / cfg.scale()
	n := 48 / cfg.scale()
	if n < 8 {
		n = 8
	}
	c := phasesCase{"ER", 16, 128}
	as := phasesCollection(c, m, n)
	algs := []core.Algorithm{core.Hash, core.SPA, core.Heap}
	fmt.Fprintf(cfg.Out, "Monoid overhead: SpKAdd runtime (s), %s k=%d d=%d, m=%d n=%d (vs Plus per cell)\n",
		c.pattern, c.k, c.d, m, n)
	fmt.Fprintf(cfg.Out, "%-8s %-6s", "Monoid", "Alg")
	for _, p := range core.PhasesPolicies {
		fmt.Fprintf(cfg.Out, " %16v", p)
	}
	fmt.Fprintln(cfg.Out)
	plus := make(map[string]time.Duration)
	for _, mon := range ops.Builtins {
		for _, alg := range algs {
			fmt.Fprintf(cfg.Out, "%-8s %-6v", mon.Name, alg)
			for _, p := range core.PhasesPolicies {
				opt := core.Options{
					Algorithm: alg, Phases: p, Monoid: mon,
					SortedOutput: true, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes(),
				}
				dur, _, err := timeAdd(as, opt, cfg.reps())
				if err != nil {
					return fmt.Errorf("monoid %s %v %v: %w", mon.Name, alg, p, err)
				}
				key := fmt.Sprintf("%v/%v", alg, p)
				if mon == ops.Plus {
					plus[key] = dur
					fmt.Fprintf(cfg.Out, " %16s", fmtDur(dur))
				} else {
					fmt.Fprintf(cfg.Out, " %9s (%4.2fx)", fmtDur(dur), float64(dur)/float64(plus[key]))
				}
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

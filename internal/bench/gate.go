package bench

// AllocGateBench selects the steady-state Adder-reuse benchmarks whose
// allocs/op must be exactly zero: the Plus fast path, the generic
// combine path, the non-default schedules, the faults-off injection
// sites, the self-tuning planner's lookup/record loop, and the
// non-float64 value-type instantiations (float32/int32/int64/bool).
// It is the single source of truth for the CI
// allocation-regression gate — the workflow quotes it verbatim and
// TestAllocGateRegexMatchesCI fails when the two drift apart. The
// escape audit (`go run scripts/escape_audit.go`) is the compile-time
// half of the same contract.
const AllocGateBench = `^BenchmarkAdderReuse(Monoid|Sched|FaultsOff|Planner|Dtype)?$`

package bench

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestAllocGateRegexMatchesCI pins the CI allocation gate to
// AllocGateBench: the workflow must quote the constant verbatim, so
// renaming a gated benchmark (or adding a new reuse variant) forces
// both sides to move together.
func TestAllocGateRegexMatchesCI(t *testing.T) {
	data, err := os.ReadFile("../../.github/workflows/ci.yml")
	if err != nil {
		t.Fatalf("reading workflow: %v", err)
	}
	if !strings.Contains(string(data), "-bench='"+AllocGateBench+"'") {
		t.Fatalf("ci.yml allocation gate does not use AllocGateBench = %q verbatim", AllocGateBench)
	}
}

// TestAllocGateRegexSelectsReuseBenchmarks keeps the regex itself
// honest: it must select every AdderReuse variant and nothing else.
func TestAllocGateRegexSelectsReuseBenchmarks(t *testing.T) {
	re := regexp.MustCompile(AllocGateBench)
	for _, name := range []string{
		"BenchmarkAdderReuse",
		"BenchmarkAdderReuseMonoid",
		"BenchmarkAdderReuseSched",
		"BenchmarkAdderReuseFaultsOff",
		"BenchmarkAdderReusePlanner",
		"BenchmarkAdderReuseDtype",
	} {
		if !re.MatchString(name) {
			t.Errorf("%s not selected by %q", name, AllocGateBench)
		}
	}
	for _, name := range []string{
		"BenchmarkAdderReuseX",
		"BenchmarkAdder",
		"BenchmarkPoolThroughput",
	} {
		if re.MatchString(name) {
			t.Errorf("%s unexpectedly selected by %q", name, AllocGateBench)
		}
	}
}

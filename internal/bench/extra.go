package bench

import (
	"fmt"

	"spkadd/internal/core"
	"spkadd/internal/generate"
)

// Tune finds the host's best sliding-hash table size for a
// representative dense workload — the practical takeaway of Fig 4
// ("the optimum hash table sizes are related to the cache sizes").
// It sweeps power-of-four caps and reports the fastest.
func Tune(cfg Config) error {
	m := 1 << 18 / cfg.scale()
	as := generate.ERCollection(64, generate.Opts{Rows: m, Cols: 16, NNZPerCol: 1024, Seed: 51})
	maxColIn := 0
	for j := 0; j < as[0].Cols; j++ {
		in := 0
		for _, a := range as {
			in += a.ColNNZ(j)
		}
		if in > maxColIn {
			maxColIn = in
		}
	}
	fmt.Fprintf(cfg.Out, "Tuner: sliding-hash table size sweep on this host (ER d=1024 k=64, m=%d)\n", m)
	bestSize, bestDur := 0, int64(-1)
	for size := 128; size/4 < maxColIn; size *= 4 {
		opt := core.Options{Algorithm: core.SlidingHash, Threads: cfg.Threads, MaxTableEntries: size}
		dur, _, err := timeAdd(as, opt, cfg.reps()+2)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "  size %-8d %s s\n", size, fmtDur(dur))
		if bestDur < 0 || int64(dur) < bestDur {
			bestDur, bestSize = int64(dur), size
		}
	}
	fmt.Fprintf(cfg.Out, "best table size on this host: %d entries (~%d KB numeric tables)\n\n",
		bestSize, bestSize*core.BytesPerAddEntry/1024)
	return nil
}

// Ablation prints the design-choice comparisons DESIGN.md calls out:
// hash-table load factor, scheduling strategy on skewed inputs, and
// the cost of sorted output for the hash algorithm.
func Ablation(cfg Config) error {
	m := 1 << 17 / cfg.scale()
	er := generate.ERCollection(32, generate.Opts{Rows: m, Cols: 32, NNZPerCol: 256, Seed: 52})
	rmat := generate.RMATCollection(32, generate.Opts{Rows: m, Cols: 64, NNZPerCol: 128, Seed: 53}, generate.Graph500)

	fmt.Fprintln(cfg.Out, "Ablation 1: hash-table load factor (ER d=256 k=32)")
	for _, lf := range []float64{0.25, 0.5, 0.75, 0.95} {
		// Ablations pin the two-pass engine so the numbers stay
		// comparable across runs regardless of what PhasesAuto picks.
		dur, _, err := timeAdd(er, core.Options{Algorithm: core.Hash, Threads: cfg.Threads, LoadFactor: lf, Phases: core.PhasesTwoPass}, cfg.reps()+2)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "  lf=%.2f  %s s\n", lf, fmtDur(dur))
	}

	fmt.Fprintln(cfg.Out, "Ablation 2: column scheduling on skewed RMAT (d=128 k=32)")
	for _, s := range core.Schedules {
		dur, _, err := timeAdd(rmat, core.Options{Algorithm: core.Hash, Threads: cfg.Threads, Schedule: s, Phases: core.PhasesTwoPass}, cfg.reps()+2)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "  %-17v %s s\n", s, fmtDur(dur))
	}

	fmt.Fprintln(cfg.Out, "Ablation 3: sorted vs unsorted hash output (ER d=256 k=32)")
	for _, sorted := range []bool{false, true} {
		dur, _, err := timeAdd(er, core.Options{Algorithm: core.Hash, Threads: cfg.Threads, SortedOutput: sorted, Phases: core.PhasesTwoPass}, cfg.reps()+2)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "  sorted=%-5v %s s\n", sorted, fmtDur(dur))
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

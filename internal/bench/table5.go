package bench

import (
	"fmt"

	"spkadd/internal/cachesim"
)

// Table5 reproduces the last-level cache-miss comparison of hash vs
// sliding hash on the four Skylake cases of Fig 4, using the
// trace-driven cache simulator in place of Cachegrind. The modelled
// cache is scaled with the workloads (the paper's 32MB LLC pairs with
// 4M-row matrices; the harness's default 1/16-scale workloads pair
// with a 2MB modelled LLC) so the spill/fit boundary lands on the same
// cases: (b) and (c) spill and benefit from sliding, (a) and (d) fit
// and show no difference.
func Table5(cfg Config) error {
	modelCache := int64(2<<20) / int64(cfg.scale())
	modelThreads := 8
	fmt.Fprintf(cfg.Out, "Table V: simulated LL cache misses (modelled LLC=%dKB shared by %d threads)\n",
		modelCache>>10, modelThreads)
	fmt.Fprintf(cfg.Out, "%-44s %14s %14s\n", "Case", "Sliding Hash", "Hash")
	for _, c := range fig4Cases(cfg)[:4] {
		as := c.gen(cfg)
		base := cachesim.TraceConfig{
			CacheBytes: modelCache,
			Threads:    modelThreads,
		}
		plain := cachesim.TraceSpKAdd(as, base)
		slidingCfg := base
		slidingCfg.Sliding = true
		sliding := cachesim.TraceSpKAdd(as, slidingCfg)
		fmt.Fprintf(cfg.Out, "%-44s %14d %14d\n",
			c.label, sliding.TotalMisses(), plain.TotalMisses())
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
	"spkadd/internal/ops"
	"spkadd/internal/tuner"
)

// phasesCase is one workload of the engine-comparison experiment.
type phasesCase struct {
	pattern string
	k, d    int
}

func phasesCases() []phasesCase {
	return []phasesCase{
		{"ER", 8, 64},
		{"ER", 32, 256},
		{"ER", 64, 1024},
		{"RMAT", 32, 128},
	}
}

func phasesCollection(c phasesCase, rows, cols int) []*matrix.CSC {
	o := generate.Opts{Rows: rows, Cols: cols, NNZPerCol: c.d, Seed: 97}
	if c.pattern == "RMAT" {
		return generate.RMATCollection(c.k, o, generate.Graph500)
	}
	return generate.ERCollection(c.k, o)
}

// Phases compares the execution engines — two-pass, fused, upper
// bound — across algorithms and workloads. This is the experiment
// behind the fused engine's headline claim: the single-pass engines
// hit the O(knd) memory-traffic lower bound while the two-pass driver
// runs at ~2x it.
func Phases(cfg Config) error {
	m := 1 << 18 / cfg.scale()
	n := 64 / cfg.scale()
	if n < 8 {
		n = 8
	}
	algs := []core.Algorithm{core.Hash, core.SPA, core.Heap}
	fmt.Fprintf(cfg.Out, "Engine comparison: SpKAdd runtime (s), m=%d n=%d (speedup vs two-pass)\n", m, n)
	fmt.Fprintf(cfg.Out, "%-18s %-6s", "Workload", "Alg")
	for _, p := range core.PhasesPolicies {
		fmt.Fprintf(cfg.Out, " %16v", p)
	}
	fmt.Fprintln(cfg.Out)
	for _, c := range phasesCases() {
		as := phasesCollection(c, m, n)
		for _, alg := range algs {
			fmt.Fprintf(cfg.Out, "%-18s %-6v", fmt.Sprintf("%s k=%d d=%d", c.pattern, c.k, c.d), alg)
			var twoPass time.Duration
			for _, p := range core.PhasesPolicies {
				opt := core.Options{Algorithm: alg, Phases: p, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes()}
				dur, _, err := timeAdd(as, opt, cfg.reps())
				if err != nil {
					return fmt.Errorf("%s %v %v: %w", c.pattern, alg, p, err)
				}
				if p == core.PhasesTwoPass {
					twoPass = dur
					fmt.Fprintf(cfg.Out, " %16s", fmtDur(dur))
				} else {
					fmt.Fprintf(cfg.Out, " %9s (%4.2fx)", fmtDur(dur), float64(twoPass)/float64(dur))
				}
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// BaselineCell is one measurement of the committed perf baseline.
// AllocsPerOp/BytesPerOp are heap allocation counts averaged over the
// timed repetitions (runtime.MemStats deltas), so allocation
// regressions on the one-shot path are visible in baseline diffs just
// like runtime regressions.
type BaselineCell struct {
	Pattern   string `json:"pattern"`
	K         int    `json:"k"`
	D         int    `json:"d"`
	Algorithm string `json:"algorithm"`
	Engine    string `json:"engine"`
	Monoid    string `json:"monoid"`
	Schedule  string `json:"schedule"`
	// Planner marks the schema-6 planner sweep: "static" for the
	// heuristic Auto plan, "tuned" for the same cell resolved by a
	// warmed self-tuning planner. Empty on all other cells.
	Planner string `json:"planner,omitempty"`
	// Dtype is the element type of the value axis (schema 7):
	// "float64" on the classic grid, "float32" on the narrow-value
	// sweep. Cells from pre-7 baselines have no dtype and are all
	// float64.
	Dtype       string  `json:"dtype"`
	Seconds     float64 `json:"seconds"`
	NNZIn       int     `json:"nnz_in"`
	NNZOut      int     `json:"nnz_out"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// BaselineReport is the schema of BENCH_baseline.json: enough
// machine context to interpret the numbers, and one cell per
// (workload, algorithm, engine).
type BaselineReport struct {
	Schema     int    `json:"schema"`
	CreatedAt  string `json:"created_at"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU and CPUModel pin the host topology: comparing a cell
	// against a baseline from a different core count or part is a
	// hardware delta, not a regression. CPUModel is best-effort
	// (empty where /proc/cpuinfo has no model name).
	NumCPU   int            `json:"num_cpu"`
	CPUModel string         `json:"cpu_model,omitempty"`
	Rows     int            `json:"rows"`
	Cols     int            `json:"cols"`
	Reps     int            `json:"reps"`
	Cells    []BaselineCell `json:"cells"`
}

// cpuModel reads the host CPU's marketing name from /proc/cpuinfo
// (the first "model name" line); empty on any failure — non-Linux
// hosts, stripped containers — rather than an error, since the field
// is context, not data.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// Baseline measures a small, fixed grid of shapes across all
// algorithms and engines and writes the result as JSON. The committed
// BENCH_baseline.json gives future perf PRs a trajectory to compare
// against (regenerate with `spkadd-bench -baseline <path>`).
func Baseline(cfg Config, out io.Writer) error {
	const rows, cols = 1 << 15, 32
	rep := BaselineReport{
		// 2 added allocs/bytes per op; 3 added monoid cells; 4 added
		// the schedule field (Weighted on pre-4 cells) and a schedule
		// sweep on the first workload; 5 added the host topology
		// (num_cpu, cpu_model); 6 added the planner sweep (static Auto
		// vs warmed tuner on the first workload); 7 added the dtype
		// field and a float32 sweep on the second workload.
		Schema:     7,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		Rows:       rows,
		Cols:       cols,
		Reps:       cfg.reps(),
	}
	cases := []phasesCase{
		{"ER", 8, 64},
		{"ER", 32, 256},
		{"RMAT", 16, 64},
	}
	// The full algorithm × engine grid runs under Plus (the original
	// baseline dimensions — these cells prove the fast path is
	// unregressed by the monoid layer); the first workload adds a
	// non-Plus sweep so the generic combine path has a trajectory too.
	for ci, c := range cases {
		as := phasesCollection(c, rows, cols)
		in := 0
		for _, a := range as {
			in += a.NNZ()
		}
		monoids := []*ops.Monoid{ops.Plus}
		if ci == 0 {
			monoids = ops.Builtins
		}
		for _, mon := range monoids {
			for _, alg := range []core.Algorithm{core.Hash, core.SPA, core.Heap} {
				for _, p := range core.PhasesPolicies {
					opt := core.Options{Algorithm: alg, Phases: p, Monoid: mon, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes()}
					cell, err := measureBaselineCell(c, as, in, opt, cfg)
					if err != nil {
						return fmt.Errorf("baseline %s %s %v %v: %w", c.pattern, mon.Name, alg, p, err)
					}
					rep.Cells = append(rep.Cells, cell)
				}
			}
		}
		if ci == 1 {
			// Dtype sweep (schema 7): the same algorithm × engine grid
			// under Plus with float32 values — entries shrink from 12 to
			// 8 bytes, so these cells track the narrow-value bandwidth
			// win on the baseline's largest-d workload.
			as32 := make([]*matrix.CSCOf[float32], len(as))
			for i, a := range as {
				as32[i] = toF32(a)
			}
			for _, alg := range []core.Algorithm{core.Hash, core.SPA, core.Heap} {
				for _, p := range core.PhasesPolicies {
					opt := core.OptionsOf[float32]{Algorithm: alg, Phases: p, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes()}
					cell, err := measureBaselineCell(c, as32, in, opt, cfg)
					if err != nil {
						return fmt.Errorf("baseline %s float32 %v %v: %w", c.pattern, alg, p, err)
					}
					rep.Cells = append(rep.Cells, cell)
				}
			}
		}
		if ci == 0 {
			// Schedule sweep (schema 4): the non-default schedules on
			// the first workload, Hash two-pass, so the resident
			// executor's scheduling paths have a perf trajectory too
			// (the Weighted default is the grid above).
			for _, s := range []core.Schedule{core.ScheduleStatic, core.ScheduleDynamic, core.ScheduleWeightedStealing} {
				opt := core.Options{Algorithm: core.Hash, Phases: core.PhasesTwoPass, Schedule: s, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes()}
				cell, err := measureBaselineCell(c, as, in, opt, cfg)
				if err != nil {
					return fmt.Errorf("baseline %s schedule %v: %w", c.pattern, s, err)
				}
				rep.Cells = append(rep.Cells, cell)
			}
			// Planner sweep (schema 6): the same fully-automatic cell
			// resolved by the static heuristics and by a warmed
			// self-tuning planner frozen to exploitation, so the
			// planner's overhead-plus-decisions has a perf trajectory.
			static := core.Options{Threads: cfg.Threads, CacheBytes: cfg.cacheBytes()}
			cell, err := measureBaselineCell(c, as, in, static, cfg)
			if err != nil {
				return fmt.Errorf("baseline %s planner static: %w", c.pattern, err)
			}
			cell.Planner = "static"
			rep.Cells = append(rep.Cells, cell)
			tn := tuner.New(42)
			tuned := static
			tuned.Tuner = tn
			tn.SetEpsilon(1)
			for r := 0; r < 3*tuner.NumArms; r++ {
				if _, err := core.Add(as, tuned); err != nil {
					return fmt.Errorf("baseline %s planner warmup: %w", c.pattern, err)
				}
			}
			tn.SetEpsilon(0)
			cell, err = measureBaselineCell(c, as, in, tuned, cfg)
			if err != nil {
				return fmt.Errorf("baseline %s planner tuned: %w", c.pattern, err)
			}
			cell.Planner = "tuned"
			rep.Cells = append(rep.Cells, cell)
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// dtypeName spells the element type T the way baseline cells and the
// dtype experiment report it.
func dtypeName[T matrix.Number]() string {
	var z T
	switch any(z).(type) {
	case float64:
		return "float64"
	case float32:
		return "float32"
	case int32:
		return "int32"
	case int64:
		return "int64"
	case bool:
		return "bool"
	}
	return "unknown"
}

// measureBaselineCell warms one configuration, times it, and samples
// the allocation deltas of the timed repetitions. Generic over the
// element type so the schema-7 dtype sweep measures float32 cells with
// the same harness as the float64 grid.
func measureBaselineCell[T matrix.Number](c phasesCase, as []*matrix.CSCOf[T], in int, opt core.OptionsOf[T], cfg Config) (BaselineCell, error) {
	b, _, err := core.AddTimed(as, opt) // warm once, then time
	if err != nil {
		return BaselineCell{}, err
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var dur time.Duration = -1
	for r := 0; r < cfg.reps(); r++ {
		start := time.Now()
		if _, _, err := core.AddTimed(as, opt); err != nil {
			return BaselineCell{}, err
		}
		if d := time.Since(start); dur < 0 || d < dur {
			dur = d
		}
	}
	runtime.ReadMemStats(&m1)
	reps := float64(cfg.reps())
	monName := ops.Plus.Name
	if opt.Monoid != nil {
		monName = opt.Monoid.Name
	}
	return BaselineCell{
		Pattern:     c.pattern,
		K:           c.k,
		D:           c.d,
		Algorithm:   opt.Algorithm.String(),
		Engine:      opt.Phases.String(),
		Monoid:      monName,
		Schedule:    opt.Schedule.String(),
		Dtype:       dtypeName[T](),
		Seconds:     dur.Seconds(),
		NNZIn:       in,
		NNZOut:      b.NNZ(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / reps,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / reps,
	}, nil
}

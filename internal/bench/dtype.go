package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// dtypeCase is one workload of the value-type experiment: a generator
// pattern × k × d shape. The pattern is the duplicate-rate axis — ER
// draws row indices uniformly (collisions only by birthday arithmetic),
// RMAT concentrates them on hot rows (most entries merge) — so the
// grid covers both the streaming-dominated and the accumulation-
// dominated ends at identical shapes. The measured duplicate rate is
// reported per cell.
type dtypeCase struct {
	pattern string
	k, d    int
}

func dtypeCases() []dtypeCase {
	var cs []dtypeCase
	for _, pattern := range []string{"ER", "RMAT"} {
		for _, k := range []int{8, 32} {
			for _, d := range []int{16, 64, 1024, 16384} {
				cs = append(cs, dtypeCase{pattern, k, d})
			}
		}
	}
	return cs
}

// dtypeRows is the fixed matrix height of the experiment, chosen so
// the SPA's dense value accumulator — pure value bytes, the structure
// whose traffic the element width scales directly — straddles a
// per-core cache: 8·288000 ≈ 2.3MB at float64 overflows a typical
// 1-2MB L2, 4·288000 ≈ 1.15MB at float32 fits. This is the §IV-C
// regime (accumulator size vs cache size) applied to the value axis;
// deliberately not divided by -scale, since shrinking it would collapse
// the two dtypes into the same cache level and measure nothing.
const dtypeRows = 288_000

// toF32 converts a float64 matrix to its float32 twin. The index
// structure (ColPtr, RowIdx) is shared — it is read-only during an
// addition and identical bytes either way — so the A/B isolates
// exactly the value-array traffic the experiment is about.
func toF32(a *matrix.CSC) *matrix.CSCOf[float32] {
	vals := make([]float32, len(a.Val))
	for i, v := range a.Val {
		vals[i] = float32(v)
	}
	return &matrix.CSCOf[float32]{Rows: a.Rows, Cols: a.Cols, ColPtr: a.ColPtr, RowIdx: a.RowIdx, Val: vals}
}

// Dtype is the value-type A/B: the same additions run over float64 and
// float32 values, interleaved repetition by repetition so clock drift
// and cache state bias neither side. Both sides run the identical
// pinned plan — SPA, two-pass — because the SPA accumulator is a dense
// array of values and nothing else, making it the engine where halving
// the element width halves the resident working set (12 → 8 bytes per
// streamed entry besides); a heuristic plan could instead diverge
// between the dtypes, since the planner's size estimates already scale
// with entryBytesOf[T]. Each side reuses a warmed workspace, so
// steady-state adds allocate nothing and the timings measure kernels,
// not the collector. The summary line reports the median float32
// speedup over the d≥64 cells, the number the value-type work is gated
// on; small-d cells ride along as controls.
func Dtype(cfg Config) error {
	// Fixed height (see dtypeRows); -scale shrinks the input volume
	// via the column counts.
	total := 12 << 20 / cfg.scale()
	fmt.Fprintf(cfg.Out, "Value-type A/B: SpKAdd runtime (s), float64 vs float32, SPA two-pass, m=%d, ~%dM input entries per cell\n", dtypeRows, total>>20)
	fmt.Fprintf(cfg.Out, "%-20s %8s %12s %12s %9s\n", "Workload", "dup", "float64", "float32", "f32 gain")
	var large []float64 // float32 speedups on d>=64 cells
	for _, c := range dtypeCases() {
		n := total / (c.k * c.d)
		if n < 8 {
			n = 8
		}
		o := generate.Opts{Rows: dtypeRows, Cols: n, NNZPerCol: c.d, Seed: 97}
		var as64 []*matrix.CSC
		if c.pattern == "RMAT" {
			as64 = generate.RMATCollection(c.k, o, generate.Graph500)
		} else {
			as64 = generate.ERCollection(c.k, o)
		}
		as32 := make([]*matrix.CSCOf[float32], len(as64))
		in := 0
		for i, a := range as64 {
			in += a.NNZ()
			as32[i] = toF32(a)
		}
		opt64 := core.Options{Algorithm: core.SPA, Phases: core.PhasesTwoPass, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes()}
		opt32 := core.OptionsOf[float32]{Algorithm: core.SPA, Phases: core.PhasesTwoPass, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes()}
		ws64, ws32 := core.NewWorkspaceOf[float64](true), core.NewWorkspaceOf[float32](true)
		b, err := ws64.Add(as64, opt64)
		if err != nil {
			return fmt.Errorf("dtype %s k=%d d=%d f64 warmup: %w", c.pattern, c.k, c.d, err)
		}
		dup := 1 - float64(b.NNZ())/float64(in)
		if _, err := ws32.Add(as32, opt32); err != nil {
			return fmt.Errorf("dtype %s k=%d d=%d f32 warmup: %w", c.pattern, c.k, c.d, err)
		}
		var best64, best32 time.Duration = -1, -1
		for r := 0; r < cfg.reps(); r++ {
			runtime.GC()
			start := time.Now()
			if _, err := ws64.Add(as64, opt64); err != nil {
				return fmt.Errorf("dtype %s k=%d d=%d f64: %w", c.pattern, c.k, c.d, err)
			}
			if d := time.Since(start); best64 < 0 || d < best64 {
				best64 = d
			}
			runtime.GC()
			start = time.Now()
			if _, err := ws32.Add(as32, opt32); err != nil {
				return fmt.Errorf("dtype %s k=%d d=%d f32: %w", c.pattern, c.k, c.d, err)
			}
			if d := time.Since(start); best32 < 0 || d < best32 {
				best32 = d
			}
		}
		gain := float64(best64) / float64(best32)
		if c.d >= 64 {
			large = append(large, gain)
		}
		fmt.Fprintf(cfg.Out, "%-20s %7.1f%% %12s %12s %8.2fx\n",
			fmt.Sprintf("%s k=%d d=%d", c.pattern, c.k, c.d), 100*dup, fmtDur(best64), fmtDur(best32), gain)
	}
	sort.Float64s(large)
	med := large[len(large)/2]
	if len(large)%2 == 0 {
		med = (large[len(large)/2-1] + large[len(large)/2]) / 2
	}
	fmt.Fprintf(cfg.Out, "median float32 speedup on d>=64 cells: %.2fx\n\n", med)
	return nil
}

package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// Pool measures the sharded accumulation pool under concurrent
// producers: a producer-count × shard-count grid where each producer
// streams a fixed number of delta matrices into one Pool and the cell
// reports aggregate throughput (absorbed entries per second, Push
// through final Sum). The single-shard column doubles as the
// serialized baseline — it shows what funneling every producer into
// one reduction stream costs — so scaling across the shard columns is
// the experiment: with enough producers, more shards should win.
func Pool(cfg Config) error {
	rows := 1 << 16 / cfg.scale()
	if rows < 1024 {
		rows = 1024
	}
	cols := 256 / cfg.scale()
	if cols < 16 {
		cols = 16
	}
	const d, perProducer = 8, 48
	maxShards := runtime.GOMAXPROCS(0)
	shardGrid := []int{1, 2}
	if maxShards > 4 {
		shardGrid = append(shardGrid, 4)
	}
	if maxShards > 2 {
		shardGrid = append(shardGrid, maxShards)
	}
	producerGrid := []int{1, 2, 4, 8}

	fmt.Fprintf(cfg.Out, "Sharded pool: concurrent producers streaming deltas, m=%d n=%d d=%d, %d pushes/producer\n", rows, cols, d, perProducer)
	fmt.Fprintf(cfg.Out, "(cells: absorbed entries/s over Push..Sum, best of %d reps; budget 8MB total)\n", cfg.reps())
	fmt.Fprintf(cfg.Out, "%-10s", "Producers")
	for _, s := range shardGrid {
		fmt.Fprintf(cfg.Out, " %14s", fmt.Sprintf("S=%d", s))
	}
	fmt.Fprintln(cfg.Out)

	for _, producers := range producerGrid {
		// Pre-generate every producer's stream outside the timed
		// region; entry count is fixed per cell so cells compare.
		streams := make([][]*matrix.CSC, producers)
		total := int64(0)
		for p := range streams {
			streams[p] = make([]*matrix.CSC, perProducer)
			for i := range streams[p] {
				streams[p][i] = generate.ER(generate.Opts{
					Rows: rows, Cols: cols, NNZPerCol: d,
					Seed: uint64(p*perProducer + i + 1),
				})
				total += int64(streams[p][i].NNZ())
			}
		}
		fmt.Fprintf(cfg.Out, "%-10d", producers)
		for _, shards := range shardGrid {
			best, err := timePool(cfg, rows, cols, shards, streams)
			if err != nil {
				return fmt.Errorf("pool producers=%d shards=%d: %w", producers, shards, err)
			}
			fmt.Fprintf(cfg.Out, " %14s", fmtRate(total, best))
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// timePool runs one cell: all producers push their streams
// concurrently, then one Sum barriers and stitches. Returns the best
// wall-clock across reps.
func timePool(cfg Config, rows, cols, shards int, streams [][]*matrix.CSC) (time.Duration, error) {
	var best time.Duration = -1
	for r := 0; r < cfg.reps(); r++ {
		p := core.NewPool(rows, cols, core.PoolOptions{
			Shards:      shards,
			BudgetBytes: 8 << 20,
			Add:         core.Options{Algorithm: core.Hash, CacheBytes: cfg.cacheBytes()},
		})
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, len(streams))
		for _, stream := range streams {
			wg.Add(1)
			go func(stream []*matrix.CSC) {
				defer wg.Done()
				for _, a := range stream {
					if err := p.Push(a); err != nil {
						errs <- err
						return
					}
				}
			}(stream)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			p.Close()
			return 0, err
		}
		if _, err := p.Sum(); err != nil {
			p.Close()
			return 0, err
		}
		d := time.Since(start)
		if err := p.Close(); err != nil {
			return 0, err
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// fmtRate renders entries/second with an engineering suffix.
func fmtRate(entries int64, d time.Duration) string {
	rate := float64(entries) / d.Seconds()
	switch {
	case rate >= 1e9:
		return fmt.Sprintf("%.2fGe/s", rate/1e9)
	case rate >= 1e6:
		return fmt.Sprintf("%.2fMe/s", rate/1e6)
	default:
		return fmt.Sprintf("%.0fe/s", rate)
	}
}

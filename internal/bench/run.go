package bench

import (
	"errors"
	"fmt"
)

// ErrUnknownExperiment reports an experiment name Run does not know.
var ErrUnknownExperiment = errors.New("bench: unknown experiment")

// Experiment names accepted by Run, in paper order.
var Experiments = []string{"fig2er", "fig2rmat", "table3", "table4", "fig3", "fig4", "table5", "fig6"}

// Run executes one experiment by id, or all of them for "all".
func Run(name string, cfg Config) error {
	switch name {
	case "fig2er":
		return Fig2ER(cfg)
	case "fig2rmat":
		return Fig2RMAT(cfg)
	case "table3":
		return Table3(cfg)
	case "table4":
		return Table4(cfg)
	case "fig3":
		return Fig3(cfg)
	case "fig4":
		return Fig4(cfg)
	case "table5":
		return Table5(cfg)
	case "fig6":
		return Fig6(cfg)
	case "phases":
		return Phases(cfg)
	case "reuse":
		return Reuse(cfg)
	case "pool":
		return Pool(cfg)
	case "monoid":
		return Monoid(cfg)
	case "sched":
		return Sched(cfg)
	case "tune":
		return Tune(cfg)
	case "ablation":
		return Ablation(cfg)
	case "planner":
		return Planner(cfg)
	case "dtype":
		return Dtype(cfg)
	case "all":
		for _, e := range Experiments {
			if err := Run(e, cfg); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: %q (want one of %v, \"phases\", \"reuse\", \"pool\", \"monoid\", \"sched\", \"tune\", \"ablation\", \"planner\", \"dtype\", or \"all\")", ErrUnknownExperiment, name, Experiments)
	}
}

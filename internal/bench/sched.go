package bench

import (
	"fmt"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// Sched compares the column-scheduling strategies — static, dynamic,
// weighted, and weighted with work stealing — across input skew and
// thread counts, all on resident executors. Weighted partitioning
// balances predicted per-column work and is exact on uniform ER
// inputs; RMAT's power-law columns make the prediction miss, which
// Dynamic fixes with per-chunk coordination everywhere and
// WeightedStealing fixes only where a worker actually runs dry. The
// imbalance column is OpStats.LoadImbalance (max/mean per-worker
// executed weight, 1.0 = perfect); steals counts stolen range
// suffixes.
func Sched(cfg Config) error {
	m := 1 << 17 / cfg.scale()
	cases := []struct {
		pattern string
		k, d    int
	}{
		{"ER", 8, 64},
		{"ER", 32, 128},
		{"RMAT", 8, 64},
		{"RMAT", 32, 128},
	}
	threads := []int{1, 2, 4, 8}
	fmt.Fprintf(cfg.Out, "Scheduling: SpKAdd runtime (s) by schedule × skew × threads (Hash, two-pass, m=%d n=64)\n", m)
	fmt.Fprintf(cfg.Out, "%-16s %-3s", "Workload", "T")
	for _, s := range core.Schedules {
		fmt.Fprintf(cfg.Out, " %15v", s)
	}
	fmt.Fprintf(cfg.Out, "  %9s %7s\n", "imbal(W)", "steals")
	for _, c := range cases {
		o := generate.Opts{Rows: m, Cols: 64, NNZPerCol: c.d, Seed: 71}
		var as []*matrix.CSC
		if c.pattern == "RMAT" {
			as = generate.RMATCollection(c.k, o, generate.Graph500)
		} else {
			as = generate.ERCollection(c.k, o)
		}
		for _, t := range threads {
			fmt.Fprintf(cfg.Out, "%-16s %-3d", fmt.Sprintf("%s k=%d d=%d", c.pattern, c.k, c.d), t)
			runs := cfg.reps() + 2
			var imbalance float64
			var steals int64
			for _, s := range core.Schedules {
				var stats core.OpStats
				opt := core.Options{
					Algorithm: core.Hash, Phases: core.PhasesTwoPass,
					Schedule: s, Threads: t, CacheBytes: cfg.cacheBytes(), Stats: &stats,
				}
				dur, _, err := timeAdd(as, opt, runs)
				if err != nil {
					return fmt.Errorf("sched %s %v t=%d: %w", c.pattern, s, t, err)
				}
				fmt.Fprintf(cfg.Out, " %15s", fmtDur(dur))
				switch s {
				case core.ScheduleWeighted:
					// A ratio of sums over the runs: scale-invariant.
					imbalance = stats.LoadImbalance()
				case core.ScheduleWeightedStealing:
					// Stats accumulate across every repetition;
					// normalize so steal counts are comparable across
					// -reps settings.
					steals = stats.Steals.Load() / int64(runs)
				}
			}
			fmt.Fprintf(cfg.Out, "  %9.2f %7d\n", imbalance, steals)
		}
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

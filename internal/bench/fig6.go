package bench

import (
	"fmt"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/summa"
)

// Fig6 reproduces the distributed-SpGEMM experiment: sparse SUMMA on a
// simulated process grid, comparing heap SpKAdd (the previous
// CombBLAS implementation), hash SpKAdd on sorted intermediates, and
// hash SpKAdd on unsorted intermediates (which also lets the local
// multiplies skip sorting). The paper runs Metaclust50 on 16384
// processes and Isolates on 4096; the harness uses protein-similarity-
// like synthetic operands on 16x16 and 8x8 grids.
func Fig6(cfg Config) error {
	type workload struct {
		label   string
		n       int
		cluster int
		deg     int
		grid    int
	}
	workloads := []workload{
		{"(a) Metaclust50-like, 256 processes (16x16)", 6000 / cfg.scale(), 256, 192, 16},
		{"(b) Isolates-like, 64 processes (8x8)", 8000 / cfg.scale(), 128, 128, 8},
	}
	type variant struct {
		name string
		alg  core.Algorithm
		sort bool
	}
	variants := []variant{
		{"Heap", core.Heap, true},
		{"Sorted Hash", core.Hash, true},
		{"Unsorted Hash", core.Hash, false},
	}
	for _, w := range workloads {
		a := generate.ProteinLike(w.n, w.cluster, w.deg, 31)
		b := generate.ProteinLike(w.n, w.cluster, w.deg, 32)
		fmt.Fprintf(cfg.Out, "Fig 6 %s: n=%d deg=%d, computation time (s)\n", w.label, w.n, w.deg)
		fmt.Fprintf(cfg.Out, "%-16s %16s %12s %12s\n", "Variant", "Local Multiply", "SpKAdd", "Total")
		for _, v := range variants {
			var best summa.Report
			var bestTotal time.Duration = -1
			for r := 0; r < cfg.reps(); r++ {
				_, rep, err := summa.Run(a, b, summa.Config{
					Grid: w.grid, SpKAdd: v.alg, SortIntermediates: v.sort,
					Threads: cfg.Threads, Sequential: true,
					Phases: core.PhasesTwoPass, // paper artifact: two-phase formulation
				})
				if err != nil {
					return fmt.Errorf("%s %s: %w", w.label, v.name, err)
				}
				total := rep.LocalMultiplySum + rep.SpKAddSum
				if bestTotal < 0 || total < bestTotal {
					bestTotal, best = total, rep
				}
			}
			fmt.Fprintf(cfg.Out, "%-16s %16s %12s %12s\n", v.name,
				fmtDur(best.LocalMultiplySum), fmtDur(best.SpKAddSum), fmtDur(bestTotal))
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

package bench

import (
	"errors"
	"fmt"
	"io/fs"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
	"spkadd/internal/stats"
	"spkadd/internal/tuner"
)

// plannerWarmRounds is the per-cell warmup budget at full exploration:
// enough epsilon-1 draws that every arm of the cell's mask has been
// sampled several times before the table is frozen for measurement.
const plannerWarmRounds = 3 * tuner.NumArms

// Planner is the self-tuning planner's A/B gate: a schedule × skew ×
// k × d grid where every cell interleaves static-Auto calls against a
// tuner frozen to pure exploitation after a full-exploration warmup,
// plus one deliberately mis-predicted cell — a cache budget lie that
// makes static Auto pick SlidingHash where the real machine favors
// Hash — that the learned table must win outright. The experiment
// FAILS (returns an error) if the warmed tuner loses to static Auto by
// more than noise on any cell, or fails to win the mis-predicted one:
// this is the regression gate DESIGN.md §14 promises, not just a
// report.
func Planner(cfg Config) error {
	m := 1 << 15 / cfg.scale()
	tn := tuner.New(42)
	if cfg.TunerState != "" {
		if err := tn.LoadFile(cfg.TunerState); err != nil {
			switch {
			case errors.Is(err, fs.ErrNotExist):
				// Cold start: first run with this state file.
			case errors.Is(err, tuner.ErrBadSnapshot):
				fmt.Fprintf(cfg.Out, "planner: ignoring bad tuner state: %v\n", err)
			default:
				return fmt.Errorf("planner: loading tuner state: %w", err)
			}
		}
	}

	type cell struct {
		pattern    string
		k, d       int
		schedule   core.Schedule
		cacheBytes int64 // 0 = cfg default; the mispredict cell lies
		mispredict bool
	}
	var cells []cell
	for _, sc := range []core.Schedule{core.ScheduleWeighted, core.ScheduleWeightedStealing} {
		for _, w := range []struct {
			pattern string
			k, d    int
		}{
			{"ER", 8, 64},
			{"ER", 32, 128},
			{"RMAT", 8, 64},
			{"RMAT", 32, 128},
		} {
			cells = append(cells, cell{pattern: w.pattern, k: w.k, d: w.d, schedule: sc})
		}
	}
	// The mis-predicted cell: an 8KB cache claim makes autoSelect's
	// symbolic-footprint test (k·d·4 bytes = 16KB > 8KB) choose
	// SlidingHash, whose 8KB-capped tables slide over many row ranges —
	// while the machine actually running the cell fits plain Hash
	// tables in cache easily. The cache budget is not part of the
	// workload signature, so the warmed table already knows the true
	// cost of both families for this shape and must override.
	cells = append(cells, cell{pattern: "ER", k: 32, d: 128, schedule: core.ScheduleWeighted, cacheBytes: 8 << 10, mispredict: true})

	fmt.Fprintf(cfg.Out, "Planner A/B: static Auto vs warmed tuner (s), m=%d n=64, reps=%d (min reported)\n", m, cfg.reps()+2)
	fmt.Fprintf(cfg.Out, "%-18s %-17s %10s %10s %7s  %-24s\n", "Workload", "Schedule", "static", "tuned", "ratio", "plan (tuned vs static)")

	var failures []string
	wonMispredict := false
	for _, c := range cells {
		o := generate.Opts{Rows: m, Cols: 64, NNZPerCol: c.d, Seed: 71}
		var as []*matrix.CSC
		if c.pattern == "RMAT" {
			as = generate.RMATCollection(c.k, o, generate.Graph500)
		} else {
			as = generate.ERCollection(c.k, o)
		}
		base := core.Options{
			Schedule:   c.schedule,
			Threads:    cfg.Threads,
			CacheBytes: cfg.cacheBytes(),
		}
		if c.cacheBytes != 0 {
			base.CacheBytes = c.cacheBytes
		}
		tuned := base
		tuned.Tuner = tn
		var st core.OpStats
		tuned.Stats = &st

		// Warmup at full exploration: fill the cell's table rows (and
		// every arm's scratch in the pooled workspaces).
		tn.SetEpsilon(1)
		for r := 0; r < plannerWarmRounds; r++ {
			if _, err := core.Add(as, tuned); err != nil {
				return fmt.Errorf("planner warmup %s: %w", c.pattern, err)
			}
		}
		tn.SetEpsilon(0)

		// Interleaved measurement: static and tuned alternate so drift
		// (frequency scaling, cache state) hits both sides equally.
		reps := cfg.reps() + 2
		var sSam, tSam stats.Sample
		for r := 0; r < reps; r++ {
			ds, _, err := timeAdd(as, base, 1)
			if err != nil {
				return fmt.Errorf("planner static %s: %w", c.pattern, err)
			}
			sSam.Add(ds)
			dt, _, err := timeAdd(as, tuned, 1)
			if err != nil {
				return fmt.Errorf("planner tuned %s: %w", c.pattern, err)
			}
			tSam.Add(dt)
		}
		sMin, tMin := sSam.Min(), tSam.Min()
		ratio := float64(tMin) / float64(sMin)
		chosen, staticArm, _ := st.PlannerDecision()
		name := fmt.Sprintf("%s k=%d d=%d", c.pattern, c.k, c.d)
		if c.mispredict {
			name += "*"
		}
		fmt.Fprintf(cfg.Out, "%-18s %-17v %10s %10s %7.2f  %-24s\n",
			name, c.schedule, fmtDur(sMin), fmtDur(tMin), ratio,
			fmt.Sprintf("%s vs %s", armName(chosen), armName(staticArm)))

		// Gate: the tuner may not lose by more than noise. The noise
		// band is generous — min-of-reps plus spread plus an absolute
		// floor — because this also runs as a one-rep CI smoke; a real
		// planner regression (picking a structurally slower plan)
		// overshoots it by multiples.
		noise := time.Duration((sSam.Stddev() + tSam.Stddev()) * float64(time.Second))
		tol := sMin*3/10 + 2*noise + 200*time.Microsecond
		if tMin > sMin+tol {
			failures = append(failures, fmt.Sprintf("%s %v: tuned %v vs static %v (tolerance %v)",
				name, c.schedule, tMin, sMin, tol))
		}
		if c.mispredict && tMin < sMin {
			wonMispredict = true
		}
	}
	fmt.Fprintln(cfg.Out, "(* = mis-predicted cell: the cache budget lies to static Auto; the tuner must win it)")
	fmt.Fprintln(cfg.Out)

	if cfg.TunerState != "" {
		if err := tn.SaveFile(cfg.TunerState); err != nil {
			return fmt.Errorf("planner: saving tuner state: %w", err)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%w: tuner lost to static Auto beyond noise on %d cell(s): %v", ErrPlannerRegression, len(failures), failures)
	}
	if !wonMispredict {
		return fmt.Errorf("%w: warmed tuner failed to win the mis-predicted cell", ErrPlannerRegression)
	}
	return nil
}

// ErrPlannerRegression reports a planner A/B cell where the warmed
// tuner lost to static Auto beyond the noise band (or failed to win
// the deliberately mis-predicted cell).
var ErrPlannerRegression = errors.New("bench: planner regression")

// armName renders a tuner arm for the report tables.
func armName(arm int8) string {
	if arm < 0 || int(arm) >= tuner.NumArms {
		return "static"
	}
	c := tuner.Arms[arm]
	alg, engine, sched := "Hash", "", "W"
	if c.Alg == tuner.AlgSliding {
		alg = "Sliding"
	}
	switch c.Engine {
	case tuner.EngineFused:
		engine = "Fused"
	case tuner.EngineUpperBound:
		engine = "UpperBd"
	default:
		engine = "TwoPass"
	}
	if c.Sched == tuner.SchedStealing {
		sched = "WS"
	}
	return alg + "/" + engine + "/" + sched
}

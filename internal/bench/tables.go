package bench

import (
	"fmt"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// Table3 reproduces Table III: runtimes of all algorithms on ER
// collections over the (d, k) grid. The paper uses 4M x 1K matrices
// with d in {16, 1024, 8192}; the harness default scales rows and
// columns down (identical k, reduced d ceiling) so the largest cell
// stays within laptop memory.
func Table3(cfg Config) error {
	m := 1 << 18 / cfg.scale()
	n := 128 / cfg.scale()
	if n < 8 {
		n = 8
	}
	ds := []int{16, 1024, 4096}
	ks := []int{4, 32, 128}
	fmt.Fprintf(cfg.Out, "Table III: SpKAdd runtime (s), ER matrices, m=%d n=%d (paper: 4M x 1K, d up to 8192)\n", m, n)
	gen := func(k, d int) []*matrix.CSC {
		return generate.ERCollection(k, generate.Opts{Rows: m, Cols: n, NNZPerCol: d, Seed: 42})
	}
	return runtimeTable(cfg, ds, ks, gen)
}

// Table4 reproduces Table IV: runtimes on RMAT collections built with
// the paper's column-split construction. Paper d values {16, 64, 512}.
func Table4(cfg Config) error {
	m := 1 << 18 / cfg.scale()
	n := 128 / cfg.scale()
	if n < 8 {
		n = 8
	}
	ds := []int{16, 64, 512}
	ks := []int{4, 32, 128}
	fmt.Fprintf(cfg.Out, "Table IV: SpKAdd runtime (s), RMAT matrices, m=%d n=%d (paper: 4M rows)\n", m, n)
	gen := func(k, d int) []*matrix.CSC {
		return generate.RMATCollection(k, generate.Opts{Rows: m, Cols: n, NNZPerCol: d, Seed: 43}, generate.Graph500)
	}
	return runtimeTable(cfg, ds, ks, gen)
}

// runtimeTable prints the Tables III/IV layout: one row per algorithm,
// one column per (d, k) pair, minimum of cfg.Reps runs, "-" for cells
// skipped by the work estimator (the paper's "could not run").
func runtimeTable(cfg Config, ds, ks []int, gen func(k, d int) []*matrix.CSC) error {
	type cellKey struct{ d, k int }
	results := map[cellKey]map[core.Algorithm]string{}

	// Header.
	fmt.Fprintf(cfg.Out, "%-20s", "Algorithm")
	for _, d := range ds {
		for _, k := range ks {
			fmt.Fprintf(cfg.Out, " %12s", fmt.Sprintf("d=%d,k=%d", d, k))
		}
	}
	fmt.Fprintln(cfg.Out)

	// Generate each collection once; iterate algorithms inside.
	for _, d := range ds {
		for _, k := range ks {
			as := gen(k, d)
			cell := map[core.Algorithm]string{}
			for _, alg := range core.Algorithms {
				if skipEstimate(alg, k, as[0].Cols, d) {
					cell[alg] = "-"
					continue
				}
				// Paper artifacts measure the paper's two-phase
				// formulation; the engine comparison is `-exp phases`.
				opt := core.Options{Algorithm: alg, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes(), Phases: core.PhasesTwoPass}
				dur, _, err := timeAdd(as, opt, cfg.reps())
				if err != nil {
					return fmt.Errorf("d=%d k=%d %v: %w", d, k, alg, err)
				}
				cell[alg] = fmtDur(dur)
			}
			results[cellKey{d, k}] = cell
		}
	}

	for _, alg := range core.Algorithms {
		fmt.Fprintf(cfg.Out, "%-20v", alg)
		for _, d := range ds {
			for _, k := range ks {
				fmt.Fprintf(cfg.Out, " %12s", results[cellKey{d, k}][alg])
			}
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

package bench

import (
	"bytes"
	"spkadd/internal/core"
	"strings"
	"testing"
)

func smokeConfig(buf *bytes.Buffer) Config {
	return Config{Out: buf, Reps: 1, Scale: 8, Threads: 1}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", smokeConfig(&buf)); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable5Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table5", smokeConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table V", "Sliding Hash", "Eukarya-like"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("summa simulation in -short mode")
	}
	var buf bytes.Buffer
	if err := Run("fig6", smokeConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 6", "Heap", "Unsorted Hash", "Local Multiply"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSkipEstimate(t *testing.T) {
	// Huge pairwise cells are skipped; k-way algorithms never are.
	if !skipEstimate(core.MapIncremental, 128, 1024, 8192) {
		t.Error("giant MapIncremental cell not skipped")
	}
	if skipEstimate(core.MapIncremental, 4, 64, 16) {
		t.Error("tiny MapIncremental cell skipped")
	}
	if skipEstimate(core.Hash, 128, 1024, 8192) || skipEstimate(core.Heap, 128, 1024, 8192) {
		t.Error("k-way algorithms must never be skipped")
	}
}

func TestFmtDur(t *testing.T) {
	if got := fmtDur(1234567890); got != "1.2346" {
		t.Errorf("fmtDur = %q", got)
	}
}

func TestTuneAndAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps in -short mode")
	}
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Reps: 1, Scale: 16, Threads: 1}
	if err := Run("tune", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best table size") {
		t.Error("tuner output incomplete")
	}
	buf.Reset()
	if err := Run("ablation", cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"load factor", "scheduling", "sorted"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

package bench

import (
	"bytes"
	"strings"
	"testing"

	"spkadd/internal/core"
	"spkadd/internal/generate"
)

func smokeConfig(buf *bytes.Buffer) Config {
	return Config{Out: buf, Reps: 1, Scale: 8, Threads: 1}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", smokeConfig(&buf)); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable5Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table5", smokeConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table V", "Sliding Hash", "Eukarya-like"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("summa simulation in -short mode")
	}
	var buf bytes.Buffer
	if err := Run("fig6", smokeConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 6", "Heap", "Unsorted Hash", "Local Multiply"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestReuseSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Reps: 1, Scale: 8, Threads: 1}
	if err := Run("reuse", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Workspace reuse", "Hash", "SPA", "Heap", "k=2 d=4", "k=32 d=64"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkHarnessTimeAdd tracks the harness's own measurement path
// (one pooled-workspace Add per op); its allocs/op is the one-shot
// API's allocation footprint.
func BenchmarkHarnessTimeAdd(b *testing.B) {
	as := generate.ERCollection(8, generate.Opts{Rows: 1 << 12, Cols: 32, NNZPerCol: 8, Seed: 41})
	opt := core.Options{Algorithm: core.Hash, Threads: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := timeAdd(as, opt, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSkipEstimate(t *testing.T) {
	// Huge pairwise cells are skipped; k-way algorithms never are.
	if !skipEstimate(core.MapIncremental, 128, 1024, 8192) {
		t.Error("giant MapIncremental cell not skipped")
	}
	if skipEstimate(core.MapIncremental, 4, 64, 16) {
		t.Error("tiny MapIncremental cell skipped")
	}
	if skipEstimate(core.Hash, 128, 1024, 8192) || skipEstimate(core.Heap, 128, 1024, 8192) {
		t.Error("k-way algorithms must never be skipped")
	}
}

func TestFmtDur(t *testing.T) {
	if got := fmtDur(1234567890); got != "1.2346" {
		t.Errorf("fmtDur = %q", got)
	}
}

func TestTuneAndAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps in -short mode")
	}
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Reps: 1, Scale: 16, Threads: 1}
	if err := Run("tune", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best table size") {
		t.Error("tuner output incomplete")
	}
	buf.Reset()
	if err := Run("ablation", cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"load factor", "scheduling", "sorted"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

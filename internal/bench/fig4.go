package bench

import (
	"fmt"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// fig4Case is one panel of Fig 4: a workload swept over hash-table
// size caps.
type fig4Case struct {
	label string
	cache int64 // modelled LLC for the partition formula ("machine")
	gen   func(cfg Config) []*matrix.CSC
}

func fig4Cases(cfg Config) []fig4Case {
	m := 1 << 18 / cfg.scale()
	skylake := int64(32 << 20)
	epyc := int64(8 << 20)
	erSmall := func(cfg Config) []*matrix.CSC {
		return generate.ERCollection(128, generate.Opts{Rows: m, Cols: 32, NNZPerCol: 64, Seed: 21})
	}
	erBig := func(cfg Config) []*matrix.CSC {
		return generate.ERCollection(128, generate.Opts{Rows: m, Cols: 16, NNZPerCol: 1024, Seed: 22})
	}
	rmat := func(cfg Config) []*matrix.CSC {
		return generate.RMATCollection(128, generate.Opts{Rows: m, Cols: 32, NNZPerCol: 512, Seed: 23}, generate.Graph500)
	}
	eukarya := func(cfg Config) []*matrix.CSC {
		return generate.ClusteredCollection(64, generate.Opts{Rows: m, Cols: 32, NNZPerCol: 240, Seed: 24}, 22)
	}
	return []fig4Case{
		{label: "(a) ER d=64 k=128 cf~1 [Skylake]", cache: skylake, gen: erSmall},
		{label: "(b) ER d=1024 k=128 cf~1.1 [Skylake]", cache: skylake, gen: erBig},
		{label: "(c) RMAT d=512 k=128 cf~1.25 [Skylake]", cache: skylake, gen: rmat},
		{label: "(d) Eukarya-like d=240 k=64 cf~22 [Skylake]", cache: skylake, gen: eukarya},
		{label: "(e) ER d=1024 k=128 [EPYC 8MB]", cache: epyc, gen: erBig},
		{label: "(f) RMAT d=512 k=128 [EPYC 8MB]", cache: epyc, gen: rmat},
	}
}

// Fig4 reproduces the hash-table-size sweeps: for each case, the
// sliding-hash algorithm runs with table caps from 2^7 to the size
// that needs no partitioning, reporting symbolic, computation
// (numeric) and total times. The rightmost row of each panel is the
// unpartitioned (plain hash) configuration, as in the paper.
func Fig4(cfg Config) error {
	for _, c := range fig4Cases(cfg) {
		as := c.gen(cfg)
		maxColIn := 0
		for j := 0; j < as[0].Cols; j++ {
			in := 0
			for _, a := range as {
				in += a.ColNNZ(j)
			}
			if in > maxColIn {
				maxColIn = in
			}
		}
		fmt.Fprintf(cfg.Out, "Fig 4 %s: time (s) vs sliding hash table size (max col input nnz = %d)\n", c.label, maxColIn)
		fmt.Fprintf(cfg.Out, "%-12s %10s %12s %10s %7s\n", "table size", "symbolic", "computation", "total", "parts")
		for size := 128; ; size *= 4 {
			noPartition := size >= maxColIn
			opt := core.Options{
				Algorithm:       core.SlidingHash,
				Threads:         cfg.Threads,
				CacheBytes:      c.cache,
				MaxTableEntries: size,
			}
			dur, pt, err := timeAdd(as, opt, cfg.reps())
			if err != nil {
				return fmt.Errorf("%s size=%d: %w", c.label, size, err)
			}
			parts := (maxColIn + size - 1) / size
			fmt.Fprintf(cfg.Out, "%-12d %10s %12s %10s %7d\n",
				size, fmtDur(pt.Symbolic), fmtDur(pt.Numeric), fmtDur(dur), parts)
			if noPartition {
				break
			}
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§IV): Fig 2 best-algorithm
// grids, Tables III-IV runtime tables, Fig 3 strong scaling, Fig 4
// hash-table-size sweeps, Table V cache-miss counts, and Fig 6 SpKAdd
// inside distributed SpGEMM.
//
// Workloads are scaled-down versions of the paper's (the paper uses 4M-
// row matrices on 48-core servers; this harness defaults to sizes that
// finish on a laptop core) with identical k and d grids where feasible.
// EXPERIMENTS.md records the mapping and the measured-vs-paper shapes.
package bench

import (
	"fmt"
	"io"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/matrix"
	"spkadd/internal/stats"
)

// Config controls harness execution.
type Config struct {
	// Out receives the formatted tables.
	Out io.Writer
	// Reps is the number of timed repetitions per cell (min is
	// reported); <1 means 1.
	Reps int
	// Threads is the worker count for non-scaling experiments;
	// <1 means GOMAXPROCS.
	Threads int
	// Scale divides the default workload sizes: 1 = harness default
	// (already scaled from the paper), 2 = half that, etc. <1 means 1.
	Scale int
	// CacheBytes models the last-level cache for the sliding hash and
	// the Table V cache simulation; <=0 means 32MB (Skylake-like).
	CacheBytes int64
	// TunerState is an optional snapshot path for the planner A/B
	// experiment: loaded (if present) before the grid runs and saved
	// after, so repeated invocations keep refining one cost table.
	// Empty means the experiment starts cold and persists nothing.
	TunerState string
}

func (c Config) reps() int {
	if c.Reps < 1 {
		return 1
	}
	return c.Reps
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

func (c Config) cacheBytes() int64 {
	if c.CacheBytes <= 0 {
		return 32 << 20
	}
	return c.CacheBytes
}

// timeAdd runs one SpKAdd configuration reps times and returns the
// minimum total duration and the phase split of the fastest run.
func timeAdd(as []*matrix.CSC, opt core.Options, reps int) (time.Duration, core.PhaseTimings, error) {
	var best time.Duration = -1
	var bestPT core.PhaseTimings
	for r := 0; r < reps; r++ {
		start := time.Now()
		_, pt, err := core.AddTimed(as, opt)
		if err != nil {
			return 0, bestPT, err
		}
		d := time.Since(start)
		if best < 0 || d < best {
			best, bestPT = d, pt
		}
	}
	return best, bestPT, nil
}

// skipEstimate guards against pathological cells (the paper's own
// tables contain "could not run" entries): it estimates the merged-
// entry work of an algorithm — with an 8x constant-factor penalty for
// the map-based baselines — and returns true when the cell would run
// far past the harness time budget.
func skipEstimate(alg core.Algorithm, k, n, d int) bool {
	nd := float64(n) * float64(d)
	var work float64
	switch alg {
	case core.TwoWayIncremental:
		work = float64(k) * float64(k) / 2 * nd
	case core.MapIncremental:
		work = float64(k) * float64(k) / 2 * nd * 8 // map constant
	case core.MapTree:
		work = float64(k) * nd * 8 * log2(k)
	default:
		return false
	}
	return work > 4e9
}

func log2(k int) float64 {
	l := 0.0
	for k > 1 {
		k /= 2
		l++
	}
	if l == 0 {
		return 1
	}
	return l
}

// fmtDur renders a duration in seconds with paper-style precision.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.4f", d.Seconds())
}

// minOf runs fn reps times and returns the minimum duration.
func minOf(reps int, fn func()) time.Duration {
	return stats.Time(reps, fn).Min()
}

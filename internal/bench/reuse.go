package bench

import (
	"fmt"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/generate"
)

// reuseIters is how many back-to-back additions one measurement of the
// reuse experiment performs; steady-state behaviour (warm caches, no
// allocation) only shows up across repeated calls, so a single-call
// minimum like timeAdd's would under-report the amortization.
const reuseIters = 32

// Reuse compares the one-shot Add path (pooled scratch, fresh output
// every call) against a reused Workspace — the engine behind the
// public Adder — across k ∈ {2, 8, 32} and d ∈ {4, 16, 64} for the
// Hash, SPA and Heap algorithms under all three Phases engines. The
// workload is deliberately small/medium: once matrices fit in cache,
// allocation and GC pressure dominate repeated additions, which is
// exactly what the workspace amortizes (streaming graph updates,
// SUMMA per-stage reductions, high-QPS serving).
func Reuse(cfg Config) error {
	m := 1 << 13 / cfg.scale()
	if m < 64 {
		m = 64
	}
	n := 64 / cfg.scale()
	if n < 8 {
		n = 8
	}
	algs := []core.Algorithm{core.Hash, core.SPA, core.Heap}
	fmt.Fprintf(cfg.Out, "Workspace reuse: per-call time (s) over %d repeated additions, m=%d n=%d\n", reuseIters, m, n)
	fmt.Fprintf(cfg.Out, "(reused = one Adder-style workspace, 0 steady-state allocs; speedup vs one-shot Add)\n")
	fmt.Fprintf(cfg.Out, "%-12s %-6s", "Workload", "Alg")
	for _, p := range core.PhasesPolicies {
		fmt.Fprintf(cfg.Out, " %24v", p)
	}
	fmt.Fprintln(cfg.Out)
	for _, k := range []int{2, 8, 32} {
		for _, d := range []int{4, 16, 64} {
			as := generate.ERCollection(k, generate.Opts{Rows: m, Cols: n, NNZPerCol: d, Seed: 131})
			for _, alg := range algs {
				fmt.Fprintf(cfg.Out, "%-12s %-6v", fmt.Sprintf("k=%d d=%d", k, d), alg)
				for _, p := range core.PhasesPolicies {
					opt := core.Options{Algorithm: alg, Phases: p, Threads: cfg.Threads, CacheBytes: cfg.cacheBytes()}
					oneshot, err := timeRepeated(cfg.reps(), func() error {
						_, err := core.Add(as, opt)
						return err
					})
					if err != nil {
						return fmt.Errorf("reuse k=%d d=%d %v %v one-shot: %w", k, d, alg, p, err)
					}
					ws := core.NewWorkspace(true)
					if _, err := ws.Add(as, opt); err != nil { // warm
						return err
					}
					reused, err := timeRepeated(cfg.reps(), func() error {
						_, err := ws.Add(as, opt)
						return err
					})
					if err != nil {
						return fmt.Errorf("reuse k=%d d=%d %v %v reused: %w", k, d, alg, p, err)
					}
					fmt.Fprintf(cfg.Out, " %9.2e/%9.2e %4.2fx", oneshot.Seconds(), reused.Seconds(), float64(oneshot)/float64(reused))
				}
				fmt.Fprintln(cfg.Out)
			}
		}
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// timeRepeated runs fn reuseIters times per repetition and returns the
// best per-call average across reps repetitions.
func timeRepeated(reps int, fn func() error) (time.Duration, error) {
	var best time.Duration = -1
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < reuseIters; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		d := time.Since(start) / reuseIters
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

package bench

import (
	"fmt"
	"runtime"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// fig3Algorithms mirrors the series of Fig 3 (MKL Tree replaced by the
// map-based tree baseline).
var fig3Algorithms = []core.Algorithm{
	core.Hash, core.SlidingHash, core.TwoWayTree, core.MapTree, core.SPA, core.Heap,
}

// Fig3 reproduces the strong-scaling study: runtime versus thread
// count for (a) ER, (b) RMAT, and (c) SpGEMM-intermediate-like
// (Eukarya) collections. Thread counts sweep 1..GOMAXPROCS in powers
// of two; on a single-core host the sweep still validates that the
// parallel drivers are correct at every width, but wall-clock speedup
// cannot appear (EXPERIMENTS.md discusses this).
func Fig3(cfg Config) error {
	maxT := runtime.GOMAXPROCS(0)
	threads := []int{1}
	for t := 2; t <= maxT; t *= 2 {
		threads = append(threads, t)
	}
	if last := threads[len(threads)-1]; last != maxT {
		threads = append(threads, maxT)
	}

	m := 1 << 18 / cfg.scale()
	type panel struct {
		name string
		gen  func() []*matrix.CSC
	}
	panels := []panel{
		{
			name: fmt.Sprintf("(a) ER, m=%d, d=256, k=32", m),
			gen: func() []*matrix.CSC {
				return generate.ERCollection(32, generate.Opts{Rows: m, Cols: 64 / cfg.scale(), NNZPerCol: 256, Seed: 11})
			},
		},
		{
			name: fmt.Sprintf("(b) RMAT, m=%d, d=256, k=32", m),
			gen: func() []*matrix.CSC {
				return generate.RMATCollection(32, generate.Opts{Rows: m, Cols: 64 / cfg.scale(), NNZPerCol: 256, Seed: 12}, generate.Graph500)
			},
		},
		{
			name: fmt.Sprintf("(c) SpGEMM intermediates (Eukarya-like), m=%d, d=240, k=64, cf~22", m),
			gen: func() []*matrix.CSC {
				return generate.ClusteredCollection(64, generate.Opts{Rows: m, Cols: 32 / cfg.scale(), NNZPerCol: 240, Seed: 13}, 22)
			},
		},
	}

	for _, p := range panels {
		fmt.Fprintf(cfg.Out, "Fig 3 %s: runtime (s) vs threads\n", p.name)
		as := p.gen()
		fmt.Fprintf(cfg.Out, "%-20s", "Algorithm")
		for _, t := range threads {
			fmt.Fprintf(cfg.Out, " %10s", fmt.Sprintf("T=%d", t))
		}
		fmt.Fprintln(cfg.Out)
		for _, alg := range fig3Algorithms {
			fmt.Fprintf(cfg.Out, "%-20v", alg)
			for _, t := range threads {
				opt := core.Options{Algorithm: alg, Threads: t, CacheBytes: cfg.cacheBytes(), Phases: core.PhasesTwoPass}
				dur, _, err := timeAdd(as, opt, cfg.reps())
				if err != nil {
					return fmt.Errorf("%s %v T=%d: %w", p.name, alg, t, err)
				}
				fmt.Fprintf(cfg.Out, " %10s", fmtDur(dur))
			}
			fmt.Fprintln(cfg.Out)
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

package core

import (
	"math"
	"testing"

	"spkadd/internal/matrix"
)

// These tests back the complexity claims of the paper's Table I with
// operation counters instead of wall time: work-efficiency of SPA and
// hash, the O(lg k) factor of the heap, and the extra data movement of
// the 2-way algorithms.

func totalNNZ(as []*matrix.CSC) int {
	n := 0
	for _, a := range as {
		n += a.NNZ()
	}
	return n
}

func TestWorkComplexitySPA(t *testing.T) {
	as := erInputs(16, 1000, 32, 20, 21)
	var st OpStats
	if _, err := Add(as, Options{Algorithm: SPA, Phases: PhasesTwoPass, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	in := int64(totalNNZ(as))
	// SPA touches each input entry exactly once per phase (symbolic +
	// numeric): work is linear with constant exactly 2.
	if got := st.SPATouches.Load(); got != 2*in {
		t.Errorf("SPA touches = %d, want exactly %d (2 phases x input nnz)", got, 2*in)
	}
}

func TestWorkComplexitySinglePass(t *testing.T) {
	// The single-pass engines must touch each input entry exactly once
	// (SPA) and never probe a symbolic table (Hash) — the operational
	// form of "reads each input exactly once".
	as := erInputs(16, 1000, 32, 20, 21)
	in := int64(totalNNZ(as))
	for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
		var st OpStats
		if _, err := Add(as, Options{Algorithm: SPA, Phases: p, Stats: &st}); err != nil {
			t.Fatal(err)
		}
		if got := st.SPATouches.Load(); got != in {
			t.Errorf("%v: SPA touches = %d, want exactly %d (one pass)", p, got, in)
		}
		st = OpStats{}
		if _, err := Add(as, Options{Algorithm: Hash, Phases: p, Stats: &st}); err != nil {
			t.Fatal(err)
		}
		if got := st.SymProbes.Load(); got != 0 {
			t.Errorf("%v: symbolic probes = %d, want 0", p, got)
		}
		if probes := st.HashProbes.Load(); probes < in {
			t.Errorf("%v: hash probes = %d, below the one-pass floor %d", p, probes, in)
		}
	}
	// And the two-pass engine does probe symbolically, so the counter
	// is known to work.
	var st OpStats
	if _, err := Add(as, Options{Algorithm: Hash, Phases: PhasesTwoPass, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.SymProbes.Load() == 0 {
		t.Error("two-pass hash reported zero symbolic probes")
	}
}

func TestWorkComplexityHash(t *testing.T) {
	as := erInputs(16, 1000, 32, 20, 22)
	var st OpStats
	if _, err := Add(as, Options{Algorithm: Hash, Phases: PhasesTwoPass, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	in := int64(totalNNZ(as))
	probes := st.HashProbes.Load()
	if probes < 2*in {
		t.Errorf("hash probes = %d, below the 2*nnz floor %d", probes, 2*in)
	}
	// O(1) expected probes per insert at load factor 0.5: allow 2.5x.
	if probes > int64(2.5*float64(2*in)) {
		t.Errorf("hash probes = %d for %d inserts: probing is not O(1)", probes, 2*in)
	}
}

func TestWorkComplexityHeapLogK(t *testing.T) {
	// Heap sift work per element should grow roughly like lg k.
	measure := func(k int) float64 {
		as := erInputs(k, 2000, 16, 32, uint64(23+k))
		var st OpStats
		if _, err := Add(as, Options{Algorithm: Heap, Stats: &st}); err != nil {
			t.Fatal(err)
		}
		return float64(st.HeapOps.Load()) / float64(totalNNZ(as))
	}
	perElem4 := measure(4)
	perElem64 := measure(64)
	ratio := perElem64 / perElem4
	wantRatio := math.Log2(64) / math.Log2(4) // 3
	if ratio < wantRatio*0.5 || ratio > wantRatio*2.5 {
		t.Errorf("heap ops/element ratio k=64 vs k=4 is %.2f, want near %.1f (lg k scaling)", ratio, wantRatio)
	}
}

func TestDataMovementOrdering(t *testing.T) {
	// Table I, I/O column: incremental moves O(k^2 nd), tree
	// O(knd lg k), k-way O(knd). EntriesMoved counts entries written
	// to intermediate + final storage, a proxy for memory traffic.
	as := erInputs(16, 5000, 16, 16, 24)
	moved := func(alg Algorithm) int64 {
		var st OpStats
		if _, err := Add(as, Options{Algorithm: alg, Phases: PhasesTwoPass, Stats: &st}); err != nil {
			t.Fatal(err)
		}
		return st.EntriesMoved.Load()
	}
	inc := moved(TwoWayIncremental)
	tree := moved(TwoWayTree)
	kway := moved(Hash)
	if !(inc > tree && tree > kway) {
		t.Errorf("entries moved: incremental=%d tree=%d kway=%d, want inc > tree > kway", inc, tree, kway)
	}
	// Incremental should be around k/2 the k-way traffic for ER (low
	// compression), tree around lg k; verify at least 2x separations.
	if inc < 3*kway {
		t.Errorf("incremental movement %d not >> k-way %d", inc, kway)
	}
	if tree < 2*kway {
		t.Errorf("tree movement %d not > k-way %d", tree, kway)
	}
}

func TestStatsResetBetweenRuns(t *testing.T) {
	as := erInputs(4, 200, 8, 10, 25)
	var st OpStats
	if _, err := Add(as, Options{Algorithm: Hash, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	first := st.HashProbes.Load()
	if _, err := Add(as, Options{Algorithm: Hash, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.HashProbes.Load() != 2*first {
		t.Errorf("stats accumulate incorrectly: %d then %d", first, st.HashProbes.Load())
	}
}

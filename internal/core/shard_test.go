package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"spkadd/internal/faults/leakcheck"
	"spkadd/internal/matrix"
)

func TestPoolMatchesOneShot(t *testing.T) {
	leakcheck.Begin(t)
	as := erInputs(20, 600, 24, 10, 61)
	want := matrix.ReferenceAdd(as)
	for _, shards := range []int{1, 2, 3, 8, 24} {
		// Budgets from "reduce every piece" to "one reduction per shard".
		for _, budget := range []int64{1, 64 * entryBytes, 1 << 20} {
			p := NewPool(600, 24, PoolOptions{
				Shards:      shards,
				BudgetBytes: budget,
				Add:         Options{Algorithm: Hash, SortedOutput: true},
			})
			for _, a := range as {
				if err := p.Push(a); err != nil {
					t.Fatal(err)
				}
			}
			got, err := p.Sum()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("shards=%d budget=%d: pool sum differs from one-shot sum", shards, budget)
			}
			if err := got.Validate(); err != nil {
				t.Errorf("shards=%d budget=%d: stitched sum invalid: %v", shards, budget, err)
			}
			if p.K() != len(as) {
				t.Errorf("shards=%d budget=%d: K=%d, want %d", shards, budget, p.K(), len(as))
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestPoolSumBetweenPushes(t *testing.T) {
	a := matrix.FromTriples(4, 6, []matrix.Triple{{Row: 1, Col: 0, Val: 1}, {Row: 2, Col: 5, Val: 4}})
	b := matrix.FromTriples(4, 6, []matrix.Triple{{Row: 1, Col: 0, Val: 2}, {Row: 3, Col: 4, Val: 5}})
	p := NewPool(4, 6, PoolOptions{Shards: 3, Add: Options{Algorithm: Hash, SortedOutput: true}})
	defer p.Close()
	if err := p.Push(a); err != nil {
		t.Fatal(err)
	}
	s1, err := p.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if s1.At(1, 0) != 1 || s1.At(2, 5) != 4 {
		t.Errorf("partial sum wrong: At(1,0)=%v At(2,5)=%v", s1.At(1, 0), s1.At(2, 5))
	}
	if err := p.Push(b); err != nil {
		t.Fatal(err)
	}
	s2, err := p.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if s2.At(1, 0) != 3 || s2.At(3, 4) != 5 || s2.At(2, 5) != 4 {
		t.Errorf("final sum wrong: At(1,0)=%v At(3,4)=%v At(2,5)=%v", s2.At(1, 0), s2.At(3, 4), s2.At(2, 5))
	}
	// s1 is caller-owned: the second reduction must not have touched it.
	if s1.At(1, 0) != 1 {
		t.Error("earlier Sum result mutated by later reduction")
	}
}

func TestPoolEmptyAndZeroPushes(t *testing.T) {
	p := NewPool(7, 5, PoolOptions{Shards: 2})
	defer p.Close()
	got, err := p.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || got.Rows != 7 || got.Cols != 5 {
		t.Errorf("empty pool sum = %v", got)
	}
	// Zero-nnz deltas are the identity; they must neither queue work
	// nor corrupt the sum.
	zero := matrix.NewCSC(7, 5, 0)
	for i := 0; i < 2000; i++ {
		if err := p.Push(zero); err != nil {
			t.Fatal(err)
		}
	}
	got, err = p.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Errorf("zero-flood sum has %d entries", got.NNZ())
	}
	if p.K() != 2000 {
		t.Errorf("K=%d, want 2000", p.K())
	}
}

func TestPoolDimCheck(t *testing.T) {
	p := NewPool(4, 4, PoolOptions{})
	defer p.Close()
	if err := p.Push(matrix.NewCSC(5, 4, 0)); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch not rejected: %v", err)
	}
}

func TestPoolClosed(t *testing.T) {
	leakcheck.Begin(t)
	as := erInputs(3, 100, 8, 4, 62)
	p := NewPool(100, 8, PoolOptions{Shards: 2, Add: Options{Algorithm: Hash, SortedOutput: true}})
	for _, a := range as {
		if err := p.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Push(as[0]); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Push after Close: %v, want ErrPoolClosed", err)
	}
	// Close drains; Sum still answers afterwards, and again (idempotent).
	want := matrix.ReferenceAdd(as)
	for i := 0; i < 2; i++ {
		got, err := p.Sum()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("Sum after Close differs from one-shot sum")
		}
	}
	// A second Close is a lifecycle bug; it reports ErrPoolClosed
	// instead of silently succeeding (or re-draining).
	if err := p.Close(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("second Close: %v, want ErrPoolClosed", err)
	}
}

func TestPoolStickyReductionError(t *testing.T) {
	// Heap requires sorted inputs; an unsorted delta makes the shard
	// reduction fail, and the error must surface at Sum and Close
	// instead of being swallowed by the asynchronous reducer.
	unsorted := matrix.NewCSC(8, 4, 2)
	unsorted.RowIdx = append(unsorted.RowIdx, 5, 2)
	unsorted.Val = append(unsorted.Val, 1, 1)
	for j := 1; j <= 4; j++ {
		unsorted.ColPtr[j] = 2
	}
	sorted := erInputs(1, 8, 4, 2, 63)[0]
	p := NewPool(8, 4, PoolOptions{Shards: 1, Add: Options{Algorithm: Heap}})
	if err := p.Push(sorted); err != nil {
		t.Fatal(err)
	}
	if err := p.Push(unsorted); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sum(); !errors.Is(err, ErrUnsortedInput) {
		t.Errorf("Sum after failed reduction: %v, want ErrUnsortedInput", err)
	}
	if err := p.Close(); !errors.Is(err, ErrUnsortedInput) {
		t.Errorf("Close after failed reduction: %v, want ErrUnsortedInput", err)
	}
}

func TestPoolShardsHeuristic(t *testing.T) {
	for _, tc := range []struct {
		cols, shards, wantLo, wantHi int
	}{
		{3, 0, 1, 3},   // default: capped by column count
		{0, 0, 1, 1},   // zero columns still get one shard
		{100, 7, 7, 7}, // explicit count honored
		{4, 16, 4, 4},  // explicit count past cols clamps: empty shards would idle reducers and dilute the budget
	} {
		p := NewPool(10, tc.cols, PoolOptions{Shards: tc.shards})
		if got := p.Shards(); got < tc.wantLo || got > tc.wantHi {
			t.Errorf("cols=%d shards=%d: got %d shards, want in [%d, %d]",
				tc.cols, tc.shards, got, tc.wantLo, tc.wantHi)
		}
		p.Close()
	}
}

// TestPoolClaimBatchBudgetBound is the white-box check that a shard
// reduction's input obeys the Accumulator's bound — running sum plus
// claimed pieces never exceeds budget + one matrix — no matter how far
// producers ran ahead of the reducer.
func TestPoolClaimBatchBudgetBound(t *testing.T) {
	piece := erInputs(1, 200, 4, 6, 65)[0]
	per := int64(piece.NNZ()) * entryBytes
	s := &poolShard{c0: 0, c1: 4, budget: 3*per + 1}
	s.space = sync.NewCond(&s.mu)
	// A queue far past the budget, as if the reducer had stalled.
	for i := 0; i < 20; i++ {
		s.pending = append(s.pending, piece)
		s.pendingBytes += per
	}
	s.sum = piece // running sum worth one matrix
	s.mu.Lock()
	for len(s.pending) > 0 {
		before := len(s.pending)
		s.claimBatch()
		claimed := int64(0)
		for _, m := range s.take {
			claimed += int64(m.NNZ()) * entryBytes
		}
		if len(s.take) == 0 {
			t.Fatal("claimBatch claimed nothing from a non-empty queue")
		}
		if in := s.sumNNZBytes() + claimed; in > s.budget+per {
			t.Fatalf("reduction input %d bytes exceeds budget+one matrix = %d", in, s.budget+per)
		}
		if len(s.take)+len(s.pending) != before {
			t.Fatal("claimBatch lost or duplicated pieces")
		}
		s.take = s.take[:0]
	}
	if s.pendingBytes != 0 {
		t.Fatalf("pendingBytes=%d after draining", s.pendingBytes)
	}
	s.mu.Unlock()
}

// TestPoolSumAtomicPerPush checks Push/Sum linearization: every
// pushed matrix carries one entry in every column, so any Sum — even
// racing live producers — must see the same value in all columns. A
// torn snapshot (a push's pieces landed in some shards but not
// others) would show unequal columns.
func TestPoolSumAtomicPerPush(t *testing.T) {
	leakcheck.Begin(t)
	const rows, cols, producers, perProducer = 64, 32, 4, 60
	ts := make([]matrix.Triple, cols)
	for j := range ts {
		ts[j] = matrix.Triple{Row: 0, Col: matrix.Index(j), Val: 1}
	}
	full := matrix.FromTriples(rows, cols, ts)
	p := NewPool(rows, cols, PoolOptions{
		Shards:      4,
		BudgetBytes: 1, // reduce constantly, maximizing barrier traffic
		Add:         Options{Algorithm: Hash, SortedOutput: true},
	})
	defer p.Close()
	var prodWG, checkWG sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, producers+1)
	for g := 0; g < producers; g++ {
		prodWG.Add(1)
		go func() {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				if err := p.Push(full); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	checkWG.Add(1)
	go func() {
		defer checkWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mid, err := p.Sum()
			if err != nil {
				errs <- err
				return
			}
			for j := 1; j < cols; j++ {
				if mid.At(0, j) != mid.At(0, 0) {
					errs <- fmt.Errorf("torn snapshot: col %d saw %v pushes, col 0 saw %v",
						j, mid.At(0, j), mid.At(0, 0))
					return
				}
			}
		}
	}()
	prodWG.Wait()
	close(stop)
	checkWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, err := p.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != float64(producers*perProducer) {
		t.Fatalf("final sum value %v, want %d", got.At(0, 0), producers*perProducer)
	}
}

func TestPoolBatchesByBudget(t *testing.T) {
	// With one shard and a budget of sum + ~4 matrices, the pool's
	// reduction count should mirror the Accumulator's batching: ~k/4,
	// not k. Same-pattern inputs keep the running sum at one matrix's
	// footprint so the arithmetic is exact.
	one := erInputs(1, 500, 8, 10, 64)[0]
	per := int64(one.NNZ()) * entryBytes
	p := NewPool(500, 8, PoolOptions{Shards: 1, BudgetBytes: 5*per + 1, Add: Options{Algorithm: Hash}})
	defer p.Close()
	for i := 0; i < 16; i++ {
		if err := p.Push(one); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Sum(); err != nil {
		t.Fatal(err)
	}
	// The reducer is asynchronous, so the exact count depends on how
	// far the producer ran ahead: every budget-triggered reduction
	// absorbs at least 5 pending matrices (sum + pending > 5 matrices'
	// budget), giving at most floor(16/5) of them plus the final
	// barrier flush — and at least one reduction total. Never 16,
	// which is what an unbatched (pairwise) drain would do.
	if r := p.Reductions(); r < 1 || r > 4 {
		t.Errorf("reductions = %d, want within [1, 4] for a 4-matrix budget over k=16", r)
	}
}

package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"spkadd/internal/matrix"
)

func TestAddScaledBasic(t *testing.T) {
	a := matrix.FromTriples(4, 2, []matrix.Triple{{Row: 0, Col: 0, Val: 2}, {Row: 3, Col: 1, Val: 4}})
	b := matrix.FromTriples(4, 2, []matrix.Triple{{Row: 0, Col: 0, Val: 1}, {Row: 2, Col: 0, Val: 6}})
	for _, alg := range []Algorithm{Hash, SPA, SlidingHash, Heap} {
		got, err := AddScaled([]*matrix.CSC{a, b}, []matrix.Value{0.5, 2}, Options{Algorithm: alg, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got.At(0, 0) != 0.5*2+2*1 {
			t.Errorf("%v: At(0,0) = %v, want 3", alg, got.At(0, 0))
		}
		if got.At(3, 1) != 2 {
			t.Errorf("%v: At(3,1) = %v, want 2", alg, got.At(3, 1))
		}
		if got.At(2, 0) != 12 {
			t.Errorf("%v: At(2,0) = %v, want 12", alg, got.At(2, 0))
		}
	}
}

func TestAddScaledAveraging(t *testing.T) {
	// The gradient-averaging form: B = (1/k) Σ A_i.
	k := 8
	as := erInputs(k, 300, 8, 10, 61)
	coeffs := make([]matrix.Value, k)
	for i := range coeffs {
		coeffs[i] = 1.0 / float64(k)
	}
	avg, err := AddScaled(as, coeffs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := matrix.ReferenceAdd(as)
	if avg.NNZ() != sum.NNZ() {
		t.Fatalf("averaged nnz %d != sum nnz %d", avg.NNZ(), sum.NNZ())
	}
	for _, tr := range sum.Triples() {
		if got := avg.At(int(tr.Row), int(tr.Col)); got != tr.Val/float64(k) {
			t.Fatalf("At(%d,%d) = %v, want %v", tr.Row, tr.Col, got, tr.Val/float64(k))
		}
	}
}

func TestAddScaledUnitCoeffsMatchAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(6) + 2
		as := erInputs(k, rng.Intn(200)+10, rng.Intn(8)+1, rng.Intn(12)+1, uint64(seed))
		ones := make([]matrix.Value, k)
		for i := range ones {
			ones[i] = 1
		}
		scaled, err := AddScaled(as, ones, Options{Algorithm: Hash, SortedOutput: true})
		if err != nil {
			return false
		}
		plain, err := Add(as, Options{Algorithm: Hash, SortedOutput: true})
		if err != nil {
			return false
		}
		return scaled.Equal(plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddScaledErrors(t *testing.T) {
	a := matrix.FromTriples(3, 3, nil)
	if _, err := AddScaled([]*matrix.CSC{a}, []matrix.Value{1, 2}, Options{}); !errors.Is(err, ErrDimMismatch) {
		t.Error("coefficient count mismatch accepted")
	}
	if _, err := AddScaled(nil, nil, Options{}); !errors.Is(err, ErrNoInputs) {
		t.Error("empty input accepted")
	}
	if _, err := AddScaled([]*matrix.CSC{a, a.Clone()}, []matrix.Value{1, 2}, Options{Algorithm: TwoWayTree}); err == nil {
		t.Error("2-way algorithm accepted for scaled addition")
	}
	b := matrix.FromTriples(4, 3, nil)
	if _, err := AddScaled([]*matrix.CSC{a, b}, []matrix.Value{1, 2}, Options{}); !errors.Is(err, ErrDimMismatch) {
		t.Error("dimension mismatch accepted")
	}
}

func TestAddScaledZeroCoefficient(t *testing.T) {
	// A zero coefficient keeps the structural union (explicit zeros)
	// but contributes nothing numerically.
	a := matrix.FromTriples(4, 1, []matrix.Triple{{Row: 1, Col: 0, Val: 5}})
	b := matrix.FromTriples(4, 1, []matrix.Triple{{Row: 2, Col: 0, Val: 7}})
	got, err := AddScaled([]*matrix.CSC{a, b}, []matrix.Value{1, 0}, Options{Algorithm: Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (structure preserved)", got.NNZ())
	}
	if got.At(1, 0) != 5 || got.At(2, 0) != 0 {
		t.Errorf("values: At(1,0)=%v At(2,0)=%v", got.At(1, 0), got.At(2, 0))
	}
}

package core

import (
	"math"
	"testing"
	"time"

	"spkadd/internal/matrix"
	"spkadd/internal/sched"
	"spkadd/internal/tuner"
)

// TestEstimateSharedAcrossHeuristics pins autoSelect and pickPhases to
// the one shared workloadEstimate: the estimate's fields must equal
// the formulas the two heuristics historically computed independently,
// and both decisions must flip exactly at the thresholds the shared
// estimate predicts — so the heuristics can no longer drift apart.
func TestEstimateSharedAcrossHeuristics(t *testing.T) {
	for _, tc := range []struct{ k, rows, cols, d int }{
		{4, 300, 8, 20},
		{8, 100000, 64, 16},
		{2, 50, 5, 3},
	} {
		as := erInputs(tc.k, tc.rows, tc.cols, tc.d, 81)
		est := estimateWorkload(as)

		total := 0
		for _, a := range as {
			total += a.NNZ()
		}
		if est.k != tc.k || est.rows != tc.rows || est.cols != tc.cols || est.total != int64(total) {
			t.Fatalf("estimate shape = (%d, %d, %d, %d), want (%d, %d, %d, %d)",
				est.k, est.rows, est.cols, est.total, tc.k, tc.rows, tc.cols, total)
		}
		avg := float64(total) / float64(tc.cols)
		if est.avgColNNZ != avg {
			t.Errorf("avgColNNZ = %g, want %g", est.avgColNNZ, avg)
		}
		distinct := float64(tc.rows) * -math.Expm1(avg*math.Log1p(-1/float64(tc.rows)))
		if want := 1 - distinct/avg; est.dupRate != want {
			t.Errorf("dupRate = %g, want %g (the balls-into-bins estimate)", est.dupRate, want)
		}

		// autoSelect flips Hash -> SlidingHash exactly at the symbolic
		// table footprint the shared estimate predicts.
		threads := sched.Threads(1)
		memSym := int64(est.avgColNNZ) * BytesPerSymbolicEntry * int64(threads)
		if alg := autoSelect(est, Options{Threads: 1, CacheBytes: memSym}); alg != Hash {
			t.Errorf("at exactly the footprint: auto = %v, want Hash", alg)
		}
		if alg := autoSelect(est, Options{Threads: 1, CacheBytes: memSym - 1}); alg != SlidingHash {
			t.Errorf("one byte under: auto = %v, want SlidingHash", alg)
		}

		// pickPhases flips Hash's engine to TwoPass at the numeric
		// footprint from the same estimate.
		memNum := int64(est.avgColNNZ) * BytesPerAddEntry * int64(threads)
		if p := pickPhases(est, Hash, Options{Threads: 1, CacheBytes: memNum - 1}); p != PhasesTwoPass {
			t.Errorf("under numeric footprint: engine = %v, want TwoPass", p)
		}
		if p := pickPhases(est, Hash, Options{Threads: 1, CacheBytes: memNum}); p == PhasesTwoPass {
			t.Error("at numeric footprint: engine fell back to TwoPass")
		}
		// And its duplicate-rate branch reads est.dupRate.
		wantEngine := PhasesFused
		if est.dupRate <= autoDupRateCutoff && est.total*entryBytes <= upperBoundStagingCap {
			wantEngine = PhasesUpperBound
		}
		if p := pickPhases(est, Hash, Options{Threads: 1, CacheBytes: memNum}); p != wantEngine {
			t.Errorf("dup-rate branch: engine = %v, want %v", p, wantEngine)
		}
	}
}

func TestMaxColInputNNZ(t *testing.T) {
	// Two inputs with known per-column shapes: maxima 3 and 2.
	a := &matrix.CSC{Rows: 4, Cols: 3, ColPtr: []int64{0, 3, 4, 4},
		RowIdx: []matrix.Index{0, 1, 2, 0}, Val: []matrix.Value{1, 1, 1, 1}}
	b := &matrix.CSC{Rows: 4, Cols: 3, ColPtr: []int64{0, 1, 3, 3},
		RowIdx: []matrix.Index{0, 0, 1}, Val: []matrix.Value{1, 1, 1}}
	if got := maxColInputNNZ([]*matrix.CSC{a, b}); got != 5 {
		t.Fatalf("maxColInputNNZ = %d, want 5", got)
	}
}

// plannerOpts returns options consulting a fresh, exploitation-only
// tuner plus stats, over a small ER collection.
func plannerSetup(seed uint64) ([]*matrix.CSC, *tuner.Tuner, *OpStats) {
	as := erInputs(8, 512, 64, 8, seed)
	tn := tuner.New(seed)
	tn.SetEpsilon(0)
	return as, tn, &OpStats{}
}

func TestTunerColdFallsBackToStaticPlan(t *testing.T) {
	as, tn, st := plannerSetup(3)
	static, err := Options{Threads: 1}.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if static.arm != -1 {
		t.Fatalf("tuner-less plan carries arm %d, want -1", static.arm)
	}
	p, err := Options{Threads: 1, Tuner: tn, Stats: st}.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.alg != static.alg || p.engine != static.engine || p.schedule != static.schedule {
		t.Fatalf("cold tuner changed the plan: {%v %v %v} != {%v %v %v}",
			p.alg, p.engine, p.schedule, static.alg, static.engine, static.schedule)
	}
	if p.arm < 0 || p.sigKey == 0 || p.total == 0 {
		t.Fatalf("cold fallback must still carry recording state, got arm=%d key=%#x total=%d", p.arm, p.sigKey, p.total)
	}
	if got := st.PlannerLookups.Load(); got != 1 {
		t.Errorf("PlannerLookups = %d, want 1", got)
	}
	if got := st.PlannerFallbacks.Load(); got != 1 {
		t.Errorf("PlannerFallbacks = %d, want 1", got)
	}
	if chosen, staticArm, ok := st.PlannerDecision(); !ok || chosen != staticArm {
		t.Errorf("decision = (%d, %d, %v), want chosen == static", chosen, staticArm, ok)
	}
}

func TestTunerOverridesStaticPlan(t *testing.T) {
	as, tn, st := plannerSetup(4)
	opt := Options{Threads: 1, Tuner: tn, Stats: st}
	p, err := opt.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Teach the table that the sliding/stealing arm (the one the static
	// heuristics would never pick here) is far cheaper than the static
	// choice.
	var slidingStealing int8 = -1
	for a := range tuner.Arms {
		if tuner.Arms[a].Alg == tuner.AlgSliding && tuner.Arms[a].Sched == tuner.SchedStealing {
			slidingStealing = int8(a)
		}
	}
	tn.Record(p.sigKey, p.arm, time.Millisecond, p.total)
	tn.Record(p.sigKey, slidingStealing, time.Microsecond, p.total)
	p2, err := opt.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.alg != SlidingHash || p2.schedule != ScheduleWeightedStealing || p2.engine != PhasesTwoPass {
		t.Fatalf("warmed plan = {%v %v %v}, want the learned sliding/stealing arm", p2.alg, p2.engine, p2.schedule)
	}
	if p2.arm != slidingStealing {
		t.Fatalf("plan arm = %d, want %d", p2.arm, slidingStealing)
	}
	if chosen, staticArm, ok := st.PlannerDecision(); !ok || chosen == staticArm {
		t.Errorf("decision = (%d, %d, %v), want an override", chosen, staticArm, ok)
	}
	// The overridden plan must still produce the right sum end to end.
	got, err := Add(as, Options{Threads: 1, Tuner: tn, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(matrix.ReferenceAdd(as)) {
		t.Error("tuned plan produced a wrong result")
	}
}

func TestTunerRespectsPinnedOptions(t *testing.T) {
	as, tn, st := plannerSetup(5)
	// Train every sliding/stealing arm to look free so any leak in the
	// masking would flip the plan.
	probe, err := Options{Threads: 1, Tuner: tn}.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for a := range tuner.Arms {
		cost := time.Millisecond
		if tuner.Arms[a].Alg == tuner.AlgSliding || tuner.Arms[a].Sched == tuner.SchedStealing || tuner.Arms[a].Engine == tuner.EngineTwoPass {
			cost = time.Nanosecond
		}
		tn.Record(probe.sigKey, int8(a), cost, probe.total)
	}

	// A pinned algorithm restricts the arms to it.
	p, err := Options{Threads: 1, Tuner: tn, Algorithm: Hash, Stats: st}.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.alg != Hash {
		t.Errorf("pinned Hash: planned %v", p.alg)
	}
	// A pinned engine restricts Hash arms to that engine.
	p, err = Options{Threads: 1, Tuner: tn, Algorithm: Hash, Phases: PhasesFused}.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.engine != PhasesFused {
		t.Errorf("pinned Fused: planned %v", p.engine)
	}
	// Static/Dynamic schedules and non-hash algorithms disable the
	// planner entirely.
	before := st.PlannerLookups.Load()
	p, err = Options{Threads: 1, Tuner: tn, Schedule: ScheduleStatic, Stats: st}.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.arm != -1 || p.schedule != ScheduleStatic {
		t.Errorf("pinned Static schedule: arm=%d schedule=%v, want untouched", p.arm, p.schedule)
	}
	p, err = Options{Threads: 1, Tuner: tn, Algorithm: SPA, Stats: st}.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.arm != -1 || p.alg != SPA {
		t.Errorf("pinned SPA: arm=%d alg=%v, want untouched", p.arm, p.alg)
	}
	if got := st.PlannerLookups.Load(); got != before {
		t.Errorf("untunable calls recorded %d lookups", got-before)
	}
}

// TestWorkspaceResidentTunerLearns drives a recycling workspace (the
// Adder's engine) with a resident tuner: calls consult it by default,
// costs flow back, and the results stay bit-identical to the static
// reference.
func TestWorkspaceResidentTunerLearns(t *testing.T) {
	as := erInputs(6, 400, 32, 10, 11)
	want := matrix.ReferenceAdd(as)
	ws := NewWorkspace(true)
	tn := tuner.New(9)
	ws.SetTuner(tn)
	if ws.Tuner() != tn {
		t.Fatal("Tuner() does not return the installed tuner")
	}
	st := &OpStats{}
	for i := 0; i < 12; i++ {
		got, err := ws.Add(as, Options{Threads: 1, SortedOutput: true, Stats: st})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("call %d: tuned result differs from reference", i)
		}
	}
	if tn.Len() == 0 {
		t.Error("resident tuner learned no signatures")
	}
	if st.PlannerLookups.Load() != 12 {
		t.Errorf("PlannerLookups = %d, want 12", st.PlannerLookups.Load())
	}
	// An explicit per-call tuner takes precedence over the resident one.
	other := tuner.New(1)
	if _, err := ws.Add(as, Options{Threads: 1, Tuner: other}); err != nil {
		t.Fatal(err)
	}
	if other.Len() == 0 {
		t.Error("per-call tuner was not consulted")
	}
}

// TestPoolSharesTuner wires one tuner through PoolOptions.Add: every
// shard's reductions feed the same table, the sharing pattern
// spkadd-serve uses across tenants.
func TestPoolSharesTuner(t *testing.T) {
	tn := tuner.New(13)
	deltas := erInputs(6, 300, 24, 6, 17)
	pool := NewPool(300, 24, PoolOptions{Shards: 2, Add: Options{Tuner: tn}})
	for _, d := range deltas {
		if err := pool.Push(d); err != nil {
			t.Fatal(err)
		}
	}
	got, err := pool.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(matrix.ReferenceAdd(deltas)) {
		t.Error("tuned pool sum differs from reference")
	}
	if tn.Len() == 0 {
		t.Error("pool reductions fed no signatures into the shared tuner")
	}
}

// TestPlanResolveAllocFree is the test-side half of satellite gate on
// plan resolution: validate (the Adder's per-call planning work) must
// not allocate, with or without a tuner in the loop. The benchmark
// BenchmarkPlanResolve reports the same property with timings; this
// test enforces it on every `go test` run (validate is unexported, so
// the root-package CI gate cannot see it directly).
func TestPlanResolveAllocFree(t *testing.T) {
	as := erInputs(8, 1<<11, 64, 4, 21)
	opt := Options{Threads: 1}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := opt.validate(as, nil, 0); err != nil {
			panic(err)
		}
	}); avg != 0 {
		t.Errorf("static plan resolution: %g allocs/op, want 0", avg)
	}
	tn := tuner.New(33)
	topt := Options{Threads: 1, Tuner: tn}
	p, err := topt.validate(as, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	tn.Record(p.sigKey, p.arm, time.Millisecond, p.total) // warm: lookups now exploit
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := topt.validate(as, nil, 0); err != nil {
			panic(err)
		}
	}); avg != 0 {
		t.Errorf("tuned plan resolution: %g allocs/op, want 0", avg)
	}
}

// BenchmarkPlanResolve times plan resolution — the planning overhead
// every Adder call pays — with and without a warmed tuner in the loop,
// reporting allocations (both must be 0 allocs/op; enforced by
// TestPlanResolveAllocFree and, end to end, by the CI allocation gate
// over BenchmarkAdderReusePlanner).
func BenchmarkPlanResolve(b *testing.B) {
	as := erInputs(8, 1<<11, 64, 4, 21)
	b.Run("static", func(b *testing.B) {
		opt := Options{Threads: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := opt.validate(as, nil, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tuned", func(b *testing.B) {
		tn := tuner.New(33)
		opt := Options{Threads: 1, Tuner: tn}
		p, err := opt.validate(as, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		tn.Record(p.sigKey, p.arm, time.Millisecond, p.total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := opt.validate(as, nil, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

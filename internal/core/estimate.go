package core

import (
	"math"

	"spkadd/internal/matrix"
	"spkadd/internal/sched"
	"spkadd/internal/tuner"
)

// wideOf reports whether T is wider than 4 bytes (float64/int64): the
// tuner signature's element-width bit, so wide and narrow calls learn
// separate cost cells.
//
//spkadd:noalloc
func wideOf[T matrix.Number]() bool {
	return entryBytesOf[T]() > BytesPerSymbolicEntry+4
}

// This file is the single source of the per-call workload estimate —
// the shape summary (k, mean column density, duplicate rate) that
// autoSelect, pickPhases and the self-tuning planner's signature all
// consume. Before it existed, autoSelect and pickPhases each computed
// their own total-nnz scan and density estimate, which let the two
// heuristics silently drift apart; TestEstimateSharedAcrossHeuristics
// pins them to this one computation.

// workloadEstimate summarizes one call's inputs for the planning
// heuristics: everything here is O(k) to compute (one NNZ read per
// input) and derived once per call in validate.
type workloadEstimate struct {
	k    int
	rows int
	cols int
	// total is Σ_i nnz(A_i), the paper's knd.
	total int64
	// avgColNNZ is total/cols — the mean combined input nnz per output
	// column, the paper's kd. Zero when cols is zero.
	avgColNNZ float64
	// dupRate estimates the duplicate fraction with the balls-into-bins
	// model: throwing avgColNNZ entries uniformly at rows rows yields
	// rows·(1-(1-1/rows)^avg) distinct rows in expectation; the rest
	// are duplicates. Zero when rows or avgColNNZ is zero.
	dupRate float64
}

// estimateWorkload computes the shared estimate. as must be non-empty
// and dimension-checked (validate calls it after validateDims).
//
//spkadd:noalloc
func estimateWorkload[T matrix.Number](as []*matrix.CSCOf[T]) workloadEstimate {
	e := workloadEstimate{k: len(as), rows: as[0].Rows, cols: as[0].Cols}
	total := 0
	for _, a := range as {
		total += a.NNZ()
	}
	e.total = int64(total)
	if e.cols > 0 {
		e.avgColNNZ = float64(total) / float64(e.cols)
	}
	if e.rows > 0 && e.avgColNNZ > 0 {
		distinct := float64(e.rows) * -math.Expm1(e.avgColNNZ*math.Log1p(-1/float64(e.rows)))
		e.dupRate = 1 - distinct/e.avgColNNZ
	}
	return e
}

// maxColInputNNZ upper-bounds the heaviest combined input column:
// Σ_i max_j nnz(A_i(:,j)). One O(cols) scan per input, no extra
// storage — computed only when a tuner is consulted, where its ratio
// to the mean separates uniform (ER-like) from skewed (RMAT-like)
// workloads in the signature.
//
//spkadd:noalloc
func maxColInputNNZ[T matrix.Number](as []*matrix.CSCOf[T]) int64 {
	var sum int64
	for _, a := range as {
		var max int64
		ptr := a.ColPtr
		for j := 0; j < a.Cols; j++ {
			if c := ptr[j+1] - ptr[j]; c > max {
				max = c
			}
		}
		sum += max
	}
	return sum
}

// The arm-code translation between internal/tuner's host-agnostic plan
// codes and core's enums. tuner deliberately does not import core, so
// the mapping lives here, next to the only caller.

//spkadd:noalloc
func armAlg(a tuner.Alg) Algorithm {
	if a == tuner.AlgSliding {
		return SlidingHash
	}
	return Hash
}

//spkadd:noalloc
func armEngine(e tuner.Engine) Phases {
	switch e {
	case tuner.EngineFused:
		return PhasesFused
	case tuner.EngineUpperBound:
		return PhasesUpperBound
	}
	return PhasesTwoPass
}

//spkadd:noalloc
func armSched(s tuner.Sched) Schedule {
	if s == tuner.SchedStealing {
		return ScheduleWeightedStealing
	}
	return ScheduleWeighted
}

//spkadd:noalloc
func phasesEngine(p Phases) tuner.Engine {
	switch p {
	case PhasesFused:
		return tuner.EngineFused
	case PhasesUpperBound:
		return tuner.EngineUpperBound
	}
	return tuner.EngineTwoPass
}

// staticArm maps the statically resolved plan to its tuner arm index,
// or -1 when the plan is outside the arm table (never the case for a
// call armMask admitted, but the planner treats -1 as "nothing to
// record for the static side" rather than trusting that).
//
//spkadd:noalloc
func staticArm[T matrix.Number](p *planOf[T]) int8 {
	for a := 0; a < tuner.NumArms; a++ {
		c := tuner.Arms[a]
		if armAlg(c.Alg) == p.alg && armEngine(c.Engine) == p.engine && armSched(c.Sched) == p.schedule {
			return int8(a)
		}
	}
	return -1
}

// armMask computes the bitset of tuner arms valid for this call — the
// caller's explicit constraints, enforced before learning gets a vote:
//
//   - Only the hash family is tuned. A pinned non-hash algorithm (the
//     baselines, Heap, SPA) disables the planner for the call; a
//     pinned Hash or SlidingHash restricts arms to that algorithm.
//   - Only the weighted schedules are tuned. The default
//     ScheduleWeighted admits both weighted arms (the planner may
//     discover stealing pays); an explicit ScheduleWeightedStealing
//     restricts to stealing arms; Static and Dynamic are explicit
//     opt-ins the planner never overrides.
//   - A pinned Phases engine restricts Hash arms to that engine.
//     SlidingHash arms stay eligible: sliding keeps its native
//     two-pass driver whatever the caller asks, exactly as the static
//     path's fallback does.
//   - A DropIdentity monoid needs a single-pass engine, so only the
//     fused and upper-bound Hash arms remain.
//
//spkadd:noalloc
func (o OptionsOf[T]) armMask(p *planOf[T]) uint32 {
	switch o.Algorithm {
	case Auto, Hash, SlidingHash:
	default:
		return 0
	}
	if p.schedule != ScheduleWeighted && p.schedule != ScheduleWeightedStealing {
		return 0
	}
	var mask uint32
	for a := 0; a < tuner.NumArms; a++ {
		c := tuner.Arms[a]
		if o.Algorithm == Hash && c.Alg != tuner.AlgHash {
			continue
		}
		if o.Algorithm == SlidingHash && c.Alg != tuner.AlgSliding {
			continue
		}
		if p.schedule == ScheduleWeightedStealing && c.Sched != tuner.SchedStealing {
			continue
		}
		if o.Phases != PhasesAuto && c.Alg == tuner.AlgHash && c.Engine != phasesEngine(o.Phases) {
			continue
		}
		if p.generic && p.mon.drop && (c.Alg != tuner.AlgHash || c.Engine == tuner.EngineTwoPass) {
			continue
		}
		mask |= 1 << a
	}
	return mask
}

// consultTuner lets Options.Tuner overrule the statically resolved
// {algorithm, engine, schedule} from its learned cost table. Called at
// the end of validate, after every constraint check: the mask encodes
// what the caller pinned, so no tuner decision can reach a
// configuration validate would have rejected. On any decision —
// including a fallback to the static plan — the plan carries the
// signature key and arm so the dispatcher measures the call and
// records its cost, which is how both the static plan's and the
// explored plans' costs enter the table.
//
// The path is allocation-free: it runs inside plan resolution on the
// warmed Adder's zero-alloc steady state (BenchmarkPlanResolve and the
// CI allocation gate hold it there).
//
//spkadd:noalloc
func (o OptionsOf[T]) consultTuner(p *planOf[T], est workloadEstimate, as []*matrix.CSCOf[T]) {
	mask := o.armMask(p)
	if mask == 0 {
		return
	}
	sig := tuner.Signature{
		K:          est.k,
		MeanColNNZ: est.avgColNNZ,
		MaxColNNZ:  maxColInputNNZ(as),
		DupRate:    est.dupRate,
		Sorted:     p.sortedIn,
		Generic:    p.generic,
		Threads:    sched.Threads(o.Threads),
		Wide:       wideOf[T](),
	}
	key := sig.Key()
	static := staticArm(p)
	arm, dec := o.Tuner.Lookup(key, mask, static)
	if s := o.Stats; s != nil {
		s.PlannerLookups.Add(1)
		switch dec {
		case tuner.Explore:
			s.PlannerExplores.Add(1)
		case tuner.Fallback:
			s.PlannerFallbacks.Add(1)
		}
		s.RecordPlanner(arm, static)
	}
	if arm < 0 {
		return
	}
	if dec != tuner.Fallback {
		c := tuner.Arms[arm]
		p.alg = armAlg(c.Alg)
		p.engine = armEngine(c.Engine)
		p.schedule = armSched(c.Sched)
	}
	p.sigKey, p.arm, p.total = key, arm, est.total
}

package core

import (
	"fmt"
	"testing"

	"spkadd/internal/generate"
	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

func schedTestInputs(pattern string, k, rows, cols, d int, seed uint64) []*matrix.CSC {
	o := generate.Opts{Rows: rows, Cols: cols, NNZPerCol: d, Seed: seed}
	if pattern == "RMAT" {
		return generate.RMATCollection(k, o, generate.Graph500)
	}
	return generate.ERCollection(k, o)
}

// TestScheduleParity proves every schedule — on the resident executor,
// multi-threaded — produces output bit-identical to the default
// weighted schedule, for every algorithm and engine, on uniform and
// skewed inputs. Scheduling decides only which worker computes which
// column; any difference in the result is a stolen or double-run
// range.
func TestScheduleParity(t *testing.T) {
	for _, pattern := range []string{"ER", "RMAT"} {
		as := schedTestInputs(pattern, 8, 4096, 48, 12, 7)
		for _, alg := range []Algorithm{Hash, SPA, Heap, SlidingHash, TwoWayIncremental} {
			engines := []Phases{PhasesTwoPass, PhasesFused, PhasesUpperBound}
			if alg == SlidingHash || alg == TwoWayIncremental {
				engines = []Phases{PhasesTwoPass}
			}
			for _, p := range engines {
				var want *matrix.CSC
				for _, s := range Schedules {
					opt := Options{Algorithm: alg, Phases: p, Schedule: s, SortedOutput: true, Threads: 4}
					got, err := Add(as, opt)
					if err != nil {
						t.Fatalf("%s/%v/%v/%v: %v", pattern, alg, p, s, err)
					}
					if s == ScheduleWeighted {
						want = got
						continue
					}
					if !got.Equal(want) {
						t.Fatalf("%s/%v/%v: schedule %v result differs from Weighted", pattern, alg, p, s)
					}
				}
			}
		}
	}
}

// TestScheduleStatsObservability verifies OpStats' scheduling
// counters: multi-worker regions are recorded with max >= mean
// per-worker weight, and LoadImbalance reflects them.
func TestScheduleStatsObservability(t *testing.T) {
	as := schedTestInputs("RMAT", 8, 1<<14, 64, 32, 9)
	for _, s := range Schedules {
		t.Run(s.String(), func(t *testing.T) {
			var stats OpStats
			opt := Options{Algorithm: Hash, Phases: PhasesTwoPass, Schedule: s, Threads: 4, Stats: &stats}
			if _, err := Add(as, opt); err != nil {
				t.Fatal(err)
			}
			if stats.SchedRegions.Load() == 0 {
				t.Fatal("no scheduling regions recorded for a 4-thread two-pass addition")
			}
			if stats.SchedMaxWeight.Load() < stats.SchedMeanWeight.Load() {
				t.Errorf("SchedMaxWeight %d < SchedMeanWeight %d",
					stats.SchedMaxWeight.Load(), stats.SchedMeanWeight.Load())
			}
			if im := stats.LoadImbalance(); im < 1 {
				t.Errorf("LoadImbalance() = %v, want >= 1", im)
			}
			if s != ScheduleWeightedStealing && stats.Steals.Load() != 0 {
				t.Errorf("schedule %v recorded %d steals, want 0", s, stats.Steals.Load())
			}
		})
	}
}

// TestScheduleOutOfRangeNormalizes verifies an out-of-range
// Options.Schedule behaves as the weighted default instead of
// something accidental.
func TestScheduleOutOfRangeNormalizes(t *testing.T) {
	as := schedTestInputs("ER", 4, 512, 16, 8, 3)
	want, err := Add(as, Options{Algorithm: Hash, SortedOutput: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Add(as, Options{Algorithm: Hash, SortedOutput: true, Threads: 2, Schedule: Schedule(99)})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("Schedule(99) result differs from the weighted default")
	}
}

// TestSharedExecutorOptionParity runs additions from several
// workspaces through one caller-provided budgeted executor and checks
// parity — the Options.Executor handle must only change where the
// work runs, never what it computes.
func TestSharedExecutorOptionParity(t *testing.T) {
	ex := sched.NewExecutor(2)
	defer ex.Close()
	as := schedTestInputs("RMAT", 6, 2048, 32, 16, 5)
	for _, s := range Schedules {
		for _, alg := range []Algorithm{Hash, Heap, TwoWayTree} {
			opt := Options{Algorithm: alg, SortedOutput: true, Threads: 4, Schedule: s}
			want, err := Add(as, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Executor = ex
			ws := NewWorkspace(false)
			for iter := 0; iter < 3; iter++ {
				got, err := ws.Add(as, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%v/%v: shared-executor result differs (iter %d)", alg, s, iter)
				}
			}
		}
	}
}

// TestWorkspaceZeroAllocAllSchedules is the core-level form of the
// tentpole acceptance: a warmed recycling workspace at Threads=2 runs
// every schedule × engine combination without allocating — including
// the racy schedules, whose column→worker assignment varies run to
// run (the reservation path), and including the executor's own
// scheduling machinery. The workload's total input nnz (~3K entries)
// must stay well under one fused arena chunk (32Ki entries), or the
// Fused × racy-schedule cells' strict zero would become amortized
// and this assertion flaky (see arena.reserve).
func TestWorkspaceZeroAllocAllSchedules(t *testing.T) {
	as := schedTestInputs("RMAT", 8, 2048, 48, 8, 13)
	for _, alg := range []Algorithm{Hash, SPA, Heap} {
		for _, s := range Schedules {
			for _, p := range []Phases{PhasesTwoPass, PhasesFused, PhasesUpperBound} {
				t.Run(fmt.Sprintf("%v/%v/%v", alg, s, p), func(t *testing.T) {
					ws := NewWorkspace(true)
					opt := Options{Algorithm: alg, Phases: p, Schedule: s, SortedOutput: true, Threads: 2}
					for warm := 0; warm < 3; warm++ {
						if _, err := ws.Add(as, opt); err != nil {
							t.Fatal(err)
						}
					}
					allocs := testing.AllocsPerRun(10, func() {
						if _, err := ws.Add(as, opt); err != nil {
							t.Fatal(err)
						}
					})
					if allocs != 0 {
						t.Errorf("steady state allocates %.1f times per op, want 0", allocs)
					}
				})
			}
		}
	}
}

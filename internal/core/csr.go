package core

import "spkadd/internal/matrix"

// AddCSR computes B = Σ A_i over CSR matrices. The paper notes (§II-A)
// that every SpKAdd algorithm applies unchanged to CSR: a CSR matrix
// is the CSC representation of its transpose, so the addition runs on
// zero-copy transposed views — rows play the role of columns — and the
// result is re-viewed as CSR. No data is copied or converted.
func AddCSR[T matrix.Number](as []*matrix.CSROf[T], opt OptionsOf[T]) (*matrix.CSROf[T], error) {
	views := make([]*matrix.CSCOf[T], len(as))
	for i, a := range as {
		views[i] = &matrix.CSCOf[T]{
			Rows:   a.Cols,
			Cols:   a.Rows,
			ColPtr: a.RowPtr,
			RowIdx: a.ColIdx,
			Val:    a.Val,
		}
	}
	sum, err := Add(views, opt)
	if err != nil {
		return nil, err
	}
	return &matrix.CSROf[T]{
		Rows:   sum.Cols,
		Cols:   sum.Rows,
		RowPtr: sum.ColPtr,
		ColIdx: sum.RowIdx,
		Val:    sum.Val,
	}, nil
}

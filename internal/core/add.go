package core

import (
	"errors"
	"fmt"
	"time"

	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

// ErrNoInputs is returned when the input collection is empty.
var ErrNoInputs = errors.New("spkadd: no input matrices")

// ErrDimMismatch is returned when inputs do not share dimensions.
var ErrDimMismatch = errors.New("spkadd: input dimension mismatch")

// ErrUnsortedInput is returned when an algorithm that requires sorted
// columns (2-way merge, heap; Table I) receives unsorted input.
var ErrUnsortedInput = errors.New("spkadd: algorithm requires columns sorted by row index")

// Add computes B = Σ A_i with the configured algorithm.
func Add(as []*matrix.CSC, opt Options) (*matrix.CSC, error) {
	b, _, err := AddTimed(as, opt)
	return b, err
}

// AddTimed is Add, additionally reporting the wall-clock split between
// the symbolic and numeric phases (the separate series of Fig 4).
// 2-way algorithms have no symbolic phase; their full time is reported
// as Numeric.
func AddTimed(as []*matrix.CSC, opt Options) (*matrix.CSC, PhaseTimings, error) {
	var pt PhaseTimings
	if len(as) == 0 {
		return nil, pt, ErrNoInputs
	}
	rows, cols := as[0].Rows, as[0].Cols
	for i, a := range as {
		if a.Rows != rows || a.Cols != cols {
			return nil, pt, fmt.Errorf("%w: matrix %d is %dx%d, want %dx%d",
				ErrDimMismatch, i, a.Rows, a.Cols, rows, cols)
		}
	}
	if len(as) == 1 {
		out := as[0].Clone()
		if opt.SortedOutput && !out.IsColumnSorted() {
			out.SortColumns()
		}
		return out, pt, nil
	}

	sortedIn := allColumnsSorted(as)
	alg := opt.Algorithm
	if alg == Auto {
		alg = autoSelect(as, opt, sortedIn)
	}
	switch alg {
	case TwoWayIncremental, TwoWayTree, Heap:
		if !sortedIn {
			return nil, pt, fmt.Errorf("%w: %v", ErrUnsortedInput, alg)
		}
	}

	return addDispatch(as, alg, opt, sortedIn, nil)
}

// AddScaled computes the weighted sum B = Σ coeffs[i] * A_i, the form
// gradient averaging and linear combinations need. Only the k-way
// algorithms support coefficients (the 2-way baselines would need
// coefficient bookkeeping at every tree level); Auto resolves to a
// k-way algorithm, so the zero Options value works.
func AddScaled(as []*matrix.CSC, coeffs []matrix.Value, opt Options) (*matrix.CSC, error) {
	if len(coeffs) != len(as) {
		return nil, fmt.Errorf("%w: %d coefficients for %d matrices", ErrDimMismatch, len(coeffs), len(as))
	}
	if len(as) == 0 {
		return nil, ErrNoInputs
	}
	rows, cols := as[0].Rows, as[0].Cols
	for i, a := range as {
		if a.Rows != rows || a.Cols != cols {
			return nil, fmt.Errorf("%w: matrix %d is %dx%d, want %dx%d",
				ErrDimMismatch, i, a.Rows, a.Cols, rows, cols)
		}
	}
	sortedIn := allColumnsSorted(as)
	alg := opt.Algorithm
	if alg == Auto {
		alg = autoSelect(as, opt, sortedIn)
	}
	switch alg {
	case Heap:
		if !sortedIn {
			return nil, fmt.Errorf("%w: %v", ErrUnsortedInput, alg)
		}
	case SPA, Hash, SlidingHash:
	default:
		return nil, fmt.Errorf("spkadd: AddScaled supports k-way algorithms only, got %v", alg)
	}
	b, _, err := addKWayEngine(as, alg, opt, sortedIn, coeffs)
	return b, err
}

func addDispatch(as []*matrix.CSC, alg Algorithm, opt Options, sortedIn bool, coeffs []matrix.Value) (*matrix.CSC, PhaseTimings, error) {
	var pt PhaseTimings
	switch alg {
	case TwoWayIncremental, TwoWayTree, MapIncremental, MapTree:
		start := time.Now()
		var b *matrix.CSC
		switch alg {
		case TwoWayIncremental:
			b = addIncremental(as, opt, pairAddMerge)
		case TwoWayTree:
			b = addTree(as, opt, pairAddMerge)
		case MapIncremental:
			b = addIncremental(as, opt, pairAddMap)
		case MapTree:
			b = addTree(as, opt, pairAddMap)
		}
		pt.Numeric = time.Since(start)
		return b, pt, nil
	default:
		return addKWayEngine(as, alg, opt, sortedIn, coeffs)
	}
}

// addKWayEngine routes a k-way addition to the execution engine the
// Phases policy selects: the classic two-phase driver, the fused
// arena engine, or the upper-bound engine (fused.go). SlidingHash and
// explicit PhasesTwoPass always take the two-phase driver.
func addKWayEngine(as []*matrix.CSC, alg Algorithm, opt Options, sortedIn bool, coeffs []matrix.Value) (*matrix.CSC, PhaseTimings, error) {
	// sortedIn only matters to SlidingHash's row-range lookups, so the
	// single-pass engines (which exclude it) don't take it.
	switch pickPhases(as, alg, opt) {
	case PhasesFused:
		return addFused(as, alg, opt, coeffs)
	case PhasesUpperBound:
		return addUpperBound(as, alg, opt, coeffs)
	default:
		return addKWay(as, alg, opt, sortedIn, coeffs)
	}
}

// allColumnsSorted reports whether every input has sorted columns.
// The scan is linear in the total input nnz, far below the cost of the
// addition itself.
func allColumnsSorted(as []*matrix.CSC) bool {
	for _, a := range as {
		if !a.IsColumnSorted() {
			return false
		}
	}
	return true
}

// autoSelect implements the paper's practical guidance (Fig 2): the
// hash family wins across shapes and sparsities; choose SlidingHash
// once the estimated per-thread symbolic tables spill out of the
// last-level cache, and plain Hash otherwise.
func autoSelect(as []*matrix.CSC, opt Options, sortedIn bool) Algorithm {
	t := sched.Threads(opt.Threads)
	n := as[0].Cols
	if n == 0 {
		return Hash
	}
	total := 0
	for _, a := range as {
		total += a.NNZ()
	}
	avgColInz := total / n
	memSym := int64(avgColInz) * BytesPerSymbolicEntry * int64(t)
	if memSym > opt.cacheBytes() {
		return SlidingHash
	}
	return Hash
}

// addKWay runs the two-phase k-way driver: a symbolic phase computes
// nnz(B(:,j)) for every column (load-balanced by input nnz), the
// output is allocated in one shot, and the numeric phase fills each
// column independently (load-balanced by output nnz). This is the
// parallelization strategy of §III-A: thread-private data structures,
// no synchronization inside a column.
func addKWay(as []*matrix.CSC, alg Algorithm, opt Options, sortedIn bool, coeffs []matrix.Value) (*matrix.CSC, PhaseTimings, error) {
	var pt PhaseTimings
	n := as[0].Cols
	t := sched.Threads(opt.Threads)
	cache := opt.cacheBytes()
	getWorker := makeWorkers(len(as), t, opt.loadFactor())

	// Symbolic phase: per-column output sizes, balanced by input nnz.
	// The weights double as the per-column input nnz the symbolic
	// kernels need, so it is computed exactly once — outside the
	// timer, where the seed computed it, to keep the Fig 4 phase
	// split comparable.
	weightsIn := inputWeights(as, t)
	counts := make([]int64, n)
	symStart := time.Now()
	runCols(n, t, opt.Schedule, weightsIn, func(w, lo, hi int) {
		ws := getWorker(w)
		for j := lo; j < hi; j++ {
			inz := int(weightsIn[j])
			switch alg {
			case Hash:
				counts[j] = int64(hashSymbolicCol(ws, as, j, inz))
			case SlidingHash:
				counts[j] = int64(slidingSymbolicCol(ws, as, j, inz, t, cache, opt.MaxTableEntries, sortedIn))
			case Heap:
				counts[j] = int64(heapSymbolicCol(ws, as, j))
			case SPA:
				counts[j] = int64(spaSymbolicCol(ws, as, j))
			}
		}
		ws.flushStats(opt.Stats)
	})
	pt.Symbolic = time.Since(symStart)

	// Allocate the output in one shot from the symbolic counts.
	b := allocCSC(as[0].Rows, n, counts)
	nnz := b.ColPtr[n]

	// Numeric phase: fill columns, balanced by output nnz.
	numStart := time.Now()
	runCols(n, t, opt.Schedule, counts, func(w, lo, hi int) {
		ws := getWorker(w)
		for j := lo; j < hi; j++ {
			outRows := b.RowIdx[b.ColPtr[j]:b.ColPtr[j+1]]
			outVals := b.Val[b.ColPtr[j]:b.ColPtr[j+1]]
			switch alg {
			case Hash:
				hashAddCol(ws, as, j, outRows, outVals, opt.SortedOutput, coeffs)
			case SlidingHash:
				slidingHashAddCol(ws, as, j, outRows, outVals, opt.SortedOutput, t, cache, opt.MaxTableEntries, sortedIn, coeffs)
			case Heap:
				heapAddCol(ws, as, j, outRows, outVals, coeffs)
			case SPA:
				spaAddCol(ws, as, j, outRows, outVals, opt.SortedOutput, coeffs)
			}
		}
		ws.flushStats(opt.Stats)
	})
	pt.Numeric = time.Since(numStart)
	if opt.Stats != nil {
		opt.Stats.EntriesMoved.Add(nnz)
	}
	return b, pt, nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"spkadd/internal/faults"
	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

// ErrNoInputs is returned when the input collection is empty.
var ErrNoInputs = errors.New("spkadd: no input matrices")

// ErrDimMismatch is returned when inputs do not share dimensions.
var ErrDimMismatch = errors.New("spkadd: input dimension mismatch")

// ErrUnsortedInput is returned when an algorithm that requires sorted
// columns (2-way merge, heap; Table I) receives unsorted input.
var ErrUnsortedInput = errors.New("spkadd: algorithm requires columns sorted by row index")

// Add computes B = Σ A_i with the configured algorithm.
func Add[T matrix.Number](as []*matrix.CSCOf[T], opt OptionsOf[T]) (*matrix.CSCOf[T], error) {
	b, _, err := AddTimed(as, opt)
	return b, err
}

// AddTimed is Add, additionally reporting the wall-clock split between
// the symbolic and numeric phases (the separate series of Fig 4).
// 2-way algorithms have no symbolic phase; their full time is reported
// as Numeric.
//
// Scratch state comes from a pool of workspaces, so repeated one-shot
// calls amortize every internal buffer; only the returned matrix is
// freshly allocated (the caller owns it). Callers that also want the
// output storage recycled use a Workspace (or the public Adder)
// directly.
func AddTimed[T matrix.Number](as []*matrix.CSCOf[T], opt OptionsOf[T]) (*matrix.CSCOf[T], PhaseTimings, error) {
	ws := wsPoolFor[T]().Get().(*WorkspaceOf[T])
	b, pt, err := ws.AddTimed(as, opt)
	// Put only when the workspace is known clean: if a kernel panicked
	// (a caller mutating inputs mid-call, an invariant check firing) —
	// surfaced as a *PanicError now that parallel regions recover — the
	// workspace holds half-accumulated state and pooling it would feed
	// that to an unrelated future caller as silent corruption.
	if !isPanicErr(err) {
		wsPoolFor[T]().Put(ws)
	}
	return b, pt, err
}

// AddContext is Add with cooperative cancellation: the engines check
// ctx at phase boundaries and abandon the call with an error wrapping
// ErrCanceled (or ErrDeadline), leaving no partial result.
func AddContext[T matrix.Number](ctx context.Context, as []*matrix.CSCOf[T], opt OptionsOf[T]) (*matrix.CSCOf[T], error) {
	ws := wsPoolFor[T]().Get().(*WorkspaceOf[T])
	b, err := ws.AddContext(ctx, as, opt)
	if !isPanicErr(err) {
		wsPoolFor[T]().Put(ws)
	}
	return b, err
}

// AddScaled computes the weighted sum B = Σ coeffs[i] * A_i, the form
// gradient averaging and linear combinations need. Only the k-way
// algorithms support coefficients (the 2-way baselines would need
// coefficient bookkeeping at every tree level); Auto resolves to a
// k-way algorithm, so the zero Options value works.
func AddScaled[T matrix.Number](as []*matrix.CSCOf[T], coeffs []T, opt OptionsOf[T]) (*matrix.CSCOf[T], error) {
	ws := wsPoolFor[T]().Get().(*WorkspaceOf[T])
	b, err := ws.AddScaled(as, coeffs, opt)
	if !isPanicErr(err) { // see AddTimed
		wsPoolFor[T]().Put(ws)
	}
	return b, err
}

// validateDims checks the input collection for emptiness and dimension
// agreement.
func validateDims[T matrix.Number](as []*matrix.CSCOf[T]) error {
	if len(as) == 0 {
		return ErrNoInputs
	}
	rows, cols := as[0].Rows, as[0].Cols
	for i, a := range as {
		if a.Rows != rows || a.Cols != cols {
			return fmt.Errorf("%w: matrix %d is %dx%d, want %dx%d",
				ErrDimMismatch, i, a.Rows, a.Cols, rows, cols)
		}
	}
	return nil
}

// kernelFault is the numeric kernels' fault-injection site, at the top
// of every single- and two-pass numeric body. The faultKey is the
// caller's fault zone (a pool shard's 1-based index, 0 for direct
// calls), so a chaos schedule can target one shard's kernels. Disabled
// cost: one atomic load per region chunk.
func (ws *WorkspaceOf[T]) kernelFault() {
	key := ws.opt.faultKey
	if faults.Panics(faults.PanicInKernel, key) {
		if ws.opt.Stats != nil {
			ws.opt.Stats.FaultsInjected.Add(1)
		}
		panic(faults.InjectedPanic{Point: faults.PanicInKernel, Key: key})
	}
}

func unsortedErr(alg Algorithm) error {
	return fmt.Errorf("%w: %v", ErrUnsortedInput, alg)
}

// allColumnsSorted reports whether every input has sorted columns.
// The scan is linear in the total input nnz, far below the cost of the
// addition itself.
func allColumnsSorted[T matrix.Number](as []*matrix.CSCOf[T]) bool {
	for _, a := range as {
		if !a.IsColumnSorted() {
			return false
		}
	}
	return true
}

// autoSelect implements the paper's practical guidance (Fig 2): the
// hash family wins across shapes and sparsities; choose SlidingHash
// once the estimated per-thread symbolic tables spill out of the
// last-level cache, and plain Hash otherwise. The density estimate is
// the shared workloadEstimate, the same one pickPhases and the tuner
// signature read.
func autoSelect[T matrix.Number](est workloadEstimate, opt OptionsOf[T]) Algorithm {
	if est.cols == 0 {
		return Hash
	}
	t := sched.Threads(opt.Threads)
	memSym := int64(est.avgColNNZ) * BytesPerSymbolicEntry * int64(t)
	if memSym > opt.cacheBytes() {
		return SlidingHash
	}
	return Hash
}

// addKWay runs the two-phase k-way driver: a symbolic phase computes
// nnz(B(:,j)) for every column (load-balanced by input nnz), the
// output is allocated in one shot, and the numeric phase fills each
// column independently (load-balanced by output nnz). This is the
// parallelization strategy of §III-A: thread-private data structures,
// no synchronization inside a column.
func (ws *WorkspaceOf[T]) addKWay() (*matrix.CSCOf[T], PhaseTimings, error) {
	var pt PhaseTimings
	n := ws.as[0].Cols
	ws.colScratch(n)
	if err := ws.ctxCheck(); err != nil {
		return nil, pt, err
	}

	// Symbolic phase: per-column output sizes, balanced by input nnz.
	// The weights double as the per-column input nnz the symbolic
	// kernels need, so it is computed exactly once — outside the
	// timer, where the seed computed it, to keep the Fig 4 phase
	// split comparable. Reservation (a no-op except under the racy
	// schedules) stays outside the timers too: it is scratch sizing,
	// like the workspace growth the timers never saw.
	if err := ws.fillInputWeights(); err != nil {
		return nil, pt, err
	}
	ws.reserveWorkers(ws.weights, true)
	symStart := time.Now()
	err := ws.runCols(n, ws.weights, ws.symFn)
	pt.Symbolic = time.Since(symStart)
	if err != nil {
		return nil, pt, err
	}
	if err := ws.ctxCheck(); err != nil {
		return nil, pt, err
	}

	// Allocate the output in one shot from the symbolic counts.
	b := ws.allocOutput(ws.as[0].Rows, n, ws.counts)
	ws.b = b
	nnz := b.ColPtr[n]

	// Numeric phase: fill columns, balanced by output nnz.
	// (Generic monoids never reach this driver with DropIdentity:
	// validation pins those to a single-pass engine, so the symbolic
	// counts always agree with the numeric fill.) SlidingHash reserves
	// by input nnz: its numeric tables are sized per row-range part of
	// the input, which can exceed the column's output nnz.
	numBound := ws.counts
	if ws.alg == SlidingHash {
		numBound = ws.weights
	}
	ws.reserveWorkers(numBound, false)
	numStart := time.Now()
	err = ws.runCols(n, ws.counts, ws.numFn)
	pt.Numeric = time.Since(numStart)
	if err != nil {
		return nil, pt, err
	}
	if ws.opt.Stats != nil {
		ws.opt.Stats.EntriesMoved.Add(nnz)
	}
	return b, pt, nil
}

// symBody is the symbolic phase body: one worker sizing the columns of
// [lo, hi) with its thread-private structures.
func (ws *WorkspaceOf[T]) symBody(w, lo, hi int) {
	s := ws.worker(w)
	for j := lo; j < hi; j++ {
		inz := int(ws.weights[j])
		switch ws.alg {
		case Hash:
			ws.counts[j] = int64(hashSymbolicCol(s, ws.as, j, inz))
		case SlidingHash:
			ws.counts[j] = int64(slidingSymbolicCol(s, ws.as, j, inz, ws.t, ws.cache, ws.opt.MaxTableEntries, ws.sortedIn))
		case Heap:
			ws.counts[j] = int64(heapSymbolicCol(s, ws.as, j))
		case SPA:
			ws.counts[j] = int64(spaSymbolicCol(s, ws.as, j))
		}
	}
	s.flushStats(ws.opt.Stats)
}

// numBody is the numeric phase body: fill the exactly-sized output
// columns of [lo, hi).
func (ws *WorkspaceOf[T]) numBody(w, lo, hi int) {
	ws.kernelFault()
	s, b, mon := ws.worker(w), ws.b, ws.monP
	for j := lo; j < hi; j++ {
		outRows := b.RowIdx[b.ColPtr[j]:b.ColPtr[j+1]]
		outVals := b.Val[b.ColPtr[j]:b.ColPtr[j+1]]
		switch ws.alg {
		case Hash:
			hashAddCol(s, ws.as, j, outRows, outVals, ws.opt.SortedOutput, ws.coeffs, mon)
		case SlidingHash:
			slidingHashAddCol(s, ws.as, j, outRows, outVals, ws.opt.SortedOutput, ws.t, ws.cache, ws.opt.MaxTableEntries, ws.sortedIn, ws.coeffs, mon)
		case Heap:
			heapAddCol(s, ws.as, j, outRows, outVals, ws.coeffs, mon)
		case SPA:
			spaAddCol(s, ws.as, j, outRows, outVals, ws.opt.SortedOutput, ws.coeffs, mon)
		}
	}
	s.flushStats(ws.opt.Stats)
}

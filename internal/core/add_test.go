package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// fig1Inputs builds the four single-column matrices of the paper's
// Figure 1(a).
func fig1Inputs() []*matrix.CSC {
	cols := [][]matrix.Entry{
		{{Row: 1, Val: 3}, {Row: 3, Val: 2}, {Row: 6, Val: 1}},
		{{Row: 0, Val: 2}, {Row: 3, Val: 1}, {Row: 5, Val: 3}},
		{{Row: 5, Val: 2}, {Row: 7, Val: 1}},
		{{Row: 1, Val: 2}, {Row: 6, Val: 1}, {Row: 7, Val: 3}},
	}
	as := make([]*matrix.CSC, len(cols))
	for i, c := range cols {
		var ts []matrix.Triple
		for _, e := range c {
			ts = append(ts, matrix.Triple{Row: e.Row, Col: 0, Val: e.Val})
		}
		as[i] = matrix.FromTriples(8, 1, ts)
	}
	return as
}

// fig1Want is B(:,j) from Figure 1(a):
// (0,2),(1,5),(3,3),(5,5),(6,2),(7,4).
func fig1Want() *matrix.CSC {
	return matrix.FromTriples(8, 1, []matrix.Triple{
		{Row: 0, Col: 0, Val: 2}, {Row: 1, Col: 0, Val: 5},
		{Row: 3, Col: 0, Val: 3}, {Row: 5, Col: 0, Val: 5},
		{Row: 6, Col: 0, Val: 2}, {Row: 7, Col: 0, Val: 4},
	})
}

func TestPaperFig1AllAlgorithms(t *testing.T) {
	as := fig1Inputs()
	want := fig1Want()
	for _, alg := range Algorithms {
		got, err := Add(as, Options{Algorithm: alg, SortedOutput: true, Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !got.Equal(want) {
			t.Errorf("%v: result differs from the paper's Figure 1 output", alg)
		}
	}
}

func TestPaperFig1SlidingForced(t *testing.T) {
	// Force multiple sliding parts on the tiny example.
	as := fig1Inputs()
	got, err := Add(as, Options{Algorithm: SlidingHash, SortedOutput: true, MaxTableEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(fig1Want()) {
		t.Error("sliding hash with forced partitioning differs from Figure 1 output")
	}
}

func erInputs(k, rows, cols, d int, seed uint64) []*matrix.CSC {
	return generate.ERCollection(k, generate.Opts{Rows: rows, Cols: cols, NNZPerCol: d, Seed: seed})
}

func TestAllAlgorithmsAgreeER(t *testing.T) {
	as := erInputs(8, 500, 40, 12, 1)
	want := matrix.ReferenceAdd(as)
	for _, alg := range Algorithms {
		for _, threads := range []int{1, 3} {
			got, err := Add(as, Options{Algorithm: alg, Threads: threads, SortedOutput: true})
			if err != nil {
				t.Fatalf("%v/T=%d: %v", alg, threads, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%v/T=%d: invalid output: %v", alg, threads, err)
			}
			if !got.Equal(want) {
				t.Errorf("%v/T=%d: result differs from dense reference", alg, threads)
			}
			if !got.IsColumnSorted() {
				t.Errorf("%v/T=%d: SortedOutput violated", alg, threads)
			}
		}
	}
}

func TestAllAlgorithmsAgreeRMAT(t *testing.T) {
	as := generate.RMATCollection(6, generate.Opts{Rows: 400, Cols: 30, NNZPerCol: 10, Seed: 2}, generate.Graph500)
	want := matrix.ReferenceAdd(as)
	for _, alg := range Algorithms {
		got, err := Add(as, Options{Algorithm: alg, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !got.Equal(want) {
			t.Errorf("%v: result differs from dense reference on RMAT inputs", alg)
		}
	}
}

func TestUnsortedInputs(t *testing.T) {
	as := erInputs(5, 300, 20, 9, 3)
	// Shuffle entries within each column.
	rng := rand.New(rand.NewSource(4))
	for _, a := range as {
		for j := 0; j < a.Cols; j++ {
			rows, vals := a.ColRows(j), a.ColVals(j)
			rng.Shuffle(len(rows), func(x, y int) {
				rows[x], rows[y] = rows[y], rows[x]
				vals[x], vals[y] = vals[y], vals[x]
			})
		}
	}
	want := matrix.ReferenceAdd(as)

	// Table I: SPA, Hash, SlidingHash and the map baselines accept
	// unsorted inputs.
	for _, alg := range []Algorithm{SPA, Hash, SlidingHash, MapIncremental, MapTree} {
		got, err := Add(as, Options{Algorithm: alg, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v on unsorted: %v", alg, err)
		}
		if !got.Equal(want) {
			t.Errorf("%v: wrong result on unsorted inputs", alg)
		}
	}
	// Sliding with forced partitioning must also survive unsorted input
	// (scan-filter path).
	got, err := Add(as, Options{Algorithm: SlidingHash, SortedOutput: true, MaxTableEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("sliding hash scan-filter path wrong on unsorted inputs")
	}

	// 2-way merge and heap must refuse unsorted input.
	for _, alg := range []Algorithm{TwoWayIncremental, TwoWayTree, Heap} {
		if _, err := Add(as, Options{Algorithm: alg}); !errors.Is(err, ErrUnsortedInput) {
			t.Errorf("%v: want ErrUnsortedInput, got %v", alg, err)
		}
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Add(nil, Options{}); !errors.Is(err, ErrNoInputs) {
		t.Errorf("empty input: got %v", err)
	}
	a := matrix.FromTriples(4, 4, []matrix.Triple{{Row: 1, Col: 1, Val: 1}})
	b := matrix.FromTriples(5, 4, nil)
	if _, err := Add([]*matrix.CSC{a, b}, Options{}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch: got %v", err)
	}
}

func TestSingleInputClones(t *testing.T) {
	a := matrix.FromTriples(4, 4, []matrix.Triple{{Row: 2, Col: 3, Val: 7}})
	got, err := Add([]*matrix.CSC{a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Error("k=1 must return the input matrix")
	}
	got.Val[0] = 99
	if a.Val[0] == 99 {
		t.Error("k=1 result aliases the input")
	}
}

func TestIncrementalDoesNotMutateInputs(t *testing.T) {
	as := erInputs(4, 100, 10, 5, 5)
	snapshots := make([]*matrix.CSC, len(as))
	for i, a := range as {
		snapshots[i] = a.Clone()
	}
	for _, alg := range []Algorithm{TwoWayIncremental, TwoWayTree, MapIncremental, MapTree, Heap, SPA, Hash, SlidingHash} {
		if _, err := Add(as, Options{Algorithm: alg}); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for i := range as {
			if !as[i].Equal(snapshots[i]) {
				t.Fatalf("%v mutated input %d", alg, i)
			}
		}
	}
}

func TestSchedulesAgree(t *testing.T) {
	as := generate.RMATCollection(5, generate.Opts{Rows: 300, Cols: 24, NNZPerCol: 8, Seed: 6}, generate.Graph500)
	want := matrix.ReferenceAdd(as)
	for _, s := range []Schedule{ScheduleWeighted, ScheduleStatic, ScheduleDynamic} {
		got, err := Add(as, Options{Algorithm: Hash, Schedule: s, Threads: 4, SortedOutput: true})
		if err != nil {
			t.Fatalf("schedule %d: %v", s, err)
		}
		if !got.Equal(want) {
			t.Errorf("schedule %d: wrong result", s)
		}
	}
}

func TestUnsortedOutputStillCorrect(t *testing.T) {
	as := erInputs(6, 200, 16, 10, 7)
	want := matrix.ReferenceAdd(as)
	for _, alg := range []Algorithm{Hash, SPA, SlidingHash} {
		got, err := Add(as, Options{Algorithm: alg, SortedOutput: false})
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !got.Equal(want) { // Equal compares columns as sets
			t.Errorf("%v: unsorted output has wrong entries", alg)
		}
	}
}

func TestAutoSelection(t *testing.T) {
	as := erInputs(4, 300, 8, 20, 8)
	// Huge cache: plain hash.
	if alg := autoSelect(estimateWorkload(as), Options{CacheBytes: 1 << 30}); alg != Hash {
		t.Errorf("large cache: auto = %v, want Hash", alg)
	}
	// Tiny cache: sliding hash.
	if alg := autoSelect(estimateWorkload(as), Options{CacheBytes: 64}); alg != SlidingHash {
		t.Errorf("tiny cache: auto = %v, want SlidingHash", alg)
	}
	// End to end through Auto.
	got, err := Add(as, Options{Algorithm: Auto, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(matrix.ReferenceAdd(as)) {
		t.Error("Auto produced a wrong result")
	}
}

func TestPhaseTimingsReported(t *testing.T) {
	as := erInputs(8, 2000, 64, 32, 9)
	_, pt, err := AddTimed(as, Options{Algorithm: Hash, Phases: PhasesTwoPass})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Symbolic <= 0 || pt.Numeric <= 0 {
		t.Errorf("k-way phases not timed: %+v", pt)
	}
	if pt.Total() != pt.Symbolic+pt.Numeric {
		t.Error("Total mismatch")
	}
	_, pt2, err := AddTimed(as, Options{Algorithm: TwoWayTree})
	if err != nil {
		t.Fatal(err)
	}
	if pt2.Symbolic != 0 || pt2.Numeric <= 0 {
		t.Errorf("2-way phases: %+v", pt2)
	}
	// Single-pass engines have no symbolic phase to time.
	for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
		_, pt3, err := AddTimed(as, Options{Algorithm: Hash, Phases: p})
		if err != nil {
			t.Fatal(err)
		}
		if pt3.Symbolic != 0 || pt3.Numeric <= 0 {
			t.Errorf("%v phases: %+v", p, pt3)
		}
	}
}

func TestQuickAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(6) + 2
		rows := rng.Intn(120) + 4
		cols := rng.Intn(24) + 1
		as := make([]*matrix.CSC, k)
		for i := range as {
			coo := matrix.NewCOO(rows, cols)
			// Positive values: the dense reference drops exact-zero
			// sums, while SpKAdd keeps explicit zeros (tested
			// separately in TestCancellationKeepsExplicitZeros).
			for e := 0; e < rng.Intn(80); e++ {
				coo.Append(matrix.Index(rng.Intn(rows)), matrix.Index(rng.Intn(cols)), float64(rng.Intn(7)+1))
			}
			as[i] = coo.ToCSC()
		}
		want := matrix.ReferenceAdd(as)
		for _, alg := range Algorithms {
			got, err := Add(as, Options{Algorithm: alg, SortedOutput: true, Threads: 1 + rng.Intn(3)})
			if err != nil {
				return false
			}
			if !got.EqualTol(want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEmptyColumnsAndMatrices(t *testing.T) {
	// Some inputs entirely empty, some columns empty everywhere.
	a := matrix.FromTriples(10, 5, []matrix.Triple{{Row: 1, Col: 0, Val: 1}})
	empty := matrix.NewCSC(10, 5, 0)
	c := matrix.FromTriples(10, 5, []matrix.Triple{{Row: 9, Col: 4, Val: 2}})
	as := []*matrix.CSC{a, empty, c}
	want := matrix.ReferenceAdd(as)
	for _, alg := range Algorithms {
		got, err := Add(as, Options{Algorithm: alg, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !got.Equal(want) {
			t.Errorf("%v: wrong result with empty inputs", alg)
		}
	}
	// All inputs empty.
	got, err := Add([]*matrix.CSC{empty, empty.Clone()}, Options{Algorithm: Hash})
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || got.Rows != 10 || got.Cols != 5 {
		t.Errorf("empty sum = %v", got)
	}
}

func TestCancellationKeepsExplicitZeros(t *testing.T) {
	// SpKAdd is numeric addition: +1 and -1 at the same position sum
	// to an explicit zero entry, which stays stored (the symbolic
	// phase counts structure, not values) — same as the paper's
	// implementations.
	a := matrix.FromTriples(4, 1, []matrix.Triple{{Row: 2, Col: 0, Val: 1}})
	b := matrix.FromTriples(4, 1, []matrix.Triple{{Row: 2, Col: 0, Val: -1}})
	for _, alg := range Algorithms {
		got, err := Add([]*matrix.CSC{a, b}, Options{Algorithm: alg, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got.NNZ() != 1 || got.Val[0] != 0 {
			t.Errorf("%v: cancellation produced nnz=%d vals=%v, want one explicit zero", alg, got.NNZ(), got.Val)
		}
	}
}

func TestCompressionFactorExtremes(t *testing.T) {
	// cf = k: all inputs identical support.
	base := matrix.FromTriples(50, 4, []matrix.Triple{
		{Row: 3, Col: 0, Val: 1}, {Row: 7, Col: 1, Val: 2}, {Row: 49, Col: 3, Val: 3},
	})
	as := []*matrix.CSC{base, base.Clone(), base.Clone(), base.Clone()}
	want := matrix.ReferenceAdd(as)
	for _, alg := range Algorithms {
		got, err := Add(as, Options{Algorithm: alg, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !got.Equal(want) {
			t.Errorf("%v: wrong result at cf=k", alg)
		}
		if got.NNZ() != base.NNZ() {
			t.Errorf("%v: nnz=%d, want %d (maximal compression)", alg, got.NNZ(), base.NNZ())
		}
	}
}

package core

import (
	"context"
	"errors"
	"fmt"

	"spkadd/internal/sched"
)

// ErrCanceled is returned by the context-aware entry points
// (AddContext, PushContext, SumContext, CloseContext) when their
// context is canceled. It wraps the context's error, so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled)
// match. Cancellation never corrupts state: a canceled reduction
// leaves the running sum and all pending inputs exactly as they were,
// and the next uncanceled call picks the work back up.
var ErrCanceled = errors.New("spkadd: operation canceled")

// ErrDeadline is the deadline form of ErrCanceled, wrapping
// context.DeadlineExceeded.
var ErrDeadline = errors.New("spkadd: deadline exceeded")

// PanicError is a panic recovered inside the streaming stack — in an
// executor worker, a shard reducer, or an inline kernel — converted to
// an error at the nearest fault boundary instead of killing the
// process. See sched.PanicError for the fields.
type PanicError = sched.PanicError

// ctxErr wraps a context's termination as the typed cancellation
// error. Callers check ctx.Err() != nil before calling.
func ctxErr(ctx context.Context) error {
	cause := context.Cause(ctx)
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadline, cause)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// isPanicErr reports whether err carries a recovered panic — the one
// error class after which scratch state (a workspace mid-kernel) is
// indeterminate and must be quarantined rather than reused.
func isPanicErr(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// recoverToError converts a recovered panic value into a *PanicError,
// for the recovery layers that guard inline (non-executor) code:
// shard reducers, the Accumulator's flush, the public Adder.
func recoverToError(r any) error {
	return sched.NewPanicError(r, 0)
}

package core

import "spkadd/internal/matrix"

// mergeCount returns the number of distinct row indices in the union
// of two sorted, duplicate-free columns — the symbolic half of the
// paper's ColAdd (Algorithm 1, line 5).
func mergeCount(ar, br []matrix.Index) int {
	i, j, n := 0, 0, 0
	for i < len(ar) && j < len(br) {
		n++
		switch {
		case ar[i] < br[j]:
			i++
		case ar[i] > br[j]:
			j++
		default:
			i++
			j++
		}
	}
	return n + (len(ar) - i) + (len(br) - j)
}

// mergeInto merges two sorted columns into out slices of exactly the
// right length (as returned by mergeCount), summing values on equal
// row indices. It returns the number of entries written.
func mergeInto[T matrix.Arith](ar []matrix.Index, av []T, br []matrix.Index, bv []T, or []matrix.Index, ov []T) int {
	i, j, o := 0, 0, 0
	for i < len(ar) && j < len(br) {
		switch {
		case ar[i] < br[j]:
			or[o], ov[o] = ar[i], av[i]
			i++
		case ar[i] > br[j]:
			or[o], ov[o] = br[j], bv[j]
			j++
		default:
			or[o], ov[o] = ar[i], av[i]+bv[j]
			i++
			j++
		}
		o++
	}
	for i < len(ar) {
		or[o], ov[o] = ar[i], av[i]
		i++
		o++
	}
	for j < len(br) {
		or[o], ov[o] = br[j], bv[j]
		j++
		o++
	}
	return o
}

// sortPairs sorts (rows, vals) jointly by ascending row index. Used by
// the hash algorithm when sorted output is requested (Algorithm 5,
// line 15). Recursion is through a top-level function rather than a
// self-referencing closure: the closure form puts a funcval on the
// heap per call, which would be the only steady-state allocation in a
// reused workspace's sorted-output path.
func sortPairs[T matrix.Number](rows []matrix.Index, vals []T) {
	if len(rows) > 1 {
		quickSortPairs(rows, vals, 0, len(rows)-1)
	}
}

func quickSortPairs[T matrix.Number](rows []matrix.Index, vals []T, lo, hi int) {
	for hi-lo > 12 {
		p := partitionPairs(rows, vals, lo, hi)
		if p-lo < hi-p {
			quickSortPairs(rows, vals, lo, p)
			lo = p + 1
		} else {
			quickSortPairs(rows, vals, p+1, hi)
			hi = p
		}
	}
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && rows[j] < rows[j-1]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
}

func partitionPairs[T matrix.Number](rows []matrix.Index, vals []T, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if rows[mid] < rows[lo] {
		swapPair(rows, vals, mid, lo)
	}
	if rows[hi] < rows[lo] {
		swapPair(rows, vals, hi, lo)
	}
	if rows[hi] < rows[mid] {
		swapPair(rows, vals, hi, mid)
	}
	pivot := rows[mid]
	swapPair(rows, vals, mid, hi-1)
	i, j := lo, hi-1
	for {
		for i++; rows[i] < pivot; i++ {
		}
		for j--; rows[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		swapPair(rows, vals, i, j)
	}
	swapPair(rows, vals, i, hi-1)
	return i
}

func swapPair[T matrix.Number](rows []matrix.Index, vals []T, i, j int) {
	rows[i], rows[j] = rows[j], rows[i]
	vals[i], vals[j] = vals[j], vals[i]
}

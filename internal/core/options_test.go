package core

import (
	"testing"

	"spkadd/internal/matrix"
)

func TestLoadFactorClamp(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want float64
	}{
		{0, 0.5},  // unset: default
		{-3, 0.5}, // nonsense: default
		{0.25, 0.25},
		{0.9, 0.9},
		{1, 1},
		{1.0001, 1}, // above the valid range: clamp, don't reset
		{9, 1},      // the typo'd-0.9 case from the issue
	} {
		if got := (Options{LoadFactor: tc.in}).loadFactor(); got != tc.want {
			t.Errorf("loadFactor(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestLoadFactorFullTables proves the clamped 1.0 load factor is
// actually usable: results stay correct when tables are packed to
// capacity, across both phases and engines.
func TestLoadFactorFullTables(t *testing.T) {
	as := erInputs(6, 300, 16, 10, 71)
	want := matrix.ReferenceAdd(as)
	for _, p := range PhasesPolicies {
		got, err := Add(as, Options{Algorithm: Hash, LoadFactor: 9, Phases: p, SortedOutput: true})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%v: LoadFactor 9 (clamped to 1.0) gave a wrong sum", p)
		}
	}
}

// TestEngineUsedObservable proves the resolved execution engine is
// observable through OpStats — in particular the silent fallback:
// SlidingHash and the 2-way algorithms keep their native drivers
// whatever Options.Phases asks for, and that must show up as
// PhasesTwoPass rather than the caller's request.
func TestEngineUsedObservable(t *testing.T) {
	as := erInputs(4, 400, 16, 8, 72)
	for _, tc := range []struct {
		alg  Algorithm
		req  Phases
		want Phases
	}{
		{Hash, PhasesFused, PhasesFused},
		{Hash, PhasesUpperBound, PhasesUpperBound},
		{Hash, PhasesTwoPass, PhasesTwoPass},
		{SPA, PhasesFused, PhasesFused},
		{Heap, PhasesUpperBound, PhasesUpperBound},
		// The fallbacks the issue calls out: requesting a single-pass
		// engine on algorithms that have none.
		{SlidingHash, PhasesFused, PhasesTwoPass},
		{SlidingHash, PhasesUpperBound, PhasesTwoPass},
		{TwoWayTree, PhasesFused, PhasesTwoPass},
		{TwoWayIncremental, PhasesUpperBound, PhasesTwoPass},
	} {
		var stats OpStats
		if _, ok := stats.EngineUsed(); ok {
			t.Fatal("fresh OpStats reports an engine before any addition")
		}
		_, err := Add(as, Options{Algorithm: tc.alg, Phases: tc.req, Stats: &stats})
		if err != nil {
			t.Fatalf("%v/%v: %v", tc.alg, tc.req, err)
		}
		got, ok := stats.EngineUsed()
		if !ok {
			t.Fatalf("%v/%v: no engine recorded", tc.alg, tc.req)
		}
		if got != tc.want {
			t.Errorf("%v requesting %v: ran %v, want %v", tc.alg, tc.req, got, tc.want)
		}
	}
	// PhasesAuto records whichever concrete engine it picked.
	var stats OpStats
	if _, err := Add(as, Options{Algorithm: Hash, Phases: PhasesAuto, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if got, ok := stats.EngineUsed(); !ok || got == PhasesAuto {
		t.Errorf("PhasesAuto recorded %v (ok=%v), want a concrete engine", got, ok)
	}
}

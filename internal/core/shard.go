package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

// This file implements the concurrent, column-sharded accumulation
// pool: the multi-producer counterpart of the single-goroutine
// Accumulator. The paper names streaming/batched SpKAdd as its future
// work (§V); the Accumulator covers one producer, but a serving
// system has many — and funneling them through one lock would
// serialize exactly the reduction work SpKAdd parallelizes.
//
// The pool shards the COLUMN space instead: the n output columns are
// split into S contiguous ranges (the same near-equal Span arithmetic
// as ColSplit and the schedulers), and each shard owns a resident
// Workspace, a running sum over its columns, and a pending queue.
// Push slices the incoming matrix into per-shard column views —
// zero-copy, via matrix.ColView — and enqueues each piece under that
// shard's lock only, so producers touching a shard never contend with
// a reduction in flight and different shards never contend at all.
// Per-shard reducer goroutines drain their queues asynchronously with
// the same budget trigger as Accumulator.Flush (running sum + pending
// bytes against the shard's budget share, plus the pending-count cap),
// keeping every reduction k-way; each reduction takes at most a
// budget's worth of pending pieces, so the Accumulator's bound — a
// reduction's input never exceeds budget + one matrix — holds here
// too, and a high-water mark (2x the shard budget) blocks producers
// that outrun their reducer instead of pinning unbounded queues. Sum
// barriers the reducers and stitches the per-shard sums — disjoint
// column ranges — into one CSC with a pure copy; no merge is needed,
// which is what makes column sharding the right axis to split on.

// ErrPoolClosed is returned by Push after Close has been called.
var ErrPoolClosed = errors.New("spkadd: Pool used after Close")

// PoolOptions configure a sharded accumulation pool.
type PoolOptions struct {
	// Shards is the column-shard count S. <=0 selects the heuristic
	// min(GOMAXPROCS, cols): one reducer per core saturates the
	// machine. Explicit values clamp to [1, cols] — a shard narrower
	// than one column would idle a reducer and dilute the budget.
	Shards int
	// BudgetBytes is the total reduction budget, divided evenly among
	// the shards; each shard reduces when its running sum plus pending
	// pieces would exceed its share (<=0 means 256MB total, like
	// NewAccumulator).
	BudgetBytes int64
	// Add are the Options for the per-shard reductions. When Threads
	// is unset and the pool has more than one shard, reductions run
	// single-threaded: the shards themselves are the parallelism, and
	// letting every reducer run GOMAXPROCS workers would oversubscribe
	// the machine. Internally parallel reductions each run on their
	// shard workspace's resident executor; set Add.Executor to place
	// every shard's reductions under one caller-wide worker budget
	// instead — noting that regions on a shared executor serialize,
	// trading reduction throughput for a hard concurrency cap.
	Add Options
}

// Pool is a concurrent, column-sharded streaming accumulator: many
// producer goroutines Push delta matrices while per-shard reducers
// fold them into per-column-range running sums, and Sum stitches the
// shards into the total. Push, Sum, Close and K are safe for
// concurrent use, and Push linearizes with Sum and Close: a pushed
// matrix is observed whole or not at all, never some shards' slices
// without the others'.
//
// Ownership: like the Accumulator, a pool keeps references into each
// pushed matrix until the shard reductions that absorb it complete;
// producers must not mutate a matrix after pushing it. The matrix
// returned by Sum is freshly allocated and caller-owned.
//
// Close stops the reducers after draining outstanding work; pushes
// that lose the race with Close fail whole with ErrPoolClosed. A
// closed pool still answers Sum and K.
type Pool struct {
	rows, cols int
	shards     []*poolShard
	closed     atomic.Bool
	absorbed   atomic.Int64
	wg         sync.WaitGroup

	// pushMu makes a multi-shard Push atomic against Sum and Close:
	// producers hold it shared while slicing and enqueueing, Sum and
	// Close hold it exclusively while establishing their cut. Without
	// it a Sum racing a Push could barrier between two of the push's
	// enqueues and stitch a matrix containing only some of its shards
	// — a total no prefix of pushes could produce. Reducers never
	// touch it, so reduction work proceeds under either hold.
	pushMu sync.RWMutex
}

// NewPool returns a pool for rows x cols matrices. See PoolOptions for
// the shard-count and budget defaults.
func NewPool(rows, cols int, popt PoolOptions) *Pool {
	s := popt.Shards
	if s <= 0 {
		s = sched.Threads(0)
	}
	// A shard narrower than one column is useless — it would idle a
	// reducer goroutine and dilute every real shard's budget share —
	// so explicit requests clamp to the column count too.
	if s > cols {
		s = cols
	}
	if s < 1 {
		s = 1
	}
	budget := popt.BudgetBytes
	if budget <= 0 {
		budget = 256 << 20
	}
	shardBudget := budget / int64(s)
	if shardBudget < 1 {
		shardBudget = 1
	}
	opt := popt.Add
	if opt.Threads < 1 && s > 1 {
		opt.Threads = 1
	}
	p := &Pool{rows: rows, cols: cols, shards: make([]*poolShard, s)}
	for i := range p.shards {
		c0, c1 := sched.Span(cols, s, i)
		sh := &poolShard{c0: c0, c1: c1, budget: shardBudget, opt: opt}
		sh.cond = sync.NewCond(&sh.mu)
		sh.done = sync.NewCond(&sh.mu)
		sh.space = sync.NewCond(&sh.mu)
		p.shards[i] = sh
		p.wg.Add(1)
		go sh.run(&p.wg)
	}
	return p
}

// Shards returns the pool's shard count.
func (p *Pool) Shards() int { return len(p.shards) }

// Push enqueues one matrix for accumulation and returns without
// waiting for any reduction: the matrix is sliced into per-shard
// column views (zero-copy) and each non-empty piece is appended to
// its shard's queue under that shard's lock alone. Producers block
// only while a Sum or Close is establishing its cut, or when a
// shard's queue has hit its high-water mark (2x the shard's budget
// share) — backpressure for producers outrunning the reducers.
// Reduction errors are deferred to Sum and Close; Push itself only
// fails on dimension mismatch or a closed pool.
func (p *Pool) Push(a *matrix.CSC) error {
	p.pushMu.RLock()
	defer p.pushMu.RUnlock()
	if p.closed.Load() {
		return ErrPoolClosed
	}
	if a.Rows != p.rows || a.Cols != p.cols {
		return fmt.Errorf("%w: pushed %dx%d, pool is %dx%d",
			ErrDimMismatch, a.Rows, a.Cols, p.rows, p.cols)
	}
	for _, s := range p.shards {
		lo, hi := a.ColPtr[s.c0], a.ColPtr[s.c1]
		if lo == hi {
			// Nothing in this shard's columns; adding an empty piece
			// is the identity, so skip the queue entirely.
			continue
		}
		if err := s.enqueue(a.ColView(s.c0, s.c1), (hi-lo)*entryBytes); err != nil {
			return err
		}
	}
	p.absorbed.Add(1)
	return nil
}

// Sum waits for every shard to reduce all pieces enqueued before the
// call, then stitches the per-shard running sums into one freshly
// allocated rows x cols matrix. The pool remains usable afterwards —
// Sum between pushes observes the running total, like
// Accumulator.Sum. A Push racing Sum is either included whole or
// excluded whole (Push linearizes with Sum; producers block for the
// duration of the barrier and stitch). If any shard reduction failed
// (for example Heap options over unsorted input), the first error is
// returned, sticky.
func (p *Pool) Sum() (*matrix.CSC, error) {
	// The exclusive hold cuts the push stream: no Push is mid-flight
	// while we barrier and stitch, so the result is the exact sum of a
	// prefix of each producer's pushes. Reducers drain independently
	// of pushMu, so the barrier cannot starve.
	p.pushMu.Lock()
	defer p.pushMu.Unlock()
	if err := p.barrier(); err != nil {
		return nil, err
	}
	// Stitch under all shard locks (in index order), freezing every
	// shard's sum pointer. A reduction still in flight only reads the
	// current sum and writes its workspace's other ping-pong buffer;
	// it cannot install a result — or start a successor that would
	// overwrite storage we are copying — without the lock.
	for _, s := range p.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range p.shards {
			s.mu.Unlock()
		}
	}()
	total := 0
	for _, s := range p.shards {
		if s.sum != nil {
			total += s.sum.NNZ()
		}
	}
	out := matrix.NewCSC(p.rows, p.cols, total)
	var nnz int64
	for _, s := range p.shards {
		if s.sum == nil {
			for j := s.c0; j < s.c1; j++ {
				out.ColPtr[j+1] = nnz
			}
			continue
		}
		for j := 0; j < s.c1-s.c0; j++ {
			out.ColPtr[s.c0+j+1] = nnz + s.sum.ColPtr[j+1]
		}
		out.RowIdx = append(out.RowIdx, s.sum.RowIdx...)
		out.Val = append(out.Val, s.sum.Val...)
		nnz += s.sum.ColPtr[s.c1-s.c0]
	}
	return out, nil
}

// barrier asks every shard to drain and waits until each has reduced
// everything enqueued before the request. Requests are issued to all
// shards first, so they drain concurrently, then awaited.
func (p *Pool) barrier() error {
	reqs := make([]int64, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		if !s.exited {
			s.flushReq++
			reqs[i] = s.flushReq
			s.cond.Signal()
		}
		s.mu.Unlock()
	}
	var first error
	for i, s := range p.shards {
		s.mu.Lock()
		for !s.exited && s.err == nil && s.flushAck < reqs[i] {
			s.done.Wait()
		}
		if s.err != nil && first == nil {
			first = s.err
		}
		s.mu.Unlock()
	}
	return first
}

// Close drains all shards, stops the reducer goroutines and returns
// the first sticky reduction error, if any. Close is idempotent and
// linearizes with Push: a racing Push either completes before the
// close cut or fails whole with ErrPoolClosed. The pool still
// answers Sum and K afterwards.
func (p *Pool) Close() error {
	p.pushMu.Lock()
	if !p.closed.Swap(true) {
		for _, s := range p.shards {
			s.mu.Lock()
			s.closed = true
			s.cond.Signal()
			s.space.Broadcast()
			s.mu.Unlock()
		}
	}
	p.pushMu.Unlock()
	p.wg.Wait()
	var first error
	for _, s := range p.shards {
		s.mu.Lock()
		if s.err != nil && first == nil {
			first = s.err
		}
		s.mu.Unlock()
	}
	return first
}

// K returns the number of matrices absorbed so far.
func (p *Pool) K() int { return int(p.absorbed.Load()) }

// Reductions returns the total number of k-way additions the shards
// have run, a measure of how the budget translated into batching.
func (p *Pool) Reductions() int {
	total := 0
	for _, s := range p.shards {
		s.mu.Lock()
		total += int(s.reductions)
		s.mu.Unlock()
	}
	return total
}

// poolShard owns one contiguous column range [c0, c1) of the pool: a
// producer-facing pending queue and a reducer goroutine with a
// resident workspace and the range's running sum.
//
// Locking: mu guards the queue, the flush/close handshake and the sum
// POINTER. The workspace and the sum's storage belong to the reducer
// goroutine; reductions run outside the lock so producers enqueue
// wait-free relative to reduction work. cond wakes the reducer (work
// over budget, flush requested, closed); done wakes flush waiters.
type poolShard struct {
	c0, c1 int
	budget int64
	opt    Options

	mu           sync.Mutex
	cond         *sync.Cond // wakes the reducer
	done         *sync.Cond // wakes flush-barrier waiters
	space        *sync.Cond // wakes producers blocked on the high-water mark
	pending      []*matrix.CSC
	pendingBytes int64
	flushReq     int64
	flushAck     int64
	closed       bool
	exited       bool
	err          error // first reduction error, sticky
	sum          *matrix.CSC
	reductions   int64

	// Reducer-private; never touched while a reduction is in flight
	// except by the reducer itself.
	ws    *Workspace
	take  []*matrix.CSC // the batch claimed from pending
	batch []*matrix.CSC // [sum, take...] input slice for the k-way add
}

// enqueue appends one column piece to the shard's queue, waking the
// reducer if the batch is now worth reducing. Producers that outrun
// the reducer block at the high-water mark (2x the shard budget)
// until a reduction claims a batch, so the queue — and the pushed
// matrices it pins — stays bounded.
func (s *poolShard) enqueue(piece *matrix.CSC, bytes int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pendingBytes >= 2*s.budget && !s.closed && s.err == nil {
		s.cond.Signal()
		s.space.Wait()
	}
	if s.closed {
		return ErrPoolClosed
	}
	s.pending = append(s.pending, piece)
	s.pendingBytes += bytes
	if s.reduceNeeded() {
		s.cond.Signal()
	}
	return nil
}

// reduceNeeded reports whether the pending queue should be reduced
// now: the same trigger as Accumulator.Push — the next reduction's
// total input (running sum + pending) against the budget, plus the
// pending-count cap so zero-byte pieces cannot grow the queue
// unboundedly. Callers hold mu.
func (s *poolShard) reduceNeeded() bool {
	if len(s.pending) == 0 {
		return false
	}
	return s.sumNNZBytes()+s.pendingBytes > s.budget || len(s.pending) >= maxPendingMatrices
}

func (s *poolShard) sumNNZBytes() int64 {
	if s.sum == nil {
		return 0
	}
	return int64(s.sum.NNZ()) * entryBytes
}

// wakeNeeded reports whether the reducer has anything to do. An erred
// shard with pending pieces still wakes: the reducer discards them so
// producers blocked on the high-water mark and barriers waiting on
// the queue are released. Callers hold mu.
func (s *poolShard) wakeNeeded() bool {
	return s.closed || s.flushReq > s.flushAck || s.reduceNeeded() ||
		(s.err != nil && len(s.pending) > 0)
}

// claimBatch moves a budget-bounded prefix of the pending queue into
// the reducer-private take slice: pieces are claimed until the next
// reduction's input (sum + claimed) would pass the budget — always at
// least one, mirroring Accumulator's budget + one matrix bound — or
// the count cap. Callers hold mu.
func (s *poolShard) claimBatch() {
	n, bytes := 0, int64(0)
	sumBytes := s.sumNNZBytes()
	for n < len(s.pending) && n < maxPendingMatrices {
		b := int64(s.pending[n].NNZ()) * entryBytes
		if n > 0 && sumBytes+bytes+b > s.budget {
			break
		}
		bytes += b
		n++
	}
	s.take = append(s.take[:0], s.pending[:n]...)
	m := copy(s.pending, s.pending[n:])
	clear(s.pending[m:])
	s.pending = s.pending[:m]
	s.pendingBytes -= bytes
	s.space.Broadcast()
}

// run is the shard's reducer goroutine: sleep until woken, reduce one
// budget-sized batch outside the lock, acknowledge flush barriers
// whenever the queue is empty, and exit once closed and drained.
func (s *poolShard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	s.mu.Lock()
	for {
		for !s.wakeNeeded() {
			s.cond.Wait()
		}
		if len(s.pending) > 0 {
			if s.err != nil {
				// Sticky error: discard instead of reducing, so flush
				// barriers, backpressured producers and Close still
				// terminate.
				clear(s.pending)
				s.pending = s.pending[:0]
				s.pendingBytes = 0
				s.space.Broadcast()
				continue
			}
			s.claimBatch()
			s.mu.Unlock()
			sum, err := s.reduce()
			s.mu.Lock()
			if err != nil {
				s.err = err
				s.done.Broadcast()
				continue
			}
			s.sum = sum
			s.reductions++
			continue // the queue may already hold the next batch
		}
		if s.flushAck != s.flushReq {
			// Queue empty: everything enqueued before any outstanding
			// flush request is in the sum.
			s.flushAck = s.flushReq
			s.done.Broadcast()
		}
		if s.closed {
			s.exited = true
			s.done.Broadcast()
			s.mu.Unlock()
			return
		}
	}
}

// reduce folds the claimed batch into the running sum with a single
// k-way addition on the shard's resident workspace. The previous sum
// is the first input; the workspace's ping-pong output buffers make
// that safe (see Workspace.allocOutput). Runs outside the shard lock.
func (s *poolShard) reduce() (*matrix.CSC, error) {
	if s.ws == nil {
		s.ws = NewWorkspace(true)
	}
	s.batch = s.batch[:0]
	premapped := 0
	if s.sum != nil {
		// Like Accumulator.flush: the running sum is already in the
		// monoid's result domain and must not pass MapInput again.
		s.batch = append(s.batch, s.sum)
		premapped = 1
	}
	s.batch = append(s.batch, s.take...)
	sum, err := s.ws.addPremapped(s.batch, s.opt, premapped)
	// Drop the piece references so absorbed matrices can be collected.
	clear(s.batch)
	s.batch = s.batch[:0]
	clear(s.take)
	s.take = s.take[:0]
	return sum, err
}

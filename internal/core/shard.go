package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"spkadd/internal/faults"
	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

// This file implements the concurrent, column-sharded accumulation
// pool: the multi-producer counterpart of the single-goroutine
// Accumulator. The paper names streaming/batched SpKAdd as its future
// work (§V); the Accumulator covers one producer, but a serving
// system has many — and funneling them through one lock would
// serialize exactly the reduction work SpKAdd parallelizes.
//
// The pool shards the COLUMN space instead: the n output columns are
// split into S contiguous ranges (the same near-equal Span arithmetic
// as ColSplit and the schedulers), and each shard owns a resident
// Workspace, a running sum over its columns, and a pending queue.
// Push slices the incoming matrix into per-shard column views —
// zero-copy, via matrix.ColView — and enqueues each piece under that
// shard's lock only, so producers touching a shard never contend with
// a reduction in flight and different shards never contend at all.
// Per-shard reducer goroutines drain their queues asynchronously with
// the same budget trigger as Accumulator.Flush (running sum + pending
// bytes against the shard's budget share, plus the pending-count cap),
// keeping every reduction k-way; each reduction takes at most a
// budget's worth of pending pieces, so the Accumulator's bound — a
// reduction's input never exceeds budget + one matrix — holds here
// too, and a high-water mark (2x the shard budget) blocks producers
// that outrun their reducer instead of pinning unbounded queues. Sum
// barriers the reducers and stitches the per-shard sums — disjoint
// column ranges — into one CSC with a pure copy; no merge is needed,
// which is what makes column sharding the right axis to split on.
//
// Failure model (DESIGN.md §11): faults are contained per shard. A
// reduction that fails with an ordinary error is retried up to
// PoolOptions.MaxRetries times with jittered exponential backoff;
// exhausting the retries drops that batch (counted in
// ShardHealth.Dropped) and marks the shard degraded. Degradation is
// not terminal: the shard keeps reducing later batches, and the next
// success clears it back to OK — the serving layer's "transient
// backend trouble" state. A reduction that panics — in a kernel, on a
// worker, anywhere — is recovered, never retried, and poisons the
// shard permanently: its workspace is quarantined (the scratch is
// mid-kernel garbage) while its last good sum stays valid, because a
// failed reduction never touches the ping-pong buffer holding it.
// Healthy shards keep accepting and reducing work throughout; Sum
// stitches every shard's last good sum and reports the failed shards'
// errors alongside, and Health exposes the per-shard state.

// ErrPoolClosed is returned by Push after Close has been called, and
// by a second Close after the first completed.
var ErrPoolClosed = errors.New("spkadd: Pool used after Close")

// HealthState classifies one pool shard's condition.
type HealthState int

const (
	// HealthOK: the shard is reducing normally.
	HealthOK HealthState = iota
	// HealthDegraded: a reduction failed with an ordinary error and
	// the bounded retries were exhausted; that batch's input was
	// dropped (counted in ShardHealth.Dropped). The error stays
	// reported while the shard is degraded, but the shard keeps
	// accepting and reducing new work — a later successful reduction
	// clears it back to HealthOK. Its last good sum is served by Sum
	// throughout.
	HealthDegraded
	// HealthPoisoned: a reduction panicked. The panic was recovered
	// and converted to a sticky *PanicError, and the shard's workspace
	// was quarantined — its scratch state is indeterminate. Poisoning
	// is terminal: the shard discards further work and never
	// recovers. The last good sum is still served by Sum.
	HealthPoisoned
)

var healthNames = map[HealthState]string{
	HealthOK:       "ok",
	HealthDegraded: "degraded",
	HealthPoisoned: "poisoned",
}

// String returns the state's display name.
func (h HealthState) String() string {
	if s, ok := healthNames[h]; ok {
		return s
	}
	return "Unknown"
}

// ShardHealth reports one shard's condition: its column range, its
// state, the error for the non-OK states, and the queue/loss gauges a
// serving layer needs — how much work is still pending (the drain
// straggler report) and how many pushed pieces the shard has dropped
// across its lifetime (the permanent record of data a past
// degradation lost; a recovered shard's sum is exact for everything
// after the drop).
type ShardHealth struct {
	Shard      int
	Col0, Col1 int
	State      HealthState
	Err        error
	// Pending is the number of pushed pieces not yet folded into the
	// running sum — both queued and claimed by a reduction still in
	// flight; PendingBytes is the queued pieces' footprint. Nonzero
	// after a deadline-bounded drain identifies the straggler shards.
	Pending      int
	PendingBytes int64
	// Dropped counts pushed pieces this shard discarded: the inputs of
	// retry-exhausted batches and everything a poisoned shard receives.
	Dropped int64
}

// ShardError attributes a sticky shard failure to its column range, so
// a caller of Sum or Close can tell which part of the result is stale.
// It wraps the underlying error for errors.Is/As.
type ShardError struct {
	Shard      int
	Col0, Col1 int
	Err        error
}

// Error implements the error interface.
func (e *ShardError) Error() string {
	return fmt.Sprintf("spkadd: pool shard %d (columns [%d, %d)): %v", e.Shard, e.Col0, e.Col1, e.Err)
}

// Unwrap exposes the underlying shard failure.
func (e *ShardError) Unwrap() error { return e.Err }

// PoolOptionsOf configure a sharded accumulation pool.
type PoolOptionsOf[T matrix.Number] struct {
	// Shards is the column-shard count S. <=0 selects the heuristic
	// min(GOMAXPROCS, cols): one reducer per core saturates the
	// machine. Explicit values clamp to [1, cols] — a shard narrower
	// than one column would idle a reducer and dilute the budget.
	Shards int
	// BudgetBytes is the total reduction budget, divided evenly among
	// the shards; each shard reduces when its running sum plus pending
	// pieces would exceed its share (<=0 means 256MB total, like
	// NewAccumulator).
	BudgetBytes int64
	// MaxRetries bounds how many times a shard re-attempts a reduction
	// that failed with an ordinary (non-panic) error before the error
	// goes sticky and the shard turns degraded. 0 means no retries.
	// Panics are never retried: a panicking reduction poisons its
	// shard immediately.
	MaxRetries int
	// RetryBackoff is the base delay of the jittered exponential
	// backoff between retry attempts (attempt i waits ~base·2^(i-1),
	// plus up to half that again of jitter). <=0 means 500µs. The
	// backoff aborts early when the pool is closed.
	RetryBackoff time.Duration
	// FaultZone offsets this pool's fault-injection keys: shard i's
	// reduction sites report key FaultZone+i+1 and the pool's push
	// site reports key FaultZone, so a deterministic chaos schedule
	// can target one pool — one tenant of a serving daemon — when
	// several pools share the process. Zero keeps the 1-based shard
	// keys of a single-pool process. Purely an observability handle:
	// with no active injector the keys are never consulted.
	FaultZone int64
	// Add are the Options for the per-shard reductions. When Threads
	// is unset and the pool has more than one shard, reductions run
	// single-threaded: the shards themselves are the parallelism, and
	// letting every reducer run GOMAXPROCS workers would oversubscribe
	// the machine. Internally parallel reductions each run on their
	// shard workspace's resident executor; set Add.Executor to place
	// every shard's reductions under one caller-wide worker budget
	// instead — noting that regions on a shared executor serialize,
	// trading reduction throughput for a hard concurrency cap.
	Add OptionsOf[T]
}

// PoolOptions is the float64 pool configuration.
type PoolOptions = PoolOptionsOf[matrix.Value]

// Pool is a concurrent, column-sharded streaming accumulator: many
// producer goroutines Push delta matrices while per-shard reducers
// fold them into per-column-range running sums, and Sum stitches the
// shards into the total. Push, Sum, Close, Health and K are safe for
// concurrent use, and Push linearizes with Sum and Close: a pushed
// matrix is observed whole or not at all, never some shards' slices
// without the others'. Push reserves space on every target shard
// before enqueueing to any, so a canceled PushContext also leaves the
// matrix wholly unobserved.
//
// Ownership: like the Accumulator, a pool keeps references into each
// pushed matrix until the shard reductions that absorb it complete;
// producers must not mutate a matrix after pushing it. The matrix
// returned by Sum is freshly allocated and caller-owned.
//
// Close stops the reducers after draining outstanding work; pushes
// that lose the race with Close fail whole with ErrPoolClosed, and a
// second Close after the first completed reports ErrPoolClosed too. A
// closed pool still answers Sum, Health and K.
type PoolOf[T matrix.Number] struct {
	rows, cols int
	shards     []*poolShardOf[T]
	faultZone  int64
	closed     atomic.Bool
	closeDone  atomic.Bool
	absorbed   atomic.Int64
	wg         sync.WaitGroup
	// quitc is closed when Close begins, aborting retry backoffs.
	quitc chan struct{}
	// reducersDone is closed by the close watcher once every reducer
	// has exited, so CloseContext can wait with a deadline.
	reducersDone chan struct{}

	// pushMu makes a multi-shard Push atomic against Sum and Close:
	// producers hold it shared while reserving and enqueueing, Sum and
	// Close hold it exclusively while establishing their cut. Without
	// it a Sum racing a Push could barrier between two of the push's
	// enqueues and stitch a matrix containing only some of its shards
	// — a total no prefix of pushes could produce. Reducers never
	// touch it, so reduction work proceeds under either hold.
	//
	//spkadd:lockorder(1)
	pushMu sync.RWMutex
}

// Pool is the float64 pool, the paper's element type.
type Pool = PoolOf[matrix.Value]

// poolShard is the float64 shard (the in-package chaos tests build
// shards directly).
type poolShard = poolShardOf[matrix.Value]

// NewPool returns a pool for rows x cols matrices. See PoolOptions for
// the shard-count and budget defaults.
func NewPool(rows, cols int, popt PoolOptions) *Pool {
	return NewPoolOf[matrix.Value](rows, cols, popt)
}

// NewPoolOf is NewPool for any supported element type.
func NewPoolOf[T matrix.Number](rows, cols int, popt PoolOptionsOf[T]) *PoolOf[T] {
	s := popt.Shards
	if s <= 0 {
		s = sched.Threads(0)
	}
	// A shard narrower than one column is useless — it would idle a
	// reducer goroutine and dilute every real shard's budget share —
	// so explicit requests clamp to the column count too.
	if s > cols {
		s = cols
	}
	if s < 1 {
		s = 1
	}
	budget := popt.BudgetBytes
	if budget <= 0 {
		budget = 256 << 20
	}
	shardBudget := budget / int64(s)
	if shardBudget < 1 {
		shardBudget = 1
	}
	opt := popt.Add
	if opt.Threads < 1 && s > 1 {
		opt.Threads = 1
	}
	retries := popt.MaxRetries
	if retries < 0 {
		retries = 0
	}
	backoff := popt.RetryBackoff
	if backoff <= 0 {
		backoff = 500 * time.Microsecond
	}
	p := &PoolOf[T]{
		rows: rows, cols: cols,
		shards:       make([]*poolShardOf[T], s),
		faultZone:    popt.FaultZone,
		quitc:        make(chan struct{}),
		reducersDone: make(chan struct{}),
	}
	for i := range p.shards {
		c0, c1 := sched.Span(cols, s, i)
		sh := &poolShardOf[T]{
			c0: c0, c1: c1, budget: shardBudget, opt: opt,
			maxRetries: retries, baseBackoff: backoff, quitc: p.quitc,
			zone: popt.FaultZone + int64(i) + 1,
		}
		// Reductions report faults under the shard's 1-based zone, so
		// a chaos schedule can target one shard's kernels.
		sh.opt.faultKey = sh.zone
		sh.cond = sync.NewCond(&sh.mu)
		sh.done = sync.NewCond(&sh.mu)
		sh.space = sync.NewCond(&sh.mu)
		p.shards[i] = sh
		p.wg.Add(1)
		go sh.run(&p.wg)
	}
	return p
}

// Shards returns the pool's shard count.
func (p *PoolOf[T]) Shards() int { return len(p.shards) }

// Push enqueues one matrix for accumulation and returns without
// waiting for any reduction: the matrix is sliced into per-shard
// column views (zero-copy) and each non-empty piece is appended to
// its shard's queue. Producers block only while a Sum or Close is
// establishing its cut, or when a shard's queue has hit its
// high-water mark (2x the shard's budget share) — backpressure for
// producers outrunning the reducers. Reduction errors are deferred to
// Sum and Close; Push itself only fails on dimension mismatch or a
// closed pool.
func (p *PoolOf[T]) Push(a *matrix.CSCOf[T]) error {
	return p.PushContext(context.Background(), a)
}

// PushContext is Push with a cancellable high-water wait: a producer
// blocked on a full shard unblocks when ctx ends, returning an error
// wrapping ErrCanceled or ErrDeadline. The push stays atomic either
// way — space is reserved on every target shard before any piece is
// enqueued, and a cancellation mid-reserve rolls the reservations
// back — so a canceled push leaves no slice of the matrix behind and
// later Sums are unaffected.
func (p *PoolOf[T]) PushContext(ctx context.Context, a *matrix.CSCOf[T]) error {
	p.pushMu.RLock()
	defer p.pushMu.RUnlock()
	if p.closed.Load() {
		return ErrPoolClosed
	}
	if a.Rows != p.rows || a.Cols != p.cols {
		return fmt.Errorf("%w: pushed %dx%d, pool is %dx%d",
			ErrDimMismatch, a.Rows, a.Cols, p.rows, p.cols)
	}
	if err := faults.ErrOn(faults.FailedPush, p.faultZone); err != nil {
		if st := p.shards[0].opt.Stats; st != nil {
			st.FaultsInjected.Add(1)
		}
		return fmt.Errorf("spkadd: push failed: %w", err)
	}
	// Reserve-then-commit keeps a multi-shard push all-or-nothing even
	// under cancellation: first claim high-water space on every target
	// shard (the only step that can block or fail), then append the
	// pieces — which cannot fail — so no Sum ever observes a partial
	// push.
	for i, s := range p.shards {
		bytes := pieceBytes(a, s)
		if bytes == 0 {
			continue
		}
		if err := s.reserve(ctx, bytes); err != nil {
			for _, prev := range p.shards[:i] {
				if b := pieceBytes(a, prev); b != 0 {
					prev.unreserve(b)
				}
			}
			return err
		}
	}
	for _, s := range p.shards {
		bytes := pieceBytes(a, s)
		if bytes == 0 {
			continue
		}
		s.commit(a.ColView(s.c0, s.c1), bytes)
	}
	p.absorbed.Add(1)
	return nil
}

// pieceBytes is the in-memory footprint of a's slice of shard s's
// columns; 0 means the shard receives nothing (adding an empty piece
// is the identity, so it skips the queue entirely).
func pieceBytes[T matrix.Number](a *matrix.CSCOf[T], s *poolShardOf[T]) int64 {
	return (a.ColPtr[s.c1] - a.ColPtr[s.c0]) * entryBytesOf[T]()
}

// Sum waits for every healthy shard to reduce all pieces enqueued
// before the call, then stitches the per-shard running sums into one
// freshly allocated rows x cols matrix. The pool remains usable
// afterwards — Sum between pushes observes the running total, like
// Accumulator.Sum. A Push racing Sum is either included whole or
// excluded whole (Push linearizes with Sum; producers block for the
// duration of the barrier and stitch).
//
// Failed shards degrade the result instead of suppressing it: the
// returned matrix always stitches every shard's last successfully
// reduced sum — correct and current for healthy shards, stale (or
// empty) for degraded and poisoned ones — and the error joins one
// ShardError per failed shard so the caller can tell which column
// ranges are affected. A nil error means every shard is currently
// healthy; inputs a past degradation dropped are permanently gone
// from the total, and Health's Dropped counter is their record (the
// error was reported by the Sums issued while the shard was
// degraded).
func (p *PoolOf[T]) Sum() (*matrix.CSCOf[T], error) {
	return p.SumContext(context.Background())
}

// SumContext is Sum with a cancellable drain barrier: when ctx ends
// before every healthy shard has drained, it returns an error wrapping
// ErrCanceled or ErrDeadline and no matrix. Cancellation is clean —
// the reducers keep draining in the background and a later Sum
// observes the same totals.
func (p *PoolOf[T]) SumContext(ctx context.Context) (*matrix.CSCOf[T], error) {
	// The exclusive hold cuts the push stream: no Push is mid-flight
	// while we barrier and stitch, so the result is the exact sum of a
	// prefix of each producer's pushes. Reducers drain independently
	// of pushMu, so the barrier cannot starve.
	p.pushMu.Lock()
	defer p.pushMu.Unlock()
	if err := p.barrier(ctx); err != nil {
		return nil, err
	}
	// Stitch under all shard locks (in index order), freezing every
	// shard's sum pointer. A reduction still in flight only reads the
	// current sum and writes its workspace's other ping-pong buffer;
	// it cannot install a result — or start a successor that would
	// overwrite storage we are copying — without the lock.
	for _, s := range p.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range p.shards {
			s.mu.Unlock()
		}
	}()
	total := 0
	for _, s := range p.shards {
		if s.sum != nil {
			total += s.sum.NNZ()
		}
	}
	out := matrix.NewCSCOf[T](p.rows, p.cols, total)
	var nnz int64
	for _, s := range p.shards {
		if s.sum == nil {
			for j := s.c0; j < s.c1; j++ {
				out.ColPtr[j+1] = nnz
			}
			continue
		}
		for j := 0; j < s.c1-s.c0; j++ {
			out.ColPtr[s.c0+j+1] = nnz + s.sum.ColPtr[j+1]
		}
		out.RowIdx = append(out.RowIdx, s.sum.RowIdx...)
		out.Val = append(out.Val, s.sum.Val...)
		nnz += s.sum.ColPtr[s.c1-s.c0]
	}
	return out, p.stickyErrLocked()
}

// barrier asks every shard to drain and waits until each has reduced
// everything enqueued before the request (poisoned shards stop
// blocking the barrier the moment their error goes sticky; degraded
// shards still drain — failing batches are dropped after their
// bounded retries, so the wait terminates). Requests are issued to
// all shards first, so they drain concurrently, then awaited; ctx
// cancels the wait.
func (p *PoolOf[T]) barrier(ctx context.Context) error {
	reqs := make([]int64, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		if !s.exited {
			s.flushReq++
			reqs[i] = s.flushReq
			s.cond.Signal()
		}
		s.mu.Unlock()
	}
	if ctx.Done() != nil {
		// Wake the barrier waits when ctx ends. The broadcast needs
		// each shard's lock, which a waiter holds except inside Wait —
		// so a waiter always observes either the broadcast or the
		// pre-Wait ctx check; no wakeup is lost.
		stop := context.AfterFunc(ctx, func() {
			for _, s := range p.shards {
				s.mu.Lock()
				s.done.Broadcast()
				s.mu.Unlock()
			}
		})
		defer stop()
	}
	for i, s := range p.shards {
		s.mu.Lock()
		for !s.exited && !s.poisoned && s.flushAck < reqs[i] {
			if ctx.Err() != nil {
				s.mu.Unlock()
				return ctxErr(ctx)
			}
			s.done.Wait()
		}
		s.mu.Unlock()
	}
	return nil
}

// Close drains all shards, stops the reducer goroutines and returns
// the shards' sticky reduction errors (joined ShardErrors), if any.
// Close linearizes with Push: a racing Push either completes before
// the close cut or fails whole with ErrPoolClosed. A second Close
// after the first completed returns ErrPoolClosed — calling Close
// twice is a lifecycle bug worth surfacing, not corrupting on. The
// pool still answers Sum, Health and K afterwards.
func (p *PoolOf[T]) Close() error {
	return p.CloseContext(context.Background())
}

// CloseContext is Close with a cancellable drain wait: when ctx ends
// before the reducers finish, it returns an error wrapping
// ErrCanceled or ErrDeadline while the shutdown continues in the
// background — a later CloseContext waits for the same shutdown and
// reports the shards' sticky errors.
func (p *PoolOf[T]) CloseContext(ctx context.Context) error {
	p.pushMu.Lock()
	if !p.closed.Swap(true) {
		close(p.quitc)
		for _, s := range p.shards {
			s.mu.Lock()
			s.closed = true
			s.cond.Signal()
			s.space.Broadcast()
			s.mu.Unlock()
		}
		// The watcher decouples "reducers exited" from any single
		// waiter, so a deadline-bounded CloseContext can abandon the
		// wait while the shutdown completes behind it.
		go func() {
			p.wg.Wait()
			close(p.reducersDone)
		}()
	} else if p.closeDone.Load() {
		p.pushMu.Unlock()
		return ErrPoolClosed
	}
	p.pushMu.Unlock()
	if ctx.Done() != nil {
		select {
		case <-p.reducersDone:
		case <-ctx.Done():
			return ctxErr(ctx)
		}
	} else {
		<-p.reducersDone
	}
	p.closeDone.Store(true)
	return p.stickyErr()
}

// stickyErr joins the failed shards' sticky errors, one ShardError
// per failed shard; nil when every shard is healthy.
//
//spkadd:allow(ctxblock) short per-shard critical sections; nothing waits on external progress
func (p *PoolOf[T]) stickyErr() error {
	for _, s := range p.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range p.shards {
			s.mu.Unlock()
		}
	}()
	return p.stickyErrLocked()
}

// stickyErrLocked is stickyErr with all shard locks already held.
func (p *PoolOf[T]) stickyErrLocked() error {
	var errs []error
	for i, s := range p.shards {
		if s.err != nil {
			errs = append(errs, &ShardError{Shard: i, Col0: s.c0, Col1: s.c1, Err: s.err})
		}
	}
	return errors.Join(errs...)
}

// Health reports every shard's condition: OK, degraded (an ordinary
// reduction error exhausted its retries; the shard keeps reducing and
// recovers on its next success) or poisoned (recovered panic,
// workspace quarantined, terminal). Failed shards keep serving their
// last good sum through Sum; Health is how a caller finds out that is
// what it is getting — including the queue-depth and dropped-piece
// gauges a serving layer turns into drain-straggler reports and loss
// metrics. Safe for concurrent use.
//
//spkadd:allow(ctxblock) short per-shard critical sections; nothing waits on external progress
func (p *PoolOf[T]) Health() []ShardHealth {
	out := make([]ShardHealth, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		h := ShardHealth{
			Shard: i, Col0: s.c0, Col1: s.c1, State: HealthOK,
			Pending: len(s.pending) + s.inflight, PendingBytes: s.pendingBytes,
			Dropped: s.dropped,
		}
		if s.err != nil {
			h.Err = s.err
			if s.poisoned {
				h.State = HealthPoisoned
			} else {
				h.State = HealthDegraded
			}
		}
		out[i] = h
		s.mu.Unlock()
	}
	return out
}

// K returns the number of matrices absorbed so far.
func (p *PoolOf[T]) K() int { return int(p.absorbed.Load()) }

// Reductions returns the total number of k-way additions the shards
// have run, a measure of how the budget translated into batching.
//
//spkadd:allow(ctxblock) short per-shard critical sections; nothing waits on external progress
func (p *PoolOf[T]) Reductions() int {
	total := 0
	for _, s := range p.shards {
		s.mu.Lock()
		total += int(s.reductions)
		s.mu.Unlock()
	}
	return total
}

// poolShard owns one contiguous column range [c0, c1) of the pool: a
// producer-facing pending queue and a reducer goroutine with a
// resident workspace and the range's running sum.
//
// Locking: mu guards the queue, the reservation counter, the
// flush/close handshake, the health fields and the sum POINTER. The
// workspace and the sum's storage belong to the reducer goroutine;
// reductions run outside the lock so producers enqueue wait-free
// relative to reduction work. cond wakes the reducer (work over
// budget, flush requested, closed); done wakes flush waiters; space
// wakes producers blocked on the high-water mark.
type poolShardOf[T matrix.Number] struct {
	c0, c1      int
	budget      int64
	opt         OptionsOf[T]
	maxRetries  int
	baseBackoff time.Duration
	quitc       <-chan struct{}
	zone        int64 // 1-based fault-injection key

	//spkadd:lockorder(2)
	mu           sync.Mutex
	cond         *sync.Cond // wakes the reducer
	done         *sync.Cond // wakes flush-barrier waiters
	space        *sync.Cond // wakes producers blocked on the high-water mark
	pending      []*matrix.CSCOf[T]
	pendingBytes int64
	reserved     int64 // bytes reserved by in-flight pushes, not yet committed
	flushReq     int64
	flushAck     int64
	closed       bool
	exited       bool
	err          error // current failure; see poisoned for its class
	poisoned     bool  // err came from a recovered panic; ws quarantined
	dropped      int64 // pushed pieces discarded across the shard's lifetime
	inflight     int   // pieces claimed by the reduction currently running
	sum          *matrix.CSCOf[T]
	reductions   int64

	// Reducer-private; never touched while a reduction is in flight
	// except by the reducer itself.
	ws    *WorkspaceOf[T]
	take  []*matrix.CSCOf[T] // the batch claimed from pending
	batch []*matrix.CSCOf[T] // [sum, take...] input slice for the k-way add
}

// reserve claims bytes of high-water capacity for one push, blocking
// while the queue plus outstanding reservations are at the mark (2x
// the shard budget) — unless the shard is poisoned, whose queue only
// ever gets discarded, or the pool is closing. Degraded shards still
// reduce, so they still exert backpressure. ctx cancels the wait.
func (s *poolShardOf[T]) reserve(ctx context.Context, bytes int64) error {
	var stop func() bool
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pendingBytes+s.reserved >= 2*s.budget && !s.closed && !s.poisoned {
		if ctx.Err() != nil {
			if stop != nil {
				stop()
			}
			return ctxErr(ctx)
		}
		if stop == nil && ctx.Done() != nil {
			// Arm the cancellation wakeup lazily: pushes that never
			// block (the steady state) pay nothing for it. The
			// broadcast needs mu, held here except inside Wait, so the
			// pre-Wait ctx check and the broadcast cannot both be
			// missed.
			stop = context.AfterFunc(ctx, func() {
				s.mu.Lock()
				s.space.Broadcast()
				s.mu.Unlock()
			})
		}
		s.cond.Signal()
		s.space.Wait()
	}
	if stop != nil {
		stop()
	}
	if s.closed {
		return ErrPoolClosed
	}
	s.reserved += bytes
	return nil
}

// unreserve rolls one push's reservation back (the push failed on a
// later shard), waking producers the freed capacity may admit.
func (s *poolShardOf[T]) unreserve(bytes int64) {
	s.mu.Lock()
	s.reserved -= bytes
	s.space.Broadcast()
	s.mu.Unlock()
}

// commit converts one push's reservation into a queued piece, waking
// the reducer if the batch is now worth reducing. Cannot fail: the
// reservation already holds the capacity.
func (s *poolShardOf[T]) commit(piece *matrix.CSCOf[T], bytes int64) {
	s.mu.Lock()
	s.reserved -= bytes
	s.pending = append(s.pending, piece)
	s.pendingBytes += bytes
	if s.reduceNeeded() {
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// reduceNeeded reports whether the pending queue should be reduced
// now: the same trigger as Accumulator.Push — the next reduction's
// total input (running sum + pending) against the budget, plus the
// pending-count cap so zero-byte pieces cannot grow the queue
// unboundedly. Callers hold mu.
func (s *poolShardOf[T]) reduceNeeded() bool {
	if len(s.pending) == 0 {
		return false
	}
	return s.sumNNZBytes()+s.pendingBytes > s.budget || len(s.pending) >= maxPendingMatrices
}

func (s *poolShardOf[T]) sumNNZBytes() int64 {
	if s.sum == nil {
		return 0
	}
	return int64(s.sum.NNZ()) * entryBytesOf[T]()
}

// wakeNeeded reports whether the reducer has anything to do. A
// poisoned shard with pending pieces still wakes: the reducer
// discards them so producers blocked on the high-water mark and
// barriers waiting on the queue are released. Callers hold mu.
func (s *poolShardOf[T]) wakeNeeded() bool {
	return s.closed || s.flushReq > s.flushAck || s.reduceNeeded() ||
		(s.poisoned && len(s.pending) > 0)
}

// claimBatch moves a budget-bounded prefix of the pending queue into
// the reducer-private take slice: pieces are claimed until the next
// reduction's input (sum + claimed) would pass the budget — always at
// least one, mirroring Accumulator's budget + one matrix bound — or
// the count cap. Callers hold mu.
func (s *poolShardOf[T]) claimBatch() {
	n, bytes := 0, int64(0)
	sumBytes := s.sumNNZBytes()
	for n < len(s.pending) && n < maxPendingMatrices {
		b := int64(s.pending[n].NNZ()) * entryBytes
		if n > 0 && sumBytes+bytes+b > s.budget {
			break
		}
		bytes += b
		n++
	}
	s.take = append(s.take[:0], s.pending[:n]...)
	m := copy(s.pending, s.pending[n:])
	clear(s.pending[m:])
	s.pending = s.pending[:m]
	s.pendingBytes -= bytes
	s.space.Broadcast()
}

// run is the shard's reducer goroutine: sleep until woken, reduce one
// budget-sized batch outside the lock (with bounded retries), mark
// the shard degraded or poisoned when the batch ultimately fails,
// acknowledge flush barriers whenever the queue is empty, and exit
// once closed and drained. A degraded shard keeps reducing — the
// failed batch is dropped and counted, and the next success clears
// the degradation; only poisoning (a quarantined workspace) makes the
// shard discard everything it receives.
//
//spkadd:allow(ctxblock) reducer goroutine: lives for the pool's lifetime, woken by cond, exits on close; Push/Flush carry the context
func (s *poolShardOf[T]) run(wg *sync.WaitGroup) {
	defer wg.Done()
	s.mu.Lock()
	for {
		for !s.wakeNeeded() {
			s.cond.Wait()
		}
		if len(s.pending) > 0 {
			if s.poisoned {
				// Terminal failure: discard instead of reducing, so flush
				// barriers, backpressured producers and Close still
				// terminate.
				s.dropped += int64(len(s.pending))
				clear(s.pending)
				s.pending = s.pending[:0]
				s.pendingBytes = 0
				s.space.Broadcast()
				continue
			}
			s.claimBatch()
			claimed := len(s.take)
			s.inflight = claimed
			s.mu.Unlock()
			sum, err := s.reduceWithRetry()
			s.mu.Lock()
			s.inflight = 0
			if err != nil {
				s.fail(err, claimed)
				continue
			}
			if s.err != nil {
				// A degraded shard just proved itself functional again:
				// the degradation clears, the Dropped counter keeps the
				// record of what the failed batches lost.
				s.err = nil
				if st := s.opt.Stats; st != nil {
					st.ShardsRecovered.Add(1)
				}
			}
			s.sum = sum
			s.reductions++
			continue // the queue may already hold the next batch
		}
		if s.flushAck != s.flushReq {
			// Queue empty: everything enqueued before any outstanding
			// flush request is in the sum.
			s.flushAck = s.flushReq
			s.done.Broadcast()
		}
		if s.closed {
			s.exited = true
			s.done.Broadcast()
			s.mu.Unlock()
			return
		}
	}
}

// fail records the claimed batch's ultimate failure: a recovered
// panic poisons the shard (workspace quarantined — its scratch is
// mid-kernel garbage — and never retried, never recovered); anything
// else marks it degraded, dropping the batch's claimed pieces while
// the shard keeps reducing later work. Either way the error is
// reported, the last good sum stays served, and everyone waiting on
// this shard is released. Callers hold mu.
func (s *poolShardOf[T]) fail(err error, claimed int) {
	wasOK := s.err == nil
	s.err = err
	s.dropped += int64(claimed)
	st := s.opt.Stats
	if isPanicErr(err) {
		s.poisoned = true
		s.ws = nil
		if st != nil {
			st.PanicsRecovered.Add(1)
			st.ShardsPoisoned.Add(1)
		}
	} else if st != nil && wasOK {
		// A state transition, not a repeat failure of an
		// already-degraded shard.
		st.ShardsDegraded.Add(1)
	}
	s.done.Broadcast()
	s.space.Broadcast()
}

// reduceWithRetry runs one claimed batch, retrying ordinary failures
// up to maxRetries times with jittered exponential backoff. Panics
// are never retried — the workspace they interrupted is not safely
// reusable — and a pool shutdown aborts the backoff (the batch then
// fails with its last error). The claimed batch is released only
// here, after the final attempt, so every retry reduces the same
// input.
func (s *poolShardOf[T]) reduceWithRetry() (*matrix.CSCOf[T], error) {
	sum, err := s.reduce()
	for attempt := 1; err != nil && !isPanicErr(err) && attempt <= s.maxRetries; attempt++ {
		if st := s.opt.Stats; st != nil {
			st.Retries.Add(1)
		}
		if !s.backoff(attempt) {
			break
		}
		sum, err = s.reduce()
	}
	clear(s.take)
	s.take = s.take[:0]
	return sum, err
}

// backoff sleeps before retry attempt n (1-based): the base delay
// doubled per attempt, plus up to half that again of jitter so
// colliding shards decorrelate. Returns false when the pool began
// closing instead — no point backing off into a shutdown.
//
//spkadd:allow(ctxblock) bounded by the retry timer and aborted by pool close via quitc
func (s *poolShardOf[T]) backoff(n int) bool {
	d := s.baseBackoff << (n - 1)
	d += time.Duration(rand.Int64N(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.quitc:
		return false
	}
}

// reduce folds the claimed batch into the running sum with a single
// k-way addition on the shard's resident workspace. The previous sum
// is the first input; the workspace's ping-pong output buffers make
// that safe (see Workspace.allocOutput), including across failed
// attempts — an attempt that errors does not consume a buffer flip,
// so retries never write the buffer holding the sum they read. A
// panic anywhere in the reduction (kernel, validation, a worker of an
// internally parallel region) comes back as a *PanicError. Runs
// outside the shard lock.
func (s *poolShardOf[T]) reduce() (b *matrix.CSCOf[T], err error) {
	if faults.SleepOn(faults.SlowReduction, s.zone) {
		if st := s.opt.Stats; st != nil {
			st.FaultsInjected.Add(1)
		}
	}
	if ferr := faults.ErrOn(faults.FailReduction, s.zone); ferr != nil {
		if st := s.opt.Stats; st != nil {
			st.FaultsInjected.Add(1)
		}
		return nil, ferr
	}
	if s.ws == nil {
		s.ws = NewWorkspaceOf[T](true)
	}
	s.batch = s.batch[:0]
	premapped := 0
	if s.sum != nil {
		// Like Accumulator.flush: the running sum is already in the
		// monoid's result domain and must not pass MapInput again.
		s.batch = append(s.batch, s.sum)
		premapped = 1
	}
	s.batch = append(s.batch, s.take...)
	defer func() {
		// Belt and suspenders for panics outside the recovered
		// parallel regions (validation, output allocation): convert
		// instead of killing the process. Drop the batch references
		// either way so absorbed matrices can be collected.
		if r := recover(); r != nil {
			b, err = nil, recoverToError(r)
		}
		clear(s.batch)
		s.batch = s.batch[:0]
	}()
	return s.ws.addPremapped(nil, s.batch, s.opt, premapped)
}

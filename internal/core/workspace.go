package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spkadd/internal/matrix"
	"spkadd/internal/ops"
	"spkadd/internal/sched"
	"spkadd/internal/tuner"
)

// Workspace owns every scratch structure a k-way SpKAdd call needs —
// per-worker hash tables, SPAs and heaps, the fused engine's arenas,
// the upper-bound engine's staging buffer, the per-column nnz and
// weight arrays, and (optionally) a recyclable output CSC — so that
// repeated calls allocate nothing in steady state. All buffers are
// grow-only: a call with a larger shape enlarges them, a call with a
// smaller shape reuses a prefix.
//
// The paper's O(knd)-work algorithms (§III-A) assume the thread-
// private scratch structures are resident; without a workspace every
// Add rebuilt them, and for repeated additions over small and medium
// matrices (streaming graph updates, SUMMA's per-stage reductions)
// allocation and GC pressure dominated the actual merge work.
//
// A Workspace is not safe for concurrent use: it backs the public
// Adder (which detects concurrent misuse) and the package-level Add,
// where a sync.Pool hands each concurrent call its own workspace.
//
// The phase bodies handed to the scheduler are allocated once per
// workspace (method values bound at construction) and read their
// per-call parameters from workspace fields; a fresh closure per call
// would put one funcval on the heap per phase and break the
// zero-allocation steady state.
type WorkspaceOf[T matrix.Number] struct {
	// recycleOut selects AddInto-style destination reuse: the output
	// CSC is built in one of two workspace-owned buffer sets that
	// alternate between calls (see allocOutput). Enabled for the
	// public Adder and the Accumulator; disabled for pooled one-shot
	// calls, whose caller owns the result indefinitely.
	recycleOut bool

	// Scratch reused across calls.
	workers []*workerStateOf[T]
	arenas  []arenaOf[T]
	weights []int64          // per-column Σ_i nnz(A_i(:,j))
	counts  []int64          // per-column output nnz
	cols    []fusedColOf[T]  // fused engine's per-column arena extents
	ubPtr   []int64          // upper-bound engine's staging column pointers
	stRows  []matrix.Index
	stVals  []T

	outs [2]cscBufOf[T]
	cur  int

	// kit binds the instantiation's Plus fast paths once per
	// workspace (nil for bool; see kitFor).
	kit *numKit[T]

	// tun is the workspace-resident self-tuning planner (SetTuner):
	// the default Options.Tuner for calls that carry none of their
	// own. Like the executor it survives across calls, but unlike the
	// rest of the workspace a *tuner.Tuner is safe to share — the
	// Adder, a Pool's shards and a server's tenants can all feed one
	// table.
	tun *tuner.Tuner

	// ownEx is the workspace-resident executor: a pool of parked
	// worker goroutines plus the partitioning scratch every parallel
	// phase needs, created on the first multi-threaded call and then
	// recycled like all other scratch — so a workspace-backed Adder,
	// Accumulator or Pool shard pays goroutine creation and
	// partitioning allocation once, not per phase per call. Elastic:
	// it grows to whatever Threads each call requests.
	ownEx *sched.Executor

	// Per-call state read by the persistent phase bodies.
	as       []*matrix.CSCOf[T]
	coeffs   []T
	alg      Algorithm
	opt      OptionsOf[T]
	t        int
	cache    int64
	sortedIn bool
	ctx      context.Context // nil for context-free calls
	sch      Schedule        // resolved schedule (plan.schedule)
	ex       *sched.Executor // Options.Executor, or ownEx
	b        *matrix.CSCOf[T]
	// mon is the call's resolved combine monoid, held by value so
	// non-Plus calls allocate nothing; monP is the kernel-facing
	// handle — nil on the Plus fast path, &mon on the generic path.
	mon  monoidStateOf[T]
	monP *monoidStateOf[T]

	symFn, numFn, fusedFn, stitchFn, ubFn, compactFn, weightsFn func(w, lo, hi int)
}

// Workspace is the float64 workspace, the paper's element type.
type Workspace = WorkspaceOf[matrix.Value]

// cscBufOf is one recyclable output destination: the CSC header and
// its grow-only backing arrays.
type cscBufOf[T matrix.Number] struct {
	m      matrix.CSCOf[T]
	colPtr []int64
	rowIdx []matrix.Index
	val    []T
}

// NewWorkspace returns an empty workspace. With recycleOutput the
// output matrix is built in workspace-owned storage that is reused on
// later calls (the returned matrix stays valid only until the next
// call); without it every call allocates a fresh, caller-owned output
// while still reusing all scratch.
func NewWorkspace(recycleOutput bool) *Workspace {
	return NewWorkspaceOf[matrix.Value](recycleOutput)
}

// NewWorkspaceOf is NewWorkspace for any supported element type.
func NewWorkspaceOf[T matrix.Number](recycleOutput bool) *WorkspaceOf[T] {
	ws := &WorkspaceOf[T]{recycleOut: recycleOutput, kit: kitFor[T]()}
	ws.symFn = ws.symBody
	ws.numFn = ws.numBody
	ws.fusedFn = ws.fusedBody
	ws.stitchFn = ws.stitchBody
	ws.ubFn = ws.ubBody
	ws.compactFn = ws.compactBody
	ws.weightsFn = ws.weightsBody
	return ws
}

// SetTuner installs (or, with nil, clears) the workspace-resident
// self-tuning planner: calls whose Options carry no Tuner of their
// own consult it during plan resolution and feed their measured cost
// back afterwards. The pooled workspaces behind the package-level Add
// never set one — one-shot callers opt in per call via Options.Tuner.
func (ws *WorkspaceOf[T]) SetTuner(t *tuner.Tuner) { ws.tun = t }

// Tuner returns the workspace-resident planner, nil when none is set.
func (ws *WorkspaceOf[T]) Tuner() *tuner.Tuner { return ws.tun }

// The wsPools back the package-level Add/AddTimed/AddScaled: one-shot
// callers get scratch amortization across calls for free, while the
// output stays caller-owned (no recycling). One pool per supported
// element type — a pool must hand back a workspace of the caller's
// instantiation, and a sync.Pool cannot be generic.
var (
	wsPoolF64 = sync.Pool{New: func() any { return NewWorkspaceOf[float64](false) }}
	wsPoolF32 = sync.Pool{New: func() any { return NewWorkspaceOf[float32](false) }}
	wsPoolI32 = sync.Pool{New: func() any { return NewWorkspaceOf[int32](false) }}
	wsPoolI64 = sync.Pool{New: func() any { return NewWorkspaceOf[int64](false) }}
	wsPoolB   = sync.Pool{New: func() any { return NewWorkspaceOf[bool](false) }}
)

// wsPoolFor returns T's package workspace pool. The type switch runs
// once per package-level call, far off the hot path.
func wsPoolFor[T matrix.Number]() *sync.Pool {
	var z T
	switch any(z).(type) {
	case float64:
		return &wsPoolF64
	case float32:
		return &wsPoolF32
	case int32:
		return &wsPoolI32
	case int64:
		return &wsPoolI64
	default:
		return &wsPoolB
	}
}

// AddTimed is the workspace-bound form of the package-level AddTimed:
// identical semantics and output, but all scratch state (and, for a
// recycling workspace, the output storage) comes from ws.
func (ws *WorkspaceOf[T]) AddTimed(as []*matrix.CSCOf[T], opt OptionsOf[T]) (*matrix.CSCOf[T], PhaseTimings, error) {
	return ws.addTimedPremapped(nil, as, opt, 0)
}

// AddContext is Add with cooperative cancellation: the engines check
// ctx at phase boundaries (before the symbolic pass, between passes,
// after the numeric pass) and abandon the call with an error wrapping
// ErrCanceled or ErrDeadline. Cancellation is clean — no partial
// result is installed and the workspace's scratch stays reusable.
func (ws *WorkspaceOf[T]) AddContext(ctx context.Context, as []*matrix.CSCOf[T], opt OptionsOf[T]) (*matrix.CSCOf[T], error) {
	b, _, err := ws.addTimedPremapped(ctx, as, opt, 0)
	return b, err
}

// addTimedPremapped is AddTimed with a premapped running-sum prefix
// (see monoidState.mapped): the streaming accumulators fold their
// previous sum — already in the monoid's result domain — back in as
// the first input, and it must not pass through MapInput again.
func (ws *WorkspaceOf[T]) addTimedPremapped(ctx context.Context, as []*matrix.CSCOf[T], opt OptionsOf[T], premapped int) (*matrix.CSCOf[T], PhaseTimings, error) {
	var pt PhaseTimings
	if opt.Tuner == nil {
		opt.Tuner = ws.tun // workspace-resident planner, nil when unset
	}
	p, err := opt.validate(as, nil, premapped)
	if err != nil {
		return nil, pt, err
	}
	if p.copyOne {
		return ws.copyOne(as[0], opt), pt, nil
	}
	// The recycling output buffers ping-pong per successful call; a
	// failed call must not consume a flip, or retrying it would write
	// into the buffer still holding the caller's running sum while
	// reading it.
	cur := ws.cur
	// Tuner-planned calls are measured wall-to-wall around the
	// dispatch; the cost lands in the table only after success, outside
	// the measured region (Record is CAS-only, no allocation).
	var start time.Time
	if p.arm >= 0 {
		start = time.Now()
	}
	b, pt, err := ws.addDispatch(ctx, as, p, opt, nil)
	if err != nil {
		ws.cur = cur
		return nil, pt, err
	}
	if p.arm >= 0 {
		opt.Tuner.Record(p.sigKey, p.arm, time.Since(start), p.total)
	}
	return b, pt, nil
}

// addPremapped is addTimedPremapped without the phase split, the
// reduction entry point of Accumulator and Pool.
func (ws *WorkspaceOf[T]) addPremapped(ctx context.Context, as []*matrix.CSCOf[T], opt OptionsOf[T], premapped int) (*matrix.CSCOf[T], error) {
	b, _, err := ws.addTimedPremapped(ctx, as, opt, premapped)
	return b, err
}

// Add is AddTimed without the phase split.
func (ws *WorkspaceOf[T]) Add(as []*matrix.CSCOf[T], opt OptionsOf[T]) (*matrix.CSCOf[T], error) {
	b, _, err := ws.AddTimed(as, opt)
	return b, err
}

// AddScaled is the workspace-bound form of the package-level
// AddScaled.
func (ws *WorkspaceOf[T]) AddScaled(as []*matrix.CSCOf[T], coeffs []T, opt OptionsOf[T]) (*matrix.CSCOf[T], error) {
	if len(coeffs) != len(as) {
		return nil, fmt.Errorf("%w: %d coefficients for %d matrices", ErrDimMismatch, len(coeffs), len(as))
	}
	if opt.Tuner == nil {
		opt.Tuner = ws.tun
	}
	p, err := opt.validate(as, coeffs, 0)
	if err != nil {
		return nil, err
	}
	cur := ws.cur
	var start time.Time
	if p.arm >= 0 {
		start = time.Now()
	}
	b, _, err := ws.addDispatch(nil, as, p, opt, coeffs)
	if err != nil {
		ws.cur = cur
		return nil, err
	}
	if p.arm >= 0 {
		opt.Tuner.Record(p.sigKey, p.arm, time.Since(start), p.total)
	}
	return b, nil
}

// addDispatch routes a validated call: 2-way baselines keep their
// native drivers (their intermediate matrices cannot be recycled), the
// k-way algorithms run on the workspace engines.
func (ws *WorkspaceOf[T]) addDispatch(ctx context.Context, as []*matrix.CSCOf[T], p planOf[T], opt OptionsOf[T], coeffs []T) (*matrix.CSCOf[T], PhaseTimings, error) {
	var pt PhaseTimings
	if opt.Stats != nil {
		opt.Stats.RecordMonoid(ops.Describe(p.monoid()))
	}
	switch p.alg {
	case TwoWayIncremental, TwoWayTree, MapIncremental, MapTree:
		// The 2-way baselines ignore Options.Phases entirely; their
		// native pairwise drivers read inputs like the two-pass engine
		// and that is what the stats report. They still run their
		// parallel passes on the resolved executor — the workspace's
		// resident pool, or the caller's shared one.
		if opt.Stats != nil {
			opt.Stats.RecordEngine(PhasesTwoPass)
		}
		ex := ws.executorFor(opt, sched.Threads(opt.Threads))
		start := time.Now()
		var b *matrix.CSCOf[T]
		var err error
		// The pair adders come through the kit: they are Plus-only
		// (validate rejects generic monoids here), so their inner
		// merges are the Arith-constrained "+=" loops. A bool call
		// never reaches this arm for the same reason.
		switch p.alg {
		case TwoWayIncremental:
			b, err = addIncremental(as, opt, ex, ws.kit.pairMerge)
		case TwoWayTree:
			b, err = addTree(as, opt, ex, ws.kit.pairMerge)
		case MapIncremental:
			b, err = addIncremental(as, opt, ex, ws.kit.pairMap)
		case MapTree:
			b, err = addTree(as, opt, ex, ws.kit.pairMap)
		}
		pt.Numeric = time.Since(start)
		if err != nil {
			return nil, pt, err
		}
		return b, pt, nil
	default:
		ws.begin(as, p, opt, coeffs)
		ws.ctx = ctx
		var b *matrix.CSCOf[T]
		var err error
		if opt.Stats != nil {
			opt.Stats.RecordEngine(p.engine)
		}
		switch p.engine {
		case PhasesFused:
			b, pt, err = ws.addFused()
		case PhasesUpperBound:
			b, pt, err = ws.addUpperBound()
		default:
			b, pt, err = ws.addKWay()
		}
		ws.end()
		if err != nil {
			return nil, pt, err
		}
		return b, pt, nil
	}
}

// ctxCheck is the engines' phase-boundary cancellation probe: nil for
// context-free calls and live contexts, the typed cancellation error
// otherwise. Checking only between phases keeps the kernels themselves
// untouched — a canceled call finishes the pass in flight (bounded
// work) and aborts before the next one.
func (ws *WorkspaceOf[T]) ctxCheck() error {
	if ws.ctx == nil || ws.ctx.Err() == nil {
		return nil
	}
	return ctxErr(ws.ctx)
}

// begin records the per-call parameters the persistent phase bodies
// read, and sizes the per-worker state slice.
func (ws *WorkspaceOf[T]) begin(as []*matrix.CSCOf[T], p planOf[T], opt OptionsOf[T], coeffs []T) {
	ws.as, ws.coeffs, ws.alg, ws.opt, ws.sortedIn = as, coeffs, p.alg, opt, p.sortedIn
	ws.sch = p.schedule
	ws.mon = p.mon
	ws.monP = nil
	if p.generic {
		ws.monP = &ws.mon
	}
	ws.t = sched.Threads(opt.Threads)
	ws.cache = opt.cacheBytes()
	ws.ex = ws.executorFor(opt, ws.t)
	if ws.t > len(ws.workers) {
		workers := make([]*workerStateOf[T], ws.t)
		copy(workers, ws.workers)
		ws.workers = workers
	}
}

// executorFor resolves the executor a call's parallel phases run on:
// the caller's shared pool when Options.Executor is set, the
// workspace-resident one (created on first need) otherwise. A
// single-threaded call never touches an executor — runColsOn runs its
// regions inline — so a workspace that only ever serves Threads==1
// calls parks no goroutines at all.
func (ws *WorkspaceOf[T]) executorFor(opt OptionsOf[T], t int) *sched.Executor {
	if opt.Executor != nil {
		return opt.Executor
	}
	if t > 1 && ws.ownEx == nil {
		ws.ownEx = sched.NewElasticExecutor()
	}
	return ws.ownEx
}

// end drops the references to caller data so a pooled or idle
// workspace does not pin input matrices (scratch stays resident —
// that is the point). The per-call Options are dropped whole: they
// hold the caller's shared Executor (whose runtime cleanup must be
// able to fire once the caller drops its handle) and Stats; only
// ownEx stays resident, workers parked, for the next call.
func (ws *WorkspaceOf[T]) end() {
	ws.as, ws.coeffs, ws.b, ws.ex, ws.ctx = nil, nil, nil, nil, nil
	ws.opt = OptionsOf[T]{}
	ws.mon, ws.monP = monoidStateOf[T]{}, nil
}

// runCols dispatches columns [0, n) to the call's executor under the
// resolved schedule, recording the region's load statistics into
// Options.Stats. weights may be nil for the Static and Dynamic
// schedules; a weighted schedule without weights falls back to Static.
func (ws *WorkspaceOf[T]) runCols(n int, weights []int64, body func(worker, lo, hi int)) error {
	return runColsOn(ws.ex, n, ws.t, ws.sch, weights, ws.opt.Stats, body)
}

// racySched reports whether the call's schedule assigns columns to
// workers nondeterministically (chunk claiming, stealing): the same
// call may hand any column to any worker on different runs.
func (ws *WorkspaceOf[T]) racySched() bool {
	return ws.t > 1 && (ws.sch == ScheduleDynamic || ws.sch == ScheduleWeightedStealing)
}

// reserveWorkers pre-creates every worker's thread-private scratch
// and reserves its hash-table storage for the phase's largest
// per-column bound, under the racy schedules only. The deterministic
// schedules map columns to workers reproducibly, so a reused
// workspace's warmup calls have already sized every structure each
// worker needs; Dynamic and WeightedStealing can hand any column to
// any worker, and without the reservation a steady-state call could
// still allocate when the largest column lands on a worker that had
// not seen it — breaking the Adder's zero-allocation contract for
// exactly the schedules that exist to fix skew. Reservation only
// grows backing storage; the per-column probe-window sizing (the
// cache behaviour the hash algorithms are built around) is untouched.
func (ws *WorkspaceOf[T]) reserveWorkers(bound []int64, sym bool) {
	if !ws.racySched() {
		return
	}
	maxW := maxWeight(bound)
	for w := 0; w < ws.reserveCount(len(bound)); w++ {
		s := ws.worker(w)
		switch ws.alg {
		case Hash, SlidingHash:
			if maxW == 0 {
				continue
			}
			if sym {
				s.symTableSized(int(maxW))
			} else {
				s.hashTableSized(int(maxW))
			}
		case SPA:
			s.spa(ws.as[0].Rows)
		case Heap:
			s.kheap(len(ws.as))
		}
	}
}

// reserveCount is how many distinct worker ids a racy phase over n
// columns can actually run: the call's thread count, capped by the
// executor's worker budget and the column count — reserving scratch
// for workers the executor will never wake (a budget-capped shared
// pool under a larger Threads request) would multiply memory for
// nothing.
func (ws *WorkspaceOf[T]) reserveCount(n int) int {
	t := ws.t
	if b := ws.ex.Budget(); b > 0 && b < t {
		t = b
	}
	if n < t {
		t = n
	}
	return t
}

func maxWeight(bound []int64) int64 {
	var m int64
	for _, v := range bound {
		if v > m {
			m = v
		}
	}
	return m
}

// worker returns worker w's private state, creating it on first use
// (worker ids handed out by sched are distinct among concurrently
// running goroutines, so this is race-free) and adapting a reused one
// to this call's k and load factor.
func (ws *WorkspaceOf[T]) worker(w int) *workerStateOf[T] {
	s := ws.workers[w]
	if s == nil {
		s = newWorkerStateOf[T](len(ws.as), ws.opt.loadFactor())
		ws.workers[w] = s
		return s
	}
	s.prepare(len(ws.as), ws.opt.loadFactor())
	return s
}

// colScratch sizes and zeroes the per-column weight and count arrays.
func (ws *WorkspaceOf[T]) colScratch(n int) {
	ws.weights = grow(ws.weights, n)
	ws.counts = grow(ws.counts, n)
	clear(ws.weights)
	clear(ws.counts)
}

// fillInputWeights computes Σ_i nnz(A_i(:,j)) for every column into
// ws.weights (zeroed by colScratch) — the symbolic load-balancing
// weights and the staging upper bounds of the single-pass engines.
// Wide matrices are summed in parallel on the call's executor (always
// statically: the weights this precompute exists to produce are not
// known yet, and the per-column work is one pointer subtraction per
// input, uniform by construction).
func (ws *WorkspaceOf[T]) fillInputWeights() error {
	n := ws.as[0].Cols
	if n >= inputWeightsParallelMin && ws.t > 1 {
		ls, err := ws.ex.Static(n, ws.t, ws.weightsFn)
		if err != nil {
			return err
		}
		if ws.opt.Stats != nil {
			ws.opt.Stats.RecordRegion(ls)
		}
	} else {
		ws.weightsBody(0, 0, n)
	}
	return nil
}

func (ws *WorkspaceOf[T]) weightsBody(_, lo, hi int) {
	for _, a := range ws.as {
		ptr := a.ColPtr
		for j := lo; j < hi; j++ {
			ws.weights[j] += ptr[j+1] - ptr[j]
		}
	}
}

// allocOutput returns the output CSC for the given per-column counts.
// Without recycling it is freshly allocated and caller-owned. With
// recycling the workspace alternates between two resident buffer sets
// (ping-pong), so the matrix returned by the previous call may safely
// appear among the next call's inputs — the streaming pattern
// sum = ws.Add([sum, delta]) never reads a buffer while writing it.
func (ws *WorkspaceOf[T]) allocOutput(rows, cols int, counts []int64) *matrix.CSCOf[T] {
	if !ws.recycleOut {
		return allocCSC[T](rows, cols, counts)
	}
	ws.cur ^= 1
	o := &ws.outs[ws.cur]
	o.colPtr = grow(o.colPtr, cols+1)
	o.colPtr[0] = 0
	for j := 0; j < cols; j++ {
		o.colPtr[j+1] = o.colPtr[j] + counts[j]
	}
	nnz := int(o.colPtr[cols])
	if cap(o.rowIdx) < nnz || cap(o.val) < nnz {
		o.rowIdx = make([]matrix.Index, nnz)
		o.val = make([]T, nnz)
	}
	o.rowIdx, o.val = o.rowIdx[:nnz], o.val[:nnz]
	o.m = matrix.CSCOf[T]{Rows: rows, Cols: cols, ColPtr: o.colPtr[:cols+1], RowIdx: o.rowIdx, Val: o.val}
	return &o.m
}

// copyOne handles the k=1 case: the sum of one matrix is a copy. A
// recycling workspace copies into its resident destination to keep the
// ownership contract (result valid until the next call) uniform.
func (ws *WorkspaceOf[T]) copyOne(a *matrix.CSCOf[T], opt OptionsOf[T]) *matrix.CSCOf[T] {
	if !ws.recycleOut {
		out := a.Clone()
		if opt.SortedOutput && !out.IsColumnSorted() {
			out.SortColumns()
		}
		return out
	}
	ws.counts = grow(ws.counts, a.Cols)
	for j := 0; j < a.Cols; j++ {
		ws.counts[j] = int64(a.ColNNZ(j))
	}
	b := ws.allocOutput(a.Rows, a.Cols, ws.counts[:a.Cols])
	copy(b.RowIdx, a.RowIdx)
	copy(b.Val, a.Val)
	if opt.SortedOutput && !b.IsColumnSorted() {
		b.SortColumns()
	}
	return b
}

// grow returns s with length n, reusing its storage when large
// enough. Contents are unspecified; callers zero what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

package core

import (
	"errors"
	"fmt"

	"spkadd/internal/matrix"
	"spkadd/internal/ops"
)

// This file is the single option-validation and call-resolution point
// for every entry into the engines: package Add/AddTimed/AddScaled,
// Workspace (hence the public Adder), Accumulator reductions and Pool
// shard reductions all funnel through Options.validate, so the
// coefficient, monoid, sortedness and engine checks — and the
// LoadFactor/CacheBytes clamps applied via the Options accessors —
// cannot drift between entry points.

// ErrCoeffsRequirePlus is returned when AddScaled coefficients are
// combined with a non-Plus monoid: coeffs·A distributes over "+" but
// not over min, max, boolean union or counting, so a scaled Min (etc.)
// has no well-defined meaning.
var ErrCoeffsRequirePlus = errors.New("spkadd: coefficients require the Plus monoid")

// ErrMonoidUnsupported is returned when a monoid cannot run on the
// requested configuration: a non-Plus monoid on a 2-way baseline
// (their pairwise drivers hardwire "+"), a DropIdentity monoid on the
// two-pass driver (the symbolic phase sizes the output before values
// exist), a monoid without a Combine function, or a nil Monoid on an
// element type with no default Plus (bool).
var ErrMonoidUnsupported = errors.New("spkadd: monoid unsupported for this configuration")

// monoidStateOf is the per-call resolution of Options.Monoid for the
// generic combine path. It is held by value inside the plan and
// Workspace — never heap-allocated per call — so a warmed non-Plus
// Adder keeps the zero-allocation steady state. A nil *monoidStateOf
// at a kernel boundary means the Plus fast path: the kernels branch on
// it once per column, and the specialized inlined "+=" loops run
// exactly as before this layer existed.
type monoidStateOf[T matrix.Number] struct {
	def     *ops.MonoidOf[T]
	combine func(a, b T) T
	mapIn   func(v T) T
	// mapped counts leading inputs that are already in the monoid's
	// result domain — the running sum an Accumulator or Pool shard
	// folds back into each reduction — and therefore skip MapInput
	// (re-mapping a Count sum would collapse every count back to 1).
	mapped int
	drop   bool // DropIdentity: filter identity-valued output entries
}

// mapFor returns the input map for matrix i, or nil when the
// matrix's values pass through unchanged — the premapped running-sum
// prefix, and every matrix of a monoid without MapInput. Kernels
// resolve it once per matrix and branch on nil outside their element
// loops, so no-map monoids (Min, Max, user Combine-only) pay no
// per-element indirect call for a mapping they don't have.
func (m *monoidStateOf[T]) mapFor(i int) func(T) T {
	if i < m.mapped {
		return nil
	}
	return m.mapIn
}

// planOf is a fully validated and resolved addition call: the concrete
// algorithm, the execution engine it will run on, input sortedness,
// and the combine monoid. Producing the whole plan in one place keeps
// every entry point's behaviour identical.
type planOf[T matrix.Number] struct {
	alg      Algorithm
	engine   Phases
	sortedIn bool
	// schedule is the resolved column-scheduling strategy:
	// Options.Schedule, with out-of-range values normalized to the
	// ScheduleWeighted default here so every entry point (and the
	// runCols dispatch) agrees on what an unknown value means.
	schedule Schedule
	// copyOne marks the single-input shortcut: the sum of one matrix
	// under Plus is a plain copy, taken before algorithm-specific
	// checks exactly as the pre-plan code did. Non-Plus monoids skip
	// it — MapInput and within-column duplicate combining must still
	// apply — and run the engines with k=1.
	copyOne bool
	// generic selects the generic combine path; when false the
	// kernels run their specialized inlined T-Plus loops and mon is
	// meaningless.
	generic bool
	mon     monoidStateOf[T]
	// Tuner bookkeeping (consultTuner). arm is the tuner arm this call
	// runs, -1 when no tuner decision applies (no tuner configured,
	// untunable call, single-input copy); sigKey is the quantized
	// workload signature and total the input entry count that
	// normalizes the recorded cost. The dispatcher measures the call
	// and feeds (sigKey, arm, elapsed, total) back to the tuner iff
	// arm >= 0.
	sigKey uint32
	arm    int8
	total  int64
}

// monoid returns the resolved monoid definition (T's Plus on the fast
// path), for stats recording.
func (p *planOf[T]) monoid() *ops.MonoidOf[T] {
	if !p.generic {
		return ops.PlusFor[T]()
	}
	return p.mon.def
}

// validate checks one addition call — inputs, coefficients, options —
// and resolves it to a plan. coeffs is nil for unscaled additions.
// premapped counts leading inputs already in the monoid's result
// domain (see monoidStateOf.mapped); plain calls pass 0.
func (o OptionsOf[T]) validate(as []*matrix.CSCOf[T], coeffs []T, premapped int) (planOf[T], error) {
	var p planOf[T]
	p.arm = -1 // arm 0 is a valid tuner arm; -1 means "none chosen"
	if coeffs != nil && len(coeffs) != len(as) {
		return p, fmt.Errorf("%w: %d coefficients for %d matrices", ErrDimMismatch, len(coeffs), len(as))
	}
	if err := validateDims(as); err != nil {
		return p, err
	}
	p.schedule = o.Schedule
	if p.schedule < ScheduleWeighted || p.schedule > ScheduleWeightedStealing {
		p.schedule = ScheduleWeighted
	}

	plus := ops.PlusFor[T]()
	m := o.Monoid
	if m == nil {
		// T's canonical Plus — nil for bool, which has no "+": boolean
		// matrices must name their combine (Any is the usual union).
		if plus == nil {
			return p, fmt.Errorf("%w: element type has no default Plus monoid; set Options.Monoid (e.g. ops.AnyFor)", ErrMonoidUnsupported)
		}
		m = plus
	}
	if m != plus {
		if !m.Valid() {
			return p, fmt.Errorf("%w: monoid %q has no Combine", ErrMonoidUnsupported, m.String())
		}
		if coeffs != nil {
			return p, fmt.Errorf("%w: got %s", ErrCoeffsRequirePlus, m.Name)
		}
		p.generic = true
		p.mon = monoidStateOf[T]{
			def:     m,
			combine: m.Combine,
			mapIn:   m.MapInput, // nil when values pass through unmapped
			mapped:  premapped,
			drop:    m.DropIdentity,
		}
	}

	// Single-input shortcut, before algorithm checks (matching the
	// historical behaviour: Add([a], Options{Algorithm: Heap}) copies
	// a even when a is unsorted).
	if len(as) == 1 && coeffs == nil && !p.generic {
		p.copyOne = true
		return p, nil
	}

	p.sortedIn = allColumnsSorted(as)
	est := estimateWorkload(as)
	alg := o.Algorithm
	if alg == Auto {
		alg = autoSelect(est, o)
	}
	p.alg = alg
	switch alg {
	case TwoWayIncremental, TwoWayTree, Heap:
		if !p.sortedIn {
			return p, unsortedErr(alg)
		}
	}
	if kWay := alg == Heap || alg == SPA || alg == Hash || alg == SlidingHash; !kWay {
		if coeffs != nil {
			return p, fmt.Errorf("spkadd: AddScaled supports k-way algorithms only, got %v", alg)
		}
		if p.generic {
			return p, fmt.Errorf("%w: %v supports Plus only (its pairwise driver hardwires \"+\"), got %s",
				ErrMonoidUnsupported, alg, p.mon.def.Name)
		}
	}

	// Engine resolution. The 2-way baselines and SlidingHash keep
	// their native two-pass drivers; DropIdentity additionally needs
	// a single-pass engine, because only those see values before the
	// output is sized.
	p.engine = pickPhases(est, alg, o)
	if p.generic && p.mon.drop {
		if !fusedSupported(alg) {
			return p, fmt.Errorf("%w: DropIdentity monoid %s needs a single-pass engine, but %v has none",
				ErrMonoidUnsupported, p.mon.def.Name, alg)
		}
		if o.Phases == PhasesTwoPass {
			return p, fmt.Errorf("%w: DropIdentity monoid %s cannot run on the two-pass driver (the symbolic phase sizes the output before values exist)",
				ErrMonoidUnsupported, p.mon.def.Name)
		}
		if p.engine == PhasesTwoPass { // PhasesAuto preferred two-pass
			p.engine = PhasesFused
		}
	}
	// The self-tuning planner gets the last word, after every
	// constraint check: it only ever moves the plan between
	// configurations the caller's options admit (see armMask).
	if o.Tuner != nil {
		o.consultTuner(&p, est, as)
	}
	return p, nil
}

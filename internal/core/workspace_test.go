package core

import (
	"math/rand"
	"testing"

	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// wsTestCollection builds a small collection with the given shape.
func wsTestCollection(tb testing.TB, pattern string, k, rows, cols, d int, seed uint64) []*matrix.CSC {
	tb.Helper()
	o := generate.Opts{Rows: rows, Cols: cols, NNZPerCol: d, Seed: seed}
	if pattern == "RMAT" {
		return generate.RMATCollection(k, o, generate.Graph500)
	}
	return generate.ERCollection(k, o)
}

// requireIdentical asserts bit-identical CSC contents.
func requireIdentical(t *testing.T, got, want *matrix.CSC, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: dims %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if got.NNZ() != want.NNZ() {
		t.Fatalf("%s: nnz %d, want %d", label, got.NNZ(), want.NNZ())
	}
	for j := 0; j <= got.Cols; j++ {
		if got.ColPtr[j] != want.ColPtr[j] {
			t.Fatalf("%s: ColPtr[%d] = %d, want %d", label, j, got.ColPtr[j], want.ColPtr[j])
		}
	}
	for p := range got.RowIdx {
		if got.RowIdx[p] != want.RowIdx[p] || got.Val[p] != want.Val[p] {
			t.Fatalf("%s: entry %d = (%d,%v), want (%d,%v)",
				label, p, got.RowIdx[p], got.Val[p], want.RowIdx[p], want.Val[p])
		}
	}
}

// TestWorkspaceReuseParity drives ONE recycling workspace through a
// sequence of calls with changing shapes, algorithms, engines, thread
// counts and sortedness, comparing every result bit-for-bit against a
// fresh one-shot Add. Growing and then shrinking shapes is the point:
// stale counts, weights, extents or output prefixes from a larger
// earlier call must never leak into a smaller later one.
func TestWorkspaceReuseParity(t *testing.T) {
	ws := NewWorkspace(true)
	type shape struct {
		pattern       string
		k, rows, cols int
		d             int
	}
	shapes := []shape{
		{"ER", 8, 2048, 64, 16},                                                   // medium
		{"ER", 2, 128, 4, 2},                                                      // shrink everything
		{"RMAT", 16, 4096, 32, 8} /* grow again, skewed */, {"ER", 4, 64, 128, 1}, // wide and hypersparse
		{"ER", 3, 512, 16, 0}, // empty columns throughout
	}
	seed := uint64(100)
	for _, sorted := range []bool{true, false} {
		for _, alg := range []Algorithm{Hash, SPA, Heap, SlidingHash} {
			for _, p := range []Phases{PhasesTwoPass, PhasesFused, PhasesUpperBound, PhasesAuto} {
				if alg == SlidingHash && p != PhasesTwoPass {
					continue // SlidingHash has only the two-pass driver
				}
				for _, th := range []int{1, 3} {
					for _, s := range shapes {
						seed++
						as := wsTestCollection(t, s.pattern, s.k, s.rows, s.cols, s.d, seed)
						opt := Options{Algorithm: alg, Phases: p, SortedOutput: sorted, Threads: th}
						got, err := ws.Add(as, opt)
						if err != nil {
							t.Fatalf("%v/%v/sorted=%v/t=%d %+v: %v", alg, p, sorted, th, s, err)
						}
						want, err := Add(as, opt)
						if err != nil {
							t.Fatal(err)
						}
						if !sorted {
							got, want = got.Clone().SortColumns(), want.Clone().SortColumns()
						}
						requireIdentical(t, got, want, alg.String()+"/"+p.String())
					}
				}
			}
		}
	}
}

// TestWorkspaceStreamingSelfInput checks the documented streaming
// pattern: the previous call's recycled result is an input to the next
// call. The ping-pong output buffers must keep the running sum correct
// over many iterations.
func TestWorkspaceStreamingSelfInput(t *testing.T) {
	for _, p := range []Phases{PhasesTwoPass, PhasesFused, PhasesUpperBound} {
		ws := NewWorkspace(true)
		rng := rand.New(rand.NewSource(7))
		var sum *matrix.CSC
		var ref *matrix.CSC
		for step := 0; step < 12; step++ {
			delta := generate.ER(generate.Opts{Rows: 600, Cols: 24, NNZPerCol: 1 + rng.Intn(12), Seed: uint64(step + 1)})
			opt := Options{Algorithm: Hash, Phases: p, SortedOutput: true}
			var err error
			if sum == nil {
				sum, err = ws.Add([]*matrix.CSC{delta}, opt)
				ref = delta.Clone().SortColumns()
			} else {
				sum, err = ws.Add([]*matrix.CSC{sum, delta}, opt)
				if err != nil {
					t.Fatalf("%v step %d: %v", p, step, err)
				}
				ref2, err2 := Add([]*matrix.CSC{ref, delta}, opt)
				if err2 != nil {
					t.Fatal(err2)
				}
				ref = ref2
				requireIdentical(t, sum, ref, p.String())
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestWorkspaceScaledAndStats checks AddScaled parity on a reused
// workspace and that work counters still flow when a workspace is
// reused.
func TestWorkspaceScaledAndStats(t *testing.T) {
	ws := NewWorkspace(true)
	as := wsTestCollection(t, "ER", 6, 1024, 32, 8, 55)
	coeffs := make([]matrix.Value, len(as))
	for i := range coeffs {
		coeffs[i] = matrix.Value(i+1) * 0.5
	}
	for _, p := range []Phases{PhasesTwoPass, PhasesFused, PhasesUpperBound} {
		for rep := 0; rep < 3; rep++ {
			var st OpStats
			opt := Options{Algorithm: Hash, Phases: p, SortedOutput: true, Stats: &st}
			got, err := ws.AddScaled(as, coeffs, opt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := AddScaled(as, coeffs, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, got, want, "scaled/"+p.String())
			if st.HashProbes.Load() == 0 || st.EntriesMoved.Load() == 0 {
				t.Fatalf("%v rep %d: stats not accumulated (probes=%d moved=%d)",
					p, rep, st.HashProbes.Load(), st.EntriesMoved.Load())
			}
			if p != PhasesTwoPass && st.SymProbes.Load() != 0 {
				t.Fatalf("%v: single-pass engine reported %d symbolic probes", p, st.SymProbes.Load())
			}
		}
	}
}

// TestAccumulatorRecycledSum checks the Accumulator against a
// reference sum now that its running total lives in recycled
// workspace buffers across many small-budget reductions.
func TestAccumulatorRecycledSum(t *testing.T) {
	rows, cols := 400, 20
	ac := NewAccumulator(rows, cols, 1<<12, Options{Algorithm: Hash, SortedOutput: true})
	var all []*matrix.CSC
	for i := 0; i < 17; i++ {
		a := generate.ER(generate.Opts{Rows: rows, Cols: cols, NNZPerCol: 6, Seed: uint64(i + 1)})
		all = append(all, a)
		if err := ac.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Add(all, Options{Algorithm: Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, got, want, "accumulator")
	if ac.Reductions() < 2 {
		t.Fatalf("budget produced %d reductions; the test needs several to exercise recycling", ac.Reductions())
	}
	// The sum must also be safe to re-request and extend.
	more := generate.ER(generate.Opts{Rows: rows, Cols: cols, NNZPerCol: 3, Seed: 99})
	if err := ac.Push(more); err != nil {
		t.Fatal(err)
	}
	got2, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	want2, err := Add([]*matrix.CSC{want, more}, Options{Algorithm: Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, got2, want2, "accumulator extended")
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

func TestSlidingCacheFormulaPath(t *testing.T) {
	// Exercise the parts = ceil(nnz*b*T/M) path (no explicit table
	// cap) with a cache small enough to force many partitions.
	as := erInputs(16, 4000, 12, 60, 41)
	want := matrix.ReferenceAdd(as)
	for _, cacheBytes := range []int64{1, 256, 4096, 1 << 30} {
		got, err := Add(as, Options{
			Algorithm:    SlidingHash,
			SortedOutput: true,
			CacheBytes:   cacheBytes,
			Threads:      2,
		})
		if err != nil {
			t.Fatalf("cache=%d: %v", cacheBytes, err)
		}
		if !got.Equal(want) {
			t.Errorf("cache=%d: wrong result", cacheBytes)
		}
	}
}

func TestSlidingPartsArithmetic(t *testing.T) {
	cases := []struct {
		nnz        int
		b          int64
		t          int
		cache      int64
		maxEntries int
		wantParts  int
	}{
		{0, 4, 8, 1 << 20, 0, 1},
		{100, 4, 1, 1 << 20, 0, 1},      // fits
		{1 << 20, 4, 8, 1 << 20, 0, 32}, // 4MB*8/1MB = 32
		{1000, 12, 1, 1 << 30, 100, 10}, // explicit cap wins
		{1001, 12, 1, 1 << 30, 100, 11}, // ceil
		{1, 4, 1, 1, 0, 4},              // degenerate tiny cache
	}
	for _, c := range cases {
		got := slidingParts(c.nnz, c.b, c.t, c.cache, c.maxEntries)
		if got != c.wantParts {
			t.Errorf("slidingParts(%d,%d,%d,%d,%d) = %d, want %d",
				c.nnz, c.b, c.t, c.cache, c.maxEntries, got, c.wantParts)
		}
	}
}

func TestSingleRowAndSingleColumn(t *testing.T) {
	// m=1: every entry lands on row 0; n=1: one column holds all work.
	oneRow := []*matrix.CSC{
		matrix.FromTriples(1, 5, []matrix.Triple{{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 4, Val: 2}}),
		matrix.FromTriples(1, 5, []matrix.Triple{{Row: 0, Col: 0, Val: 3}, {Row: 0, Col: 2, Val: 4}}),
	}
	oneCol := []*matrix.CSC{
		matrix.FromTriples(100, 1, []matrix.Triple{{Row: 7, Col: 0, Val: 1}, {Row: 42, Col: 0, Val: 2}}),
		matrix.FromTriples(100, 1, []matrix.Triple{{Row: 7, Col: 0, Val: 5}}),
	}
	for _, as := range [][]*matrix.CSC{oneRow, oneCol} {
		want := matrix.ReferenceAdd(as)
		for _, alg := range Algorithms {
			got, err := Add(as, Options{Algorithm: alg, SortedOutput: true, Threads: 3})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if !got.Equal(want) {
				t.Errorf("%v: wrong result on degenerate shape %dx%d", alg, as[0].Rows, as[0].Cols)
			}
		}
	}
}

func TestSymbolicVariantsAgree(t *testing.T) {
	// All four symbolic kernels must report identical nnz(B(:,j)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(8) + 2
		rows, cols := rng.Intn(200)+1, rng.Intn(10)+1
		as := make([]*matrix.CSC, k)
		for i := range as {
			coo := matrix.NewCOO(rows, cols)
			for e := 0; e < rng.Intn(60); e++ {
				coo.Append(matrix.Index(rng.Intn(rows)), matrix.Index(rng.Intn(cols)), 1)
			}
			as[i] = coo.ToCSC()
		}
		w := newWorkerState(k, 0.5)
		for j := 0; j < cols; j++ {
			inz := colInputNNZ(as, j)
			h := hashSymbolicCol(w, as, j, inz)
			s := spaSymbolicCol(w, as, j)
			hp := heapSymbolicCol(w, as, j)
			sl := slidingSymbolicCol(w, as, j, inz, 4, 256, 0, true)
			if h != s || h != hp || h != sl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLoadFactorExtremes(t *testing.T) {
	as := erInputs(8, 500, 16, 20, 42)
	want := matrix.ReferenceAdd(as)
	for _, lf := range []float64{0.1, 0.5, 0.99, 1.0} {
		got, err := Add(as, Options{Algorithm: Hash, LoadFactor: lf, SortedOutput: true})
		if err != nil {
			t.Fatalf("lf=%v: %v", lf, err)
		}
		if !got.Equal(want) {
			t.Errorf("lf=%v: wrong result", lf)
		}
	}
	// Out-of-range load factors fall back to the default.
	for _, lf := range []float64{-1, 0, 1.5} {
		got, err := Add(as, Options{Algorithm: Hash, LoadFactor: lf})
		if err != nil || got.NNZ() != want.NNZ() {
			t.Errorf("lf=%v: err=%v", lf, err)
		}
	}
}

func TestManyMatrices(t *testing.T) {
	// k = 300: beyond any grid the paper tests; exercises heap depth
	// and per-matrix cursor reuse.
	k := 300
	as := make([]*matrix.CSC, k)
	for i := range as {
		as[i] = generate.ER(generate.Opts{Rows: 500, Cols: 4, NNZPerCol: 3, Seed: uint64(i + 1)})
	}
	want := matrix.ReferenceAdd(as)
	for _, alg := range []Algorithm{Heap, SPA, Hash, SlidingHash, TwoWayTree} {
		got, err := Add(as, Options{Algorithm: alg, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !got.Equal(want) {
			t.Errorf("%v: wrong result at k=%d", alg, k)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	as := generate.RMATCollection(8, generate.Opts{Rows: 400, Cols: 16, NNZPerCol: 12, Seed: 44}, generate.Graph500)
	for _, alg := range []Algorithm{Hash, SlidingHash, SPA} {
		a1, err := Add(as, Options{Algorithm: alg, SortedOutput: true, Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Add(as, Options{Algorithm: alg, SortedOutput: true, Threads: 2, Schedule: ScheduleDynamic})
		if err != nil {
			t.Fatal(err)
		}
		// Sorted output must be bit-identical regardless of threading.
		if !a1.Equal(a2) {
			t.Errorf("%v: output depends on thread count", alg)
		}
		for p := range a1.RowIdx {
			if a1.RowIdx[p] != a2.RowIdx[p] || a1.Val[p] != a2.Val[p] {
				t.Fatalf("%v: layout differs at %d", alg, p)
			}
		}
	}
}

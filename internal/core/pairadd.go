package core

import (
	"sort"

	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

// pairAddMerge adds two CSC matrices with sorted columns using the
// linear ColAdd merge of Algorithm 1, parallel over columns on the
// caller's executor. The result has sorted columns. This is the
// specialised 2-way addition the paper's "2-way Incremental" and
// "2-way Tree" rows use.
func pairAddMerge[T matrix.Arith](a, b *matrix.CSCOf[T], opt OptionsOf[T], ex *sched.Executor) (*matrix.CSCOf[T], error) {
	t := sched.Threads(opt.Threads)
	n := a.Cols
	out := &matrix.CSCOf[T]{Rows: a.Rows, Cols: n, ColPtr: make([]int64, n+1)}

	// Symbolic pass: count merged entries per column.
	counts := make([]int64, n)
	err := runColsOn(ex, n, t, opt.Schedule, pairWeights(a, b), opt.Stats, func(_ int, lo, hi int) {
		for j := lo; j < hi; j++ {
			counts[j] = int64(mergeCount(a.ColRows(j), b.ColRows(j)))
		}
	})
	if err != nil {
		return nil, err
	}
	for j := 0; j < n; j++ {
		out.ColPtr[j+1] = out.ColPtr[j] + counts[j]
	}
	nnz := out.ColPtr[n]
	out.RowIdx = make([]matrix.Index, nnz)
	out.Val = make([]T, nnz)

	// Numeric pass: merge into the preallocated slices.
	err = runColsOn(ex, n, t, opt.Schedule, counts, opt.Stats, func(_ int, lo, hi int) {
		for j := lo; j < hi; j++ {
			olo, ohi := out.ColPtr[j], out.ColPtr[j+1]
			mergeInto(
				a.ColRows(j), a.ColVals(j),
				b.ColRows(j), b.ColVals(j),
				out.RowIdx[olo:ohi], out.Val[olo:ohi],
			)
		}
	})
	if err != nil {
		return nil, err
	}
	if opt.Stats != nil {
		opt.Stats.EntriesMoved.Add(nnz)
	}
	return out, nil
}

// pairAddMap adds two matrices through a generic map accumulator per
// column. It is deliberately an "off-the-shelf" implementation with
// the constant factors of a library routine that cannot exploit the
// problem structure — the repository's stand-in for the paper's
// MKL-based 2-way baselines (mkl_sparse_d_add).
func pairAddMap[T matrix.Arith](a, b *matrix.CSCOf[T], opt OptionsOf[T], ex *sched.Executor) (*matrix.CSCOf[T], error) {
	t := sched.Threads(opt.Threads)
	n := a.Cols
	// Accumulate each column in a map, then emit sorted entries.
	type col struct {
		rows []matrix.Index
		vals []T
	}
	cols := make([]col, n)
	err := runColsOn(ex, n, t, opt.Schedule, pairWeights(a, b), opt.Stats, func(_ int, lo, hi int) {
		for j := lo; j < hi; j++ {
			acc := make(map[matrix.Index]T)
			for _, src := range []*matrix.CSCOf[T]{a, b} {
				rows, vals := src.ColRows(j), src.ColVals(j)
				for p := range rows {
					acc[rows[p]] += vals[p]
				}
			}
			c := col{
				rows: make([]matrix.Index, 0, len(acc)),
				vals: make([]T, 0, len(acc)),
			}
			for r := range acc {
				c.rows = append(c.rows, r)
			}
			sort.Slice(c.rows, func(x, y int) bool { return c.rows[x] < c.rows[y] })
			for _, r := range c.rows {
				c.vals = append(c.vals, acc[r])
			}
			cols[j] = c
		}
	})
	if err != nil {
		return nil, err
	}
	out := &matrix.CSCOf[T]{Rows: a.Rows, Cols: n, ColPtr: make([]int64, n+1)}
	for j := 0; j < n; j++ {
		out.ColPtr[j+1] = out.ColPtr[j] + int64(len(cols[j].rows))
	}
	nnz := out.ColPtr[n]
	out.RowIdx = make([]matrix.Index, 0, nnz)
	out.Val = make([]T, 0, nnz)
	for j := 0; j < n; j++ {
		out.RowIdx = append(out.RowIdx, cols[j].rows...)
		out.Val = append(out.Val, cols[j].vals...)
	}
	if opt.Stats != nil {
		opt.Stats.EntriesMoved.Add(nnz)
	}
	return out, nil
}

// pairWeights returns per-column input nnz for load balancing a pair
// addition.
func pairWeights[T matrix.Number](a, b *matrix.CSCOf[T]) []int64 {
	w := make([]int64, a.Cols)
	for j := range w {
		w[j] = int64(a.ColNNZ(j) + b.ColNNZ(j))
	}
	return w
}

// runColsOn dispatches columns [0, n) to workers of the given
// resident executor under the configured schedule, recording the
// region's load statistics into stats (when non-nil). weights may be
// nil for the Static and Dynamic schedules; weighted schedules
// without weights fall back to Static. Single-worker regions (t <= 1,
// one column, or a nil executor) run inline on the caller, unrecorded
// — they carry no balance information and must stay free of locking
// so a Threads==1 reduction (every multi-shard Pool) pays nothing.
//
// A panic in the body — on a resident worker or on the inline path —
// comes back as a *sched.PanicError; the region always completes its
// barrier first, so no worker still runs when the error surfaces.
func runColsOn(ex *sched.Executor, n, t int, s Schedule, weights []int64, stats *OpStats, body func(worker, lo, hi int)) error {
	if n == 0 {
		return nil
	}
	t = sched.Threads(t)
	if t <= 1 || n == 1 || ex == nil {
		return sched.RunInline(n, body)
	}
	var ls sched.LoadStats
	var err error
	switch s {
	case ScheduleStatic:
		ls, err = ex.Static(n, t, body)
	case ScheduleDynamic:
		ls, err = ex.Dynamic(n, t, 0, body)
	case ScheduleWeightedStealing:
		if weights == nil {
			ls, err = ex.Static(n, t, body)
		} else {
			ls, err = ex.WeightedStealing(weights, t, body)
		}
	default:
		if weights == nil {
			ls, err = ex.Static(n, t, body)
		} else {
			ls, err = ex.Weighted(weights, t, body)
		}
	}
	if stats != nil {
		stats.RecordRegion(ls)
	}
	return err
}

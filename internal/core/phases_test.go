package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

// The parity suite: the single-pass engines must produce output
// entry-for-entry identical (after canonical sort; Equal compares
// sorted columns with zero tolerance) to the two-phase engine for
// every supported kernel/option combination.

func phasesInputs() map[string][]*matrix.CSC {
	return map[string][]*matrix.CSC{
		"ER":   erInputs(8, 600, 24, 16, 71),
		"RMAT": generate.RMATCollection(6, generate.Opts{Rows: 500, Cols: 20, NNZPerCol: 12, Seed: 72}, generate.Graph500),
	}
}

func TestPhasesParityAllCombos(t *testing.T) {
	for pattern, as := range phasesInputs() {
		for _, alg := range []Algorithm{Hash, SPA, Heap} {
			for _, sorted := range []bool{false, true} {
				base := Options{Algorithm: alg, Phases: PhasesTwoPass, SortedOutput: sorted}
				want, err := Add(as, base)
				if err != nil {
					t.Fatalf("%s/%v two-pass: %v", pattern, alg, err)
				}
				for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
					for _, s := range []Schedule{ScheduleWeighted, ScheduleStatic, ScheduleDynamic} {
						name := fmt.Sprintf("%s/%v/sorted=%v/%v/sched=%d", pattern, alg, sorted, p, s)
						got, err := Add(as, Options{
							Algorithm: alg, Phases: p, SortedOutput: sorted,
							Schedule: s, Threads: 3,
						})
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if err := got.Validate(); err != nil {
							t.Fatalf("%s: invalid output: %v", name, err)
						}
						if !got.Equal(want) {
							t.Errorf("%s: differs from two-pass engine", name)
						}
						if sorted && !got.IsColumnSorted() {
							t.Errorf("%s: SortedOutput violated", name)
						}
					}
				}
			}
		}
	}
}

func TestPhasesParityUnsortedInputs(t *testing.T) {
	// Hash and SPA accept unsorted input columns in every engine.
	as := erInputs(5, 300, 20, 9, 73)
	rng := rand.New(rand.NewSource(74))
	for _, a := range as {
		for j := 0; j < a.Cols; j++ {
			rows, vals := a.ColRows(j), a.ColVals(j)
			rng.Shuffle(len(rows), func(x, y int) {
				rows[x], rows[y] = rows[y], rows[x]
				vals[x], vals[y] = vals[y], vals[x]
			})
		}
	}
	want := matrix.ReferenceAdd(as)
	for _, alg := range []Algorithm{Hash, SPA} {
		for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
			got, err := Add(as, Options{Algorithm: alg, Phases: p, SortedOutput: true})
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, p, err)
			}
			if !got.Equal(want) {
				t.Errorf("%v/%v: wrong result on unsorted inputs", alg, p)
			}
		}
	}
}

func TestPhasesSlidingHashFallsBack(t *testing.T) {
	// SlidingHash has no single-pass engine; an explicit fused or
	// upper-bound request silently keeps the two-phase driver and the
	// result stays correct.
	as := erInputs(8, 500, 16, 20, 75)
	want := matrix.ReferenceAdd(as)
	for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
		var st OpStats
		got, err := Add(as, Options{Algorithm: SlidingHash, Phases: p, SortedOutput: true, Stats: &st, MaxTableEntries: 8})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !got.Equal(want) {
			t.Errorf("%v: wrong result", p)
		}
		if st.SymProbes.Load() == 0 {
			t.Errorf("%v: sliding hash should have run its symbolic phase", p)
		}
	}
}

func TestPhasesCancellationAndEmpty(t *testing.T) {
	// Cancellation to explicit zeros and empty inputs behave the same
	// in every engine (the engines are structural, not value-driven).
	a := matrix.FromTriples(4, 1, []matrix.Triple{{Row: 2, Col: 0, Val: 1}})
	b := matrix.FromTriples(4, 1, []matrix.Triple{{Row: 2, Col: 0, Val: -1}})
	empty := matrix.NewCSC(10, 5, 0)
	for _, alg := range []Algorithm{Hash, SPA, Heap} {
		for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
			got, err := Add([]*matrix.CSC{a, b}, Options{Algorithm: alg, Phases: p, SortedOutput: true})
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, p, err)
			}
			if got.NNZ() != 1 || got.Val[0] != 0 {
				t.Errorf("%v/%v: cancellation produced nnz=%d, want one explicit zero", alg, p, got.NNZ())
			}
			zero, err := Add([]*matrix.CSC{empty, empty.Clone()}, Options{Algorithm: alg, Phases: p})
			if err != nil {
				t.Fatalf("%v/%v empty: %v", alg, p, err)
			}
			if zero.NNZ() != 0 || zero.Rows != 10 || zero.Cols != 5 {
				t.Errorf("%v/%v: empty sum = %v", alg, p, zero)
			}
		}
	}
}

func TestPhasesAddScaledParity(t *testing.T) {
	as := erInputs(6, 400, 16, 12, 76)
	coeffs := make([]matrix.Value, len(as))
	for i := range coeffs {
		coeffs[i] = 0.25 * matrix.Value(i+1)
	}
	for _, alg := range []Algorithm{Hash, SPA, Heap} {
		want, err := AddScaled(as, coeffs, Options{Algorithm: alg, Phases: PhasesTwoPass, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v two-pass: %v", alg, err)
		}
		for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
			got, err := AddScaled(as, coeffs, Options{Algorithm: alg, Phases: p, SortedOutput: true})
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, p, err)
			}
			if !got.Equal(want) {
				t.Errorf("%v/%v: scaled sum differs from two-pass engine", alg, p)
			}
		}
	}
}

func TestPhasesAccumulatorParity(t *testing.T) {
	as := erInputs(20, 800, 16, 12, 77)
	want := matrix.ReferenceAdd(as)
	for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
		for _, budget := range []int64{1, 10 * entryBytes, 1 << 20} {
			ac := NewAccumulator(800, 16, budget, Options{Algorithm: Hash, Phases: p, SortedOutput: true})
			for _, a := range as {
				if err := ac.Push(a); err != nil {
					t.Fatal(err)
				}
			}
			got, err := ac.Sum()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("%v/budget=%d: streaming sum differs", p, budget)
			}
		}
	}
}

func TestPhasesAddCSRParity(t *testing.T) {
	a := generate.ER(generate.Opts{Rows: 300, Cols: 40, NNZPerCol: 8, Seed: 78}).ToCSR()
	b := generate.ER(generate.Opts{Rows: 300, Cols: 40, NNZPerCol: 8, Seed: 79}).ToCSR()
	want, err := AddCSR([]*matrix.CSR{a, b}, Options{Algorithm: Hash, Phases: PhasesTwoPass, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
		got, err := AddCSR([]*matrix.CSR{a, b}, Options{Algorithm: Hash, Phases: p, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got.Rows != want.Rows || got.Cols != want.Cols || len(got.ColIdx) != len(want.ColIdx) {
			t.Fatalf("%v: shape/nnz mismatch", p)
		}
		for i := range got.ColIdx {
			if got.ColIdx[i] != want.ColIdx[i] || got.Val[i] != want.Val[i] {
				t.Fatalf("%v: CSR entry %d differs", p, i)
			}
		}
	}
}

func TestPhasesSortedOutputBitIdentical(t *testing.T) {
	// With sorted output, all three engines must agree bit for bit:
	// per-row accumulation order is the input order in every engine,
	// so even the float sums match exactly.
	as := generate.RMATCollection(8, generate.Opts{Rows: 400, Cols: 16, NNZPerCol: 12, Seed: 80}, generate.Graph500)
	for _, alg := range []Algorithm{Hash, SPA, Heap} {
		ref, err := Add(as, Options{Algorithm: alg, Phases: PhasesTwoPass, SortedOutput: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
			got, err := Add(as, Options{Algorithm: alg, Phases: p, SortedOutput: true, Threads: 4})
			if err != nil {
				t.Fatal(err)
			}
			if got.NNZ() != ref.NNZ() {
				t.Fatalf("%v/%v: nnz %d != %d", alg, p, got.NNZ(), ref.NNZ())
			}
			for i := range got.RowIdx {
				if got.RowIdx[i] != ref.RowIdx[i] || got.Val[i] != ref.Val[i] {
					t.Fatalf("%v/%v: layout differs at %d", alg, p, i)
				}
			}
		}
	}
}

func TestPhasesAutoPolicy(t *testing.T) {
	// Rare duplicates within the staging cap: upper bound.
	sparse := erInputs(4, 100000, 8, 16, 81)
	if p := pickPhases(estimateWorkload(sparse), Hash, Options{}); p != PhasesUpperBound {
		t.Errorf("sparse ER: auto = %v, want UpperBound", p)
	}
	// Heavy duplicates (k identical supports): fused.
	base := generate.ER(generate.Opts{Rows: 200, Cols: 8, NNZPerCol: 16, Seed: 82})
	dup := []*matrix.CSC{base, base.Clone(), base.Clone(), base.Clone(), base.Clone(), base.Clone(), base.Clone(), base.Clone()}
	if p := pickPhases(estimateWorkload(dup), Hash, Options{}); p != PhasesFused {
		t.Errorf("duplicate-heavy: auto = %v, want Fused", p)
	}
	// Fused hash tables spilling the cache: two-pass.
	if p := pickPhases(estimateWorkload(sparse), Hash, Options{CacheBytes: 16}); p != PhasesTwoPass {
		t.Errorf("tiny cache: auto = %v, want TwoPass", p)
	}
	// Unsupported algorithms always resolve to two-pass, even when
	// asked for a single-pass engine.
	if p := pickPhases(estimateWorkload(sparse), SlidingHash, Options{Phases: PhasesFused}); p != PhasesTwoPass {
		t.Errorf("sliding hash: resolved %v, want TwoPass", p)
	}
	// An explicit request on a supported algorithm is honored.
	if p := pickPhases(estimateWorkload(dup), Heap, Options{Phases: PhasesUpperBound}); p != PhasesUpperBound {
		t.Errorf("explicit request: resolved %v, want UpperBound", p)
	}
}

func TestQuickPhasesParity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(6) + 2
		rows := rng.Intn(120) + 1
		cols := rng.Intn(24) + 1
		as := make([]*matrix.CSC, k)
		for i := range as {
			coo := matrix.NewCOO(rows, cols)
			for e := 0; e < rng.Intn(80); e++ {
				coo.Append(matrix.Index(rng.Intn(rows)), matrix.Index(rng.Intn(cols)), float64(rng.Intn(7)+1))
			}
			as[i] = coo.ToCSC()
		}
		alg := []Algorithm{Hash, SPA, Heap}[rng.Intn(3)]
		sorted := rng.Intn(2) == 0
		want, err := Add(as, Options{Algorithm: alg, Phases: PhasesTwoPass, SortedOutput: sorted})
		if err != nil {
			return false
		}
		for _, p := range []Phases{PhasesFused, PhasesUpperBound} {
			got, err := Add(as, Options{Algorithm: alg, Phases: p, SortedOutput: sorted, Threads: 1 + rng.Intn(3)})
			if err != nil || got.Validate() != nil || !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

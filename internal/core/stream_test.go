package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"spkadd/internal/faults/leakcheck"
	"spkadd/internal/matrix"
)

func TestAccumulatorMatchesOneShot(t *testing.T) {
	leakcheck.Begin(t)
	as := erInputs(20, 800, 16, 12, 51)
	want := matrix.ReferenceAdd(as)
	// Budgets from "reduce every push" to "one big reduction".
	for _, budget := range []int64{1, 10 * entryBytes, 1 << 20} {
		ac := NewAccumulator(800, 16, budget, Options{Algorithm: Hash, SortedOutput: true})
		for _, a := range as {
			if err := ac.Push(a); err != nil {
				t.Fatal(err)
			}
		}
		got, err := ac.Sum()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("budget=%d: streaming sum differs from one-shot sum", budget)
		}
		if ac.K() != len(as) {
			t.Errorf("budget=%d: K=%d, want %d", budget, ac.K(), len(as))
		}
	}
}

func TestAccumulatorBatching(t *testing.T) {
	// A budget of sum + ~4 matrices should produce ~k/4 reductions,
	// far fewer than k (which is what pairwise incremental would do).
	// The budget covers a reduction's total input — running sum plus
	// pending — so the inputs all share one sparsity pattern, keeping
	// the sum at exactly one matrix's footprint and the arithmetic
	// k/4 independent of how the union would have grown.
	one := erInputs(1, 500, 8, 10, 52)[0]
	per := int64(one.NNZ()) * entryBytes
	ac := NewAccumulator(500, 8, 5*per+1, Options{Algorithm: Hash})
	for i := 0; i < 16; i++ {
		if err := ac.Push(one); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ac.Sum(); err != nil {
		t.Fatal(err)
	}
	if r := ac.Reductions(); r < 3 || r > 6 {
		t.Errorf("reductions = %d, want ~4 for a 4-matrix budget over k=16", r)
	}
}

func TestAccumulatorIncrementalQueries(t *testing.T) {
	// Sum may be requested between pushes; later pushes keep working.
	a := matrix.FromTriples(4, 2, []matrix.Triple{{Row: 1, Col: 0, Val: 1}})
	b := matrix.FromTriples(4, 2, []matrix.Triple{{Row: 1, Col: 0, Val: 2}, {Row: 3, Col: 1, Val: 5}})
	ac := NewAccumulator(4, 2, 0, Options{Algorithm: Hash, SortedOutput: true})
	if err := ac.Push(a); err != nil {
		t.Fatal(err)
	}
	s1, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if s1.At(1, 0) != 1 {
		t.Errorf("partial sum At(1,0) = %v", s1.At(1, 0))
	}
	if err := ac.Push(b); err != nil {
		t.Fatal(err)
	}
	s2, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if s2.At(1, 0) != 3 || s2.At(3, 1) != 5 {
		t.Errorf("final sum wrong: At(1,0)=%v At(3,1)=%v", s2.At(1, 0), s2.At(3, 1))
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	ac := NewAccumulator(5, 5, 0, Options{})
	got, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || got.Rows != 5 || got.Cols != 5 {
		t.Errorf("empty accumulator sum = %v", got)
	}
}

func TestAccumulatorDimCheck(t *testing.T) {
	ac := NewAccumulator(4, 4, 0, Options{})
	bad := matrix.NewCSC(5, 4, 0)
	if err := ac.Push(bad); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch not rejected: %v", err)
	}
}

// TestAccumulatorBudgetIncludesSum is the regression test for the
// budget-accounting fix: a reduction reads sum + pending, so the
// running sum's bytes must count toward the budget. Every internal
// reduction's input equals the accumulator's (sum + pending) state
// after some earlier Push — reductions trigger at the top of Push,
// before the new matrix is buffered — so tracking that state after
// each Push bounds every reduction's input. Under the old accounting
// (pending bytes only) the observed maximum overshoots budget by up
// to the sum's full size.
func TestAccumulatorBudgetIncludesSum(t *testing.T) {
	as := erInputs(24, 800, 16, 12, 53)
	want := matrix.ReferenceAdd(as)
	var per int64
	for _, a := range as {
		if b := int64(a.NNZ()) * entryBytes; b > per {
			per = b
		}
	}
	// Budget accommodates the full sum plus ~2 matrices, so the sum
	// never exceeds the budget on its own and reductions still happen.
	budget := int64(want.NNZ())*entryBytes + 2*per
	ac := NewAccumulator(800, 16, budget, Options{Algorithm: Hash, SortedOutput: true})
	var maxInput int64
	for _, a := range as {
		if err := ac.Push(a); err != nil {
			t.Fatal(err)
		}
		if in := ac.sumBytes() + ac.pendingBytes; in > maxInput {
			maxInput = in
		}
	}
	if maxInput > budget+per {
		t.Errorf("worst reduction input %d bytes exceeds budget+one matrix = %d", maxInput, budget+per)
	}
	got, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("sum differs from one-shot sum")
	}
	if r := ac.Reductions(); r < 2 {
		t.Errorf("reductions = %d; budget was sized so the invariant is actually exercised", r)
	}
}

// TestAccumulatorZeroNNZFlood is the regression test for the
// pending-count cap: zero-nnz pushes contribute zero bytes, so under
// byte-only accounting they grew the pending slice forever without a
// single flush.
func TestAccumulatorZeroNNZFlood(t *testing.T) {
	ac := NewAccumulator(100, 10, 1<<20, Options{Algorithm: Hash})
	zero := matrix.NewCSC(100, 10, 0)
	for i := 0; i < maxPendingMatrices+50; i++ {
		if err := ac.Push(zero); err != nil {
			t.Fatal(err)
		}
	}
	if ac.Reductions() == 0 {
		t.Error("zero-nnz flood never triggered a flush")
	}
	if len(ac.pending) > maxPendingMatrices {
		t.Errorf("pending grew to %d, cap is %d", len(ac.pending), maxPendingMatrices)
	}
	got, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Errorf("flood sum has %d entries, want 0", got.NNZ())
	}
}

// TestAccumulatorBusyFlag deterministically exercises the
// concurrent-misuse detection: with the busy flag held, every entry
// point fails with ErrAccumulatorInUse instead of touching state.
func TestAccumulatorBusyFlag(t *testing.T) {
	ac := NewAccumulator(10, 4, 0, Options{Algorithm: Hash})
	a := matrix.FromTriples(10, 4, []matrix.Triple{{Row: 1, Col: 1, Val: 1}})
	ac.busy.Store(true)
	if err := ac.Push(a); !errors.Is(err, ErrAccumulatorInUse) {
		t.Errorf("Push while busy: %v", err)
	}
	if err := ac.Flush(); !errors.Is(err, ErrAccumulatorInUse) {
		t.Errorf("Flush while busy: %v", err)
	}
	if _, err := ac.Sum(); !errors.Is(err, ErrAccumulatorInUse) {
		t.Errorf("Sum while busy: %v", err)
	}
	if ac.K() != 0 {
		t.Errorf("rejected Push still counted: K=%d", ac.K())
	}
	ac.busy.Store(false)
	if err := ac.Push(a); err != nil {
		t.Fatal(err)
	}
	got, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1, 1) != 1 {
		t.Error("accumulator unusable after busy flag released")
	}
}

// TestAccumulatorConcurrentMisuse hammers one Accumulator from many
// goroutines: overlapping calls must fail fast with
// ErrAccumulatorInUse — never corrupt the resident workspace — and
// the accumulator must account exactly for the pushes that succeeded.
func TestAccumulatorConcurrentMisuse(t *testing.T) {
	leakcheck.Begin(t)
	one := erInputs(1, 400, 12, 8, 54)[0]
	// A small budget forces reductions inside Push, widening the
	// window in which a second goroutine can overlap.
	ac := NewAccumulator(400, 12, 1, Options{Algorithm: Hash, SortedOutput: true})
	const goroutines, iters = 8, 40
	var wg sync.WaitGroup
	var succeeded atomic.Int64
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch err := ac.Push(one); {
				case err == nil:
					succeeded.Add(1)
				case errors.Is(err, ErrAccumulatorInUse):
					// expected under contention
				default:
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n := int(succeeded.Load())
	if ac.K() != n {
		t.Fatalf("K=%d, want %d successful pushes", ac.K(), n)
	}
	got, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	repeated := make([]*matrix.CSC, n)
	for i := range repeated {
		repeated[i] = one
	}
	if !got.Equal(matrix.ReferenceAdd(repeated)) {
		t.Fatal("accumulator state corrupted by concurrent misuse")
	}
}

func TestQuickAccumulatorAnyBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(12) + 1
		rows, cols := rng.Intn(50)+1, rng.Intn(6)+1
		as := make([]*matrix.CSC, k)
		for i := range as {
			coo := matrix.NewCOO(rows, cols)
			for e := 0; e < rng.Intn(30); e++ {
				coo.Append(matrix.Index(rng.Intn(rows)), matrix.Index(rng.Intn(cols)), float64(rng.Intn(5)+1))
			}
			as[i] = coo.ToCSC()
		}
		want := matrix.ReferenceAdd(as)
		ac := NewAccumulator(rows, cols, int64(rng.Intn(2000)+1), Options{Algorithm: Hash, SortedOutput: true})
		for _, a := range as {
			if ac.Push(a) != nil {
				return false
			}
		}
		got, err := ac.Sum()
		return err == nil && got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"spkadd/internal/matrix"
)

func TestAccumulatorMatchesOneShot(t *testing.T) {
	as := erInputs(20, 800, 16, 12, 51)
	want := matrix.ReferenceAdd(as)
	// Budgets from "reduce every push" to "one big reduction".
	for _, budget := range []int64{1, 10 * entryBytes, 1 << 20} {
		ac := NewAccumulator(800, 16, budget, Options{Algorithm: Hash, SortedOutput: true})
		for _, a := range as {
			if err := ac.Push(a); err != nil {
				t.Fatal(err)
			}
		}
		got, err := ac.Sum()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("budget=%d: streaming sum differs from one-shot sum", budget)
		}
		if ac.K() != len(as) {
			t.Errorf("budget=%d: K=%d, want %d", budget, ac.K(), len(as))
		}
	}
}

func TestAccumulatorBatching(t *testing.T) {
	// A budget of ~4 matrices should produce ~k/4 reductions, far
	// fewer than k (which is what pairwise incremental would do).
	as := erInputs(16, 500, 8, 10, 52)
	per := int64(as[0].NNZ()) * entryBytes
	ac := NewAccumulator(500, 8, 4*per+1, Options{Algorithm: Hash})
	for _, a := range as {
		if err := ac.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ac.Sum(); err != nil {
		t.Fatal(err)
	}
	if r := ac.Reductions(); r < 3 || r > 6 {
		t.Errorf("reductions = %d, want ~4 for a 4-matrix budget over k=16", r)
	}
}

func TestAccumulatorIncrementalQueries(t *testing.T) {
	// Sum may be requested between pushes; later pushes keep working.
	a := matrix.FromTriples(4, 2, []matrix.Triple{{Row: 1, Col: 0, Val: 1}})
	b := matrix.FromTriples(4, 2, []matrix.Triple{{Row: 1, Col: 0, Val: 2}, {Row: 3, Col: 1, Val: 5}})
	ac := NewAccumulator(4, 2, 0, Options{Algorithm: Hash, SortedOutput: true})
	if err := ac.Push(a); err != nil {
		t.Fatal(err)
	}
	s1, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if s1.At(1, 0) != 1 {
		t.Errorf("partial sum At(1,0) = %v", s1.At(1, 0))
	}
	if err := ac.Push(b); err != nil {
		t.Fatal(err)
	}
	s2, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if s2.At(1, 0) != 3 || s2.At(3, 1) != 5 {
		t.Errorf("final sum wrong: At(1,0)=%v At(3,1)=%v", s2.At(1, 0), s2.At(3, 1))
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	ac := NewAccumulator(5, 5, 0, Options{})
	got, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || got.Rows != 5 || got.Cols != 5 {
		t.Errorf("empty accumulator sum = %v", got)
	}
}

func TestAccumulatorDimCheck(t *testing.T) {
	ac := NewAccumulator(4, 4, 0, Options{})
	bad := matrix.NewCSC(5, 4, 0)
	if err := ac.Push(bad); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch not rejected: %v", err)
	}
}

func TestQuickAccumulatorAnyBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(12) + 1
		rows, cols := rng.Intn(50)+1, rng.Intn(6)+1
		as := make([]*matrix.CSC, k)
		for i := range as {
			coo := matrix.NewCOO(rows, cols)
			for e := 0; e < rng.Intn(30); e++ {
				coo.Append(matrix.Index(rng.Intn(rows)), matrix.Index(rng.Intn(cols)), float64(rng.Intn(5)+1))
			}
			as[i] = coo.ToCSC()
		}
		want := matrix.ReferenceAdd(as)
		ac := NewAccumulator(rows, cols, int64(rng.Intn(2000)+1), Options{Algorithm: Hash, SortedOutput: true})
		for _, a := range as {
			if ac.Push(a) != nil {
				return false
			}
		}
		got, err := ac.Sum()
		return err == nil && got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

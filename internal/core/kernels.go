package core

import (
	"spkadd/internal/hashtab"
	"spkadd/internal/kheap"
	"spkadd/internal/matrix"
	"spkadd/internal/sched"
	"spkadd/internal/spa"
)

// workerStateOf holds the thread-private data structures of one worker:
// the paper's design keeps one heap / SPA / hash table per thread and
// reuses it across all columns the thread processes (§III-A) — and,
// living in a Workspace, across every call the workspace serves.
//
// tabHW/symHW are high-water marks: the key count each hash table's
// current probe window was last sized for. Consecutive columns of
// similar size skip the redundant Grow (and its SizeFor re-derivation)
// entirely — a Reset (epoch bump) suffices while the requested size
// stays within [hw/4, hw], the band in which the window is at most 4x
// oversized, preserving the narrow-window cache guarantee hashtab's
// Grow exists to provide.
type workerStateOf[T matrix.Number] struct {
	table *hashtab.TableOf[T]
	sym   *hashtab.Symbolic
	heap  *kheap.HeapOf[T]
	acc   *spa.SPAOf[T]
	pos   []int64 // per-matrix cursors for the heap kernel
	// kit binds the instantiation's Plus fast-path loops (nil for
	// bool, whose calls are always monoid-generic; see kitFor).
	kit   *numKit[T]
	lf    float64
	tabHW int // key count the numeric table's window was sized for
	symHW int // likewise for the symbolic table
}

func newWorkerStateOf[T matrix.Number](k int, lf float64) *workerStateOf[T] {
	return &workerStateOf[T]{lf: lf, pos: make([]int64, k), kit: kitFor[T]()}
}

// newWorkerState is the float64 constructor (the paper's element type).
func newWorkerState(k int, lf float64) *workerStateOf[matrix.Value] {
	return newWorkerStateOf[matrix.Value](k, lf)
}

// prepare adapts a workspace-resident worker to a new call's input
// count and load factor. A load-factor change invalidates the
// high-water marks so the next table request re-derives its window.
func (w *workerStateOf[T]) prepare(k int, lf float64) {
	if lf != w.lf {
		w.lf = lf
		w.tabHW, w.symHW = 0, 0
	}
	if cap(w.pos) < k {
		w.pos = make([]int64, k)
	}
	w.pos = w.pos[:k]
}

func (w *workerStateOf[T]) hashTable(n int) *hashtab.TableOf[T] {
	if n <= w.tabHW && n >= w.tabHW>>2 && w.table != nil {
		w.table.Reset()
		return w.table
	}
	return w.hashTableSized(n)
}

// hashTableSized always (re-)derives the probe window for exactly n
// keys. The sliding-hash kernels use it directly: their per-part
// tables are sized to fit a cache budget (or the Fig 4 MaxTableEntries
// cap), and the high-water band's up-to-4x-oversized window would
// silently void that in-cache guarantee.
func (w *workerStateOf[T]) hashTableSized(n int) *hashtab.TableOf[T] {
	if w.table == nil {
		w.table = hashtab.NewTableOf[T](n, w.lf)
	} else {
		w.table.Grow(n, w.lf)
	}
	w.tabHW = n
	return w.table
}

func (w *workerStateOf[T]) symTable(n int) *hashtab.Symbolic {
	if n <= w.symHW && n >= w.symHW>>2 && w.sym != nil {
		w.sym.Reset()
		return w.sym
	}
	return w.symTableSized(n)
}

// symTableSized is hashTableSized for the symbolic table.
func (w *workerStateOf[T]) symTableSized(n int) *hashtab.Symbolic {
	if w.sym == nil {
		w.sym = hashtab.NewSymbolic(n, w.lf)
	} else {
		w.sym.Grow(n, w.lf)
	}
	w.symHW = n
	return w.sym
}

func (w *workerStateOf[T]) kheap(k int) *kheap.HeapOf[T] {
	if w.heap == nil {
		w.heap = kheap.NewOf[T](k)
		return w.heap
	}
	w.heap.Reset()
	w.heap.Grow(k)
	return w.heap
}

func (w *workerStateOf[T]) spa(m int) *spa.SPAOf[T] {
	if w.acc == nil {
		w.acc = spa.NewOf[T](m)
		return w.acc
	}
	w.acc.Grow(m)
	return w.acc
}

// flushStats adds the worker's structure counters into s and resets
// them so repeated phases don't double count.
func (w *workerStateOf[T]) flushStats(s *OpStats) {
	if s == nil {
		return
	}
	if w.table != nil {
		s.HashProbes.Add(w.table.Probes)
		w.table.Probes = 0
	}
	if w.sym != nil {
		s.HashProbes.Add(w.sym.Probes)
		s.SymProbes.Add(w.sym.Probes)
		w.sym.Probes = 0
	}
	if w.heap != nil {
		s.HeapOps.Add(w.heap.Ops)
		w.heap.Ops = 0
	}
	if w.acc != nil {
		s.SPATouches.Add(w.acc.Touches)
		w.acc.Touches = 0
	}
}

// colInputNNZ returns Σ_i nnz(A_i(:,j)).
func colInputNNZ[T matrix.Number](as []*matrix.CSCOf[T], j int) int {
	n := 0
	for _, a := range as {
		n += a.ColNNZ(j)
	}
	return n
}

// --- The Plus fast-path kit ---
//
// The kernels are generic over every matrix.Number, but the "+" fast
// path exists only for the arithmetic types — bool has no "+=", and a
// per-element type switch would put dispatch back inside the loops the
// generic refactor must not slow down. Go resolves the tension with a
// constraint split: the fast-path loops are free functions constrained
// to matrix.Arith (so each instantiation inlines hashtab.Accum /
// spa.Accum to a branch-once "+=" loop), collected into a per-type
// numKit bound once at worker construction. A [T Number] kernel
// crosses into [T Arith] code through one indirect call per column —
// never per element — and bool, the only Number outside Arith, gets a
// nil kit that validation guarantees is never consulted (a bool call
// without an explicit monoid fails validate).

// pairAdder is a 2-way addition routine: merge-based (specialised) or
// map-based (library stand-in). It lives in the kit because both
// implementations are Plus-only (validate rejects generic monoids on
// the 2-way baselines).
type pairAdder[T matrix.Number] func(a, b *matrix.CSCOf[T], opt OptionsOf[T], ex *sched.Executor) (*matrix.CSCOf[T], error)

// numKit collects one arithmetic instantiation's Plus fast-path
// kernels. Fields, not methods: the concrete functions carry the
// tighter matrix.Arith constraint, which a method on a [T Number] type
// cannot.
type numKit[T matrix.Number] struct {
	hashAccum    func(tab *hashtab.TableOf[T], as []*matrix.CSCOf[T], j int, coeffs []T)
	spaAccum     func(acc *spa.SPAOf[T], as []*matrix.CSCOf[T], j int, coeffs []T)
	slidingAccum func(tab *hashtab.TableOf[T], as []*matrix.CSCOf[T], j int, r1, r2 matrix.Index, sortedIn bool, coeffs []T)
	heapMerge    func(w *workerStateOf[T], as []*matrix.CSCOf[T], j int, outRows []matrix.Index, outVals, coeffs []T) int
	pairMerge    pairAdder[T]
	pairMap      pairAdder[T]
}

func makeKit[T matrix.Arith]() numKit[T] {
	return numKit[T]{
		hashAccum:    hashAccumPlus[T],
		spaAccum:     spaAccumPlus[T],
		slidingAccum: slidingAccumPlus[T],
		heapMerge:    heapMergePlus[T],
		pairMerge:    pairAddMerge[T],
		pairMap:      pairAddMap[T],
	}
}

var (
	kitF64 = makeKit[float64]()
	kitF32 = makeKit[float32]()
	kitI32 = makeKit[int32]()
	kitI64 = makeKit[int64]()
)

// kitFor returns T's Plus fast-path kit, nil for bool (validation
// never lets a bool call reach a Plus path). The type switch runs once
// per worker construction, not per call.
func kitFor[T matrix.Number]() *numKit[T] {
	var z T
	switch any(z).(type) {
	case float64:
		return any(&kitF64).(*numKit[T])
	case float32:
		return any(&kitF32).(*numKit[T])
	case int32:
		return any(&kitI32).(*numKit[T])
	case int64:
		return any(&kitI64).(*numKit[T])
	}
	return nil
}

// hashAccumPlus is the hash algorithm's Plus accumulation loop
// (lines 5-12 of Algorithm 5): per entry, one inlined stamped probe
// with "+=".
//
//spkadd:noalloc per-column Plus loop of the hash kernels
func hashAccumPlus[T matrix.Arith](tab *hashtab.TableOf[T], as []*matrix.CSCOf[T], j int, coeffs []T) {
	for i, a := range as {
		c := coeff(coeffs, i)
		rows, vals := a.ColRows(j), a.ColVals(j)
		for p := range rows {
			hashtab.Accum(tab, rows[p], vals[p]*c)
		}
	}
}

// spaAccumPlus is the SPA's Plus accumulation loop (lines 5-7 of
// Algorithm 4).
//
//spkadd:noalloc per-column Plus loop of the SPA kernels
func spaAccumPlus[T matrix.Arith](acc *spa.SPAOf[T], as []*matrix.CSCOf[T], j int, coeffs []T) {
	for i, a := range as {
		c := coeff(coeffs, i)
		rows, vals := a.ColRows(j), a.ColVals(j)
		for p := range rows {
			spa.Accum(acc, rows[p], vals[p]*c)
		}
	}
}

// slidingAccumPlus accumulates the [r1, r2) row-range slice of column
// j into tab — the Plus inner loop of Algorithm 8's per-part pass.
//
//spkadd:noalloc per-part Plus loop of the sliding hash kernel
func slidingAccumPlus[T matrix.Arith](tab *hashtab.TableOf[T], as []*matrix.CSCOf[T], j int, r1, r2 matrix.Index, sortedIn bool, coeffs []T) {
	for i, a := range as {
		c := coeff(coeffs, i)
		if sortedIn {
			rows, vals := a.ColRange(j, r1, r2)
			for p := range rows {
				hashtab.Accum(tab, rows[p], vals[p]*c)
			}
			continue
		}
		rows, vals := a.ColRows(j), a.ColVals(j)
		for p := range rows {
			if rows[p] >= r1 && rows[p] < r2 {
				hashtab.Accum(tab, rows[p], vals[p]*c)
			}
		}
	}
}

// coeff returns the scaling coefficient for input matrix i; a nil
// slice means unscaled addition. Multiplying by the default 1 is exact
// for every arithmetic type (IEEE-754 for the floats), so the unscaled
// path needs no branch.
func coeff[T matrix.Arith](coeffs []T, i int) T {
	if coeffs == nil {
		return 1
	}
	return coeffs[i]
}

// --- Symbolic kernels: nnz(B(:,j)) per algorithm ---
//
// The symbolic phase never touches values, so these are generic over
// every element type with no Arith split: one shared index-only
// hashtab.Symbolic serves all instantiations, and the heap/SPA
// symbolic passes carry zero values of T.

// hashSymbolicCol is Algorithm 6: count distinct row indices with an
// index-only hash table sized by inz = Σ_i nnz(A_i(:,j)), which the
// driver already computed for load balancing.
func hashSymbolicCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j, inz int) int {
	if inz == 0 {
		return 0
	}
	tab := w.symTable(inz)
	for _, a := range as {
		for _, r := range a.ColRows(j) {
			tab.Insert(r)
		}
	}
	return tab.Len()
}

// slidingParts computes the partition count of Algorithms 7-8:
// ceil(nnz*b*T/M), or ceil(nnz/maxEntries) when an explicit table cap
// is set (the Fig 4 sweep knob).
func slidingParts(nnz int, bytesPerEntry int64, threads int, cacheBytes int64, maxEntries int) int {
	if nnz <= 0 {
		return 1
	}
	var parts int
	if maxEntries > 0 {
		parts = (nnz + maxEntries - 1) / maxEntries
	} else {
		need := int64(nnz) * bytesPerEntry * int64(threads)
		parts = int((need + cacheBytes - 1) / cacheBytes)
	}
	if parts < 1 {
		parts = 1
	}
	return parts
}

// slidingSymbolicCol is Algorithm 7: when the symbolic table would
// spill out of cache, count over row ranges [r1, r2), one in-cache
// table at a time. Row ranges are located by binary search when
// columns are sorted (the paper's implementation) and by a filtering
// scan otherwise (Table I lists sliding hash as not requiring sorted
// inputs).
func slidingSymbolicCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j, inz, threads int, cacheBytes int64, maxEntries int, sortedIn bool) int {
	if inz == 0 {
		return 0
	}
	// Tables are sized exactly (no high-water band): the whole point
	// of the partitioning is that each table fits the cache share (or
	// the explicit entry cap), and a band-reused oversized window
	// would silently void that.
	parts := slidingParts(inz, BytesPerSymbolicEntry, threads, cacheBytes, maxEntries)
	if parts == 1 {
		tab := w.symTableSized(inz)
		for _, a := range as {
			for _, r := range a.ColRows(j) {
				tab.Insert(r)
			}
		}
		return tab.Len()
	}
	m := as[0].Rows
	nz := 0
	for part := 0; part < parts; part++ {
		r1 := matrix.Index(part * m / parts)
		r2 := matrix.Index((part + 1) * m / parts)
		partInz := 0
		for _, a := range as {
			partInz += colRangeNNZ(a, j, r1, r2, sortedIn)
		}
		if partInz == 0 {
			continue
		}
		tab := w.symTableSized(partInz)
		for _, a := range as {
			forEachRowInRange(a, j, r1, r2, sortedIn, func(r matrix.Index) {
				tab.Insert(r)
			})
		}
		nz += tab.Len()
	}
	return nz
}

// colRangeNNZ counts entries of column j with row in [r1, r2), by
// binary search on sorted columns or a scan otherwise.
func colRangeNNZ[T matrix.Number](a *matrix.CSCOf[T], j int, r1, r2 matrix.Index, sortedIn bool) int {
	if sortedIn {
		return a.ColRangeNNZ(j, r1, r2)
	}
	n := 0
	for _, r := range a.ColRows(j) {
		if r >= r1 && r < r2 {
			n++
		}
	}
	return n
}

// forEachRowInRange visits the row indices of column j in [r1, r2) —
// the symbolic (value-free) half of the range visitors.
func forEachRowInRange[T matrix.Number](a *matrix.CSCOf[T], j int, r1, r2 matrix.Index, sortedIn bool, visit func(matrix.Index)) {
	if sortedIn {
		rows, _ := a.ColRange(j, r1, r2)
		for p := range rows {
			visit(rows[p])
		}
		return
	}
	for _, r := range a.ColRows(j) {
		if r >= r1 && r < r2 {
			visit(r)
		}
	}
}

// forEachInRange visits the entries of column j with row in [r1, r2).
func forEachInRange[T matrix.Number](a *matrix.CSCOf[T], j int, r1, r2 matrix.Index, sortedIn bool, visit func(matrix.Index, T)) {
	if sortedIn {
		rows, vals := a.ColRange(j, r1, r2)
		for p := range rows {
			visit(rows[p], vals[p])
		}
		return
	}
	rows, vals := a.ColRows(j), a.ColVals(j)
	for p := range rows {
		if rows[p] >= r1 && rows[p] < r2 {
			visit(rows[p], vals[p])
		}
	}
}

// heapSymbolicCol counts distinct rows with the k-way heap merge, the
// "heap could also be used" variant the paper mentions in §II-D.
func heapSymbolicCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j int) int {
	h := w.kheap(len(as))
	pos := w.pos
	for i, a := range as {
		pos[i] = a.ColPtr[j]
		if pos[i] < a.ColPtr[j+1] {
			h.Push(kheap.TupleOf[T]{Row: a.RowIdx[pos[i]], Mat: int32(i)})
			pos[i]++
		}
	}
	nz := 0
	last := matrix.Index(-1)
	for h.Len() > 0 {
		top := h.Min()
		if top.Row != last {
			nz++
			last = top.Row
		}
		i := top.Mat
		a := as[i]
		if pos[i] < a.ColPtr[j+1] {
			h.ReplaceMin(kheap.TupleOf[T]{Row: a.RowIdx[pos[i]], Mat: i})
			pos[i]++
		} else {
			h.Pop()
		}
	}
	return nz
}

// spaSymbolicCol counts distinct rows with the SPA. The insert is
// AddWith under a first-value-wins combine: value-free, so it works
// for every element type (bool included) and still counts each
// distinct row exactly once per generation.
func spaSymbolicCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j int) int {
	acc := w.spa(as[0].Rows)
	var z T
	for _, a := range as {
		for _, r := range a.ColRows(j) {
			acc.AddWith(r, z, keepFirst[T])
		}
	}
	nz := acc.Len()
	acc.Clear()
	return nz
}

// keepFirst is the symbolic SPA's no-op combine (values are never
// read). A named top-level function, not a closure: the funcval is a
// package singleton, so the symbolic body stays allocation-free.
func keepFirst[T matrix.Number](a, _ T) T { return a }

// --- Numeric kernels: fill B(:,j) into preallocated slices ---
//
// Every numeric kernel takes the call's resolved monoid handle. A nil
// *monoidStateOf selects the specialized T-Plus path — the exact
// inlined "+=" loops this library always had, reached through the
// worker's kit — and a non-nil handle selects the generic combine
// path. The branch happens once per column (or once per call), never
// per element, so the default Plus configuration pays nothing for the
// generality.

// accumInputsInto accumulates column j of every input into tab
// (lines 5-12 of Algorithm 5) and returns it.
func accumInputsInto[T matrix.Number](kit *numKit[T], tab *hashtab.TableOf[T], as []*matrix.CSCOf[T], j int, coeffs []T, mon *monoidStateOf[T]) *hashtab.TableOf[T] {
	if mon == nil {
		kit.hashAccum(tab, as, j, coeffs)
		return tab
	}
	// Generic path: coeffs are Plus-only (validation enforces it), so
	// the input map replaces the coefficient multiply. mapFor is nil
	// for unmapped matrices; branching out here keeps the no-map loop
	// free of a per-element no-op call.
	combine := mon.combine
	for i, a := range as {
		mi := mon.mapFor(i)
		rows, vals := a.ColRows(j), a.ColVals(j)
		if mi == nil {
			for p := range rows {
				tab.AddWith(rows[p], vals[p], combine)
			}
		} else {
			for p := range rows {
				tab.AddWith(rows[p], mi(vals[p]), combine)
			}
		}
	}
	return tab
}

// hashAccumCol accumulates column j of every input into the worker's
// hash table, sized for `size` keys (output nnz in the two-pass
// engine, input nnz in the single-pass engines), and returns the
// table.
func hashAccumCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j, size int, coeffs []T, mon *monoidStateOf[T]) *hashtab.TableOf[T] {
	return accumInputsInto(w.kit, w.hashTable(size), as, j, coeffs, mon)
}

// spaAccumCol accumulates column j of every input into the worker's
// SPA (lines 5-7 of Algorithm 4) and returns it; callers emit and
// Clear it.
func spaAccumCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j int, coeffs []T, mon *monoidStateOf[T]) *spa.SPAOf[T] {
	acc := w.spa(as[0].Rows)
	if mon == nil {
		w.kit.spaAccum(acc, as, j, coeffs)
		return acc
	}
	combine := mon.combine
	for i, a := range as {
		mi := mon.mapFor(i)
		rows, vals := a.ColRows(j), a.ColVals(j)
		if mi == nil {
			for p := range rows {
				acc.AddWith(rows[p], vals[p], combine)
			}
		} else {
			for p := range rows {
				acc.AddWith(rows[p], mi(vals[p]), combine)
			}
		}
	}
	return acc
}

// emitHashTab appends the table's entries into the exactly-sized
// output extent. Three-index slices cap appends at the column's
// allocation: a symbolic/numeric disagreement reallocates instead of
// corrupting the next column, and the length check catches it.
func emitHashTab[T matrix.Number](tab *hashtab.TableOf[T], outRows []matrix.Index, outVals []T, sorted bool) {
	need := len(outRows)
	r, v := tab.AppendEntries(outRows[:0:need], outVals[:0:need])
	if len(r) != need || &r[0] != &outRows[0] {
		panic("core: symbolic nnz disagrees with numeric nnz")
	}
	if sorted {
		sortPairs(r, v)
	}
}

// hashAddCol is Algorithm 5. outRows/outVals have exactly nnz(B(:,j))
// elements.
func hashAddCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j int, outRows []matrix.Index, outVals []T, sorted bool, coeffs []T, mon *monoidStateOf[T]) {
	if len(outRows) == 0 {
		return
	}
	emitHashTab(hashAccumCol(w, as, j, len(outRows), coeffs, mon), outRows, outVals, sorted)
}

// slidingHashAddCol is Algorithm 8: hash addition over row ranges
// whose tables fit the per-thread cache share. Parts are emitted in
// ascending row ranges, so sorting within parts yields a fully sorted
// column.
func slidingHashAddCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j int, outRows []matrix.Index, outVals []T, sorted bool, threads int, cacheBytes int64, maxEntries int, sortedIn bool, coeffs []T, mon *monoidStateOf[T]) {
	onz := len(outRows)
	if onz == 0 {
		return
	}
	// Like the symbolic half, tables are sized exactly — the in-cache
	// guarantee is the algorithm, so the high-water band is bypassed.
	// The per-entry byte cost is T's, so a float32 column needs half
	// the parts a float64 one does for the same cache share.
	parts := slidingParts(onz, entryBytesOf[T](), threads, cacheBytes, maxEntries)
	if parts == 1 {
		emitHashTab(accumInputsInto(w.kit, w.hashTableSized(onz), as, j, coeffs, mon), outRows, outVals, sorted)
		return
	}
	m := as[0].Rows
	out := 0
	for part := 0; part < parts; part++ {
		r1 := matrix.Index(part * m / parts)
		r2 := matrix.Index((part + 1) * m / parts)
		partInz := 0
		for _, a := range as {
			partInz += colRangeNNZ(a, j, r1, r2, sortedIn)
		}
		if partInz == 0 {
			continue
		}
		tab := w.hashTableSized(partInz)
		if mon == nil {
			w.kit.slidingAccum(tab, as, j, r1, r2, sortedIn, coeffs)
		} else {
			combine := mon.combine
			for i, a := range as {
				if mi := mon.mapFor(i); mi == nil {
					forEachInRange(a, j, r1, r2, sortedIn, func(r matrix.Index, v T) {
						tab.AddWith(r, v, combine)
					})
				} else {
					forEachInRange(a, j, r1, r2, sortedIn, func(r matrix.Index, v T) {
						tab.AddWith(r, mi(v), combine)
					})
				}
			}
		}
		r, v := tab.AppendEntries(outRows[out:out:onz], outVals[out:out:onz])
		if out+len(r) > onz || (len(r) > 0 && &r[0] != &outRows[out]) {
			panic("core: sliding symbolic nnz disagrees with numeric nnz")
		}
		if sorted {
			sortPairs(r, v)
		}
		out += len(r)
	}
	if out != onz {
		panic("core: sliding symbolic nnz disagrees with numeric nnz")
	}
}

// heapMergeCol is the body of Algorithm 3: k-way merge through the
// min-heap, appending to the output on first sight of a row and
// accumulating otherwise. Output is produced in ascending row order.
// outRows/outVals may be larger than the result (the single-pass
// engines pass the Σ_i nnz(A_i(:,j)) upper bound); the number of
// entries written is returned.
func heapMergeCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j int, outRows []matrix.Index, outVals []T, coeffs []T, mon *monoidStateOf[T]) int {
	if mon != nil {
		return heapMergeColM(w, as, j, outRows, outVals, mon)
	}
	return w.kit.heapMerge(w, as, j, outRows, outVals, coeffs)
}

// heapMergePlus is heapMergeCol's Plus fast path, the HeapSpKAdd
// inner loop with "+=" inlined per arithmetic instantiation.
//
//spkadd:noalloc per-column heap merge, the HeapSpKAdd inner loop
func heapMergePlus[T matrix.Arith](w *workerStateOf[T], as []*matrix.CSCOf[T], j int, outRows []matrix.Index, outVals, coeffs []T) int {
	h := w.kheap(len(as))
	pos := w.pos
	for i, a := range as {
		pos[i] = a.ColPtr[j]
		if pos[i] < a.ColPtr[j+1] {
			h.Push(kheap.TupleOf[T]{Row: a.RowIdx[pos[i]], Mat: int32(i), Val: a.Val[pos[i]] * coeff(coeffs, i)})
			pos[i]++
		}
	}
	out := -1
	for h.Len() > 0 {
		top := h.Min()
		if out >= 0 && outRows[out] == top.Row {
			outVals[out] += top.Val
		} else {
			out++
			outRows[out] = top.Row
			outVals[out] = top.Val
		}
		i := top.Mat
		a := as[i]
		if pos[i] < a.ColPtr[j+1] {
			h.ReplaceMin(kheap.TupleOf[T]{Row: a.RowIdx[pos[i]], Mat: i, Val: a.Val[pos[i]] * coeff(coeffs, int(i))})
			pos[i]++
		} else {
			h.Pop()
		}
	}
	return out + 1
}

// heapMergeColM is heapMergeCol's generic-monoid twin: tuples carry
// mapped values into the heap, and equal-row tuples fold through the
// monoid's combine in the deterministic Mat tie-break order, so the
// result bit pattern matches the other engines'. Coefficients never
// reach here (they are Plus-only).
//
//spkadd:noalloc per-column heap merge, generic-monoid variant
func heapMergeColM[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j int, outRows []matrix.Index, outVals []T, mon *monoidStateOf[T]) int {
	h := w.kheap(len(as))
	pos := w.pos
	// The refill step pulls from whichever matrix the heap surfaces,
	// so the per-matrix map resolution of the other kernels becomes a
	// hoisted (mapIn, mapped) pair here: unmapped matrices pay one
	// predictable nil check per element, never an indirect no-op call.
	mapIn, mapped, combine := mon.mapIn, mon.mapped, mon.combine
	for i, a := range as {
		pos[i] = a.ColPtr[j]
		if pos[i] < a.ColPtr[j+1] {
			v := a.Val[pos[i]]
			if mapIn != nil && i >= mapped {
				v = mapIn(v)
			}
			h.Push(kheap.TupleOf[T]{Row: a.RowIdx[pos[i]], Mat: int32(i), Val: v})
			pos[i]++
		}
	}
	out := -1
	for h.Len() > 0 {
		top := h.Min()
		if out >= 0 && outRows[out] == top.Row {
			outVals[out] = combine(outVals[out], top.Val)
		} else {
			out++
			outRows[out] = top.Row
			outVals[out] = top.Val
		}
		i := top.Mat
		a := as[i]
		if pos[i] < a.ColPtr[j+1] {
			v := a.Val[pos[i]]
			if mapIn != nil && int(i) >= mapped {
				v = mapIn(v)
			}
			h.ReplaceMin(kheap.TupleOf[T]{Row: a.RowIdx[pos[i]], Mat: i, Val: v})
			pos[i]++
		} else {
			h.Pop()
		}
	}
	return out + 1
}

// heapAddCol runs the heap merge against an exactly-sized output, the
// two-pass numeric phase of Algorithm 3.
func heapAddCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j int, outRows []matrix.Index, outVals []T, coeffs []T, mon *monoidStateOf[T]) {
	if heapMergeCol(w, as, j, outRows, outVals, coeffs, mon) != len(outRows) {
		panic("core: heap symbolic nnz disagrees with numeric nnz")
	}
}

// spaAddCol is Algorithm 4: accumulate into the dense SPA, then emit
// (sorted when requested) and sparsely clear.
func spaAddCol[T matrix.Number](w *workerStateOf[T], as []*matrix.CSCOf[T], j int, outRows []matrix.Index, outVals []T, sorted bool, coeffs []T, mon *monoidStateOf[T]) {
	acc := spaAccumCol(w, as, j, coeffs, mon)
	need := len(outRows)
	var r []matrix.Index
	if sorted {
		r, _ = acc.AppendSorted(outRows[:0:need], outVals[:0:need])
	} else {
		r, _ = acc.AppendUnsorted(outRows[:0:need], outVals[:0:need])
	}
	if len(r) != need || (need > 0 && &r[0] != &outRows[0]) {
		panic("core: SPA symbolic nnz disagrees with numeric nnz")
	}
	acc.Clear()
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"spkadd/internal/faults"
	"spkadd/internal/faults/leakcheck"
	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

// The chaos suite drives the streaming stack through the fault
// schedules of internal/faults and asserts the failure model of
// DESIGN.md §11: panics poison exactly the shard they hit, transient
// errors retry and recover, cancellation never corrupts a later sum,
// and nothing leaks a goroutine. CI runs it under -race (the "chaos"
// step selects on the TestChaos prefix).

// columnEqual compares one column of two matrices entry-for-entry
// (both sides sorted by construction in these tests).
func columnEqual(a, b *matrix.CSC, j int) bool {
	ar, br := a.ColRows(j), b.ColRows(j)
	av, bv := a.ColVals(j), b.ColVals(j)
	if len(ar) != len(br) {
		return false
	}
	for i := range ar {
		if ar[i] != br[i] || av[i] != bv[i] {
			return false
		}
	}
	return true
}

// TestChaosPoolPanicSubset is the tentpole's acceptance scenario: a
// schedule panics the kernels of exactly one shard; the pool recovers,
// quarantines that shard, and keeps serving the rest. Sum returns the
// healthy shards' exact columns alongside one ShardError, Health
// pinpoints the poisoned shard, and Close leaks nothing.
func TestChaosPoolPanicSubset(t *testing.T) {
	leakcheck.Begin(t)
	const shards, rows, cols, target = 4, 400, 16, 2
	// Shard zones are 1-based, so shard `target` reports key target+1.
	in := faults.New(11, faults.Rule{Point: faults.PanicInKernel, Key: target + 1})
	defer faults.Activate(in)()

	as := erInputs(12, rows, cols, 8, 71)
	want := matrix.ReferenceAdd(as)
	stats := &OpStats{}
	p := NewPool(rows, cols, PoolOptions{
		Shards: shards,
		Add:    Options{Algorithm: Hash, SortedOutput: true, Stats: stats},
	})
	for _, a := range as {
		if err := p.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.Sum()
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != target {
		t.Fatalf("Sum error = %v, want a ShardError for shard %d", err, target)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("shard error does not carry a *PanicError: %v", err)
	}
	if _, ok := pe.Value.(faults.InjectedPanic); !ok {
		t.Errorf("recovered panic value = %v, want faults.InjectedPanic", pe.Value)
	}

	// Healthy shards' columns are exact; the poisoned shard never
	// completed a reduction, so its columns are empty in the stitch.
	c0, c1 := sched.Span(cols, shards, target)
	for j := 0; j < cols; j++ {
		if j >= c0 && j < c1 {
			if got.ColNNZ(j) != 0 {
				t.Errorf("poisoned column %d has %d entries, want its last good sum (empty)", j, got.ColNNZ(j))
			}
			continue
		}
		if !columnEqual(got, want, j) {
			t.Errorf("healthy column %d differs from the one-shot reference", j)
		}
	}

	for i, h := range p.Health() {
		wantState := HealthOK
		if i == target {
			wantState = HealthPoisoned
		}
		if h.State != wantState {
			t.Errorf("Health()[%d].State = %v, want %v", i, h.State, wantState)
		}
		if i == target && h.Err == nil {
			t.Error("poisoned shard reports no error")
		}
	}
	if n := stats.PanicsRecovered.Load(); n != 1 {
		t.Errorf("PanicsRecovered = %d, want 1 (poisoned shards are never retried)", n)
	}
	if n := stats.ShardsPoisoned.Load(); n != 1 {
		t.Errorf("ShardsPoisoned = %d, want 1", n)
	}
	if stats.FaultsInjected.Load() == 0 {
		t.Error("FaultsInjected = 0, want the injected panic counted")
	}

	// Healthy shards keep accepting work after the failure.
	if err := p.Push(as[0]); err != nil {
		t.Fatalf("push after shard poisoning: %v", err)
	}
	if err := p.Close(); !errors.As(err, &se) {
		t.Errorf("Close = %v, want the sticky ShardError", err)
	}
}

// TestChaosPoolRetryRecovers: a transient reduction failure that stops
// within the retry budget is invisible in the result — exact parity,
// all shards healthy — and visible in the stats.
func TestChaosPoolRetryRecovers(t *testing.T) {
	leakcheck.Begin(t)
	// The rule fails the first two reduction attempts of every shard;
	// the third attempt (retry #2) succeeds.
	in := faults.New(12, faults.Rule{Point: faults.FailReduction, Key: faults.KeyAny, Count: 2})
	defer faults.Activate(in)()

	as := erInputs(10, 300, 8, 6, 72)
	want := matrix.ReferenceAdd(as)
	stats := &OpStats{}
	p := NewPool(300, 8, PoolOptions{
		Shards:       2,
		MaxRetries:   3,
		RetryBackoff: 50 * time.Microsecond,
		Add:          Options{Algorithm: Hash, SortedOutput: true, Stats: stats},
	})
	for _, a := range as {
		if err := p.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.Sum()
	if err != nil {
		t.Fatalf("Sum after recovered transients: %v", err)
	}
	if !got.Equal(want) {
		t.Error("sum after retried transients differs from the one-shot reference")
	}
	for i, h := range p.Health() {
		if h.State != HealthOK {
			t.Errorf("Health()[%d] = %v after successful retries, want ok", i, h.State)
		}
	}
	if n := stats.Retries.Load(); n != 2 {
		t.Errorf("Retries = %d, want 2 (Count=2 failures hit one shard's first reduction)", n)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPoolRetryExhausted: a persistent failure exhausts the
// bounded retries and degrades the shard — sticky ordinary error, not
// poisoned — while the rest of the pool stays healthy.
func TestChaosPoolRetryExhausted(t *testing.T) {
	leakcheck.Begin(t)
	in := faults.New(13, faults.Rule{Point: faults.FailReduction, Key: 1})
	defer faults.Activate(in)()

	as := erInputs(8, 300, 8, 6, 73)
	stats := &OpStats{}
	p := NewPool(300, 8, PoolOptions{
		Shards:       2,
		MaxRetries:   2,
		RetryBackoff: 50 * time.Microsecond,
		Add:          Options{Algorithm: Hash, SortedOutput: true, Stats: stats},
	})
	for _, a := range as {
		if err := p.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	_, err := p.Sum()
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("Sum = %v, want a ShardError for shard 0", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Errorf("shard error does not unwrap to the injected fault: %v", err)
	}
	h := p.Health()
	if h[0].State != HealthDegraded {
		t.Errorf("Health()[0] = %v, want degraded (ordinary error, not a panic)", h[0].State)
	}
	if h[1].State != HealthOK {
		t.Errorf("Health()[1] = %v, want ok", h[1].State)
	}
	if n := stats.Retries.Load(); n != 2 {
		t.Errorf("Retries = %d, want MaxRetries=2", n)
	}
	if n := stats.ShardsDegraded.Load(); n != 1 {
		t.Errorf("ShardsDegraded = %d, want 1", n)
	}
	if n := stats.PanicsRecovered.Load(); n != 0 {
		t.Errorf("PanicsRecovered = %d for an ordinary error, want 0", n)
	}
	if err := p.Close(); !errors.Is(err, faults.ErrInjected) {
		t.Errorf("Close = %v, want the sticky injected error", err)
	}
}

// TestChaosHealthLattice walks one shard through the full health
// state lattice: ok → degraded (retry exhaustion drops the batch) →
// ok again (the next successful reduction clears the degradation) →
// poisoned (a panic is terminal; no later success ever clears it).
// At every step the other shard stays OK and the stitched sum carries
// exactly the inputs that survived.
func TestChaosHealthLattice(t *testing.T) {
	leakcheck.Begin(t)
	const rows, cols = 300, 8
	as := erInputs(6, rows, cols, 6, 81)
	stats := &OpStats{}
	p := NewPool(rows, cols, PoolOptions{
		Shards:       2,
		MaxRetries:   1,
		RetryBackoff: 50 * time.Microsecond,
		Add:          Options{Algorithm: Hash, SortedOutput: true, Stats: stats},
	})
	defer p.Close()
	shardState := func(i int) ShardHealth { return p.Health()[i] }
	assertStates := func(step string, want0, want1 HealthState) {
		t.Helper()
		if got := shardState(0).State; got != want0 {
			t.Fatalf("%s: Health()[0] = %v, want %v", step, got, want0)
		}
		if got := shardState(1).State; got != want1 {
			t.Fatalf("%s: Health()[1] = %v, want %v", step, got, want1)
		}
	}

	// Step 1: healthy baseline.
	if err := p.Push(as[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sum(); err != nil {
		t.Fatal(err)
	}
	assertStates("baseline", HealthOK, HealthOK)

	// Step 2: exhaust the retries of shard 0 (zone key 1) — the batch
	// holding as[1] is dropped and the shard turns degraded, while
	// shard 1 absorbs its slice of as[1] normally.
	deactivate := faults.Activate(faults.New(21,
		faults.Rule{Point: faults.FailReduction, Key: 1, Count: 2}))
	if err := p.Push(as[1]); err != nil {
		t.Fatal(err)
	}
	_, err := p.Sum()
	deactivate()
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("Sum while degraded = %v, want a ShardError for shard 0", err)
	}
	assertStates("degraded", HealthDegraded, HealthOK)
	if h := shardState(0); h.Dropped == 0 {
		t.Error("degraded shard reports Dropped = 0, want the exhausted batch counted")
	}
	if n := stats.ShardsDegraded.Load(); n != 1 {
		t.Errorf("ShardsDegraded = %d, want 1", n)
	}

	// Step 3: the next successful reduction recovers the shard. The
	// dropped piece stays dropped: shard 0's columns must sum as[0] and
	// as[2] only, shard 1's all three.
	if err := p.Push(as[2]); err != nil {
		t.Fatal(err)
	}
	got, err := p.Sum()
	if err != nil {
		t.Fatalf("Sum after recovery = %v, want nil (degradation cleared)", err)
	}
	assertStates("recovered", HealthOK, HealthOK)
	if n := stats.ShardsRecovered.Load(); n != 1 {
		t.Errorf("ShardsRecovered = %d, want 1", n)
	}
	if d := shardState(0).Dropped; d == 0 {
		t.Error("recovered shard lost its Dropped record")
	}
	wantLossy := matrix.ReferenceAdd([]*matrix.CSC{as[0], as[2]})
	wantFull := matrix.ReferenceAdd(as[:3])
	c0, c1 := sched.Span(cols, 2, 0)
	for j := 0; j < cols; j++ {
		want := wantFull
		if j >= c0 && j < c1 {
			want = wantLossy
		}
		if !columnEqual(got, want, j) {
			t.Errorf("column %d after recovery differs from its expected survivors", j)
		}
	}

	// Step 4: a panic is terminal. Poison shard 0, then prove a later
	// clean reduction cannot resurrect it.
	deactivate = faults.Activate(faults.New(22,
		faults.Rule{Point: faults.PanicInKernel, Key: 1, Count: 1}))
	if err := p.Push(as[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sum(); !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("Sum after panic = %v, want a ShardError for shard 0", err)
	}
	deactivate()
	assertStates("poisoned", HealthPoisoned, HealthOK)
	if err := p.Push(as[4]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sum(); !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("Sum after poison + clean push = %v, want the sticky ShardError", err)
	}
	assertStates("poisoned stays poisoned", HealthPoisoned, HealthOK)
	var pe *PanicError
	if h := shardState(0); !errors.As(h.Err, &pe) {
		t.Errorf("poisoned shard's health error = %v, want *PanicError", h.Err)
	}
	if n := stats.ShardsPoisoned.Load(); n != 1 {
		t.Errorf("ShardsPoisoned = %d, want 1", n)
	}
	if n := stats.ShardsRecovered.Load(); n != 1 {
		t.Errorf("ShardsRecovered = %d after poisoning, want still 1", n)
	}
}

// TestChaosPushCancelUnderBackpressure: a producer blocked on a full
// shard (its reducer deliberately stalled) unblocks when its context
// ends, the failed push leaves no partial slice behind, and the final
// sum is exactly the successfully pushed prefix.
func TestChaosPushCancelUnderBackpressure(t *testing.T) {
	leakcheck.Begin(t)
	in := faults.New(14, faults.Rule{Point: faults.SlowReduction, Key: faults.KeyAny, Delay: 300 * time.Millisecond})
	deactivate := faults.Activate(in)
	defer deactivate()

	as := erInputs(4, 200, 4, 8, 74)
	// A 1-byte budget makes the high-water mark 2 bytes: any queued
	// piece blocks the next push until the (stalled) reducer drains.
	p := NewPool(200, 4, PoolOptions{
		Shards:      1,
		BudgetBytes: 1,
		Add:         Options{Algorithm: Hash, SortedOutput: true},
	})
	defer p.Close()

	var pushed []*matrix.CSC
	sawCancel := false
	for _, a := range as {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		err := p.PushContext(ctx, a)
		cancel()
		switch {
		case err == nil:
			pushed = append(pushed, a)
		case errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline):
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Errorf("canceled push does not unwrap to the context error: %v", err)
			}
			sawCancel = true
		default:
			t.Fatalf("PushContext: %v", err)
		}
	}
	if !sawCancel {
		t.Fatal("no push hit backpressure; the stall schedule did not bite")
	}
	if len(pushed) == 0 {
		t.Fatal("every push was canceled; nothing to check parity against")
	}

	// With the stall schedule gone, the pool must drain to exactly the
	// sum of the pushes that succeeded — a canceled push contributes
	// nothing, not a partial slice.
	deactivate()
	got, err := p.Sum()
	if err != nil {
		t.Fatalf("Sum after canceled pushes: %v", err)
	}
	if !got.Equal(matrix.ReferenceAdd(pushed)) {
		t.Errorf("sum after canceled pushes differs from the successful prefix (%d of %d pushed)",
			len(pushed), len(as))
	}
	if p.K() != len(pushed) {
		t.Errorf("K = %d, want %d (canceled pushes must not count)", p.K(), len(pushed))
	}
}

// TestChaosSumCancelThenParity: a SumContext abandoned at its deadline
// leaves the pool consistent — the reducers finish in the background
// and an uncanceled Sum returns the exact total.
func TestChaosSumCancelThenParity(t *testing.T) {
	leakcheck.Begin(t)
	in := faults.New(15, faults.Rule{Point: faults.SlowReduction, Key: faults.KeyAny, Count: 2, Delay: 150 * time.Millisecond})
	defer faults.Activate(in)()

	as := erInputs(8, 300, 8, 6, 75)
	p := NewPool(300, 8, PoolOptions{
		Shards: 2,
		Add:    Options{Algorithm: Hash, SortedOutput: true},
	})
	defer p.Close()
	for _, a := range as {
		if err := p.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.SumContext(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("SumContext at deadline = %v, want ErrDeadline (the stalled drain outlives 20ms)", err)
	}
	got, err := p.Sum()
	if err != nil {
		t.Fatalf("Sum after abandoned SumContext: %v", err)
	}
	if !got.Equal(matrix.ReferenceAdd(as)) {
		t.Error("sum after an abandoned SumContext differs from the one-shot reference")
	}
}

// TestChaosCloseContextDeadline: CloseContext abandoned at its
// deadline reports ErrDeadline while the shutdown completes behind it;
// the follow-up Close waits it out, and only the close after THAT is
// the lifecycle error.
func TestChaosCloseContextDeadline(t *testing.T) {
	leakcheck.Begin(t)
	in := faults.New(16, faults.Rule{Point: faults.SlowReduction, Key: faults.KeyAny, Count: 1, Delay: 150 * time.Millisecond})
	defer faults.Activate(in)()

	as := erInputs(4, 200, 4, 6, 76)
	p := NewPool(200, 4, PoolOptions{
		Shards: 1,
		Add:    Options{Algorithm: Hash, SortedOutput: true},
	})
	for _, a := range as {
		if err := p.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.CloseContext(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("CloseContext at deadline = %v, want ErrDeadline", err)
	}
	// The shutdown is still one shutdown: waiting it out is not a
	// second Close.
	if err := p.Close(); err != nil {
		t.Fatalf("Close completing the abandoned shutdown: %v", err)
	}
	if err := p.Close(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Close after a completed close = %v, want ErrPoolClosed", err)
	}
}

// TestChaosRandomizedTransients: a seeded probabilistic schedule of
// transient-only faults (failures within the retry budget, small
// stalls) must be fully absorbed — exact parity, every shard healthy.
func TestChaosRandomizedTransients(t *testing.T) {
	leakcheck.Begin(t)
	in := faults.New(0xC0FFEE,
		faults.Rule{Point: faults.FailReduction, Key: faults.KeyAny, Prob: 0.3},
		faults.Rule{Point: faults.SlowReduction, Key: faults.KeyAny, Prob: 0.2, Delay: time.Millisecond},
	)
	defer faults.Activate(in)()

	as := erInputs(24, 400, 12, 8, 77)
	want := matrix.ReferenceAdd(as)
	stats := &OpStats{}
	p := NewPool(400, 12, PoolOptions{
		Shards:       3,
		BudgetBytes:  64 * entryBytes * 3, // several reductions per shard
		MaxRetries:   16,                  // ample: P(17 straight 30% failures) ~ 1e-9
		RetryBackoff: 20 * time.Microsecond,
		Add:          Options{Algorithm: Hash, SortedOutput: true, Stats: stats},
	})
	for _, a := range as {
		if err := p.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.Sum()
	if err != nil {
		t.Fatalf("Sum under transient chaos: %v", err)
	}
	if !got.Equal(want) {
		t.Error("sum under transient-only chaos differs from the one-shot reference")
	}
	for i, h := range p.Health() {
		if h.State != HealthOK {
			t.Errorf("Health()[%d] = %v (%v), want ok", i, h.State, h.Err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if in.Fired() == 0 {
		t.Error("the schedule never fired; the test exercised nothing")
	}
}

// cancelAtCall is a context whose Err flips to canceled at the n-th
// poll: it deterministically cancels an addition at its n-th phase
// boundary, hitting the rewind paths (a consumed ping-pong flip must
// be rolled back) that a wall-clock cancellation only hits by luck.
type cancelAtCall struct {
	context.Context
	n     int
	calls int
}

func (c *cancelAtCall) Err() error {
	c.calls++
	if c.calls >= c.n {
		return context.Canceled
	}
	return nil
}

// TestChaosAccumulatorCancelEveryBoundary cancels an accumulator's
// final flush at every phase boundary in turn and checks the
// cancellation contract each time: the canceled Sum fails with
// ErrCanceled, state is untouched, and an uncanceled Sum then returns
// the exact total. Boundary sweep plus ping-pong rewind in one.
func TestChaosAccumulatorCancelEveryBoundary(t *testing.T) {
	as := erInputs(10, 300, 8, 6, 78)
	want := matrix.ReferenceAdd(as)
	one := int64(as[0].NNZ()) * entryBytes
	for boundary := 1; boundary <= 6; boundary++ {
		// A ~3-matrix budget leaves a running sum AND pending matrices
		// at Sum time, so the canceled flush has a premapped sum input
		// — the case where a mid-flight abort must not consume the
		// ping-pong buffer flip.
		ac := NewAccumulator(300, 8, 3*one, Options{Algorithm: Hash, SortedOutput: true, Threads: 1})
		for _, a := range as {
			if err := ac.Push(a); err != nil {
				t.Fatal(err)
			}
		}
		if ac.Reductions() == 0 {
			t.Fatal("budget did not force any reduction before Sum; the sweep needs a premapped sum")
		}
		ctx := &cancelAtCall{Context: context.Background(), n: boundary}
		_, err := ac.SumContext(ctx)
		if err == nil {
			// The addition has fewer boundaries than n: the whole flush
			// ran before the fake context fired. The sweep is done.
			if !mustSum(t, ac).Equal(want) {
				t.Errorf("boundary %d: uncanceled sum differs from reference", boundary)
			}
			break
		}
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("boundary %d: SumContext = %v, want ErrCanceled wrapping context.Canceled", boundary, err)
		}
		got, err := ac.Sum()
		if err != nil {
			t.Fatalf("boundary %d: Sum after canceled SumContext: %v", boundary, err)
		}
		if !got.Equal(want) {
			t.Errorf("boundary %d: sum after canceled SumContext differs from reference", boundary)
		}
	}
}

func mustSum(t *testing.T, ac *Accumulator) *matrix.CSC {
	t.Helper()
	got, err := ac.Sum()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestChaosAccumulatorPanicSticky: a panic in an accumulator reduction
// converts to a *PanicError, quarantines the workspace, and poisons
// the accumulator — every later call reports the same error.
func TestChaosAccumulatorPanicSticky(t *testing.T) {
	leakcheck.Begin(t)
	in := faults.New(17, faults.Rule{Point: faults.PanicInKernel, Key: 0, Count: 1})
	defer faults.Activate(in)()

	as := erInputs(4, 200, 4, 6, 79)
	stats := &OpStats{}
	ac := NewAccumulator(200, 4, 1<<20, Options{Algorithm: Hash, SortedOutput: true, Threads: 1, Stats: stats})
	for _, a := range as {
		if err := ac.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	_, err := ac.Sum()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Sum over a panicking kernel = %v, want *PanicError", err)
	}
	if _, ok := pe.Value.(faults.InjectedPanic); !ok {
		t.Errorf("panic value = %v, want faults.InjectedPanic", pe.Value)
	}
	if n := stats.PanicsRecovered.Load(); n != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", n)
	}
	// Sticky: the rule is spent (Count=1), but the accumulator must
	// not run again on a quarantined workspace.
	if err2 := ac.Push(as[0]); !isPanicErr(err2) {
		t.Errorf("Push after a panic = %v, want the sticky *PanicError", err2)
	}
	if _, err2 := ac.Sum(); !isPanicErr(err2) {
		t.Errorf("Sum after a panic = %v, want the sticky *PanicError", err2)
	}
}

// TestChaosAddContextPreCanceled: the lowest-level context entry point
// rejects an already-canceled context before doing any work.
func TestChaosAddContextPreCanceled(t *testing.T) {
	as := erInputs(4, 100, 4, 4, 80)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AddContext(ctx, as, Options{Algorithm: Hash})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("AddContext with canceled ctx = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	// The same workspace path still works uncanceled.
	got, err := AddContext(context.Background(), as, Options{Algorithm: Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(matrix.ReferenceAdd(as)) {
		t.Error("uncanceled AddContext differs from reference")
	}
}

package core

import (
	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

// addIncremental implements Algorithm 1: B <- A1, then B <- B + A_i
// for i = 2..k. The i-th step costs the cumulative nnz, giving the
// O(k^2 nd) behaviour of Table I.
func addIncremental[T matrix.Number](as []*matrix.CSCOf[T], opt OptionsOf[T], ex *sched.Executor, add pairAdder[T]) (*matrix.CSCOf[T], error) {
	b := as[0]
	owned := false // don't mutate the caller's first matrix
	for i := 1; i < len(as); i++ {
		var err error
		b, err = add(b, as[i], opt, ex)
		if err != nil {
			return nil, err
		}
		owned = true
	}
	if !owned {
		b = b.Clone()
	}
	return b, nil
}

// addTree implements the balanced 2-way tree of Fig 1(c): inputs at
// the leaves, pairwise additions up lg k levels, O(knd lg k) work.
func addTree[T matrix.Number](as []*matrix.CSCOf[T], opt OptionsOf[T], ex *sched.Executor, add pairAdder[T]) (*matrix.CSCOf[T], error) {
	level := make([]*matrix.CSCOf[T], len(as))
	copy(level, as)
	owned := make([]bool, len(as)) // whether level[i] is an intermediate we created
	for len(level) > 1 {
		half := (len(level) + 1) / 2
		next := make([]*matrix.CSCOf[T], half)
		nextOwned := make([]bool, half)
		for i := 0; i < len(level)/2; i++ {
			var err error
			next[i], err = add(level[2*i], level[2*i+1], opt, ex)
			if err != nil {
				return nil, err
			}
			nextOwned[i] = true
		}
		if len(level)%2 == 1 {
			next[half-1] = level[len(level)-1]
			nextOwned[half-1] = owned[len(level)-1]
		}
		level, owned = next, nextOwned
	}
	if !owned[0] {
		return level[0].Clone(), nil
	}
	return level[0], nil
}

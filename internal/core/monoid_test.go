package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spkadd/internal/generate"
	"spkadd/internal/matrix"
	"spkadd/internal/ops"
)

// The monoid parity suite: every built-in monoid must produce
// bit-identical results across {Hash, SPA, Heap} × {TwoPass, Fused,
// UpperBound} with SortedOutput, all matching a dense reference that
// combines in the same deterministic per-cell order (matrix order —
// the order the hash insert sequence, the SPA insert sequence and the
// heap's Mat tie-break all share).

// monoidReference folds the inputs cell by cell with the monoid,
// combining colliding entries in matrix order (and position order
// within a matrix), exactly like every engine.
func monoidReference(as []*matrix.CSC, m *ops.Monoid) *matrix.CSC {
	rows, cols := as[0].Rows, as[0].Cols
	present := make([]bool, rows*cols)
	vals := make([]matrix.Value, rows*cols)
	for _, a := range as {
		for j := 0; j < cols; j++ {
			rr, vv := a.ColRows(j), a.ColVals(j)
			for p := range rr {
				v := vv[p]
				if m.MapInput != nil {
					v = m.MapInput(v)
				}
				cell := int(rr[p])*cols + j
				if present[cell] {
					vals[cell] = m.Combine(vals[cell], v)
				} else {
					present[cell], vals[cell] = true, v
				}
			}
		}
	}
	out := &matrix.CSC{Rows: rows, Cols: cols, ColPtr: make([]int64, cols+1)}
	for j := 0; j < cols; j++ {
		out.ColPtr[j+1] = out.ColPtr[j]
		for r := 0; r < rows; r++ {
			cell := r*cols + j
			if !present[cell] || (m.DropIdentity && vals[cell] == m.Identity) {
				continue
			}
			out.RowIdx = append(out.RowIdx, matrix.Index(r))
			out.Val = append(out.Val, vals[cell])
			out.ColPtr[j+1]++
		}
	}
	return out
}

func monoidInputs() map[string][]*matrix.CSC {
	return map[string][]*matrix.CSC{
		"ER":   erInputs(7, 500, 20, 14, 171),
		"RMAT": generate.RMATCollection(5, generate.Opts{Rows: 400, Cols: 16, NNZPerCol: 10, Seed: 172}, generate.Graph500),
	}
}

// bitIdentical reports exact structural and value-bit equality,
// stricter than Equal (which compares columns as sets).
func bitIdentical(a, b *matrix.CSC) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for j := range a.ColPtr {
		if a.ColPtr[j] != b.ColPtr[j] {
			return false
		}
	}
	for p := range a.RowIdx {
		if a.RowIdx[p] != b.RowIdx[p] || a.Val[p] != b.Val[p] {
			return false
		}
	}
	return true
}

func TestMonoidEngineParity(t *testing.T) {
	for pattern, as := range monoidInputs() {
		for _, m := range ops.Builtins {
			want := monoidReference(as, m)
			for _, alg := range []Algorithm{Hash, SPA, Heap} {
				var first *matrix.CSC
				for _, p := range PhasesPolicies {
					name := fmt.Sprintf("%s/%s/%v/%v", pattern, m.Name, alg, p)
					got, err := Add(as, Options{
						Algorithm: alg, Phases: p, Monoid: m,
						SortedOutput: true, Threads: 3,
					})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if err := got.Validate(); err != nil {
						t.Fatalf("%s: invalid output: %v", name, err)
					}
					if !got.Equal(want) {
						t.Errorf("%s: differs from dense reference", name)
					}
					if first == nil {
						first = got
					} else if !bitIdentical(got, first) {
						t.Errorf("%s: not bit-identical to the first engine's result", name)
					}
				}
			}
		}
	}
}

// TestMonoidSlidingHash covers the remaining k-way algorithm: sliding
// hash keeps the two-pass driver but supports every monoid, including
// under forced multi-part partitioning.
func TestMonoidSlidingHash(t *testing.T) {
	as := erInputs(6, 300, 12, 20, 173)
	for _, m := range ops.Builtins {
		want := monoidReference(as, m)
		for _, maxEntries := range []int{0, 7} {
			got, err := Add(as, Options{
				Algorithm: SlidingHash, Monoid: m, SortedOutput: true,
				MaxTableEntries: maxEntries, Threads: 2,
			})
			if err != nil {
				t.Fatalf("%s/max=%d: %v", m.Name, maxEntries, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s/max=%d: differs from dense reference", m.Name, maxEntries)
			}
		}
	}
}

// TestMonoidSingleInput: k=1 keeps the copy shortcut for Plus, but a
// mapping monoid must still transform values (Count of one snapshot
// is all ones) — so non-Plus single-input calls run the engines.
func TestMonoidSingleInput(t *testing.T) {
	a := erInputs(1, 200, 8, 6, 174)
	for _, m := range ops.Builtins {
		want := monoidReference(a, m)
		got, err := Add(a, Options{Monoid: m, SortedOutput: true})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: single-input result differs from reference", m.Name)
		}
	}
}

// TestMonoidDropIdentity: the drop-identity output policy removes
// exact-identity results on the single-pass engines and is rejected
// where values are not seen before output sizing.
func TestMonoidDropIdentity(t *testing.T) {
	plusDrop := &ops.Monoid{
		Name:         "PlusDrop",
		Identity:     0,
		Combine:      func(a, b matrix.Value) matrix.Value { return a + b },
		DropIdentity: true,
	}
	a := matrix.FromTriples(6, 2, []matrix.Triple{
		{Row: 1, Col: 0, Val: 3}, {Row: 4, Col: 0, Val: -2}, {Row: 2, Col: 1, Val: 7},
	})
	b := matrix.FromTriples(6, 2, []matrix.Triple{
		{Row: 1, Col: 0, Val: -3}, {Row: 4, Col: 0, Val: 5}, {Row: 5, Col: 1, Val: 1},
	})
	as := []*matrix.CSC{a, b}
	want := monoidReference(as, plusDrop) // row 1 cancels and is dropped
	if want.NNZ() != 3 {
		t.Fatalf("reference nnz = %d, want 3 (one cancellation dropped)", want.NNZ())
	}
	for _, alg := range []Algorithm{Hash, SPA, Heap} {
		for _, p := range []Phases{PhasesAuto, PhasesFused, PhasesUpperBound} {
			got, err := Add(as, Options{Algorithm: alg, Phases: p, Monoid: plusDrop, SortedOutput: true})
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, p, err)
			}
			if !got.Equal(want) {
				t.Errorf("%v/%v: identity entries not dropped (nnz=%d)", alg, p, got.NNZ())
			}
		}
		if _, err := Add(as, Options{Algorithm: alg, Phases: PhasesTwoPass, Monoid: plusDrop}); !errors.Is(err, ErrMonoidUnsupported) {
			t.Errorf("%v: DropIdentity on the two-pass driver: %v, want ErrMonoidUnsupported", alg, err)
		}
	}
	if _, err := Add(as, Options{Algorithm: SlidingHash, Monoid: plusDrop}); !errors.Is(err, ErrMonoidUnsupported) {
		t.Errorf("SlidingHash with DropIdentity: %v, want ErrMonoidUnsupported", err)
	}
}

// TestMonoidValidation exercises the centralized option validation:
// the same typed errors must come back from every entry point.
func TestMonoidValidation(t *testing.T) {
	as := erInputs(3, 100, 6, 4, 175)
	if _, err := AddScaled(as, []matrix.Value{1, 2, 3}, Options{Monoid: ops.Count}); !errors.Is(err, ErrCoeffsRequirePlus) {
		t.Errorf("coeffs+Count: %v, want ErrCoeffsRequirePlus", err)
	}
	for _, alg := range []Algorithm{TwoWayIncremental, TwoWayTree, MapIncremental, MapTree} {
		if _, err := Add(as, Options{Algorithm: alg, Monoid: ops.Min}); !errors.Is(err, ErrMonoidUnsupported) {
			t.Errorf("%v+Min: %v, want ErrMonoidUnsupported", alg, err)
		}
	}
	if _, err := Add(as, Options{Monoid: &ops.Monoid{Name: "broken"}}); !errors.Is(err, ErrMonoidUnsupported) {
		t.Error("monoid without Combine accepted")
	}
	// Sortedness requirements hold on the generic path too.
	unsorted := []*matrix.CSC{shuffledCopy(as[0]), shuffledCopy(as[1])}
	if _, err := Add(unsorted, Options{Algorithm: Heap, Monoid: ops.Max}); !errors.Is(err, ErrUnsortedInput) {
		t.Errorf("Heap+Max over unsorted: %v, want ErrUnsortedInput", err)
	}
	// The same checks guard the streaming entry points (Accumulator
	// reductions funnel through the same validate).
	ac := NewAccumulator(100, 6, 0, Options{Algorithm: TwoWayTree, Monoid: ops.Any})
	for _, a := range as {
		if err := ac.Push(a); err != nil && !errors.Is(err, ErrMonoidUnsupported) {
			t.Fatalf("Push: %v", err)
		}
	}
	if _, err := ac.Sum(); !errors.Is(err, ErrMonoidUnsupported) {
		t.Errorf("Accumulator 2-way+Any Sum: %v, want ErrMonoidUnsupported", err)
	}
}

// shuffledCopy returns a clone with each column's entries rotated so
// the matrix is no longer column-sorted (but identical as a set).
func shuffledCopy(a *matrix.CSC) *matrix.CSC {
	b := a.Clone()
	for j := 0; j < b.Cols; j++ {
		lo, hi := b.ColPtr[j], b.ColPtr[j+1]
		if hi-lo < 2 {
			continue
		}
		r0, v0 := b.RowIdx[lo], b.Val[lo]
		copy(b.RowIdx[lo:hi-1], b.RowIdx[lo+1:hi])
		copy(b.Val[lo:hi-1], b.Val[lo+1:hi])
		b.RowIdx[hi-1], b.Val[hi-1] = r0, v0
	}
	return b
}

// TestMonoidStats: the resolved monoid is observable through OpStats
// like the resolved engine.
func TestMonoidStats(t *testing.T) {
	as := erInputs(3, 100, 6, 4, 176)
	var st OpStats
	if _, ok := st.MonoidUsed(); ok {
		t.Error("MonoidUsed reported a monoid before any dispatch")
	}
	if _, err := Add(as, Options{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if m, ok := st.MonoidUsed(); !ok || m != ops.Plus {
		t.Errorf("MonoidUsed = %v,%v want Plus (nil resolves to Plus)", m, ok)
	}
	if _, err := Add(as, Options{Monoid: ops.Count, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if m, ok := st.MonoidUsed(); !ok || m != ops.Count {
		t.Errorf("MonoidUsed = %v,%v want Count", m, ok)
	}
}

// TestAccumulatorMonoid: streaming reductions must match the one-shot
// result for mapped monoids — the premapped running-sum prefix is what
// keeps Count counting instead of collapsing back to 1 every flush.
func TestAccumulatorMonoid(t *testing.T) {
	as := erInputs(9, 300, 10, 8, 177)
	for _, m := range []*ops.Monoid{ops.Count, ops.Any, ops.Min, ops.Max} {
		want := monoidReference(as, m)
		// A 1-byte budget forces a reduction on almost every push, so
		// the sum re-enters many reductions.
		ac := NewAccumulator(300, 10, 1, Options{Algorithm: Hash, Monoid: m})
		for _, a := range as {
			if err := ac.Push(a); err != nil {
				t.Fatalf("%s: Push: %v", m.Name, err)
			}
		}
		got, err := ac.Sum()
		if err != nil {
			t.Fatalf("%s: Sum: %v", m.Name, err)
		}
		if ac.Reductions() < 2 {
			t.Fatalf("%s: only %d reductions; budget did not force streaming", m.Name, ac.Reductions())
		}
		if !got.Equal(want) {
			t.Errorf("%s: streamed result differs from one-shot reference", m.Name)
		}
	}
}

// TestPoolMonoid is TestAccumulatorMonoid for the sharded pool: each
// shard's running sum is premapped in its reductions.
func TestPoolMonoid(t *testing.T) {
	as := erInputs(8, 256, 12, 6, 178)
	for _, m := range []*ops.Monoid{ops.Count, ops.Any} {
		want := monoidReference(as, m)
		p := NewPool(256, 12, PoolOptions{
			Shards:      3,
			BudgetBytes: 3, // 1 byte per shard: reduce on nearly every push
			Add:         Options{Algorithm: Hash, Monoid: m},
		})
		for _, a := range as {
			if err := p.Push(a); err != nil {
				t.Fatalf("%s: Push: %v", m.Name, err)
			}
		}
		got, err := p.Sum()
		if err != nil {
			t.Fatalf("%s: Sum: %v", m.Name, err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("%s: Close: %v", m.Name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: pooled result differs from one-shot reference", m.Name)
		}
	}
}

// --- Random-monoid property test and fuzz target ---

// propOps are the candidate combine operations, all associative and
// commutative (multiplication stays exact on the small integer values
// propInputs generates).
var propOps = []struct {
	name string
	f    func(a, b matrix.Value) matrix.Value
}{
	{"sum", func(a, b matrix.Value) matrix.Value { return a + b }},
	{"min", func(a, b matrix.Value) matrix.Value { return min(a, b) }},
	{"max", func(a, b matrix.Value) matrix.Value { return max(a, b) }},
	{"prod", func(a, b matrix.Value) matrix.Value { return a * b }},
}

// propInputs builds k random matrices with small integer values, so
// every candidate op is exact whatever the combine order.
func propInputs(rng *rand.Rand, k, rows, cols, d int) []*matrix.CSC {
	as := make([]*matrix.CSC, k)
	for i := range as {
		var ts []matrix.Triple
		for j := 0; j < cols; j++ {
			for e := 0; e < d; e++ {
				ts = append(ts, matrix.Triple{
					Row: matrix.Index(rng.Intn(rows)),
					Col: matrix.Index(j),
					Val: matrix.Value(rng.Intn(7) + 1),
				})
			}
		}
		as[i] = matrix.FromTriples(rows, cols, ts)
	}
	return as
}

// checkMonoidParity asserts that every k-way algorithm × engine
// produces the identical (bit-for-bit, sorted) result under m, and
// that it matches the dense reference.
func checkMonoidParity(t *testing.T, as []*matrix.CSC, m *ops.Monoid) {
	t.Helper()
	want := monoidReference(as, m)
	var first *matrix.CSC
	for _, alg := range []Algorithm{Hash, SPA, Heap} {
		for _, p := range PhasesPolicies {
			got, err := Add(as, Options{Algorithm: alg, Phases: p, Monoid: m, SortedOutput: true, Threads: 2})
			if err != nil {
				t.Fatalf("%s/%v/%v: %v", m.Name, alg, p, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s/%v/%v: differs from dense reference", m.Name, alg, p)
			}
			if first == nil {
				first = got
			} else if !bitIdentical(got, first) {
				t.Fatalf("%s/%v/%v: engines disagree bit-for-bit", m.Name, alg, p)
			}
		}
	}
	// SlidingHash (two-pass native driver) must agree as a set too.
	got, err := Add(as, Options{Algorithm: SlidingHash, Monoid: m, SortedOutput: true, MaxTableEntries: 5})
	if err != nil {
		t.Fatalf("%s/SlidingHash: %v", m.Name, err)
	}
	if !got.Equal(want) {
		t.Fatalf("%s/SlidingHash: differs from dense reference", m.Name)
	}
}

// propMonoid builds one random associative-commutative monoid.
func propMonoid(opIdx int, mapped, drop bool) *ops.Monoid {
	op := propOps[opIdx%len(propOps)]
	m := &ops.Monoid{
		Name:    fmt.Sprintf("prop-%s-mapped=%v-drop=%v", op.name, mapped, drop),
		Combine: op.f,
	}
	switch op.name {
	case "min":
		m.Identity = 1 << 30
	case "max":
		m.Identity = -(1 << 30)
	case "prod":
		m.Identity = 1
	}
	if mapped {
		m.MapInput = func(matrix.Value) matrix.Value { return 1 }
	}
	m.DropIdentity = drop
	return m
}

// TestMonoidPropertyRandom is the deterministic property test: random
// associative-commutative monoids over random inputs produce
// engine-identical results with SortedOutput.
func TestMonoidPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(428))
	for trial := 0; trial < 24; trial++ {
		k := rng.Intn(5) + 2
		as := propInputs(rng, k, rng.Intn(150)+20, rng.Intn(10)+2, rng.Intn(6)+1)
		m := propMonoid(rng.Intn(len(propOps)), rng.Intn(2) == 1, false)
		checkMonoidParity(t, as, m)
	}
}

// FuzzMonoidEngineParity is the fuzzing form of the property test:
// the fuzzer picks the monoid shape and the input distribution.
func FuzzMonoidEngineParity(f *testing.F) {
	f.Add(uint8(0), false, int64(1), uint8(3), uint8(4))
	f.Add(uint8(1), true, int64(2), uint8(5), uint8(1))
	f.Add(uint8(3), false, int64(3), uint8(2), uint8(7))
	f.Fuzz(func(t *testing.T, opIdx uint8, mapped bool, seed int64, k, d uint8) {
		if k == 0 || k > 12 || d == 0 || d > 16 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		as := propInputs(rng, int(k), 100, 8, int(d))
		checkMonoidParity(t, as, propMonoid(int(opIdx), mapped, false))
	})
}

// TestMonoidReferenceSane pins the reference helper itself on a tiny
// hand-checked example, so the parity suite is not comparing two
// implementations of the same mistake.
func TestMonoidReferenceSane(t *testing.T) {
	a := matrix.FromTriples(4, 1, []matrix.Triple{{Row: 0, Col: 0, Val: 5}, {Row: 2, Col: 0, Val: 3}})
	b := matrix.FromTriples(4, 1, []matrix.Triple{{Row: 2, Col: 0, Val: 8}})
	as := []*matrix.CSC{a, b}
	check := func(m *ops.Monoid, wantRows []matrix.Index, wantVals []matrix.Value) {
		t.Helper()
		got := monoidReference(as, m)
		if int(got.NNZ()) != len(wantRows) {
			t.Fatalf("%s: nnz = %d, want %d", m.Name, got.NNZ(), len(wantRows))
		}
		rows, vals := got.ColRows(0), got.ColVals(0)
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return rows[idx[x]] < rows[idx[y]] })
		for i, p := range idx {
			if rows[p] != wantRows[i] || vals[p] != wantVals[i] {
				t.Fatalf("%s: entry %d = (%d, %v), want (%d, %v)", m.Name, i, rows[p], vals[p], wantRows[i], wantVals[i])
			}
		}
	}
	check(ops.Plus, []matrix.Index{0, 2}, []matrix.Value{5, 11})
	check(ops.Min, []matrix.Index{0, 2}, []matrix.Value{5, 3})
	check(ops.Max, []matrix.Index{0, 2}, []matrix.Value{5, 8})
	check(ops.Any, []matrix.Index{0, 2}, []matrix.Value{1, 1})
	check(ops.Count, []matrix.Index{0, 2}, []matrix.Value{1, 2})
}

// Package core implements the paper's SpKAdd operation: computing
// B = Σ_{i=1..k} A_i over k sparse CSC matrices, with the full family
// of algorithms evaluated in the paper — 2-way incremental and 2-way
// tree additions (Algorithm 1 and its balanced variant), map-based
// 2-way baselines standing in for MKL, and the k-way heap, SPA, hash
// and sliding-hash algorithms (Algorithms 3-8).
//
// All algorithms are parallel over output columns with thread-private
// data structures and no synchronization inside a column (§III-A).
package core

import (
	"sync/atomic"
	"time"
	"unsafe"

	"spkadd/internal/hashtab"
	"spkadd/internal/matrix"
	"spkadd/internal/ops"
	"spkadd/internal/sched"
	"spkadd/internal/tuner"
)

// Algorithm selects the SpKAdd implementation.
type Algorithm int

const (
	// Auto picks between Hash and SlidingHash from the estimated
	// hash-table footprint versus CacheBytes (the paper's guidance in
	// Fig 2: hash-family algorithms dominate, sliding once tables
	// spill out of the last-level cache).
	Auto Algorithm = iota
	// TwoWayIncremental adds matrices in pairs, left to right
	// (Algorithm 1): O(k^2 nd) work on ER inputs.
	TwoWayIncremental
	// TwoWayTree adds matrices pairwise up a balanced binary tree:
	// O(knd lg k) work.
	TwoWayTree
	// MapIncremental is TwoWayIncremental with a generic map-based
	// pair addition, the stand-in for the paper's MKL baseline rows.
	MapIncremental
	// MapTree is TwoWayTree over the map-based pair addition.
	MapTree
	// Heap is the k-way min-heap merge (Algorithm 3): O(knd lg k)
	// work, O(knd) I/O, O(Tk) memory. Requires sorted inputs.
	Heap
	// SPA is the sparse-accumulator algorithm (Algorithm 4): O(knd)
	// work, O(Tm) memory. Accepts unsorted inputs.
	SPA
	// Hash is the hash-table algorithm (Algorithm 5 with the symbolic
	// phase of Algorithm 6): O(knd) work, O(T·nnz(B(:,j))) memory.
	// Accepts unsorted inputs.
	Hash
	// SlidingHash is Hash with tables capped to the last-level cache,
	// sliding over row ranges (Algorithms 7-8). Requires sorted
	// inputs for the binary-search row partitioning.
	SlidingHash
)

var algoNames = map[Algorithm]string{
	Auto:              "Auto",
	TwoWayIncremental: "2-way Incremental",
	TwoWayTree:        "2-way Tree",
	MapIncremental:    "Map Incremental",
	MapTree:           "Map Tree",
	Heap:              "Heap",
	SPA:               "SPA",
	Hash:              "Hash",
	SlidingHash:       "Sliding Hash",
}

// String returns the display name used in the paper's tables.
func (a Algorithm) String() string {
	if s, ok := algoNames[a]; ok {
		return s
	}
	return "Unknown"
}

// Algorithms lists every concrete implementation (everything but
// Auto), in the row order of the paper's Tables III-IV.
var Algorithms = []Algorithm{
	TwoWayIncremental, MapIncremental, TwoWayTree, MapTree,
	Heap, SPA, Hash, SlidingHash,
}

// Schedule selects how output columns are distributed over workers.
type Schedule int

const (
	// ScheduleWeighted partitions columns by per-column nonzero
	// weight (the paper's load-balancing: input nnz in the symbolic
	// phase, output nnz in the addition phase). The default.
	ScheduleWeighted Schedule = iota
	// ScheduleStatic uses equal-width contiguous column blocks.
	ScheduleStatic
	// ScheduleDynamic uses atomic chunk claiming.
	ScheduleDynamic
	// ScheduleWeightedStealing starts from the same contiguous
	// weighted ranges as ScheduleWeighted, but workers claim their
	// range in geometrically shrinking chunks and idle workers steal
	// the suffix half of the most-loaded peer's remaining range. The
	// weighted partition balances predicted work; on RMAT-skewed
	// columns the prediction error concentrates in a few workers and
	// the phase waits for the slowest of them — stealing closes that
	// tail without ScheduleDynamic's per-chunk shared-counter traffic
	// on well-predicted (uniform) inputs.
	ScheduleWeightedStealing
)

var scheduleNames = map[Schedule]string{
	ScheduleWeighted:         "Weighted",
	ScheduleStatic:           "Static",
	ScheduleDynamic:          "Dynamic",
	ScheduleWeightedStealing: "WeightedStealing",
}

// String returns the schedule's display name.
func (s Schedule) String() string {
	if n, ok := scheduleNames[s]; ok {
		return n
	}
	return "Unknown"
}

// Schedules lists every scheduling strategy.
var Schedules = []Schedule{
	ScheduleWeighted, ScheduleStatic, ScheduleDynamic, ScheduleWeightedStealing,
}

// Phases selects the execution engine that drives the k-way
// algorithms (Heap, SPA, Hash): how many passes the driver takes over
// the input matrices. The paper's lower bound is O(knd) memory
// traffic; the classic two-phase driver reads every input twice (once
// to size the output, once to fill it), while the fused and
// upper-bound engines read each input exactly once. SlidingHash and
// the 2-way baselines always use their native drivers regardless of
// this setting. See DESIGN.md for the full engine comparison.
type Phases int

const (
	// PhasesAuto picks an engine from the estimated duplicate rate and
	// memory headroom: PhasesUpperBound when duplicates are rare (the
	// staging buffer stays close to the output size), PhasesFused
	// otherwise, and PhasesTwoPass when the fused engine's input-sized
	// hash tables would spill the last-level cache or the algorithm has
	// no single-pass engine.
	PhasesAuto Phases = iota
	// PhasesTwoPass is the classic driver of §III-A: a symbolic phase
	// computes nnz(B(:,j)) for every column, the output is allocated
	// exactly, and a numeric phase fills it — reading all inputs twice.
	PhasesTwoPass
	// PhasesFused reads each input once: every worker accumulates its
	// columns' results into a growable per-worker arena of
	// (rows, values) chunks, then a parallel stitch assembles the final
	// CSC from the per-column extents. Peak extra memory is about the
	// output size.
	PhasesFused
	// PhasesUpperBound reads each input once into a staging buffer
	// whose columns are sized by the Σ_i nnz(A_i(:,j)) upper bound,
	// then compacts in parallel. Cheapest when duplicates are rare
	// (staging ≈ output); peak extra memory is the total input size.
	PhasesUpperBound
)

var phasesNames = map[Phases]string{
	PhasesAuto:       "Auto",
	PhasesTwoPass:    "TwoPass",
	PhasesFused:      "Fused",
	PhasesUpperBound: "UpperBound",
}

// String returns the engine's display name.
func (p Phases) String() string {
	if s, ok := phasesNames[p]; ok {
		return s
	}
	return "Unknown"
}

// PhasesPolicies lists every concrete engine (everything but Auto).
var PhasesPolicies = []Phases{PhasesTwoPass, PhasesFused, PhasesUpperBound}

const (
	// BytesPerSymbolicEntry is b in Algorithm 7: a symbolic hash-table
	// slot holds one 32-bit row index.
	BytesPerSymbolicEntry = 4
	// BytesPerAddEntry is b in Algorithm 8 for the default float64
	// element type: an addition-phase slot holds a 32-bit row index and
	// a 64-bit value. Other element types size their slots with
	// entryBytesOf — float32 halves the value bytes, bool carries one.
	BytesPerAddEntry = 12
	// DefaultCacheBytes is the default last-level cache budget M
	// (the paper's Intel Skylake has a 32MB LLC).
	DefaultCacheBytes = 32 << 20
)

// OptionsOf configure an SpKAdd call over element type T. The zero
// value is valid for the arithmetic types: Auto algorithm, GOMAXPROCS
// threads, weighted scheduling, sorted output off, Skylake-like cache
// budget. Boolean matrices have no "+" and must select a monoid
// explicitly (ops.AnyFor[bool]() is the usual choice).
type OptionsOf[T matrix.Number] struct {
	Algorithm Algorithm
	// Threads is the worker count T; <1 means GOMAXPROCS.
	Threads int
	// SortedOutput requests ascending row order within each output
	// column. Heap, SPA, sliding-hash and the 2-way algorithms
	// produce sorted output essentially for free; Hash pays a
	// per-column sort (the paper's sorted-vs-unsorted hash gap in
	// Fig 6).
	SortedOutput bool
	// CacheBytes is M, the total last-level cache shared by the
	// workers, used by SlidingHash and Auto. <=0 means
	// DefaultCacheBytes.
	CacheBytes int64
	// LoadFactor bounds hash-table occupancy. The valid range is
	// (0, 1]; <=0 means 0.5 and values above 1 are clamped to 1.0
	// (tables are power-of-two sized, so even at 1.0 they keep at
	// least one empty slot and probing terminates). Lower values buy
	// O(1) expected probing at the cost of memory; see the load-factor
	// ablation.
	LoadFactor float64
	// Schedule selects the column scheduling strategy.
	Schedule Schedule
	// Executor, when non-nil, runs every parallel phase of the call on
	// the given resident worker pool instead of the workspace-owned
	// default. Sharing one budgeted Executor across many Adders,
	// Accumulators or a Pool's reductions puts all their parallel
	// regions under one global concurrency budget: regions serialize
	// on the shared pool and never exceed its worker budget, instead
	// of each caller parking (or, worse, spawning) its own
	// GOMAXPROCS-sized worker set. nil selects the pooled default —
	// the executor resident in the call's Workspace, recycled across
	// calls exactly like the rest of the scratch.
	Executor *sched.Executor
	// Phases selects the execution engine for the k-way algorithms:
	// the classic two-pass symbolic+numeric driver, the single-pass
	// fused arena engine, or the single-pass upper-bound engine. The
	// zero value (PhasesAuto) picks one from the duplicate-rate
	// estimate and memory headroom. Ignored by SlidingHash and the
	// 2-way baselines, which keep their native drivers.
	Phases Phases
	// Monoid selects the combine operation folded over colliding
	// entries: nil (or ops.PlusFor[T]()) means T's addition, the
	// paper's operation, served by specialized inlined kernels; any
	// other monoid — built-in Min/Max/Any/Count or user-defined — runs
	// the same engines through the generic combine path. Non-Plus
	// monoids are supported by the k-way algorithms only (the 2-way
	// baselines hardwire pairwise "+") and reject coefficients:
	// coeffs·A distributes over + but not over min, max or counting.
	// Boolean element types have no Plus, so a nil Monoid is a
	// validation error for them. See internal/ops and DESIGN.md §8.
	Monoid *ops.MonoidOf[T]
	// MaxTableEntries, when positive, caps sliding-hash tables at the
	// given entry count instead of deriving the cap from CacheBytes.
	// This is the knob behind the paper's Fig 4 table-size sweeps.
	MaxTableEntries int
	// Stats, when non-nil, accumulates work counters (hash probes,
	// heap ops, SPA touches, entries moved) for complexity tests and
	// the ablation benches.
	Stats *OpStats
	// Tuner, when non-nil, consults the self-tuning planner during
	// plan resolution: the call's workload signature (quantized k,
	// column density, duplicate rate, skew, sortedness, monoid path,
	// threads) is looked up in the tuner's learned cost table and the
	// cheapest observed {Algorithm, Phases, Schedule} combination the
	// caller's options admit replaces the static heuristics' guess,
	// with the measured cost fed back after the call. Explicit
	// constraints always win: a pinned Algorithm, Phases or
	// Static/Dynamic Schedule restricts (or disables) what the tuner
	// may choose. One tuner is safe to share across goroutines,
	// Adders, a Pool's shards and a server's tenants — sharing is the
	// point, the table converges faster. See internal/tuner and
	// DESIGN.md §14.
	Tuner *tuner.Tuner

	// faultKey is the fault-injection zone the call's kernel sites
	// report: a Pool shard sets its 1-based shard index so chaos
	// schedules can target one shard, direct calls use zone 0.
	// Unexported — fault targeting is test machinery, not public API.
	faultKey int64
}

// Options are the float64 call options, the paper's configuration.
type Options = OptionsOf[matrix.Value]

func (o OptionsOf[T]) cacheBytes() int64 {
	if o.CacheBytes <= 0 {
		return DefaultCacheBytes
	}
	return o.CacheBytes
}

func (o OptionsOf[T]) loadFactor() float64 {
	return hashtab.ClampLoadFactor(o.LoadFactor)
}

// entryBytesOf is the in-memory footprint of one stored (row, value)
// entry of element type T: a 4-byte index plus T's width — 12 bytes
// for float64/int64, 8 for float32/int32, 5 for bool. It parameterizes
// every byte-budget heuristic (engine selection, streaming budgets,
// pool shares) so float32 workloads really see twice the entries per
// cache line and per budget.
func entryBytesOf[T matrix.Number]() int64 {
	var z T
	return BytesPerSymbolicEntry + int64(unsafe.Sizeof(z))
}

// OpStats aggregates work counters across workers. All fields are
// updated atomically at phase boundaries, so the overhead inside
// kernels is zero.
type OpStats struct {
	HashProbes atomic.Int64 //spkadd:atomic
	HeapOps    atomic.Int64 //spkadd:atomic
	SPATouches atomic.Int64 //spkadd:atomic
	// EntriesMoved counts entries written to materialized matrix
	// storage: the intermediate sums of the 2-way algorithms and the
	// final output. Scratch structures (hash tables, SPAs, the
	// single-pass engines' arena/staging buffers) don't count, so the
	// counter is comparable across engines.
	EntriesMoved atomic.Int64 //spkadd:atomic
	// SymProbes counts the subset of HashProbes spent in the symbolic
	// (output-sizing) tables. The single-pass engines never size the
	// output symbolically, so SymProbes stays zero under PhasesFused
	// and PhasesUpperBound — the observable proof that each input is
	// read exactly once.
	SymProbes atomic.Int64 //spkadd:atomic
	// engineUsed records the Phases engine the most recent dispatched
	// addition actually ran (read via EngineUsed). Options.Phases is a
	// request, not a guarantee: SlidingHash and the 2-way baselines
	// keep their native two-pass drivers whatever the caller asks for,
	// and this is where that fallback becomes observable. Stored as
	// engine+1 so the zero value means "no addition dispatched yet".
	engineUsed atomic.Int64 //spkadd:atomic
	// monoidUsed records the resolved combine monoid of the most
	// recent dispatched addition (read via MonoidUsed), like
	// engineUsed: a nil Options.Monoid resolves to ops.Plus, and this
	// is where that resolution — and the fast-path/generic-path split
	// it implies — becomes observable.
	monoidUsed atomic.Pointer[ops.Monoid] //spkadd:atomic
	// Steals counts range suffixes the WeightedStealing schedule moved
	// from a busy worker to an idle one, across all recorded regions.
	Steals atomic.Int64 //spkadd:atomic
	// SchedRegions counts the multi-worker parallel regions (one per
	// phase per addition: symbolic, numeric, fused pass, stitch, ...)
	// the executor dispatched; single-worker phases run inline and are
	// not regions. SchedMaxWeight and SchedMeanWeight accumulate each
	// region's maximum and mean per-worker executed weight — the
	// caller's column weights under the weighted schedules, column
	// counts otherwise — so LoadImbalance reports the observed balance.
	SchedRegions    atomic.Int64 //spkadd:atomic
	SchedMaxWeight  atomic.Int64 //spkadd:atomic
	SchedMeanWeight atomic.Int64 //spkadd:atomic
	// Fault-tolerance counters. PanicsRecovered counts panics caught at
	// a recovery boundary (executor region, shard reducer, accumulator
	// flush) and converted to errors; Retries counts reduction attempts
	// beyond the first made by the pool's bounded-retry machinery;
	// FaultsInjected counts faults the internal/faults harness fired
	// into code observed by these stats — zero in production, where no
	// injector is active.
	PanicsRecovered atomic.Int64 //spkadd:atomic
	Retries         atomic.Int64 //spkadd:atomic
	FaultsInjected  atomic.Int64 //spkadd:atomic
	// ShardsDegraded and ShardsPoisoned count pool-shard health
	// transitions: a shard entering the degraded state (sticky
	// non-panic error after retries were exhausted) or the poisoned
	// state (recovered panic; workspace quarantined). They count
	// transitions, not current state — Pool.Health reports the latter.
	// ShardsRecovered counts the reverse transition: a degraded shard
	// whose next successful reduction cleared it back to OK (poisoned
	// shards never recover).
	ShardsDegraded  atomic.Int64 //spkadd:atomic
	ShardsPoisoned  atomic.Int64 //spkadd:atomic
	ShardsRecovered atomic.Int64 //spkadd:atomic
	// Self-tuning planner counters (Options.Tuner; DESIGN.md §14).
	// PlannerLookups counts the calls the planner was consulted on;
	// PlannerExplores the subset answered by an epsilon-greedy
	// exploration draw; PlannerFallbacks the subset where the learned
	// table had nothing usable and the static heuristics' plan ran
	// unchanged. Lookups minus explores minus fallbacks is the exploit
	// count — calls planned from observed cost.
	PlannerLookups   atomic.Int64 //spkadd:atomic
	PlannerExplores  atomic.Int64 //spkadd:atomic
	PlannerFallbacks atomic.Int64 //spkadd:atomic
	// plannerDecision records the most recent consulted call's chosen
	// and static arms (read via PlannerDecision), each stored +1 in
	// one byte so the zero value means "no consulted call observed".
	plannerDecision atomic.Int64 //spkadd:atomic
}

// RecordRegion folds one parallel region's load statistics into the
// scheduling counters. Regions that ran inline on a single worker
// (Workers <= 1) carry no balance information and are skipped.
func (s *OpStats) RecordRegion(ls sched.LoadStats) {
	if ls.Workers <= 1 {
		return
	}
	s.SchedRegions.Add(1)
	s.SchedMaxWeight.Add(ls.Max)
	s.SchedMeanWeight.Add(ls.Mean)
	s.Steals.Add(ls.Steals)
}

// LoadImbalance returns the accumulated max-over-mean per-worker
// weight across all recorded regions: 1.0 is a perfectly balanced
// run, k means the slowest worker carried k times the average — the
// factor by which imbalance stretches the phases' critical path. With
// no multi-worker regions recorded it returns 1.
func (s *OpStats) LoadImbalance() float64 {
	mean := s.SchedMeanWeight.Load()
	if mean == 0 {
		return 1
	}
	return float64(s.SchedMaxWeight.Load()) / float64(mean)
}

// RecordPlanner notes one planner-consulted call's decision: the
// tuner arm the call will run and the arm the static heuristics
// resolved to (-1 when the static plan maps to no arm). Equal values
// mean the tuner agreed with — or fell back to — the static plan.
func (s *OpStats) RecordPlanner(chosen, static int8) {
	s.plannerDecision.Store((int64(chosen)+1)<<8 | (int64(static) + 1))
}

// PlannerDecision returns the most recent planner-consulted call's
// chosen and static arm indices (into tuner.Arms), and whether any
// consulted call has been observed by these stats. chosen != static
// is the observable "the learned table overrode the static guess".
func (s *OpStats) PlannerDecision() (chosen, static int8, ok bool) {
	v := s.plannerDecision.Load()
	if v == 0 {
		return -1, -1, false
	}
	return int8(v>>8) - 1, int8(v&0xff) - 1, true
}

// RecordEngine notes the engine a dispatched addition resolved to.
func (s *OpStats) RecordEngine(p Phases) { s.engineUsed.Store(int64(p) + 1) }

// RecordMonoid notes the combine monoid a dispatched addition
// resolved to (ops.Plus for a nil request).
func (s *OpStats) RecordMonoid(m *ops.Monoid) {
	if m == nil {
		m = ops.Plus
	}
	s.monoidUsed.Store(m)
}

// MonoidUsed returns the combine monoid the most recent addition
// observed by these stats actually ran, and whether any addition has
// been dispatched (single-matrix copies dispatch no monoid, like
// EngineUsed's engine).
func (s *OpStats) MonoidUsed() (*ops.Monoid, bool) {
	m := s.monoidUsed.Load()
	if m == nil {
		return nil, false
	}
	return m, true
}

// EngineUsed returns the execution engine the most recent addition
// observed by these stats actually ran, and whether any addition has
// been dispatched (single-matrix copies dispatch no engine). When the
// caller's requested Options.Phases is unsupported by the algorithm —
// SlidingHash and the 2-way baselines keep their native drivers — the
// fallback is reported here as PhasesTwoPass instead of staying
// silent.
func (s *OpStats) EngineUsed() (Phases, bool) {
	v := s.engineUsed.Load()
	if v == 0 {
		return PhasesAuto, false
	}
	return Phases(v - 1), true
}

// PhaseTimings reports the wall-clock split between the symbolic
// (output-size) phase and the numeric addition phase, the series shown
// separately in the paper's Fig 4. The single-pass engines
// (PhasesFused, PhasesUpperBound) have no symbolic phase and report
// their full time as Numeric, like the 2-way algorithms.
type PhaseTimings struct {
	Symbolic time.Duration
	Numeric  time.Duration
}

// Total returns the summed phase time.
func (p PhaseTimings) Total() time.Duration { return p.Symbolic + p.Numeric }

package core

import (
	"testing"

	"spkadd/internal/matrix"
)

func TestAddCSRMatchesCSC(t *testing.T) {
	as := erInputs(6, 200, 24, 10, 31)
	want := matrix.ReferenceAdd(as)
	csrs := make([]*matrix.CSR, len(as))
	for i, a := range as {
		csrs[i] = a.ToCSR()
	}
	for _, alg := range []Algorithm{Hash, Heap, SPA, SlidingHash, TwoWayTree} {
		got, err := AddCSR(csrs, Options{Algorithm: alg, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		back := got.ToCSC()
		if !back.Equal(want) {
			t.Errorf("%v: CSR addition differs from CSC reference", alg)
		}
	}
}

func TestAddCSRZeroCopyDoesNotMutate(t *testing.T) {
	as := erInputs(3, 100, 10, 6, 32)
	csrs := make([]*matrix.CSR, len(as))
	snaps := make([]*matrix.CSC, len(as))
	for i, a := range as {
		csrs[i] = a.ToCSR()
		snaps[i] = csrs[i].ToCSC()
	}
	if _, err := AddCSR(csrs, Options{Algorithm: Hash}); err != nil {
		t.Fatal(err)
	}
	for i := range csrs {
		if !csrs[i].ToCSC().Equal(snaps[i]) {
			t.Fatalf("input %d mutated", i)
		}
	}
}

func TestAddCSRErrors(t *testing.T) {
	if _, err := AddCSR(nil, Options{}); err == nil {
		t.Error("empty CSR input accepted")
	}
	a := matrix.FromTriples(3, 4, nil).ToCSR()
	b := matrix.FromTriples(4, 4, nil).ToCSR()
	if _, err := AddCSR([]*matrix.CSR{a, b}, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spkadd/internal/matrix"
)

func TestMergeCountAndInto(t *testing.T) {
	ar := []matrix.Index{1, 3, 6}
	av := []matrix.Value{3, 2, 1}
	br := []matrix.Index{0, 3, 5}
	bv := []matrix.Value{2, 1, 3}
	n := mergeCount(ar, br)
	if n != 5 {
		t.Fatalf("mergeCount = %d, want 5", n)
	}
	or := make([]matrix.Index, n)
	ov := make([]matrix.Value, n)
	if got := mergeInto(ar, av, br, bv, or, ov); got != n {
		t.Fatalf("mergeInto wrote %d, want %d", got, n)
	}
	wantR := []matrix.Index{0, 1, 3, 5, 6}
	wantV := []matrix.Value{2, 3, 3, 3, 1}
	for i := range wantR {
		if or[i] != wantR[i] || ov[i] != wantV[i] {
			t.Fatalf("merged = %v/%v, want %v/%v", or, ov, wantR, wantV)
		}
	}
}

func TestMergeEmptySides(t *testing.T) {
	r := []matrix.Index{2, 4}
	v := []matrix.Value{1, 2}
	if mergeCount(nil, r) != 2 || mergeCount(r, nil) != 2 || mergeCount(nil, nil) != 0 {
		t.Fatal("mergeCount wrong on empty inputs")
	}
	or := make([]matrix.Index, 2)
	ov := make([]matrix.Value, 2)
	if mergeInto(nil, nil, r, v, or, ov) != 2 || or[0] != 2 || ov[1] != 2 {
		t.Fatal("mergeInto wrong with empty left side")
	}
}

func TestQuickMergeMatchesMapUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() ([]matrix.Index, []matrix.Value) {
			n := rng.Intn(30)
			set := map[matrix.Index]bool{}
			var rs []matrix.Index
			for len(rs) < n {
				r := matrix.Index(rng.Intn(50))
				if !set[r] {
					set[r] = true
					rs = append(rs, r)
				}
			}
			sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
			vs := make([]matrix.Value, len(rs))
			for i := range vs {
				vs[i] = float64(rng.Intn(9) + 1)
			}
			return rs, vs
		}
		ar, av := mk()
		br, bv := mk()
		want := map[matrix.Index]matrix.Value{}
		for i, r := range ar {
			want[r] += av[i]
		}
		for i, r := range br {
			want[r] += bv[i]
		}
		n := mergeCount(ar, br)
		if n != len(want) {
			return false
		}
		or := make([]matrix.Index, n)
		ov := make([]matrix.Value, n)
		mergeInto(ar, av, br, bv, or, ov)
		for i := 1; i < n; i++ {
			if or[i] <= or[i-1] {
				return false
			}
		}
		for i, r := range or {
			if want[r] != ov[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSortPairsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		rows := make([]matrix.Index, n)
		vals := make([]matrix.Value, n)
		perm := rng.Perm(1 << 16)
		for i := range rows {
			rows[i] = matrix.Index(perm[i]) // distinct keys
			vals[i] = float64(rows[i]) + 0.5
		}
		sortPairs(rows, vals)
		for i := range rows {
			if i > 0 && rows[i] < rows[i-1] {
				return false
			}
			if vals[i] != float64(rows[i])+0.5 {
				return false // value detached from its row
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"spkadd/internal/matrix"
)

// ErrAccumulatorInUse is returned when an Accumulator is called from a
// second goroutine while a call is already in flight. Like the public
// Adder, an Accumulator owns one resident workspace and one running
// sum; failing fast beats silently corrupting both. Use one
// Accumulator per goroutine, or a sharded Pool for concurrent
// producers.
var ErrAccumulatorInUse = errors.New("spkadd: Accumulator used from multiple goroutines concurrently")

// Accumulator implements the batched SpKAdd the paper proposes for
// inputs that do not fit in memory simultaneously or that arrive over
// time (§V: "we can still arrange input matrices in multiple batches
// and then use SpKAdd for each batch"; streaming SpKAdd is the paper's
// stated future work). Matrices are buffered until the configured
// memory budget fills, then reduced into the running sum with one
// k-way addition, so the reduction work stays k-way rather than
// degenerating to the pairwise O(k²nd) regime.
//
// Reductions run under the configured Options, including the combine
// monoid: a Count accumulator streams occurrence frequencies because
// each reduction maps fresh inputs only — the running sum re-enters
// in the monoid's result domain and is folded back in unmapped.
//
// An Accumulator is not safe for concurrent use; overlapping calls
// are detected by an atomic busy flag and fail with
// ErrAccumulatorInUse instead of corrupting the resident workspace.
// Each addition it performs is internally parallel per the configured
// Options, including the execution-engine policy: when Phases
// resolves to a single-pass engine (the common PhasesAuto outcome for
// in-cache workloads) each batched reduction reads its inputs exactly
// once.
type AccumulatorOf[T matrix.Number] struct {
	rows, cols int
	opt        OptionsOf[T]
	budget     int64
	busy       atomic.Bool

	sum          *matrix.CSCOf[T]
	pending      []*matrix.CSCOf[T]
	pendingBytes int64
	absorbed     int
	reductions   int

	// err is the accumulator's sticky failure: set when a reduction
	// panics (the workspace is quarantined alongside — its scratch is
	// mid-kernel garbage), surfaced by every later call. Cancellation
	// and validation errors are NOT sticky: they leave the buffer and
	// sum untouched and the next call retries the reduction.
	err error

	// ws is the accumulator's resident workspace: every reduction
	// reuses its scratch structures — including the workspace's
	// resident executor, so multi-threaded reductions reuse parked
	// workers instead of spawning goroutines per flush (set
	// Options.Executor to share a worker budget with other callers) —
	// and the running sum lives in the workspace's recycled
	// (ping-pong) output buffers: the previous sum is always an input
	// to the next reduction, which writes the other buffer, so no
	// reduction reads storage it is overwriting.
	ws *WorkspaceOf[T]
	// batch is the reusable [sum, pending...] input slice.
	batch []*matrix.CSCOf[T]
}

// Accumulator is the float64 accumulator, the paper's element type.
type Accumulator = AccumulatorOf[matrix.Value]

// entryBytes is the in-memory footprint of one stored float64 entry
// (4-byte index + 8-byte value); entryBytesOf generalizes it per
// element type.
const entryBytes = 12

// maxPendingMatrices caps how many matrices an Accumulator (or a Pool
// shard) buffers before reducing regardless of their byte size. The
// byte budget alone cannot bound the buffer: zero-nnz matrices
// contribute zero bytes, so a flood of empty deltas — a perfectly
// plausible streaming workload during quiet periods — would grow the
// pending slice without ever triggering a flush.
const maxPendingMatrices = 1024

// NewAccumulator returns an accumulator for rows x cols matrices that
// reduces its buffer whenever the next reduction's total input — the
// running sum plus the buffered matrices — would exceed budgetBytes
// (<=0 means 256MB). The paper's batching argument applies verbatim:
// the batch size only affects memory, not the asymptotic work, as long
// as each reduction is k-way.
func NewAccumulator(rows, cols int, budgetBytes int64, opt Options) *Accumulator {
	return NewAccumulatorOf[matrix.Value](rows, cols, budgetBytes, opt)
}

// NewAccumulatorOf is NewAccumulator for any supported element type.
func NewAccumulatorOf[T matrix.Number](rows, cols int, budgetBytes int64, opt OptionsOf[T]) *AccumulatorOf[T] {
	if budgetBytes <= 0 {
		budgetBytes = 256 << 20
	}
	return &AccumulatorOf[T]{rows: rows, cols: cols, opt: opt, budget: budgetBytes}
}

// acquire takes the accumulator's busy flag, detecting overlapping
// calls from a second goroutine.
func (ac *AccumulatorOf[T]) acquire() error {
	if !ac.busy.CompareAndSwap(false, true) {
		return ErrAccumulatorInUse
	}
	return nil
}

func (ac *AccumulatorOf[T]) release() { ac.busy.Store(false) }

// sumBytes is the in-memory footprint of the running sum. A k-way
// reduction reads sum + pending, so the sum's bytes count toward the
// reduction budget exactly like the buffered matrices'.
func (ac *AccumulatorOf[T]) sumBytes() int64 {
	if ac.sum == nil {
		return 0
	}
	return int64(ac.sum.NNZ()) * entryBytesOf[T]()
}

// Push buffers one matrix, reducing the buffer first if adding it
// would push the next reduction's total input — the running sum plus
// everything pending — past the budget, or if the pending count hits
// maxPendingMatrices (so zero-byte pushes still flush eventually). The
// accumulator keeps a reference to a until the next reduction; callers
// must not mutate it meanwhile.
//
// The budget bounds a reduction's input at budget plus one matrix: the
// matrix that overflows is buffered after the flush it triggers, so it
// joins the next reduction instead. Once the running sum alone
// outgrows the budget every push flushes, degenerating gracefully to
// sum-plus-one-matrix reductions — the streaming minimum.
func (ac *AccumulatorOf[T]) Push(a *matrix.CSCOf[T]) error {
	return ac.PushContext(context.Background(), a)
}

// PushContext is Push with cooperative cancellation of the reduction a
// full buffer triggers. A canceled reduction is clean: the matrix is
// NOT buffered, the pending matrices and the running sum are untouched,
// and the next uncanceled call retries the reduction.
func (ac *AccumulatorOf[T]) PushContext(ctx context.Context, a *matrix.CSCOf[T]) error {
	if err := ac.acquire(); err != nil {
		return err
	}
	defer ac.release()
	if ac.err != nil {
		return ac.err
	}
	if a.Rows != ac.rows || a.Cols != ac.cols {
		return fmt.Errorf("%w: pushed %dx%d, accumulator is %dx%d",
			ErrDimMismatch, a.Rows, a.Cols, ac.rows, ac.cols)
	}
	bytes := int64(a.NNZ()) * entryBytesOf[T]()
	if len(ac.pending) > 0 &&
		(ac.sumBytes()+ac.pendingBytes+bytes > ac.budget || len(ac.pending) >= maxPendingMatrices) {
		if err := ac.flush(ctx); err != nil {
			return err
		}
	}
	ac.pending = append(ac.pending, a)
	ac.pendingBytes += bytes
	ac.absorbed++
	return nil
}

// Flush reduces all buffered matrices into the running sum.
func (ac *AccumulatorOf[T]) Flush() error {
	return ac.FlushContext(context.Background())
}

// FlushContext is Flush with cooperative cancellation; see
// PushContext for the cancellation contract.
func (ac *AccumulatorOf[T]) FlushContext(ctx context.Context) error {
	if err := ac.acquire(); err != nil {
		return err
	}
	defer ac.release()
	return ac.flush(ctx)
}

// flush is Flush without the busy-flag acquisition, for internal use
// while the flag is already held.
func (ac *AccumulatorOf[T]) flush(ctx context.Context) error {
	if ac.err != nil {
		return ac.err
	}
	if len(ac.pending) == 0 {
		return nil
	}
	if ac.ws == nil {
		ac.ws = NewWorkspaceOf[T](true)
	}
	ac.batch = ac.batch[:0]
	premapped := 0
	if ac.sum != nil {
		// The running sum is already in the monoid's result domain:
		// it re-enters the reduction unmapped (for Count, re-mapping
		// would collapse every accumulated count back to 1).
		ac.batch = append(ac.batch, ac.sum)
		premapped = 1
	}
	ac.batch = append(ac.batch, ac.pending...)
	sum, err := ac.reduce(ctx, premapped)
	if err != nil {
		// Drop the batch references either way; pending still holds
		// everything unreduced.
		clear(ac.batch)
		ac.batch = ac.batch[:0]
		if isPanicErr(err) {
			// A panic mid-kernel leaves the workspace's scratch (and the
			// in-progress output buffer — never the buffer holding the
			// running sum, which a failed call does not consume) in an
			// indeterminate state: quarantine the workspace and go
			// sticky. The running sum's storage stays valid; it is
			// never handed to a new workspace as a write target.
			ac.err = err
			ac.ws = nil
			if ac.opt.Stats != nil {
				ac.opt.Stats.PanicsRecovered.Add(1)
			}
		}
		return err
	}
	ac.sum = sum
	// Drop the buffered references so absorbed matrices can be
	// collected (truncating alone would pin them in the backing
	// arrays).
	clear(ac.batch)
	ac.batch = ac.batch[:0]
	clear(ac.pending)
	ac.pending = ac.pending[:0]
	ac.pendingBytes = 0
	ac.reductions++
	return nil
}

// reduce runs one batched reduction, converting a panic on the inline
// (single-threaded) kernel path into the same *PanicError the executor
// reports for multi-threaded regions.
func (ac *AccumulatorOf[T]) reduce(ctx context.Context, premapped int) (b *matrix.CSCOf[T], err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoverToError(r)
		}
	}()
	return ac.ws.addPremapped(ctx, ac.batch, ac.opt, premapped)
}

// Sum flushes and returns the current total. The returned matrix is
// owned by the accumulator (its storage lives in the accumulator's
// recycled workspace buffers); it remains valid (and unmodified) until
// further Push calls, after which callers should re-request it —
// callers that need a longer-lived copy should Clone it.
func (ac *AccumulatorOf[T]) Sum() (*matrix.CSCOf[T], error) {
	return ac.SumContext(context.Background())
}

// SumContext is Sum with cooperative cancellation of the final flush;
// see PushContext for the cancellation contract. In particular a
// canceled SumContext leaves the accumulator fully consistent: a later
// Sum reduces the same buffered matrices and returns the same total.
func (ac *AccumulatorOf[T]) SumContext(ctx context.Context) (*matrix.CSCOf[T], error) {
	if err := ac.acquire(); err != nil {
		return nil, err
	}
	defer ac.release()
	if err := ac.flush(ctx); err != nil {
		return nil, err
	}
	if ac.sum == nil {
		return matrix.NewCSCOf[T](ac.rows, ac.cols, 0), nil
	}
	return ac.sum, nil
}

// K returns the number of matrices absorbed so far.
func (ac *AccumulatorOf[T]) K() int { return ac.absorbed }

// Reductions returns how many k-way additions have run, a measure of
// how the budget translated into batching.
func (ac *AccumulatorOf[T]) Reductions() int { return ac.reductions }

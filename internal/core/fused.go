package core

import (
	"time"

	"spkadd/internal/matrix"
	"spkadd/internal/sched"
)

// This file implements the single-pass execution engines. The paper
// proves SpKAdd's memory-traffic lower bound is O(knd); the classic
// two-phase driver (add.go) streams all k inputs through memory twice
// — once to size the output, once to fill it — so it runs at ~2x that
// bound. Both engines here read each input exactly once:
//
//   - addFused: every worker accumulates its columns' results into a
//     growable per-worker arena of (rows, values) chunks, then a
//     parallel stitch assembles the final CSC from the per-column
//     extents. Peak extra memory ≈ output size.
//
//   - addUpperBound: the output staging area is allocated from the
//     Σ_i nnz(A_i(:,j)) per-column upper bound, filled in one pass,
//     and compacted in parallel. Peak extra memory ≈ total input size,
//     but no arena bookkeeping — cheapest when duplicates are rare.
//
// Both support the Hash, SPA and Heap kernels, sorted and unsorted
// output, coefficients, and all schedules, with output entry-for-entry
// identical (after canonical sort) to the two-phase engine. Both run
// on a Workspace: arenas, staging buffers and column extents survive
// the call, so repeated additions allocate nothing in steady state.

const (
	// upperBoundStagingCap bounds the staging buffer PhasesAuto lets
	// the upper-bound engine allocate (entryBytesOf per input entry —
	// 12 for float64/int64, 8 for float32/int32, 5 for bool) before
	// preferring the arena-based fused engine, whose footprint tracks
	// the output instead of the input.
	upperBoundStagingCap = 1 << 30
	// autoDupRateCutoff is the estimated duplicate fraction above
	// which PhasesAuto stops considering the upper-bound engine: past
	// it, the staging buffer wastes more than a third of its entries.
	autoDupRateCutoff = 0.25
	// arenaChunkEntries sizes fused-arena chunks: 32Ki entries is
	// 384KiB of (row, value) storage, large enough to amortize chunk
	// allocation and small enough not to strand memory per worker.
	arenaChunkEntries = 1 << 15
	// inputWeightsParallelMin is the column count above which the
	// per-column input-nnz weights are computed in parallel.
	inputWeightsParallelMin = 1 << 12
)

// fusedSupported reports whether alg has a single-pass engine.
// SlidingHash keeps the two-pass driver: its row-range partitioning is
// derived from per-part symbolic counts, which a single pass cannot
// provide without giving up the in-cache table guarantee.
func fusedSupported(alg Algorithm) bool {
	switch alg {
	case Hash, SPA, Heap:
		return true
	}
	return false
}

// pickPhases resolves the engine for one call. An explicit request is
// honored whenever the algorithm supports it; Auto reads the shared
// workloadEstimate's balls-into-bins duplicate rate (the same estimate
// autoSelect and the tuner signature consume) and checks memory
// headroom (see the Phases constants and DESIGN.md).
func pickPhases[T matrix.Number](est workloadEstimate, alg Algorithm, opt OptionsOf[T]) Phases {
	if !fusedSupported(alg) {
		return PhasesTwoPass
	}
	if opt.Phases != PhasesAuto {
		return opt.Phases
	}
	if est.rows == 0 || est.cols == 0 || est.total == 0 {
		return PhasesFused
	}
	// Memory headroom: the fused hash engine sizes per-worker tables
	// by input nnz instead of output nnz. If those larger tables would
	// spill the last-level cache, the two-pass engine's smaller
	// numeric tables recover more than the saved symbolic pass costs.
	// Entry cost is T's — a float32 call keeps the fused engine (and
	// the staging budget below) viable at twice the input size.
	if alg == Hash {
		t := sched.Threads(opt.Threads)
		if int64(est.avgColNNZ)*entryBytesOf[T]()*int64(t) > opt.cacheBytes() {
			return PhasesTwoPass
		}
	}
	if est.dupRate <= autoDupRateCutoff && est.total*entryBytesOf[T]() <= upperBoundStagingCap {
		return PhasesUpperBound
	}
	return PhasesFused
}

// allocCSC builds an empty CSC whose ColPtr is the prefix sum of the
// per-column counts, with RowIdx/Val allocated to match.
func allocCSC[T matrix.Number](rows, cols int, counts []int64) *matrix.CSCOf[T] {
	b := &matrix.CSCOf[T]{Rows: rows, Cols: cols, ColPtr: make([]int64, cols+1)}
	for j := 0; j < cols; j++ {
		b.ColPtr[j+1] = b.ColPtr[j] + counts[j]
	}
	nnz := b.ColPtr[cols]
	b.RowIdx = make([]matrix.Index, nnz)
	b.Val = make([]T, nnz)
	return b
}

// arena is a worker-private growable store of (row, value) entries.
// Allocations never move: a chunk's backing arrays are extended only
// within their capacity, so sub-slices handed out earlier stay valid
// for the stitch. reset rewinds every chunk instead of dropping it, so
// a workspace-resident arena serves later calls without allocating.
type arenaOf[T matrix.Number] struct {
	chunks []arenaChunkOf[T]
	cur    int // chunk currently being filled
}

type arenaChunkOf[T matrix.Number] struct {
	rows []matrix.Index
	vals []T
}

// reset rewinds the arena for a new call, keeping every chunk's
// storage.
func (ar *arenaOf[T]) reset() {
	for i := range ar.chunks {
		ar.chunks[i].rows = ar.chunks[i].rows[:0]
		ar.chunks[i].vals = ar.chunks[i].vals[:0]
	}
	ar.cur = 0
}

// alloc returns rows/vals slices of length n inside a single chunk
// (capacity-clipped so appends cannot cross into a neighbour),
// advancing past recycled chunks that are too small and appending a
// new chunk only when none fits.
func (ar *arenaOf[T]) alloc(n int) ([]matrix.Index, []T) {
	for {
		if ar.cur >= len(ar.chunks) {
			size := arenaChunkEntries
			if n > size {
				size = n
			}
			ar.chunks = append(ar.chunks, arenaChunkOf[T]{
				rows: make([]matrix.Index, 0, size),
				vals: make([]T, 0, size),
			})
		}
		c := &ar.chunks[ar.cur]
		if cap(c.rows)-len(c.rows) >= n {
			off := len(c.rows)
			c.rows = c.rows[:off+n]
			c.vals = c.vals[:off+n]
			return c.rows[off : off+n : off+n], c.vals[off : off+n : off+n]
		}
		ar.cur++
	}
}

// reserve ensures some chunk has capacity for a single allocation of
// n entries, so under a racy schedule a worker whose arena never saw
// the largest column does not allocate for it as long as its staging
// stays within its chunks. This is a strong guarantee only while a
// worker's total staged volume fits one chunk (the reserved chunk can
// be part-filled by smaller columns before the big one arrives);
// beyond that, appended chunks are recycled on later calls, so racy
// steady-state allocations are amortized toward zero rather than
// strictly zero — the workspace-staged engines (two-pass,
// upper-bound) keep the strict contract at any size.
func (ar *arenaOf[T]) reserve(n int) {
	if n < arenaChunkEntries {
		n = arenaChunkEntries
	}
	for i := range ar.chunks {
		if cap(ar.chunks[i].rows) >= n {
			return
		}
	}
	ar.chunks = append(ar.chunks, arenaChunkOf[T]{
		rows: make([]matrix.Index, 0, n),
		vals: make([]T, 0, n),
	})
}

// shrink gives the tail `unused` entries of the most recent alloc back
// to the chunk, so upper-bound allocations (the heap kernel reserves
// input nnz before knowing the merged count) don't strand arena space.
func (ar *arenaOf[T]) shrink(unused int) {
	if unused <= 0 {
		return
	}
	c := &ar.chunks[ar.cur]
	c.rows = c.rows[:len(c.rows)-unused]
	c.vals = c.vals[:len(c.vals)-unused]
}

// fusedColOf records where one output column was staged in its
// worker's arena; len(rows) is the column's final nnz.
type fusedColOf[T matrix.Number] struct {
	rows []matrix.Index
	vals []T
}

// addFused is the fused single-pass engine (PhasesFused): one pass
// over the inputs accumulates every column into a per-worker arena,
// then a parallel stitch copies the per-column extents into the final
// CSC. There is no symbolic phase; PhaseTimings reports all time as
// Numeric.
func (ws *WorkspaceOf[T]) addFused() (*matrix.CSCOf[T], PhaseTimings, error) {
	var pt PhaseTimings
	n := ws.as[0].Cols
	ws.colScratch(n)
	if err := ws.ctxCheck(); err != nil {
		return nil, pt, err
	}
	if ws.t > len(ws.arenas) {
		arenas := make([]arenaOf[T], ws.t)
		copy(arenas, ws.arenas)
		ws.arenas = arenas
	}
	for i := range ws.arenas {
		ws.arenas[i].reset()
	}
	if cap(ws.cols) < n {
		ws.cols = make([]fusedColOf[T], n)
	}
	ws.cols = ws.cols[:n]

	if err := ws.fillInputWeights(); err != nil {
		return nil, pt, err
	}
	ws.reserveWorkers(ws.weights, false)
	if ws.racySched() {
		// Any column may land on any worker: every participating arena
		// keeps a chunk the largest column fits in.
		maxW := int(maxWeight(ws.weights))
		for i := 0; i < ws.reserveCount(n) && i < len(ws.arenas); i++ {
			ws.arenas[i].reserve(maxW)
		}
	}
	start := time.Now()
	if err := ws.runCols(n, ws.weights, ws.fusedFn); err != nil {
		pt.Numeric = time.Since(start)
		return nil, pt, err
	}
	if err := ws.ctxCheck(); err != nil {
		pt.Numeric = time.Since(start)
		return nil, pt, err
	}

	// Stitch: assemble the final CSC from the per-column extents,
	// load-balanced by output nnz like the two-pass numeric phase.
	for j := 0; j < n; j++ {
		ws.counts[j] = int64(len(ws.cols[j].rows))
	}
	b := ws.allocOutput(ws.as[0].Rows, n, ws.counts)
	ws.b = b
	err := ws.runCols(n, ws.counts, ws.stitchFn)
	pt.Numeric = time.Since(start)
	if err != nil {
		return nil, pt, err
	}
	if ws.opt.Stats != nil {
		// EntriesMoved counts materialized matrix storage only (see
		// OpStats); arena staging is scratch, like a hash table.
		ws.opt.Stats.EntriesMoved.Add(b.ColPtr[n])
	}
	return b, pt, nil
}

// fusedBody is the fused engine's single input pass: emit each column
// into the worker's arena. Every column of [lo, hi) is written —
// including empty ones, so a recycled extents slice holds no stale
// entries.
//
//spkadd:noalloc executor region body of the fused engine (arena growth is amortized in arena.alloc)
func (ws *WorkspaceOf[T]) fusedBody(w, lo, hi int) {
	ws.kernelFault()
	s, ar := ws.worker(w), &ws.arenas[w]
	for j := lo; j < hi; j++ {
		inz := int(ws.weights[j])
		if inz == 0 {
			ws.cols[j] = fusedColOf[T]{}
			continue
		}
		// Reserve the input-nnz upper bound, emit, and return the
		// unused tail to the chunk for the worker's next column.
		rows, vals := ar.alloc(inz)
		nz := emitColInto(s, ws.as, j, inz, ws.alg, ws.opt.SortedOutput, ws.coeffs, ws.monP, rows, vals)
		ar.shrink(inz - nz)
		ws.cols[j] = fusedColOf[T]{rows: rows[:nz], vals: vals[:nz]}
	}
	s.flushStats(ws.opt.Stats)
}

// stitchBody copies the staged extents of columns [lo, hi) into the
// final CSC.
//
//spkadd:noalloc executor region body: copies arena columns into the final CSC
func (ws *WorkspaceOf[T]) stitchBody(_, lo, hi int) {
	b := ws.b
	for j := lo; j < hi; j++ {
		copy(b.RowIdx[b.ColPtr[j]:b.ColPtr[j+1]], ws.cols[j].rows)
		copy(b.Val[b.ColPtr[j]:b.ColPtr[j+1]], ws.cols[j].vals)
	}
}

// emitColInto computes one output column with the single-pass kernels,
// writing into outRows/outVals — length inz, the Σ_i nnz(A_i(:,j))
// upper bound — and returns the entry count. Both single-pass engines
// share it: the fused engine points it at an arena reservation, the
// upper-bound engine at the column's staging extent. This is also
// where the drop-identity output policy applies: only the single-pass
// engines see values before the output is sized, so only they can
// drop identity-valued results (validation pins DropIdentity monoids
// here).
//
//spkadd:noalloc single-pass emit: accumulate one column straight into arena-backed storage
func emitColInto[T matrix.Number](ws *workerStateOf[T], as []*matrix.CSCOf[T], j, inz int, alg Algorithm, sorted bool, coeffs []T, mon *monoidStateOf[T], outRows []matrix.Index, outVals []T) int {
	nz := 0
	switch alg {
	case Hash:
		tab := hashAccumCol(ws, as, j, inz, coeffs, mon)
		nz = tab.Len()
		r, v := tab.AppendEntries(outRows[:0:inz], outVals[:0:inz])
		if len(r) != nz {
			panic("core: single-pass hash emitted a different count than it accumulated")
		}
		if sorted {
			sortPairs(r, v)
		}
	case SPA:
		acc := spaAccumCol(ws, as, j, coeffs, mon)
		nz = acc.Len()
		var r []matrix.Index
		if sorted {
			r, _ = acc.AppendSorted(outRows[:0:inz], outVals[:0:inz])
		} else {
			r, _ = acc.AppendUnsorted(outRows[:0:inz], outVals[:0:inz])
		}
		acc.Clear()
		if len(r) != nz {
			panic("core: single-pass SPA emitted a different count than it accumulated")
		}
	case Heap:
		nz = heapMergeCol(ws, as, j, outRows, outVals, coeffs, mon)
	default:
		panic("core: single-pass engine dispatched an unsupported algorithm")
	}
	if mon != nil && mon.drop {
		nz = dropIdentityEntries(outRows, outVals, nz, mon.def.Identity)
	}
	return nz
}

// dropIdentityEntries compacts the first nz entries in place, removing
// those whose value equals the monoid identity, and returns the new
// count. Compaction is order-preserving, so a sorted column stays
// sorted.
func dropIdentityEntries[T matrix.Number](rows []matrix.Index, vals []T, nz int, id T) int {
	out := 0
	for p := 0; p < nz; p++ {
		if vals[p] == id {
			continue
		}
		rows[out], vals[out] = rows[p], vals[p]
		out++
	}
	return out
}

// addUpperBound is the upper-bound single-pass engine
// (PhasesUpperBound): the staging area is allocated from the
// per-column Σ_i nnz(A_i(:,j)) bound, filled in one pass over the
// inputs, and compacted in parallel into the exact-size output.
func (ws *WorkspaceOf[T]) addUpperBound() (*matrix.CSCOf[T], PhaseTimings, error) {
	var pt PhaseTimings
	n := ws.as[0].Cols
	ws.colScratch(n)
	if err := ws.ctxCheck(); err != nil {
		return nil, pt, err
	}

	if err := ws.fillInputWeights(); err != nil {
		return nil, pt, err
	}
	ws.reserveWorkers(ws.weights, false)
	start := time.Now()
	ws.ubPtr = grow(ws.ubPtr, n+1)
	ws.ubPtr[0] = 0
	for j := 0; j < n; j++ {
		ws.ubPtr[j+1] = ws.ubPtr[j] + ws.weights[j]
	}
	total := int(ws.ubPtr[n])
	ws.stRows = grow(ws.stRows, total)
	ws.stVals = grow(ws.stVals, total)
	if err := ws.runCols(n, ws.weights, ws.ubFn); err != nil {
		pt.Numeric = time.Since(start)
		return nil, pt, err
	}
	if err := ws.ctxCheck(); err != nil {
		pt.Numeric = time.Since(start)
		return nil, pt, err
	}

	// Compact: copy each column's filled prefix to its final position.
	// Out of place — final extents can overlap staged extents of other
	// columns, so in-place parallel moves would race.
	b := ws.allocOutput(ws.as[0].Rows, n, ws.counts)
	ws.b = b
	err := ws.runCols(n, ws.counts, ws.compactFn)
	pt.Numeric = time.Since(start)
	if err != nil {
		return nil, pt, err
	}
	if ws.opt.Stats != nil {
		ws.opt.Stats.EntriesMoved.Add(b.ColPtr[n])
	}
	return b, pt, nil
}

// ubBody fills the staging extents of columns [lo, hi) in one input
// pass, recording each column's exact nnz. Empty columns keep the
// zero count colScratch installed.
//
//spkadd:noalloc executor region body of the upper-bound engine
func (ws *WorkspaceOf[T]) ubBody(w, lo, hi int) {
	ws.kernelFault()
	s := ws.worker(w)
	for j := lo; j < hi; j++ {
		inz := int(ws.weights[j])
		if inz == 0 {
			continue
		}
		outRows := ws.stRows[ws.ubPtr[j]:ws.ubPtr[j+1]]
		outVals := ws.stVals[ws.ubPtr[j]:ws.ubPtr[j+1]]
		ws.counts[j] = int64(emitColInto(s, ws.as, j, inz, ws.alg, ws.opt.SortedOutput, ws.coeffs, ws.monP, outRows, outVals))
	}
	s.flushStats(ws.opt.Stats)
}

// compactBody copies the filled staging prefix of columns [lo, hi)
// into the exact-size output.
//
//spkadd:noalloc executor region body: compacts upper-bound columns into place
func (ws *WorkspaceOf[T]) compactBody(_, lo, hi int) {
	b := ws.b
	for j := lo; j < hi; j++ {
		copy(b.RowIdx[b.ColPtr[j]:b.ColPtr[j+1]], ws.stRows[ws.ubPtr[j]:ws.ubPtr[j]+ws.counts[j]])
		copy(b.Val[b.ColPtr[j]:b.ColPtr[j+1]], ws.stVals[ws.ubPtr[j]:ws.ubPtr[j]+ws.counts[j]])
	}
}

package cachesim

import (
	"testing"

	"spkadd/internal/generate"
)

func TestSequentialStreamMissesOncePerLine(t *testing.T) {
	c := New(1<<20, 16, 64)
	for addr := uint64(0); addr < 64*100; addr++ {
		c.Access(addr)
	}
	if c.Misses() != 100 {
		t.Errorf("misses = %d, want 100 (one per line)", c.Misses())
	}
	if c.Accesses() != 6400 {
		t.Errorf("accesses = %d", c.Accesses())
	}
}

func TestRepeatedAccessHits(t *testing.T) {
	c := New(1<<16, 8, 64)
	c.Access(0x1000)
	before := c.Misses()
	for i := 0; i < 50; i++ {
		c.Access(0x1000 + uint64(i%64))
	}
	if c.Misses() != before {
		t.Error("same-line accesses should all hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, force 3 conflicting lines.
	c := New(128, 2, 64) // 2 lines total, 1 set of 2 ways
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a) // miss
	c.Access(b) // miss
	c.Access(a) // hit, a is MRU
	c.Access(d) // miss, evicts b (LRU)
	c.Access(a) // hit
	if c.Misses() != 3 {
		t.Errorf("misses = %d, want 3", c.Misses())
	}
	c.Access(b) // miss again (was evicted)
	if c.Misses() != 4 {
		t.Errorf("misses = %d, want 4 after re-touching evicted line", c.Misses())
	}
}

func TestWorkingSetFitVsSpill(t *testing.T) {
	// A working set that fits misses only on the first pass; one that
	// spills misses every pass.
	small := New(1<<14, 16, 64) // 16KB
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 1<<13; addr += 64 {
			small.Access(addr) // 8KB working set: fits
		}
	}
	if small.Misses() != 128 {
		t.Errorf("fitting set: misses = %d, want 128 (first pass only)", small.Misses())
	}

	big := New(1<<14, 16, 64)
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 1<<16; addr += 64 { // 64KB: spills
			big.Access(addr)
		}
	}
	if big.Misses() < 3*800 {
		t.Errorf("spilling set: misses = %d, want ~3072", big.Misses())
	}
}

func TestAccessRangeCrossesLines(t *testing.T) {
	c := New(1<<16, 8, 64)
	c.AccessRange(60, 8) // straddles the line boundary at 64
	if c.Misses() != 2 {
		t.Errorf("straddling access missed %d lines, want 2", c.Misses())
	}
	c.Reset()
	if c.Misses() != 0 || c.Accesses() != 0 {
		t.Error("Reset did not clear counters")
	}
	c.AccessRange(0, 0)
	if c.Accesses() != 0 {
		t.Error("zero-size range should not touch")
	}
}

func TestTraceSlidingReducesMissesWhenTablesSpill(t *testing.T) {
	// Dense-ish output columns with a tiny modelled LLC: plain hash
	// tables spill, sliding tables fit. This is the Table V case (b)
	// regime.
	as := generate.ERCollection(32, generate.Opts{Rows: 1 << 16, Cols: 8, NNZPerCol: 2048, Seed: 1})
	cfg := TraceConfig{CacheBytes: 64 << 10, Threads: 1}
	plain := TraceSpKAdd(as, cfg)
	cfgS := cfg
	cfgS.Sliding = true
	sliding := TraceSpKAdd(as, cfgS)
	if sliding.TotalMisses() >= plain.TotalMisses() {
		t.Errorf("sliding misses %d not below hash misses %d despite spilling tables",
			sliding.TotalMisses(), plain.TotalMisses())
	}
}

func TestTraceSlidingNoBenefitWhenTablesFit(t *testing.T) {
	// Small tables: sliding degenerates to parts=1 and the traces
	// match exactly (Table V cases (a)/(d)).
	as := generate.ERCollection(8, generate.Opts{Rows: 4096, Cols: 16, NNZPerCol: 16, Seed: 2})
	cfg := TraceConfig{CacheBytes: 32 << 20, Threads: 1}
	plain := TraceSpKAdd(as, cfg)
	cfgS := cfg
	cfgS.Sliding = true
	sliding := TraceSpKAdd(as, cfgS)
	if plain.TotalMisses() != sliding.TotalMisses() {
		t.Errorf("fitting tables: hash %d vs sliding %d, want equal",
			plain.TotalMisses(), sliding.TotalMisses())
	}
}

func TestTracePhasesNonZero(t *testing.T) {
	as := generate.ERCollection(4, generate.Opts{Rows: 2048, Cols: 8, NNZPerCol: 32, Seed: 3})
	res := TraceSpKAdd(as, TraceConfig{CacheBytes: 1 << 20, Threads: 4})
	if res.SymbolicMisses <= 0 || res.NumericMisses <= 0 || res.Accesses <= 0 {
		t.Errorf("trace result %+v has empty phases", res)
	}
}

// Package cachesim provides a trace-driven set-associative LRU cache
// model and instrumented replicas of the hash and sliding-hash SpKAdd
// kernels. It stands in for the Cachegrind profiling of §IV-D: the
// paper's Table V counts last-level cache misses of hash vs sliding
// hash; here the same access streams (streamed inputs, randomly probed
// hash tables, streamed output) are replayed through the model.
package cachesim

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	lineBits uint
	setMask  uint64
	ways     int
	// tags[set] holds up to `ways` line tags, most recently used first.
	tags [][]uint64

	accesses int64
	misses   int64
}

// New returns a cache of totalBytes capacity with the given
// associativity and line size (both powers of two; lineSize in bytes).
func New(totalBytes int64, ways, lineSize int) *Cache {
	if ways < 1 {
		ways = 1
	}
	if lineSize < 1 {
		lineSize = 64
	}
	lineBits := uint(0)
	for (1 << lineBits) < lineSize {
		lineBits++
	}
	lines := totalBytes / int64(lineSize)
	sets := lines / int64(ways)
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	p := uint64(1)
	for p*2 <= uint64(sets) {
		p *= 2
	}
	c := &Cache{
		lineBits: lineBits,
		setMask:  p - 1,
		ways:     ways,
		tags:     make([][]uint64, p),
	}
	for i := range c.tags {
		c.tags[i] = make([]uint64, 0, ways)
	}
	return c
}

// Access touches one byte at addr.
func (c *Cache) Access(addr uint64) {
	c.accesses++
	line := addr >> c.lineBits
	set := c.tags[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			// Hit: move to front.
			copy(set[1:i+1], set[:i])
			set[0] = line
			return
		}
	}
	c.misses++
	if len(set) < c.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.tags[line&c.setMask] = set
}

// AccessRange touches every cache line in [addr, addr+size).
func (c *Cache) AccessRange(addr uint64, size int) {
	if size <= 0 {
		return
	}
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	for line := first; line <= last; line++ {
		c.Access(line << c.lineBits)
	}
}

// Accesses returns the number of byte/line touches replayed.
func (c *Cache) Accesses() int64 { return c.accesses }

// Misses returns the number of line misses.
func (c *Cache) Misses() int64 { return c.misses }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = c.tags[i][:0]
	}
	c.accesses = 0
	c.misses = 0
}

package cachesim

import (
	"spkadd/internal/hashtab"
	"spkadd/internal/matrix"
)

// hashMul mirrors the multiplicative hash constant of
// internal/hashtab so traced probe sequences match the real kernels.
const hashMul uint32 = 2654435761

// Synthetic address-space bases. Inputs, hash table and output live in
// disjoint regions, as separate heap allocations would.
const (
	tableBase  = uint64(1) << 39
	outputBase = uint64(2) << 40
	inputBase  = uint64(4) << 40
	inputStep  = uint64(1) << 36 // spacing between input matrices
)

const (
	symbolicSlot = 4  // bytes per symbolic table slot
	addSlot      = 12 // bytes per numeric table slot
	entryBytes   = 12 // bytes per streamed (rowid, value) entry
)

// TraceConfig describes the modelled machine and kernel variant.
type TraceConfig struct {
	// CacheBytes is the total last-level cache M. Ways/LineSize
	// default to 16-way, 64-byte lines.
	CacheBytes int64
	Ways       int
	LineSize   int
	// Threads is T in the sliding partition formula: T thread-private
	// tables share the LLC, so a single traced thread sees M/T bytes
	// of effective capacity.
	Threads int
	// Sliding selects the sliding-hash kernel (Algorithms 7-8);
	// otherwise the plain hash kernel (Algorithms 5-6) is traced.
	Sliding bool
	// LoadFactor matches the hash-table sizing of the real kernels.
	LoadFactor float64
	// MaxTableEntries caps sliding tables explicitly (Fig 4 sweeps).
	MaxTableEntries int
}

func (c TraceConfig) loadFactor() float64 {
	return hashtab.ClampLoadFactor(c.LoadFactor)
}

func (c TraceConfig) threads() int {
	if c.Threads < 1 {
		return 1
	}
	return c.Threads
}

// Result reports the traced miss counts, split by phase as in the
// paper's symbolic/computation breakdown.
type Result struct {
	SymbolicMisses int64
	NumericMisses  int64
	Accesses       int64
}

// TotalMisses returns the LL-miss total, the Table V quantity.
func (r Result) TotalMisses() int64 { return r.SymbolicMisses + r.NumericMisses }

// TraceSpKAdd replays the memory accesses of one thread executing the
// hash (or sliding-hash) SpKAdd over all columns and returns the
// last-level miss counts. The traced thread sees CacheBytes/Threads of
// effective capacity, modelling T threads sharing the LLC.
func TraceSpKAdd(as []*matrix.CSC, cfg TraceConfig) Result {
	ways := cfg.Ways
	if ways < 1 {
		ways = 16
	}
	line := cfg.LineSize
	if line < 1 {
		line = 64
	}
	effective := cfg.CacheBytes / int64(cfg.threads())
	if effective < int64(line) {
		effective = int64(line)
	}
	cache := New(effective, ways, line)

	var res Result
	n := as[0].Cols
	m := as[0].Rows
	tab := newTraceTable()
	// scratch counts output sizes without cache accounting; it is kept
	// separate from tab so that growing it for a whole column does not
	// inflate the small per-part tables the sliding path probes.
	scratch := newTraceTable()

	// Symbolic phase.
	for j := 0; j < n; j++ {
		inz := 0
		for _, a := range as {
			inz += a.ColNNZ(j)
		}
		if inz == 0 {
			continue
		}
		parts := 1
		if cfg.Sliding {
			parts = slidingParts(inz, symbolicSlot, cfg.threads(), cfg.CacheBytes, cfg.MaxTableEntries)
		}
		for part := 0; part < parts; part++ {
			r1 := matrix.Index(part * m / parts)
			r2 := matrix.Index((part + 1) * m / parts)
			partInz := 0
			for _, a := range as {
				partInz += a.ColRangeNNZ(j, r1, r2)
			}
			if partInz == 0 {
				continue
			}
			tab.grow(sizeFor(partInz, cfg.loadFactor()))
			for i, a := range as {
				rows, _ := a.ColRange(j, r1, r2)
				base := inputAddr(i, a, j)
				for p, r := range rows {
					cache.AccessRange(base+uint64(p)*entryBytes, entryBytes)
					tab.insert(r, cache, symbolicSlot)
				}
			}
		}
	}
	res.SymbolicMisses = cache.Misses()
	symAccesses := cache.Accesses()
	cache.Reset()

	// Numeric phase: identical probe streams plus the output stream.
	outPos := uint64(0)
	for j := 0; j < n; j++ {
		onz := distinctRows(as, j, scratch)
		if onz == 0 {
			continue
		}
		parts := 1
		if cfg.Sliding {
			parts = slidingParts(onz, addSlot, cfg.threads(), cfg.CacheBytes, cfg.MaxTableEntries)
		}
		for part := 0; part < parts; part++ {
			r1 := matrix.Index(part * m / parts)
			r2 := matrix.Index((part + 1) * m / parts)
			partInz := 0
			for _, a := range as {
				partInz += a.ColRangeNNZ(j, r1, r2)
			}
			if partInz == 0 {
				continue
			}
			// The real numeric kernel sizes a single table by the exact
			// output nnz (from the symbolic phase) and per-part tables
			// by the part's input nnz upper bound.
			growN := partInz
			if parts == 1 {
				growN = onz
			}
			tab.grow(sizeFor(growN, cfg.loadFactor()))
			written := 0
			for i, a := range as {
				rows, _ := a.ColRange(j, r1, r2)
				base := inputAddr(i, a, j)
				for p, r := range rows {
					cache.AccessRange(base+uint64(p)*entryBytes, entryBytes)
					if tab.insert(r, cache, addSlot) {
						written++
					}
				}
			}
			// Emit the part's output entries as a sequential stream.
			for w := 0; w < written; w++ {
				cache.AccessRange(outputBase+(outPos+uint64(w))*entryBytes, entryBytes)
			}
			outPos += uint64(written)
		}
	}
	res.NumericMisses = cache.Misses()
	res.Accesses = symAccesses + cache.Accesses()
	return res
}

// distinctRows counts nnz(B(:,j)) using the trace table without
// touching the cache model (this knowledge comes from the symbolic
// phase in the real kernel).
func distinctRows(as []*matrix.CSC, j int, tab *traceTable) int {
	inz := 0
	for _, a := range as {
		inz += a.ColNNZ(j)
	}
	if inz == 0 {
		return 0
	}
	tab.grow(sizeFor(inz, 0.5))
	n := 0
	for _, a := range as {
		for _, r := range a.ColRows(j) {
			if tab.insertQuiet(r) {
				n++
			}
		}
	}
	return n
}

func inputAddr(i int, a *matrix.CSC, j int) uint64 {
	return inputBase + uint64(i)*inputStep + uint64(a.ColPtr[j])*entryBytes
}

// sizeFor mirrors hashtab.SizeFor.
func sizeFor(n int, lf float64) int {
	need := int(float64(n)/lf) + 1
	p := 1
	for p < need {
		p <<= 1
	}
	return p
}

// slidingParts mirrors the partition arithmetic of Algorithms 7-8.
func slidingParts(nnz, bytesPerEntry, threads int, cacheBytes int64, maxEntries int) int {
	if nnz <= 0 {
		return 1
	}
	var parts int
	if maxEntries > 0 {
		parts = (nnz + maxEntries - 1) / maxEntries
	} else {
		need := int64(nnz) * int64(bytesPerEntry) * int64(threads)
		parts = int((need + cacheBytes - 1) / cacheBytes)
	}
	if parts < 1 {
		parts = 1
	}
	return parts
}

// traceTable replicates the linear-probing insert of internal/hashtab
// while reporting each probed slot to the cache model.
type traceTable struct {
	keys []matrix.Index
	mask uint32
}

func newTraceTable() *traceTable { return &traceTable{} }

// grow mirrors hashtab.Grow: storage only ever enlarges, but the
// active probe window narrows to the requested size.
func (t *traceTable) grow(size int) {
	if size > len(t.keys) {
		t.keys = make([]matrix.Index, size)
	}
	t.mask = uint32(size - 1)
	for i := 0; i < size; i++ {
		t.keys[i] = -1
	}
}

// insert probes for r, touching each probed slot in the cache model,
// and returns true when r was newly inserted.
func (t *traceTable) insert(r matrix.Index, cache *Cache, slotBytes int) bool {
	h := (hashMul * uint32(r)) & t.mask
	for {
		cache.AccessRange(tableBase+uint64(h)*uint64(slotBytes), slotBytes)
		k := t.keys[h]
		if k == -1 {
			t.keys[h] = r
			return true
		}
		if k == r {
			return false
		}
		h = (h + 1) & t.mask
	}
}

// insertQuiet probes without cache accounting.
func (t *traceTable) insertQuiet(r matrix.Index) bool {
	h := (hashMul * uint32(r)) & t.mask
	for {
		k := t.keys[h]
		if k == -1 {
			t.keys[h] = r
			return true
		}
		if k == r {
			return false
		}
		h = (h + 1) & t.mask
	}
}

package spkadd

import (
	"errors"
	"testing"
)

// TestAdderBusyDeterministic pins the misuse contract without relying
// on scheduling luck: with the busy flag held, every entry point must
// refuse with ErrAdderInUse, and releasing the flag restores service.
func TestAdderBusyDeterministic(t *testing.T) {
	ad := NewAdder()
	as := []*Matrix{RandomER(64, 8, 2, 1), RandomER(64, 8, 2, 2)}

	ad.busy.Store(true)
	if _, err := ad.Add(as, Options{}); !errors.Is(err, ErrAdderInUse) {
		t.Fatalf("Add with busy flag: err = %v, want ErrAdderInUse", err)
	}
	if _, _, err := ad.AddTimed(as, Options{}); !errors.Is(err, ErrAdderInUse) {
		t.Fatalf("AddTimed with busy flag: err = %v, want ErrAdderInUse", err)
	}
	if _, err := ad.AddScaled(as, []Value{1, 1}, Options{}); !errors.Is(err, ErrAdderInUse) {
		t.Fatalf("AddScaled with busy flag: err = %v, want ErrAdderInUse", err)
	}
	ad.busy.Store(false)

	if _, err := ad.Add(as, Options{}); err != nil {
		t.Fatalf("Add after release: %v", err)
	}
	// A failed (busy) call must not have consumed the flag: the adder
	// still serves calls and the flag is clear between them.
	if ad.busy.Load() {
		t.Fatal("busy flag left set after a successful call")
	}
}

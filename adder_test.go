package spkadd_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"spkadd"
	"spkadd/internal/generate"
)

func adderTestInputs(k, rows, cols, d int, seed uint64) []*spkadd.Matrix {
	return generate.ERCollection(k, generate.Opts{Rows: rows, Cols: cols, NNZPerCol: d, Seed: seed})
}

func identical(a, b *spkadd.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for j := 0; j <= a.Cols; j++ {
		if a.ColPtr[j] != b.ColPtr[j] {
			return false
		}
	}
	for p := range a.RowIdx {
		if a.RowIdx[p] != b.RowIdx[p] || a.Val[p] != b.Val[p] {
			return false
		}
	}
	return true
}

// TestAdderParity proves Adder.Add is bit-identical to the one-shot
// spkadd.Add across algorithms, engines and sortedness — on one Adder
// reused through the whole grid, so every configuration also runs on
// scratch left behind by the previous one.
func TestAdderParity(t *testing.T) {
	ad := spkadd.NewAdder()
	as := adderTestInputs(8, 4096, 48, 12, 3)
	small := adderTestInputs(3, 256, 8, 4, 4)
	algs := []spkadd.Algorithm{
		spkadd.Hash, spkadd.SPA, spkadd.Heap, spkadd.SlidingHash,
		spkadd.TwoWayIncremental, spkadd.TwoWayTree,
	}
	for _, alg := range algs {
		for _, p := range []spkadd.Phases{spkadd.PhasesAuto, spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
			for _, sorted := range []bool{true, false} {
				for _, in := range [][]*spkadd.Matrix{as, small} {
					opt := spkadd.Options{Algorithm: alg, Phases: p, SortedOutput: sorted}
					got, err := ad.Add(in, opt)
					if err != nil {
						t.Fatalf("%v/%v/sorted=%v: %v", alg, p, sorted, err)
					}
					want, err := spkadd.Add(in, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !sorted {
						got, want = got.Clone().SortColumns(), want.Clone().SortColumns()
					}
					if !identical(got, want) {
						t.Fatalf("%v/%v/sorted=%v: Adder result differs from Add", alg, p, sorted)
					}
				}
			}
		}
	}
	// AddScaled parity on the same Adder.
	coeffs := make([]spkadd.Value, len(as))
	for i := range coeffs {
		coeffs[i] = 1.0 / spkadd.Value(len(as))
	}
	got, err := ad.AddScaled(as, coeffs, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := spkadd.AddScaled(as, coeffs, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !identical(got, want) {
		t.Fatal("AddScaled: Adder result differs from package AddScaled")
	}
}

// TestAdderStreaming exercises the documented self-input pattern
// sum = ad.Add([sum, delta]) against an independently maintained
// reference.
func TestAdderStreaming(t *testing.T) {
	ad := spkadd.NewAdder()
	opt := spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true}
	var sum, ref *spkadd.Matrix
	for step := 0; step < 10; step++ {
		delta := spkadd.RandomER(1024, 32, 4, uint64(step+1))
		if sum == nil {
			var err error
			sum, err = ad.Add([]*spkadd.Matrix{delta}, opt)
			if err != nil {
				t.Fatal(err)
			}
			ref = delta.Clone().SortColumns()
			continue
		}
		var err error
		sum, err = ad.Add([]*spkadd.Matrix{sum, delta}, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref, err = spkadd.Add([]*spkadd.Matrix{ref, delta}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !identical(sum, ref) {
			t.Fatalf("step %d: streaming sum diverged from reference", step)
		}
	}
}

// TestAdderZeroSteadyStateAllocs is the tentpole's acceptance
// criterion: once warmed, an Adder allocates nothing — for Hash, SPA
// and Heap under all three Phases engines, sorted and unsorted.
// Threads is pinned to 1 because spawning worker goroutines allocates
// their closures; the multi-threaded path reuses all the same scratch.
func TestAdderZeroSteadyStateAllocs(t *testing.T) {
	as := adderTestInputs(8, 2048, 48, 8, 9)
	for _, alg := range []spkadd.Algorithm{spkadd.Hash, spkadd.SPA, spkadd.Heap} {
		for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
			for _, sorted := range []bool{false, true} {
				t.Run(fmt.Sprintf("%v/%v/sorted=%v", alg, p, sorted), func(t *testing.T) {
					ad := spkadd.NewAdder()
					opt := spkadd.Options{Algorithm: alg, Phases: p, SortedOutput: sorted, Threads: 1}
					for warm := 0; warm < 3; warm++ {
						if _, err := ad.Add(as, opt); err != nil {
							t.Fatal(err)
						}
					}
					allocs := testing.AllocsPerRun(10, func() {
						if _, err := ad.Add(as, opt); err != nil {
							t.Fatal(err)
						}
					})
					if allocs != 0 {
						t.Errorf("steady state allocates %.1f times per op, want 0", allocs)
					}
				})
			}
		}
	}
}

// TestAdderZeroSteadyStateAllocsMonoid extends the zero-allocation
// contract to the generic combine path: a warmed non-Plus Adder — the
// monoid resolution, the AddWith kernels, the input maps — must also
// allocate nothing in steady state, for every engine.
func TestAdderZeroSteadyStateAllocsMonoid(t *testing.T) {
	as := adderTestInputs(8, 2048, 48, 8, 9)
	for _, m := range []*spkadd.Monoid{spkadd.Min, spkadd.Any, spkadd.Count} {
		for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
			t.Run(fmt.Sprintf("%s/%v", m.Name, p), func(t *testing.T) {
				ad := spkadd.NewAdder()
				opt := spkadd.Options{Algorithm: spkadd.Hash, Phases: p, Monoid: m, SortedOutput: true, Threads: 1}
				for warm := 0; warm < 3; warm++ {
					if _, err := ad.Add(as, opt); err != nil {
						t.Fatal(err)
					}
				}
				allocs := testing.AllocsPerRun(10, func() {
					if _, err := ad.Add(as, opt); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("generic-path steady state allocates %.1f times per op, want 0", allocs)
				}
			})
		}
	}
}

// TestAdderZeroSteadyStateAllocsSchedules extends the zero-allocation
// contract to scheduling: a warmed Adder allocates nothing for EVERY
// Options.Schedule — including the racy Dynamic and WeightedStealing
// modes, whose column→worker assignment varies run to run — and at
// Threads > 1, where the resident executor parks its workers between
// calls. (The older alloc tests predate the executor and pin Threads
// to 1 because the spawn-per-phase scheduler allocated goroutines;
// that restriction is exactly what this PR removed.)
//
// The workload's total input nnz (~3K entries) must stay well under
// one fused arena chunk (32Ki entries): under racy schedules the
// fused engine's zero is strict only while any worker's staged
// volume fits one chunk — larger workloads would make this assertion
// flaky (see arena.reserve).
func TestAdderZeroSteadyStateAllocsSchedules(t *testing.T) {
	as := adderTestInputs(8, 2048, 48, 8, 9)
	schedules := []spkadd.Schedule{
		spkadd.ScheduleWeighted, spkadd.ScheduleStatic,
		spkadd.ScheduleDynamic, spkadd.ScheduleWeightedStealing,
	}
	for _, s := range schedules {
		for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
			t.Run(fmt.Sprintf("%v/%v", s, p), func(t *testing.T) {
				ad := spkadd.NewAdder()
				opt := spkadd.Options{Algorithm: spkadd.Hash, Phases: p, Schedule: s, SortedOutput: true, Threads: 2}
				for warm := 0; warm < 3; warm++ {
					if _, err := ad.Add(as, opt); err != nil {
						t.Fatal(err)
					}
				}
				allocs := testing.AllocsPerRun(10, func() {
					if _, err := ad.Add(as, opt); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("steady state allocates %.1f times per op, want 0", allocs)
				}
			})
		}
	}
}

// TestPooledAddConcurrent hammers the package-level Add — whose
// scratch comes from one shared sync.Pool of workspaces — from many
// goroutines. Run under -race (the CI race job does) this is the
// pooled-workspace race test; each goroutine also checks its own
// results so cross-contamination would surface as corruption.
func TestPooledAddConcurrent(t *testing.T) {
	as := adderTestInputs(6, 1024, 32, 8, 11)
	want, err := spkadd.Add(as, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound}[(g+i)%3]
				got, err := spkadd.Add(as, spkadd.Options{Algorithm: spkadd.Hash, Phases: p, SortedOutput: true, Threads: 2})
				if err != nil {
					errs <- err
					return
				}
				if !identical(got, want) {
					errs <- fmt.Errorf("goroutine %d iter %d: corrupted result", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAdderConcurrentMisuse hammers a single Adder from many
// goroutines. Overlapping calls must fail with ErrAdderInUse — never
// corrupt state or return a wrong result. Results are not dereferenced
// (a successful caller's matrix may legitimately be recycled by the
// next successful call); the deterministic busy-flag check lives in
// the internal test.
func TestAdderConcurrentMisuse(t *testing.T) {
	ad := spkadd.NewAdder()
	as := adderTestInputs(4, 512, 16, 6, 13)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := ad.Add(as, spkadd.Options{Algorithm: spkadd.Hash, Threads: 1})
				switch {
				case err == nil:
					if got == nil {
						errs <- errors.New("nil matrix with nil error")
						return
					}
				case errors.Is(err, spkadd.ErrAdderInUse):
					// expected under contention
				default:
					errs <- fmt.Errorf("unexpected error: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The Adder must be fully usable afterwards.
	got, err := ad.Add(as, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := spkadd.Add(as, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !identical(got, want) {
		t.Fatal("Adder corrupted by concurrent misuse")
	}
}

// TestAdderZeroValue checks the documented zero-value readiness.
func TestAdderZeroValue(t *testing.T) {
	var ad spkadd.Adder
	as := adderTestInputs(3, 128, 8, 4, 17)
	got, err := ad.Add(as, spkadd.Options{Algorithm: spkadd.SPA, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := spkadd.Add(as, spkadd.Options{Algorithm: spkadd.SPA, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !identical(got, want) {
		t.Fatal("zero-value Adder result differs")
	}
}

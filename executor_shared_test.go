package spkadd_test

import (
	"sync"
	"testing"

	"spkadd"
)

// TestSharedExecutorAddersAndPool is the executor-sharing race
// hammer: one budgeted Executor serves several concurrent Adders, a
// concurrent Pool's reductions and direct package-level Adds at the
// same time, every caller checking its own results against
// independently computed references. Regions from different callers
// must serialize on the shared pool without corrupting any caller's
// workspace. The CI race job runs this under -race.
func TestSharedExecutorAddersAndPool(t *testing.T) {
	ex := spkadd.NewExecutor(3)
	defer ex.Close()

	const rows, cols = 2048, 32
	streams := make([][]*spkadd.Matrix, 3)
	wants := make([]*spkadd.Matrix, len(streams))
	for g := range streams {
		streams[g] = []*spkadd.Matrix{
			spkadd.RandomER(rows, cols, 8, uint64(10*g+1)),
			spkadd.RandomRMAT(rows, cols, 8, uint64(10*g+2)),
			spkadd.RandomER(rows, cols, 4, uint64(10*g+3)),
		}
		want, err := spkadd.Add(streams[g], spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
		if err != nil {
			t.Fatal(err)
		}
		wants[g] = want
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Concurrent Adders, one per goroutine, all on the shared pool,
	// alternating schedules so the steal path runs concurrently with
	// weighted regions from other callers.
	for g := range streams {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ad := spkadd.NewAdder()
			schedules := []spkadd.Schedule{spkadd.ScheduleWeighted, spkadd.ScheduleWeightedStealing, spkadd.ScheduleDynamic}
			for iter := 0; iter < 15; iter++ {
				opt := spkadd.Options{
					Algorithm: spkadd.Hash, SortedOutput: true,
					Threads: 4, Schedule: schedules[iter%len(schedules)], Executor: ex,
				}
				got, err := ad.Add(streams[g], opt)
				if err != nil {
					errs <- err
					return
				}
				if !got.Equal(wants[g]) {
					t.Errorf("adder %d iter %d: result differs under shared executor", g, iter)
					return
				}
			}
		}(g)
	}

	// A concurrent Pool whose reductions also run on the shared
	// executor (explicit Threads > 1 so they are internally parallel).
	pool := spkadd.NewPool(rows, cols, spkadd.PoolOptions{
		Shards:      2,
		BudgetBytes: 1 << 16,
		Add:         spkadd.Options{Algorithm: spkadd.Hash, Threads: 2, Executor: ex, Schedule: spkadd.ScheduleWeightedStealing},
	})
	all := make([]*spkadd.Matrix, 0, 9)
	for _, stream := range streams {
		all = append(all, stream...)
	}
	poolWant, err := spkadd.Add(all, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	for g := range streams {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, a := range streams[g] {
				if err := pool.Push(a); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, err := pool.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if !got.Clone().SortColumns().Equal(poolWant) {
		t.Error("pool sum differs under shared executor")
	}
}

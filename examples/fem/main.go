// Command fem demonstrates finite-element assembly with SpKAdd: local
// element stiffness matrices are assembled into the global stiffness
// matrix. The paper (§I) notes this problem was traditionally labelled
// as offering little parallelism — but expressed as the addition of a
// collection of sparse matrices it parallelizes cleanly.
//
// The mesh is a regular 2D grid of bilinear quadrilateral elements;
// each element contributes a 4x4 local stiffness block. Elements are
// batched by color (no two elements in a batch share a node is NOT
// required here — SpKAdd handles overlap by summation), one sparse
// matrix per batch, and the global matrix is their SpKAdd.
//
//	go run ./examples/fem
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"spkadd"
)

const (
	nx, ny  = 256, 256 // elements per side; (nx+1)*(ny+1) nodes
	batches = 16       // element batches, one sparse matrix each
)

// localStiffness is the 4x4 element stiffness matrix of a unit square
// bilinear quad for the Laplace operator (standard closed form).
var localStiffness = [4][4]float64{
	{2.0 / 3, -1.0 / 6, -1.0 / 3, -1.0 / 6},
	{-1.0 / 6, 2.0 / 3, -1.0 / 6, -1.0 / 3},
	{-1.0 / 3, -1.0 / 6, 2.0 / 3, -1.0 / 6},
	{-1.0 / 6, -1.0 / 3, -1.0 / 6, 2.0 / 3},
}

func main() {
	nodes := (nx + 1) * (ny + 1)
	elems := nx * ny
	fmt.Printf("FEM assembly: %dx%d quad mesh, %d elements, %d nodes, %d batches\n\n",
		nx, ny, elems, nodes, batches)

	// Build one COO per batch of elements, then convert to CSC. Each
	// element stamps its 4x4 block at its corner nodes.
	start := time.Now()
	parts := make([]*spkadd.Matrix, batches)
	for b := 0; b < batches; b++ {
		coo := spkadd.NewCOO(nodes, nodes)
		for e := b; e < elems; e += batches {
			ex, ey := e%nx, e/nx
			// Corner node ids, counter-clockwise.
			n := [4]int{
				ey*(nx+1) + ex,
				ey*(nx+1) + ex + 1,
				(ey+1)*(nx+1) + ex + 1,
				(ey+1)*(nx+1) + ex,
			}
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					coo.Append(spkadd.Index(n[i]), spkadd.Index(n[j]), localStiffness[i][j])
				}
			}
		}
		parts[b] = coo.ToCSC()
	}
	buildTime := time.Since(start)

	// Assemble: the global stiffness matrix is the SpKAdd of the
	// batch matrices. Batches overlap heavily at shared nodes, so the
	// compression factor is high — the regime where k-way addition
	// shines.
	start = time.Now()
	global, err := spkadd.Add(parts, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		log.Fatal(err)
	}
	asmTime := time.Since(start)

	in := 0
	for _, p := range parts {
		in += p.NNZ()
	}
	fmt.Printf("batch build time    : %v\n", buildTime.Round(time.Microsecond))
	fmt.Printf("SpKAdd assembly time: %v\n", asmTime.Round(time.Microsecond))
	fmt.Printf("batch entries       : %d\n", in)
	fmt.Printf("global nnz          : %d (compression factor %.2f)\n\n",
		global.NNZ(), float64(in)/float64(global.NNZ()))

	// Sanity checks a FEM practitioner would run:
	// every interior row of the Laplace stiffness matrix sums to 0.
	rowSum := make([]float64, nodes)
	for j := 0; j < global.Cols; j++ {
		rows, vals := global.ColRows(j), global.ColVals(j)
		for p := range rows {
			rowSum[rows[p]] += vals[p]
		}
	}
	worst := 0.0
	for _, s := range rowSum {
		if a := math.Abs(s); a > worst {
			worst = a
		}
	}
	fmt.Printf("max |row sum| = %.2e (should be ~0: the Laplacian annihilates constants)\n", worst)

	// Symmetry check on a few entries.
	sym := true
	for _, pair := range [][2]int{{0, 1}, {nx + 1, 1}, {nodes - 2, nodes - 1}} {
		if math.Abs(global.At(pair[0], pair[1])-global.At(pair[1], pair[0])) > 1e-12 {
			sym = false
		}
	}
	fmt.Printf("spot symmetry check: %v\n", sym)
}

// Command summa demonstrates SpKAdd's role inside distributed sparse
// matrix multiplication (the paper's primary motivation, Figs 5-6):
// a sparse SUMMA run on a simulated process grid, where every process
// must reduce the intermediate products of all stages with SpKAdd.
// Three variants are compared, as in Fig 6: heap SpKAdd over sorted
// intermediates, hash SpKAdd over sorted intermediates, and hash
// SpKAdd over unsorted intermediates (which also lets the local
// multiplies skip sorting).
//
//	go run ./examples/summa
package main

import (
	"fmt"
	"log"
	"time"

	"spkadd"
)

func main() {
	const (
		n       = 6000 // square matrix dimension
		cluster = 256  // protein-like cluster size (spans several grid blocks)
		deg     = 192  // average similarity degree
		grid    = 16   // 16x16 = 256 simulated processes, k=16 intermediates per process
	)
	fmt.Printf("simulated sparse SUMMA: %dx%d protein-similarity-like operands, %dx%d grid\n\n",
		n, n, grid, grid)

	// Protein-similarity-style operands (clustered + skewed), the
	// matrix family of the paper's Metaclust/Isolates experiments.
	a := proteinLike(n, cluster, deg, 1)
	b := proteinLike(n, cluster, deg, 2)
	fmt.Printf("A nnz=%d, B nnz=%d\n\n", a.NNZ(), b.NNZ())

	type variant struct {
		name string
		cfg  spkadd.SummaConfig
	}
	variants := []variant{
		{"Heap (sorted intermediates)", spkadd.SummaConfig{Grid: grid, SpKAdd: spkadd.Heap, SortIntermediates: true}},
		{"Sorted Hash", spkadd.SummaConfig{Grid: grid, SpKAdd: spkadd.Hash, SortIntermediates: true}},
		{"Unsorted Hash", spkadd.SummaConfig{Grid: grid, SpKAdd: spkadd.Hash, SortIntermediates: false}},
	}

	var refNNZ int
	fmt.Printf("%-30s %14s %14s %8s\n", "variant", "local multiply", "SpKAdd", "cf")
	for i, v := range variants {
		v.cfg.Sequential = true // undistorted phase timing
		c, rep, err := spkadd.RunSumma(a, b, v.cfg)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		if i == 0 {
			refNNZ = c.NNZ()
		} else if c.NNZ() != refNNZ {
			log.Fatalf("%s: product nnz %d differs from reference %d", v.name, c.NNZ(), refNNZ)
		}
		fmt.Printf("%-30s %14v %14v %8.2f\n", v.name,
			rep.LocalMultiplySum.Round(time.Millisecond),
			rep.SpKAddSum.Round(time.Millisecond),
			rep.CompressionFactor)
	}
	fmt.Println("\nExpected shape (paper Fig 6): hash SpKAdd is much faster than heap,")
	fmt.Println("and unsorted intermediates shave the local multiply further.")
}

// proteinLike builds a clustered, skewed similarity matrix via the
// public API: dense-ish blocks along the diagonal plus hub-biased
// cross edges.
func proteinLike(n, cluster, deg int, seed uint64) *spkadd.Matrix {
	coo := spkadd.NewCOO(n, n)
	state := seed * 0x9E3779B97F4A7C15
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	in := deg * 3 / 4
	for v := 0; v < n; v++ {
		base := (v / cluster) * cluster
		span := cluster
		if base+span > n {
			span = n - base
		}
		for t := 0; t < in; t++ {
			coo.Append(spkadd.Index(v), spkadd.Index(base+int(next()%uint64(span))), 1)
		}
		for t := 0; t < deg-in; t++ {
			f := float64(next()>>11) / (1 << 53)
			u := int(f * f * float64(n))
			if u >= n {
				u = n - 1
			}
			coo.Append(spkadd.Index(v), spkadd.Index(u), 1)
		}
	}
	return coo.ToCSC()
}

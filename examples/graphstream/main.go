// Command graphstream demonstrates streaming accumulation of graph
// snapshots (the paper's "streaming accumulations of graphs" use
// case): edge updates arrive in timed batches, each batch is a sparse
// adjacency-matrix delta, and the current graph is the SpKAdd of the
// latest window of batches. Re-reducing the window on every tick with
// k-way addition is far cheaper than chaining pairwise adds.
//
//	go run ./examples/graphstream
package main

import (
	"fmt"
	"log"
	"time"

	"spkadd"
)

const (
	vertices  = 1 << 17 // graph size
	batchEdge = 20000   // edge updates per batch
	window    = 48      // sliding window length (k for SpKAdd)
	ticks     = 8       // stream steps to simulate
)

// edgeBatch fabricates one batch of weighted edge updates with a
// skewed (hub-heavy) endpoint distribution.
func edgeBatch(tick int) *spkadd.Matrix {
	return spkadd.RandomRMAT(vertices, vertices, max(1, batchEdge/vertices)+1, uint64(tick+1))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func main() {
	fmt.Printf("streaming graph: |V|=%d, window of %d batches, %d ticks\n\n", vertices, window, ticks)

	// Pre-fill the window.
	batches := make([]*spkadd.Matrix, 0, window)
	for i := 0; i < window; i++ {
		batches = append(batches, edgeBatch(i))
	}

	// The per-tick reduction reuses one Adder: after the first tick
	// its hash tables and output buffers are resident, so the steady
	// state allocates nothing. The result is owned by the Adder and
	// valid until the next tick's Add — exactly the lifetime this loop
	// needs.
	ad := spkadd.NewAdder()

	var kway, pairwise time.Duration
	for tick := 0; tick < ticks; tick++ {
		// New batch arrives; the oldest falls out of the window.
		batches = append(batches[1:], edgeBatch(window+tick))

		// Current graph = k-way sum of the window.
		start := time.Now()
		g, err := ad.Add(batches, spkadd.Options{Algorithm: spkadd.Hash})
		if err != nil {
			log.Fatal(err)
		}
		kway += time.Since(start)

		// The same reduction with chained pairwise adds (what a
		// library without SpKAdd would do).
		start = time.Now()
		g2, err := spkadd.Add(batches, spkadd.Options{Algorithm: spkadd.TwoWayTree})
		if err != nil {
			log.Fatal(err)
		}
		pairwise += time.Since(start)

		if g.NNZ() != g2.NNZ() {
			log.Fatalf("tick %d: k-way and pairwise disagree (%d vs %d)", tick, g.NNZ(), g2.NNZ())
		}
		deg := float64(g.NNZ()) / float64(vertices)
		fmt.Printf("tick %2d: window nnz=%-9d avg degree %.2f\n", tick, g.NNZ(), deg)
	}

	fmt.Printf("\nper-tick window reduction, averaged over %d ticks:\n", ticks)
	fmt.Printf("  k-way hash SpKAdd : %v\n", (kway / ticks).Round(time.Microsecond))
	fmt.Printf("  2-way tree adds   : %v (%.1fx slower)\n",
		(pairwise / ticks).Round(time.Microsecond), float64(pairwise)/float64(kway))
}

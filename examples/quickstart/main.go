// Command quickstart shows the minimal SpKAdd workflow: generate a
// collection of sparse matrices, add them with a few different
// algorithms, and compare timings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"spkadd"
)

func main() {
	const (
		k    = 32     // matrices to add
		rows = 100000 // rows per matrix
		cols = 256    // columns per matrix
		d    = 64     // average nonzeros per column
	)

	fmt.Printf("SpKAdd quickstart: adding k=%d ER matrices (%d x %d, d=%d)\n\n", k, rows, cols, d)
	as := make([]*spkadd.Matrix, k)
	totalIn := 0
	for i := range as {
		as[i] = spkadd.RandomER(rows, cols, d, uint64(i+1))
		totalIn += as[i].NNZ()
	}

	// The one-liner: Auto picks hash or sliding hash for you.
	sum, err := spkadd.Add(as, spkadd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cf := float64(totalIn) / float64(sum.NNZ())
	fmt.Printf("input nnz  = %d across %d matrices\n", totalIn, k)
	fmt.Printf("output nnz = %d (compression factor %.3f)\n\n", sum.NNZ(), cf)

	// Compare algorithms explicitly.
	algs := []spkadd.Algorithm{
		spkadd.TwoWayIncremental, spkadd.TwoWayTree,
		spkadd.Heap, spkadd.SPA, spkadd.Hash, spkadd.SlidingHash,
	}
	fmt.Printf("%-20s %12s %12s %12s\n", "algorithm", "symbolic", "numeric", "total")
	for _, alg := range algs {
		start := time.Now()
		got, pt, err := spkadd.AddTimed(as, spkadd.Options{Algorithm: alg})
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		total := time.Since(start)
		if got.NNZ() != sum.NNZ() {
			log.Fatalf("%v produced nnz=%d, want %d", alg, got.NNZ(), sum.NNZ())
		}
		fmt.Printf("%-20v %12v %12v %12v\n", alg, pt.Symbolic.Round(time.Microsecond),
			pt.Numeric.Round(time.Microsecond), total.Round(time.Microsecond))
	}
	fmt.Println("\nAll algorithms agree on the result. The hash family is the")
	fmt.Println("paper's recommendation; 2-way incremental degrades as k grows.")
}

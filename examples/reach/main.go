// Command reach demonstrates the generic value axis on a multi-layer
// transport network: the same k-way SpKAdd engines compute one-hop
// reachability as a *boolean* union (MatrixOf[bool] under the Any
// monoid — "is there any service from u to v?", 1 byte of value
// traffic per entry instead of 8) and the exact parallel-edge count as
// an *int64* sum (MatrixOf[int64] on the Plus fast path — integer
// counts stay exact where floats would round). Same kernels, same
// Options, different element types.
//
//	go run ./examples/reach
package main

import (
	"fmt"
	"log"

	"spkadd"
)

const (
	stations = 1 << 14 // vertices of the network
	layers   = 16      // k: independent service layers (lines, operators)
	degree   = 5       // average departures per station per layer
)

// edges fabricates one service layer as a deterministic coordinate
// list: hub-heavy like real networks (a splitmix-style generator
// biases both endpoints toward low station ids). Overlapping layers
// share many station pairs, which is what the bool union collapses
// and the int64 sum counts.
func edges(layer int) []spkadd.TripleOf[bool] {
	s := uint64(layer/3 + 1) // consecutive layers share a seed: overlap
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	hub := func(r uint64) spkadd.Index {
		// Square the unit draw: density concentrates on low ids.
		f := float64(r>>11) / (1 << 53)
		return spkadd.Index(f * f * stations)
	}
	ts := make([]spkadd.TripleOf[bool], stations*degree)
	for i := range ts {
		ts[i] = spkadd.TripleOf[bool]{Row: hub(next()), Col: hub(next()), Val: true}
	}
	return ts
}

func main() {
	fmt.Printf("reachability over %d layers of a %d-station network\n\n", layers, stations)
	asBool := make([]*spkadd.MatrixOf[bool], layers)
	asInt := make([]*spkadd.MatrixOf[int64], layers)
	total := 0
	for i := range asBool {
		ts := edges(i)
		asBool[i] = spkadd.FromTriplesOf(stations, stations, ts)
		counts := make([]spkadd.TripleOf[int64], len(ts))
		for p, t := range ts {
			counts[p] = spkadd.TripleOf[int64]{Row: t.Row, Col: t.Col, Val: 1}
		}
		asInt[i] = spkadd.FromTriplesOf(stations, stations, counts)
		total += len(ts)
	}

	// Boolean reachability: true wherever any layer has service. bool
	// has no "+", so a monoid is mandatory — Any is the natural one.
	// A warmed generic Adder keeps the steady state allocation-free,
	// exactly like the float64 Adder.
	ad := spkadd.NewAdderOf[bool]()
	reach, err := ad.Add(asBool, spkadd.OptionsOf[bool]{Monoid: spkadd.AnyFor[bool](), SortedOutput: true})
	if err != nil {
		log.Fatal(err)
	}

	// Exact service counts: how many layers serve each station pair.
	// int64 rides the same inlined += fast path as float64 — and 2^63
	// parallel edges won't lose a unit to rounding.
	count, err := spkadd.Add(asInt, spkadd.OptionsOf[int64]{SortedOutput: true})
	if err != nil {
		log.Fatal(err)
	}

	// The two views must agree on structure, and the counts must
	// account for every input edge exactly.
	if reach.NNZ() != count.NNZ() {
		log.Fatalf("bool union and int64 count disagree on structure: %d vs %d", reach.NNZ(), count.NNZ())
	}
	var sum int64
	multi := 0
	for _, tr := range count.Triples() {
		sum += tr.Val
		if tr.Val > 1 {
			multi++
		}
	}
	if sum != int64(total) {
		log.Fatalf("int64 counts lost edges: %d counted, %d put in", sum, total)
	}

	fmt.Printf("input edges (with repeats):  %d\n", total)
	fmt.Printf("reachable pairs (bool Any):  %d (%.1fx collapsed)\n",
		reach.NNZ(), float64(total)/float64(reach.NNZ()))
	fmt.Printf("multi-layer pairs (int64):   %d (%.1f%% of reachable)\n",
		multi, 100*float64(multi)/float64(reach.NNZ()))
	fmt.Printf("edges accounted for exactly: %d == %d ✓\n", sum, total)
}

// Command gradient demonstrates the sparse-allreduce use case from the
// paper's introduction: in data-parallel deep learning with gradient
// sparsification, each of k workers contributes a top-κ sparsified
// gradient for a weight matrix, and the reduction step must add the k
// sparse matrices. With mini-batching these are genuinely sparse
// *matrices*, not vectors, and the in-node reduction is exactly
// SpKAdd.
//
//	go run ./examples/gradient
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"spkadd"
)

const (
	workers   = 64   // k: gradient contributions to reduce
	layerRows = 4096 // weight matrix shape (e.g. a dense layer)
	layerCols = 1024
	topK      = 16 // sparsification: keep top-κ entries per column
)

// sparsifiedGradient fabricates worker w's top-κ gradient update: a
// dense simulated gradient is thresholded per column so only the κ
// largest-magnitude entries survive — the "algorithmic sparsification
// of gradient updates" the paper cites as a driving application.
func sparsifiedGradient(w int) *spkadd.Matrix {
	coo := spkadd.NewCOO(layerRows, layerCols)
	rng := uint64(w+1) * 0x9E3779B97F4A7C15
	next := func() uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for j := 0; j < layerCols; j++ {
		// Draw 4κ candidate entries, keep the κ largest magnitudes.
		type cand struct {
			row spkadd.Index
			val float64
		}
		cands := make([]cand, 4*topK)
		for i := range cands {
			u := float64(next()>>11) / (1 << 53)
			v := math.Tan(math.Pi * (u - 0.5)) // heavy-tailed values
			cands[i] = cand{row: spkadd.Index(next() % layerRows), val: v}
		}
		sort.Slice(cands, func(a, b int) bool {
			return math.Abs(cands[a].val) > math.Abs(cands[b].val)
		})
		for _, c := range cands[:topK] {
			coo.Append(c.row, spkadd.Index(j), c.val)
		}
	}
	return coo.ToCSC()
}

func main() {
	fmt.Printf("sparse allreduce: %d workers, %dx%d layer, top-%d per column\n\n",
		workers, layerRows, layerCols, topK)

	grads := make([]*spkadd.Matrix, workers)
	totalIn := 0
	for w := range grads {
		grads[w] = sparsifiedGradient(w)
		totalIn += grads[w].NNZ()
	}

	// Reduce with the recommended hash algorithm, averaging in the
	// same pass (B = Σ (1/k)·G_i); unsorted output is fine because the
	// result is scattered into the dense weights.
	coeffs := make([]spkadd.Value, workers)
	for i := range coeffs {
		coeffs[i] = 1.0 / float64(workers)
	}
	start := time.Now()
	update, err := spkadd.AddScaled(grads, coeffs, spkadd.Options{Algorithm: spkadd.Hash})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	density := float64(update.NNZ()) / float64(layerRows*layerCols)
	fmt.Printf("reduced %d sparse gradients in %v\n", workers, elapsed.Round(time.Microsecond))
	fmt.Printf("input nnz  = %d\n", totalIn)
	fmt.Printf("output nnz = %d (%.2f%% dense, compression factor %.2f)\n",
		update.NNZ(), 100*density, float64(totalIn)/float64(update.NNZ()))

	// Apply the averaged update to dense weights (SGD step).
	weights := make([]float64, layerRows*layerCols)
	lr := 0.01
	for j := 0; j < update.Cols; j++ {
		rows, vals := update.ColRows(j), update.ColVals(j)
		for p := range rows {
			weights[int(rows[p])*layerCols+j] -= lr * vals[p]
		}
	}
	fmt.Println("\napplied averaged update to dense weights")

	// Contrast with the naive pairwise reduction a framework would do
	// with an off-the-shelf sparse add.
	startNaive := time.Now()
	if _, err := spkadd.Add(grads, spkadd.Options{Algorithm: spkadd.TwoWayIncremental}); err != nil {
		log.Fatal(err)
	}
	naive := time.Since(startNaive)
	fmt.Printf("\npairwise incremental reduction of the same gradients: %v (%.1fx slower)\n",
		naive.Round(time.Microsecond), float64(naive)/float64(elapsed))
}

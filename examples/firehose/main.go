// Command firehose demonstrates many producers streaming sparse
// deltas into one running sum — the serving-side shape of the paper's
// streaming SpKAdd future work (§V): think metric matrices aggregated
// from many ingest workers, or graph edge streams fanned in from
// several frontends.
//
// The single-goroutine Accumulator forces a choice: funnel every
// producer through one mutex (serializing the reduction work), or
// give each producer its own accumulator and pay a final k-way merge.
// The sharded Pool removes the choice — producers enqueue column
// slices under per-shard locks and per-shard reducers fold them in
// the background — so the comparison here is Pool versus the
// mutex-funneled Accumulator on an identical workload.
//
// With -serve, the same firehose runs as an HTTP client against a
// live spkadd-serve daemon instead of an in-process pool: producers
// POST wire-format delta frames (honoring 429 + Retry-After admission
// pushback), then the snapshot endpoint's sum is verified bit-exactly
// against the in-process reference. Start a daemon and point the
// firehose at it:
//
//	go run ./cmd/spkadd-serve &
//	go run ./examples/firehose -serve http://localhost:8471
//
//	go run ./examples/firehose
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"spkadd"
	"spkadd/internal/server"
)

const (
	rows        = 1 << 16 // metric / vertex space
	cols        = 256     // columns (series, time buckets, ...)
	nnzPerCol   = 8
	perProducer = 64 // deltas each producer streams
)

// stream fabricates producer p's deterministic delta stream.
func stream(p int) []*spkadd.Matrix {
	as := make([]*spkadd.Matrix, perProducer)
	for i := range as {
		as[i] = spkadd.RandomER(rows, cols, nnzPerCol, uint64(p*perProducer+i+1))
	}
	return as
}

func main() {
	serveURL := flag.String("serve", "", "push over HTTP to a spkadd-serve daemon at this base URL instead of an in-process pool")
	tenant := flag.String("tenant", "firehose", "tenant name when pushing to a daemon")
	flag.Parse()
	producers := runtime.GOMAXPROCS(0)
	if producers < 2 {
		producers = 2
	}
	streams := make([][]*spkadd.Matrix, producers)
	total := 0
	for p := range streams {
		streams[p] = stream(p)
		for _, a := range streams[p] {
			total += a.NNZ()
		}
	}
	fmt.Printf("firehose: %d producers x %d deltas of %dx%d, %d entries total\n\n",
		producers, perProducer, rows, cols, total)

	// Baseline: one Accumulator behind a mutex. Every Push — and every
	// budget-triggered reduction inside it — happens under the lock,
	// so producers serialize.
	ac := spkadd.NewAccumulator(rows, cols, 8<<20, spkadd.Options{Algorithm: spkadd.Hash})
	var mu sync.Mutex
	start := time.Now()
	run(streams, func(a *spkadd.Matrix) error {
		mu.Lock()
		defer mu.Unlock()
		return ac.Push(a)
	})
	mu.Lock()
	want, err := ac.Sum()
	if err != nil {
		log.Fatal(err)
	}
	mu.Unlock()
	funneled := time.Since(start)

	if *serveURL != "" {
		serveMode(*serveURL, *tenant, streams, want, funneled)
		return
	}

	// Sharded pool: producers enqueue zero-copy column slices under
	// per-shard locks; reducers drain concurrently in the background.
	pool := spkadd.NewPool(rows, cols, spkadd.PoolOptions{BudgetBytes: 8 << 20,
		Add: spkadd.Options{Algorithm: spkadd.Hash}})
	start = time.Now()
	run(streams, pool.Push)
	got, err := pool.Sum()
	if err != nil {
		log.Fatal(err)
	}
	sharded := time.Since(start)
	if err := pool.Close(); err != nil {
		log.Fatal(err)
	}

	if got.NNZ() != want.NNZ() {
		log.Fatalf("pool and accumulator disagree: %d vs %d entries", got.NNZ(), want.NNZ())
	}
	fmt.Printf("mutex-funneled Accumulator : %v\n", funneled.Round(time.Microsecond))
	fmt.Printf("sharded Pool (%2d shards)   : %v (%.2fx)\n",
		pool.Shards(), sharded.Round(time.Microsecond), float64(funneled)/float64(sharded))
	fmt.Printf("\nsum: %d entries across %d columns; pool ran %d k-way reductions for %d pushes\n",
		got.NNZ(), got.Cols, pool.Reductions(), pool.K())
}

// serveMode replays the same firehose against a live spkadd-serve
// daemon: producers POST wire frames, backing off whenever admission
// control answers 429, and the daemon's snapshot is verified against
// the in-process reference sum.
// errPushRejected marks a push the server refused with a terminal
// status (anything but 429/503 pushback).
var errPushRejected = errors.New("push rejected")

func serveMode(base, tenant string, streams [][]*spkadd.Matrix, want *spkadd.Matrix, funneled time.Duration) {
	client := &http.Client{Timeout: 30 * time.Second}
	url := base + "/v1/tenants/" + tenant + "/deltas"
	var retries429 int64
	var mu sync.Mutex // guards retries429
	start := time.Now()
	run(streams, func(a *spkadd.Matrix) error {
		frame := server.EncodeCSC(a)
		for {
			resp, err := client.Post(url, "application/x-spkadd-delta", bytes.NewReader(frame))
			if err != nil {
				return err
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				return nil
			case http.StatusTooManyRequests:
				// Admission pushback: honor Retry-After and resend.
				mu.Lock()
				retries429++
				mu.Unlock()
				wait := time.Second
				if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
					wait = time.Duration(s) * time.Second
				}
				time.Sleep(wait)
			default:
				return fmt.Errorf("%w: status %d: %s", errPushRejected, resp.StatusCode, body)
			}
		}
	})
	resp, err := client.Get(base + "/v1/tenants/" + tenant + "/sum?format=wire")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("snapshot = %d", resp.StatusCode)
	}
	wire, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	got, err := server.DecodeDelta(wire, 0)
	if err != nil {
		log.Fatalf("decoding snapshot: %v", err)
	}
	pushed := time.Since(start)
	if !got.ToCSC().Equal(want) {
		log.Fatalf("daemon snapshot disagrees with the in-process sum")
	}
	fmt.Printf("mutex-funneled Accumulator : %v (in-process reference)\n", funneled.Round(time.Microsecond))
	fmt.Printf("spkadd-serve over HTTP     : %v, %d pushes retried on 429\n",
		pushed.Round(time.Microsecond), retries429)
	fmt.Printf("\nsnapshot verified bit-exact: %d entries across %d columns\n", want.NNZ(), want.Cols)
}

// run pushes every stream concurrently through push and waits.
func run(streams [][]*spkadd.Matrix, push func(*spkadd.Matrix) error) {
	var wg sync.WaitGroup
	for _, s := range streams {
		wg.Add(1)
		go func(s []*spkadd.Matrix) {
			defer wg.Done()
			for _, a := range s {
				if err := push(a); err != nil {
					log.Fatal(err)
				}
			}
		}(s)
	}
	wg.Wait()
}

// Command firehose demonstrates many producers streaming sparse
// deltas into one running sum — the serving-side shape of the paper's
// streaming SpKAdd future work (§V): think metric matrices aggregated
// from many ingest workers, or graph edge streams fanned in from
// several frontends.
//
// The single-goroutine Accumulator forces a choice: funnel every
// producer through one mutex (serializing the reduction work), or
// give each producer its own accumulator and pay a final k-way merge.
// The sharded Pool removes the choice — producers enqueue column
// slices under per-shard locks and per-shard reducers fold them in
// the background — so the comparison here is Pool versus the
// mutex-funneled Accumulator on an identical workload.
//
//	go run ./examples/firehose
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"spkadd"
)

const (
	rows        = 1 << 16 // metric / vertex space
	cols        = 256     // columns (series, time buckets, ...)
	nnzPerCol   = 8
	perProducer = 64 // deltas each producer streams
)

// stream fabricates producer p's deterministic delta stream.
func stream(p int) []*spkadd.Matrix {
	as := make([]*spkadd.Matrix, perProducer)
	for i := range as {
		as[i] = spkadd.RandomER(rows, cols, nnzPerCol, uint64(p*perProducer+i+1))
	}
	return as
}

func main() {
	producers := runtime.GOMAXPROCS(0)
	if producers < 2 {
		producers = 2
	}
	streams := make([][]*spkadd.Matrix, producers)
	total := 0
	for p := range streams {
		streams[p] = stream(p)
		for _, a := range streams[p] {
			total += a.NNZ()
		}
	}
	fmt.Printf("firehose: %d producers x %d deltas of %dx%d, %d entries total\n\n",
		producers, perProducer, rows, cols, total)

	// Baseline: one Accumulator behind a mutex. Every Push — and every
	// budget-triggered reduction inside it — happens under the lock,
	// so producers serialize.
	ac := spkadd.NewAccumulator(rows, cols, 8<<20, spkadd.Options{Algorithm: spkadd.Hash})
	var mu sync.Mutex
	start := time.Now()
	run(streams, func(a *spkadd.Matrix) error {
		mu.Lock()
		defer mu.Unlock()
		return ac.Push(a)
	})
	mu.Lock()
	want, err := ac.Sum()
	if err != nil {
		log.Fatal(err)
	}
	mu.Unlock()
	funneled := time.Since(start)

	// Sharded pool: producers enqueue zero-copy column slices under
	// per-shard locks; reducers drain concurrently in the background.
	pool := spkadd.NewPool(rows, cols, spkadd.PoolOptions{BudgetBytes: 8 << 20,
		Add: spkadd.Options{Algorithm: spkadd.Hash}})
	start = time.Now()
	run(streams, pool.Push)
	got, err := pool.Sum()
	if err != nil {
		log.Fatal(err)
	}
	sharded := time.Since(start)
	if err := pool.Close(); err != nil {
		log.Fatal(err)
	}

	if got.NNZ() != want.NNZ() {
		log.Fatalf("pool and accumulator disagree: %d vs %d entries", got.NNZ(), want.NNZ())
	}
	fmt.Printf("mutex-funneled Accumulator : %v\n", funneled.Round(time.Microsecond))
	fmt.Printf("sharded Pool (%2d shards)   : %v (%.2fx)\n",
		pool.Shards(), sharded.Round(time.Microsecond), float64(funneled)/float64(sharded))
	fmt.Printf("\nsum: %d entries across %d columns; pool ran %d k-way reductions for %d pushes\n",
		got.NNZ(), got.Cols, pool.Reductions(), pool.K())
}

// run pushes every stream concurrently through push and waits.
func run(streams [][]*spkadd.Matrix, push func(*spkadd.Matrix) error) {
	var wg sync.WaitGroup
	for _, s := range streams {
		wg.Add(1)
		go func(s []*spkadd.Matrix) {
			defer wg.Done()
			for _, a := range s {
				if err := push(a); err != nil {
					log.Fatal(err)
				}
			}
		}(s)
	}
	wg.Wait()
}

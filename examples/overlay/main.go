// Command overlay demonstrates non-Plus monoids on graph snapshots:
// the same k-way SpKAdd engines compute the structural union of k
// weighted graphs (the Any monoid — "which edges ever existed") and
// the edge frequency (the Count monoid — "in how many snapshots did
// each edge appear"), then intersect the two to report the stable
// core of the graph. No kernel changes, just Options.Monoid.
//
//	go run ./examples/overlay
package main

import (
	"fmt"
	"log"

	"spkadd"
)

const (
	vertices  = 1 << 15 // graph size
	snapshots = 12      // k: daily snapshots to overlay
	degree    = 6       // average out-degree per snapshot
)

// snapshot fabricates one weighted graph snapshot with a hub-heavy
// (RMAT) edge distribution. Overlapping seeds make consecutive
// snapshots share most of their edges, like daily crawls of one
// network.
func snapshot(day int) *spkadd.Matrix {
	return spkadd.RandomRMAT(vertices, vertices, degree, uint64(day/3+1))
}

func main() {
	fmt.Printf("overlaying %d snapshots of a %d-vertex graph\n\n", snapshots, vertices)
	days := make([]*spkadd.Matrix, snapshots)
	total := 0
	for i := range days {
		days[i] = snapshot(i)
		total += days[i].NNZ()
	}

	// Structural union: an edge present in any snapshot is 1 in the
	// overlay, whatever its weights were. Same engines, Any monoid.
	union, err := spkadd.Add(days, spkadd.Options{Monoid: spkadd.Any, SortedOutput: true})
	if err != nil {
		log.Fatal(err)
	}

	// Edge frequency: how many snapshots contain each edge.
	freq, err := spkadd.Add(days, spkadd.Options{Monoid: spkadd.Count, SortedOutput: true})
	if err != nil {
		log.Fatal(err)
	}
	if union.NNZ() != freq.NNZ() {
		log.Fatalf("union and frequency disagree on structure: %d vs %d", union.NNZ(), freq.NNZ())
	}

	// Frequency histogram: how ephemeral is the graph?
	hist := make([]int, snapshots+1)
	stable := 0
	for _, tr := range freq.Triples() {
		c := int(tr.Val)
		hist[c]++
		if c == snapshots {
			stable++
		}
	}
	fmt.Printf("input edges (with repeats): %d\n", total)
	fmt.Printf("distinct edges (Any union): %d (%.1fx compression)\n",
		union.NNZ(), float64(total)/float64(union.NNZ()))
	fmt.Printf("stable core (in all %d):    %d (%.1f%% of distinct)\n\n",
		snapshots, stable, 100*float64(stable)/float64(union.NNZ()))
	fmt.Println("appearances  edges")
	for c := 1; c <= snapshots; c++ {
		if hist[c] > 0 {
			fmt.Printf("%11d  %d\n", c, hist[c])
		}
	}

	// The streaming form: a Count accumulator folds snapshots in as
	// they arrive (its running sum re-enters each reduction unmapped,
	// so counts keep counting), and must agree with the one-shot add.
	ac := spkadd.NewAccumulator(vertices, vertices, 1<<20, spkadd.Options{Monoid: spkadd.Count})
	for _, d := range days {
		if err := ac.Push(d); err != nil {
			log.Fatal(err)
		}
	}
	streamed, err := ac.Sum()
	if err != nil {
		log.Fatal(err)
	}
	if !streamed.EqualTol(freq, 0) {
		log.Fatal("streamed Count disagrees with one-shot Count")
	}
	fmt.Printf("\nstreaming Count accumulator: %d reductions over %d pushes, result identical\n",
		ac.Reductions(), ac.K())
}

// Per-instantiation coverage of the generic value axis: every element
// type runs the full algorithm × engine grid against the dense
// reference, and a warmed generic Adder must hold the zero-allocation
// steady state exactly like the float64 one.
package spkadd_test

import (
	"fmt"
	"testing"

	"spkadd"
	"spkadd/internal/matrix"
)

// dtypeParityGrid checks one instantiation against the dense
// reference across the k-way algorithms and engines. Comparison is
// exact (tolerance zero): kernels and reference both combine
// duplicates in matrix order, so even float32 sums must agree
// bit-for-bit within an instantiation.
func dtypeParityGrid[T spkadd.Number](t *testing.T, as []*spkadd.MatrixOf[T], mon *spkadd.MonoidOf[T]) {
	t.Helper()
	// The reference dense accumulator combines with AddVal (OR for
	// bool), which matches Any on bool inputs and Plus on the rest.
	want := matrix.ReferenceAdd(as)
	for _, alg := range []spkadd.Algorithm{spkadd.Hash, spkadd.SPA, spkadd.Heap} {
		for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
			t.Run(fmt.Sprintf("%v/%v", alg, p), func(t *testing.T) {
				opt := spkadd.OptionsOf[T]{Algorithm: alg, Phases: p, Monoid: mon, SortedOutput: true, Threads: 1}
				got, err := spkadd.Add(as, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Errorf("%v/%v disagrees with the dense reference", alg, p)
				}
			})
		}
	}
}

// TestDtypeParity: the paper's engines produce reference-identical
// sums for every supported element type. Inputs are small and short
// (rows ≪ k·d) so duplicate merging is exercised hard, and they are
// the float64 test inputs converted value-by-value, so each
// instantiation sums the same structure.
func TestDtypeParity(t *testing.T) {
	as := adderTestInputs(6, 512, 32, 8, 11)
	t.Run("float32", func(t *testing.T) {
		dtypeParityGrid(t, convertInputs(as, func(v float64) float32 { return float32(v) }), nil)
	})
	t.Run("int32", func(t *testing.T) {
		dtypeParityGrid(t, convertInputs(as, func(v float64) int32 { return int32(v*64) - 32 }), nil)
	})
	t.Run("int64", func(t *testing.T) {
		dtypeParityGrid(t, convertInputs(as, func(v float64) int64 { return int64(v*1e6) - 5e5 }), nil)
	})
	t.Run("bool", func(t *testing.T) {
		dtypeParityGrid(t, convertInputs(as, func(v float64) bool { return true }), spkadd.AnyFor[bool]())
	})
}

// TestBoolRequiresMonoid: bool has no "+", so an addition without an
// explicit monoid must fail validation instead of instantiating a
// meaningless fast path.
func TestBoolRequiresMonoid(t *testing.T) {
	as := convertInputs(adderTestInputs(2, 64, 8, 4, 3), func(v float64) bool { return true })
	if _, err := spkadd.Add(as, spkadd.OptionsOf[bool]{}); err == nil {
		t.Fatal("bool addition without a monoid succeeded, want a validation error")
	}
}

// dtypeAllocGrid asserts the warmed zero-allocation steady state for
// one instantiation across the engines.
func dtypeAllocGrid[T spkadd.Number](t *testing.T, as []*spkadd.MatrixOf[T], mon *spkadd.MonoidOf[T]) {
	t.Helper()
	for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
		t.Run(fmt.Sprintf("%v", p), func(t *testing.T) {
			ad := spkadd.NewAdderOf[T]()
			opt := spkadd.OptionsOf[T]{Algorithm: spkadd.Hash, Phases: p, Monoid: mon, SortedOutput: true, Threads: 1}
			for warm := 0; warm < 3; warm++ {
				if _, err := ad.Add(as, opt); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := ad.Add(as, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady state allocates %.1f times per op, want 0", allocs)
			}
		})
	}
}

// TestAdderZeroSteadyStateAllocsDtype extends the zero-allocation
// contract to every instantiation of the generic value axis — the
// type-parameterized kernels must not reintroduce boxing or escapes on
// any element type's steady-state path.
func TestAdderZeroSteadyStateAllocsDtype(t *testing.T) {
	as := adderTestInputs(8, 2048, 48, 8, 9)
	t.Run("float32", func(t *testing.T) {
		dtypeAllocGrid(t, convertInputs(as, func(v float64) float32 { return float32(v) }), nil)
	})
	t.Run("int32", func(t *testing.T) {
		dtypeAllocGrid(t, convertInputs(as, func(v float64) int32 { return int32(v * 64) }), nil)
	})
	t.Run("int64", func(t *testing.T) {
		dtypeAllocGrid(t, convertInputs(as, func(v float64) int64 { return int64(v * 1e6) }), nil)
	})
	t.Run("bool", func(t *testing.T) {
		dtypeAllocGrid(t, convertInputs(as, func(v float64) bool { return true }), spkadd.AnyFor[bool]())
	})
}

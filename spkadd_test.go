package spkadd_test

import (
	"bytes"
	"errors"
	"testing"

	"spkadd"
)

func TestPublicAddQuickPath(t *testing.T) {
	k := 8
	as := make([]*spkadd.Matrix, k)
	for i := range as {
		as[i] = spkadd.RandomER(1000, 32, 16, uint64(i+1))
	}
	sum, err := spkadd.Add(as, spkadd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot-check one position against manual accumulation.
	var want spkadd.Value
	for _, a := range as {
		want += a.At(int(as[0].ColRows(0)[0]), 0)
	}
	if got := sum.At(int(as[0].ColRows(0)[0]), 0); got != want {
		t.Errorf("sum entry = %v, want %v", got, want)
	}
}

func TestPublicAlgorithmsExposeCorrectly(t *testing.T) {
	as := []*spkadd.Matrix{
		spkadd.RandomRMAT(500, 20, 8, 1),
		spkadd.RandomRMAT(500, 20, 8, 2),
	}
	ref, err := spkadd.Add(as, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []spkadd.Algorithm{
		spkadd.TwoWayIncremental, spkadd.TwoWayTree, spkadd.MapIncremental,
		spkadd.MapTree, spkadd.Heap, spkadd.SPA, spkadd.SlidingHash, spkadd.Auto,
	} {
		got, err := spkadd.Add(as, spkadd.Options{Algorithm: alg, SortedOutput: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !got.Equal(ref) {
			t.Errorf("%v disagrees with Hash", alg)
		}
	}
}

func TestPublicErrors(t *testing.T) {
	if _, err := spkadd.Add(nil, spkadd.Options{}); !errors.Is(err, spkadd.ErrNoInputs) {
		t.Error("ErrNoInputs not surfaced")
	}
	a := spkadd.FromTriples(2, 2, nil)
	b := spkadd.FromTriples(3, 2, nil)
	if _, err := spkadd.Add([]*spkadd.Matrix{a, b}, spkadd.Options{}); !errors.Is(err, spkadd.ErrDimMismatch) {
		t.Error("ErrDimMismatch not surfaced")
	}
}

func TestPublicMultiplyAndSumma(t *testing.T) {
	a := spkadd.RandomER(60, 60, 4, 3)
	b := spkadd.RandomER(60, 60, 4, 4)
	direct, err := spkadd.Multiply(a, b, spkadd.MulOptions{SortOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	viaSumma, rep, err := spkadd.RunSumma(a, b, spkadd.SummaConfig{
		Grid: 2, SpKAdd: spkadd.Hash, Sequential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !direct.EqualTol(viaSumma, 1e-9) {
		t.Error("SUMMA product differs from direct multiply")
	}
	if rep.SpKAddSum <= 0 {
		t.Error("SUMMA report not populated")
	}
}

func TestPublicMatrixMarketRoundTrip(t *testing.T) {
	a := spkadd.RandomER(40, 10, 5, 5)
	var buf bytes.Buffer
	if err := spkadd.WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := spkadd.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Error("round trip changed matrix")
	}
}

func TestPublicCOOAssembly(t *testing.T) {
	coo := spkadd.NewCOO(4, 4)
	coo.Append(0, 0, 1)
	coo.Append(0, 0, 2) // duplicate accumulates
	coo.Append(3, 3, 5)
	m := coo.ToCSC()
	if m.At(0, 0) != 3 || m.At(3, 3) != 5 {
		t.Error("COO assembly wrong")
	}
}

func TestPublicStats(t *testing.T) {
	as := []*spkadd.Matrix{
		spkadd.RandomER(300, 16, 8, 6),
		spkadd.RandomER(300, 16, 8, 7),
	}
	var st spkadd.OpStats
	_, pt, err := spkadd.AddTimed(as, spkadd.Options{Algorithm: spkadd.Hash, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.HashProbes.Load() == 0 {
		t.Error("stats not collected")
	}
	if pt.Total() <= 0 {
		t.Error("timings not collected")
	}
}

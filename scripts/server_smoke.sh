#!/usr/bin/env bash
# server_smoke.sh — end-to-end smoke of the spkadd-serve daemon:
# build it, flood it over real HTTP with the firehose example client,
# SIGTERM it mid-flood, and assert a clean graceful drain (exit 0).
#
# The in-process chaos suites prove the degradation contracts; this
# script proves the actual binary wires them together: flags, signal
# handling, listener shutdown ordering, exit codes.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

ADDR="127.0.0.1:${SPKADD_SMOKE_PORT:-18471}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/spkadd-serve" ./cmd/spkadd-serve
go build -o "$WORK/firehose" ./examples/firehose

TUNER_STATE="$WORK/tuner.state"

echo "== start daemon on $ADDR"
"$WORK/spkadd-serve" -addr "$ADDR" -queue-wait 50ms -drain-deadline 15s \
  -tuner-state "$TUNER_STATE" \
  >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
# The daemon must not die on its own while we work.
kill -0 "$SERVE_PID"

for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/readyz" >/dev/null; then break; fi
  [ "$i" = 50 ] && { echo "daemon never became ready" >&2; exit 1; }
  sleep 0.1
done

echo "== flood 1: full firehose, verified snapshot"
"$WORK/firehose" -serve "http://$ADDR" -tenant smoke | tee "$WORK/firehose.log"
grep -q 'snapshot verified bit-exact' "$WORK/firehose.log"

echo "== health and metrics surface the tenant"
# Capture before grepping: grep -q closing the pipe early would turn
# into a spurious curl write error under pipefail.
curl -sf "http://$ADDR/healthz" >"$WORK/healthz.json"
grep -q '"status": "ok"' "$WORK/healthz.json"
curl -sf "http://$ADDR/metrics" >"$WORK/metrics.txt"
grep -q 'spkadd_tenant_pushes_total{tenant="smoke"}' "$WORK/metrics.txt"
grep -q 'spkadd_tenant_planner_lookups_total{tenant="smoke"}' "$WORK/metrics.txt"
grep -q 'spkadd_tuner_entries' "$WORK/metrics.txt"

echo "== flood 2: SIGTERM mid-flood"
"$WORK/firehose" -serve "http://$ADDR" -tenant smoke2 \
  >"$WORK/firehose2.log" 2>&1 &
FLOOD_PID=$!
sleep 0.2 # let the second flood establish in-flight pushes
kill -TERM "$SERVE_PID"

# The daemon must exit 0: a graceful drain flushed every tenant pool
# with nothing abandoned. The interrupted flood client is expected to
# fail (503s / connection refused once the listener stops) — only its
# termination matters.
SERVE_RC=0; wait "$SERVE_PID" || SERVE_RC=$?
wait "$FLOOD_PID" || true
echo "== daemon exit code: $SERVE_RC"
cat "$WORK/serve.log"
if [ "$SERVE_RC" -ne 0 ]; then
  echo "FAIL: daemon exited $SERVE_RC after SIGTERM (drain not clean)" >&2
  exit 1
fi
grep -q 'drain' "$WORK/serve.log"
echo "PASS: clean drain under SIGTERM mid-flood"

echo "== tuner state round-trip across restart"
# The drain must have persisted the planner cost table learned during
# the floods; a restarted daemon must load it and report the reloaded
# table through /metrics before serving a single request.
[ -s "$TUNER_STATE" ] || { echo "FAIL: drain left no tuner state at $TUNER_STATE" >&2; exit 1; }
grep -q 'tuner: saved' "$WORK/serve.log"
"$WORK/spkadd-serve" -addr "$ADDR" -queue-wait 50ms -drain-deadline 15s \
  -tuner-state "$TUNER_STATE" \
  >"$WORK/serve2.log" 2>&1 &
SERVE2_PID=$!
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/readyz" >/dev/null; then break; fi
  [ "$i" = 50 ] && { echo "restarted daemon never became ready" >&2; exit 1; }
  sleep 0.1
done
curl -sf "http://$ADDR/metrics" >"$WORK/metrics2.txt"
ENTRIES="$(awk '$1 == "spkadd_tuner_entries" { print $2 }' "$WORK/metrics2.txt")"
if ! [ "${ENTRIES:-0}" -gt 0 ] 2>/dev/null; then
  echo "FAIL: restarted daemon reports spkadd_tuner_entries=${ENTRIES:-missing} (expected > 0)" >&2
  cat "$WORK/serve2.log"
  exit 1
fi
kill -TERM "$SERVE2_PID"
SERVE2_RC=0; wait "$SERVE2_PID" || SERVE2_RC=$?
if [ "$SERVE2_RC" -ne 0 ]; then
  echo "FAIL: restarted daemon exited $SERVE2_RC after SIGTERM" >&2
  cat "$WORK/serve2.log"
  exit 1
fi
grep -q 'tuner: loaded' "$WORK/serve2.log"
echo "PASS: tuner cost table survived the restart ($ENTRIES signature(s))"

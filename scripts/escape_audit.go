//go:build ignore

// Escape audit: the compile-time twin of the CI allocation gate.
//
// Usage (from the repository root):
//
//	go run scripts/escape_audit.go [-allowlist scripts/escape_allowlist.txt] [packages...]
//
// It rebuilds the named packages (default ./...) with -gcflags=-m,
// collects the compiler's "escapes to heap" / "moved to heap"
// diagnostics, and fails if any fall inside a function annotated
// //spkadd:noalloc unless a committed allowlist entry vouches for it.
// Stale allowlist entries (matching nothing) fail too, so the list
// cannot rot. See internal/analysis/escape for the parsing and
// attribution rules, and DESIGN.md §13 for the invariant this gate
// enforces.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"spkadd/internal/analysis/escape"
)

func main() {
	allowPath := flag.String("allowlist", "scripts/escape_allowlist.txt", "allowlist file (file.go:Func: message substring)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	funcs, err := escape.AnnotatedFuncs(".")
	if err != nil {
		fatal(err)
	}
	if len(funcs) == 0 {
		fatal(fmt.Errorf("no %s functions found; run from the repository root", escape.Directive))
	}

	args := append([]string{"build", "-o", os.DevNull, "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		// -m diagnostics go to stderr on success too; a build failure
		// means the output is an error message, not diagnostics.
		fatal(fmt.Errorf("go %v: %v\n%s", args, err, out.String()))
	}
	diags, err := escape.ParseM(&out)
	if err != nil {
		fatal(err)
	}

	var allow []escape.AllowEntry
	if f, err := os.Open(*allowPath); err == nil {
		allow, err = escape.ParseAllowlist(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else if !os.IsNotExist(err) {
		fatal(err)
	}

	res := escape.Audit(diags, funcs, allow)
	bad := false
	for _, v := range res.Violations {
		fmt.Fprintf(os.Stderr, "escape_audit: %s\n", v)
		bad = true
	}
	for _, s := range res.Stale {
		fmt.Fprintf(os.Stderr, "escape_audit: stale allowlist entry (%s): delete it or it will hide a future escape\n", s)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
	fmt.Printf("escape_audit: %d noalloc function(s) audited, %d escape diagnostic(s) scanned, 0 violations\n",
		res.Audited, len(diags))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "escape_audit:", err)
	os.Exit(1)
}

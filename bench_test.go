// Benchmarks regenerating each paper artifact at reduced size, one
// family per table/figure. Run with:
//
//	go test -bench=. -benchmem
//
// The full paper-shaped sweeps (with the paper's k and d grids) live in
// cmd/spkadd-bench; these testing.B benchmarks are the quick,
// regression-trackable counterparts.
package spkadd_test

import (
	"fmt"
	"sync"
	"testing"

	"spkadd/internal/faults"

	"spkadd"
	"spkadd/internal/cachesim"
	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

const benchRows = 1 << 16

func benchAlgorithms() []spkadd.Algorithm {
	return []spkadd.Algorithm{
		spkadd.TwoWayIncremental, spkadd.TwoWayTree, spkadd.Heap,
		spkadd.SPA, spkadd.Hash, spkadd.SlidingHash,
	}
}

func addLoop(b *testing.B, as []*spkadd.Matrix, opt spkadd.Options) {
	b.Helper()
	in := 0
	for _, a := range as {
		in += a.NNZ()
	}
	b.SetBytes(int64(in) * 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spkadd.Add(as, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 covers Table III: ER collections across (d, k) for
// every algorithm.
func BenchmarkTable3(b *testing.B) {
	for _, d := range []int{16, 256} {
		for _, k := range []int{4, 32} {
			as := generate.ERCollection(k, generate.Opts{Rows: benchRows, Cols: 32, NNZPerCol: d, Seed: 1})
			for _, alg := range benchAlgorithms() {
				b.Run(fmt.Sprintf("d=%d/k=%d/%v", d, k, alg), func(b *testing.B) {
					addLoop(b, as, spkadd.Options{Algorithm: alg})
				})
			}
		}
	}
}

// BenchmarkTable4 covers Table IV: RMAT collections (column-split
// construction) across (d, k).
func BenchmarkTable4(b *testing.B) {
	for _, d := range []int{16, 256} {
		for _, k := range []int{4, 32} {
			as := generate.RMATCollection(k, generate.Opts{Rows: benchRows, Cols: 32, NNZPerCol: d, Seed: 2}, generate.Graph500)
			for _, alg := range benchAlgorithms() {
				b.Run(fmt.Sprintf("d=%d/k=%d/%v", d, k, alg), func(b *testing.B) {
					addLoop(b, as, spkadd.Options{Algorithm: alg})
				})
			}
		}
	}
}

// BenchmarkFig2 covers the Fig 2 winner-grid workloads at the grid
// corners for both sparsity patterns (the full sweep is
// `spkadd-bench -exp fig2er/fig2rmat`).
func BenchmarkFig2(b *testing.B) {
	cases := []struct {
		pattern string
		k, d    int
	}{
		{"ER", 4, 16}, {"ER", 128, 16}, {"ER", 4, 1024}, {"ER", 64, 512},
		{"RMAT", 4, 16}, {"RMAT", 64, 64},
	}
	for _, c := range cases {
		var as []*matrix.CSC
		o := generate.Opts{Rows: benchRows, Cols: 16, NNZPerCol: c.d, Seed: 3}
		if c.pattern == "ER" {
			as = generate.ERCollection(c.k, o)
		} else {
			as = generate.RMATCollection(c.k, o, generate.Graph500)
		}
		for _, alg := range []spkadd.Algorithm{spkadd.Hash, spkadd.SlidingHash, spkadd.Heap, spkadd.TwoWayTree} {
			b.Run(fmt.Sprintf("%s/k=%d/d=%d/%v", c.pattern, c.k, c.d, alg), func(b *testing.B) {
				addLoop(b, as, spkadd.Options{Algorithm: alg})
			})
		}
	}
}

// BenchmarkFig3Scaling covers the strong-scaling panels: the hash
// algorithm at increasing thread counts on ER, RMAT and
// Eukarya-intermediate-like inputs.
func BenchmarkFig3Scaling(b *testing.B) {
	panels := map[string][]*matrix.CSC{
		"ER":      generate.ERCollection(32, generate.Opts{Rows: benchRows, Cols: 32, NNZPerCol: 128, Seed: 4}),
		"RMAT":    generate.RMATCollection(32, generate.Opts{Rows: benchRows, Cols: 32, NNZPerCol: 128, Seed: 5}, generate.Graph500),
		"Eukarya": generate.ClusteredCollection(64, generate.Opts{Rows: benchRows, Cols: 16, NNZPerCol: 240, Seed: 6}, 22),
	}
	for name, as := range panels {
		for _, t := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/threads=%d", name, t), func(b *testing.B) {
				addLoop(b, as, spkadd.Options{Algorithm: spkadd.Hash, Threads: t})
			})
		}
	}
}

// BenchmarkFig4TableSize covers the hash-table-size sweep: sliding
// hash with explicit table caps on the Fig 4(b)-like workload.
func BenchmarkFig4TableSize(b *testing.B) {
	as := generate.ERCollection(64, generate.Opts{Rows: benchRows, Cols: 16, NNZPerCol: 512, Seed: 7})
	for _, size := range []int{256, 1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			addLoop(b, as, spkadd.Options{Algorithm: spkadd.SlidingHash, MaxTableEntries: size})
		})
	}
}

// BenchmarkTable5Trace covers the cache-simulation path behind
// Table V.
func BenchmarkTable5Trace(b *testing.B) {
	as := generate.ERCollection(32, generate.Opts{Rows: benchRows, Cols: 8, NNZPerCol: 512, Seed: 8})
	for _, sliding := range []bool{false, true} {
		b.Run(fmt.Sprintf("sliding=%v", sliding), func(b *testing.B) {
			cfg := cachesim.TraceConfig{CacheBytes: 1 << 20, Threads: 8, Sliding: sliding}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cachesim.TraceSpKAdd(as, cfg)
			}
		})
	}
}

// BenchmarkFig6Summa covers the distributed-SpGEMM experiment: the
// three SpKAdd variants inside a simulated SUMMA run.
func BenchmarkFig6Summa(b *testing.B) {
	a := generate.ProteinLike(1500, 128, 96, 9)
	bb := generate.ProteinLike(1500, 128, 96, 10)
	variants := []struct {
		name string
		alg  spkadd.Algorithm
		sort bool
	}{
		{"Heap", spkadd.Heap, true},
		{"SortedHash", spkadd.Hash, true},
		{"UnsortedHash", spkadd.Hash, false},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := spkadd.RunSumma(a, bb, spkadd.SummaConfig{
					Grid: 8, SpKAdd: v.alg, SortIntermediates: v.sort, Sequential: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLoadFactor quantifies the hash-table load-factor
// choice (DESIGN.md §2: the paper packs tables to ~1.0, this library
// defaults to 0.5).
func BenchmarkAblationLoadFactor(b *testing.B) {
	as := generate.ERCollection(32, generate.Opts{Rows: benchRows, Cols: 32, NNZPerCol: 256, Seed: 11})
	for _, lf := range []float64{0.25, 0.5, 0.75, 0.95} {
		b.Run(fmt.Sprintf("lf=%.2f", lf), func(b *testing.B) {
			addLoop(b, as, spkadd.Options{Algorithm: spkadd.Hash, LoadFactor: lf})
		})
	}
}

// BenchmarkAblationSchedule quantifies the scheduling strategies of
// §III-A (plus the executor's stealing mode) on a skewed workload.
func BenchmarkAblationSchedule(b *testing.B) {
	as := generate.RMATCollection(32, generate.Opts{Rows: benchRows, Cols: 64, NNZPerCol: 128, Seed: 12}, generate.Graph500)
	for name, s := range map[string]spkadd.Schedule{
		"weighted":          spkadd.ScheduleWeighted,
		"static":            spkadd.ScheduleStatic,
		"dynamic":           spkadd.ScheduleDynamic,
		"weighted-stealing": spkadd.ScheduleWeightedStealing,
	} {
		b.Run(name, func(b *testing.B) {
			addLoop(b, as, spkadd.Options{Algorithm: spkadd.Hash, Schedule: s, Threads: 4})
		})
	}
}

// BenchmarkSchedModes compares the four schedules on a RMAT-skewed
// workload through a reused Adder, so every iteration runs on the
// resident executor (parked workers, recycled partition scratch). Run
// with -cpu 1,4 — the CI bench smoke does — to see the single-proc
// inline path and the multi-worker paths both exercised; steals and
// imbalance are reported as benchmark metrics.
func BenchmarkSchedModes(b *testing.B) {
	as := generate.RMATCollection(8, generate.Opts{Rows: 1 << 15, Cols: 64, NNZPerCol: 64, Seed: 23}, generate.Graph500)
	for _, s := range []spkadd.Schedule{
		spkadd.ScheduleWeighted, spkadd.ScheduleStatic,
		spkadd.ScheduleDynamic, spkadd.ScheduleWeightedStealing,
	} {
		b.Run(s.String(), func(b *testing.B) {
			ad := spkadd.NewAdder()
			opt := spkadd.Options{Algorithm: spkadd.Hash, Schedule: s}
			for warm := 0; warm < 3; warm++ {
				if _, err := ad.Add(as, opt); err != nil {
					b.Fatal(err)
				}
			}
			// Stats attach after warmup so steals/op and imbalance
			// describe exactly the b.N timed iterations.
			var stats spkadd.OpStats
			opt.Stats = &stats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ad.Add(as, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(stats.Steals.Load())/float64(b.N), "steals/op")
			b.ReportMetric(stats.LoadImbalance(), "imbalance")
		})
	}
}

// BenchmarkAblationSortedOutput quantifies the cost of sorted output
// for the hash algorithm (the sorted-vs-unsorted hash gap of Fig 6).
func BenchmarkAblationSortedOutput(b *testing.B) {
	as := generate.ERCollection(32, generate.Opts{Rows: benchRows, Cols: 32, NNZPerCol: 256, Seed: 13})
	for _, sorted := range []bool{false, true} {
		b.Run(fmt.Sprintf("sorted=%v", sorted), func(b *testing.B) {
			addLoop(b, as, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: sorted})
		})
	}
}

// BenchmarkColAdd benchmarks the 2-way merge kernel in isolation, the
// building block of Algorithm 1.
func BenchmarkColAdd(b *testing.B) {
	x := generate.ER(generate.Opts{Rows: benchRows, Cols: 64, NNZPerCol: 512, Seed: 14})
	y := generate.ER(generate.Opts{Rows: benchRows, Cols: 64, NNZPerCol: 512, Seed: 15})
	b.SetBytes(int64(x.NNZ()+y.NNZ()) * 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spkadd.Add([]*spkadd.Matrix{x, y}, spkadd.Options{Algorithm: spkadd.TwoWayIncremental}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpGEMM benchmarks the local multiply kernel, sorted vs
// unsorted output (the 20%-faster-multiply claim of Fig 6).
func BenchmarkSpGEMM(b *testing.B) {
	a := generate.ProteinLike(4000, 128, 64, 16)
	c := generate.ProteinLike(4000, 128, 64, 17)
	for _, sorted := range []bool{true, false} {
		b.Run(fmt.Sprintf("sorted=%v", sorted), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := spkadd.Multiply(a, c, spkadd.MulOptions{SortOutput: sorted}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhasesEngines compares the execution engines on the Hash
// path: the two-pass driver reads every input twice, while the fused
// and upper-bound engines read each input exactly once (their
// symbolic probe count is zero — see TestWorkComplexitySinglePass).
// The large-d ER configurations are where the saved input pass
// dominates.
func BenchmarkPhasesEngines(b *testing.B) {
	for _, c := range []struct{ k, d int }{{8, 64}, {32, 256}, {16, 1024}} {
		as := generate.ERCollection(c.k, generate.Opts{Rows: benchRows, Cols: 32, NNZPerCol: c.d, Seed: 19})
		for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
			b.Run(fmt.Sprintf("ER/k=%d/d=%d/%v", c.k, c.d, p), func(b *testing.B) {
				addLoop(b, as, spkadd.Options{Algorithm: spkadd.Hash, Phases: p})
			})
		}
	}
	// One skewed workload to keep the engines honest off the ER path.
	rmat := generate.RMATCollection(32, generate.Opts{Rows: benchRows, Cols: 32, NNZPerCol: 128, Seed: 20}, generate.Graph500)
	for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
		b.Run(fmt.Sprintf("RMAT/k=32/d=128/%v", p), func(b *testing.B) {
			addLoop(b, rmat, spkadd.Options{Algorithm: spkadd.Hash, Phases: p})
		})
	}
}

// adderReuseConfigs is the grid shared by BenchmarkAdderReuse and
// BenchmarkAdderOneShot: Hash/SPA/Heap under all three engines,
// sorted and unsorted, on a small repeated-addition workload where
// allocation amortization matters most. Threads is pinned to 1 so the
// reused path has a goroutine-free steady state (worker spawns
// allocate their closures) — the CI allocation gate greps these
// results for nonzero allocs/op.
func adderReuseConfigs() []spkadd.Options {
	var opts []spkadd.Options
	for _, alg := range []spkadd.Algorithm{spkadd.Hash, spkadd.SPA, spkadd.Heap} {
		for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
			for _, sorted := range []bool{false, true} {
				opts = append(opts, spkadd.Options{Algorithm: alg, Phases: p, SortedOutput: sorted, Threads: 1})
			}
		}
	}
	return opts
}

func adderReuseInputs() []*spkadd.Matrix {
	// Total input nnz (~2K entries) must stay well under one fused
	// arena chunk (32Ki entries): BenchmarkAdderReuseSched gates
	// Fused × racy schedules at strictly 0 allocs/op, which holds
	// deterministically only while any worker's staged volume fits one
	// chunk (see arena.reserve — beyond that, zero is amortized, and
	// the gate would flake).
	return generate.ERCollection(8, generate.Opts{Rows: 1 << 11, Cols: 64, NNZPerCol: 4, Seed: 21})
}

// BenchmarkAdderReuse measures the steady state of a reused Adder: by
// construction it must report 0 allocs/op for every configuration
// (TestAdderZeroSteadyStateAllocs asserts the same invariant; CI
// fails the build if either regresses). Compare against
// BenchmarkAdderOneShot for the throughput gain of buffer reuse.
func BenchmarkAdderReuse(b *testing.B) {
	as := adderReuseInputs()
	for _, opt := range adderReuseConfigs() {
		b.Run(fmt.Sprintf("%v/%v/sorted=%v", opt.Algorithm, opt.Phases, opt.SortedOutput), func(b *testing.B) {
			ad := spkadd.NewAdder()
			for warm := 0; warm < 3; warm++ {
				if _, err := ad.Add(as, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ad.Add(as, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdderReuseMonoid is BenchmarkAdderReuse on the generic
// combine path: a warmed non-Plus Adder must also report 0 allocs/op
// (the CI allocation gate greps it together with BenchmarkAdderReuse),
// and its runtime against the Plus rows quantifies the generic path's
// per-element indirect-call overhead.
func BenchmarkAdderReuseMonoid(b *testing.B) {
	as := adderReuseInputs()
	for _, m := range []*spkadd.Monoid{spkadd.Min, spkadd.Count} {
		for _, alg := range []spkadd.Algorithm{spkadd.Hash, spkadd.SPA, spkadd.Heap} {
			for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
				opt := spkadd.Options{Algorithm: alg, Phases: p, Monoid: m, SortedOutput: true, Threads: 1}
				b.Run(fmt.Sprintf("%s/%v/%v", m.Name, opt.Algorithm, opt.Phases), func(b *testing.B) {
					ad := spkadd.NewAdder()
					for warm := 0; warm < 3; warm++ {
						if _, err := ad.Add(as, opt); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := ad.Add(as, opt); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkAdderReuseSched is BenchmarkAdderReuse under the
// non-default schedules at default (GOMAXPROCS) threads: the CI
// allocation gate greps it with the other reuse benchmarks, so a
// warmed Adder must report 0 allocs/op for the racy Dynamic and
// WeightedStealing modes too — scheduling included, which is what the
// resident executor exists to guarantee.
func BenchmarkAdderReuseSched(b *testing.B) {
	as := adderReuseInputs()
	for _, s := range []spkadd.Schedule{spkadd.ScheduleDynamic, spkadd.ScheduleWeightedStealing} {
		for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
			opt := spkadd.Options{Algorithm: spkadd.Hash, Phases: p, Schedule: s, SortedOutput: true}
			b.Run(fmt.Sprintf("%v/%v", s, p), func(b *testing.B) {
				ad := spkadd.NewAdder()
				for warm := 0; warm < 3; warm++ {
					if _, err := ad.Add(as, opt); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ad.Add(as, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAdderReuseFaultsOff gates the fault-injection harness's
// disabled cost: the injection sites (internal/faults) are compiled
// into the kernels and the executor permanently, and with no injector
// active a warmed Adder must still report exactly 0 allocs/op — one
// atomic load per site, nothing more. CI greps it with the other
// reuse benchmarks; nonzero allocs/op fails the build. The sched rows
// additionally cross the executor's WorkerStall site.
func BenchmarkAdderReuseFaultsOff(b *testing.B) {
	if faults.Active() != nil {
		b.Fatal("an injector is active; this benchmark gates the disabled path")
	}
	as := adderReuseInputs()
	for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
		for _, threads := range []int{1, 4} {
			opt := spkadd.Options{Algorithm: spkadd.Hash, Phases: p, SortedOutput: true, Threads: threads}
			b.Run(fmt.Sprintf("%v/T=%d", p, threads), func(b *testing.B) {
				ad := spkadd.NewAdder()
				for warm := 0; warm < 3; warm++ {
					if _, err := ad.Add(as, opt); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ad.Add(as, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAdderReusePlanner gates the self-tuning planner's
// steady-state cost: a warmed Adder with a resident Tuner — lookup,
// decision and cost recording on every call — must still report
// exactly 0 allocs/op (CI greps it with the other reuse benchmarks).
// The warmup first runs every tuner arm explicitly so each arm's
// scratch is sized, then lets a full-exploration tuner fill its table,
// then freezes it to pure exploitation for the measured region.
func BenchmarkAdderReusePlanner(b *testing.B) {
	as := adderReuseInputs()
	ad := spkadd.NewAdder()
	armOpts := []spkadd.Options{}
	for _, s := range []spkadd.Schedule{spkadd.ScheduleWeighted, spkadd.ScheduleWeightedStealing} {
		for _, p := range []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound} {
			armOpts = append(armOpts, spkadd.Options{Algorithm: spkadd.Hash, Phases: p, Schedule: s, SortedOutput: true, Threads: 1})
		}
		armOpts = append(armOpts, spkadd.Options{Algorithm: spkadd.SlidingHash, Schedule: s, SortedOutput: true, Threads: 1})
	}
	for _, opt := range armOpts {
		for warm := 0; warm < 3; warm++ {
			if _, err := ad.Add(as, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	tn := spkadd.NewTuner(77)
	tn.SetEpsilon(1) // pure exploration while the table fills
	if err := ad.SetTuner(tn); err != nil {
		b.Fatal(err)
	}
	opt := spkadd.Options{SortedOutput: true, Threads: 1}
	for warm := 0; warm < 32; warm++ {
		if _, err := ad.Add(as, opt); err != nil {
			b.Fatal(err)
		}
	}
	tn.SetEpsilon(0) // pure exploitation in the measured region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ad.Add(as, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// convertInputs maps the float64 reuse inputs into a T-valued twin
// collection via f; the index structure is shared (it is read-only
// during an addition).
func convertInputs[T spkadd.Number](as []*spkadd.Matrix, f func(float64) T) []*spkadd.MatrixOf[T] {
	out := make([]*spkadd.MatrixOf[T], len(as))
	for i, a := range as {
		vals := make([]T, len(a.Val))
		for p, v := range a.Val {
			vals[p] = f(v)
		}
		out[i] = &spkadd.MatrixOf[T]{Rows: a.Rows, Cols: a.Cols, ColPtr: a.ColPtr, RowIdx: a.RowIdx, Val: vals}
	}
	return out
}

// dtypeReuseLoop is the shared body of BenchmarkAdderReuseDtype: a
// warmed AdderOf[T] in its steady state, which must report 0 allocs/op
// for every instantiation exactly like the float64 Adder.
func dtypeReuseLoop[T spkadd.Number](b *testing.B, as []*spkadd.MatrixOf[T], opt spkadd.OptionsOf[T]) {
	ad := spkadd.NewAdderOf[T]()
	for warm := 0; warm < 3; warm++ {
		if _, err := ad.Add(as, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ad.Add(as, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdderReuseDtype is BenchmarkAdderReuse across the non-
// float64 instantiations of the generic value axis: float32, int32 and
// int64 on the Plus fast path, bool on the Any monoid (bool has no
// "+"). The CI allocation gate greps it with the other reuse
// benchmarks — a warmed generic Adder must report exactly 0 allocs/op
// for every element type, proving the type-parameterized kernels
// didn't reintroduce per-call boxing or escapes anywhere on the
// steady-state path.
func BenchmarkAdderReuseDtype(b *testing.B) {
	as := adderReuseInputs()
	engines := []spkadd.Phases{spkadd.PhasesTwoPass, spkadd.PhasesFused, spkadd.PhasesUpperBound}
	for _, p := range engines {
		b.Run(fmt.Sprintf("float32/%v", p), func(b *testing.B) {
			dtypeReuseLoop(b, convertInputs(as, func(v float64) float32 { return float32(v) }),
				spkadd.OptionsOf[float32]{Algorithm: spkadd.Hash, Phases: p, SortedOutput: true, Threads: 1})
		})
	}
	for _, p := range engines {
		b.Run(fmt.Sprintf("int32/%v", p), func(b *testing.B) {
			dtypeReuseLoop(b, convertInputs(as, func(v float64) int32 { return int32(v*100) + 1 }),
				spkadd.OptionsOf[int32]{Algorithm: spkadd.Hash, Phases: p, SortedOutput: true, Threads: 1})
		})
	}
	for _, p := range engines {
		b.Run(fmt.Sprintf("int64/%v", p), func(b *testing.B) {
			dtypeReuseLoop(b, convertInputs(as, func(v float64) int64 { return int64(v*100) + 1 }),
				spkadd.OptionsOf[int64]{Algorithm: spkadd.Hash, Phases: p, SortedOutput: true, Threads: 1})
		})
	}
	for _, p := range engines {
		b.Run(fmt.Sprintf("bool/%v", p), func(b *testing.B) {
			dtypeReuseLoop(b, convertInputs(as, func(v float64) bool { return true }),
				spkadd.OptionsOf[bool]{Algorithm: spkadd.Hash, Phases: p, Monoid: spkadd.AnyFor[bool](), SortedOutput: true, Threads: 1})
		})
	}
}

// BenchmarkAdderOneShot is the one-shot Add counterpart of
// BenchmarkAdderReuse: same workload and configurations, fresh output
// (and pooled scratch) every call.
func BenchmarkAdderOneShot(b *testing.B) {
	as := adderReuseInputs()
	for _, opt := range adderReuseConfigs() {
		b.Run(fmt.Sprintf("%v/%v/sorted=%v", opt.Algorithm, opt.Phases, opt.SortedOutput), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := spkadd.Add(as, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSymbolicVsNumeric reports the phase split of the hash
// algorithm (the two series of Fig 4) at a high compression factor,
// where the symbolic phase dominates.
func BenchmarkSymbolicVsNumeric(b *testing.B) {
	as := generate.ClusteredCollection(64, generate.Opts{Rows: benchRows, Cols: 16, NNZPerCol: 240, Seed: 18}, 22)
	b.Run("symbolic+numeric", func(b *testing.B) {
		var sym, num int64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, pt, err := core.AddTimed(as, core.Options{Algorithm: core.Hash, Phases: core.PhasesTwoPass})
			if err != nil {
				b.Fatal(err)
			}
			sym += pt.Symbolic.Nanoseconds()
			num += pt.Numeric.Nanoseconds()
		}
		b.ReportMetric(float64(sym)/float64(b.N), "sym-ns/op")
		b.ReportMetric(float64(num)/float64(b.N), "num-ns/op")
	})
}

// BenchmarkPoolThroughput streams deltas from P concurrent producers
// into a sharded Pool (Push through final Sum) across shard counts;
// bytes/op is the absorbed input volume, so MB/s is pool throughput.
// The CI bench smoke runs this once per configuration.
func BenchmarkPoolThroughput(b *testing.B) {
	const rows, cols, d, perProducer = 1 << 14, 64, 8, 24
	for _, producers := range []int{1, 4} {
		streams := make([][]*spkadd.Matrix, producers)
		var in int64
		for p := range streams {
			streams[p] = make([]*spkadd.Matrix, perProducer)
			for i := range streams[p] {
				streams[p][i] = spkadd.RandomER(rows, cols, d, uint64(p*perProducer+i+1))
				in += int64(streams[p][i].NNZ()) * 12
			}
		}
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("producers=%d/shards=%d", producers, shards), func(b *testing.B) {
				b.SetBytes(in)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pool := spkadd.NewPool(rows, cols, spkadd.PoolOptions{
						Shards:      shards,
						BudgetBytes: 8 << 20,
						Add:         spkadd.Options{Algorithm: spkadd.Hash},
					})
					var wg sync.WaitGroup
					for _, stream := range streams {
						wg.Add(1)
						go func(stream []*spkadd.Matrix) {
							defer wg.Done()
							for _, a := range stream {
								if err := pool.Push(a); err != nil {
									b.Error(err)
									return
								}
							}
						}(stream)
					}
					wg.Wait()
					if _, err := pool.Sum(); err != nil {
						b.Fatal(err)
					}
					if err := pool.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

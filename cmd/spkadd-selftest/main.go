// Command spkadd-selftest cross-checks every SpKAdd algorithm against
// a dense reference on randomized inputs — the quick confidence check
// to run on a new platform before trusting benchmark numbers.
//
//	spkadd-selftest -rounds 50 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spkadd-selftest: ")
	rounds := flag.Int("rounds", 25, "randomized rounds per input family")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	families := []struct {
		name string
		gen  func(k int) []*matrix.CSC
	}{
		{"ER", func(k int) []*matrix.CSC {
			return generate.ERCollection(k, generate.Opts{
				Rows: rng.Intn(2000) + 10, Cols: rng.Intn(32) + 1,
				NNZPerCol: rng.Intn(64) + 1, Seed: rng.Uint64(),
			})
		}},
		{"RMAT", func(k int) []*matrix.CSC {
			return generate.RMATCollection(k, generate.Opts{
				Rows: rng.Intn(2000) + 10, Cols: rng.Intn(16) + 1,
				NNZPerCol: rng.Intn(32) + 1, Seed: rng.Uint64(),
			}, generate.Graph500)
		}},
		{"Clustered", func(k int) []*matrix.CSC {
			return generate.ClusteredCollection(k, generate.Opts{
				Rows: rng.Intn(2000) + 10, Cols: rng.Intn(16) + 1,
				NNZPerCol: rng.Intn(64) + 1, Seed: rng.Uint64(),
			}, float64(rng.Intn(16)+1))
		}},
	}

	failures := 0
	checks := 0
	for _, fam := range families {
		for round := 0; round < *rounds; round++ {
			k := rng.Intn(16) + 2
			as := fam.gen(k)
			want := matrix.ReferenceAdd(as)
			for _, alg := range core.Algorithms {
				opt := core.Options{
					Algorithm:    alg,
					SortedOutput: true,
					Threads:      rng.Intn(4) + 1,
					LoadFactor:   []float64{0, 0.5, 0.9}[rng.Intn(3)],
				}
				if rng.Intn(3) == 0 {
					opt.MaxTableEntries = rng.Intn(64) + 1
				}
				got, err := core.Add(as, opt)
				checks++
				if err != nil {
					fmt.Printf("FAIL %s round %d %v: %v\n", fam.name, round, alg, err)
					failures++
					continue
				}
				if !got.EqualTol(want, 1e-9) {
					fmt.Printf("FAIL %s round %d %v: result differs from dense reference\n", fam.name, round, alg)
					failures++
				}
			}
		}
	}
	fmt.Printf("%d checks, %d failures\n", checks, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

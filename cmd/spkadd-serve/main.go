// Command spkadd-serve is the spkadd aggregation daemon: it ingests
// COO delta frames over HTTP into per-tenant streaming Pools and
// serves snapshot sums, health, and metrics. See DESIGN.md §12 for
// the protocol and internal/server for the handler contracts.
//
// Overload and failure behavior, by design:
//
//   - Backpressure past -queue-wait answers 429 + Retry-After.
//   - A degraded tenant keeps serving with Warning headers; a
//     poisoned tenant flips /readyz and refuses ingest with 503.
//   - SIGINT/SIGTERM triggers a graceful drain: stop accepting,
//     flush every tenant pool under -drain-deadline, report
//     stragglers, and exit 1 if any tenant's queued work had to be
//     abandoned (so orchestrators can tell a lossy shutdown from a
//     clean one). A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/server"
	"spkadd/internal/tuner"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("spkadd-serve", flag.ExitOnError)
	var (
		addr          = fs.String("addr", ":8471", "listen address")
		shards        = fs.Int("shards", 0, "column shards per tenant pool (0 = min(GOMAXPROCS, cols))")
		budgetMB      = fs.Int("budget-mb", 0, "per-tenant reduction budget in MiB (0 = 256)")
		maxRetries    = fs.Int("max-retries", 2, "reduction retries before a shard degrades")
		maxTenants    = fs.Int("max-tenants", 0, "live tenant cap (0 = 64)")
		idleTTL       = fs.Duration("idle-ttl", 0, "evict tenants idle past this (0 = 15m, negative disables)")
		queueWait     = fs.Duration("queue-wait", 0, "max backpressure wait before 429 (0 = 100ms)")
		sumWait       = fs.Duration("sum-wait", 0, "max snapshot barrier wait before 503 (0 = 10s)")
		drainDeadline = fs.Duration("drain-deadline", 20*time.Second, "graceful shutdown budget on SIGTERM")
		maxDeltaNNZ   = fs.Int("max-delta-nnz", 0, "entry cap per delta frame (0 = 1<<22, negative uncapped)")
		tunerState    = fs.String("tuner-state", "", "enable the self-tuning planner, persisting its cost table at this path")
		quiet         = fs.Bool("quiet", false, "suppress per-event logging")
	)
	fs.Parse(args)

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	// The planner table is process-wide: every tenant's pool shares
	// it, and it survives restarts through the snapshot file. A
	// corrupt or version-skewed snapshot is discarded (the table
	// relearns), never fatal; only a missing file is silent.
	var tun *tuner.Tuner
	if *tunerState != "" {
		tun = tuner.New(0)
		switch err := tun.LoadFile(*tunerState); {
		case err == nil:
			log.Printf("tuner: loaded %d signature(s) from %s", tun.Len(), *tunerState)
		case errors.Is(err, os.ErrNotExist):
		case errors.Is(err, tuner.ErrBadSnapshot):
			log.Printf("tuner: ignoring unusable state %s: %v", *tunerState, err)
		default:
			log.Printf("tuner: cannot read %s: %v", *tunerState, err)
			return 1
		}
	}
	srv := server.New(server.Config{
		MaxTenants:  *maxTenants,
		IdleTTL:     *idleTTL,
		QueueWait:   *queueWait,
		SumWait:     *sumWait,
		MaxDeltaNNZ: *maxDeltaNNZ,
		Tuner:       tun,
		Pool: core.PoolOptions{
			Shards:      *shards,
			BudgetBytes: int64(*budgetMB) << 20,
			MaxRetries:  *maxRetries,
		},
		Logf: logf,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	// First SIGINT/SIGTERM starts the graceful drain; a second one
	// aborts the process (stop catching and re-raise semantics).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("spkadd-serve listening on %s", *addr)

	select {
	case err := <-errc:
		log.Printf("listener failed: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process outright
	log.Printf("signal received; draining (deadline %v)", *drainDeadline)

	dctx, cancel := context.WithTimeout(context.Background(), *drainDeadline)
	defer cancel()
	// Refuse new work first, then stop the listener (in-flight
	// requests finish), then flush every tenant pool.
	srv.BeginDrain()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	rep := srv.Drain(dctx)
	for _, d := range rep.Tenants {
		switch {
		case d.Abandoned:
			log.Printf("drain: tenant %s ABANDONED %d straggler shard(s):", d.Tenant, len(d.Stragglers))
			for _, h := range d.Stragglers {
				log.Printf("  shard %d (columns [%d,%d)): %d piece(s) unreduced", h.Shard, h.Col0, h.Col1, h.Pending)
			}
		case d.Err != nil:
			log.Printf("drain: tenant %s drained unhealthy: %v", d.Tenant, d.Err)
		}
	}
	// Persist whatever the planner learned this run — even after a
	// lossy drain the cost table is valid (it records plan timings,
	// not pool contents).
	if tun != nil {
		if err := tun.SaveFile(*tunerState); err != nil {
			log.Printf("tuner: saving state to %s: %v", *tunerState, err)
		} else {
			log.Printf("tuner: saved %d signature(s) to %s", tun.Len(), *tunerState)
		}
	}
	if !rep.Clean() {
		log.Printf("drain ABANDONED work in %d of %d tenant(s)", rep.Abandoned, len(rep.Tenants))
		return 1
	}
	msg := "clean"
	if rep.Unhealthy > 0 {
		msg = fmt.Sprintf("complete (%d tenant(s) carried shard errors)", rep.Unhealthy)
	}
	log.Printf("drain %s: %d tenant(s)", msg, len(rep.Tenants))
	return 0
}

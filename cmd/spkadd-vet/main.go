// Command spkadd-vet runs the repo's invariant analyzers (DESIGN.md
// §13): noalloc, ctxblock, typederr, statsatomic and lockorder — the
// machine-checked form of the performance and robustness contracts the
// library's hot paths are written against.
//
// Two modes:
//
//	spkadd-vet [packages]         multichecker over package patterns
//	                              (default ./...), loading via the go
//	                              command; exits 1 on any finding.
//
//	go vet -vettool=$(spkadd-vet) as a vet tool: the go command hands
//	                              over one *.cfg unit at a time.
//
// Suppress an individual finding with a trailing
// `//spkadd:allow(check)` comment; the escape-analysis companion gate
// is `go run scripts/escape_audit.go`.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spkadd/internal/analysis"
	"spkadd/internal/analysis/load"
	"spkadd/internal/analysis/passes"
	"spkadd/internal/analysis/unitchecker"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet-tool protocol first: `go vet` probes with -V=full for its
	// build cache key, then invokes the tool once per package with a
	// JSON config file.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		// The go command hashes this line into its build cache key, so
		// it must change whenever the tool's behavior could: hash the
		// binary itself.
		name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spkadd-vet: %v\n", err)
			return 1
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spkadd-vet: %v\n", err)
			return 1
		}
		fmt.Printf("%s version devel buildID=%x\n", name, sha256.Sum256(data))
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		// The go command asks which analyzer flags the tool accepts;
		// none of ours have any.
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitchecker.Run(args[0], passes.All())
	}

	fs := flag.NewFlagSet("spkadd-vet", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory to run the go command in (the module root)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: spkadd-vet [-C dir] [-list] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the spkadd invariant analyzers over the packages (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range passes.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	targets, err := load.Packages(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spkadd-vet: %v\n", err)
		return 1
	}
	findings := 0
	for _, t := range targets {
		diags, err := analysis.Run(t, passes.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "spkadd-vet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			pos := t.Fset.Position(d.Pos)
			fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "spkadd-vet: %d finding(s) across %d package(s)\n", findings, len(targets))
		return 1
	}
	return 0
}

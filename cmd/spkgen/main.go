// Command spkgen generates the synthetic matrices used by the paper's
// evaluation and writes them as MatrixMarket files, one per collection
// member.
//
//	spkgen -kind er   -rows 65536 -cols 128 -d 64 -k 8 -out /tmp/er
//	spkgen -kind rmat -rows 65536 -cols 128 -d 64 -k 8 -out /tmp/rmat
//	spkgen -kind clustered -cf 22 -k 64 -out /tmp/eukarya
//	spkgen -kind protein -rows 10000 -d 32 -out /tmp/sim
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"spkadd/internal/generate"
	"spkadd/internal/matrix"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spkgen: ")
	kind := flag.String("kind", "er", "matrix kind: er, rmat, clustered, protein")
	rows := flag.Int("rows", 65536, "rows per matrix")
	cols := flag.Int("cols", 128, "columns per matrix")
	d := flag.Int("d", 64, "average nonzeros per column")
	k := flag.Int("k", 1, "number of matrices in the collection")
	cf := flag.Float64("cf", 8, "target compression factor (clustered only)")
	cluster := flag.Int("cluster", 128, "cluster size (protein only)")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output directory (required)")
	flag.Parse()
	if *out == "" {
		log.Fatal("-out directory is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	o := generate.Opts{Rows: *rows, Cols: *cols, NNZPerCol: *d, Seed: *seed}
	var mats []*matrix.CSC
	switch *kind {
	case "er":
		mats = generate.ERCollection(*k, o)
	case "rmat":
		mats = generate.RMATCollection(*k, o, generate.Graph500)
	case "clustered":
		mats = generate.ClusteredCollection(*k, o, *cf)
	case "protein":
		mats = []*matrix.CSC{generate.ProteinLike(*rows, *cluster, *d, *seed)}
	default:
		log.Fatalf("unknown kind %q (want er, rmat, clustered, protein)", *kind)
	}

	for i, m := range mats {
		path := filepath.Join(*out, fmt.Sprintf("%s_%03d.mtx", *kind, i))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := matrix.WriteMatrixMarket(f, m); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%dx%d, nnz=%d)\n", path, m.Rows, m.Cols, m.NNZ())
	}
}

// Command summa-sim runs one simulated distributed sparse SUMMA
// multiplication and reports the computation-phase split (Fig 6).
//
//	summa-sim -n 6000 -deg 192 -grid 16 -spkadd hash -unsorted
//	summa-sim -a left.mtx -b right.mtx -grid 8 -spkadd heap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
	"spkadd/internal/summa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("summa-sim: ")
	n := flag.Int("n", 6000, "square matrix dimension (synthetic operands)")
	deg := flag.Int("deg", 192, "average degree of synthetic operands")
	cluster := flag.Int("cluster", 256, "cluster size of synthetic operands")
	grid := flag.Int("grid", 16, "process grid side g (g*g processes, k=g intermediates)")
	alg := flag.String("spkadd", "hash", "reduction algorithm: hash, heap, spa, sliding")
	unsorted := flag.Bool("unsorted", false, "skip sorting local-multiply intermediates")
	threads := flag.Int("threads", 0, "threads per process (0 = GOMAXPROCS)")
	concurrent := flag.Bool("concurrent", false, "run processes as concurrent goroutines")
	aPath := flag.String("a", "", "MatrixMarket file for the left operand (overrides synthetic)")
	bPath := flag.String("b", "", "MatrixMarket file for the right operand")
	flag.Parse()

	algs := map[string]core.Algorithm{
		"hash": core.Hash, "heap": core.Heap, "spa": core.SPA, "sliding": core.SlidingHash,
	}
	algorithm, ok := algs[*alg]
	if !ok {
		log.Fatalf("unknown -spkadd %q", *alg)
	}

	var a, b *matrix.CSC
	if *aPath != "" {
		a = readMM(*aPath)
		b = a
		if *bPath != "" {
			b = readMM(*bPath)
		}
	} else {
		a = generate.ProteinLike(*n, *cluster, *deg, 1)
		b = generate.ProteinLike(*n, *cluster, *deg, 2)
	}
	fmt.Printf("A: %v   B: %v   grid %dx%d   SpKAdd=%v sortedIntermediates=%v\n",
		a, b, *grid, *grid, algorithm, !*unsorted)

	start := time.Now()
	c, rep, err := summa.Run(a, b, summa.Config{
		Grid: *grid, SpKAdd: algorithm, SortIntermediates: !*unsorted,
		Threads: *threads, Sequential: !*concurrent,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C: %v  (wall %v)\n\n", c, time.Since(start).Round(time.Millisecond))
	fmt.Printf("local multiply: sum %v, max-process %v\n",
		rep.LocalMultiplySum.Round(time.Millisecond), rep.LocalMultiplyMax.Round(time.Millisecond))
	fmt.Printf("SpKAdd        : sum %v, max-process %v\n",
		rep.SpKAddSum.Round(time.Millisecond), rep.SpKAddMax.Round(time.Millisecond))
	fmt.Printf("intermediates : nnz=%d, compression factor %.2f\n",
		rep.IntermediateNNZ, rep.CompressionFactor)
}

func readMM(path string) *matrix.CSC {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, err := matrix.ReadMatrixMarket(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}

// Command spkadd-bench regenerates the paper's tables and figures.
//
//	spkadd-bench -exp table3            # one experiment
//	spkadd-bench -exp all -scale 2      # everything, half-size workloads
//
// Experiments: fig2er, fig2rmat, table3, table4, fig3, fig4, table5,
// fig6, all. See EXPERIMENTS.md for the workload mapping and expected
// shapes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"spkadd/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spkadd-bench: ")
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(bench.Experiments, ", ")+", or all")
	reps := flag.Int("reps", 1, "timed repetitions per cell (minimum reported)")
	threads := flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Int("scale", 1, "divide workload sizes by this factor")
	cacheMB := flag.Int64("cache-mb", 32, "modelled last-level cache in MB")
	flag.Parse()

	fmt.Printf("spkadd-bench: GOMAXPROCS=%d, reps=%d, scale=1/%d, cache=%dMB\n\n",
		runtime.GOMAXPROCS(0), *reps, *scale, *cacheMB)
	cfg := bench.Config{
		Out:        os.Stdout,
		Reps:       *reps,
		Threads:    *threads,
		Scale:      *scale,
		CacheBytes: *cacheMB << 20,
	}
	if err := bench.Run(*exp, cfg); err != nil {
		log.Fatal(err)
	}
}

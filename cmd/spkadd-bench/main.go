// Command spkadd-bench regenerates the paper's tables and figures.
//
//	spkadd-bench -exp table3                    # one experiment
//	spkadd-bench -exp all -scale 2              # everything, half-size workloads
//	spkadd-bench -baseline BENCH_baseline.json  # write the perf baseline
//
// Experiments: fig2er, fig2rmat, table3, table4, fig3, fig4, table5,
// fig6 (the paper artifacts, all run by "all"), plus phases (the
// execution-engine comparison), reuse (one-shot Add vs a reused
// Adder workspace across k and d), pool (sharded-pool throughput over
// a producer-count × shard-count grid), monoid (generic combine
// overhead: every built-in monoid vs the Plus fast path), sched (the
// schedule × skew × threads grid on the resident executor, including
// WeightedStealing), tune, ablation, planner (the self-tuning
// planner's A/B gate: static Auto vs a warmed tuner on every cell,
// with a deliberately mis-predicted cell the learned table must win;
// -tuner-state persists the cost table across runs), and dtype (the
// value-type A/B: identical additions over float64 and float32 values,
// interleaved, on cells sized so the accumulator straddles a per-core
// cache at 8-byte values but fits at 4). See EXPERIMENTS.md for the
// workload mapping and expected shapes.
//
// With -baseline, the harness instead measures a small fixed grid of
// shapes across every algorithm and engine — runtime plus allocs/op
// and bytes/op — and writes machine-readable JSON to the given path;
// the committed BENCH_baseline.json gives future perf work a
// trajectory to compare against.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"spkadd/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spkadd-bench: ")
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(bench.Experiments, ", ")+", phases, reuse, pool, monoid, sched, tune, ablation, planner, dtype, or all")
	reps := flag.Int("reps", 1, "timed repetitions per cell (minimum reported)")
	threads := flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Int("scale", 1, "divide workload sizes by this factor")
	cacheMB := flag.Int64("cache-mb", 32, "modelled last-level cache in MB")
	baseline := flag.String("baseline", "", "write the JSON perf baseline to this path and exit")
	tunerState := flag.String("tuner-state", "", "planner experiment: load/save the tuner cost table at this path")
	flag.Parse()

	cfg := bench.Config{
		Out:        os.Stdout,
		Reps:       *reps,
		Threads:    *threads,
		Scale:      *scale,
		CacheBytes: *cacheMB << 20,
		TunerState: *tunerState,
	}
	if *baseline != "" {
		// Measure into a temp file and rename on success, so a failed
		// or interrupted run never clobbers an existing baseline.
		f, err := os.CreateTemp(filepath.Dir(*baseline), ".baseline-*")
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.Baseline(cfg, f); err != nil {
			f.Close()
			os.Remove(f.Name())
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			log.Fatal(err)
		}
		// CreateTemp makes the file 0600; restore conventional perms.
		if err := os.Chmod(f.Name(), 0o644); err != nil {
			os.Remove(f.Name())
			log.Fatal(err)
		}
		if err := os.Rename(f.Name(), *baseline); err != nil {
			os.Remove(f.Name())
			log.Fatal(err)
		}
		fmt.Printf("spkadd-bench: wrote baseline to %s\n", *baseline)
		return
	}
	fmt.Printf("spkadd-bench: GOMAXPROCS=%d, reps=%d, scale=1/%d, cache=%dMB\n\n",
		runtime.GOMAXPROCS(0), *reps, *scale, *cacheMB)
	if err := bench.Run(*exp, cfg); err != nil {
		log.Fatal(err)
	}
}

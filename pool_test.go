package spkadd_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"spkadd"
)

// poolStream builds producer p's deterministic stream of delta
// matrices: a mix of shapes (dense-ish, sparse, skewed, empty) so the
// shard queues see uneven per-shard loads.
func poolStream(p, n, rows, cols int) []*spkadd.Matrix {
	as := make([]*spkadd.Matrix, n)
	for i := range as {
		seed := uint64(p*1000 + i + 1)
		switch i % 4 {
		case 0:
			as[i] = spkadd.RandomER(rows, cols, 8, seed)
		case 1:
			as[i] = spkadd.RandomER(rows, cols, 1, seed)
		case 2:
			as[i] = spkadd.RandomRMAT(rows, cols, 4, seed)
		default:
			as[i] = spkadd.NewCOO(rows, cols).ToCSC() // empty delta
		}
	}
	return as
}

// TestPoolConcurrentParity is the tentpole's acceptance criterion: for
// any interleaving of concurrent pushes, Pool.Sum equals the one-shot
// Add of the same matrices. Run under -race in CI. Generator values
// are small integers, so the comparison is exact despite the pool
// reassociating the additions.
func TestPoolConcurrentParity(t *testing.T) {
	const rows, cols, producers, perProducer = 2048, 64, 8, 12
	streams := make([][]*spkadd.Matrix, producers)
	var all []*spkadd.Matrix
	for p := range streams {
		streams[p] = poolStream(p, perProducer, rows, cols)
		all = append(all, streams[p]...)
	}
	want, err := spkadd.Add(all, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		// Budgets from "reduce almost every piece" to "one big batch".
		for _, budget := range []int64{512, 1 << 30} {
			t.Run(fmt.Sprintf("shards=%d/budget=%d", shards, budget), func(t *testing.T) {
				pool := spkadd.NewPool(rows, cols, spkadd.PoolOptions{
					Shards:      shards,
					BudgetBytes: budget,
					Add:         spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true},
				})
				var wg sync.WaitGroup
				errs := make(chan error, producers)
				for p := 0; p < producers; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						for _, a := range streams[p] {
							if err := pool.Push(a); err != nil {
								errs <- err
								return
							}
						}
					}(p)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				got, err := pool.Sum()
				if err != nil {
					t.Fatal(err)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("stitched sum invalid: %v", err)
				}
				if !got.Equal(want) {
					t.Fatal("pool sum differs from one-shot Add over the same matrices")
				}
				if pool.K() != len(all) {
					t.Fatalf("K=%d, want %d", pool.K(), len(all))
				}
				if err := pool.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestPoolSumDuringPushes races Sum calls against live producers: every
// intermediate Sum must be a structurally valid matrix, and the final
// barrier must still account for every push. (Intermediate sums see an
// unspecified subset of concurrent pushes, so only the final result
// has a unique expected value.)
func TestPoolSumDuringPushes(t *testing.T) {
	const rows, cols, producers, perProducer = 1024, 48, 4, 10
	streams := make([][]*spkadd.Matrix, producers)
	var all []*spkadd.Matrix
	for p := range streams {
		streams[p] = poolStream(p, perProducer, rows, cols)
		all = append(all, streams[p]...)
	}
	want, err := spkadd.Add(all, spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	pool := spkadd.NewPool(rows, cols, spkadd.PoolOptions{
		Shards:      3,
		BudgetBytes: 4096,
		Add:         spkadd.Options{Algorithm: spkadd.Hash, SortedOutput: true},
	})
	var wg sync.WaitGroup
	errs := make(chan error, producers+1)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for _, a := range streams[p] {
				if err := pool.Push(a); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			mid, err := pool.Sum()
			if err != nil {
				errs <- err
				return
			}
			if err := mid.Validate(); err != nil {
				errs <- fmt.Errorf("mid-stream sum invalid: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, err := pool.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("final pool sum differs from one-shot Add")
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAccumulatorInUseExported checks the public error identity: the
// Accumulator's misuse detection must be matchable through the spkadd
// package like ErrAdderInUse is.
func TestAccumulatorInUseExported(t *testing.T) {
	if spkadd.ErrAccumulatorInUse == nil || spkadd.ErrPoolClosed == nil {
		t.Fatal("concurrency errors not exported")
	}
	p := spkadd.NewPool(4, 4, spkadd.PoolOptions{})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Push(spkadd.NewCOO(4, 4).ToCSC()); !errors.Is(err, spkadd.ErrPoolClosed) {
		t.Fatalf("Push after Close: %v, want ErrPoolClosed", err)
	}
}

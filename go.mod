module spkadd

go 1.24

// The invariant-analysis toolchain (cmd/spkadd-vet, the escape audit)
// lives in a nested module so the spkadd library itself stays
// dependency-free; the local replace keeps the whole build offline.
require spkadd/internal/analysis v0.0.0

replace spkadd/internal/analysis => ./internal/analysis

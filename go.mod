module spkadd

go 1.24

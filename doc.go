// Package spkadd adds collections of sparse matrices: B = Σ_{i=1..k} A_i.
//
// It is a Go implementation of "Parallel Algorithms for Adding a
// Collection of Sparse Matrices" (Hussain, Abhishek, Buluç, Azad;
// IPDPSW 2022, arXiv:2112.10223). Adding two sparse matrices is a
// staple of every sparse library, but repeatedly using pairwise
// addition to reduce k matrices is not work-efficient: the paper — and
// this library — provide k-way algorithms based on heaps, sparse
// accumulators (SPA), hash tables and cache-sized sliding hash tables
// that meet the lower bounds on both computation and memory traffic,
// plus the classic 2-way incremental and 2-way tree baselines.
//
// # Quick start
//
//	a := spkadd.RandomER(1<<20, 1024, 64, 1)   // rows, cols, nnz/col, seed
//	b := spkadd.RandomER(1<<20, 1024, 64, 2)
//	sum, err := spkadd.Add([]*spkadd.Matrix{a, b}, spkadd.Options{})
//
// The zero Options value selects the Auto algorithm (hash or sliding
// hash, depending on the estimated table footprint versus the
// last-level cache), GOMAXPROCS worker goroutines, and unsorted output
// columns.
//
// # Choosing an algorithm
//
// Hash is the best performer across matrix shapes and sparsity
// patterns; SlidingHash overtakes it when k·d (input nonzeros per
// column) is large enough that per-thread hash tables spill out of the
// last-level cache. Heap uses the least memory and needs sorted
// inputs; SPA is competitive only when output columns are dense and
// degrades with thread count (it needs O(rows) memory per worker).
// TwoWayIncremental and TwoWayTree exist as baselines and for adding
// very few matrices. See DESIGN.md and EXPERIMENTS.md for measured
// comparisons.
//
// # Execution engines
//
// Independently of the algorithm, Options.Phases selects how many
// passes the driver takes over the inputs. The paper's two-phase
// formulation (PhasesTwoPass) reads every input twice: a symbolic
// phase sizes each output column, then a numeric phase fills it. The
// single-pass engines read each input exactly once — the paper's
// O(knd) memory-traffic lower bound:
//
//   - PhasesFused: workers accumulate their columns into per-worker
//     growable arenas, then a parallel stitch assembles the final
//     matrix. Extra memory ≈ output size.
//   - PhasesUpperBound: the staging buffer is allocated from the
//     per-column sum of input nonzeros, filled in one pass, and
//     compacted in parallel. Extra memory ≈ input size; fastest when
//     duplicate rows are rare.
//
// The default, PhasesAuto, estimates the duplicate rate and picks
// UpperBound when duplicates are rare, Fused otherwise, and falls
// back to TwoPass when the fused hash tables would spill the
// last-level cache. Heap, SPA and Hash support all engines, with all
// option combinations; SlidingHash and the 2-way baselines always use
// their native drivers. Results are identical between engines for any
// fixed algorithm (bit-for-bit with SortedOutput). DESIGN.md covers
// the engine trade-offs in detail.
//
// # Combine monoids
//
// Every algorithm is really a k-way merge-and-combine: it visits the
// union of the inputs' nonzero positions and folds colliding entries
// with a binary operation. Options.Monoid makes that operation
// pluggable (GraphBLAS's eWiseAdd): nil means Plus — float64 "+",
// the paper's operation, served by specialized inlined kernels — and
// the built-ins Min, Max, Any (structural union: present anywhere →
// 1) and Count (occurrence frequency) run the same engines through a
// generic combine path, as can any user-defined commutative monoid:
//
//	union, _ := spkadd.Add(snapshots, spkadd.Options{Monoid: spkadd.Any})
//	freq, _ := spkadd.Add(snapshots, spkadd.Options{Monoid: spkadd.Count})
//	low, _ := spkadd.Add(forecasts, spkadd.Options{Monoid: spkadd.Min})
//
// Results are engine-identical (bit-for-bit with SortedOutput) for
// every monoid, exactly like Plus. Non-Plus monoids run on the k-way
// algorithms only (the 2-way baselines hardwire pairwise "+") and
// reject AddScaled coefficients with ErrCoeffsRequirePlus — scaling
// distributes over "+" but not over min, max or counting. Monoids
// with an input map (Any, Count) compose with the streaming
// Accumulator and Pool, which fold their running sum back in
// unmapped; with a bare Adder the sum-reuse pattern below would
// re-map the sum, so prefer an Accumulator for streaming Count. See
// DESIGN.md §8 and examples/overlay.
//
// # Value types
//
// The value axis is a type parameter. Matrix, Options, Monoid, Adder,
// Accumulator and Pool are the float64 instantiations — the paper's
// element type, and the default everything in this documentation
// assumes — of generic forms suffixed Of: MatrixOf[T], OptionsOf[T],
// AdderOf[T], and so on, over Number (float32, float64, int32, int64,
// bool). Every float64 call site reads exactly as it did before the
// axis became generic; choosing another element type is a type
// argument, not a different API:
//
//	as := []*spkadd.MatrixOf[float32]{...}
//	sum, _ := spkadd.Add(as, spkadd.OptionsOf[float32]{})
//
// float32 (and int32) shrink a stored entry from 12 to 8 bytes, which
// is a direct win wherever value traffic is the bottleneck — large-d
// additions streaming from memory, accumulators straddling a cache
// level (`spkadd-bench -exp dtype` measures the A/B; the committed
// baseline tracks float32 cells). int32/int64 count exactly where
// floats would round. bool is the structural element type for
// reachability and overlay workloads: it has no "+", so boolean
// additions must name a monoid explicitly (AnyFor[bool] is the
// natural one) and AddScaled does not apply. The Plus fast path, the
// zero-allocation Adder steady state and engine-identical results
// hold per instantiation — see TestDtypeParity,
// BenchmarkAdderReuseDtype and examples/reach. Mixing element types
// in one addition is not supported; convert inputs first. DESIGN.md
// §15 covers how the type parameter layers through the kernels.
//
// # Repeated additions
//
// Add draws its scratch structures from an internal pool, so one-shot
// calls already amortize hash tables, accumulators and staging
// buffers across calls. Callers that add repeatedly — streaming graph
// windows, per-stage SUMMA reductions, gradient averaging loops —
// should hold an Adder, which additionally recycles the output
// storage: in steady state a call allocates nothing. The returned
// matrix is owned by the Adder and valid until its next call (Clone
// it to keep it longer); the previous result may be an input to the
// next call, so the streaming pattern
//
//	ad := spkadd.NewAdder()
//	sum, _ = ad.Add([]*spkadd.Matrix{sum, delta}, opt)
//
// is supported directly. An Adder is single-goroutine; concurrent use
// fails fast with ErrAdderInUse. See DESIGN.md §3 and
// `spkadd-bench -exp reuse` for the measured effect.
//
// # Streaming and concurrent accumulation
//
// When matrices arrive over time or exceed memory, an Accumulator
// buffers pushes and reduces them k-way whenever the running sum plus
// the buffer would exceed a byte budget (the batching strategy of the
// paper's §V). An Accumulator is single-goroutine like an Adder
// (concurrent use fails fast with ErrAccumulatorInUse); when many
// goroutines stream deltas into one sum — ingest firehoses, fan-in
// aggregation — use a Pool, which shards the column space: producers
// enqueue zero-copy column slices under per-shard locks and per-shard
// reducer goroutines fold them into disjoint running sums that Sum
// stitches together. See DESIGN.md §5-6, examples/firehose and
// `spkadd-bench -exp pool`.
//
// # Threads, scheduling and executor sharing
//
// Options.Threads sets the worker count of one call (<1 means
// GOMAXPROCS); Options.Schedule sets how output columns spread over
// those workers — weighted by per-column nonzeros (the default),
// static blocks, dynamic chunk claiming, or weighted with work
// stealing (ScheduleWeightedStealing), which fixes skewed inputs'
// tail latency without dynamic's coordination cost on uniform ones.
// Workers are not spawned per call: every Adder, Accumulator and Pool
// keeps a resident Executor — persistent goroutines parked between
// parallel phases plus reusable partitioning scratch — so a warmed
// Adder allocates nothing even for its scheduling, whatever the
// schedule. Threads: 1 calls bypass the executor entirely.
//
// To put several of them under one global concurrency budget, create
// an Executor explicitly and share it:
//
//	ex := spkadd.NewExecutor(8) // at most 8 workers, total
//	opt := spkadd.Options{Threads: 8, Executor: ex}
//	// many Adders/Accumulators (or PoolOptions.Add) using opt now
//	// take turns on the same 8 workers instead of parking 8 each
//
// Parallel phases from concurrent callers serialize on the shared
// pool; results never depend on the executor, schedule or thread
// count. OpStats reports per-phase load balance (LoadImbalance,
// Steals). See DESIGN.md §9.
//
// # Self-tuning
//
// The Auto algorithm, PhasesAuto and the default schedule are static
// heuristics parameterized by Options.CacheBytes — one model of one
// machine. A Tuner replaces the model with measurement: it is an
// online learned cost table, keyed by a quantized workload signature
// (k, column density, duplicate rate, skew, sortedness, monoid,
// threads), that records the observed cost of every plan it resolves
// and steers later calls with matching shape onto the cheapest
// observed (algorithm, engine, schedule) plan, with a small
// deterministic epsilon of exploration:
//
//	tn := spkadd.NewTuner(1)
//	ad, _ := spkadd.NewAdder(rows, cols)
//	ad.SetTuner(tn) // every Add on ad now consults and feeds tn
//
// Unseen shapes and pinned options fall back to the static
// heuristics, so a Tuner never makes a cold call worse; lookups and
// recording allocate nothing, so a warmed Adder with a Tuner stays 0
// allocs/op. One Tuner may be shared by any number of Adders and
// Pools (PoolOptions.Add.Tuner), and Save/Load persist the table
// across processes — corrupt or version-skewed snapshots are refused
// with ErrBadSnapshot, leaving the table intact. `spkadd-bench -exp
// planner` is the A/B harness; DESIGN.md §14 has the design.
//
// # Errors, cancellation and failure containment
//
// Validation failures are sentinel errors matched with errors.Is:
// ErrNoInputs (empty collection), ErrDimMismatch (inputs disagree on
// shape), ErrUnsortedInput (Heap or the 2-way baselines fed unsorted
// columns), ErrCoeffsRequirePlus (AddScaled with a non-Plus monoid),
// ErrMonoidUnsupported (a non-Plus monoid on a 2-way baseline), and
// the misuse sentinels ErrAdderInUse, ErrAccumulatorInUse and
// ErrPoolClosed (a push after Close, or a second Close).
//
// Long-running operations take contexts: AddContext, the Adder's and
// Accumulator's context variants, and the Pool's PushContext
// (backpressure waits), SumContext (drain barriers) and CloseContext
// (shutdown). A context that ends mid-operation surfaces as
// ErrCanceled or ErrDeadline, each also matching the standard
// context.Canceled / context.DeadlineExceeded. Cancellation never
// corrupts state: a canceled reduction leaves the running sum and all
// pending inputs as they were, and the next uncanceled call picks the
// work back up.
//
// Panics inside the streaming stack — a kernel, an executor worker, a
// shard reducer — are recovered at the nearest fault boundary and
// returned as a *PanicError (panic value plus stack) instead of
// killing the process. Because the interrupted scratch state is
// indeterminate, the owning Adder or Accumulator is poisoned: its
// workspace is quarantined and every later call reports the same
// sticky error; build a fresh one to continue. A Pool contains the
// damage to the shard that hit it: ordinary reduction errors retry up
// to PoolOptions.MaxRetries with jittered exponential backoff before
// marking the shard degraded — a recoverable state in which the shard
// drops the failed batch (recorded in ShardHealth.Dropped) but keeps
// reducing, returning to HealthOK on its next success — while panics
// poison the shard permanently, and in either case the remaining
// shards keep serving. Sum then returns every shard's last good
// columns together with one *ShardError per currently-failed shard
// (naming its column range), and Pool.Health reports each shard's
// state — HealthOK, HealthDegraded or HealthPoisoned — plus its queue
// and dropped-piece gauges. OpStats counts PanicsRecovered, Retries
// and the health transitions. See DESIGN.md §11 for the full failure
// model.
//
// # Serving
//
// The library's serving shape ships as cmd/spkadd-serve: an HTTP
// daemon that ingests binary COO delta frames into per-tenant Pools
// and serves snapshot sums, mapping the failure model outward — Pool
// backpressure becomes 429 + Retry-After admission control, degraded
// tenants keep serving behind Warning headers, poisoned tenants flip
// /readyz and refuse ingest, and SIGTERM drains every tenant under a
// deadline, reporting any abandoned work in its exit code. See
// DESIGN.md §12 and examples/firehose -serve for an end-to-end
// client.
//
// Matrices are in compressed sparse column (CSC) form with 32-bit
// indices and generic values (float64 by default — see "Value types");
// everything applies symmetrically to CSR (transpose the
// interpretation). Inputs may have unsorted columns for the SPA, Hash
// and SlidingHash algorithms.
package spkadd

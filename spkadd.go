package spkadd

import (
	"context"
	"io"

	"spkadd/internal/core"
	"spkadd/internal/generate"
	"spkadd/internal/matrix"
	"spkadd/internal/ops"
	"spkadd/internal/sched"
	"spkadd/internal/spgemm"
	"spkadd/internal/summa"
	"spkadd/internal/tuner"
)

// Core matrix types. Matrix is a sparse matrix in compressed sparse
// column (CSC) format; see its methods for construction, validation,
// conversion and block extraction.
type (
	// Matrix is a CSC sparse matrix.
	Matrix = matrix.CSC
	// CSR is a compressed-sparse-row matrix.
	CSR = matrix.CSR
	// COO is a coordinate-format matrix, convenient for assembly.
	COO = matrix.COO
	// Triple is one (row, col, value) entry.
	Triple = matrix.Triple
	// Index is the 32-bit row/column index type.
	Index = matrix.Index
	// Value is the float64 entry value type.
	Value = matrix.Value
)

// Number is the constraint satisfied by every supported element type:
// float32, float64, int32, int64 and bool. The float64 names above
// are instantiations of the Of-suffixed generic forms below; a
// narrower element type halves (float32/int32) or better (bool) the
// value-array bandwidth of every kernel — see doc.go "Value types"
// and `spkadd-bench -exp dtype`.
type Number = matrix.Number

// Generic forms of the core types. MatrixOf[float64] is exactly
// Matrix; existing float64 code never needs these names.
type (
	// MatrixOf is a CSC sparse matrix over any supported element type.
	MatrixOf[T Number] = matrix.CSCOf[T]
	// CSROf is a compressed-sparse-row matrix over T.
	CSROf[T Number] = matrix.CSROf[T]
	// COOOf is a coordinate-format matrix over T.
	COOOf[T Number] = matrix.COOOf[T]
	// TripleOf is one (row, col, value) entry over T.
	TripleOf[T Number] = matrix.TripleOf[T]
	// OptionsOf configure an addition over T.
	OptionsOf[T Number] = core.OptionsOf[T]
	// MonoidOf is a combine monoid over T (see MonoidFor helpers).
	MonoidOf[T Number] = ops.MonoidOf[T]
	// AccumulatorOf is a streaming accumulator over T.
	AccumulatorOf[T Number] = core.AccumulatorOf[T]
	// PoolOf is a sharded streaming pool over T.
	PoolOf[T Number] = core.PoolOf[T]
	// PoolOptionsOf configure NewPoolOf.
	PoolOptionsOf[T Number] = core.PoolOptionsOf[T]
	// AdderOf is declared in adder.go.
)

// Algorithm selection, options and instrumentation for Add.
type (
	// Algorithm selects the SpKAdd implementation.
	Algorithm = core.Algorithm
	// Options configure Add; the zero value is ready to use.
	Options = core.Options
	// Schedule selects the column-scheduling strategy.
	Schedule = core.Schedule
	// Phases selects the execution engine for the k-way algorithms:
	// the classic two-pass symbolic+numeric driver or one of the
	// single-pass engines that read each input exactly once.
	Phases = core.Phases
	// OpStats accumulates work counters across a call.
	OpStats = core.OpStats
	// PhaseTimings reports the symbolic/numeric wall-clock split.
	PhaseTimings = core.PhaseTimings
)

// Algorithm constants, in the order of the paper's evaluation tables.
const (
	// Auto picks Hash or SlidingHash from the cache-footprint estimate.
	Auto = core.Auto
	// TwoWayIncremental adds pairs left to right (O(k²nd) work).
	TwoWayIncremental = core.TwoWayIncremental
	// TwoWayTree adds pairs up a balanced tree (O(knd lg k) work).
	TwoWayTree = core.TwoWayTree
	// MapIncremental is the generic-map pairwise baseline.
	MapIncremental = core.MapIncremental
	// MapTree is the generic-map tree baseline.
	MapTree = core.MapTree
	// Heap is the k-way min-heap merge; needs sorted inputs.
	Heap = core.Heap
	// SPA is the sparse-accumulator algorithm.
	SPA = core.SPA
	// Hash is the hash-table algorithm, the paper's recommendation.
	Hash = core.Hash
	// SlidingHash caps hash tables to the last-level cache.
	SlidingHash = core.SlidingHash
)

// Execution-engine (phase-policy) constants. The two-phase driver
// reads every input twice (symbolic sizing + numeric fill); the fused
// and upper-bound engines read each input exactly once, at the paper's
// O(knd) memory-traffic lower bound. See DESIGN.md.
const (
	// PhasesAuto picks an engine from the duplicate-rate estimate and
	// memory headroom (the default).
	PhasesAuto = core.PhasesAuto
	// PhasesTwoPass is the classic symbolic+numeric two-pass driver.
	PhasesTwoPass = core.PhasesTwoPass
	// PhasesFused accumulates into per-worker arenas in one input
	// pass, then stitches the final matrix in parallel.
	PhasesFused = core.PhasesFused
	// PhasesUpperBound allocates from the per-column input-nnz upper
	// bound, fills in one pass, then compacts in parallel.
	PhasesUpperBound = core.PhasesUpperBound
)

// Monoid is the pluggable combine operation of an addition: SpKAdd's
// kernels are k-way merge-and-combine kernels, and any commutative
// monoid (GraphBLAS's eWiseAdd operand) can replace the default
// float64 "+" via Options.Monoid. Output structure is always the
// union of the input structures; the monoid only decides how
// colliding values fold. Custom monoids are plain literals:
//
//	atLeast := &spkadd.Monoid{Name: "Min", ...}  // or use the built-ins
type Monoid = ops.Monoid

// Built-in monoids. A nil Options.Monoid means Plus, served by the
// specialized inlined float64 kernels; the others run the same
// engines through the generic combine path. Only Plus supports
// AddScaled coefficients.
var (
	// Plus is numeric addition, the paper's operation (the default).
	Plus = ops.Plus
	// Min keeps the smallest colliding value (min-plus ensembling).
	Min = ops.Min
	// Max keeps the largest colliding value (max-pooling).
	Max = ops.Max
	// Any is the structural union: present anywhere → 1 in the output.
	Any = ops.Any
	// Count is occurrence frequency: how many inputs store the entry.
	Count = ops.Count
)

// Per-type built-in monoids, the generic forms of the variables
// above. Each returns the canonical shared instance for T — pointer
// identity is what routes a nil/Plus monoid onto the specialized
// inlined "+=" kernels, so always obtain built-ins through these
// rather than constructing lookalike literals.

// PlusFor returns T's addition monoid, nil for bool (booleans have no
// "+"; use AnyFor).
func PlusFor[T Number]() *MonoidOf[T] { return ops.PlusFor[T]() }

// MinFor returns T's minimum monoid, nil for bool.
func MinFor[T Number]() *MonoidOf[T] { return ops.MinFor[T]() }

// MaxFor returns T's maximum monoid, nil for bool.
func MaxFor[T Number]() *MonoidOf[T] { return ops.MaxFor[T]() }

// AnyFor returns T's structural-union monoid: present anywhere →
// true/1 in the output. The usual monoid for bool matrices
// (reachability overlays; see examples/reach).
func AnyFor[T Number]() *MonoidOf[T] { return ops.AnyFor[T]() }

// CountFor returns T's occurrence-frequency monoid, nil for bool.
func CountFor[T Number]() *MonoidOf[T] { return ops.CountFor[T]() }

// Scheduling constants.
const (
	// ScheduleWeighted balances columns by nonzero weight (default).
	ScheduleWeighted = core.ScheduleWeighted
	// ScheduleStatic uses equal-width column blocks.
	ScheduleStatic = core.ScheduleStatic
	// ScheduleDynamic uses atomic chunk claiming.
	ScheduleDynamic = core.ScheduleDynamic
	// ScheduleWeightedStealing is weighted partitioning with work
	// stealing: idle workers take the suffix half of the most-loaded
	// peer's remaining range, closing the tail-latency gap a
	// mispredicted weighted partition leaves on skewed (RMAT-like)
	// inputs without ScheduleDynamic's per-chunk coordination cost on
	// uniform ones.
	ScheduleWeightedStealing = core.ScheduleWeightedStealing
)

// Executor is a resident worker pool: persistent goroutines parked
// between parallel phases, plus reusable scheduling scratch. Every
// Adder, Accumulator and Pool already keeps one resident in its
// workspace; create one explicitly (and set Options.Executor) to
// share a single worker budget across many of them — concurrent
// callers then take turns on the same workers instead of each parking
// a GOMAXPROCS-sized set. Close releases the workers; an unreachable
// executor is cleaned up by the runtime.
type Executor = sched.Executor

// NewExecutor returns a resident executor with a fixed worker budget
// of t (t < 1 means GOMAXPROCS): no parallel phase run on it uses
// more than t workers, whatever Threads its caller requests.
func NewExecutor(t int) *Executor { return sched.NewExecutor(t) }

// Tuner is the self-tuning planner: an online learned cost model that
// replaces the static algorithm/engine/schedule heuristics with
// observed per-call costs. Set Options.Tuner (or Adder.SetTuner for a
// resident one) and every call quantizes its workload shape — k,
// column density, duplicate rate, skew, sortedness, monoid path,
// threads — into a signature, looks up the cheapest observed
// {Algorithm, Phases, Schedule} combination the call's options admit,
// and feeds the measured cost back after the call. Unseen signatures
// fall back to the static heuristics; epsilon-greedy exploration keeps
// the table converging and exponentially decayed estimates re-learn
// drifting workloads. One Tuner is safe to share across goroutines,
// Adders, a Pool's shards and a server's tenants — sharing converges
// the table faster. Save/Load persist the learned state across runs
// (see the spkadd-serve and spkadd-bench -tuner-state flag). See
// DESIGN.md §14.
type Tuner = tuner.Tuner

// NewTuner returns an empty self-tuning planner whose exploration
// draws from seed; the same seed replays the same decisions for a
// fixed call sequence.
func NewTuner(seed uint64) *Tuner { return tuner.New(seed) }

// ErrBadSnapshot is returned by Tuner.Load for snapshots the tuner
// will not trust (truncated, corrupt, wrong version or arm count).
// Treat it as "start cold", never as fatal.
var ErrBadSnapshot = tuner.ErrBadSnapshot

// Fault-tolerance types: how failures inside the streaming stack are
// reported instead of killing the process. See DESIGN.md §11.
type (
	// PanicError is a panic recovered inside an addition — in an
	// executor worker, a pool shard's reducer, an accumulator's flush
	// or an inline kernel — converted to an error at the nearest
	// recovery boundary. Value holds the original panic value, Stack
	// the panicking goroutine's stack.
	PanicError = core.PanicError
	// ShardHealth reports one pool shard's condition (see Pool.Health).
	ShardHealth = core.ShardHealth
	// HealthState classifies a shard: HealthOK, HealthDegraded or
	// HealthPoisoned.
	HealthState = core.HealthState
	// ShardError attributes a sticky shard failure to its column
	// range; Pool.Sum and Pool.Close join one per failed shard.
	ShardError = core.ShardError
)

// Shard-health states reported by Pool.Health.
const (
	// HealthOK: the shard is reducing normally.
	HealthOK = core.HealthOK
	// HealthDegraded: a reduction failed and the bounded retries were
	// exhausted; that batch was dropped, the last good sum is served,
	// and the shard recovers to HealthOK on its next successful
	// reduction.
	HealthDegraded = core.HealthDegraded
	// HealthPoisoned: a reduction panicked; the panic was recovered,
	// the shard's workspace quarantined, the last good sum is served.
	// Poisoning is terminal.
	HealthPoisoned = core.HealthPoisoned
)

// Errors returned by Add.
var (
	// ErrNoInputs reports an empty input collection.
	ErrNoInputs = core.ErrNoInputs
	// ErrDimMismatch reports inputs of differing dimensions.
	ErrDimMismatch = core.ErrDimMismatch
	// ErrUnsortedInput reports unsorted columns passed to an
	// algorithm that requires sorted inputs (2-way merge, heap).
	ErrUnsortedInput = core.ErrUnsortedInput
	// ErrAccumulatorInUse reports an Accumulator called from a second
	// goroutine while a call is in flight (use a Pool for concurrent
	// producers).
	ErrAccumulatorInUse = core.ErrAccumulatorInUse
	// ErrPoolClosed reports a Push on a Pool after Close, or a second
	// Close after the first completed.
	ErrPoolClosed = core.ErrPoolClosed
	// ErrCanceled wraps a context cancellation observed by the
	// context-aware entry points (AddContext, PushContext, SumContext,
	// CloseContext); errors.Is also matches context.Canceled.
	ErrCanceled = core.ErrCanceled
	// ErrDeadline is the deadline form of ErrCanceled; errors.Is also
	// matches context.DeadlineExceeded.
	ErrDeadline = core.ErrDeadline
	// ErrCoeffsRequirePlus reports AddScaled coefficients combined
	// with a non-Plus monoid (scaling distributes over "+" only).
	ErrCoeffsRequirePlus = core.ErrCoeffsRequirePlus
	// ErrMonoidUnsupported reports a monoid on a configuration that
	// cannot run it: a non-Plus monoid on a 2-way baseline, or a
	// DropIdentity monoid on the two-pass driver.
	ErrMonoidUnsupported = core.ErrMonoidUnsupported
)

// Add computes the sum of the given matrices. All inputs must share
// dimensions. The zero Options value selects the Auto algorithm with
// GOMAXPROCS workers.
// Generic over the element type: Add(float32 matrices) runs float32
// kernels end to end, halving value-array traffic; calls with
// []*Matrix infer float64 exactly as before.
func Add[T Number](as []*MatrixOf[T], opt OptionsOf[T]) (*MatrixOf[T], error) {
	return core.Add(as, opt)
}

// AddTimed is Add, additionally reporting the wall-clock split between
// the symbolic (output sizing) and numeric phases.
func AddTimed[T Number](as []*MatrixOf[T], opt OptionsOf[T]) (*MatrixOf[T], PhaseTimings, error) {
	return core.AddTimed(as, opt)
}

// AddContext is Add with cooperative cancellation: the engines check
// ctx at phase boundaries (before the symbolic pass, between passes,
// after the numeric pass) and abandon the call with an error wrapping
// ErrCanceled or ErrDeadline, leaving no partial result.
func AddContext[T Number](ctx context.Context, as []*MatrixOf[T], opt OptionsOf[T]) (*MatrixOf[T], error) {
	return core.AddContext(ctx, as, opt)
}

// FromTriples builds a sorted, duplicate-merged CSC matrix from
// coordinate entries (duplicates sum, as in finite-element assembly).
func FromTriples(rows, cols int, ts []Triple) *Matrix {
	return matrix.FromTriples(rows, cols, ts)
}

// FromTriplesOf is FromTriples for any supported element type.
func FromTriplesOf[T Number](rows, cols int, ts []TripleOf[T]) *MatrixOf[T] {
	return matrix.FromTriplesOf(rows, cols, ts)
}

// NewCOO returns an empty coordinate-format matrix for incremental
// assembly; convert with its ToCSC method.
func NewCOO(rows, cols int) *COO { return matrix.NewCOO(rows, cols) }

// RandomER generates an Erdős–Rényi (uniform) random matrix with
// about nnzPerCol nonzeros in each column.
func RandomER(rows, cols, nnzPerCol int, seed uint64) *Matrix {
	return generate.ER(generate.Opts{Rows: rows, Cols: cols, NNZPerCol: nnzPerCol, Seed: seed})
}

// RandomRMAT generates a power-law matrix with Graph500 R-MAT
// parameters (a=0.57, b=c=0.19, d=0.05).
func RandomRMAT(rows, cols, nnzPerCol int, seed uint64) *Matrix {
	return generate.RMAT(generate.Opts{Rows: rows, Cols: cols, NNZPerCol: nnzPerCol, Seed: seed}, generate.Graph500)
}

// ReadMatrixMarket parses a MatrixMarket coordinate stream.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return matrix.ReadMatrixMarket(r) }

// WriteMatrixMarket writes m in MatrixMarket coordinate format.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return matrix.WriteMatrixMarket(w, m) }

// MulOptions configure Multiply.
type MulOptions = spgemm.Options

// Multiply computes the sparse product A*B with the hash-accumulator
// SpGEMM kernel used inside the SUMMA simulation.
func Multiply(a, b *Matrix, opt MulOptions) (*Matrix, error) {
	return spgemm.Mul(a, b, opt)
}

// SummaConfig configures a simulated distributed sparse SUMMA run.
type SummaConfig = summa.Config

// SummaReport aggregates the per-phase timings of a SUMMA run.
type SummaReport = summa.Report

// RunSumma multiplies a by b on a simulated process grid, reducing
// each process's intermediate products with the configured SpKAdd
// algorithm. It reports the local-multiply / SpKAdd time split that
// the paper's Fig 6 compares across reduction algorithms.
func RunSumma(a, b *Matrix, cfg SummaConfig) (*Matrix, SummaReport, error) {
	return summa.Run(a, b, cfg)
}

// AddCSR computes the sum of CSR matrices through zero-copy transposed
// views (§II-A of the paper: the algorithms apply unchanged to CSR).
func AddCSR[T Number](as []*CSROf[T], opt OptionsOf[T]) (*CSROf[T], error) {
	return core.AddCSR(as, opt)
}

// Accumulator performs streaming/batched SpKAdd under a memory budget
// (the batching strategy of the paper's §V for inputs that arrive over
// time or exceed memory).
type Accumulator = core.Accumulator

// NewAccumulator returns a streaming accumulator for rows x cols
// matrices that reduces its buffer k-way whenever the buffered input
// exceeds budgetBytes (<=0 means 256MB).
func NewAccumulator(rows, cols int, budgetBytes int64, opt Options) *Accumulator {
	return core.NewAccumulator(rows, cols, budgetBytes, opt)
}

// NewAccumulatorOf is NewAccumulator for any supported element type.
func NewAccumulatorOf[T Number](rows, cols int, budgetBytes int64, opt OptionsOf[T]) *AccumulatorOf[T] {
	return core.NewAccumulatorOf[T](rows, cols, budgetBytes, opt)
}

// DCSC is a doubly compressed sparse column matrix for hypersparse
// blocks; convert with Matrix.ToDCSC and DCSC.ToCSC.
type DCSC = matrix.DCSC

// AddScaled computes the weighted sum B = Σ coeffs[i]·A_i (e.g.
// gradient averaging with coeffs = 1/k). Supported by the k-way
// algorithms (Auto, Heap, SPA, Hash, SlidingHash).
func AddScaled[T Number](as []*MatrixOf[T], coeffs []T, opt OptionsOf[T]) (*MatrixOf[T], error) {
	return core.AddScaled(as, coeffs, opt)
}

package spkadd

import (
	"spkadd/internal/core"
)

// Pool is a concurrent, column-sharded streaming accumulator: the
// multi-producer counterpart of Accumulator. Any number of goroutines
// Push delta matrices; the column space is split into S shards, each
// owning a resident workspace, a pending queue and a running sum over
// its column range, and per-shard reducer goroutines fold pushed
// pieces in k-way, budget-triggered batches. Sum barriers the
// reducers and stitches the disjoint per-shard sums into one matrix.
//
// Push slices each incoming matrix into per-shard column views
// without copying the nonzeros and enqueues under per-shard locks
// only, so producers do not contend with reductions in flight or with
// producers touching other shards; producers block only at a shard's
// high-water mark (backpressure when they outrun the reducers) or
// while a Sum or Close establishes its cut — a push racing Sum or
// Close is observed whole or not at all. Like Accumulator, the pool
// keeps references into pushed matrices until they are reduced; do
// not mutate a matrix after pushing it. The matrix returned by Sum is
// freshly allocated and caller-owned.
//
// Use a Pool when many goroutines stream deltas into one running sum
// (ingest firehoses, fan-in aggregation); use Accumulator or Adder
// for single-goroutine streams. See DESIGN.md §6.
//
// Reductions run under PoolOptions.Add, including its Monoid: a pool
// can stream structural unions (Any) or edge frequencies (Count) as
// easily as sums — each shard folds its running sum back in unmapped,
// so mapped monoids accumulate correctly across reductions.
//
// Failures are contained per shard (DESIGN.md §11): an ordinary
// reduction error is retried up to PoolOptions.MaxRetries times with
// jittered exponential backoff, then drops that batch and marks the
// shard degraded — the shard keeps reducing later work and recovers
// to OK on its next success, with the loss recorded in
// ShardHealth.Dropped. A panicking reduction is recovered, poisons
// its shard permanently and quarantines that shard's workspace.
// Healthy shards keep reducing throughout. Sum always returns the
// stitch of every shard's last good sum, joined with one ShardError
// per currently-failed shard; Health reports each shard's state plus
// its queue-depth and dropped-piece gauges. PushContext, SumContext
// and CloseContext bound the blocking operations (backpressure waits,
// drain barriers, shutdown) with a context.
type Pool = core.Pool

// PoolOptions configure NewPool: shard count (default
// min(GOMAXPROCS, cols)), total reduction budget in bytes (divided
// among shards; <=0 means 256MB), the retry policy for failed
// reductions (MaxRetries, RetryBackoff), and the Options each
// per-shard reduction runs with. Internally parallel reductions each run on
// their shard workspace's resident Executor; set Add.Executor to
// place every shard's reductions under one caller-wide worker budget
// instead (regions on a shared Executor serialize, trading reduction
// throughput for a hard concurrency cap).
type PoolOptions = core.PoolOptions

// NewPool returns a sharded accumulation pool for rows x cols
// matrices and starts its reducer goroutines; call Close to stop
// them. The zero PoolOptions value is ready to use.
func NewPool(rows, cols int, popt PoolOptions) *Pool {
	return core.NewPool(rows, cols, popt)
}

// NewPoolOf is NewPool for any supported element type: a float32 pool
// halves the value bytes each shard's reductions move, an int64 pool
// counts exactly, a bool pool (Monoid: AnyFor) unions structure.
func NewPoolOf[T Number](rows, cols int, popt PoolOptionsOf[T]) *PoolOf[T] {
	return core.NewPoolOf[T](rows, cols, popt)
}

package spkadd_test

import (
	"context"
	"errors"
	"testing"

	"spkadd"
	"spkadd/internal/faults"
	"spkadd/internal/faults/leakcheck"
)

// The public half of the chaos suite: the failure model as callers of
// the spkadd package see it. The schedules and state machines are
// exercised in depth by internal/core's chaos tests; these pin the
// exported surface — type identities, sticky poisoning, context errors.

// TestChaosAdderPoisonedByPanic: an Adder whose call panics returns a
// *spkadd.PanicError and refuses further work with the same error —
// its workspace scratch is mid-kernel garbage and must never be
// reused, even after the fault schedule is gone.
func TestChaosAdderPoisonedByPanic(t *testing.T) {
	leakcheck.Begin(t)
	in := faults.New(21, faults.Rule{Point: faults.PanicInKernel, Key: 0, Count: 1})
	deactivate := faults.Activate(in)
	defer deactivate()

	as := adderTestInputs(4, 200, 8, 6, 81)
	ad := spkadd.NewAdder()
	opt := spkadd.Options{Algorithm: spkadd.Hash, Threads: 1}
	_, err := ad.Add(as, opt)
	var pe *spkadd.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Add over a panicking kernel = %v, want *spkadd.PanicError", err)
	}
	if _, ok := pe.Value.(faults.InjectedPanic); !ok {
		t.Errorf("panic value = %v, want the injected panic", pe.Value)
	}

	deactivate()
	if _, err2 := ad.Add(as, opt); !errors.As(err2, &pe) {
		t.Errorf("Add on a poisoned Adder = %v, want the sticky *PanicError", err2)
	}
	// A fresh Adder (and the stateless entry point) are unaffected.
	if _, err := spkadd.NewAdder().Add(as, opt); err != nil {
		t.Errorf("fresh Adder after another's poisoning: %v", err)
	}
	if _, err := spkadd.Add(as, opt); err != nil {
		t.Errorf("package-level Add after an Adder's poisoning: %v", err)
	}
}

// TestChaosAddContextCanceled: the public context entry points reject
// a canceled context with ErrCanceled, which unwraps to the standard
// context error for callers matching on that instead.
func TestChaosAddContextCanceled(t *testing.T) {
	as := adderTestInputs(4, 200, 8, 6, 82)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := spkadd.AddContext(ctx, as, spkadd.Options{}); !errors.Is(err, spkadd.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("AddContext = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	ad := spkadd.NewAdder()
	if _, err := ad.AddContext(ctx, as, spkadd.Options{}); !errors.Is(err, spkadd.ErrCanceled) {
		t.Errorf("Adder.AddContext = %v, want ErrCanceled", err)
	}
	// Cancellation is not sticky: the same Adder works uncanceled.
	if _, err := ad.Add(as, spkadd.Options{}); err != nil {
		t.Errorf("Add after a canceled AddContext: %v", err)
	}
}

// TestChaosPoolPublicSurface: the pool's failure API round-trips
// through the public aliases — Health states, ShardError, sticky
// Close — on a panic confined to one shard.
func TestChaosPoolPublicSurface(t *testing.T) {
	leakcheck.Begin(t)
	in := faults.New(22, faults.Rule{Point: faults.PanicInKernel, Key: 1})
	defer faults.Activate(in)()

	as := adderTestInputs(6, 200, 8, 6, 83)
	p := spkadd.NewPool(200, 8, spkadd.PoolOptions{Shards: 2})
	for _, a := range as {
		if err := p.Push(a); err != nil {
			t.Fatal(err)
		}
	}
	_, err := p.Sum()
	var se *spkadd.ShardError
	if !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("Sum = %v, want a ShardError for shard 0", err)
	}
	h := p.Health()
	if h[0].State != spkadd.HealthPoisoned || h[1].State != spkadd.HealthOK {
		t.Errorf("Health = [%v, %v], want [poisoned, ok]", h[0].State, h[1].State)
	}
	if err := p.Close(); !errors.As(err, &se) {
		t.Errorf("Close = %v, want the sticky ShardError", err)
	}
	if err := p.Close(); !errors.Is(err, spkadd.ErrPoolClosed) {
		t.Errorf("second Close = %v, want ErrPoolClosed", err)
	}
}

package spkadd

import (
	"errors"
	"sync/atomic"

	"spkadd/internal/core"
)

// ErrAdderInUse is returned when an Adder is called from a second
// goroutine while a call is already in flight. An Adder owns one set
// of scratch structures; detecting the overlap and failing fast is
// strictly better than silently corrupting both results. Use one
// Adder per goroutine, or the package-level Add, which draws a
// private workspace from a pool per call.
var ErrAdderInUse = errors.New("spkadd: Adder used from multiple goroutines concurrently")

// Adder performs repeated SpKAdd calls with amortized allocations: it
// owns every scratch structure an addition needs (per-worker hash
// tables, sparse accumulators, heaps, the single-pass engines' arenas
// and staging buffers, per-column size arrays) plus recyclable output
// storage, so in steady state — once shapes stop growing — a call
// allocates nothing. For the repeated small and medium additions of
// streaming workloads this roughly halves the cost of each call
// relative to one-shot Add (see `spkadd-bench -exp reuse` and
// BenchmarkAdderReuse).
//
// Ownership: the matrix returned by Add/AddTimed/AddScaled is owned
// by the Adder and remains valid only until the next call on the same
// Adder; Clone it to keep it longer. The previous call's result may
// safely appear among the next call's inputs (output buffers
// alternate internally), which is exactly the streaming pattern
//
//	sum, _ = ad.Add([]*spkadd.Matrix{sum, delta}, opt)
//
// Results older than the previous call must not be passed back in.
// Note that with a monoid that maps input values (Any, Count) this
// pattern re-maps the running sum on every call — use an Accumulator
// for those, which folds its sum back in unmapped.
//
// An Adder is not safe for concurrent use. Calls overlapping in time
// return ErrAdderInUse rather than corrupting state. The zero value
// is ready to use.
type Adder struct {
	busy atomic.Bool
	ws   *core.Workspace
}

// NewAdder returns an Adder with its workspace pre-created. The first
// additions still size the scratch structures to the workload; buffers
// only ever grow, so a warmed Adder stays allocation-free while input
// shapes do not exceed what it has seen.
func NewAdder() *Adder {
	return &Adder{ws: core.NewWorkspace(true)}
}

// acquire takes the adder's busy flag and returns its workspace,
// creating it on first use of a zero-value Adder. The atomic flag
// orders the lazy initialization: only the goroutine holding the flag
// touches ad.ws.
func (ad *Adder) acquire() (*core.Workspace, error) {
	if !ad.busy.CompareAndSwap(false, true) {
		return nil, ErrAdderInUse
	}
	if ad.ws == nil {
		ad.ws = core.NewWorkspace(true)
	}
	return ad.ws, nil
}

func (ad *Adder) release() { ad.busy.Store(false) }

// Add computes the sum of the given matrices like the package-level
// Add, reusing the Adder's scratch and output storage. The result is
// owned by the Adder; see the type documentation for the lifetime
// rules.
func (ad *Adder) Add(as []*Matrix, opt Options) (*Matrix, error) {
	ws, err := ad.acquire()
	if err != nil {
		return nil, err
	}
	defer ad.release()
	return ws.Add(as, opt)
}

// AddTimed is Add, additionally reporting the symbolic/numeric phase
// split.
func (ad *Adder) AddTimed(as []*Matrix, opt Options) (*Matrix, PhaseTimings, error) {
	ws, err := ad.acquire()
	if err != nil {
		return nil, PhaseTimings{}, err
	}
	defer ad.release()
	return ws.AddTimed(as, opt)
}

// AddScaled computes the weighted sum B = Σ coeffs[i]·A_i like the
// package-level AddScaled, reusing the Adder's scratch and output
// storage.
func (ad *Adder) AddScaled(as []*Matrix, coeffs []Value, opt Options) (*Matrix, error) {
	ws, err := ad.acquire()
	if err != nil {
		return nil, err
	}
	defer ad.release()
	return ws.AddScaled(as, coeffs, opt)
}

package spkadd

import (
	"context"
	"errors"
	"sync/atomic"

	"spkadd/internal/core"
)

// ErrAdderInUse is returned when an Adder is called from a second
// goroutine while a call is already in flight. An Adder owns one set
// of scratch structures; detecting the overlap and failing fast is
// strictly better than silently corrupting both results. Use one
// Adder per goroutine, or the package-level Add, which draws a
// private workspace from a pool per call.
var ErrAdderInUse = errors.New("spkadd: Adder used from multiple goroutines concurrently")

// Adder performs repeated SpKAdd calls with amortized allocations: it
// owns every scratch structure an addition needs (per-worker hash
// tables, sparse accumulators, heaps, the single-pass engines' arenas
// and staging buffers, per-column size arrays) plus recyclable output
// storage, so in steady state — once shapes stop growing — a call
// allocates nothing. For the repeated small and medium additions of
// streaming workloads this roughly halves the cost of each call
// relative to one-shot Add (see `spkadd-bench -exp reuse` and
// BenchmarkAdderReuse).
//
// Ownership: the matrix returned by Add/AddTimed/AddScaled is owned
// by the Adder and remains valid only until the next call on the same
// Adder; Clone it to keep it longer. The previous call's result may
// safely appear among the next call's inputs (output buffers
// alternate internally), which is exactly the streaming pattern
//
//	sum, _ = ad.Add([]*spkadd.Matrix{sum, delta}, opt)
//
// Results older than the previous call must not be passed back in.
// Note that with a monoid that maps input values (Any, Count) this
// pattern re-maps the running sum on every call — use an Accumulator
// for those, which folds its sum back in unmapped.
//
// An Adder is not safe for concurrent use. Calls overlapping in time
// return ErrAdderInUse rather than corrupting state. The zero value
// is ready to use.
//
// Panics inside an addition (a caller mutating inputs mid-call, an
// injected fault, an invariant check firing) do not kill the process:
// they are recovered at the nearest region boundary and surface as a
// *PanicError. A panicked Adder is poisoned — its workspace held
// half-accumulated state and is quarantined, and every later call
// returns the same sticky *PanicError — because results computed on
// corrupt scratch would be silently wrong. Discard it and build a new
// one.
type AdderOf[T Number] struct {
	busy atomic.Bool
	ws   *core.WorkspaceOf[T]
	// err is the sticky poison error: the first *PanicError a call
	// returned. Only read/written while busy is held.
	err error
}

// Adder is the float64 adder, the paper's element type. AdderOf
// instantiates the same machinery for float32, int32, int64 and bool
// — a float32 Adder moves half the value bytes per entry, the win
// `spkadd-bench -exp dtype` measures.
type Adder = AdderOf[Value]

// NewAdder returns an Adder with its workspace pre-created. The first
// additions still size the scratch structures to the workload; buffers
// only ever grow, so a warmed Adder stays allocation-free while input
// shapes do not exceed what it has seen.
func NewAdder() *Adder {
	return NewAdderOf[Value]()
}

// NewAdderOf is NewAdder for any supported element type. Element
// types narrower than float64 (float32, int32, bool) halve or better
// the value-array traffic of every call; bool requires an explicit
// Options.Monoid (AnyFor) since it has no "+".
func NewAdderOf[T Number]() *AdderOf[T] {
	return &AdderOf[T]{ws: core.NewWorkspaceOf[T](true)}
}

// acquire takes the adder's busy flag and returns its workspace,
// creating it on first use of a zero-value Adder. The atomic flag
// orders the lazy initialization: only the goroutine holding the flag
// touches ad.ws.
func (ad *AdderOf[T]) acquire() (*core.WorkspaceOf[T], error) {
	if !ad.busy.CompareAndSwap(false, true) {
		return nil, ErrAdderInUse
	}
	if ad.err != nil {
		err := ad.err
		ad.busy.Store(false)
		return nil, err
	}
	if ad.ws == nil {
		ad.ws = core.NewWorkspaceOf[T](true)
	}
	return ad.ws, nil
}

func (ad *AdderOf[T]) release() { ad.busy.Store(false) }

// note records a finished call's error, poisoning the Adder when it
// carries a recovered panic: the workspace's scratch — and possibly
// the resident output buffers — are mid-kernel garbage, so it is
// quarantined rather than reused. Called while busy is held.
func (ad *AdderOf[T]) note(err error) {
	if err == nil {
		return
	}
	// pe is declared after the nil check: its address escapes into
	// errors.As, and hoisting the heap allocation to function entry
	// would cost the zero-alloc steady state one object per call.
	var pe *PanicError
	if errors.As(err, &pe) {
		ad.err = err
		ad.ws = nil
	}
}

// SetTuner installs (or, with nil, clears) a resident self-tuning
// planner: calls whose Options carry no Tuner of their own consult it
// during plan resolution and feed their measured cost back afterwards.
// The Tuner may be shared with other Adders, Pools or a serving
// process — it is safe for concurrent use even though the Adder is
// not. Returns ErrAdderInUse if a call is in flight.
func (ad *AdderOf[T]) SetTuner(t *Tuner) error {
	ws, err := ad.acquire()
	if err != nil {
		return err
	}
	defer ad.release()
	ws.SetTuner(t)
	return nil
}

// Add computes the sum of the given matrices like the package-level
// Add, reusing the Adder's scratch and output storage. The result is
// owned by the Adder; see the type documentation for the lifetime
// rules.
func (ad *AdderOf[T]) Add(as []*MatrixOf[T], opt OptionsOf[T]) (*MatrixOf[T], error) {
	ws, err := ad.acquire()
	if err != nil {
		return nil, err
	}
	defer ad.release()
	b, err := ws.Add(as, opt)
	ad.note(err)
	return b, err
}

// AddContext is Add with cooperative cancellation: the engines check
// ctx at phase boundaries and abandon the call with an error wrapping
// ErrCanceled or ErrDeadline. Cancellation is clean — no result is
// installed, the Adder's scratch stays reusable, and the next call
// proceeds normally.
func (ad *AdderOf[T]) AddContext(ctx context.Context, as []*MatrixOf[T], opt OptionsOf[T]) (*MatrixOf[T], error) {
	ws, err := ad.acquire()
	if err != nil {
		return nil, err
	}
	defer ad.release()
	b, err := ws.AddContext(ctx, as, opt)
	ad.note(err)
	return b, err
}

// AddTimed is Add, additionally reporting the symbolic/numeric phase
// split.
func (ad *AdderOf[T]) AddTimed(as []*MatrixOf[T], opt OptionsOf[T]) (*MatrixOf[T], PhaseTimings, error) {
	ws, err := ad.acquire()
	if err != nil {
		return nil, PhaseTimings{}, err
	}
	defer ad.release()
	b, pt, err := ws.AddTimed(as, opt)
	ad.note(err)
	return b, pt, err
}

// AddScaled computes the weighted sum B = Σ coeffs[i]·A_i like the
// package-level AddScaled, reusing the Adder's scratch and output
// storage.
func (ad *AdderOf[T]) AddScaled(as []*MatrixOf[T], coeffs []T, opt OptionsOf[T]) (*MatrixOf[T], error) {
	ws, err := ad.acquire()
	if err != nil {
		return nil, err
	}
	defer ad.release()
	b, err := ws.AddScaled(as, coeffs, opt)
	ad.note(err)
	return b, err
}
